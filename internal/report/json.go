package report

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/model"
)

// JSONRun is the JSON interchange form of a run: flat, with dates as
// "Mon-YYYY" strings and classifications as names, so downstream tools
// (and the paper's pandas-side consumers) need no knowledge of the Go
// enums.
type JSONRun struct {
	ID             string      `json:"id"`
	Accepted       bool        `json:"accepted"`
	TestDate       string      `json:"test_date"`
	SubmissionDate string      `json:"submission_date"`
	HWAvail        string      `json:"hw_avail"`
	SWAvail        string      `json:"sw_avail"`
	SystemVendor   string      `json:"system_vendor"`
	SystemName     string      `json:"system_name"`
	CPUName        string      `json:"cpu"`
	CPUVendor      string      `json:"cpu_vendor"`
	CPUClass       string      `json:"cpu_class"`
	Nodes          int         `json:"nodes"`
	SocketsPerNode int         `json:"sockets_per_node"`
	CoresPerSocket int         `json:"cores_per_socket"`
	ThreadsPerCore int         `json:"threads_per_core"`
	TotalCores     int         `json:"total_cores"`
	TotalThreads   int         `json:"total_threads"`
	NominalGHz     float64     `json:"nominal_ghz"`
	TDPWatts       float64     `json:"tdp_watts"`
	MemGB          int         `json:"mem_gb"`
	PSUWatts       int         `json:"psu_watts"`
	OSName         string      `json:"os"`
	OSFamily       string      `json:"os_family"`
	JVM            string      `json:"jvm"`
	Points         []JSONPoint `json:"points"`
}

// JSONPoint is one measurement interval.
type JSONPoint struct {
	TargetLoad int     `json:"target_load"`
	SSJOps     float64 `json:"ssj_ops"`
	AvgWatts   float64 `json:"avg_watts"`
}

// ToJSONRun converts a run.
func ToJSONRun(r *model.Run) JSONRun {
	j := JSONRun{
		ID:             r.ID,
		Accepted:       r.Accepted,
		TestDate:       r.TestDate.String(),
		SubmissionDate: r.SubmissionDate.String(),
		HWAvail:        r.HWAvail.String(),
		SWAvail:        r.SWAvail.String(),
		SystemVendor:   r.SystemVendor,
		SystemName:     r.SystemName,
		CPUName:        r.CPUName,
		CPUVendor:      r.CPUVendor.String(),
		CPUClass:       r.CPUClass.String(),
		Nodes:          r.Nodes,
		SocketsPerNode: r.SocketsPerNode,
		CoresPerSocket: r.CoresPerSocket,
		ThreadsPerCore: r.ThreadsPerCore,
		TotalCores:     r.TotalCores,
		TotalThreads:   r.TotalThreads,
		NominalGHz:     r.NominalGHz,
		TDPWatts:       r.TDPWatts,
		MemGB:          r.MemGB,
		PSUWatts:       r.PSUWatts,
		OSName:         r.OSName,
		OSFamily:       r.OSFamily.String(),
		JVM:            r.JVM,
	}
	for _, p := range r.Points {
		j.Points = append(j.Points, JSONPoint{
			TargetLoad: p.TargetLoad, SSJOps: p.ActualOps, AvgWatts: p.AvgPower,
		})
	}
	return j
}

// FromJSONRun converts back to a model run. Unparseable dates become
// zero values for the consistency checks to classify, mirroring the
// text parser's leniency.
func FromJSONRun(j JSONRun) *model.Run {
	parse := func(s string) model.YearMonth {
		ym, err := model.ParseYearMonth(s)
		if err != nil {
			return model.YearMonth{}
		}
		return ym
	}
	r := &model.Run{
		ID:             j.ID,
		Accepted:       j.Accepted,
		TestDate:       parse(j.TestDate),
		SubmissionDate: parse(j.SubmissionDate),
		HWAvail:        parse(j.HWAvail),
		SWAvail:        parse(j.SWAvail),
		SystemVendor:   j.SystemVendor,
		SystemName:     j.SystemName,
		CPUName:        j.CPUName,
		CPUVendor:      model.ParseCPUVendor(j.CPUName),
		CPUClass:       model.ClassifyCPU(j.CPUName),
		Nodes:          j.Nodes,
		SocketsPerNode: j.SocketsPerNode,
		CoresPerSocket: j.CoresPerSocket,
		ThreadsPerCore: j.ThreadsPerCore,
		TotalCores:     j.TotalCores,
		TotalThreads:   j.TotalThreads,
		NominalGHz:     j.NominalGHz,
		TDPWatts:       j.TDPWatts,
		MemGB:          j.MemGB,
		PSUWatts:       j.PSUWatts,
		OSName:         j.OSName,
		OSFamily:       model.ParseOSFamily(j.OSName),
		JVM:            j.JVM,
	}
	for _, p := range j.Points {
		r.Points = append(r.Points, model.LoadPoint{
			TargetLoad: p.TargetLoad, ActualOps: p.SSJOps, AvgPower: p.AvgWatts,
		})
	}
	r.SortPoints()
	return r
}

// WriteJSON writes runs as a JSON array.
func WriteJSON(w io.Writer, runs []*model.Run) error {
	out := make([]JSONRun, len(runs))
	for i, r := range runs {
		out[i] = ToJSONRun(r)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("report: encode json: %w", err)
	}
	return nil
}

// ReadJSON reads a JSON array of runs.
func ReadJSON(r io.Reader) ([]*model.Run, error) {
	var in []JSONRun
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("report: decode json: %w", err)
	}
	out := make([]*model.Run, len(in))
	for i, j := range in {
		out[i] = FromJSONRun(j)
	}
	return out, nil
}
