package report

import (
	"os"
	"path/filepath"
	"testing"
)

// goldenPath locates the repository's testdata directory from this
// package's working directory.
func goldenPath(t *testing.T, name string) string {
	t.Helper()
	return filepath.Join("..", "..", "testdata", name)
}

// TestGoldenReportFormat locks the rendered result-file format: any
// format change must be deliberate (regenerate with -update) because
// the parser, the corpus on disk, and downstream consumers all read it.
func TestGoldenReportFormat(t *testing.T) {
	got := RenderString(jsonSample())
	path := goldenPath(t, "golden_report.txt")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("rendered report drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s",
			got, want)
	}
}
