// Package report renders benchmark runs into the textual result-file
// format consumed by the parser package — the equivalent of the .txt
// reports published on the SPEC website that the paper's scripts ingest.
//
// The format is line-oriented with labelled fields and a load-level
// table, close in spirit to SPEC's published reports (thousands
// separators in ops, "Active Idle" row, month-year dates) so the parser
// has realistic quirks to cope with.
package report

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/model"
)

// Render writes the run as a result file.
func Render(w io.Writer, r *model.Run) error {
	var b strings.Builder
	b.WriteString("SPEC Power and Performance Benchmark (simulated corpus)\n")
	b.WriteString("SPECpower_ssj2008 Result\n")
	b.WriteString(strings.Repeat("=", 64) + "\n\n")

	status := "accepted"
	if !r.Accepted {
		status = "not accepted"
	}
	field := func(k, v string) {
		fmt.Fprintf(&b, "%-28s %s\n", k+":", v)
	}
	field("Report ID", r.ID)
	field("Status", status)
	field("Test Date", r.TestDate.String())
	field("Submission Date", r.SubmissionDate.String())
	field("Hardware Availability", r.HWAvail.String())
	field("Software Availability", r.SWAvail.String())
	b.WriteString("\nSystem Under Test\n")
	b.WriteString(strings.Repeat("-", 64) + "\n")
	field("Vendor", r.SystemVendor)
	field("Model", r.SystemName)
	if r.Nodes > 0 {
		field("Nodes", fmt.Sprintf("%d", r.Nodes))
	}
	field("CPU", r.CPUName)
	field("CPU Frequency (GHz)", trimFloat(r.NominalGHz))
	field("CPU TDP (W)", trimFloat(r.TDPWatts))
	field("Sockets per Node", fmt.Sprintf("%d", r.SocketsPerNode))
	field("Cores per Socket", fmt.Sprintf("%d", r.CoresPerSocket))
	field("Threads per Core", fmt.Sprintf("%d", r.ThreadsPerCore))
	field("Total Cores", fmt.Sprintf("%d", r.TotalCores))
	field("Total Threads", fmt.Sprintf("%d", r.TotalThreads))
	field("Memory (GB)", fmt.Sprintf("%d", r.MemGB))
	field("PSU Rated (W)", fmt.Sprintf("%d", r.PSUWatts))
	field("Operating System", r.OSName)
	field("JVM", r.JVM)

	b.WriteString("\nBenchmark Results\n")
	b.WriteString(strings.Repeat("-", 64) + "\n")
	fmt.Fprintf(&b, "%-14s %18s %20s\n", "Target Load", "ssj_ops", "Average Power (W)")
	for _, p := range r.Points {
		label := fmt.Sprintf("%d%%", p.TargetLoad)
		if p.TargetLoad == 0 {
			label = "Active Idle"
		}
		fmt.Fprintf(&b, "%-14s %18s %20.1f\n",
			label, Thousands(int64(p.ActualOps+0.5)), p.AvgPower)
	}
	fmt.Fprintf(&b, "\n%-28s %.0f overall ssj_ops/watt\n",
		"Overall Score:", r.OverallOpsPerWatt())

	_, err := io.WriteString(w, b.String())
	return err
}

// RenderString is Render into a string.
func RenderString(r *model.Run) string {
	var sb strings.Builder
	// strings.Builder writes cannot fail.
	_ = Render(&sb, r)
	return sb.String()
}

// Thousands formats n with comma separators ("26,000,000"), as SPEC
// reports do.
func Thousands(n int64) string {
	neg := n < 0
	if neg {
		n = -n
	}
	s := fmt.Sprintf("%d", n)
	var out []byte
	for i, d := range []byte(s) {
		if i > 0 && (len(s)-i)%3 == 0 {
			out = append(out, ',')
		}
		out = append(out, d)
	}
	if neg {
		return "-" + string(out)
	}
	return string(out)
}

// trimFloat renders a float without trailing zeros ("2.25", "360").
func trimFloat(f float64) string {
	s := fmt.Sprintf("%.2f", f)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}
