package report

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/model"
)

func jsonSample() *model.Run {
	r := &model.Run{
		ID:             "power_ssj2008-20230801-00042",
		Accepted:       true,
		TestDate:       model.YM(2023, time.July),
		SubmissionDate: model.YM(2023, time.August),
		HWAvail:        model.YM(2023, time.August),
		SWAvail:        model.YM(2023, time.June),
		SystemVendor:   "Lenovo",
		SystemName:     "SR645 V3",
		CPUName:        "AMD EPYC 9754",
		CPUVendor:      model.VendorAMD,
		CPUClass:       model.ClassEPYC,
		Nodes:          1,
		SocketsPerNode: 2,
		CoresPerSocket: 128,
		ThreadsPerCore: 2,
		TotalCores:     256,
		TotalThreads:   512,
		NominalGHz:     2.25,
		TDPWatts:       360,
		MemGB:          384,
		PSUWatts:       1100,
		OSName:         "SUSE Linux Enterprise Server 15 SP4",
		OSFamily:       model.OSLinux,
		JVM:            "OpenJDK 17",
	}
	for _, load := range model.StandardLoads() {
		u := float64(load) / 100
		r.Points = append(r.Points, model.LoadPoint{
			TargetLoad: load, ActualOps: 1e6 * u, AvgPower: 100 + 600*u,
		})
	}
	return r
}

func TestJSONRoundTrip(t *testing.T) {
	orig := jsonSample()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, []*model.Run{orig}); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 {
		t.Fatalf("runs = %d", len(back))
	}
	got := back[0]
	if got.ID != orig.ID || got.HWAvail != orig.HWAvail ||
		got.CPUVendor != orig.CPUVendor || got.CPUClass != orig.CPUClass ||
		got.OSFamily != orig.OSFamily || got.TotalThreads != orig.TotalThreads {
		t.Errorf("round trip mismatch: %+v", got)
	}
	if len(got.Points) != len(orig.Points) {
		t.Fatalf("points = %d", len(got.Points))
	}
	for i := range orig.Points {
		if math.Abs(got.Points[i].ActualOps-orig.Points[i].ActualOps) > 1e-9 ||
			math.Abs(got.Points[i].AvgPower-orig.Points[i].AvgPower) > 1e-9 {
			t.Errorf("point %d drifted", i)
		}
	}
	// Derived metrics identical.
	if math.Abs(got.OverallOpsPerWatt()-orig.OverallOpsPerWatt()) > 1e-9 {
		t.Error("overall score drifted through JSON")
	}
}

func TestJSONFieldNames(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, []*model.Run{jsonSample()}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`"id"`, `"hw_avail"`, `"cpu_vendor"`, `"target_load"`, `"ssj_ops"`,
		`"avg_watts"`, `"Aug-2023"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("json missing %s", want)
		}
	}
}

func TestReadJSONErrors(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{not json")); err == nil {
		t.Error("bad json should error")
	}
	runs, err := ReadJSON(strings.NewReader("[]"))
	if err != nil || len(runs) != 0 {
		t.Errorf("empty array: %v %v", runs, err)
	}
}

func TestFromJSONRunLenientDates(t *testing.T) {
	r := FromJSONRun(JSONRun{ID: "x", HWAvail: "garbage", TestDate: "-"})
	if !r.HWAvail.IsZero() || !r.TestDate.IsZero() {
		t.Error("bad dates should become zero values")
	}
	if rr := model.CheckParseConsistency(r); rr != model.RejectNotAccepted {
		// Accepted defaults false in the zero JSONRun.
		t.Errorf("classification = %v", rr)
	}
}
