package power

import (
	"fmt"

	"repro/internal/model"
)

// CStateProfile describes where a system spends its active-idle time
// and what each state costs, the mechanism behind Profile.IdleFrac
// ([Hackenberg et al. 2015]'s C-state survey, cited by the paper).
// Residencies are fractions of wall time at active idle and sum to 1.
type CStateProfile struct {
	// ResidencyC0 is time busy with background work (timers, daemons —
	// the per-logical-CPU tasks Section IV discusses).
	ResidencyC0 float64
	// ResidencyCoreC is time in per-core sleep (C1/C6) with the package
	// still awake.
	ResidencyCoreC float64
	// ResidencyPkgC is time in package sleep (PC6): shared resources
	// (caches, interconnect, memory controller) powered down.
	ResidencyPkgC float64

	// Relative power (fraction of full-load power) drawn in each state.
	PowerC0    float64
	PowerCoreC float64
	PowerPkgC  float64
}

// Validate reports the first inconsistent field.
func (c CStateProfile) Validate() error {
	sum := c.ResidencyC0 + c.ResidencyCoreC + c.ResidencyPkgC
	if sum < 0.999 || sum > 1.001 {
		return fmt.Errorf("power: C-state residencies sum to %v", sum)
	}
	for _, v := range []float64{c.ResidencyC0, c.ResidencyCoreC, c.ResidencyPkgC} {
		if v < 0 {
			return fmt.Errorf("power: negative residency")
		}
	}
	if !(c.PowerPkgC <= c.PowerCoreC && c.PowerCoreC <= c.PowerC0) {
		return fmt.Errorf("power: state powers not ordered (pkg %v ≤ core %v ≤ C0 %v)",
			c.PowerPkgC, c.PowerCoreC, c.PowerC0)
	}
	return nil
}

// IdleFrac returns the residency-weighted idle power fraction.
func (c CStateProfile) IdleFrac() float64 {
	return c.ResidencyC0*c.PowerC0 +
		c.ResidencyCoreC*c.PowerCoreC +
		c.ResidencyPkgC*c.PowerPkgC
}

// CStatesFor derives a C-state decomposition consistent with the trend
// profile for the vendor and era: the same measured IdleFrac, explained
// as residencies. It encodes the paper's two competing mechanisms —
// deeper package states lower PowerPkgC over time, while growing core
// counts raise background activity (C0 residency) in recent years,
// which is what drags measured idle back up.
func CStatesFor(v model.CPUVendor, yearFrac float64) CStateProfile {
	p := TrendProfile(v, yearFrac)
	// Background activity: minimal mid-era, higher early (no tickless
	// kernels) and creeping up again with core counts post-2017.
	var c0 float64
	switch {
	case yearFrac < 2010:
		c0 = 0.20
	case yearFrac < 2017:
		c0 = 0.20 - 0.02*(yearFrac-2010) // down to 0.06
	default:
		c0 = 0.06 + 0.01*(yearFrac-2017) // slow climb
	}
	if c0 > 0.25 {
		c0 = 0.25
	}
	// Package-state power: LowIntercept is "core sleep only"; the
	// deepest state approaches a floor set by always-on platform power.
	cs := CStateProfile{
		ResidencyC0: c0,
		PowerC0:     p.LowIntercept * 1.15,
		PowerCoreC:  p.LowIntercept,
		PowerPkgC:   p.LowIntercept * 0.35,
	}
	if cs.PowerC0 > 1 {
		cs.PowerC0 = 1
	}
	// Solve the package residency so the weighted idle matches the
	// trend profile's measured IdleFrac; clamp into the feasible range.
	rest := 1 - c0
	den := cs.PowerCoreC - cs.PowerPkgC
	pkg := 0.0
	if den > 0 {
		pkg = (c0*cs.PowerC0 + rest*cs.PowerCoreC - p.IdleFrac) / den
	}
	if pkg < 0 {
		pkg = 0
	}
	if pkg > rest {
		pkg = rest
	}
	cs.ResidencyPkgC = pkg
	cs.ResidencyCoreC = rest - pkg
	return cs
}
