package power

import (
	"math"
	"testing"

	"repro/internal/catalog"
)

func TestBreakdownSumsToFullLoad(t *testing.T) {
	for _, name := range []string{"X5355", "E5-2670", "EPYC 9754", "Platinum 8490H"} {
		spec, err := catalog.Find(name)
		if err != nil {
			t.Fatal(err)
		}
		cfg := SystemConfig{Sockets: 2, MemGB: 256}
		b := FullLoadBreakdown(spec, cfg)
		want := FullLoadWatts(spec, cfg)
		if math.Abs(b.Total()-want) > 1e-9 {
			t.Errorf("%s: breakdown %v != full %v", name, b.Total(), want)
		}
		if b.CPUWatts <= 0 || b.MemWatts <= 0 || b.PlatformWatts <= 0 || b.PSULossWatts <= 0 {
			t.Errorf("%s: non-positive component: %+v", name, b)
		}
	}
}

func TestSharedFractionGrowsOverEras(t *testing.T) {
	// Section IV speculation encoded in the model: the non-CPU share of
	// power is larger on modern mid-range systems than on 2008 ones.
	// Compare mainstream parts of similar TDP class so the CPU term
	// doesn't dominate the comparison.
	early, err := catalog.Find("X5355")
	if err != nil {
		t.Fatal(err)
	}
	late, err := catalog.Find("Silver 4510")
	if err != nil {
		t.Fatal(err)
	}
	se := FullLoadBreakdown(early, SystemConfig{Sockets: 2, MemGB: 16}).SharedFraction()
	sl := FullLoadBreakdown(late, SystemConfig{Sockets: 2, MemGB: 128}).SharedFraction()
	if sl <= se {
		t.Errorf("shared fraction should grow: %v (2008) vs %v (2023)", se, sl)
	}
	if se <= 0 || sl >= 1 {
		t.Errorf("fractions out of range: %v %v", se, sl)
	}
}

func TestSharedFractionDegenerate(t *testing.T) {
	if got := (Breakdown{}).SharedFraction(); got != 0 {
		t.Errorf("zero breakdown = %v", got)
	}
}
