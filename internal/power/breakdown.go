package power

import "repro/internal/catalog"

// Breakdown decomposes system AC power into its modelled components,
// for documentation and ablation purposes (the paper's Section IV
// speculates about "an increasingly large share of power being used by
// shared resources" — this exposes the model's own composition).
type Breakdown struct {
	CPUWatts      float64 // all sockets
	MemWatts      float64
	PlatformWatts float64 // fans, drives, board, NICs
	PSULossWatts  float64 // AC/DC conversion loss
}

// Total sums the components.
func (b Breakdown) Total() float64 {
	return b.CPUWatts + b.MemWatts + b.PlatformWatts + b.PSULossWatts
}

// FullLoadBreakdown decomposes FullLoadWatts for a configuration.
func FullLoadBreakdown(spec catalog.CPUSpec, cfg SystemConfig) Breakdown {
	b := Breakdown{
		CPUWatts:      float64(cfg.Sockets) * spec.TDPWatts * cpuFullFrac,
		MemWatts:      float64(cfg.MemGB) * memWattsPerGB(spec.Avail.Year),
		PlatformWatts: platformWatts(spec.Avail.Year),
	}
	dc := b.CPUWatts + b.MemWatts + b.PlatformWatts
	b.PSULossWatts = dc * psuLossFrac
	return b
}

// SharedFraction returns the share of full-load power not attributable
// to the CPU sockets themselves — the "shared resources" the paper
// discusses in the context of idle optimization.
func (b Breakdown) SharedFraction() float64 {
	t := b.Total()
	if t <= 0 {
		return 0
	}
	return (b.MemWatts + b.PlatformWatts + b.PSULossWatts) / t
}
