package power

import (
	"fmt"
	"math"
)

// Profile parameterizes the relative power curve of one system.
// All fields are fractions of full-load power except the exponents.
type Profile struct {
	// IdleFrac is the measured active-idle power as a fraction of
	// full-load power (Figure 5's y-axis).
	IdleFrac float64
	// LowIntercept (r) is the intercept of the low-load linear region —
	// what active idle would cost without idle-specific optimizations.
	LowIntercept float64
	// Beta (β ≤ 1) is the concavity of the DVFS/core-C-state region.
	Beta float64
	// TurboWeight (w ∈ [0,1]) is the share of dynamic power following the
	// convex turbo term.
	TurboWeight float64
	// TurboGamma (γ ≥ 1) is the exponent of the turbo term.
	TurboGamma float64
}

// Validate reports the first implausible parameter.
func (p Profile) Validate() error {
	switch {
	case !(p.IdleFrac >= 0 && p.IdleFrac < 1):
		return fmt.Errorf("power: IdleFrac %v outside [0,1)", p.IdleFrac)
	case !(p.LowIntercept >= 0 && p.LowIntercept < 1):
		return fmt.Errorf("power: LowIntercept %v outside [0,1)", p.LowIntercept)
	case !(p.Beta > 0 && p.Beta <= 1.5):
		return fmt.Errorf("power: Beta %v outside (0,1.5]", p.Beta)
	case !(p.TurboWeight >= 0 && p.TurboWeight <= 1):
		return fmt.Errorf("power: TurboWeight %v outside [0,1]", p.TurboWeight)
	case !(p.TurboGamma >= 1 && p.TurboGamma <= 8):
		return fmt.Errorf("power: TurboGamma %v outside [1,8]", p.TurboGamma)
	}
	return nil
}

// Rel returns the measured relative power at utilization u ∈ [0,1]:
// the load curve for u > 0, and IdleFrac (package C-states engaged)
// at u = 0.
func (p Profile) Rel(u float64) float64 {
	if u <= 0 {
		return p.IdleFrac
	}
	return p.RelNoIdleOpt(u)
}

// RelNoIdleOpt returns the load-curve value at u without idle-specific
// optimization; at u = 0 this is the LowIntercept, the hypothetical
// "individual idle cores only" power the paper extrapolates toward.
func (p Profile) RelNoIdleOpt(u float64) float64 {
	if u < 0 {
		u = 0
	}
	if u > 1 {
		u = 1
	}
	r, w := p.LowIntercept, p.TurboWeight
	dyn := (1-w)*math.Pow(u, p.Beta) + w*math.Pow(u, p.TurboGamma)
	return r + (1-r)*dyn
}

// ExtrapolatedIdleRel mirrors the paper's method on the model itself:
// the line through (10 %, rel(0.1)) and (20 %, rel(0.2)) evaluated at 0.
func (p Profile) ExtrapolatedIdleRel() float64 {
	r1, r2 := p.Rel(0.1), p.Rel(0.2)
	slope := (r2 - r1) / 0.1
	return r1 - slope*0.1
}

// IdleQuotient is the model-level extrapolated idle quotient
// (Figure 6): extrapolated over measured active idle.
func (p Profile) IdleQuotient() float64 {
	if p.IdleFrac <= 0 {
		return math.NaN()
	}
	return p.ExtrapolatedIdleRel() / p.IdleFrac
}

// Curve binds a Profile to an absolute full-load power.
type Curve struct {
	FullWatts float64
	Prof      Profile
}

// At returns absolute power at utilization u.
func (c Curve) At(u float64) float64 {
	return c.FullWatts * c.Prof.Rel(u)
}
