// Package power models server AC power draw as a function of load for
// the SPECpower_ssj2008 graduated-load regime.
//
// The model captures the mechanisms the paper discusses:
//
//   - DVFS and core C-states make the active-power portion concave in
//     load (power falls slower than load at partial levels) — parameter
//     Beta < 1.
//   - Turbo/boost states make the last stretch to full load
//     disproportionately expensive — parameters TurboWeight and
//     TurboGamma add a convex component, which is what pushes relative
//     efficiency above 1 at 70–90 % load for 2012–2016 Intel systems.
//   - Package C-states and shared-resource power-down act only at true
//     active idle — IdleFrac sits below the extrapolation of the
//     low-load trend, and the ratio of the two is the paper's
//     "extrapolated idle quotient" (Figure 6).
//
// Relative power at utilization u ∈ (0, 1]:
//
//	rel(u) = r + (1−r)·((1−w)·u^β + w·u^γ)
//
// where r is the low-load intercept; measured active idle (u = 0) is the
// separate IdleFrac. TrendProfile interpolates per-vendor anchor tables
// over hardware-availability time, encoding the 2006→2017 idle-power
// progress and the post-2017 regression the paper reports.
package power
