package power_test

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/power"
)

// ExampleTrendProfile shows how the trend model encodes the paper's
// idle-power history: the measured idle fraction falls to a minimum
// around 2017 and regresses afterwards for Intel systems.
func ExampleTrendProfile() {
	for _, year := range []float64{2006.5, 2017.0, 2024.0} {
		p := power.TrendProfile(model.VendorIntel, year)
		fmt.Printf("%.0f: idle %.0f%% of full load\n", year, 100*p.IdleFrac)
	}
	// Output:
	// 2006: idle 69% of full load
	// 2017: idle 14% of full load
	// 2024: idle 30% of full load
}

// ExampleProfile_IdleQuotient reproduces the paper's Figure 6 metric on
// the model itself: extrapolating the 10 % and 20 % load powers to zero
// and dividing by the measured active idle.
func ExampleProfile_IdleQuotient() {
	p := power.Profile{
		IdleFrac:     0.15, // package C-states engaged
		LowIntercept: 0.28, // what idle would cost without them
		Beta:         0.9,
		TurboWeight:  0.3,
		TurboGamma:   3,
	}
	fmt.Printf("quotient: %.2f\n", p.IdleQuotient())
	// Output:
	// quotient: 1.91
}
