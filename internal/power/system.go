package power

import (
	"fmt"

	"repro/internal/catalog"
)

// Memory wattage per GB by era: FB-DIMM/DDR2 systems burn far more
// power per GB than DDR4, but dense DDR5 RDIMM configurations crept up
// again.
func memWattsPerGB(hwYear int) float64 {
	switch {
	case hwYear < 2012:
		return 0.50
	case hwYear < 2019:
		return 0.30
	default:
		return 0.25
	}
}

// platformWatts covers fans, drives, NICs and the board; dense modern
// systems (NVMe backplanes, BMCs, 100G NICs, high-static-pressure fans)
// burn considerably more than a 2008 pizza box.
func platformWatts(hwYear int) float64 {
	switch {
	case hwYear < 2012:
		return 35
	case hwYear < 2019:
		return 45
	default:
		return 85
	}
}

const (
	// cpuFullFrac is the fraction of rated TDP a socket draws at the
	// ssj 100 % interval (an integer workload does not saturate TDP the
	// way an AVX power virus does).
	cpuFullFrac = 0.82
	// psuLossFrac is the AC/DC conversion loss at load.
	psuLossFrac = 0.06
)

// SystemConfig describes the configured SUT around the CPUs.
type SystemConfig struct {
	Sockets int
	MemGB   int
	// PSUWatts is the rated PSU output (metadata; oversizing does not
	// change the modelled draw).
	PSUWatts int
}

// Validate reports the first impossible configuration parameter.
func (sc SystemConfig) Validate(spec catalog.CPUSpec) error {
	switch {
	case sc.Sockets < 1:
		return fmt.Errorf("power: %d sockets", sc.Sockets)
	case sc.Sockets > spec.MaxSockets:
		return fmt.Errorf("power: %d sockets exceeds %s max %d",
			sc.Sockets, spec.Name, spec.MaxSockets)
	case sc.MemGB < 1:
		return fmt.Errorf("power: %d GB memory", sc.MemGB)
	}
	return nil
}

// FullLoadWatts estimates the AC power at the 100 % interval for the
// given CPU and configuration.
func FullLoadWatts(spec catalog.CPUSpec, cfg SystemConfig) float64 {
	dc := float64(cfg.Sockets)*spec.TDPWatts*cpuFullFrac +
		float64(cfg.MemGB)*memWattsPerGB(spec.Avail.Year) +
		platformWatts(spec.Avail.Year)
	return dc * (1 + psuLossFrac)
}

// NewCurve builds the absolute power curve for a system: the trend
// profile for the CPU's vendor and availability date, scaled by the
// configuration's full-load power. Callers that need run-to-run spread
// perturb the returned curve's profile.
func NewCurve(spec catalog.CPUSpec, cfg SystemConfig) (Curve, error) {
	if err := cfg.Validate(spec); err != nil {
		return Curve{}, err
	}
	prof := TrendProfile(spec.Vendor, spec.Avail.Frac())
	if err := prof.Validate(); err != nil {
		return Curve{}, fmt.Errorf("power: trend profile for %s: %w", spec.Name, err)
	}
	return Curve{
		FullWatts: FullLoadWatts(spec, cfg),
		Prof:      prof,
	}, nil
}
