package power

import (
	"repro/internal/model"
)

// anchor is one point of the per-vendor trend tables: the typical power
// profile of systems whose hardware became available around Year.
type anchor struct {
	Year float64
	P    Profile
}

// The anchor tables encode the paper's findings as model inputs:
//
//   - IdleFrac falls from ≈0.70 (2006) to a minimum around 2017
//     (≈0.145 Intel / 0.175 AMD) and then regresses upward for Intel
//     (to ≈0.30 by 2024/25) while drifting slightly down for AMD —
//     Figure 5 and the 70.1 % → 15.7 % → 25.7 % yearly means.
//   - TurboWeight peaks for Intel in 2012–2016 (relative efficiency
//     above 1 at ≥70 % load, Figure 4) and rises for AMD around 2021
//     (relative efficiency approaching 1).
//   - The gap between LowIntercept/Beta and IdleFrac yields an
//     extrapolated idle quotient near 1.0 in 2006 rising to ≈1.3–2.0
//     with wide spread in recent years (Figure 6).
var intelAnchors = []anchor{
	{2005.0, Profile{IdleFrac: 0.72, LowIntercept: 0.74, Beta: 1.00, TurboWeight: 0.03, TurboGamma: 2.5}},
	{2007.0, Profile{IdleFrac: 0.68, LowIntercept: 0.71, Beta: 1.00, TurboWeight: 0.04, TurboGamma: 2.5}},
	{2008.5, Profile{IdleFrac: 0.55, LowIntercept: 0.60, Beta: 1.00, TurboWeight: 0.05, TurboGamma: 2.6}},
	{2010.0, Profile{IdleFrac: 0.35, LowIntercept: 0.46, Beta: 0.95, TurboWeight: 0.12, TurboGamma: 2.8}},
	{2012.0, Profile{IdleFrac: 0.22, LowIntercept: 0.33, Beta: 0.95, TurboWeight: 0.45, TurboGamma: 3.2}},
	{2014.0, Profile{IdleFrac: 0.18, LowIntercept: 0.31, Beta: 0.95, TurboWeight: 0.45, TurboGamma: 3.2}},
	{2017.0, Profile{IdleFrac: 0.145, LowIntercept: 0.27, Beta: 0.90, TurboWeight: 0.38, TurboGamma: 3.0}},
	{2019.0, Profile{IdleFrac: 0.18, LowIntercept: 0.28, Beta: 0.85, TurboWeight: 0.30, TurboGamma: 3.0}},
	{2021.0, Profile{IdleFrac: 0.22, LowIntercept: 0.29, Beta: 0.82, TurboWeight: 0.27, TurboGamma: 3.0}},
	{2023.0, Profile{IdleFrac: 0.27, LowIntercept: 0.31, Beta: 0.80, TurboWeight: 0.25, TurboGamma: 3.0}},
	{2025.0, Profile{IdleFrac: 0.32, LowIntercept: 0.34, Beta: 0.80, TurboWeight: 0.23, TurboGamma: 3.0}},
}

var amdAnchors = []anchor{
	{2005.0, Profile{IdleFrac: 0.72, LowIntercept: 0.74, Beta: 1.00, TurboWeight: 0.03, TurboGamma: 2.5}},
	{2007.0, Profile{IdleFrac: 0.68, LowIntercept: 0.71, Beta: 1.00, TurboWeight: 0.04, TurboGamma: 2.5}},
	{2009.0, Profile{IdleFrac: 0.50, LowIntercept: 0.56, Beta: 1.00, TurboWeight: 0.06, TurboGamma: 2.6}},
	{2011.0, Profile{IdleFrac: 0.33, LowIntercept: 0.44, Beta: 0.95, TurboWeight: 0.10, TurboGamma: 2.8}},
	{2013.0, Profile{IdleFrac: 0.24, LowIntercept: 0.38, Beta: 0.95, TurboWeight: 0.15, TurboGamma: 2.8}},
	{2017.0, Profile{IdleFrac: 0.175, LowIntercept: 0.30, Beta: 0.90, TurboWeight: 0.12, TurboGamma: 2.8}},
	{2019.0, Profile{IdleFrac: 0.155, LowIntercept: 0.27, Beta: 0.85, TurboWeight: 0.18, TurboGamma: 3.0}},
	{2021.0, Profile{IdleFrac: 0.135, LowIntercept: 0.24, Beta: 0.82, TurboWeight: 0.28, TurboGamma: 3.0}},
	{2023.0, Profile{IdleFrac: 0.12, LowIntercept: 0.22, Beta: 0.80, TurboWeight: 0.30, TurboGamma: 3.0}},
	{2025.0, Profile{IdleFrac: 0.11, LowIntercept: 0.21, Beta: 0.80, TurboWeight: 0.30, TurboGamma: 3.0}},
}

// otherAnchors covers non-Intel/AMD parts (filtered before analysis, but
// still rendered and parsed): modelled like a lagging Intel trend.
var otherAnchors = []anchor{
	{2005.0, Profile{IdleFrac: 0.75, LowIntercept: 0.77, Beta: 1.00, TurboWeight: 0.02, TurboGamma: 2.5}},
	{2012.0, Profile{IdleFrac: 0.40, LowIntercept: 0.48, Beta: 0.95, TurboWeight: 0.15, TurboGamma: 2.8}},
	{2025.0, Profile{IdleFrac: 0.30, LowIntercept: 0.36, Beta: 0.85, TurboWeight: 0.20, TurboGamma: 3.0}},
}

// TrendProfile returns the typical Profile for a system of the given CPU
// vendor whose hardware availability is yearFrac (e.g. 2017.54),
// linearly interpolated between anchors and clamped outside them.
func TrendProfile(v model.CPUVendor, yearFrac float64) Profile {
	table := otherAnchors
	switch v {
	case model.VendorIntel:
		table = intelAnchors
	case model.VendorAMD:
		table = amdAnchors
	}
	if yearFrac <= table[0].Year {
		return table[0].P
	}
	last := table[len(table)-1]
	if yearFrac >= last.Year {
		return last.P
	}
	for i := 1; i < len(table); i++ {
		if yearFrac > table[i].Year {
			continue
		}
		a, b := table[i-1], table[i]
		t := (yearFrac - a.Year) / (b.Year - a.Year)
		return Profile{
			IdleFrac:     lerp(a.P.IdleFrac, b.P.IdleFrac, t),
			LowIntercept: lerp(a.P.LowIntercept, b.P.LowIntercept, t),
			Beta:         lerp(a.P.Beta, b.P.Beta, t),
			TurboWeight:  lerp(a.P.TurboWeight, b.P.TurboWeight, t),
			TurboGamma:   lerp(a.P.TurboGamma, b.P.TurboGamma, t),
		}
	}
	return last.P // unreachable
}

func lerp(a, b, t float64) float64 { return a + (b-a)*t }
