package power

import (
	"math"
	"testing"

	"repro/internal/model"
)

func TestCStatesConsistentWithTrend(t *testing.T) {
	for _, v := range []model.CPUVendor{model.VendorIntel, model.VendorAMD} {
		for y := 2006.0; y <= 2024.0; y += 1.0 {
			cs := CStatesFor(v, y)
			if err := cs.Validate(); err != nil {
				t.Fatalf("%v @%v: %v", v, y, err)
			}
			want := TrendProfile(v, y).IdleFrac
			got := cs.IdleFrac()
			// The residency solution reproduces the measured idle
			// fraction unless clamped at a feasibility boundary.
			if math.Abs(got-want) > 0.08 {
				t.Errorf("%v @%v: residency idle %v vs trend %v", v, y, got, want)
			}
		}
	}
}

func TestCStatesNarrative(t *testing.T) {
	// Package residency grows dramatically from 2006 to 2017 (the
	// introduction of effective package sleep the paper describes)...
	early := CStatesFor(model.VendorIntel, 2006)
	peak := CStatesFor(model.VendorIntel, 2017)
	if peak.ResidencyPkgC < early.ResidencyPkgC+0.3 {
		t.Errorf("package residency barely grew: %v → %v",
			early.ResidencyPkgC, peak.ResidencyPkgC)
	}
	// ...and background C0 time creeps back up afterwards (the
	// per-logical-CPU background tasks of Section IV).
	late := CStatesFor(model.VendorIntel, 2024)
	if late.ResidencyC0 <= peak.ResidencyC0 {
		t.Errorf("C0 residency should rise after 2017: %v vs %v",
			peak.ResidencyC0, late.ResidencyC0)
	}
}

func TestCStateValidate(t *testing.T) {
	bad := []CStateProfile{
		{ResidencyC0: 0.5, ResidencyCoreC: 0.2, ResidencyPkgC: 0.2,
			PowerC0: 0.4, PowerCoreC: 0.3, PowerPkgC: 0.1}, // sums to 0.9
		{ResidencyC0: 0.2, ResidencyCoreC: 0.4, ResidencyPkgC: 0.4,
			PowerC0: 0.1, PowerCoreC: 0.3, PowerPkgC: 0.2}, // power misordered
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad profile %d validated", i)
		}
	}
}
