package power

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/catalog"
	"repro/internal/model"
)

func TestProfileValidate(t *testing.T) {
	good := Profile{IdleFrac: 0.2, LowIntercept: 0.3, Beta: 0.85,
		TurboWeight: 0.3, TurboGamma: 3}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Profile{
		{IdleFrac: -0.1, LowIntercept: 0.3, Beta: 0.8, TurboWeight: 0.3, TurboGamma: 3},
		{IdleFrac: 0.2, LowIntercept: 1.2, Beta: 0.8, TurboWeight: 0.3, TurboGamma: 3},
		{IdleFrac: 0.2, LowIntercept: 0.3, Beta: 0, TurboWeight: 0.3, TurboGamma: 3},
		{IdleFrac: 0.2, LowIntercept: 0.3, Beta: 0.8, TurboWeight: 2, TurboGamma: 3},
		{IdleFrac: 0.2, LowIntercept: 0.3, Beta: 0.8, TurboWeight: 0.3, TurboGamma: 0.5},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad profile %d validated: %+v", i, p)
		}
	}
}

func TestRelEndpoints(t *testing.T) {
	p := Profile{IdleFrac: 0.2, LowIntercept: 0.3, Beta: 0.85,
		TurboWeight: 0.3, TurboGamma: 3}
	if got := p.Rel(1); !almostEq(got, 1, 1e-12) {
		t.Errorf("Rel(1) = %v, want 1", got)
	}
	if got := p.Rel(0); got != 0.2 {
		t.Errorf("Rel(0) = %v, want IdleFrac", got)
	}
	if got := p.RelNoIdleOpt(0); got != 0.3 {
		t.Errorf("RelNoIdleOpt(0) = %v, want LowIntercept", got)
	}
	// Idle optimization means measured idle sits below the curve.
	if p.Rel(0) >= p.RelNoIdleOpt(0) {
		t.Error("measured idle should undercut the load curve")
	}
	// Clamping.
	if p.Rel(1.5) != p.Rel(1) || p.RelNoIdleOpt(-0.5) != p.RelNoIdleOpt(0) {
		t.Error("Rel should clamp u into [0,1]")
	}
}

func TestRelMonotone(t *testing.T) {
	f := func(i8, r8, b8, w8, g8 uint8, u1, u2 float64) bool {
		p := Profile{
			IdleFrac:     0.05 + float64(i8%60)/100, // 0.05–0.64
			LowIntercept: 0.05 + float64(r8%70)/100, // 0.05–0.74
			Beta:         0.5 + float64(b8%50)/100,  // 0.5–0.99
			TurboWeight:  float64(w8%50) / 100,      // 0–0.49
			TurboGamma:   1 + float64(g8%40)/10,     // 1–4.9
		}
		// Monotonicity is claimed on the load curve (u > 0).
		a := 0.01 + 0.99*math.Abs(math.Mod(u1, 1))
		b := 0.01 + 0.99*math.Abs(math.Mod(u2, 1))
		if a > b {
			a, b = b, a
		}
		return p.Rel(a) <= p.Rel(b)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIdleQuotient(t *testing.T) {
	// A perfectly linear curve with no idle optimization has quotient 1.
	linear := Profile{IdleFrac: 0.5, LowIntercept: 0.5, Beta: 1,
		TurboWeight: 0, TurboGamma: 2}
	if got := linear.IdleQuotient(); !almostEq(got, 1, 1e-9) {
		t.Errorf("linear quotient = %v, want 1", got)
	}
	// Strong package C-states: quotient well above 1.
	opt := Profile{IdleFrac: 0.15, LowIntercept: 0.28, Beta: 0.9,
		TurboWeight: 0.3, TurboGamma: 3}
	if got := opt.IdleQuotient(); got < 1.3 {
		t.Errorf("optimized quotient = %v, want > 1.3", got)
	}
	degenerate := Profile{IdleFrac: 0}
	if !math.IsNaN(degenerate.IdleQuotient()) {
		t.Error("zero idle should give NaN quotient")
	}
}

func TestTrendIdleFractionHistory(t *testing.T) {
	// The paper's S5 statistic: ≈0.70 in 2006, minimum near 2017,
	// regression upward by 2024 (Intel-driven).
	i2006 := TrendProfile(model.VendorIntel, 2006.5).IdleFrac
	if i2006 < 0.6 || i2006 > 0.75 {
		t.Errorf("Intel 2006 idle frac = %v, want ≈0.7", i2006)
	}
	i2017 := TrendProfile(model.VendorIntel, 2017.0).IdleFrac
	if i2017 > 0.16 {
		t.Errorf("Intel 2017 idle frac = %v, want ≈0.145", i2017)
	}
	i2024 := TrendProfile(model.VendorIntel, 2024.0).IdleFrac
	if i2024 < i2017+0.08 {
		t.Errorf("Intel idle regression missing: 2017 %v vs 2024 %v", i2017, i2024)
	}
	// AMD keeps improving.
	a2019 := TrendProfile(model.VendorAMD, 2019.0).IdleFrac
	a2024 := TrendProfile(model.VendorAMD, 2024.0).IdleFrac
	if a2024 > a2019 {
		t.Errorf("AMD idle frac should fall: 2019 %v vs 2024 %v", a2019, a2024)
	}
}

func TestTrendRelativeEfficiencyEras(t *testing.T) {
	relEff := func(p Profile, u float64) float64 { return u / p.Rel(u) }

	// Early systems: partial load clearly less efficient.
	early := TrendProfile(model.VendorIntel, 2007.0)
	if r := relEff(early, 0.7); r > 0.85 {
		t.Errorf("2007 rel eff at 70%% = %v, want « 1", r)
	}
	// Intel 2012–2016: above 1 for loads ≥ 70 %.
	for _, u := range []float64{0.7, 0.8, 0.9} {
		p := TrendProfile(model.VendorIntel, 2014.0)
		if r := relEff(p, u); r < 1 {
			t.Errorf("Intel 2014 rel eff at %v%% = %v, want > 1", u*100, r)
		}
	}
	// Intel 2023: regressed back to ≈1 (below the 2014 peak).
	p14 := TrendProfile(model.VendorIntel, 2014.0)
	p23 := TrendProfile(model.VendorIntel, 2023.0)
	if relEff(p23, 0.8) >= relEff(p14, 0.8) {
		t.Error("Intel post-2017 regression toward 1 missing at 80% load")
	}
	// AMD approaches 1 around 2021 from below.
	a18 := TrendProfile(model.VendorAMD, 2018.0)
	a21 := TrendProfile(model.VendorAMD, 2021.5)
	if relEff(a18, 0.7) >= 0.97 {
		t.Errorf("AMD 2018 rel eff at 70%% = %v, want < 0.97", relEff(a18, 0.7))
	}
	if r := relEff(a21, 0.7); r < 0.93 || r > 1.1 {
		t.Errorf("AMD 2021 rel eff at 70%% = %v, want ≈1", r)
	}
}

func TestTrendQuotientHistory(t *testing.T) {
	q2006 := TrendProfile(model.VendorIntel, 2006.0).IdleQuotient()
	if q2006 > 1.15 {
		t.Errorf("2006 quotient = %v, want ≈1", q2006)
	}
	q2017 := TrendProfile(model.VendorIntel, 2017.0).IdleQuotient()
	if q2017 < 1.5 {
		t.Errorf("2017 Intel quotient = %v, want > 1.5", q2017)
	}
	qAMD2023 := TrendProfile(model.VendorAMD, 2023.0).IdleQuotient()
	if qAMD2023 < 1.5 {
		t.Errorf("2023 AMD quotient = %v, want > 1.5", qAMD2023)
	}
}

func TestTrendProfilesValidEverywhere(t *testing.T) {
	for _, v := range []model.CPUVendor{model.VendorIntel, model.VendorAMD, model.VendorOther} {
		for y := 2000.0; y <= 2030.0; y += 0.25 {
			p := TrendProfile(v, y)
			if err := p.Validate(); err != nil {
				t.Fatalf("%v @ %v: %v", v, y, err)
			}
			if p.IdleFrac > p.LowIntercept {
				t.Fatalf("%v @ %v: idle %v above intercept %v (negative optimization)",
					v, y, p.IdleFrac, p.LowIntercept)
			}
		}
	}
}

func TestFullLoadWatts(t *testing.T) {
	early, err := catalog.Find("X5355")
	if err != nil {
		t.Fatal(err)
	}
	late, err := catalog.Find("EPYC 9754")
	if err != nil {
		t.Fatal(err)
	}
	pEarly := FullLoadWatts(early, SystemConfig{Sockets: 2, MemGB: 16, PSUWatts: 650})
	pLate := FullLoadWatts(late, SystemConfig{Sockets: 2, MemGB: 384, PSUWatts: 1100})
	// Per-socket power should land near the paper's trend endpoints
	// (≈119 W early mean, ≈303 W late mean) within loose bounds.
	if ps := pEarly / 2; ps < 80 || ps > 170 {
		t.Errorf("2006 per-socket full power = %v, want ≈120", ps)
	}
	if ps := pLate / 2; ps < 250 || ps > 430 {
		t.Errorf("2023 per-socket full power = %v, want ≈330", ps)
	}
	if pLate < 2*pEarly {
		t.Errorf("late (%v) should be ≥2× early (%v)", pLate, pEarly)
	}
}

func TestNewCurve(t *testing.T) {
	spec, err := catalog.Find("EPYC 7742")
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCurve(spec, SystemConfig{Sockets: 2, MemGB: 256, PSUWatts: 1100})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.At(1); !almostEq(got, c.FullWatts, 1e-9) {
		t.Errorf("At(1) = %v, want FullWatts %v", got, c.FullWatts)
	}
	if c.At(0) >= c.At(0.1) {
		t.Error("idle should draw less than 10% load")
	}
	// Config validation.
	if _, err := NewCurve(spec, SystemConfig{Sockets: 8, MemGB: 64}); err == nil {
		t.Error("8 sockets should exceed MaxSockets")
	}
	if _, err := NewCurve(spec, SystemConfig{Sockets: 1, MemGB: 0}); err == nil {
		t.Error("0 GB memory should error")
	}
}

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }
