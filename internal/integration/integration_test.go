// Package integration_test exercises the system end-to-end across
// module boundaries: workload engine → ptdaemon TCP measurement →
// report rendering → parsing → classification → analysis, plus the full
// corpus round trip through the filesystem.
package integration_test

import (
	"math"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/parser"
	"repro/internal/power"
	"repro/internal/ptd"
	"repro/internal/report"
	"repro/internal/ssj"
)

// TestSSJOverPTDToReportToAnalysis runs the real benchmark engine with
// a TCP-attached power analyzer, renders the run as a result file,
// parses it back, and checks it is analysable — the full closed loop
// that produced the paper's dataset.
func TestSSJOverPTDToReportToAnalysis(t *testing.T) {
	spec, err := catalog.Find("EPYC 9554")
	if err != nil {
		t.Fatal(err)
	}
	curve, err := power.NewCurve(spec, power.SystemConfig{Sockets: 2, MemGB: 384})
	if err != nil {
		t.Fatal(err)
	}
	var tracker ptd.LoadTracker
	server, err := ptd.NewServer(ptd.CurveSource(curve, &tracker), time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := server.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	meter, err := ptd.Dial(addr, &tracker, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer meter.Close()

	cfg := ssj.DefaultConfig(2)
	cfg.IntervalDuration = 40 * time.Millisecond
	cfg.LoadLevels = []int{100, 70, 40, 20, 10}
	engine, err := ssj.NewEngine(cfg, meter)
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Run()
	if err != nil {
		t.Fatal(err)
	}

	run := &model.Run{
		ID: "power_ssj2008-20240601-99999", Accepted: true,
		TestDate: model.YM(2024, time.May), SubmissionDate: model.YM(2024, time.June),
		HWAvail: spec.Avail, SWAvail: model.YM(2024, time.April),
		SystemVendor: "integration", SystemName: "loop",
		CPUName: spec.Name, CPUVendor: spec.Vendor, CPUClass: spec.Class,
		Nodes: 1, SocketsPerNode: 2, CoresPerSocket: spec.Cores,
		ThreadsPerCore: spec.ThreadsPerCore, TotalCores: 2 * spec.Cores,
		TotalThreads: 2 * spec.Cores * spec.ThreadsPerCore,
		NominalGHz:   spec.NominalGHz, TDPWatts: spec.TDPWatts,
		MemGB: 384, PSUWatts: 1100,
		OSName: "Linux (integration)", OSFamily: model.OSLinux,
		JVM: "repro engine", Points: res.Points,
	}

	text := report.RenderString(run)
	parsed, err := parser.ParseString(text)
	if err != nil {
		t.Fatalf("parse rendered live run: %v", err)
	}
	if got := model.Classify(parsed); got != model.RejectNone {
		t.Fatalf("live run classified %v", got)
	}
	// Physical sanity of the measured curve.
	if parsed.IdleFraction() <= 0 || parsed.IdleFraction() >= 0.5 {
		t.Errorf("idle fraction = %v", parsed.IdleFraction())
	}
	if q := parsed.ExtrapolatedIdleQuotient(); q < 1 {
		t.Errorf("idle quotient = %v, want ≥ 1 for a 2022-era AMD part", q)
	}
	if parsed.OverallOpsPerWatt() <= 0 {
		t.Error("no overall score")
	}
	// The analysis layer accepts it.
	fig := analysis.Fig5IdleFraction([]*model.Run{parsed})
	if len(fig.Points) != 1 {
		t.Fatalf("analysis dropped the run")
	}
}

// TestFullCorpusDiskRoundTrip is the specgen → specparse pipeline: the
// default corpus is written to disk, streamed back through a DirSource
// engine, and must reproduce the paper's funnel and headline statistics
// exactly.
func TestFullCorpusDiskRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("writes 1017 files")
	}
	direct := core.New() // default synthetic source
	runs, err := direct.Runs()
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "corpus")
	if err := core.WriteCorpus(dir, runs, 0); err != nil {
		t.Fatal(err)
	}
	streamed := core.New(core.WithSource(core.DirSource{Dir: dir}))
	ds, err := streamed.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	f := ds.Funnel
	if f.Raw != 1017 || f.Parsed != 960 || f.Comparable != 676 {
		t.Fatalf("funnel after disk round trip: %d/%d/%d", f.Raw, f.Parsed, f.Comparable)
	}
	// Derived metrics survive the decimal formatting of the reports; the
	// figures come out of each engine's analysis registry.
	dFig, err := core.AnalysisAs[analysis.TrendFigure](direct, "fig3")
	if err != nil {
		t.Fatal(err)
	}
	pFig, err := core.AnalysisAs[analysis.TrendFigure](streamed, "fig3")
	if err != nil {
		t.Fatal(err)
	}
	dEff, pEff := dFig.Yearly, pFig.Yearly
	if len(dEff) != len(pEff) {
		t.Fatalf("yearly bins differ: %d vs %d", len(dEff), len(pEff))
	}
	for i := range dEff {
		if dEff[i].N != pEff[i].N {
			t.Errorf("year %d: n %d vs %d", dEff[i].Year, dEff[i].N, pEff[i].N)
		}
		if rel := math.Abs(dEff[i].Mean-pEff[i].Mean) / dEff[i].Mean; rel > 0.01 {
			t.Errorf("year %d: mean eff drifted %.2f%% across render/parse",
				dEff[i].Year, 100*rel)
		}
	}
	// Top-100 composition is stable across the round trip.
	a, err := core.AnalysisAs[analysis.TopEfficiency](direct, "top100")
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.AnalysisAs[analysis.TopEfficiency](streamed, "top100")
	if err != nil {
		t.Fatal(err)
	}
	if a.ByVendor["AMD"] != b.ByVendor["AMD"] {
		t.Errorf("top-100 AMD changed across round trip: %d vs %d",
			a.ByVendor["AMD"], b.ByVendor["AMD"])
	}
}

// TestSimMeterVsPTDAgree runs the same engine config against the
// in-process meter and the TCP meter; the measured power curves must
// agree closely (D5 design decision).
func TestSimMeterVsPTDAgree(t *testing.T) {
	spec, err := catalog.Find("X5570")
	if err != nil {
		t.Fatal(err)
	}
	curve, err := power.NewCurve(spec, power.SystemConfig{Sockets: 2, MemGB: 16})
	if err != nil {
		t.Fatal(err)
	}
	runWith := func(meter ssj.Meter) *ssj.Result {
		cfg := ssj.DefaultConfig(2)
		cfg.IntervalDuration = 30 * time.Millisecond
		cfg.LoadLevels = []int{100, 50, 10}
		engine, err := ssj.NewEngine(cfg, meter)
		if err != nil {
			t.Fatal(err)
		}
		res, err := engine.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	inproc := runWith(ssj.NewSimMeter(curve, 0, 1))

	var tracker ptd.LoadTracker
	server, err := ptd.NewServer(ptd.CurveSource(curve, &tracker), time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := server.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	client, err := ptd.Dial(addr, &tracker, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	remote := runWith(client)

	for i, p := range inproc.Points {
		q := remote.Points[i]
		if p.TargetLoad != q.TargetLoad {
			t.Fatalf("point order differs at %d", i)
		}
		if rel := math.Abs(p.AvgPower-q.AvgPower) / p.AvgPower; rel > 0.02 {
			t.Errorf("load %d%%: in-process %.1f W vs ptd %.1f W (%.1f%% apart)",
				p.TargetLoad, p.AvgPower, q.AvgPower, 100*rel)
		}
	}
}
