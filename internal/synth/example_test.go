package synth_test

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/synth"
)

// ExampleGenerate produces the paper-calibrated corpus and applies the
// Section II filter funnel.
func ExampleGenerate() {
	runs, err := synth.Generate(synth.DefaultOptions())
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	parsed, comparable := 0, 0
	for _, r := range runs {
		if model.CheckParseConsistency(r) != model.RejectNone {
			continue
		}
		parsed++
		if model.CheckComparability(r) == model.RejectNone {
			comparable++
		}
	}
	fmt.Printf("%d raw → %d parsed → %d comparable\n", len(runs), parsed, comparable)
	// Output:
	// 1017 raw → 960 parsed → 676 comparable
}
