package synth

import (
	"fmt"

	"repro/internal/model"
)

// generateDefects builds the 57 runs the parse-consistency stage
// removes, one corruption per paper-reported reason.
func (g *generator) generateDefects(opt Options) ([]*model.Run, []model.RejectReason, error) {
	type defect struct {
		reason  model.RejectReason
		count   int
		corrupt func(*model.Run)
	}
	defects := []defect{
		{model.RejectNotAccepted, opt.Defects.NotAccepted, func(r *model.Run) {
			r.Accepted = false
		}},
		{model.RejectAmbiguousDate, opt.Defects.AmbiguousDate, func(r *model.Run) {
			r.HWAvail = model.YearMonth{} // renders as "-", parses as zero
		}},
		{model.RejectImplausibleDate, opt.Defects.ImplausibleDate, func(r *model.Run) {
			r.HWAvail = r.TestDate.AddMonths(24) // GA two years after the test
		}},
		{model.RejectAmbiguousCPUName, opt.Defects.AmbiguousCPUName, func(r *model.Run) {
			r.CPUName = r.CPUName + " or " + r.CPUName + "L"
		}},
		{model.RejectMissingNodeCount, opt.Defects.MissingNodeCount, func(r *model.Run) {
			r.Nodes = 0 // the report omits the Nodes line
		}},
		{model.RejectInconsistentCoreThread, opt.Defects.InconsistentCoreThrd, func(r *model.Run) {
			r.TotalCores += r.CoresPerSocket // double-counted one socket
		}},
		{model.RejectImplausibleCoreThread, opt.Defects.ImplausibleCoreThrd, func(r *model.Run) {
			r.ThreadsPerCore = 16 // no x86 server part has 16-way SMT
			r.TotalThreads = r.TotalCores * 16
		}},
	}

	// Defect submissions are spread across the corpus's active years,
	// alternating vendors like the real review queue.
	years := []int{2007, 2008, 2009, 2010, 2011, 2012, 2018, 2019, 2020, 2021, 2022, 2023}
	vendors := []model.CPUVendor{model.VendorIntel, model.VendorIntel, model.VendorAMD}

	var runs []*model.Run
	var intents []model.RejectReason
	k := 0
	for _, d := range defects {
		for i := 0; i < d.count; i++ {
			year := years[k%len(years)]
			vendor := vendors[k%len(vendors)]
			k++
			sockets := 1 + k%2
			r, err := g.buildRun(buildParams{
				year: year, vendor: vendor, linux: year >= 2018 && k%3 == 0,
				nodes: 1, sockets: sockets,
			})
			if err != nil {
				return nil, nil, fmt.Errorf("synth: defect base run: %w", err)
			}
			d.corrupt(r)
			if got := model.Classify(r); got != d.reason {
				return nil, nil, fmt.Errorf("synth: defect %q classified as %q", d.reason, got)
			}
			runs = append(runs, r)
			intents = append(intents, d.reason)
		}
	}
	return runs, intents, nil
}
