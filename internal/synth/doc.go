// Package synth generates the synthetic SPECpower_ssj2008 corpus that
// stands in for the 1017 vendor-submitted result files the paper
// downloads from spec.org (which are not redistributable and whose
// production requires physical servers and power analyzers).
//
// The generator is calibrated, not arbitrary: a per-year plan fixes the
// submission counts, vendor and OS shares, and multi-node/big-SMP
// populations so that the paper's filter funnel comes out exactly
// (1017 → 960 parsed → 676 comparable, with the per-reason counts of
// Section II), and the power/performance model of the power and catalog
// packages makes every trend statistic land near the published value
// (see EXPERIMENTS.md for paper-vs-measured numbers).
//
// Generation is deterministic under a seed. DefaultSeed reproduces the
// calibration targets asserted by the test suite.
package synth
