package synth

import (
	"fmt"
	"math/rand"
)

// sysVendors are the submitting OEMs, weighted roughly like the corpus.
var sysVendors = []struct {
	name   string
	series string
	weight int
}{
	{"Hewlett Packard Enterprise", "ProLiant DL%d Gen%d", 4},
	{"Dell Inc.", "PowerEdge R%d", 4},
	{"Lenovo Global Technology", "ThinkSystem SR%d V%d", 3},
	{"Fujitsu", "PRIMERGY RX%d M%d", 3},
	{"IBM Corporation", "System x3%d M%d", 2},
	{"Supermicro", "SuperServer SYS-%d", 1},
	{"Inspur Corporation", "NF%d M%d", 1},
}

// systemName invents an OEM and model for a run.
func systemName(rng *rand.Rand, year int) (vendor, modelName string) {
	total := 0
	for _, v := range sysVendors {
		total += v.weight
	}
	pick := rng.Intn(total)
	for _, v := range sysVendors {
		pick -= v.weight
		if pick < 0 {
			gen := 1 + (year-2005)/3
			switch v.name {
			case "Hewlett Packard Enterprise":
				return v.name, fmt.Sprintf(v.series, 300+20*rng.Intn(4), gen)
			case "Dell Inc.":
				return v.name, fmt.Sprintf(v.series, 600+10*rng.Intn(6)+5*(gen%2))
			case "Lenovo Global Technology":
				return v.name, fmt.Sprintf(v.series, 630+15*rng.Intn(3), 1+(year-2017+3)/3)
			case "Fujitsu":
				return v.name, fmt.Sprintf(v.series, 200+100*rng.Intn(3), gen)
			case "IBM Corporation":
				return v.name, fmt.Sprintf(v.series, 550+100*rng.Intn(3), gen)
			case "Supermicro":
				return v.name, fmt.Sprintf(v.series, 1000+rng.Intn(9000))
			default:
				return v.name, fmt.Sprintf(v.series, 5000+100*rng.Intn(4), gen)
			}
		}
	}
	return "Generic", "Server"
}

// windowsName returns an era-appropriate Windows Server edition.
func windowsName(year int) string {
	switch {
	case year < 2008:
		return "Microsoft Windows Server 2003 Enterprise x64 Edition"
	case year < 2012:
		return "Microsoft Windows Server 2008 R2 Enterprise"
	case year < 2016:
		return "Microsoft Windows Server 2012 R2 Standard"
	case year < 2019:
		return "Microsoft Windows Server 2016 Datacenter"
	case year < 2022:
		return "Microsoft Windows Server 2019 Datacenter"
	default:
		return "Microsoft Windows Server 2022 Datacenter"
	}
}

// linuxName returns an era-appropriate distribution.
func linuxName(rng *rand.Rand, year int) string {
	switch {
	case year < 2012:
		return "SUSE Linux Enterprise Server 11"
	case year < 2018:
		return [...]string{
			"SUSE Linux Enterprise Server 12 SP1",
			"Red Hat Enterprise Linux Server 7.2",
		}[rng.Intn(2)]
	case year < 2022:
		return [...]string{
			"SUSE Linux Enterprise Server 15 SP1",
			"Red Hat Enterprise Linux 8.2",
			"Ubuntu 20.04 LTS",
		}[rng.Intn(3)]
	default:
		return [...]string{
			"SUSE Linux Enterprise Server 15 SP4",
			"Red Hat Enterprise Linux release 9.0 (Plow)",
			"Ubuntu 22.04 LTS",
		}[rng.Intn(3)]
	}
}

// otherOSName covers the pre-2018 non-Windows sliver.
func otherOSName(year int) string {
	if year < 2012 {
		return "Sun Solaris 10"
	}
	return "IBM AIX 7.1"
}

// jvmName returns an era-appropriate Java runtime.
func jvmName(rng *rand.Rand, year int) string {
	switch {
	case year < 2010:
		return "BEA JRockit P27.4 (Java SE 5)"
	case year < 2015:
		return [...]string{
			"Oracle Java HotSpot 64-Bit Server VM (build 1.6)",
			"IBM J9 VM (build 2.4, Java 6)",
		}[rng.Intn(2)]
	case year < 2020:
		return "Oracle Java HotSpot 64-Bit Server VM (build 1.8)"
	default:
		return [...]string{
			"Oracle Java HotSpot 64-Bit Server VM (Java 11)",
			"OpenJDK 64-Bit Server VM (build 17)",
		}[rng.Intn(2)]
	}
}

// standardMemSizes are the configured-memory steps (GB).
var standardMemSizes = []int{
	4, 8, 16, 24, 32, 48, 64, 96, 128, 192, 256, 384, 512, 768, 1024, 1536, 2048, 3072,
}

// roundMemGB snaps a raw memory estimate up to a standard size.
func roundMemGB(raw float64) int {
	for _, s := range standardMemSizes {
		if float64(s) >= raw {
			return s
		}
	}
	return standardMemSizes[len(standardMemSizes)-1]
}

// standardPSUSizes are rated PSU outputs (W).
var standardPSUSizes = []int{450, 550, 650, 750, 800, 1100, 1400, 1600, 2000, 2600, 3000}

// roundPSU snaps a power estimate (with headroom) up to a standard PSU.
func roundPSU(fullWatts float64) int {
	need := fullWatts * 1.35
	for _, s := range standardPSUSizes {
		if float64(s) >= need {
			return s
		}
	}
	return standardPSUSizes[len(standardPSUSizes)-1]
}

// memPerCoreGB is the era-typical configured memory per core.
func memPerCoreGB(year int) float64 {
	switch {
	case year < 2010:
		return 2
	case year < 2017:
		return 3
	default:
		return 2 // core counts exploded; GB/core fell back
	}
}

// maxMemGB caps configured memory: vendors stop scaling memory linearly
// on very high core-count parts.
const maxMemGB = 768
