package synth

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"repro/internal/catalog"
	"repro/internal/model"
	"repro/internal/power"
)

// DefaultSeed is the seed whose corpus the calibration tests pin down.
// It was selected by sweeping seeds and choosing one whose sampled
// statistics sit closest to the paper's published values (top-100
// efficiency composition, per-vendor core means, idle-fraction history,
// power-growth factors).
const DefaultSeed = 14

// Options configures corpus generation.
type Options struct {
	Seed    int64
	Plan    []YearPlan
	Defects DefectPlan
}

// DefaultOptions returns the paper-calibrated configuration.
func DefaultOptions() Options {
	return Options{Seed: DefaultSeed, Plan: DefaultPlan, Defects: DefaultDefects}
}

// Generate produces the full corpus: parsed-quality runs per the year
// plan plus the defect population, ordered by submission date with
// sequential SPEC-style IDs. It verifies that every run classifies as
// intended and fails loudly otherwise.
func Generate(opt Options) ([]*model.Run, error) {
	if len(opt.Plan) == 0 {
		return nil, fmt.Errorf("synth: empty year plan")
	}
	g := &generator{
		rng: rand.New(rand.NewSource(opt.Seed)),
	}
	var runs []*model.Run
	var intents []model.RejectReason

	for _, yp := range opt.Plan {
		if yp.Good() < 0 {
			return nil, fmt.Errorf("synth: year %d over-allocated (good=%d)", yp.Year, yp.Good())
		}
		yearRuns, yearIntents, err := g.generateYear(yp)
		if err != nil {
			return nil, err
		}
		runs = append(runs, yearRuns...)
		intents = append(intents, yearIntents...)
	}

	defRuns, defIntents, err := g.generateDefects(opt)
	if err != nil {
		return nil, err
	}
	runs = append(runs, defRuns...)
	intents = append(intents, defIntents...)

	// Verify intent before handing the corpus out.
	for i, r := range runs {
		if got := model.Classify(r); got != intents[i] {
			return nil, fmt.Errorf("synth: run %d (%s) classifies as %q, intended %q",
				i, r.CPUName, got, intents[i])
		}
	}
	assignIDs(runs)
	return runs, nil
}

type generator struct {
	rng *rand.Rand
}

// generateYear builds every parsed run of one plan year.
func (g *generator) generateYear(yp YearPlan) ([]*model.Run, []model.RejectReason, error) {
	var runs []*model.Run
	var intents []model.RejectReason

	x86 := yp.Good() + yp.Multi
	amdQuota := int(math.Round(yp.AMDShare * float64(x86)))
	linuxQuota := int(math.Round(yp.LinuxShare * float64(x86)))

	// Vendor assignment across the x86 population (multi runs last so
	// quotas spread over both groups deterministically).
	vendors := make([]model.CPUVendor, x86)
	for i := range vendors {
		if i < amdQuota {
			vendors[i] = model.VendorAMD
		} else {
			vendors[i] = model.VendorIntel
		}
	}
	g.rng.Shuffle(len(vendors), func(i, j int) {
		vendors[i], vendors[j] = vendors[j], vendors[i]
	})
	osLinux := make([]bool, x86)
	for i := 0; i < linuxQuota && i < x86; i++ {
		osLinux[i] = true
	}
	g.rng.Shuffle(len(osLinux), func(i, j int) {
		osLinux[i], osLinux[j] = osLinux[j], osLinux[i]
	})

	twoSock := int(math.Round(yp.TwoSocketShare * float64(yp.Good())))
	for i := 0; i < yp.Good(); i++ {
		sockets := 1
		if i < twoSock {
			sockets = 2
		}
		r, err := g.buildRun(buildParams{
			year: yp.Year, vendor: vendors[i], linux: osLinux[i],
			nodes: 1, sockets: sockets,
		})
		if err != nil {
			return nil, nil, err
		}
		// The real corpus contains a couple of Apple Xserve submissions
		// (macOS appears in Figure 1's legend): plant one per early
		// Xserve-era year on an Intel Windows run.
		if (yp.Year == 2008 || yp.Year == 2009) && i == 0 &&
			r.CPUVendor == model.VendorIntel && r.OSFamily == model.OSWindows {
			r.SystemVendor = "Apple Inc."
			r.SystemName = "Xserve (Early 2009)"
			r.OSName = "Mac OS X Server 10.5"
			r.OSFamily = model.ParseOSFamily(r.OSName)
		}
		runs = append(runs, r)
		intents = append(intents, model.RejectNone)
	}
	for i := 0; i < yp.Multi; i++ {
		idx := yp.Good() + i
		r, err := g.buildMulti(yp.Year, vendors[idx], osLinux[idx])
		if err != nil {
			return nil, nil, err
		}
		runs = append(runs, r)
		intents = append(intents, model.RejectMultiNodeOrBigSMP)
	}
	for i := 0; i < yp.NonServer; i++ {
		r, err := g.buildNonServer(yp.Year)
		if err != nil {
			return nil, nil, err
		}
		runs = append(runs, r)
		intents = append(intents, model.RejectNonServerCPU)
	}
	for i := 0; i < yp.NonX86; i++ {
		r, err := g.buildNonX86(yp.Year)
		if err != nil {
			return nil, nil, err
		}
		runs = append(runs, r)
		intents = append(intents, model.RejectNonX86Vendor)
	}
	return runs, intents, nil
}

// buildParams collects the knobs of one run.
type buildParams struct {
	year    int
	vendor  model.CPUVendor
	linux   bool
	otherOS bool // Solaris/AIX (non-x86 systems)
	nodes   int
	sockets int
	spec    *catalog.CPUSpec // explicit part; nil = sample from catalog
}

// buildRun constructs one internally consistent run.
func (g *generator) buildRun(p buildParams) (*model.Run, error) {
	hw := model.YM(p.year, time.Month(1+g.rng.Intn(12)))
	var spec catalog.CPUSpec
	if p.spec != nil {
		spec = *p.spec
		if spec.Avail.After(hw) {
			hw = spec.Avail.AddMonths(g.rng.Intn(4))
			if hw.Year != p.year {
				hw = model.YM(p.year, time.December)
			}
		}
	} else {
		var err error
		spec, err = g.pickSpec(p.vendor, hw, p.sockets)
		if err != nil {
			return nil, fmt.Errorf("synth: year %d: %w", p.year, err)
		}
		if spec.Avail.After(hw) {
			hw = spec.Avail // GA of the system tracks GA of its CPU
		}
	}

	test := hw.AddMonths(g.rng.Intn(6) - 1)
	if test.Before(spec.Avail.AddMonths(-2)) {
		test = spec.Avail // testing rarely precedes silicon by much
	}
	if hw.Index() > test.Index()+18 {
		test = hw.AddMonths(-2)
	}
	submission := test.AddMonths(1 + g.rng.Intn(3))
	sw := test.AddMonths(-g.rng.Intn(7))

	totalCores := p.nodes * p.sockets * spec.Cores
	memRaw := float64(totalCores) * memPerCoreGB(p.year) * (0.8 + 0.7*g.rng.Float64())
	if memRaw > maxMemGB*float64(p.nodes) {
		memRaw = maxMemGB * float64(p.nodes)
	}
	memGB := roundMemGB(memRaw)

	cfg := power.SystemConfig{Sockets: p.sockets, MemGB: memGB / p.nodes}
	if cfg.MemGB < 1 {
		cfg.MemGB = 1
	}
	perNodeFull := power.FullLoadWatts(spec, cfg)
	fullWatts := perNodeFull * float64(p.nodes) * g.lognormal(0.08)
	cfg.PSUWatts = roundPSU(perNodeFull)

	prof := g.jitterProfile(power.TrendProfile(spec.Vendor, hw.Frac()))

	nodePenalty := math.Pow(0.97, float64(p.nodes-1))
	opsMax := spec.OpsPerCoreGHz * float64(totalCores) * spec.NominalGHz *
		g.lognormal(0.10) * nodePenalty

	sysVendor, sysModel := systemName(g.rng, p.year)
	osName := windowsName(p.year)
	switch {
	case p.otherOS:
		osName = otherOSName(p.year)
	case p.linux:
		osName = linuxName(g.rng, p.year)
	}

	r := &model.Run{
		Accepted:       true,
		TestDate:       test,
		SubmissionDate: submission,
		HWAvail:        hw,
		SWAvail:        sw,
		SystemVendor:   sysVendor,
		SystemName:     sysModel,
		CPUName:        spec.Name,
		CPUVendor:      spec.Vendor,
		CPUClass:       spec.Class,
		Nodes:          p.nodes,
		SocketsPerNode: p.sockets,
		CoresPerSocket: spec.Cores,
		ThreadsPerCore: spec.ThreadsPerCore,
		TotalCores:     totalCores,
		TotalThreads:   totalCores * spec.ThreadsPerCore,
		NominalGHz:     spec.NominalGHz,
		TDPWatts:       spec.TDPWatts,
		MemGB:          memGB,
		PSUWatts:       cfg.PSUWatts,
		OSName:         osName,
		JVM:            jvmName(g.rng, p.year),
	}
	r.OSFamily = model.ParseOSFamily(r.OSName)

	for _, load := range model.StandardLoads() {
		u := float64(load) / 100
		pt := model.LoadPoint{TargetLoad: load}
		if load > 0 {
			pt.ActualOps = opsMax * u * (1 + 0.01*g.rng.NormFloat64())
			if pt.ActualOps < 0 {
				pt.ActualOps = 0
			}
		}
		pt.AvgPower = fullWatts * prof.Rel(u) * (1 + 0.008*g.rng.NormFloat64())
		if pt.AvgPower < 1 {
			pt.AvgPower = 1
		}
		r.Points = append(r.Points, pt)
	}
	return r, nil
}

// pickSpec samples a server part of the vendor available at hw,
// favouring recent mainstream (higher-TDP) parts.
func (g *generator) pickSpec(v model.CPUVendor, hw model.YearMonth, sockets int) (catalog.CPUSpec, error) {
	from := hw.AddMonths(-42)
	var cands []catalog.CPUSpec
	for _, s := range catalog.AvailableWithin(v, from, hw) {
		if s.MaxSockets >= sockets {
			cands = append(cands, s)
		}
	}
	if len(cands) == 0 {
		// Fall back to the newest part not after hw; failing that (hw
		// precedes the vendor's first part), the earliest part — the
		// caller shifts the availability date onto the part's GA.
		var newest, earliest *catalog.CPUSpec
		for _, s := range catalog.ByVendor(v) {
			s := s
			if s.MaxSockets < sockets {
				continue
			}
			if !s.Avail.After(hw) && (newest == nil || s.Avail.After(newest.Avail)) {
				newest = &s
			}
			if earliest == nil || s.Avail.Before(earliest.Avail) {
				earliest = &s
			}
		}
		switch {
		case newest != nil:
			return *newest, nil
		case earliest != nil:
			return *earliest, nil
		default:
			return catalog.CPUSpec{}, fmt.Errorf("no %v part with %d sockets in catalog", v, sockets)
		}
	}
	weights := make([]int, len(cands))
	total := 0
	for i, s := range cands {
		w := s.Popularity
		if w <= 0 {
			w = 1
		}
		if w >= 2 && hw.Index()-s.Avail.Index() <= 18 {
			w *= 2 // vendors showcase current volume hardware
		}
		weights[i] = w
		total += w
	}
	pick := g.rng.Intn(total)
	for i, w := range weights {
		pick -= w
		if pick < 0 {
			return cands[i], nil
		}
	}
	return cands[len(cands)-1], nil
}

// jitterProfile perturbs the era profile into a per-run one, keeping it
// valid and keeping measured idle at or below the load-curve intercept.
func (g *generator) jitterProfile(base power.Profile) power.Profile {
	p := power.Profile{
		IdleFrac:     clamp(base.IdleFrac*g.lognormal(0.18), 0.03, 0.90),
		LowIntercept: clamp(base.LowIntercept*g.lognormal(0.10), 0.05, 0.92),
		Beta:         clamp(base.Beta+0.04*g.rng.NormFloat64(), 0.55, 1.1),
		TurboWeight:  clamp(base.TurboWeight*g.lognormal(0.25), 0, 0.85),
		TurboGamma:   clamp(base.TurboGamma+0.3*g.rng.NormFloat64(), 1.5, 6),
	}
	if p.LowIntercept < p.IdleFrac {
		p.LowIntercept = p.IdleFrac * 1.02
	}
	return p
}

// buildMulti constructs a multi-node or >2-socket run.
func (g *generator) buildMulti(year int, v model.CPUVendor, linux bool) (*model.Run, error) {
	// Prefer 4-socket systems when silicon exists; otherwise multi-node.
	bigSMP := g.rng.Float64() < 0.4
	if bigSMP {
		hw := model.YM(year, time.Month(1+g.rng.Intn(12)))
		if _, err := g.pickSpec(v, hw, 4); err != nil {
			bigSMP = false
		}
	}
	if bigSMP {
		return g.buildRun(buildParams{year: year, vendor: v, linux: linux,
			nodes: 1, sockets: 4})
	}
	nodes := []int{2, 2, 2, 4, 4, 8, 16}[g.rng.Intn(7)]
	return g.buildRun(buildParams{year: year, vendor: v, linux: linux,
		nodes: nodes, sockets: 2})
}

// buildNonServer constructs a desktop-part run of the right era.
func (g *generator) buildNonServer(year int) (*model.Run, error) {
	spec, err := eraPart(catalog.NonServerParts(), year, func(s catalog.CPUSpec) bool {
		return s.Vendor == model.VendorIntel || s.Vendor == model.VendorAMD
	})
	if err != nil {
		return nil, fmt.Errorf("synth: non-server part for %d: %w", year, err)
	}
	return g.buildRun(buildParams{year: year, vendor: spec.Vendor,
		nodes: 1, sockets: 1, spec: &spec})
}

// buildNonX86 constructs a run on a non-Intel/AMD system.
func (g *generator) buildNonX86(year int) (*model.Run, error) {
	spec, err := eraPart(catalog.NonServerParts(), year, func(s catalog.CPUSpec) bool {
		return s.Vendor == model.VendorOther
	})
	if err != nil {
		return nil, fmt.Errorf("synth: non-x86 part for %d: %w", year, err)
	}
	return g.buildRun(buildParams{year: year, vendor: spec.Vendor,
		otherOS: year < 2018, nodes: 1, sockets: 1, spec: &spec})
}

// eraPart returns the newest matching part available by the end of year.
func eraPart(parts []catalog.CPUSpec, year int, match func(catalog.CPUSpec) bool) (catalog.CPUSpec, error) {
	cutoff := model.YM(year, time.December)
	var best *catalog.CPUSpec
	for _, s := range parts {
		s := s
		if !match(s) || s.Avail.After(cutoff) {
			continue
		}
		if best == nil || s.Avail.After(best.Avail) {
			best = &s
		}
	}
	if best == nil {
		return catalog.CPUSpec{}, fmt.Errorf("no part available by %d", year)
	}
	return *best, nil
}

// lognormal draws a mean-1 multiplicative jitter with relative σ.
func (g *generator) lognormal(sigma float64) float64 {
	return math.Exp(sigma*g.rng.NormFloat64() - sigma*sigma/2)
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// assignIDs orders runs by submission date and issues sequential
// SPEC-style report IDs.
func assignIDs(runs []*model.Run) {
	idx := make([]int, len(runs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		da, db := runs[idx[a]].SubmissionDate, runs[idx[b]].SubmissionDate
		if da != db {
			return da.Before(db)
		}
		return idx[a] < idx[b]
	})
	for seq, i := range idx {
		r := runs[i]
		day := 1 + seq%28
		ym := r.SubmissionDate
		if !ym.Valid() {
			ym = r.TestDate
		}
		if !ym.Valid() {
			ym = model.YM(2015, time.June)
		}
		r.ID = fmt.Sprintf("power_ssj2008-%04d%02d%02d-%05d",
			ym.Year, int(ym.Month), day, seq+1)
	}
}
