package synth

import (
	"math"
	"testing"

	"repro/internal/model"
)

func mustGenerate(t *testing.T) []*model.Run {
	t.Helper()
	runs, err := Generate(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return runs
}

func TestPlanTotals(t *testing.T) {
	tot := Totals(DefaultPlan)
	if tot.Parsed != 960 {
		t.Errorf("Σ parsed = %d, want 960", tot.Parsed)
	}
	if tot.Good != 676 {
		t.Errorf("Σ good = %d, want 676", tot.Good)
	}
	if tot.Multi != 269 {
		t.Errorf("Σ multi = %d, want 269", tot.Multi)
	}
	if tot.NonServer != 6 || tot.NonX86 != 9 {
		t.Errorf("non-server/non-x86 = %d/%d, want 6/9", tot.NonServer, tot.NonX86)
	}
	if DefaultDefects.Total() != 57 {
		t.Errorf("defects = %d, want 57", DefaultDefects.Total())
	}
}

func TestPlanRunRateStatistics(t *testing.T) {
	// S2: 44.2 runs/year over 2005–2023; 15.2 over 2013–2017.
	var total0523, total1317 int
	for _, p := range DefaultPlan {
		if p.Year >= 2005 && p.Year <= 2023 {
			total0523 += p.Parsed
		}
		if p.Year >= 2013 && p.Year <= 2017 {
			total1317 += p.Parsed
		}
	}
	if avg := float64(total0523) / 19; math.Abs(avg-44.2) > 0.3 {
		t.Errorf("2005–2023 rate = %.1f, want ≈44.2", avg)
	}
	if avg := float64(total1317) / 5; math.Abs(avg-15.2) > 0.3 {
		t.Errorf("2013–2017 rate = %.1f, want ≈15.2", avg)
	}
}

func TestGenerateFunnelCounts(t *testing.T) {
	runs := mustGenerate(t)
	if len(runs) != 1017 {
		t.Fatalf("corpus = %d runs, want 1017", len(runs))
	}
	byReason := map[model.RejectReason]int{}
	for _, r := range runs {
		byReason[model.Classify(r)]++
	}
	want := map[model.RejectReason]int{
		model.RejectNone:                   676,
		model.RejectNotAccepted:            40,
		model.RejectAmbiguousDate:          3,
		model.RejectImplausibleDate:        4,
		model.RejectAmbiguousCPUName:       3,
		model.RejectMissingNodeCount:       1,
		model.RejectInconsistentCoreThread: 5,
		model.RejectImplausibleCoreThread:  1,
		model.RejectNonX86Vendor:           9,
		model.RejectNonServerCPU:           6,
		model.RejectMultiNodeOrBigSMP:      269,
	}
	for reason, n := range want {
		if byReason[reason] != n {
			t.Errorf("%v: %d runs, want %d", reason, byReason[reason], n)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := mustGenerate(t)
	b := mustGenerate(t)
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].CPUName != b[i].CPUName ||
			a[i].HWAvail != b[i].HWAvail ||
			a[i].Points[0].AvgPower != b[i].Points[0].AvgPower {
			t.Fatalf("run %d differs between generations", i)
		}
	}
	// A different seed must actually change the corpus.
	opt := DefaultOptions()
	opt.Seed = 99
	c, err := Generate(opt)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if a[i].Points[0].AvgPower != c[i].Points[0].AvgPower {
			same = false
			break
		}
	}
	if same {
		t.Error("seed has no effect")
	}
}

func TestGeneratedRunsWellFormed(t *testing.T) {
	runs := mustGenerate(t)
	ids := map[string]bool{}
	for _, r := range runs {
		if ids[r.ID] {
			t.Fatalf("duplicate ID %s", r.ID)
		}
		ids[r.ID] = true
		if len(r.Points) != 11 {
			t.Fatalf("%s: %d points", r.ID, len(r.Points))
		}
		// Power must rise with load (with a little noise tolerance).
		for i := 1; i < 10; i++ {
			hi, lo := r.Points[i-1], r.Points[i]
			if lo.AvgPower > hi.AvgPower*1.05 {
				t.Errorf("%s: power not increasing: %d%%=%.1f vs %d%%=%.1f",
					r.ID, lo.TargetLoad, lo.AvgPower, hi.TargetLoad, hi.AvgPower)
			}
		}
		// Idle below 10 % load.
		if idle, _ := r.Point(0); idle.AvgPower >= r.Points[9].AvgPower {
			t.Errorf("%s: idle %.1f ≥ 10%% load %.1f", r.ID,
				idle.AvgPower, r.Points[9].AvgPower)
		}
		// Ops roughly proportional to load.
		full := r.Points[0].ActualOps
		if full <= 0 {
			t.Fatalf("%s: no full-load throughput", r.ID)
		}
		half, _ := r.Point(50)
		if frac := half.ActualOps / full; frac < 0.45 || frac > 0.55 {
			t.Errorf("%s: 50%% ops fraction = %.3f", r.ID, frac)
		}
	}
}

func TestVendorShares(t *testing.T) {
	runs := mustGenerate(t)
	var preAMD, pre, postAMD, post float64
	for _, r := range runs {
		if model.Classify(r).IsParseStage() {
			continue // share statistics are over the 960 parsed runs
		}
		if r.CPUVendor != model.VendorIntel && r.CPUVendor != model.VendorAMD {
			continue
		}
		if r.HWAvail.Year < 2018 {
			pre++
			if r.CPUVendor == model.VendorAMD {
				preAMD++
			}
		} else {
			post++
			if r.CPUVendor == model.VendorAMD {
				postAMD++
			}
		}
	}
	if share := preAMD / pre; math.Abs(share-0.130) > 0.02 {
		t.Errorf("pre-2018 AMD share = %.3f, want ≈0.130", share)
	}
	if share := postAMD / post; math.Abs(share-0.313) > 0.03 {
		t.Errorf("post-2018 AMD share = %.3f, want ≈0.313", share)
	}
}

func TestOSShares(t *testing.T) {
	runs := mustGenerate(t)
	var preLinux, pre, postLinux, post float64
	for _, r := range runs {
		if model.Classify(r).IsParseStage() {
			continue
		}
		if r.HWAvail.Year < 2018 {
			pre++
			if r.OSFamily == model.OSLinux {
				preLinux++
			}
		} else {
			post++
			if r.OSFamily == model.OSLinux {
				postLinux++
			}
		}
	}
	if share := preLinux / pre; math.Abs(share-0.022) > 0.012 {
		t.Errorf("pre-2018 Linux share = %.3f, want ≈0.022", share)
	}
	if share := postLinux / post; math.Abs(share-0.363) > 0.04 {
		t.Errorf("post-2018 Linux share = %.3f, want ≈0.363", share)
	}
	// Pre-2018 Windows dominance (>90 %, paper says >97 % up to 2017).
	var preWin float64
	for _, r := range runs {
		if model.Classify(r).IsParseStage() || r.HWAvail.Year >= 2018 {
			continue
		}
		if r.OSFamily == model.OSWindows {
			preWin++
		}
	}
	if share := preWin / pre; share < 0.90 {
		t.Errorf("pre-2018 Windows share = %.3f, want > 0.90", share)
	}
}

func TestGoodRunsTopologyMatchesPlan(t *testing.T) {
	runs := mustGenerate(t)
	var good, twoSock int
	for _, r := range runs {
		if model.Classify(r) != model.RejectNone {
			continue
		}
		good++
		if r.Nodes != 1 || r.SocketsPerNode > 2 {
			t.Fatalf("%s: good run with %d nodes × %d sockets", r.ID, r.Nodes, r.SocketsPerNode)
		}
		if r.SocketsPerNode == 2 {
			twoSock++
		}
	}
	if good != 676 {
		t.Fatalf("good runs = %d", good)
	}
	if share := float64(twoSock) / float64(good); share < 0.6 || share > 0.85 {
		t.Errorf("two-socket share = %.3f, want ≈0.72", share)
	}
}

func TestMultiRunsShape(t *testing.T) {
	runs := mustGenerate(t)
	sawMultiNode, sawBigSMP := false, false
	for _, r := range runs {
		if model.Classify(r) != model.RejectMultiNodeOrBigSMP {
			continue
		}
		if r.Nodes > 1 {
			sawMultiNode = true
		}
		if r.SocketsPerNode > 2 {
			sawBigSMP = true
		}
		// Internally consistent topology regardless.
		if r.TotalCores != r.Nodes*r.SocketsPerNode*r.CoresPerSocket {
			t.Fatalf("%s: inconsistent multi topology", r.ID)
		}
	}
	if !sawMultiNode || !sawBigSMP {
		t.Errorf("filtered population should include both multi-node (%v) and >2-socket (%v)",
			sawMultiNode, sawBigSMP)
	}
}

func TestPlanValidation(t *testing.T) {
	if _, err := Generate(Options{Seed: 1}); err == nil {
		t.Error("empty plan should error")
	}
	bad := Options{Seed: 1, Plan: []YearPlan{{Year: 2010, Parsed: 2, Multi: 5}}}
	if _, err := Generate(bad); err == nil {
		t.Error("over-allocated year should error")
	}
}
