package synth

// YearPlan fixes the composition of one hardware-availability year in
// the 960-run parsed corpus.
type YearPlan struct {
	Year int
	// Parsed is the number of runs whose hardware availability falls in
	// this year and that survive parse-consistency checking.
	Parsed int
	// AMDShare is the fraction of x86 runs using AMD processors.
	AMDShare float64
	// LinuxShare is the fraction of runs on Linux (the rest is Windows
	// except for a sliver of Others early on).
	LinuxShare float64
	// Multi is how many of Parsed are multi-node or >2-socket systems
	// (filtered by the paper's comparability stage).
	Multi int
	// NonServer is how many use desktop-class x86 parts.
	NonServer int
	// NonX86 is how many use neither Intel nor AMD processors.
	NonX86 int
	// TwoSocketShare is the fraction of the remaining single-node runs
	// with two sockets (the rest have one).
	TwoSocketShare float64
}

// Good returns the number of runs in this year that survive all filters.
func (p YearPlan) Good() int {
	return p.Parsed - p.Multi - p.NonServer - p.NonX86
}

// DefaultPlan is calibrated to the paper's corpus:
//
//   - Σ Parsed = 960; the 2005–2023 portion averages 44.2 runs/year and
//     2013–2017 averages 15.2 (Section II).
//   - Σ Multi = 269, Σ NonServer = 6, Σ NonX86 = 9, so the comparability
//     stage removes exactly 284 runs, leaving 676.
//   - AMD shares aggregate to ≈13.0 % before 2018 and ≈31.3 % after;
//     Linux shares to ≈2.2 % and ≈36.3 % (Figure 1 and Section II).
var DefaultPlan = []YearPlan{
	{Year: 2005, Parsed: 8, AMDShare: 0.12, LinuxShare: 0.02, Multi: 2, TwoSocketShare: 0.75},
	{Year: 2006, Parsed: 36, AMDShare: 0.15, LinuxShare: 0.02, Multi: 12, NonServer: 1, TwoSocketShare: 0.75},
	{Year: 2007, Parsed: 64, AMDShare: 0.12, LinuxShare: 0.02, Multi: 22, NonServer: 1, TwoSocketShare: 0.72},
	{Year: 2008, Parsed: 72, AMDShare: 0.17, LinuxShare: 0.02, Multi: 25, NonX86: 1, TwoSocketShare: 0.72},
	{Year: 2009, Parsed: 80, AMDShare: 0.14, LinuxShare: 0.02, Multi: 28, NonX86: 1, TwoSocketShare: 0.70},
	{Year: 2010, Parsed: 78, AMDShare: 0.20, LinuxShare: 0.02, Multi: 27, NonServer: 1, NonX86: 2, TwoSocketShare: 0.70},
	{Year: 2011, Parsed: 64, AMDShare: 0.15, LinuxShare: 0.02, Multi: 22, NonServer: 1, NonX86: 1, TwoSocketShare: 0.70},
	{Year: 2012, Parsed: 54, AMDShare: 0.10, LinuxShare: 0.03, Multi: 19, NonX86: 1, TwoSocketShare: 0.70},
	{Year: 2013, Parsed: 20, AMDShare: 0.00, LinuxShare: 0.03, Multi: 6, TwoSocketShare: 0.70},
	{Year: 2014, Parsed: 16, AMDShare: 0.00, LinuxShare: 0.03, Multi: 5, TwoSocketShare: 0.70},
	{Year: 2015, Parsed: 14, AMDShare: 0.00, LinuxShare: 0.03, Multi: 4, TwoSocketShare: 0.70},
	{Year: 2016, Parsed: 12, AMDShare: 0.00, LinuxShare: 0.04, Multi: 3, TwoSocketShare: 0.70},
	{Year: 2017, Parsed: 14, AMDShare: 0.07, LinuxShare: 0.07, Multi: 4, TwoSocketShare: 0.70},
	{Year: 2018, Parsed: 40, AMDShare: 0.25, LinuxShare: 0.25, Multi: 8, TwoSocketShare: 0.72},
	{Year: 2019, Parsed: 55, AMDShare: 0.30, LinuxShare: 0.30, Multi: 11, TwoSocketShare: 0.72},
	{Year: 2020, Parsed: 50, AMDShare: 0.30, LinuxShare: 0.35, Multi: 10, TwoSocketShare: 0.72},
	{Year: 2021, Parsed: 55, AMDShare: 0.33, LinuxShare: 0.38, Multi: 11, NonServer: 1, NonX86: 1, TwoSocketShare: 0.72},
	{Year: 2022, Parsed: 50, AMDShare: 0.35, LinuxShare: 0.40, Multi: 10, NonServer: 1, NonX86: 1, TwoSocketShare: 0.72},
	{Year: 2023, Parsed: 58, AMDShare: 0.33, LinuxShare: 0.40, Multi: 12, NonX86: 1, TwoSocketShare: 0.72},
	{Year: 2024, Parsed: 120, AMDShare: 0.32, LinuxShare: 0.40, Multi: 28, TwoSocketShare: 0.72},
}

// DefectPlan fixes the 57 runs the parse-consistency stage removes,
// with the paper's exact per-reason counts (Section II).
type DefectPlan struct {
	NotAccepted          int
	AmbiguousDate        int
	ImplausibleDate      int
	AmbiguousCPUName     int
	MissingNodeCount     int
	InconsistentCoreThrd int
	ImplausibleCoreThrd  int
}

// DefaultDefects matches the paper: 40+3+4+3+1+5+1 = 57.
var DefaultDefects = DefectPlan{
	NotAccepted:          40,
	AmbiguousDate:        3,
	ImplausibleDate:      4,
	AmbiguousCPUName:     3,
	MissingNodeCount:     1,
	InconsistentCoreThrd: 5,
	ImplausibleCoreThrd:  1,
}

// Total returns the number of defective runs in the plan.
func (d DefectPlan) Total() int {
	return d.NotAccepted + d.AmbiguousDate + d.ImplausibleDate +
		d.AmbiguousCPUName + d.MissingNodeCount +
		d.InconsistentCoreThrd + d.ImplausibleCoreThrd
}

// PlanTotals summarizes a plan for validation and reporting.
type PlanTotals struct {
	Parsed, Good, Multi, NonServer, NonX86 int
}

// Totals sums a year plan.
func Totals(plan []YearPlan) PlanTotals {
	var t PlanTotals
	for _, p := range plan {
		t.Parsed += p.Parsed
		t.Good += p.Good()
		t.Multi += p.Multi
		t.NonServer += p.NonServer
		t.NonX86 += p.NonX86
	}
	return t
}
