package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer is one named check. Per-package analyzers run once per
// loaded package with Pass.Pkg set; whole-program analyzers (Program =
// true) run once with Pass.Pkg nil and see every package at once —
// that is what lets nodeterminism walk call graphs across package
// boundaries, which the upstream per-package go/analysis model cannot.
type Analyzer struct {
	Name string
	Doc  string
	// Program marks a whole-program analyzer.
	Program bool
	Run     func(pass *Pass)
}

// A Package is one type-checked package of the loaded program.
type Package struct {
	Path  string // import path ("repro/internal/core")
	Dir   string // absolute directory
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// A Program is the full set of packages one Load call produced, plus
// the cross-package indexes the analyzers share.
type Program struct {
	Fset *token.FileSet
	Pkgs []*Package // sorted by import path

	decls map[*types.Func]funcDecl
	reach *reachability // built lazily by Reachable
}

// funcDecl locates one function declaration: its AST node and the
// package whose Info resolves identifiers inside its body.
type funcDecl struct {
	decl *ast.FuncDecl
	pkg  *Package
}

// DeclOf returns the declaration of a module-internal function or
// method, with the package that owns it, or ok = false for functions
// the program does not define (stdlib, interface methods without a
// static callee).
func (p *Program) DeclOf(fn *types.Func) (*ast.FuncDecl, *Package, bool) {
	fd, ok := p.decls[fn]
	return fd.decl, fd.pkg, ok
}

// indexDecls builds the types.Func → declaration map the call-graph
// walkers use to cross package boundaries. Object identity holds
// across packages because every package is type-checked once through
// one shared importer.
func (p *Program) indexDecls() {
	p.decls = make(map[*types.Func]funcDecl)
	for _, pkg := range p.Pkgs {
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					p.decls[fn] = funcDecl{decl: fd, pkg: pkg}
				}
			}
		}
	}
}

// A Diagnostic is one finding, resolved to a position. Suppressed
// diagnostics carry the allow directive's reason and do not fail a
// run, but are retained so tooling can list what has been waived.
type Diagnostic struct {
	Analyzer   string
	Pos        token.Position
	Message    string
	Suppressed bool
	Reason     string // the //lint:allow justification, when suppressed
}

func (d Diagnostic) String() string {
	s := fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
	if d.Suppressed {
		s += fmt.Sprintf(" (allowed: %s)", d.Reason)
	}
	return s
}

// A Pass carries one analyzer invocation's context and collects its
// reports.
type Pass struct {
	Analyzer *Analyzer
	Prog     *Program
	Pkg      *Package // nil for whole-program analyzers

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Prog.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzers returns the full suite in presentation order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		NoDeterminism,
		MapSort,
		RegisterInit,
		ParamAccess,
	}
}

// Run executes the given analyzers over the program and returns every
// diagnostic — suppressed and live — sorted by position. Allow
// directives are applied here, and a directive missing its reason is
// itself reported (as analyzer "allow"), so a waiver can never be
// silent about why.
func Run(prog *Program, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := Pass{Analyzer: a, Prog: prog, diags: &diags}
		if a.Program {
			a.Run(&pass)
			continue
		}
		for _, pkg := range prog.Pkgs {
			pass := pass
			pass.Pkg = pkg
			a.Run(&pass)
		}
	}
	diags = append(diags, applyAllows(prog, diags, analyzers)...)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// Unsuppressed filters a Run result down to the findings that should
// fail a gate.
func Unsuppressed(diags []Diagnostic) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		if !d.Suppressed {
			out = append(out, d)
		}
	}
	return out
}

// funcObj resolves a call expression to its static callee, if any:
// a package-level function, a method called on a concrete receiver,
// or a conversion-free identifier bound to a declared func. Dynamic
// calls (func values, interface methods) return nil.
func funcObj(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// isPkgFunc reports whether fn is the package-level function path.name
// (not a method).
func isPkgFunc(fn *types.Func, path, name string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == path &&
		fn.Name() == name && fn.Signature().Recv() == nil
}
