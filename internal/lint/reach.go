package lint

import (
	"go/ast"
	"go/types"
)

// registryPath is the package whose Register calls define the
// analyzers' entry points.
const registryPath = "repro/internal/analysis"

var registerFuncs = map[string]bool{
	"Register":       true,
	"RegisterParams": true,
	"RegisterStatic": true,
}

// reachBody is one function body in the reachable set: the node whose
// subtree to inspect (a FuncDecl or an entry FuncLit), the package
// whose Info resolves it, and the name used in diagnostics.
type reachBody struct {
	node ast.Node
	pkg  *Package
	name string
}

type reachability struct {
	bodies []reachBody
	// seen guards named functions; entry literals cannot repeat.
	seen map[*types.Func]bool
}

// Reachable computes (once, memoized on the program) the set of
// function bodies reachable from registered analysis funcs. An entry
// point is any func literal or named func passed to
// analysis.Register/RegisterParams/RegisterStatic — located by type,
// not position, because trailing RegOptions (analysis.Reads(...)) are
// also func-typed arguments and must not shadow the entry. From each entry the
// walk follows every *reference* to a module-declared function — call
// position or not, so a metric func stored in a table and invoked
// through a variable still counts — across package boundaries.
// Function literals nested inside a reachable body are part of its
// subtree and need no separate handling; dynamic calls with no static
// callee (interface methods, func-typed fields) are the walk's known
// blind spot, narrowed by the reference rule above.
func (p *Program) Reachable() []reachBody {
	if p.reach != nil {
		return p.reach.bodies
	}
	r := &reachability{seen: map[*types.Func]bool{}}
	for _, pkg := range p.Pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := funcObj(pkg.Info, call)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != registryPath ||
					!registerFuncs[fn.Name()] {
					return true
				}
				for _, arg := range call.Args {
					if isAnalysisFuncArg(pkg.Info, arg) {
						r.addEntry(p, pkg, arg)
					}
				}
				return true
			})
		}
	}
	p.reach = r
	return r.bodies
}

// addEntry admits one Register call's func argument into the set.
func (r *reachability) addEntry(p *Program, pkg *Package, arg ast.Expr) {
	switch arg := ast.Unparen(arg).(type) {
	case *ast.FuncLit:
		r.bodies = append(r.bodies, reachBody{node: arg, pkg: pkg, name: "registered func literal"})
		r.walk(p, pkg, arg)
	default:
		if fn := exprFunc(pkg.Info, arg); fn != nil {
			r.addFunc(p, fn)
		}
	}
}

// addFunc admits a named function and recurses into its body if the
// module declares it.
func (r *reachability) addFunc(p *Program, fn *types.Func) {
	if r.seen[fn] {
		return
	}
	r.seen[fn] = true
	decl, pkg, ok := p.DeclOf(fn)
	if !ok {
		return // stdlib or bodiless: nothing to inspect
	}
	r.bodies = append(r.bodies, reachBody{node: decl, pkg: pkg, name: fn.FullName()})
	r.walk(p, pkg, decl)
}

// walk scans one admitted body for references to further module
// functions.
func (r *reachability) walk(p *Program, pkg *Package, body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if fn, ok := pkg.Info.Uses[id].(*types.Func); ok {
			if _, _, declared := p.DeclOf(fn); declared {
				r.addFunc(p, fn)
			}
		}
		return true
	})
}

// isAnalysisFuncArg reports whether one Register-call argument is the
// analysis func itself. The func is not positionally identifiable:
// registrations may end with RegOptions (analysis.Reads(...)), which
// are func-typed values too. So the filter is by type — any argument
// whose type is a function signature other than analysis.RegOption is
// an entry point; names, descriptions, and schemas fall out naturally.
func isAnalysisFuncArg(info *types.Info, arg ast.Expr) bool {
	tv, ok := info.Types[arg]
	if !ok || tv.Type == nil {
		return false
	}
	if _, ok := tv.Type.Underlying().(*types.Signature); !ok {
		return false
	}
	if named, ok := tv.Type.(*types.Named); ok {
		if obj := named.Obj(); obj.Pkg() != nil &&
			obj.Pkg().Path() == registryPath && obj.Name() == "RegOption" {
			return false
		}
	}
	return true
}

// exprFunc resolves an expression naming a function (identifier,
// pkg.Func selector, or method expression) to its object.
func exprFunc(info *types.Info, e ast.Expr) *types.Func {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[e].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[e.Sel].(*types.Func)
		return fn
	}
	return nil
}
