package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// loader type-checks module packages from source, once each, through a
// single importer instance so type objects keep identity across
// packages (the cross-package call-graph walks depend on it). Standard
// library imports are delegated to the stdlib source importer, which
// works offline from GOROOT.
type loader struct {
	fset    *token.FileSet
	root    string // module root directory (absolute)
	module  string // module path from go.mod
	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// Load parses and type-checks the packages in dirs (absolute or
// root-relative directories under the module root) plus everything
// they import inside the module, and returns the resulting Program.
// Only non-test files are loaded; see the package comment for why.
func Load(root string, dirs []string) (*Program, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	module, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	ld := &loader{
		fset:    fset,
		root:    root,
		module:  module,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}
	for _, dir := range dirs {
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(root, dir)
		}
		if _, err := ld.loadDir(dir); err != nil {
			return nil, err
		}
	}
	prog := &Program{Fset: fset}
	for _, pkg := range ld.pkgs {
		prog.Pkgs = append(prog.Pkgs, pkg)
	}
	sort.Slice(prog.Pkgs, func(i, j int) bool { return prog.Pkgs[i].Path < prog.Pkgs[j].Path })
	prog.indexDecls()
	return prog, nil
}

// ExpandPatterns resolves package patterns the way the go tool does,
// scoped to the module: "./..." and "dir/..." walk for directories
// containing non-test .go files (skipping testdata, hidden directories,
// and bin), anything else names one package directory. Returned paths
// are absolute.
func ExpandPatterns(root string, patterns []string) ([]string, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		base, recursive := pat, false
		if rest, ok := strings.CutSuffix(pat, "..."); ok {
			recursive = true
			base = strings.TrimSuffix(rest, string(filepath.Separator))
			base = strings.TrimSuffix(base, "/")
			if base == "" || base == "." {
				base = root
			}
		}
		if !filepath.IsAbs(base) {
			base = filepath.Join(root, base)
		}
		if !recursive {
			add(base)
			continue
		}
		err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "bin") {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// ModuleRoot walks up from dir to the enclosing go.mod.
func ModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		dir = parent
	}
}

func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s/go.mod", root)
}

// Import implements types.Importer: module-internal paths load (or
// recall) their package from source; everything else is stdlib.
func (ld *loader) Import(path string) (*types.Package, error) {
	if path == ld.module || strings.HasPrefix(path, ld.module+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, ld.module), "/")
		pkg, err := ld.loadDir(filepath.Join(ld.root, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return ld.std.Import(path)
}

func (ld *loader) loadDir(dir string) (*Package, error) {
	rel, err := filepath.Rel(ld.root, dir)
	if err != nil {
		return nil, err
	}
	path := ld.module
	if rel != "." {
		path = ld.module + "/" + filepath.ToSlash(rel)
	}
	if pkg, ok := ld.pkgs[path]; ok {
		return pkg, nil
	}
	if ld.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	ld.loading[path] = true
	defer delete(ld.loading, path)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: ld}
	tpkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-check %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	ld.pkgs[path] = pkg
	return pkg, nil
}
