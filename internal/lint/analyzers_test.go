package lint_test

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// Each analyzer runs over its fixture package: every `// want`
// comment must be hit by an unsuppressed diagnostic, every diagnostic
// must be wanted, and the nearest legitimate patterns (seeded private
// rand, sorted map range, var-initializer registration, typed getter
// reads, Canonical as a memo key) must stay silent.

func TestNoDeterminismFixture(t *testing.T) {
	linttest.Run(t, "testdata/src/nodeterminism", lint.NoDeterminism)
}

func TestMapSortFixture(t *testing.T) {
	linttest.Run(t, "testdata/src/mapsort", lint.MapSort)
}

func TestRegisterInitFixture(t *testing.T) {
	linttest.Run(t, "testdata/src/registerinit", lint.RegisterInit)
}

func TestParamAccessFixture(t *testing.T) {
	linttest.Run(t, "testdata/src/paramaccess", lint.ParamAccess)
}

// TestAllowDirectiveHygiene pins the escape hatch's own contract over
// the allow fixture: a reasoned directive suppresses (and surfaces its
// reason), a bare directive and a stale directive are findings in
// their own right. Checked by hand rather than through want comments —
// a directive's diagnostic lands on the directive's own comment line,
// where no second comment can sit.
func TestAllowDirectiveHygiene(t *testing.T) {
	dir, err := filepath.Abs("testdata/src/allowhygiene")
	if err != nil {
		t.Fatal(err)
	}
	root, err := lint.ModuleRoot(dir)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := lint.Load(root, []string{dir})
	if err != nil {
		t.Fatal(err)
	}
	var suppressed, bareFinding, bareDirective, stale int
	for _, d := range lint.Run(prog, []*lint.Analyzer{lint.MapSort}) {
		if !strings.HasPrefix(d.Pos.Filename, dir) {
			continue
		}
		switch {
		case d.Suppressed:
			suppressed++
			if !strings.Contains(d.Reason, "set comparison") {
				t.Errorf("suppressed diagnostic lost its reason: %s", d)
			}
		case d.Analyzer == "mapsort":
			bareFinding++
		case d.Analyzer == "allow" && strings.Contains(d.Message, "needs an analyzer name and a reason"):
			bareDirective++
		case d.Analyzer == "allow" && strings.Contains(d.Message, "stale"):
			stale++
		default:
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	if suppressed != 1 || bareFinding != 1 || bareDirective != 1 || stale != 1 {
		t.Errorf("got suppressed=%d bare finding=%d bare directive=%d stale=%d, want 1 of each",
			suppressed, bareFinding, bareDirective, stale)
	}
}
