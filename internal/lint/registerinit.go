package lint

import (
	"go/ast"
)

// RegisterInit enforces the registry lifecycle: analysis.Register,
// RegisterParams, and RegisterStatic may only be called from an init
// function or a package-level var initializer. Engines snapshot the
// registry when they are built, CLIs list it at startup, and the HTTP
// listing's ETag covers it — a registration that lands later (from a
// handler, a sync.Once, a test helper in shipped code) would make
// "which analyses exist" depend on request order.
var RegisterInit = &Analyzer{
	Name: "registerinit",
	Doc:  "analysis.Register* only from init or a package-level var initializer",
	Run:  runRegisterInit,
}

func runRegisterInit(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			switch decl := decl.(type) {
			case *ast.FuncDecl:
				ok := decl.Recv == nil && decl.Name.Name == "init"
				findRegisterCalls(pass, decl.Body, ok, describeFunc(decl))
			case *ast.GenDecl:
				// Package-level var (and const) initializer expressions
				// run during package init — as valid a home as init
				// itself.
				findRegisterCalls(pass, decl, true, "")
			}
		}
	}
}

func describeFunc(decl *ast.FuncDecl) string {
	if decl.Recv != nil {
		return "method " + decl.Name.Name
	}
	return "function " + decl.Name.Name
}

// findRegisterCalls walks one declaration. Inside an init body every
// call is fine; anywhere else each Register* call is reported. A
// function literal nested in a valid context is still valid only if it
// runs during initialization — we cannot know, so literals inside init
// are accepted (they overwhelmingly are immediate helpers) while
// literals inside ordinary functions inherit the violation.
func findRegisterCalls(pass *Pass, root ast.Node, allowed bool, where string) {
	if root == nil || allowed {
		return
	}
	ast.Inspect(root, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := funcObj(pass.Pkg.Info, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != registryPath ||
			!registerFuncs[fn.Name()] {
			return true
		}
		pass.Reportf(call.Pos(),
			"analysis.%s called from %s; registrations must happen in init or a package-level var initializer so the registry is complete before any engine exists",
			fn.Name(), where)
		return true
	})
}
