// Package lint is the repo's custom static-analysis suite: four
// analyzers that mechanically enforce the determinism and registry
// invariants every serving guarantee rests on (byte-identical analysis
// output under -race, canonical-param cache/ETag identity, complete
// registry before any engine exists). The example-based tests pin those
// properties for the code that exists today; the analyzers stop the
// next change from silently breaking them.
//
// The suite is self-contained on the standard library's go/ast and
// go/types (the container has no network and no golang.org/x/tools, so
// the usual go/analysis + unitchecker route is unavailable); the driver
// here plays the multichecker's role. cmd/specvet runs it from the
// command line (specvet ./...), CI runs that as a hard gate, and
// TestSuiteCleanOverRepo re-runs it inside go test so plain `go test
// ./...` fails on a new violation too.
//
// The analyzers:
//
//   - nodeterminism: no time.Now, global math/rand, os.Getenv, or
//     goroutine-ordering-sensitive constructs (go statements,
//     multi-clause selects) in any function reachable from a
//     Register/RegisterParams/RegisterStatic-registered analysis func.
//   - mapsort: a range over a map whose keys or values feed append or
//     fmt printing must be followed by a sort call in the same
//     function, so map iteration order never reaches output.
//   - registerinit: analysis.Register* may only be called from an init
//     function or a package-level var initializer, so the registry is
//     complete before any engine exists.
//   - paramaccess: registered analysis funcs read Params through its
//     typed getters; re-parsing a getter's string result (strconv over
//     p.Str, strings.Split of a smuggled list) means the knob should
//     have been declared with the right Kind instead.
//
// Findings the code can justify are suppressed in place with
//
//	//lint:allow <analyzer> <reason>
//
// on the flagged line or the line above. The reason is mandatory: a
// bare directive is itself a diagnostic, so every suppression in the
// tree documents why the construct is safe (for example, a worker pool
// whose results are index-slotted is flagged by nodeterminism's go-
// statement check but cannot reorder output).
//
// Scope: the suite analyzes non-test sources only. Test files exercise
// nondeterminism on purpose (shuffled orders, timeouts), and the
// invariants being enforced are properties of the serving path.
package lint
