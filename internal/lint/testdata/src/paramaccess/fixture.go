// Package fixture exercises the paramaccess analyzer: registered
// analyses that re-parse a Params string getter's result, next to the
// typed-getter reads and the legitimate Canonical-as-memo-key use.
package fixture

import (
	"strconv"
	"strings"

	"repro/internal/analysis"
)

func schema() analysis.Schema {
	return analysis.Schema{
		{Name: "k", Kind: analysis.KindInt, Default: 3},
		{Name: "mode", Kind: analysis.KindString, Default: "plain"},
		{Name: "features", Kind: analysis.KindStringList},
	}
}

func init() {
	analysis.RegisterParams("pa-atoi", "int smuggled through a string", schema(), reparseInt)
	analysis.RegisterParams("pa-split", "list smuggled through a string", schema(), reparseList)
	analysis.RegisterParams("pa-local", "re-parse via a local", schema(), reparseLocal)
	analysis.RegisterParams("pa-good", "typed getters", schema(), typedReads)
	analysis.RegisterParams("pa-memo", "canonical as memo key", schema(), memoKey)
}

func reparseInt(ds *analysis.Dataset, p analysis.Params) (any, error) {
	return strconv.Atoi(p.Str("mode")) // want "re-parses Params.Str"
}

func reparseList(ds *analysis.Dataset, p analysis.Params) (any, error) {
	return strings.Split(p.Str("mode"), ","), nil // want "re-parses Params.Str"
}

func reparseLocal(ds *analysis.Dataset, p analysis.Params) (any, error) {
	mode := p.Str("mode")
	f, err := strconv.ParseFloat(mode, 64) // want "re-parses Params.Str"
	return f, err
}

// typedReads is the contract: every knob through its declared getter.
func typedReads(ds *analysis.Dataset, p analysis.Params) (any, error) {
	n := p.Int("k")
	if p.Str("mode") == "loud" {
		n *= 2
	}
	return n + len(p.Strings("features")), nil
}

var memoCache = map[string]any{}

// memoKey uses Canonical as an opaque identity — the legitimate
// non-getter read. Only re-parsing it would be flagged.
func memoKey(ds *analysis.Dataset, p analysis.Params) (any, error) {
	key := p.Canonical()
	if v, ok := memoCache[key]; ok {
		return v, nil
	}
	v := p.Int("k") * 2
	memoCache[key] = v
	return v, nil
}
