// Package fixture exercises the nodeterminism analyzer: every
// violation the determinism contract bans, next to its nearest
// legitimate pattern. Lives under testdata, so the go tool never
// builds it and these registrations never execute.
package fixture

import (
	"math/rand"
	"os"
	"time"

	"repro/internal/analysis"
)

func init() {
	// Entry points via named funcs and via a literal, so both discovery
	// paths are covered.
	analysis.Register("ndet-clock", "reads the wall clock", wallClock)
	analysis.Register("ndet-rand", "draws from the global source", globalRand)
	analysis.Register("ndet-env", "reads the environment", readsEnv)
	analysis.Register("ndet-helper", "sins through a helper", viaHelper)
	analysis.Register("ndet-pool", "unslotted goroutines", unslottedPool)
	analysis.Register("ndet-allowed", "annotated pool", allowedPool)
	analysis.Register("ndet-literal", "literal entry", func(ds *analysis.Dataset) (any, error) {
		return time.Now().Unix(), nil // want "reads the wall clock"
	})
	analysis.Register("ndet-seeded", "seeded private generator", seededRand)
	// The func arg is trailed by a RegOption (itself func-typed); the
	// walk must still find the entry by type rather than position.
	analysis.Register("ndet-optioned", "entry with trailing option", optionedClock,
		analysis.Reads(analysis.InputComparable))
	analysis.Register("ndet-observer", "kernel progress observer", observerEmitter)
	analysis.Register("ndet-stored", "metric stored in a table", storedMetric)
	analysis.Register("ndet-select", "racing select", selectRace)
}

func selectRace(ds *analysis.Dataset) (any, error) {
	a, b := make(chan int, 1), make(chan int, 1)
	a <- 1
	b <- 2
	select { // want "selects over multiple cases"
	case v := <-a:
		return v, nil
	case v := <-b:
		return v, nil
	}
}

func wallClock(ds *analysis.Dataset) (any, error) {
	return time.Since(time.Unix(0, 0)), nil // want "reads the wall clock"
}

func globalRand(ds *analysis.Dataset) (any, error) {
	return rand.Float64(), nil // want "draws from the global math/rand source"
}

func readsEnv(ds *analysis.Dataset) (any, error) {
	return os.Getenv("SPEC_MODE"), nil // want "reads the process environment"
}

// viaHelper is clean itself; the violation sits one call away, which
// is exactly what the call-graph walk exists to catch.
func viaHelper(ds *analysis.Dataset) (any, error) {
	return helper(), nil
}

func helper() int64 {
	return time.Now().UnixNano() // want "reads the wall clock"
}

func unslottedPool(ds *analysis.Dataset) (any, error) {
	out := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func() { out <- i }() // want "starts a goroutine"
	}
	a, b := <-out, <-out
	return a + b, nil
}

// allowedPool carries the escape hatch with a reason: the finding is
// suppressed, so no want comment here.
func allowedPool(ds *analysis.Dataset) (any, error) {
	done := make(chan struct{})
	//lint:allow nodeterminism result is a constant; the goroutine only paces completion
	go func() { close(done) }()
	<-done
	return 1, nil
}

// observerEmitter is the sanctioned tracing pattern: kernels report
// progress as count-only events through the dataset's func-typed
// observer. The call is dynamic — the walk cannot see through
// ds.Kernel's value, and by contract the serving layer injects the
// timestamping there, outside the registered set — so no diagnostics.
// The determinism this rests on is behavioral: events carry counts the
// analysis computed anyway, never clock or rand reads (those would be
// flagged at the emit site, as wallClock above shows).
func observerEmitter(ds *analysis.Dataset) (any, error) {
	for i := 0; i < 3; i++ {
		if ds.Kernel != nil {
			ds.Kernel(analysis.KernelEvent{Kernel: "kmeans", Event: "iteration", Index: i, Moved: 3 - i})
		}
	}
	return 3, nil
}

// seededRand is the sanctioned pattern: a private generator with a
// caller-supplied seed. No diagnostics.
func seededRand(ds *analysis.Dataset) (any, error) {
	rng := rand.New(rand.NewSource(14))
	return rng.Float64(), nil
}

// storedMetric references sinner without calling it; the reference
// rule still marks it reachable (metric tables store funcs and call
// them through variables).
func storedMetric(ds *analysis.Dataset) (any, error) {
	metrics := []func() int64{sinner}
	return metrics[0](), nil
}

func sinner() int64 {
	return time.Now().Unix() // want "reads the wall clock"
}

// optionedClock is registered with a trailing RegOption; its violation
// must still be reported.
func optionedClock(ds *analysis.Dataset) (any, error) {
	return time.Now().UnixMilli(), nil // want "reads the wall clock"
}

// unreachable is never registered and never referenced from a
// registered func: its wall-clock read is fine, because only the
// serving contract's reachable set is constrained.
func unreachable() int64 {
	return time.Now().Unix()
}
