// Package fixture exercises the mapsort analyzer: map ranges that leak
// iteration order into output, next to the sorted and order-insensitive
// patterns that must pass.
package fixture

import (
	"fmt"
	"sort"
)

// badPrint prints straight out of map order.
func badPrint(m map[string]int) {
	for k, v := range m { // want "range over map feeds output"
		fmt.Printf("%s=%d\n", k, v)
	}
}

// badAppend returns a slice whose order is map order.
func badAppend(m map[string]int) []string {
	var keys []string
	for k := range m { // want "range over map feeds output"
		keys = append(keys, k)
	}
	return keys
}

// badClosure leaks order through a closure appending to a captured
// slice from inside the range body.
func badClosure(m map[string]int) []int {
	var vals []int
	for _, v := range m { // want "range over map feeds output"
		func() { vals = append(vals, v) }()
	}
	return vals
}

// goodSortedKeys is the canonical pattern: collect, sort, iterate.
func goodSortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// goodCounter only aggregates; order cannot matter.
func goodCounter(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// goodIndexed writes by key-derived index, which lands each value in
// the same slot regardless of iteration order.
func goodIndexed(m map[int]string, k int) []string {
	out := make([]string, k)
	for i, v := range m {
		out[i] = v
	}
	return out
}

// goodMapCopy fills another map; maps have no order to corrupt.
func goodMapCopy(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// nestedScope pins the scoping rule: the sort inside the literal does
// not absolve the outer function's unsorted range, and vice versa.
func nestedScope(m map[string]int) []string {
	_ = func(in []string) []string {
		sort.Strings(in)
		return in
	}
	var keys []string
	for k := range m { // want "range over map feeds output"
		keys = append(keys, k)
	}
	return keys
}
