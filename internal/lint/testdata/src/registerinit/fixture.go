// Package fixture exercises the registerinit analyzer: registrations
// from init and from a package-level var initializer pass; a
// registration reachable only at call time is exactly the
// incomplete-registry hazard the analyzer exists to stop.
package fixture

import (
	"repro/internal/analysis"
)

func init() {
	analysis.Register("ri-init", "registered from init", identity)
}

// Package-level var initializers run during package init; the IIFE
// form is the sanctioned way to register where no init func fits.
var _ = func() bool {
	analysis.RegisterStatic("ri-var", "registered from a var initializer",
		func() (any, error) { return 1, nil })
	return true
}()

func identity(ds *analysis.Dataset) (any, error) { return ds, nil }

// lateRegister would add a registry entry whenever somebody happens to
// call it — after engines snapshot the registry, after listings are
// served.
func lateRegister() {
	analysis.Register("ri-late", "registered at call time", identity) // want "registrations must happen in init"
}

type server struct{}

// register as a method is the same hazard.
func (server) register() {
	analysis.RegisterParams("ri-method", "registered from a method", // want "registrations must happen in init"
		analysis.Schema{{Name: "k", Kind: analysis.KindInt, Default: 1}},
		func(ds *analysis.Dataset, p analysis.Params) (any, error) { return p.Int("k"), nil },
	)
}
