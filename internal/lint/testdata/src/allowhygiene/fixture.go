// Package fixture exercises the //lint:allow hygiene rules: a
// directive with a reason suppresses its finding, a bare directive is
// a finding itself, and a directive with nothing to suppress is stale.
package fixture

import "fmt"

// suppressed: the finding is real but justified, so no want here for
// mapsort — the directive absorbs it.
func suppressed(m map[string]int) {
	//lint:allow mapsort output feeds a set comparison downstream; order is irrelevant there
	for k := range m {
		fmt.Println(k)
	}
}

// bare directives must carry an analyzer and a reason.
func bare(m map[string]int) {
	//lint:allow mapsort
	for k := range m { // stays unsuppressed: no reason given
		fmt.Println(k)
	}
}

// stale: nothing on this line for mapsort to suppress.
func stale(m map[string]int) int {
	//lint:allow mapsort nothing here actually needs this
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
