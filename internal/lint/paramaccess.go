package lint

import (
	"go/ast"
	"go/types"
)

// ParamAccess enforces the typed-parameter contract inside registered
// analyses: a knob's type lives in its schema declaration (Kind,
// Default, Validate), and the analysis reads the resolved value
// through the matching typed getter. Re-parsing a getter's string —
// strconv over p.Str(...), strings.Split of a list smuggled through a
// string param — recreates exactly the raw-string handling the schema
// exists to centralize: the 400 boundary stops seeing bad values, the
// canonical identity stops normalizing them, and two spellings of one
// request stop sharing a memo entry. The fix is always a schema
// change (KindInt, KindStringList, an Enum), never an allow.
var ParamAccess = &Analyzer{
	Name:    "paramaccess",
	Doc:     "registered analyses read Params via typed getters, never by re-parsing strings",
	Program: true,
	Run:     runParamAccess,
}

// stringGetters are the Params methods whose results must not be
// re-parsed.
var stringGetters = map[string]bool{"Str": true, "Strings": true, "Canonical": true}

// reparsers maps package path → function names that turn a string back
// into structure.
var reparsers = map[string]map[string]bool{
	"strconv": {
		"Atoi": true, "ParseInt": true, "ParseUint": true,
		"ParseFloat": true, "ParseBool": true,
	},
	"strings": {
		"Split": true, "SplitN": true, "SplitAfter": true,
		"Fields": true, "FieldsFunc": true, "Cut": true,
	},
}

func runParamAccess(pass *Pass) {
	for _, body := range pass.Prog.Reachable() {
		checkParamReparse(pass, body)
	}
}

func checkParamReparse(pass *Pass, body reachBody) {
	info := body.pkg.Info

	// First pass: taint local variables assigned from a Params string
	// getter, so `s := p.Str("algo"); strings.Split(s, ",")` is caught
	// as well as the directly nested form.
	tainted := map[types.Object]string{} // object → getter that produced it
	ast.Inspect(body.node, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != len(assign.Rhs) {
			return true
		}
		for i, rhs := range assign.Rhs {
			if getter := paramsStringGetter(info, rhs); getter != "" {
				if id, ok := assign.Lhs[i].(*ast.Ident); ok {
					if obj := info.Defs[id]; obj != nil {
						tainted[obj] = getter
					} else if obj := info.Uses[id]; obj != nil {
						tainted[obj] = getter
					}
				}
			}
		}
		return true
	})

	ast.Inspect(body.node, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := funcObj(info, call)
		if fn == nil || fn.Pkg() == nil || !reparsers[fn.Pkg().Path()][fn.Name()] {
			return true
		}
		for _, arg := range call.Args {
			getter := paramsStringGetter(info, arg)
			if getter == "" {
				if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
					getter = tainted[info.Uses[id]]
				}
			}
			if getter != "" {
				pass.Reportf(call.Pos(),
					"%s re-parses Params.%s with %s.%s; declare the parameter with the right Kind and read it through its typed getter",
					body.name, getter, fn.Pkg().Path(), fn.Name())
				return true
			}
		}
		return true
	})
}

// paramsStringGetter reports which string-valued Params getter the
// expression is a direct call of ("" if none).
func paramsStringGetter(info *types.Info, e ast.Expr) string {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return ""
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !stringGetters[sel.Sel.Name] {
		return ""
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != registryPath {
		return ""
	}
	recv := fn.Signature().Recv()
	if recv == nil {
		return ""
	}
	if named, ok := recv.Type().(*types.Named); !ok || named.Obj().Name() != "Params" {
		return ""
	}
	return sel.Sel.Name
}
