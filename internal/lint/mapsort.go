package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapSort enforces the repo's sort-before-emit discipline: Go map
// iteration order is deliberately randomized, so a range over a map
// whose keys or values feed an append or an fmt print must be followed
// by a sort call later in the same function (the canonical pattern —
// collect keys, sort, iterate sorted — passes; so does sorting the
// appended slice before it is returned and marshaled). Ranges that
// only fill other maps, increment counters, or write by index are
// order-insensitive and pass.
var MapSort = &Analyzer{
	Name: "mapsort",
	Doc:  "map iteration feeding output must be followed by a sort in the same function",
	Run:  runMapSort,
}

func runMapSort(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkMapRanges(pass, n.Body)
			case *ast.FuncLit:
				checkMapRanges(pass, n.Body)
			}
			return true
		})
	}
}

// checkMapRanges scans one function body. Nested function literals are
// excluded — they get their own visit, and their sort must live in
// their own scope.
func checkMapRanges(pass *Pass, body *ast.BlockStmt) {
	if body == nil {
		return
	}
	info := pass.Pkg.Info
	var ranges []*ast.RangeStmt
	var sortCalls []token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		if _, nested := n.(*ast.FuncLit); nested {
			return false
		}
		switch n := n.(type) {
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap && mapRangeFeedsOutput(info, n) {
					ranges = append(ranges, n)
				}
			}
		case *ast.CallExpr:
			if isSortCall(funcObj(info, n)) {
				sortCalls = append(sortCalls, n.Pos())
			}
		}
		return true
	})
	for _, r := range ranges {
		sorted := false
		for _, p := range sortCalls {
			if p > r.End() {
				sorted = true
				break
			}
		}
		if !sorted {
			pass.Reportf(r.Pos(),
				"range over map feeds output (append or fmt print) but no sort follows in this function; map iteration order would reach the result")
		}
	}
}

// isSortCall recognizes the calls that restore a deterministic order:
// the sort package's sorting entry points and slices.Sort*. Lookup
// helpers that merely read order (sort.Search*, sort.*AreSorted,
// slices.IsSorted*, slices.Contains, …) do not count.
func isSortCall(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil || fn.Signature().Recv() != nil {
		return false
	}
	name := fn.Name()
	switch fn.Pkg().Path() {
	case "sort":
		return !strings.HasPrefix(name, "Search") && !strings.Contains(name, "IsSorted") &&
			!strings.Contains(name, "AreSorted")
	case "slices":
		return strings.HasPrefix(name, "Sort")
	}
	return false
}

// mapRangeFeedsOutput reports whether the range body appends or calls
// an fmt print/format function — the channels through which iteration
// order escapes into results. Nested literals inside the body count (a
// closure appending to a captured slice leaks order the same way);
// writes by key or index do not.
func mapRangeFeedsOutput(info *types.Info, r *ast.RangeStmt) bool {
	feeds := false
	ast.Inspect(r.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !feeds
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if b, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && b.Name() == "append" {
				feeds = true
			}
		}
		if fn := funcObj(info, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
			feeds = true
		}
		return !feeds
	})
	return feeds
}
