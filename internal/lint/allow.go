package lint

import (
	"go/token"
	"sort"
	"strings"
)

// allowPrefix is the suppression directive. The full form is
//
//	//lint:allow <analyzer> <reason>
//
// placed on the flagged line or the line immediately above it. The
// reason is not optional: a directive without one (or naming an
// analyzer that does not exist) is itself a finding, so the gate can
// never be waived silently.
const allowPrefix = "//lint:allow"

type allowDirective struct {
	analyzer string
	reason   string
	pos      token.Position
	used     bool
}

// collectAllows scans every loaded file's comments for directives,
// keyed by filename and line.
func collectAllows(prog *Program) map[string]map[int][]*allowDirective {
	byFile := map[string]map[int][]*allowDirective{}
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			for _, group := range file.Comments {
				for _, c := range group.List {
					rest, ok := strings.CutPrefix(c.Text, allowPrefix)
					if !ok {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					fields := strings.Fields(rest)
					d := &allowDirective{pos: pos}
					if len(fields) > 0 {
						d.analyzer = fields[0]
						d.reason = strings.TrimSpace(strings.Join(fields[1:], " "))
					}
					lines := byFile[pos.Filename]
					if lines == nil {
						lines = map[int][]*allowDirective{}
						byFile[pos.Filename] = lines
					}
					lines[pos.Line] = append(lines[pos.Line], d)
				}
			}
		}
	}
	return byFile
}

// applyAllows marks diagnostics covered by a well-formed directive as
// suppressed (in place) and returns the extra diagnostics the
// directives themselves earn: a missing reason, an unknown analyzer
// name, or a directive that matched nothing (stale waivers rot into
// lies about what the code does, so they must go). Staleness is only
// judged for analyzers in ran — a partial run cannot know whether the
// others' directives still bite.
func applyAllows(prog *Program, diags []Diagnostic, ran []*Analyzer) []Diagnostic {
	byFile := collectAllows(prog)
	known := map[string]bool{}
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	inRun := map[string]bool{}
	for _, a := range ran {
		inRun[a.Name] = true
	}
	for i := range diags {
		d := &diags[i]
		lines := byFile[d.Pos.Filename]
		for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
			for _, dir := range lines[line] {
				if dir.analyzer != d.Analyzer || dir.reason == "" {
					continue
				}
				dir.used = true
				d.Suppressed = true
				d.Reason = dir.reason
			}
		}
	}
	// Directive diagnostics are collected from map iteration and sorted
	// below — the suite holds itself to its own mapsort rule.
	var extra []Diagnostic
	for _, lines := range byFile {
		for _, dirs := range lines {
			for _, dir := range dirs {
				switch {
				case dir.analyzer == "" || dir.reason == "":
					extra = append(extra, Diagnostic{
						Analyzer: "allow", Pos: dir.pos,
						Message: "lint:allow directive needs an analyzer name and a reason",
					})
				case !known[dir.analyzer]:
					extra = append(extra, Diagnostic{
						Analyzer: "allow", Pos: dir.pos,
						Message: "lint:allow names unknown analyzer " + dir.analyzer,
					})
				case !dir.used && inRun[dir.analyzer]:
					extra = append(extra, Diagnostic{
						Analyzer: "allow", Pos: dir.pos,
						Message: "stale lint:allow: no " + dir.analyzer + " finding here to suppress",
					})
				}
			}
		}
	}
	sort.Slice(extra, func(i, j int) bool {
		a, b := extra[i], extra[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		return a.Pos.Line < b.Pos.Line
	})
	return extra
}
