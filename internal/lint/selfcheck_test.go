package lint

import (
	"path/filepath"
	"testing"
)

// TestSuiteCleanOverRepo is the regression pin: the full analyzer
// suite runs over every real package of the module (the same scope as
// the CI `specvet ./...` gate — testdata fixtures excluded by
// ExpandPatterns), so a plain `go test ./...` fails on a new
// determinism or registry violation even where the vettool step is not
// wired up. Suppressed findings are listed for the log; unsuppressed
// ones fail.
func TestSuiteCleanOverRepo(t *testing.T) {
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := ExpandPatterns(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) < 10 {
		t.Fatalf("pattern expansion found only %d package dirs — the gate would be vacuous", len(dirs))
	}
	prog, err := Load(root, dirs)
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(prog, Analyzers())
	for _, d := range diags {
		if d.Suppressed {
			rel, _ := filepath.Rel(root, d.Pos.Filename)
			t.Logf("allowed: %s:%d [%s] %s", rel, d.Pos.Line, d.Analyzer, d.Reason)
		}
	}
	for _, d := range Unsuppressed(diags) {
		t.Errorf("%s", d)
	}
}
