package lint

import (
	"go/ast"
	"go/types"
)

// NoDeterminism enforces the serving contract that a registered
// analysis is a pure function of (dataset, params): same corpus, same
// canonical parameters, byte-identical output — the property the
// engine memo, the HTTP ETags, and the audit chain all key on. It
// walks every function reachable from a registered analysis func and
// reports the constructs that break the contract:
//
//   - wall-clock reads (time.Now and friends): output would embed the
//     serving moment;
//   - the global math/rand source: process-wide, seedable by anyone,
//     shared across goroutines — a seeded private rand.New(...) is the
//     legitimate pattern and passes;
//   - environment reads (os.Getenv and friends): parameters must flow
//     through the typed schema, not ambient process state;
//   - goroutine-ordering-sensitive constructs: go statements and
//     multi-clause selects. Pools whose results are index-slotted (the
//     repo's par.ForEach discipline) are deterministic by construction
//     and carry a //lint:allow with that justification.
var NoDeterminism = &Analyzer{
	Name:    "nodeterminism",
	Doc:     "registered analyses must be pure functions of (dataset, params)",
	Program: true,
	Run:     runNoDeterminism,
}

// bannedCalls maps package path → function name → what the diagnostic
// should say. Only package-level functions are matched: methods on a
// private *rand.Rand live in math/rand too, and those are exactly the
// sanctioned alternative.
var bannedCalls = map[string]map[string]string{
	"time": {
		"Now":      "reads the wall clock",
		"Since":    "reads the wall clock",
		"Until":    "reads the wall clock",
		"After":    "depends on the wall clock",
		"Tick":     "depends on the wall clock",
		"NewTimer": "depends on the wall clock",
	},
	"os": {
		"Getenv":    "reads the process environment",
		"LookupEnv": "reads the process environment",
		"Environ":   "reads the process environment",
	},
}

// randConstructors are the math/rand package-level funcs that build a
// private generator rather than touching the global source.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runNoDeterminism(pass *Pass) {
	for _, body := range pass.Prog.Reachable() {
		info := body.pkg.Info
		where := body.name
		ast.Inspect(body.node, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkBannedCall(pass, info, n, where)
			case *ast.GoStmt:
				pass.Reportf(n.Pos(),
					"%s starts a goroutine; completion order must not reach the output (index-slot results and annotate, or compute serially)",
					where)
			case *ast.SelectStmt:
				if len(n.Body.List) > 1 {
					pass.Reportf(n.Pos(),
						"%s selects over multiple cases; the runtime picks ready cases pseudo-randomly",
						where)
				}
			}
			return true
		})
	}
}

func checkBannedCall(pass *Pass, info *types.Info, call *ast.CallExpr, where string) {
	fn := funcObj(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Signature().Recv() != nil {
		return
	}
	path := fn.Pkg().Path()
	if why, ok := bannedCalls[path][fn.Name()]; ok {
		pass.Reportf(call.Pos(), "%s %s via %s.%s; a registered analysis must be a pure function of (dataset, params)",
			where, why, path, fn.Name())
		return
	}
	if (path == "math/rand" || path == "math/rand/v2") && !randConstructors[fn.Name()] {
		pass.Reportf(call.Pos(), "%s draws from the global %s source via %s; use a seeded private rand.New(rand.NewSource(seed))",
			where, path, fn.Name())
	}
}
