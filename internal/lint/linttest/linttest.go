// Package linttest is the fixture harness for the internal/lint
// analyzers, playing the role golang.org/x/tools' analysistest plays
// upstream: a fixture package under testdata/src/<analyzer> is loaded
// and analyzed, and every line carrying a `// want "regexp"` comment
// must produce a matching unsuppressed diagnostic — no more, no fewer.
// Fixture files may import module packages (repro/internal/analysis,
// typically, so registrations look real to the call-graph walkers);
// they live under testdata, so the go tool never builds them and their
// deliberate violations stay out of the real tree's gate.
package linttest

import (
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint"
)

// wantRE extracts the quoted expectations from a `// want "..." "..."`
// comment.
var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

type expectation struct {
	re      *regexp.Regexp
	line    int
	matched bool
}

// Run loads the fixture directory as a program and checks the given
// analyzers' unsuppressed diagnostics against its want comments.
// Diagnostics outside the fixture directory (in imported module
// packages) are ignored: the real tree's findings are the self-check
// test's business, not the fixtures'.
func Run(t *testing.T, fixtureDir string, analyzers ...*lint.Analyzer) {
	t.Helper()
	dir, err := filepath.Abs(fixtureDir)
	if err != nil {
		t.Fatal(err)
	}
	root, err := lint.ModuleRoot(dir)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := lint.Load(root, []string{dir})
	if err != nil {
		t.Fatalf("load fixture %s: %v", fixtureDir, err)
	}

	wants, err := collectWants(t, dir)
	if err != nil {
		t.Fatal(err)
	}

	var inFixture []lint.Diagnostic
	for _, d := range lint.Unsuppressed(lint.Run(prog, analyzers)) {
		if strings.HasPrefix(d.Pos.Filename, dir+string(filepath.Separator)) {
			inFixture = append(inFixture, d)
		}
	}

	for _, d := range inFixture {
		matched := false
		for _, w := range wants[d.Pos.Filename] {
			if w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for file, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s:%d: no diagnostic matching %q", file, w.line, w.re)
			}
		}
	}
}

// collectWants scans every fixture file for want comments.
func collectWants(t *testing.T, dir string) (map[string][]*expectation, error) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	wants := map[string][]*expectation{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			for _, quoted := range splitQuoted(m[1]) {
				pattern, err := strconv.Unquote(quoted)
				if err != nil {
					t.Fatalf("%s:%d: bad want literal %s: %v", path, i+1, quoted, err)
				}
				re, err := regexp.Compile(pattern)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", path, i+1, pattern, err)
				}
				wants[path] = append(wants[path], &expectation{re: re, line: i + 1})
			}
		}
	}
	return wants, nil
}

// splitQuoted returns the double-quoted string literals at the start
// of s, in order.
func splitQuoted(s string) []string {
	var out []string
	for {
		s = strings.TrimSpace(s)
		if !strings.HasPrefix(s, `"`) {
			return out
		}
		end := 1
		for end < len(s) {
			if s[end] == '\\' {
				end += 2
				continue
			}
			if s[end] == '"' {
				break
			}
			end++
		}
		if end >= len(s) {
			return out
		}
		out = append(out, s[:end+1])
		s = s[end+1:]
	}
}
