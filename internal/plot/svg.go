package plot

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/stats"
)

// SVG geometry constants (pixels).
const (
	svgMarginLeft   = 64
	svgMarginRight  = 24
	svgMarginTop    = 36
	svgMarginBottom = 48
	svgCell         = 8 // pixels per Axes width/height unit
)

type svgCanvas struct {
	b                  strings.Builder
	pw, ph             int // plot area in px
	xlo, xhi, ylo, yhi float64
}

func newSVG(ax Axes, xlo, xhi, ylo, yhi float64) *svgCanvas {
	c := &svgCanvas{
		pw: ax.Width * svgCell, ph: ax.Height * svgCell,
		xlo: xlo, xhi: xhi, ylo: ylo, yhi: yhi,
	}
	w := c.pw + svgMarginLeft + svgMarginRight
	h := c.ph + svgMarginTop + svgMarginBottom
	fmt.Fprintf(&c.b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", w, h, w, h)
	fmt.Fprintf(&c.b, `<rect width="%d" height="%d" fill="white"/>`+"\n", w, h)
	if ax.Title != "" {
		fmt.Fprintf(&c.b, `<text x="%d" y="20" font-family="sans-serif" font-size="14" font-weight="bold">%s</text>`+"\n",
			svgMarginLeft, escape(ax.Title))
	}
	// Frame.
	fmt.Fprintf(&c.b, `<rect x="%d" y="%d" width="%d" height="%d" fill="none" stroke="#999"/>`+"\n",
		svgMarginLeft, svgMarginTop, c.pw, c.ph)
	// Axis tick labels (min/max).
	style := `font-family="sans-serif" font-size="11" fill="#333"`
	fmt.Fprintf(&c.b, `<text x="%d" y="%d" %s>%s</text>`+"\n",
		svgMarginLeft-4, svgMarginTop+c.ph, style+` text-anchor="end"`, escape(fmtTick(ylo)))
	fmt.Fprintf(&c.b, `<text x="%d" y="%d" %s>%s</text>`+"\n",
		svgMarginLeft-4, svgMarginTop+10, style+` text-anchor="end"`, escape(fmtTick(yhi)))
	fmt.Fprintf(&c.b, `<text x="%d" y="%d" %s>%s</text>`+"\n",
		svgMarginLeft, svgMarginTop+c.ph+16, style, escape(fmtTick(xlo)))
	fmt.Fprintf(&c.b, `<text x="%d" y="%d" %s text-anchor="end">%s</text>`+"\n",
		svgMarginLeft+c.pw, svgMarginTop+c.ph+16, style, escape(fmtTick(xhi)))
	if ax.XLabel != "" {
		fmt.Fprintf(&c.b, `<text x="%d" y="%d" %s text-anchor="middle">%s</text>`+"\n",
			svgMarginLeft+c.pw/2, svgMarginTop+c.ph+34, style, escape(ax.XLabel))
	}
	if ax.YLabel != "" {
		fmt.Fprintf(&c.b, `<text x="14" y="%d" %s transform="rotate(-90 14 %d)" text-anchor="middle">%s</text>`+"\n",
			svgMarginTop+c.ph/2, style, svgMarginTop+c.ph/2, escape(ax.YLabel))
	}
	return c
}

func (c *svgCanvas) px(x float64) float64 {
	return svgMarginLeft + (x-c.xlo)/(c.xhi-c.xlo)*float64(c.pw)
}

func (c *svgCanvas) py(y float64) float64 {
	return svgMarginTop + float64(c.ph) - (y-c.ylo)/(c.yhi-c.ylo)*float64(c.ph)
}

func (c *svgCanvas) legend(names []string) {
	x := svgMarginLeft + 8
	for i, n := range names {
		fmt.Fprintf(&c.b, `<circle cx="%d" cy="%d" r="4" fill="%s"/>`+"\n", x, svgMarginTop+12, colorFor(i))
		fmt.Fprintf(&c.b, `<text x="%d" y="%d" font-family="sans-serif" font-size="11">%s</text>`+"\n",
			x+8, svgMarginTop+16, escape(n))
		x += 12 + 7*len(n) + 16
	}
}

func (c *svgCanvas) close() string {
	c.b.WriteString("</svg>\n")
	return c.b.String()
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}

// SVGScatter renders a scatter chart.
func SVGScatter(pts []Pt, ax Axes) string {
	ax = ax.sized()
	xs := make([]float64, len(pts))
	ys := make([]float64, len(pts))
	for i, p := range pts {
		xs[i], ys[i] = p.X, p.Y
	}
	xlo, xhi := dataRange(xs)
	ylo, yhi := dataRange(ys)
	if ax.YMax > ax.YMin {
		ylo, yhi = ax.YMin, ax.YMax
	}
	c := newSVG(ax, xlo, xhi, ylo, yhi)
	for _, p := range pts {
		if math.IsNaN(p.X) || math.IsNaN(p.Y) {
			continue
		}
		fmt.Fprintf(&c.b, `<circle cx="%.1f" cy="%.1f" r="2.5" fill="%s" fill-opacity="0.6"/>`+"\n",
			c.px(p.X), c.py(clampF(p.Y, ylo, yhi)), colorFor(p.Class))
	}
	c.legend(ax.ClassNames)
	return c.close()
}

// SVGLines renders line series.
func SVGLines(series []Series, ax Axes) string {
	ax = ax.sized()
	var allX, allY []float64
	for _, s := range series {
		allX = append(allX, s.X...)
		allY = append(allY, s.Y...)
	}
	xlo, xhi := dataRange(allX)
	ylo, yhi := dataRange(allY)
	if ax.YMax > ax.YMin {
		ylo, yhi = ax.YMin, ax.YMax
	}
	c := newSVG(ax, xlo, xhi, ylo, yhi)
	names := make([]string, len(series))
	for si, s := range series {
		names[si] = s.Name
		var path []string
		for i := range s.X {
			if math.IsNaN(s.Y[i]) {
				continue
			}
			path = append(path, fmt.Sprintf("%.1f,%.1f", c.px(s.X[i]), c.py(s.Y[i])))
		}
		fmt.Fprintf(&c.b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.5"/>`+"\n",
			strings.Join(path, " "), colorFor(si))
	}
	if len(ax.ClassNames) == 0 {
		ax.ClassNames = names
	}
	c.legend(ax.ClassNames)
	return c.close()
}

// SVGBoxes renders labelled vertical box plots on a categorical x-axis.
func SVGBoxes(labels []string, boxes []stats.BoxStats, ax Axes) string {
	ax = ax.sized()
	var vals []float64
	for _, bx := range boxes {
		vals = append(vals, bx.LoWhisk, bx.HiWhisk)
	}
	ylo, yhi := dataRange(vals)
	if ax.YMax > ax.YMin {
		ylo, yhi = ax.YMin, ax.YMax
	}
	n := len(boxes)
	c := newSVG(ax, 0, float64(n), ylo, yhi)
	boxW := float64(c.pw) / float64(n) * 0.6
	for i, bx := range boxes {
		cx := c.px(float64(i) + 0.5)
		col := colorFor(i % len(svgPalette))
		// whiskers
		fmt.Fprintf(&c.b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s"/>`+"\n",
			cx, c.py(bx.LoWhisk), cx, c.py(bx.HiWhisk), col)
		// box
		fmt.Fprintf(&c.b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" fill-opacity="0.35" stroke="%s"/>`+"\n",
			cx-boxW/2, c.py(bx.Q3), boxW, c.py(bx.Q1)-c.py(bx.Q3), col, col)
		// median
		fmt.Fprintf(&c.b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="2"/>`+"\n",
			cx-boxW/2, c.py(bx.Median), cx+boxW/2, c.py(bx.Median), col)
		// label
		if i < len(labels) {
			fmt.Fprintf(&c.b, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="9" text-anchor="middle">%s</text>`+"\n",
				cx, svgMarginTop+c.ph+14, escape(labels[i]))
		}
	}
	return c.close()
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
