package plot

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/stats"
)

// ASCIIScatter renders points on a character grid with axes and legend.
func ASCIIScatter(pts []Pt, ax Axes) string {
	ax = ax.sized()
	xs := make([]float64, len(pts))
	ys := make([]float64, len(pts))
	for i, p := range pts {
		xs[i], ys[i] = p.X, p.Y
	}
	xlo, xhi := dataRange(xs)
	ylo, yhi := dataRange(ys)
	if ax.YMax > ax.YMin {
		ylo, yhi = ax.YMin, ax.YMax
	}
	grid := newGrid(ax.Width, ax.Height)
	for _, p := range pts {
		if math.IsNaN(p.X) || math.IsNaN(p.Y) {
			continue
		}
		grid.set(
			scale(p.X, xlo, xhi, ax.Width),
			scale(p.Y, ylo, yhi, ax.Height),
			markerFor(p.Class),
		)
	}
	return grid.render(ax, xlo, xhi, ylo, yhi, legendASCII(ax.ClassNames))
}

// ASCIILines renders one or more line series; each series gets the
// marker of its index.
func ASCIILines(series []Series, ax Axes) string {
	ax = ax.sized()
	var allX, allY []float64
	for _, s := range series {
		allX = append(allX, s.X...)
		allY = append(allY, s.Y...)
	}
	xlo, xhi := dataRange(allX)
	ylo, yhi := dataRange(allY)
	if ax.YMax > ax.YMin {
		ylo, yhi = ax.YMin, ax.YMax
	}
	grid := newGrid(ax.Width, ax.Height)
	names := make([]string, len(series))
	for si, s := range series {
		names[si] = s.Name
		for i := range s.X {
			if i > 0 {
				// Interpolate between consecutive points for continuity.
				steps := ax.Width / max(1, len(s.X)-1)
				for k := 0; k <= steps; k++ {
					t := float64(k) / float64(max(1, steps))
					x := s.X[i-1] + (s.X[i]-s.X[i-1])*t
					y := s.Y[i-1] + (s.Y[i]-s.Y[i-1])*t
					grid.set(scale(x, xlo, xhi, ax.Width),
						scale(y, ylo, yhi, ax.Height), markerFor(si))
				}
			}
			grid.set(scale(s.X[i], xlo, xhi, ax.Width),
				scale(s.Y[i], ylo, yhi, ax.Height), markerFor(si))
		}
	}
	if len(ax.ClassNames) == 0 {
		ax.ClassNames = names
	}
	return grid.render(ax, xlo, xhi, ylo, yhi, legendASCII(ax.ClassNames))
}

// ASCIIBars renders a horizontal bar chart.
func ASCIIBars(labels []string, values []float64, ax Axes) string {
	ax = ax.sized()
	_, hi := dataRange(values)
	if hi <= 0 {
		hi = 1
	}
	labelW := labelWidth(labels)
	var b strings.Builder
	if ax.Title != "" {
		fmt.Fprintf(&b, "%s\n", ax.Title)
	}
	for i, v := range values {
		bar := int(v / hi * float64(ax.Width))
		if bar < 0 {
			bar = 0
		}
		label := ""
		if i < len(labels) {
			label = labels[i]
		}
		fmt.Fprintf(&b, "%s |%s %s\n", padLabel(label, labelW),
			strings.Repeat("=", bar), fmtTick(v))
	}
	return b.String()
}

// ASCIIBoxes renders box plots, one row per labelled box, on a shared
// horizontal scale (used for Figure 4).
func ASCIIBoxes(labels []string, boxes []stats.BoxStats, ax Axes) string {
	ax = ax.sized()
	var vals []float64
	for _, bx := range boxes {
		vals = append(vals, bx.LoWhisk, bx.HiWhisk, bx.Median)
	}
	lo, hi := dataRange(vals)
	if ax.YMax > ax.YMin {
		lo, hi = ax.YMin, ax.YMax
	}
	labelW := labelWidth(labels)
	var b strings.Builder
	if ax.Title != "" {
		fmt.Fprintf(&b, "%s\n", ax.Title)
	}
	for i, bx := range boxes {
		row := make([]byte, ax.Width+1)
		for j := range row {
			row[j] = ' '
		}
		put := func(v float64, c byte) {
			j := scale(v, lo, hi, ax.Width)
			if j >= 0 && j < len(row) {
				row[j] = c
			}
		}
		// whisker span
		from := scale(bx.LoWhisk, lo, hi, ax.Width)
		to := scale(bx.HiWhisk, lo, hi, ax.Width)
		for j := from; j <= to && j < len(row); j++ {
			if j >= 0 {
				row[j] = '-'
			}
		}
		// box span
		q1 := scale(bx.Q1, lo, hi, ax.Width)
		q3 := scale(bx.Q3, lo, hi, ax.Width)
		for j := q1; j <= q3 && j < len(row); j++ {
			if j >= 0 {
				row[j] = '='
			}
		}
		put(bx.LoWhisk, '|')
		put(bx.HiWhisk, '|')
		put(bx.Q1, '[')
		put(bx.Q3, ']')
		put(bx.Median, 'M')
		label := ""
		if i < len(labels) {
			label = labels[i]
		}
		fmt.Fprintf(&b, "%s %s (n=%d)\n", padLabel(label, labelW), string(row), bx.N)
	}
	fmt.Fprintf(&b, "%s %s … %s\n", padLabel("scale:", labelW), fmtTick(lo), fmtTick(hi))
	return b.String()
}

// --- grid machinery ---

type grid struct {
	w, h  int
	cells [][]byte
}

func newGrid(w, h int) *grid {
	g := &grid{w: w, h: h, cells: make([][]byte, h+1)}
	for i := range g.cells {
		g.cells[i] = bytesRepeat(' ', w+1)
	}
	return g
}

func bytesRepeat(b byte, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = b
	}
	return out
}

func (g *grid) set(x, y int, c byte) {
	if x < 0 || y < 0 || x > g.w || y > g.h {
		return
	}
	g.cells[g.h-y][x] = c // y grows upward
}

// scale maps v ∈ [lo, hi] to a grid column in [0, n]. NaN values have
// no position (-1, off-grid). A degenerate range (hi <= lo, e.g. a
// constant-valued series under a forced axis) centers every point
// instead of dropping it, so the plot still shows the data.
func scale(v, lo, hi float64, n int) int {
	if math.IsNaN(v) {
		return -1
	}
	if hi <= lo {
		return n / 2
	}
	return int((v - lo) / (hi - lo) * float64(n))
}

func (g *grid) render(ax Axes, xlo, xhi, ylo, yhi float64, legend string) string {
	var b strings.Builder
	if ax.Title != "" {
		fmt.Fprintf(&b, "%s\n", ax.Title)
	}
	yloS, yhiS := fmtTick(ylo), fmtTick(yhi)
	gutter := len(yloS)
	if len(yhiS) > gutter {
		gutter = len(yhiS)
	}
	for i, row := range g.cells {
		label := strings.Repeat(" ", gutter)
		switch i {
		case 0:
			label = fmt.Sprintf("%*s", gutter, yhiS)
		case len(g.cells) - 1:
			label = fmt.Sprintf("%*s", gutter, yloS)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, strings.TrimRight(string(row), " "))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", gutter), strings.Repeat("-", g.w+1))
	fmt.Fprintf(&b, "%s  %-*s%s\n", strings.Repeat(" ", gutter), g.w-len(fmtTick(xhi))+1, fmtTick(xlo), fmtTick(xhi))
	if ax.XLabel != "" || ax.YLabel != "" {
		fmt.Fprintf(&b, "x: %s   y: %s\n", ax.XLabel, ax.YLabel)
	}
	if legend != "" {
		fmt.Fprintf(&b, "%s\n", legend)
	}
	return b.String()
}

func legendASCII(names []string) string {
	if len(names) == 0 {
		return ""
	}
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = fmt.Sprintf("%c=%s", markerFor(i), n)
	}
	return "legend: " + strings.Join(parts, "  ")
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
