package plot

import (
	"math"
	"strings"
	"testing"

	"repro/internal/stats"
)

func scatterPts() []Pt {
	return []Pt{
		{X: 2007, Y: 120, Class: 0},
		{X: 2015, Y: 200, Class: 1},
		{X: 2023, Y: 330, Class: 0},
		{X: 2024, Y: math.NaN(), Class: 1}, // must be skipped
	}
}

func TestASCIIScatter(t *testing.T) {
	out := ASCIIScatter(scatterPts(), Axes{
		Title: "Power per socket", XLabel: "year", YLabel: "W",
		Width: 40, Height: 10, ClassNames: []string{"AMD", "Intel"},
	})
	for _, want := range []string{"Power per socket", "legend:", "AMD", "Intel", "x:", "+"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "x") || !strings.Contains(out, "o") {
		t.Error("markers missing")
	}
}

func TestASCIIScatterDegenerate(t *testing.T) {
	// No finite data and single-point data must not panic.
	_ = ASCIIScatter(nil, Axes{})
	_ = ASCIIScatter([]Pt{{X: 1, Y: 1}}, Axes{})
	_ = ASCIIScatter([]Pt{{X: math.NaN(), Y: math.NaN()}}, Axes{})
}

func TestASCIILines(t *testing.T) {
	out := ASCIILines([]Series{
		{Name: "mean", X: []float64{2006, 2010, 2020}, Y: []float64{0.7, 0.35, 0.2}},
		{Name: "median", X: []float64{2006, 2010, 2020}, Y: []float64{0.65, 0.3, 0.18}},
	}, Axes{Width: 40, Height: 8})
	if !strings.Contains(out, "mean") || !strings.Contains(out, "median") {
		t.Errorf("legend missing:\n%s", out)
	}
}

func TestASCIIBars(t *testing.T) {
	out := ASCIIBars(
		[]string{"Windows", "Linux"},
		[]float64{0.97, 0.03},
		Axes{Title: "OS share", Width: 30},
	)
	if !strings.Contains(out, "Windows") || !strings.Contains(out, "=") {
		t.Errorf("bars missing:\n%s", out)
	}
	// Larger value gets a longer bar.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if strings.Count(lines[1], "=") <= strings.Count(lines[2], "=") {
		t.Errorf("bar lengths not ordered:\n%s", out)
	}
}

func TestASCIIBoxes(t *testing.T) {
	boxes := []stats.BoxStats{
		stats.Box([]float64{0.6, 0.7, 0.75, 0.8, 0.85}),
		stats.Box([]float64{0.9, 1.0, 1.05, 1.1, 1.2}),
	}
	out := ASCIIBoxes([]string{"2007", "2014"}, boxes, Axes{Width: 50})
	for _, want := range []string{"2007", "2014", "M", "[", "]", "scale:"} {
		if !strings.Contains(out, want) {
			t.Errorf("boxes missing %q:\n%s", want, out)
		}
	}
}

// TestScaleDegenerateRange: a degenerate range must center points on
// the grid, not drop them off-grid at -1 (which silently emptied any
// constant-valued plot).
func TestScaleDegenerateRange(t *testing.T) {
	if got := scale(5, 5, 5, 40); got != 20 {
		t.Errorf("scale on zero-width range = %d, want centered 20", got)
	}
	if got := scale(1, 7, 3, 40); got != 20 {
		t.Errorf("scale on inverted range = %d, want centered 20", got)
	}
	if got := scale(math.NaN(), 0, 10, 40); got != -1 {
		t.Errorf("scale(NaN) = %d, want off-grid -1", got)
	}
	if got := scale(2.5, 0, 10, 40); got != 10 {
		t.Errorf("scale(2.5, 0, 10, 40) = %d, want 10", got)
	}
}

// TestASCIIConstantSeries: a single-year / constant-valued figure must
// still render its markers.
func TestASCIIConstantSeries(t *testing.T) {
	out := ASCIIScatter([]Pt{{X: 2020, Y: 42}, {X: 2020, Y: 42, Class: 1}},
		Axes{Width: 30, Height: 8})
	if !strings.Contains(out, "x") && !strings.Contains(out, "o") {
		t.Errorf("constant scatter rendered empty:\n%s", out)
	}
	out = ASCIILines([]Series{
		{Name: "flat", X: []float64{2020, 2021, 2022}, Y: []float64{5, 5, 5}},
	}, Axes{Width: 30, Height: 8})
	if !strings.Contains(out, "x") {
		t.Errorf("constant line rendered empty:\n%s", out)
	}
	boxes := []stats.BoxStats{stats.Box([]float64{1, 1, 1, 1})}
	out = ASCIIBoxes([]string{"2020"}, boxes, Axes{Width: 30})
	if !strings.Contains(out, "M") {
		t.Errorf("constant box rendered empty:\n%s", out)
	}
}

// TestASCIIEmptyAndNaN: empty and all-NaN inputs must not panic and
// still produce a frame.
func TestASCIIEmptyAndNaN(t *testing.T) {
	nan := math.NaN()
	for name, out := range map[string]string{
		"empty-lines":  ASCIILines(nil, Axes{Width: 20, Height: 5}),
		"empty-series": ASCIILines([]Series{{Name: "void"}}, Axes{Width: 20, Height: 5}),
		"nan-lines": ASCIILines([]Series{
			{Name: "nan", X: []float64{1, 2}, Y: []float64{nan, nan}},
		}, Axes{Width: 20, Height: 5}),
		"nan-scatter": ASCIIScatter([]Pt{{X: nan, Y: nan}, {X: nan, Y: nan}},
			Axes{Width: 20, Height: 5}),
		"empty-bars":    ASCIIBars(nil, nil, Axes{Title: "empty", Width: 20}),
		"empty-stacked": ASCIIStacked(nil, nil, Axes{Title: "empty", Width: 20}),
	} {
		if out == "" {
			t.Errorf("%s produced no output at all", name)
		}
		if strings.Contains(out, "NaN") {
			t.Errorf("%s leaked NaN into output:\n%s", name, out)
		}
	}
}

// barStarts returns, per chart row, the rune index of the first glyph
// from the sep set; rows without one are skipped.
func barStarts(t *testing.T, out, sep string) []int {
	t.Helper()
	var cols []int
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		col, found := 0, false
		for _, r := range line {
			if strings.ContainsRune(sep, r) {
				found = true
				break
			}
			col++
		}
		if found {
			cols = append(cols, col)
		}
	}
	return cols
}

// TestASCIIMultibyteLabels: multibyte labels must not shift the columns
// of bar, box, or stacked charts (len counts bytes, not runes).
func TestASCIIMultibyteLabels(t *testing.T) {
	labels := []string{"año", "東京", "plain"}
	assertAligned := func(name, out, sep string) {
		t.Helper()
		cols := barStarts(t, out, sep)
		if len(cols) < len(labels) {
			t.Fatalf("%s: found %d rows, want ≥ %d:\n%s", name, len(cols), len(labels), out)
		}
		for i, c := range cols {
			if c != cols[0] {
				t.Errorf("%s: row %d starts at rune %d, row 0 at %d — labels misaligned:\n%s",
					name, i, c, cols[0], out)
			}
		}
	}
	assertAligned("bars", ASCIIBars(labels, []float64{3, 2, 1}, Axes{Width: 20}), "|")
	// Identical box stats per row: the whisker glyphs land on the same
	// chart columns, so any drift comes from label padding.
	box := stats.Box([]float64{1, 2, 3})
	assertAligned("boxes",
		ASCIIBoxes(labels, []stats.BoxStats{box, box, box}, Axes{Width: 20}), "-=[]M|")
	rows := make([]StackedRow, len(labels))
	for i, l := range labels {
		rows[i] = StackedRow{Label: l, Shares: map[string]float64{"a": 0.5, "b": 0.5}}
	}
	assertAligned("stacked", ASCIIStacked(rows, []string{"a", "b"}, Axes{Width: 20}), "|")
}

func TestSVGScatterWellFormed(t *testing.T) {
	out := SVGScatter(scatterPts(), Axes{
		Title: "Overall <efficiency> & more", Width: 80, Height: 30,
		ClassNames: []string{"AMD", "Intel"}, XLabel: "year", YLabel: "ops/W",
	})
	for _, want := range []string{
		"<svg", "</svg>", "<circle", "&lt;efficiency&gt; &amp;", "ops/W",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("svg missing %q", want)
		}
	}
	if strings.Count(out, "<circle") < 3 {
		t.Error("expected at least 3 data circles")
	}
	if strings.Contains(out, "NaN") {
		t.Error("NaN leaked into svg")
	}
}

func TestSVGLines(t *testing.T) {
	out := SVGLines([]Series{
		{Name: "AMD", X: []float64{2018, 2020, 2024}, Y: []float64{10000, 20000, 35000}},
	}, Axes{Width: 80, Height: 30})
	if !strings.Contains(out, "<polyline") {
		t.Error("polyline missing")
	}
}

func TestSVGBoxes(t *testing.T) {
	boxes := []stats.BoxStats{
		stats.Box([]float64{0.6, 0.7, 0.8}),
		stats.Box([]float64{0.9, 1.0, 1.1}),
	}
	out := SVGBoxes([]string{"a", "b"}, boxes, Axes{Width: 60, Height: 30})
	if strings.Count(out, "<rect") < 3 { // background + 2 boxes
		t.Errorf("boxes missing:\n%s", out)
	}
}

func TestFmtTick(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{2500000, "2.5M"}, {12000, "12k"}, {330, "330"}, {0.7, "0.7"},
	}
	for _, c := range cases {
		if got := fmtTick(c.in); got != c.want {
			t.Errorf("fmtTick(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestYRangeOverride(t *testing.T) {
	out := ASCIIScatter(scatterPts(), Axes{Width: 30, Height: 8, YMin: 0, YMax: 1000})
	if !strings.Contains(out, "1k") && !strings.Contains(out, "1000") {
		t.Errorf("forced y max missing:\n%s", out)
	}
}
