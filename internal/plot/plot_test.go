package plot

import (
	"math"
	"strings"
	"testing"

	"repro/internal/stats"
)

func scatterPts() []Pt {
	return []Pt{
		{X: 2007, Y: 120, Class: 0},
		{X: 2015, Y: 200, Class: 1},
		{X: 2023, Y: 330, Class: 0},
		{X: 2024, Y: math.NaN(), Class: 1}, // must be skipped
	}
}

func TestASCIIScatter(t *testing.T) {
	out := ASCIIScatter(scatterPts(), Axes{
		Title: "Power per socket", XLabel: "year", YLabel: "W",
		Width: 40, Height: 10, ClassNames: []string{"AMD", "Intel"},
	})
	for _, want := range []string{"Power per socket", "legend:", "AMD", "Intel", "x:", "+"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "x") || !strings.Contains(out, "o") {
		t.Error("markers missing")
	}
}

func TestASCIIScatterDegenerate(t *testing.T) {
	// No finite data and single-point data must not panic.
	_ = ASCIIScatter(nil, Axes{})
	_ = ASCIIScatter([]Pt{{X: 1, Y: 1}}, Axes{})
	_ = ASCIIScatter([]Pt{{X: math.NaN(), Y: math.NaN()}}, Axes{})
}

func TestASCIILines(t *testing.T) {
	out := ASCIILines([]Series{
		{Name: "mean", X: []float64{2006, 2010, 2020}, Y: []float64{0.7, 0.35, 0.2}},
		{Name: "median", X: []float64{2006, 2010, 2020}, Y: []float64{0.65, 0.3, 0.18}},
	}, Axes{Width: 40, Height: 8})
	if !strings.Contains(out, "mean") || !strings.Contains(out, "median") {
		t.Errorf("legend missing:\n%s", out)
	}
}

func TestASCIIBars(t *testing.T) {
	out := ASCIIBars(
		[]string{"Windows", "Linux"},
		[]float64{0.97, 0.03},
		Axes{Title: "OS share", Width: 30},
	)
	if !strings.Contains(out, "Windows") || !strings.Contains(out, "=") {
		t.Errorf("bars missing:\n%s", out)
	}
	// Larger value gets a longer bar.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if strings.Count(lines[1], "=") <= strings.Count(lines[2], "=") {
		t.Errorf("bar lengths not ordered:\n%s", out)
	}
}

func TestASCIIBoxes(t *testing.T) {
	boxes := []stats.BoxStats{
		stats.Box([]float64{0.6, 0.7, 0.75, 0.8, 0.85}),
		stats.Box([]float64{0.9, 1.0, 1.05, 1.1, 1.2}),
	}
	out := ASCIIBoxes([]string{"2007", "2014"}, boxes, Axes{Width: 50})
	for _, want := range []string{"2007", "2014", "M", "[", "]", "scale:"} {
		if !strings.Contains(out, want) {
			t.Errorf("boxes missing %q:\n%s", want, out)
		}
	}
}

func TestSVGScatterWellFormed(t *testing.T) {
	out := SVGScatter(scatterPts(), Axes{
		Title: "Overall <efficiency> & more", Width: 80, Height: 30,
		ClassNames: []string{"AMD", "Intel"}, XLabel: "year", YLabel: "ops/W",
	})
	for _, want := range []string{
		"<svg", "</svg>", "<circle", "&lt;efficiency&gt; &amp;", "ops/W",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("svg missing %q", want)
		}
	}
	if strings.Count(out, "<circle") < 3 {
		t.Error("expected at least 3 data circles")
	}
	if strings.Contains(out, "NaN") {
		t.Error("NaN leaked into svg")
	}
}

func TestSVGLines(t *testing.T) {
	out := SVGLines([]Series{
		{Name: "AMD", X: []float64{2018, 2020, 2024}, Y: []float64{10000, 20000, 35000}},
	}, Axes{Width: 80, Height: 30})
	if !strings.Contains(out, "<polyline") {
		t.Error("polyline missing")
	}
}

func TestSVGBoxes(t *testing.T) {
	boxes := []stats.BoxStats{
		stats.Box([]float64{0.6, 0.7, 0.8}),
		stats.Box([]float64{0.9, 1.0, 1.1}),
	}
	out := SVGBoxes([]string{"a", "b"}, boxes, Axes{Width: 60, Height: 30})
	if strings.Count(out, "<rect") < 3 { // background + 2 boxes
		t.Errorf("boxes missing:\n%s", out)
	}
}

func TestFmtTick(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{2500000, "2.5M"}, {12000, "12k"}, {330, "330"}, {0.7, "0.7"},
	}
	for _, c := range cases {
		if got := fmtTick(c.in); got != c.want {
			t.Errorf("fmtTick(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestYRangeOverride(t *testing.T) {
	out := ASCIIScatter(scatterPts(), Axes{Width: 30, Height: 8, YMin: 0, YMax: 1000})
	if !strings.Contains(out, "1k") && !strings.Contains(out, "1000") {
		t.Errorf("forced y max missing:\n%s", out)
	}
}
