package plot

import (
	"fmt"
	"math"
	"strings"
	"unicode/utf8"
)

// Pt is one scatter point. Class selects the marker/colour and indexes
// Axes.ClassNames (legend entries); out-of-range classes share a default
// style.
type Pt struct {
	X, Y  float64
	Class int
}

// Series is one named line for line charts.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Axes configures a chart.
type Axes struct {
	Title      string
	XLabel     string
	YLabel     string
	Width      int // characters (ASCII) or pixels/8 (SVG)
	Height     int
	ClassNames []string
	// YMin/YMax force the y range when both are set (YMax > YMin).
	YMin, YMax float64
}

func (ax Axes) sized() Axes {
	if ax.Width <= 0 {
		ax.Width = 72
	}
	if ax.Height <= 0 {
		ax.Height = 20
	}
	return ax
}

// dataRange returns [lo, hi] over finite values with a small margin,
// handling degenerate cases.
func dataRange(vals []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, v := range vals {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if lo > hi { // no finite data
		return 0, 1
	}
	if lo == hi {
		return lo - 0.5, hi + 0.5
	}
	margin := (hi - lo) * 0.05
	return lo - margin, hi + margin
}

// fmtTick renders an axis value compactly (12000 → "12k").
func fmtTick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e6:
		return fmt.Sprintf("%.3gM", v/1e6)
	case av >= 1e4:
		return fmt.Sprintf("%.3gk", v/1e3)
	case av >= 10:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2g", v)
	}
}

// labelWidth returns the widest label in runes. Byte length (len)
// over-counts multibyte labels and misaligns every column after them.
// Rune count is still an approximation of terminal cells — East Asian
// wide glyphs occupy two — but fixing that needs Unicode width tables;
// runes cover the common accented/Cyrillic/Greek cases exactly.
func labelWidth(labels []string) int {
	w := 0
	for _, l := range labels {
		if n := utf8.RuneCountInString(l); n > w {
			w = n
		}
	}
	return w
}

// padLabel right-pads s with spaces to w runes. fmt's %-*s pads by
// bytes, so multibyte labels would come up short.
func padLabel(s string, w int) string {
	if n := w - utf8.RuneCountInString(s); n > 0 {
		return s + strings.Repeat(" ", n)
	}
	return s
}

// markers are the ASCII glyphs per class.
var markers = []byte{'x', 'o', '+', '*', '#', '@'}

func markerFor(class int) byte {
	if class < 0 || class >= len(markers) {
		return '.'
	}
	return markers[class]
}

// svgPalette are the stroke/fill colours per class.
var svgPalette = []string{
	"#d62728", "#1f77b4", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b",
}

func colorFor(class int) string {
	if class < 0 || class >= len(svgPalette) {
		return "#555555"
	}
	return svgPalette[class]
}
