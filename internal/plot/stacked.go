package plot

import (
	"fmt"
	"strings"
)

// StackedRow is one bar of a share chart: a label plus named shares
// that sum to ≈1.
type StackedRow struct {
	Label  string
	Shares map[string]float64
}

// ASCIIStacked renders 100 %-stacked horizontal bars (Figure 1's share
// panels). Categories are drawn in the order given; each gets the
// marker of its index.
func ASCIIStacked(rows []StackedRow, categories []string, ax Axes) string {
	ax = ax.sized()
	labels := make([]string, len(rows))
	for i, r := range rows {
		labels[i] = r.Label
	}
	labelW := labelWidth(labels)
	var b strings.Builder
	if ax.Title != "" {
		fmt.Fprintf(&b, "%s\n", ax.Title)
	}
	for _, r := range rows {
		bar := make([]byte, 0, ax.Width)
		for ci, cat := range categories {
			n := int(r.Shares[cat]*float64(ax.Width) + 0.5)
			for k := 0; k < n && len(bar) < ax.Width; k++ {
				bar = append(bar, markerFor(ci))
			}
		}
		for len(bar) < ax.Width {
			bar = append(bar, ' ')
		}
		fmt.Fprintf(&b, "%s |%s|\n", padLabel(r.Label, labelW), bar)
	}
	fmt.Fprintf(&b, "%s %s\n", padLabel("", labelW), legendASCII(categories))
	return b.String()
}

// SVGStacked renders the same chart as SVG.
func SVGStacked(rows []StackedRow, categories []string, ax Axes) string {
	ax = ax.sized()
	n := len(rows)
	c := newSVG(ax, 0, 1, 0, float64(n))
	rowH := float64(c.ph) / float64(maxI(n, 1))
	for ri, r := range rows {
		y := float64(svgMarginTop) + float64(ri)*rowH
		x := float64(svgMarginLeft)
		for ci, cat := range categories {
			w := r.Shares[cat] * float64(c.pw)
			if w <= 0 {
				continue
			}
			fmt.Fprintf(&c.b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n",
				x, y+1, w, rowH-2, colorFor(ci))
			x += w
		}
		fmt.Fprintf(&c.b, `<text x="%d" y="%.1f" font-family="sans-serif" font-size="10" text-anchor="end">%s</text>`+"\n",
			svgMarginLeft-4, y+rowH/2+3, escape(r.Label))
	}
	c.legend(categories)
	return c.close()
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}
