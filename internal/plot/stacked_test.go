package plot

import (
	"strings"
	"testing"
)

func stackedRows() []StackedRow {
	return []StackedRow{
		{Label: "2007", Shares: map[string]float64{"Windows": 0.97, "Linux": 0.02, "macOS": 0.01}},
		{Label: "2023", Shares: map[string]float64{"Windows": 0.60, "Linux": 0.40}},
	}
}

func TestASCIIStacked(t *testing.T) {
	out := ASCIIStacked(stackedRows(), []string{"Windows", "Linux", "macOS"},
		Axes{Title: "OS share", Width: 50})
	for _, want := range []string{"OS share", "2007", "2023", "legend:", "Windows"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
	// The 2007 row is dominated by the first marker; 2023 has plenty of
	// the second.
	lines := strings.Split(out, "\n")
	if strings.Count(lines[1], "x") < 40 {
		t.Errorf("2007 Windows share underdrawn:\n%s", out)
	}
	if strings.Count(lines[2], "o") < 15 {
		t.Errorf("2023 Linux share underdrawn:\n%s", out)
	}
}

func TestSVGStacked(t *testing.T) {
	out := SVGStacked(stackedRows(), []string{"Windows", "Linux", "macOS"},
		Axes{Title: "OS share", Width: 60, Height: 20})
	if !strings.Contains(out, "<svg") || strings.Count(out, "<rect") < 4 {
		t.Errorf("svg underdrawn:\n%s", out)
	}
	if !strings.Contains(out, "2023") {
		t.Error("labels missing")
	}
}

func TestStackedEmpty(t *testing.T) {
	// No rows must not panic.
	_ = ASCIIStacked(nil, []string{"a"}, Axes{})
	_ = SVGStacked(nil, []string{"a"}, Axes{})
}
