// Package plot renders the paper's figures without any external
// dependency: ASCII charts for terminals (cmd/specanalyze) and SVG
// documents for files (cmd/specplot).
//
// The package is intentionally generic — scatters, line series, bars and
// box plots over plain float64 data — so the analysis package stays free
// of presentation concerns and the same renderer serves every figure.
package plot
