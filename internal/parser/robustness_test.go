package parser

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/report"
)

// TestTruncatedFiles feeds every prefix-truncation of a valid report to
// the parser: each must either parse (possibly with missing fields for
// the consistency checks to catch) or return an error — never panic,
// never return a half-initialized success silently claiming a full
// measurement table.
func TestTruncatedFiles(t *testing.T) {
	full := report.RenderString(sampleRun())
	lines := strings.Split(full, "\n")
	for n := 0; n <= len(lines); n++ {
		text := strings.Join(lines[:n], "\n")
		run, err := ParseString(text)
		if err != nil {
			continue // rejection is fine
		}
		// If accepted, the invariants must hold.
		if run.ID == "" || len(run.Points) == 0 {
			t.Fatalf("truncation at %d lines accepted without ID/points", n)
		}
	}
}

// TestGarbageInjection splices random garbage lines into a valid report;
// unknown lines must be skipped, and the run must still round-trip its
// key fields.
func TestGarbageInjection(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	garbage := []string{
		"### reviewed by SPEC committee ###",
		"For questions contact info@spec.example",
		"随机的非ASCII行",
		"key without colon value",
		"    ", "\t\t",
	}
	full := report.RenderString(sampleRun())
	lines := strings.Split(full, "\n")
	var out []string
	for _, l := range lines {
		out = append(out, l)
		if rng.Intn(3) == 0 {
			out = append(out, garbage[rng.Intn(len(garbage))])
		}
	}
	run, err := ParseString(strings.Join(out, "\n"))
	if err != nil {
		t.Fatalf("garbage lines broke parsing: %v", err)
	}
	if run.ID != sampleRun().ID || len(run.Points) != 11 {
		t.Errorf("fields lost under garbage: id=%q points=%d", run.ID, len(run.Points))
	}
	if model.Classify(run) != model.RejectNone {
		t.Errorf("classification changed: %v", model.Classify(run))
	}
}

// TestHugeLine exercises the scanner buffer limit handling.
func TestHugeLine(t *testing.T) {
	text := "SPECpower_ssj2008 Result\nReport ID: x\n" +
		"Notes: " + strings.Repeat("y", 200*1024) + "\n" +
		"Benchmark Results\n100% 5 5\nOverall Score: 1 x\n"
	run, err := ParseString(text)
	if err != nil {
		// A buffer-limit error is acceptable; a panic is not.
		return
	}
	if run.ID != "x" {
		t.Errorf("ID = %q", run.ID)
	}
}

// TestOverLongLineFails ensures lines beyond the 1 MB buffer produce an
// error rather than silent truncation.
func TestOverLongLineFails(t *testing.T) {
	text := "SPECpower_ssj2008 Result\nReport ID: x\n" +
		strings.Repeat("z", 2*1024*1024) + "\n"
	if _, err := ParseString(text); err == nil {
		t.Error("2 MB line should exceed the scanner buffer")
	}
}

// TestDuplicateFieldsLastWins documents the parser's behaviour when a
// field appears twice (some historical reports repeat header blocks).
func TestDuplicateFieldsLastWins(t *testing.T) {
	text := report.RenderString(sampleRun())
	text = strings.Replace(text, "Benchmark Results",
		"Memory (GB):                 999\nBenchmark Results", 1)
	run, err := ParseString(text)
	if err != nil {
		t.Fatal(err)
	}
	if run.MemGB != 999 {
		t.Errorf("MemGB = %d, want last-wins 999", run.MemGB)
	}
}

// TestNumericFieldGarbage ensures malformed numerics fail loudly rather
// than silently zeroing.
func TestNumericFieldGarbage(t *testing.T) {
	text := report.RenderString(sampleRun())
	text = strings.Replace(text, "Memory (GB):                 384",
		"Memory (GB):                 many", 1)
	if _, err := ParseString(text); err == nil {
		t.Error("garbage integer should error")
	}
}

// FuzzParse is a randomized robustness net: the parser must never panic
// on arbitrary input.
func FuzzParse(f *testing.F) {
	f.Add(report.RenderString(sampleRun()))
	f.Add("SPECpower_ssj2008\nReport ID: x\nBenchmark Results\n100% 1 1\nOverall Score: 1 x\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, input string) {
		run, err := ParseString(input)
		if err == nil && (run.ID == "" || len(run.Points) == 0) {
			t.Fatal("success without mandatory fields")
		}
	})
}
