package parser_test

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/parser"
)

// ExampleParseString demonstrates parsing a result file and reading the
// derived metrics the paper analyses.
func ExampleParseString() {
	text := `SPECpower_ssj2008 Result
Report ID: power_ssj2008-20230801-00042
Status: accepted
Test Date: Jul-2023
Submission Date: Aug-2023
Hardware Availability: Aug-2023
Software Availability: Jun-2023
Nodes: 1
CPU: AMD EPYC 9754
Sockets per Node: 2
Cores per Socket: 128
Threads per Core: 2
Total Cores: 256
Total Threads: 512
Operating System: SUSE Linux Enterprise Server 15 SP4
Benchmark Results
Target Load   ssj_ops   Average Power (W)
100%   26,000,000   720.0
20%     5,200,000   330.0
10%     2,600,000   300.0
Active Idle   0   90.0
Overall Score: 23000 overall ssj_ops/watt
`
	run, err := parser.ParseString(text)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("vendor:", run.CPUVendor)
	fmt.Printf("idle fraction: %.3f\n", run.IdleFraction())
	fmt.Printf("extrapolated idle quotient: %.2f\n", run.ExtrapolatedIdleQuotient())
	fmt.Println("verdict:", model.Classify(run))
	// Output:
	// vendor: AMD
	// idle fraction: 0.125
	// extrapolated idle quotient: 3.00
	// verdict: accepted
}
