// Package parser reads SPECpower_ssj2008-style result files into
// model.Run values. It is the reader side of the report package's
// writer, but deliberately tolerant: thousands separators, varying date
// spellings, missing fields, and unknown lines are all handled the way
// the paper's parsing scripts must handle sixteen years of vendor
// -submitted files.
//
// Parsing is structural only. Semantic problems (missing node counts,
// inconsistent core totals, implausible dates) are left in the returned
// Run for the model package's consistency checks to classify, mirroring
// the paper's two-stage funnel.
package parser

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/model"
)

// Parse reads one result file.
func Parse(r io.Reader) (*model.Run, error) {
	run := &model.Run{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)

	inResults := false
	sawHeader := false
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimRight(sc.Text(), " \t\r")
		trimmed := strings.TrimSpace(line)
		if trimmed == "" {
			continue
		}
		if strings.Contains(trimmed, "SPECpower_ssj2008") {
			sawHeader = true
			continue
		}
		if strings.HasPrefix(trimmed, "=") || strings.HasPrefix(trimmed, "-") {
			continue
		}
		switch trimmed {
		case "System Under Test":
			continue
		case "Benchmark Results":
			inResults = true
			continue
		}
		if inResults {
			if done, err := parseResultLine(run, trimmed); err != nil {
				return nil, fmt.Errorf("parser: line %d: %w", lineNo, err)
			} else if done {
				inResults = false
			}
			continue
		}
		if key, val, ok := splitField(trimmed); ok {
			if err := assignField(run, key, val); err != nil {
				return nil, fmt.Errorf("parser: line %d: %w", lineNo, err)
			}
		}
		// Unknown non-field lines are ignored (banners, notes).
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("parser: %w", err)
	}
	if !sawHeader {
		return nil, fmt.Errorf("parser: not a SPECpower_ssj2008 result file")
	}
	if run.ID == "" {
		return nil, fmt.Errorf("parser: missing report ID")
	}
	if len(run.Points) == 0 {
		return nil, fmt.Errorf("parser: no measurement table")
	}
	// Derived classifications, as the paper's scripts compute them.
	run.CPUVendor = model.ParseCPUVendor(run.CPUName)
	run.CPUClass = model.ClassifyCPU(run.CPUName)
	run.OSFamily = model.ParseOSFamily(run.OSName)
	run.SortPoints()
	return run, nil
}

// ParseString parses a result file held in memory.
func ParseString(s string) (*model.Run, error) {
	return Parse(strings.NewReader(s))
}

// splitField splits "Label:   value" lines.
func splitField(line string) (key, val string, ok bool) {
	idx := strings.Index(line, ":")
	if idx <= 0 {
		return "", "", false
	}
	return strings.TrimSpace(line[:idx]), strings.TrimSpace(line[idx+1:]), true
}

func assignField(run *model.Run, key, val string) error {
	switch strings.ToLower(key) {
	case "report id":
		run.ID = val
	case "status":
		run.Accepted = strings.EqualFold(val, "accepted")
	case "test date":
		run.TestDate = parseDateLenient(val)
	case "submission date", "publication date":
		run.SubmissionDate = parseDateLenient(val)
	case "hardware availability":
		run.HWAvail = parseDateLenient(val)
	case "software availability":
		run.SWAvail = parseDateLenient(val)
	case "vendor", "test sponsor":
		run.SystemVendor = val
	case "model", "system":
		run.SystemName = val
	case "nodes":
		return assignInt(&run.Nodes, key, val)
	case "cpu", "cpu name", "processor":
		run.CPUName = val
	case "cpu frequency (ghz)":
		return assignFloat(&run.NominalGHz, key, val)
	case "cpu frequency (mhz)":
		if err := assignFloat(&run.NominalGHz, key, val); err != nil {
			return err
		}
		run.NominalGHz /= 1000
	case "cpu tdp (w)":
		return assignFloat(&run.TDPWatts, key, val)
	case "sockets per node", "cpu sockets":
		return assignInt(&run.SocketsPerNode, key, val)
	case "cores per socket":
		return assignInt(&run.CoresPerSocket, key, val)
	case "threads per core":
		return assignInt(&run.ThreadsPerCore, key, val)
	case "total cores":
		return assignInt(&run.TotalCores, key, val)
	case "total threads":
		return assignInt(&run.TotalThreads, key, val)
	case "memory (gb)":
		return assignInt(&run.MemGB, key, val)
	case "psu rated (w)":
		return assignInt(&run.PSUWatts, key, val)
	case "operating system", "os":
		run.OSName = val
	case "jvm", "java virtual machine":
		run.JVM = val
	case "overall score":
		// Recomputed from the table; the printed score is ignored.
	}
	return nil
}

// parseDateLenient returns the zero YearMonth for unparseable dates;
// the consistency checks classify those as ambiguous.
func parseDateLenient(val string) model.YearMonth {
	ym, err := model.ParseYearMonth(val)
	if err != nil {
		return model.YearMonth{}
	}
	return ym
}

func assignInt(dst *int, key, val string) error {
	n, err := strconv.Atoi(stripSeparators(val))
	if err != nil {
		return fmt.Errorf("field %q: bad integer %q", key, val)
	}
	*dst = n
	return nil
}

func assignFloat(dst *float64, key, val string) error {
	f, err := strconv.ParseFloat(stripSeparators(val), 64)
	if err != nil {
		return fmt.Errorf("field %q: bad number %q", key, val)
	}
	*dst = f
	return nil
}

func stripSeparators(s string) string {
	return strings.ReplaceAll(s, ",", "")
}

// parseResultLine handles one row of the measurement table. It returns
// done=true when the table has ended (overall-score line reached).
func parseResultLine(run *model.Run, line string) (done bool, err error) {
	lower := strings.ToLower(line)
	if strings.HasPrefix(lower, "overall score") {
		return true, nil
	}
	if strings.HasPrefix(lower, "target load") {
		return false, nil // column header
	}
	fields := strings.Fields(line)
	var target int
	var rest []string
	switch {
	case len(fields) >= 3 && strings.EqualFold(fields[0], "active") &&
		strings.EqualFold(fields[1], "idle"):
		target = 0
		rest = fields[2:]
	case strings.HasSuffix(fields[0], "%"):
		t, convErr := strconv.Atoi(strings.TrimSuffix(fields[0], "%"))
		if convErr != nil {
			return false, fmt.Errorf("bad load level %q", fields[0])
		}
		target = t
		rest = fields[1:]
	default:
		// Not shaped like a data row: decorative noise (notes, banners)
		// that sixteen years of vendor-submitted files do contain. A
		// table with no valid rows still fails the mandatory-table check.
		return false, nil
	}
	if len(rest) != 2 {
		return false, fmt.Errorf("result row %q needs ops and power", line)
	}
	ops, err := strconv.ParseFloat(stripSeparators(rest[0]), 64)
	if err != nil {
		return false, fmt.Errorf("bad ssj_ops %q", rest[0])
	}
	watts, err := strconv.ParseFloat(stripSeparators(rest[1]), 64)
	if err != nil {
		return false, fmt.Errorf("bad power %q", rest[1])
	}
	run.Points = append(run.Points, model.LoadPoint{
		TargetLoad: target, ActualOps: ops, AvgPower: watts,
	})
	return false, nil
}
