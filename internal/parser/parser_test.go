package parser

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/model"
	"repro/internal/report"
)

func sampleRun() *model.Run {
	r := &model.Run{
		ID:             "power_ssj2008-20230801-00042",
		Accepted:       true,
		TestDate:       model.YM(2023, time.July),
		SubmissionDate: model.YM(2023, time.August),
		HWAvail:        model.YM(2023, time.August),
		SWAvail:        model.YM(2023, time.June),
		SystemVendor:   "Lenovo",
		SystemName:     "ThinkSystem SR645 V3",
		CPUName:        "AMD EPYC 9754",
		Nodes:          1,
		SocketsPerNode: 2,
		CoresPerSocket: 128,
		ThreadsPerCore: 2,
		TotalCores:     256,
		TotalThreads:   512,
		NominalGHz:     2.25,
		TDPWatts:       360,
		MemGB:          384,
		PSUWatts:       1100,
		OSName:         "Windows Server 2022 Datacenter",
		JVM:            "HotSpot 64-Bit Server VM",
	}
	for _, load := range model.StandardLoads() {
		f := float64(load) / 100
		p := model.LoadPoint{
			TargetLoad: load,
			ActualOps:  float64(int64(26.5e6 * f)),
			AvgPower:   90 + 630*f,
		}
		if load == 0 {
			p.AvgPower = 88.4
		}
		r.Points = append(r.Points, p)
	}
	return r
}

func TestRoundTrip(t *testing.T) {
	orig := sampleRun()
	text := report.RenderString(orig)
	got, err := ParseString(text)
	if err != nil {
		t.Fatalf("parse rendered report: %v\n%s", err, text)
	}
	if got.ID != orig.ID || got.Accepted != orig.Accepted {
		t.Errorf("identity fields: %+v", got)
	}
	if got.TestDate != orig.TestDate || got.HWAvail != orig.HWAvail ||
		got.SubmissionDate != orig.SubmissionDate || got.SWAvail != orig.SWAvail {
		t.Errorf("dates: got %v/%v/%v/%v", got.TestDate, got.SubmissionDate,
			got.HWAvail, got.SWAvail)
	}
	if got.SystemVendor != orig.SystemVendor || got.SystemName != orig.SystemName ||
		got.CPUName != orig.CPUName || got.OSName != orig.OSName || got.JVM != orig.JVM {
		t.Errorf("strings: %+v", got)
	}
	if got.Nodes != 1 || got.SocketsPerNode != 2 || got.CoresPerSocket != 128 ||
		got.ThreadsPerCore != 2 || got.TotalCores != 256 || got.TotalThreads != 512 ||
		got.MemGB != 384 || got.PSUWatts != 1100 {
		t.Errorf("topology: %+v", got)
	}
	if math.Abs(got.NominalGHz-2.25) > 1e-9 || math.Abs(got.TDPWatts-360) > 1e-9 {
		t.Errorf("cpu numbers: %v %v", got.NominalGHz, got.TDPWatts)
	}
	// Derived classifications.
	if got.CPUVendor != model.VendorAMD || got.CPUClass != model.ClassEPYC ||
		got.OSFamily != model.OSWindows {
		t.Errorf("classification: %v %v %v", got.CPUVendor, got.CPUClass, got.OSFamily)
	}
	// Measurement table.
	if len(got.Points) != 11 {
		t.Fatalf("points = %d", len(got.Points))
	}
	for i, p := range orig.Points {
		q := got.Points[i]
		if q.TargetLoad != p.TargetLoad {
			t.Errorf("point %d: load %d vs %d", i, q.TargetLoad, p.TargetLoad)
		}
		if math.Abs(q.ActualOps-p.ActualOps) > 0.5 {
			t.Errorf("point %d: ops %v vs %v", i, q.ActualOps, p.ActualOps)
		}
		if math.Abs(q.AvgPower-p.AvgPower) > 0.05 {
			t.Errorf("point %d: power %v vs %v", i, q.AvgPower, p.AvgPower)
		}
	}
}

func TestRoundTripPropertyTopology(t *testing.T) {
	// Arbitrary plausible topologies survive the round trip exactly.
	f := func(s, c, tc uint8, mem uint16) bool {
		r := sampleRun()
		r.SocketsPerNode = int(s%4) + 1
		r.CoresPerSocket = int(c%128) + 1
		r.ThreadsPerCore = int(tc%2) + 1
		r.TotalCores = r.Nodes * r.SocketsPerNode * r.CoresPerSocket
		r.TotalThreads = r.TotalCores * r.ThreadsPerCore
		r.MemGB = int(mem%2048) + 1
		got, err := ParseString(report.RenderString(r))
		if err != nil {
			return false
		}
		return got.SocketsPerNode == r.SocketsPerNode &&
			got.CoresPerSocket == r.CoresPerSocket &&
			got.ThreadsPerCore == r.ThreadsPerCore &&
			got.TotalCores == r.TotalCores &&
			got.TotalThreads == r.TotalThreads &&
			got.MemGB == r.MemGB
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNotAcceptedStatus(t *testing.T) {
	r := sampleRun()
	r.Accepted = false
	got, err := ParseString(report.RenderString(r))
	if err != nil {
		t.Fatal(err)
	}
	if got.Accepted {
		t.Error("status 'not accepted' parsed as accepted")
	}
}

func TestMissingNodesSurvivesToValidation(t *testing.T) {
	// Node count omitted from the report: the parser keeps Nodes == 0 and
	// the model check classifies it — the paper's "missing node count (1)".
	r := sampleRun()
	r.Nodes = 0 // Render omits the Nodes line for 0
	got, err := ParseString(report.RenderString(r))
	if err != nil {
		t.Fatal(err)
	}
	if got.Nodes != 0 {
		t.Fatalf("Nodes = %d, want 0", got.Nodes)
	}
	if rr := model.CheckParseConsistency(got); rr != model.RejectMissingNodeCount {
		t.Errorf("classification = %v", rr)
	}
}

func TestUnparseableDateBecomesAmbiguous(t *testing.T) {
	text := report.RenderString(sampleRun())
	text = strings.Replace(text, "Jul-2023", "sometime in 2023", 1)
	got, err := ParseString(text)
	if err != nil {
		t.Fatal(err)
	}
	if !got.TestDate.IsZero() {
		t.Fatalf("TestDate = %v, want zero", got.TestDate)
	}
	if rr := model.CheckParseConsistency(got); rr != model.RejectAmbiguousDate {
		t.Errorf("classification = %v", rr)
	}
}

func TestStructuralErrors(t *testing.T) {
	cases := []struct {
		name string
		text string
	}{
		{"empty", ""},
		{"not a report", "hello world\nfoo: bar\n"},
		{"no id", "SPECpower_ssj2008 Result\nBenchmark Results\n100% 5 5\nOverall Score: 1\n"},
		{"no table", "SPECpower_ssj2008 Result\nReport ID: x\n"},
	}
	for _, c := range cases {
		if _, err := ParseString(c.text); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestCorruptTableRows(t *testing.T) {
	base := "SPECpower_ssj2008 Result\nReport ID: x\nBenchmark Results\n"
	cases := []string{
		base + "banana row here\n",
		base + "55x% 100 100\n",
		base + "50% abc 100\n",
		base + "50% 100 abc\n",
		base + "50% 100\n",
	}
	for i, text := range cases {
		if _, err := ParseString(text); err == nil {
			t.Errorf("case %d: corrupt row accepted", i)
		}
	}
}

func TestLenientFormats(t *testing.T) {
	text := `SPECpower_ssj2008 Result
Report ID: power_ssj2008-20071211-00001
Status: accepted
Test Date: 11/2007
Hardware Availability: Dec-07
Software Availability: 2007-10
Submission Date: Dec-2007
CPU: Intel Xeon X5355
CPU Frequency (MHz): 2660
Nodes: 1
Sockets per Node: 2
Cores per Socket: 4
Threads per Core: 1
Total Cores: 8
Total Threads: 8
Operating System: Microsoft Windows Server 2003
Benchmark Results
Target Load   ssj_ops   Average Power (W)
100%   220,754   331.0
50%    110,301   270.5
Active Idle   0   180.1
Overall Score: 400 overall ssj_ops/watt
`
	got, err := ParseString(text)
	if err != nil {
		t.Fatal(err)
	}
	if got.TestDate != model.YM(2007, time.November) {
		t.Errorf("TestDate = %v", got.TestDate)
	}
	if got.HWAvail != model.YM(2007, time.December) {
		t.Errorf("HWAvail = %v", got.HWAvail)
	}
	if got.SWAvail != model.YM(2007, time.October) {
		t.Errorf("SWAvail = %v", got.SWAvail)
	}
	if math.Abs(got.NominalGHz-2.66) > 1e-9 {
		t.Errorf("MHz conversion: %v", got.NominalGHz)
	}
	if got.CPUVendor != model.VendorIntel || got.CPUClass != model.ClassXeon {
		t.Errorf("classification: %v %v", got.CPUVendor, got.CPUClass)
	}
	p, ok := got.Point(100)
	if !ok || math.Abs(p.ActualOps-220754) > 0.5 {
		t.Errorf("100%% ops = %v", p.ActualOps)
	}
	if idle, ok := got.Point(0); !ok || math.Abs(idle.AvgPower-180.1) > 1e-9 {
		t.Errorf("idle power missing or wrong")
	}
}

func TestPointsSortedAfterParse(t *testing.T) {
	// Table rows in shuffled order still come back sorted.
	text := `SPECpower_ssj2008 Result
Report ID: x1
Benchmark Results
50% 100 100
Active Idle 0 20
100% 200 150
Overall Score: 1 overall ssj_ops/watt
`
	got, err := ParseString(text)
	if err != nil {
		t.Fatal(err)
	}
	if got.Points[0].TargetLoad != 100 || got.Points[2].TargetLoad != 0 {
		t.Errorf("points not sorted: %+v", got.Points)
	}
}

func TestThousands(t *testing.T) {
	cases := []struct {
		in   int64
		want string
	}{
		{0, "0"}, {5, "5"}, {999, "999"}, {1000, "1,000"},
		{26500000, "26,500,000"}, {-1234, "-1,234"},
	}
	for _, c := range cases {
		if got := report.Thousands(c.in); got != c.want {
			t.Errorf("Thousands(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}
