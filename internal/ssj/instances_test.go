package ssj

import (
	"testing"
	"time"
)

func TestRunMultiValidation(t *testing.T) {
	if _, err := RunMulti(MultiConfig{Instances: 0, PerInstance: shortConfig()}, testMeterM()); err == nil {
		t.Error("0 instances should error")
	}
	if _, err := RunMulti(MultiConfig{Instances: 2}, testMeterM()); err == nil {
		t.Error("invalid per-instance config should error")
	}
	if _, err := RunMulti(MultiConfig{Instances: 2, PerInstance: shortConfig()}, nil); err == nil {
		t.Error("nil meter should error")
	}
}

func testMeterM() *SimMeter {
	return NewSimMeter(testCurve(), 0, 11)
}

func TestRunMultiCombines(t *testing.T) {
	cfg := shortConfig()
	cfg.IntervalDuration = 25 * time.Millisecond
	cfg.LoadLevels = []int{100, 50}
	res, err := RunMulti(MultiConfig{Instances: 3, PerInstance: cfg}, testMeterM())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerInstance) != 3 {
		t.Fatalf("instances = %d", len(res.PerInstance))
	}
	if len(res.Combined) != 3 { // 100, 50, idle
		t.Fatalf("combined points = %d", len(res.Combined))
	}
	// Combined throughput is the sum of instance throughputs.
	var sumFull float64
	for _, r := range res.PerInstance {
		p, ok := r.Point100()
		if !ok {
			t.Fatal("instance missing 100% point")
		}
		sumFull += p.ActualOps
	}
	if got := res.Combined[0].ActualOps; got != sumFull {
		t.Errorf("combined 100%% ops = %v, want %v", got, sumFull)
	}
	// Calibrated rate sums too.
	var sumCal float64
	for _, r := range res.PerInstance {
		sumCal += r.CalibratedRate
	}
	if res.CalibratedRate != sumCal {
		t.Errorf("calibrated = %v, want %v", res.CalibratedRate, sumCal)
	}
	// All instances saw identical power readings per interval.
	for pi := range res.Combined {
		w0 := res.PerInstance[0].Points[pi].AvgPower
		for ii, r := range res.PerInstance {
			if r.Points[pi].AvgPower != w0 {
				t.Errorf("instance %d point %d power %v != %v", ii, pi,
					r.Points[pi].AvgPower, w0)
			}
		}
		if res.Combined[pi].AvgPower != w0 {
			t.Errorf("combined power %v != %v", res.Combined[pi].AvgPower, w0)
		}
	}
	// Idle row does no work.
	idle := res.Combined[len(res.Combined)-1]
	if idle.TargetLoad != 0 || idle.ActualOps != 0 {
		t.Errorf("idle row: %+v", idle)
	}
}

func TestRunMultiSingleMatchesEngine(t *testing.T) {
	// One instance through RunMulti behaves like a plain engine run.
	cfg := shortConfig()
	cfg.LoadLevels = []int{100}
	res, err := RunMulti(MultiConfig{Instances: 1, PerInstance: cfg}, testMeterM())
	if err != nil {
		t.Fatal(err)
	}
	if res.CalibratedRate <= 0 || len(res.Combined) != 2 {
		t.Fatalf("result: %+v", res)
	}
}

// Point100 is a test helper on Result.
func (r *Result) Point100() (p struct{ ActualOps float64 }, ok bool) {
	for _, lp := range r.Points {
		if lp.TargetLoad == 100 {
			return struct{ ActualOps float64 }{lp.ActualOps}, true
		}
	}
	return p, false
}
