package ssj

import (
	"fmt"
	"sync"

	"repro/internal/model"
)

// MultiConfig describes a multi-instance run: the real benchmark
// typically launches one JVM per NUMA node or per socket, each hosting
// a group of warehouses, and sums their throughput.
type MultiConfig struct {
	// Instances is the number of JVM-equivalent engine groups.
	Instances int
	// PerInstance is the configuration applied to each instance
	// (Warehouses is per instance).
	PerInstance Config
}

// Validate reports the first unusable parameter.
func (mc MultiConfig) Validate() error {
	if mc.Instances < 1 {
		return fmt.Errorf("ssj: need ≥1 instance, have %d", mc.Instances)
	}
	return mc.PerInstance.Validate()
}

// MultiResult aggregates a multi-instance run.
type MultiResult struct {
	// Combined has per-load-level points with summed throughput and the
	// shared meter's power readings.
	Combined []model.LoadPoint
	// PerInstance keeps each instance's own result.
	PerInstance []*Result
	// CalibratedRate is the summed maximum throughput.
	CalibratedRate float64
}

// RunMulti executes the instances against one shared meter. Instances
// run their intervals in lockstep (the benchmark's director coordinates
// all JVMs into common measurement intervals): for each interval the
// instances execute concurrently and the meter measures once.
//
// Implementation note: the engine's own Run measures per instance, so
// RunMulti instead drives interval-synchronized execution through a
// shared barrier meter that starts/stops the real meter exactly once
// per interval regardless of instance count.
func RunMulti(mc MultiConfig, meter Meter) (*MultiResult, error) {
	if err := mc.Validate(); err != nil {
		return nil, err
	}
	if meter == nil {
		return nil, fmt.Errorf("ssj: nil meter")
	}
	shared := &sharedMeter{inner: meter, parties: mc.Instances}

	results := make([]*Result, mc.Instances)
	errs := make([]error, mc.Instances)
	var wg sync.WaitGroup
	for i := 0; i < mc.Instances; i++ {
		cfg := mc.PerInstance
		cfg.Seed = cfg.Seed*31 + int64(i) // distinct workloads per instance
		eng, err := NewEngine(cfg, shared)
		if err != nil {
			return nil, err
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = eng.Run()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("ssj: instance %d: %w", i, err)
		}
	}

	out := &MultiResult{PerInstance: results}
	for _, r := range results {
		out.CalibratedRate += r.CalibratedRate
	}
	// Sum throughput per target load; power comes from the shared meter
	// (identical readings handed to every instance).
	base := results[0]
	for pi, p := range base.Points {
		combined := model.LoadPoint{TargetLoad: p.TargetLoad, AvgPower: p.AvgPower}
		for _, r := range results {
			if pi >= len(r.Points) || r.Points[pi].TargetLoad != p.TargetLoad {
				return nil, fmt.Errorf("ssj: instance point mismatch at %d", pi)
			}
			combined.ActualOps += r.Points[pi].ActualOps
		}
		out.Combined = append(out.Combined, combined)
	}
	return out, nil
}

// sharedMeter multiplexes one physical meter across n lockstep engines:
// the k-th Start of an interval actually starts the meter once, and the
// k-th Stop stops it once, handing every caller the same reading. The
// barrier also keeps the instances in lockstep, mirroring the
// director's coordinated intervals.
type sharedMeter struct {
	inner   Meter
	parties int

	mu         sync.Mutex
	cond       *sync.Cond
	started    int
	stopped    int
	generation int
	lastWatts  float64
	lastErr    error
}

// SetLoad forwards the utilization (all instances agree on the target).
func (s *sharedMeter) SetLoad(u float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inner.SetLoad(u)
}

// Start implements Meter with barrier semantics.
func (s *sharedMeter) Start() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cond == nil {
		s.cond = sync.NewCond(&s.mu)
	}
	if s.started == 0 {
		s.lastErr = s.inner.Start()
	}
	s.started++
	gen := s.generation
	for s.started < s.parties && gen == s.generation {
		s.cond.Wait()
	}
	if s.started >= s.parties {
		s.cond.Broadcast()
	}
	return s.lastErr
}

// Sample forwards to sampling meters.
func (s *sharedMeter) Sample() {
	if sm, ok := s.inner.(sampler); ok {
		sm.Sample()
	}
}

// Stop implements Meter: the last arriving instance stops the physical
// meter; everyone receives the same reading.
func (s *sharedMeter) Stop() (float64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cond == nil {
		s.cond = sync.NewCond(&s.mu)
	}
	s.stopped++
	if s.stopped == s.parties {
		s.lastWatts, s.lastErr = s.inner.Stop()
		// Reset for the next interval and release the barrier.
		s.started = 0
		s.stopped = 0
		s.generation++
		s.cond.Broadcast()
		return s.lastWatts, s.lastErr
	}
	gen := s.generation
	for gen == s.generation {
		s.cond.Wait()
	}
	return s.lastWatts, s.lastErr
}
