package ssj

import "fmt"

// TxType enumerates the six ssj transaction types.
type TxType int

// The six transaction types and their canonical mix weights.
const (
	TxNewOrder TxType = iota
	TxPayment
	TxOrderStatus
	TxDelivery
	TxStockLevel
	TxCustomerReport
	numTxTypes
)

// String names the transaction type as in the design document.
func (t TxType) String() string {
	switch t {
	case TxNewOrder:
		return "New Order"
	case TxPayment:
		return "Payment"
	case TxOrderStatus:
		return "Order Status"
	case TxDelivery:
		return "Delivery"
	case TxStockLevel:
		return "Stock Level"
	case TxCustomerReport:
		return "Customer Report"
	default:
		return fmt.Sprintf("TxType(%d)", int(t))
	}
}

// MixWeights is the transaction mix: three heavy types at 30.3 % and
// three light types at ≈3 % each, echoing the benchmark's weighting.
var MixWeights = [numTxTypes]float64{
	TxNewOrder:       0.303,
	TxPayment:        0.303,
	TxOrderStatus:    0.0303,
	TxDelivery:       0.0303,
	TxStockLevel:     0.0303,
	TxCustomerReport: 0.303,
}

const (
	itemsPerWarehouse  = 512
	orderRingCapacity  = 1024
	maxOrderLines      = 12
	lowStockThreshold  = 100
	initialStockLevel  = 5000
	customerReportSpan = 64
)

type item struct {
	price int64
	stock int64
}

type order struct {
	id    int64
	lines int
	total int64
}

// warehouse is one unit of parallelism: a private data set mutated by
// exactly one worker goroutine, so no locking is needed on the hot path.
type warehouse struct {
	rng     xorshift
	items   [itemsPerWarehouse]item
	ring    [orderRingCapacity]order
	head    int // next write position
	count   int // live orders in the ring
	nextID  int64
	balance int64
	// txCounts tallies executed transactions per type.
	txCounts [numTxTypes]int64
	// checksum accumulates results so the work cannot be optimized away.
	checksum int64
}

// xorshift is a tiny deterministic PRNG (xorshift64*), cheap enough to
// sit inside the transaction hot path.
type xorshift uint64

func (x *xorshift) next() uint64 {
	v := uint64(*x)
	if v == 0 {
		v = 0x9E3779B97F4A7C15
	}
	v ^= v >> 12
	v ^= v << 25
	v ^= v >> 27
	*x = xorshift(v)
	return v * 0x2545F4914F6CDD1D
}

func (x *xorshift) intn(n int) int {
	return int(x.next() % uint64(n))
}

func newWarehouse(seed uint64) *warehouse {
	w := &warehouse{rng: xorshift(seed | 1)}
	for i := range w.items {
		w.items[i] = item{
			price: int64(100 + w.rng.intn(9900)), // cents
			stock: initialStockLevel,
		}
	}
	return w
}

// pickTx selects a transaction type according to MixWeights.
func (w *warehouse) pickTx() TxType {
	// The cumulative mix is encoded as per-mille thresholds.
	r := w.rng.intn(1000)
	switch {
	case r < 303:
		return TxNewOrder
	case r < 606:
		return TxPayment
	case r < 636:
		return TxOrderStatus
	case r < 666:
		return TxDelivery
	case r < 697:
		return TxStockLevel
	default:
		return TxCustomerReport
	}
}

// execute runs one transaction of the given type and returns 1 (ops are
// counted per transaction).
func (w *warehouse) execute(t TxType) {
	w.txCounts[t]++
	switch t {
	case TxNewOrder:
		w.newOrder()
	case TxPayment:
		w.payment()
	case TxOrderStatus:
		w.orderStatus()
	case TxDelivery:
		w.delivery()
	case TxStockLevel:
		w.stockLevel()
	case TxCustomerReport:
		w.customerReport()
	}
}

// executeOne picks a mixed transaction and runs it.
func (w *warehouse) executeOne() {
	w.execute(w.pickTx())
}

func (w *warehouse) newOrder() {
	lines := 4 + w.rng.intn(maxOrderLines-3)
	var total int64
	for l := 0; l < lines; l++ {
		it := &w.items[w.rng.intn(itemsPerWarehouse)]
		qty := int64(1 + w.rng.intn(9))
		it.stock -= qty
		if it.stock < 0 {
			it.stock += initialStockLevel // restock, as the spec's workload does
		}
		total += qty * it.price
	}
	w.nextID++
	w.ring[w.head] = order{id: w.nextID, lines: lines, total: total}
	w.head = (w.head + 1) % orderRingCapacity
	if w.count < orderRingCapacity {
		w.count++
	}
	w.checksum += total
}

func (w *warehouse) payment() {
	amount := int64(500 + w.rng.intn(50000))
	w.balance += amount
	// Simulated fee schedule: a little integer math per payment.
	fee := amount / 40
	if amount > 25000 {
		fee += (amount - 25000) / 100
	}
	w.balance -= fee
	w.checksum += fee
}

func (w *warehouse) orderStatus() {
	if w.count == 0 {
		return
	}
	idx := (w.head - 1 - w.rng.intn(w.count) + 2*orderRingCapacity) % orderRingCapacity
	o := w.ring[idx]
	w.checksum += o.total ^ int64(o.lines)
}

func (w *warehouse) delivery() {
	// Deliver (drop) the oldest few orders.
	n := 1 + w.rng.intn(4)
	if n > w.count {
		n = w.count
	}
	for k := 0; k < n; k++ {
		tail := (w.head - w.count + 2*orderRingCapacity) % orderRingCapacity
		w.checksum += w.ring[tail].id
		w.count--
	}
}

func (w *warehouse) stockLevel() {
	start := w.rng.intn(itemsPerWarehouse)
	low := 0
	for k := 0; k < 100; k++ {
		if w.items[(start+k)%itemsPerWarehouse].stock < lowStockThreshold {
			low++
		}
	}
	w.checksum += int64(low)
}

func (w *warehouse) customerReport() {
	if w.count == 0 {
		return
	}
	span := customerReportSpan
	if span > w.count {
		span = w.count
	}
	var sum int64
	for k := 0; k < span; k++ {
		idx := (w.head - 1 - k + 2*orderRingCapacity) % orderRingCapacity
		sum += w.ring[idx].total
	}
	w.checksum += sum / int64(span)
}

// totalTx returns the number of transactions executed so far.
func (w *warehouse) totalTx() int64 {
	var s int64
	for _, c := range w.txCounts {
		s += c
	}
	return s
}
