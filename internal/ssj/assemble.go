package ssj

import (
	"fmt"
	"time"

	"repro/internal/catalog"
	"repro/internal/model"
	"repro/internal/power"
)

// RunMeta carries the submission metadata AssembleRun cannot derive
// from the hardware description.
type RunMeta struct {
	ID             string
	TestDate       model.YearMonth
	SubmissionDate model.YearMonth
	SWAvail        model.YearMonth
	SystemVendor   string
	SystemName     string
	OSName         string
	JVM            string
}

// AssembleRun builds a complete, classification-clean model.Run from a
// live engine result and the system description it was measured on —
// the glue between the benchmark engine and the result-file layer used
// by specssj, the examples, and the integration tests.
func AssembleRun(spec catalog.CPUSpec, cfg power.SystemConfig, meta RunMeta, res *Result) (*model.Run, error) {
	if res == nil || len(res.Points) == 0 {
		return nil, fmt.Errorf("ssj: AssembleRun: empty result")
	}
	if err := cfg.Validate(spec); err != nil {
		return nil, err
	}
	if meta.ID == "" {
		meta.ID = fmt.Sprintf("power_ssj2008-%04d%02d01-00001",
			meta.SubmissionDate.Year, int(meta.SubmissionDate.Month))
	}
	if meta.TestDate.IsZero() {
		meta.TestDate = model.YM(2024, time.June)
	}
	if meta.SubmissionDate.IsZero() {
		meta.SubmissionDate = meta.TestDate.AddMonths(1)
	}
	if meta.SWAvail.IsZero() {
		meta.SWAvail = meta.TestDate
	}
	totalCores := cfg.Sockets * spec.Cores
	r := &model.Run{
		ID:             meta.ID,
		Accepted:       true,
		TestDate:       meta.TestDate,
		SubmissionDate: meta.SubmissionDate,
		HWAvail:        spec.Avail,
		SWAvail:        meta.SWAvail,
		SystemVendor:   meta.SystemVendor,
		SystemName:     meta.SystemName,
		CPUName:        spec.Name,
		CPUVendor:      spec.Vendor,
		CPUClass:       spec.Class,
		Nodes:          1,
		SocketsPerNode: cfg.Sockets,
		CoresPerSocket: spec.Cores,
		ThreadsPerCore: spec.ThreadsPerCore,
		TotalCores:     totalCores,
		TotalThreads:   totalCores * spec.ThreadsPerCore,
		NominalGHz:     spec.NominalGHz,
		TDPWatts:       spec.TDPWatts,
		MemGB:          cfg.MemGB,
		PSUWatts:       cfg.PSUWatts,
		OSName:         meta.OSName,
		JVM:            meta.JVM,
		Points:         append([]model.LoadPoint(nil), res.Points...),
	}
	r.OSFamily = model.ParseOSFamily(r.OSName)
	r.SortPoints()
	return r, nil
}
