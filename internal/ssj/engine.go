package ssj

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/model"
)

// Config controls a benchmark run. The zero value is not runnable; use
// DefaultConfig as a starting point.
type Config struct {
	// Warehouses is the number of worker goroutines (the benchmark maps
	// one warehouse per hardware thread).
	Warehouses int
	// IntervalDuration is the length of each measurement interval. The
	// real benchmark uses 240 s; tests use milliseconds.
	IntervalDuration time.Duration
	// CalibrationIntervals is the number of full-speed intervals used to
	// find the maximum throughput (the last ones are averaged).
	CalibrationIntervals int
	// LoadLevels are the target loads in percent, highest first. Active
	// idle (0 %) is always measured last and need not be listed.
	LoadLevels []int
	// Seed makes the workload deterministic.
	Seed int64
	// SamplePeriod is the meter sampling cadence (0 = one sample per
	// interval boundary).
	SamplePeriod time.Duration
	// OpsScale converts measured transactions/s into reported ssj_ops.
	OpsScale float64
}

// DefaultConfig returns a short-but-real configuration suitable for
// examples: full graduated load with sub-second intervals.
func DefaultConfig(warehouses int) Config {
	return Config{
		Warehouses:           warehouses,
		IntervalDuration:     200 * time.Millisecond,
		CalibrationIntervals: 3,
		LoadLevels:           []int{100, 90, 80, 70, 60, 50, 40, 30, 20, 10},
		Seed:                 1,
		SamplePeriod:         10 * time.Millisecond,
		OpsScale:             1,
	}
}

// Validate reports the first unusable parameter.
func (c Config) Validate() error {
	switch {
	case c.Warehouses < 1:
		return fmt.Errorf("ssj: need ≥1 warehouse, have %d", c.Warehouses)
	case c.IntervalDuration <= 0:
		return fmt.Errorf("ssj: non-positive interval duration")
	case c.CalibrationIntervals < 1:
		return fmt.Errorf("ssj: need ≥1 calibration interval")
	case len(c.LoadLevels) == 0:
		return fmt.Errorf("ssj: no load levels")
	}
	for _, l := range c.LoadLevels {
		if l <= 0 || l > 100 {
			return fmt.Errorf("ssj: load level %d%% outside (0,100]", l)
		}
	}
	return nil
}

// Interval is one measured interval of a run.
type Interval struct {
	TargetLoad int     // percent; 0 = active idle
	TargetRate float64 // tx/s the pacer aimed for (0 during calibration/idle)
	TxRate     float64 // achieved tx/s
	AvgWatts   float64
	Elapsed    time.Duration
}

// Result is the outcome of a complete run.
type Result struct {
	// CalibratedRate is the maximum sustainable throughput in tx/s.
	CalibratedRate float64
	// Points are the measurement intervals as model load points
	// (ops scaled by Config.OpsScale).
	Points []model.LoadPoint
	// Intervals preserves raw per-interval data, calibration included.
	Intervals []Interval
	// TxCounts tallies transactions per type across the whole run.
	TxCounts [int(numTxTypes)]int64
}

// Engine executes benchmark runs.
type Engine struct {
	cfg   Config
	meter Meter
}

// NewEngine validates the configuration and builds an engine.
func NewEngine(cfg Config, meter Meter) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if meter == nil {
		return nil, fmt.Errorf("ssj: nil meter")
	}
	if cfg.OpsScale == 0 {
		cfg.OpsScale = 1
	}
	return &Engine{cfg: cfg, meter: meter}, nil
}

// Run performs calibration, the graduated load levels, and active idle,
// returning the assembled result.
func (e *Engine) Run() (*Result, error) {
	warehouses := make([]*warehouse, e.cfg.Warehouses)
	for i := range warehouses {
		warehouses[i] = newWarehouse(uint64(e.cfg.Seed)*0x9E3779B9 + uint64(i)*0x85EBCA6B)
	}
	res := &Result{}

	// Calibration: full speed; the calibrated rate is the mean of all
	// calibration intervals but the first (warm-up).
	var calRates []float64
	for i := 0; i < e.cfg.CalibrationIntervals; i++ {
		iv, err := e.interval(warehouses, -1, 0)
		if err != nil {
			return nil, fmt.Errorf("ssj: calibration interval %d: %w", i, err)
		}
		res.Intervals = append(res.Intervals, iv)
		calRates = append(calRates, iv.TxRate)
	}
	use := calRates
	if len(use) > 1 {
		use = use[1:]
	}
	var sum float64
	for _, r := range use {
		sum += r
	}
	res.CalibratedRate = sum / float64(len(use))
	if res.CalibratedRate <= 0 {
		return nil, fmt.Errorf("ssj: calibration produced zero throughput")
	}

	// Graduated load levels.
	for _, level := range e.cfg.LoadLevels {
		target := res.CalibratedRate * float64(level) / 100
		iv, err := e.interval(warehouses, level, target)
		if err != nil {
			return nil, fmt.Errorf("ssj: load level %d%%: %w", level, err)
		}
		res.Intervals = append(res.Intervals, iv)
		res.Points = append(res.Points, model.LoadPoint{
			TargetLoad: level,
			ActualOps:  iv.TxRate * e.cfg.OpsScale,
			AvgPower:   iv.AvgWatts,
		})
	}

	// Active idle.
	iv, err := e.interval(warehouses, 0, 0)
	if err != nil {
		return nil, fmt.Errorf("ssj: active idle: %w", err)
	}
	res.Intervals = append(res.Intervals, iv)
	res.Points = append(res.Points, model.LoadPoint{TargetLoad: 0, AvgPower: iv.AvgWatts})

	for _, w := range warehouses {
		for t, c := range w.txCounts {
			res.TxCounts[t] += c
		}
	}
	return res, nil
}

// interval runs one measurement interval. level -1 means calibration
// (full speed, load reported as 100 %); level 0 means active idle.
func (e *Engine) interval(warehouses []*warehouse, level int, targetRate float64) (Interval, error) {
	u := 1.0
	if level >= 0 {
		u = float64(level) / 100
	}
	e.meter.SetLoad(u)
	if err := e.meter.Start(); err != nil {
		return Interval{}, err
	}

	// Periodic sampling for meters that support it.
	stopSampling := make(chan struct{})
	var samplerWG sync.WaitGroup
	if s, ok := e.meter.(sampler); ok && e.cfg.SamplePeriod > 0 {
		samplerWG.Add(1)
		go func() {
			defer samplerWG.Done()
			tick := time.NewTicker(e.cfg.SamplePeriod)
			defer tick.Stop()
			for {
				select {
				case <-stopSampling:
					return
				case <-tick.C:
					s.Sample()
				}
			}
		}()
	}

	start := time.Now()
	var executed int64
	if level != 0 { // work happens at every level except active idle
		perWarehouse := targetRate / float64(len(warehouses))
		var wg sync.WaitGroup
		counts := make([]int64, len(warehouses))
		for i, w := range warehouses {
			wg.Add(1)
			go func(i int, w *warehouse) {
				defer wg.Done()
				counts[i] = runWorker(w, start, e.cfg.IntervalDuration, perWarehouse, level < 0)
			}(i, w)
		}
		wg.Wait()
		for _, c := range counts {
			executed += c
		}
	} else {
		time.Sleep(e.cfg.IntervalDuration)
	}
	elapsed := time.Since(start)

	close(stopSampling)
	samplerWG.Wait()
	watts, err := e.meter.Stop()
	if err != nil {
		return Interval{}, err
	}
	iv := Interval{
		TargetLoad: maxInt(level, 0),
		TargetRate: targetRate,
		TxRate:     float64(executed) / elapsed.Seconds(),
		AvgWatts:   watts,
		Elapsed:    elapsed,
	}
	if level < 0 {
		iv.TargetLoad = 100
	}
	return iv, nil
}

// runWorker executes transactions on one warehouse until the deadline.
// In full-speed mode it runs unthrottled; otherwise it paces itself with
// a token bucket to approximate rate tx/s.
func runWorker(w *warehouse, start time.Time, d time.Duration, rate float64, fullSpeed bool) int64 {
	deadline := start.Add(d)
	before := w.totalTx()
	if fullSpeed {
		for {
			for k := 0; k < 64; k++ {
				w.executeOne()
			}
			if time.Now().After(deadline) {
				break
			}
		}
		return w.totalTx() - before
	}
	var done int64
	for {
		now := time.Now()
		if now.After(deadline) {
			break
		}
		allowed := int64(now.Sub(start).Seconds() * rate)
		if done < allowed {
			batch := allowed - done
			if batch > 64 {
				batch = 64
			}
			for k := int64(0); k < batch; k++ {
				w.executeOne()
			}
			done += batch
			continue
		}
		time.Sleep(200 * time.Microsecond)
	}
	return w.totalTx() - before
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
