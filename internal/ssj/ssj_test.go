package ssj

import (
	"math"
	"testing"
	"time"

	"repro/internal/power"
)

func testCurve() power.Curve {
	return power.Curve{
		FullWatts: 400,
		Prof: power.Profile{IdleFrac: 0.2, LowIntercept: 0.3, Beta: 0.85,
			TurboWeight: 0.25, TurboGamma: 3},
	}
}

func shortConfig() Config {
	cfg := DefaultConfig(2)
	cfg.IntervalDuration = 30 * time.Millisecond
	cfg.SamplePeriod = 2 * time.Millisecond
	cfg.LoadLevels = []int{100, 50, 10}
	return cfg
}

func TestConfigValidate(t *testing.T) {
	good := shortConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Warehouses = 0 },
		func(c *Config) { c.IntervalDuration = 0 },
		func(c *Config) { c.CalibrationIntervals = 0 },
		func(c *Config) { c.LoadLevels = nil },
		func(c *Config) { c.LoadLevels = []int{120} },
		func(c *Config) { c.LoadLevels = []int{0} },
	}
	for i, mut := range bad {
		c := shortConfig()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d validated", i)
		}
	}
}

func TestNewEngineErrors(t *testing.T) {
	if _, err := NewEngine(Config{}, nil); err == nil {
		t.Error("invalid config should error")
	}
	if _, err := NewEngine(shortConfig(), nil); err == nil {
		t.Error("nil meter should error")
	}
}

func TestRunProducesAllIntervals(t *testing.T) {
	cfg := shortConfig()
	meter := NewSimMeter(testCurve(), 0.01, 7)
	eng, err := NewEngine(cfg, meter)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Points: one per load level plus active idle.
	if len(res.Points) != len(cfg.LoadLevels)+1 {
		t.Fatalf("points = %d, want %d", len(res.Points), len(cfg.LoadLevels)+1)
	}
	if res.Points[len(res.Points)-1].TargetLoad != 0 {
		t.Error("last point must be active idle")
	}
	if res.CalibratedRate <= 0 {
		t.Error("calibration found no throughput")
	}
	// Idle does no work.
	idle := res.Points[len(res.Points)-1]
	if idle.ActualOps != 0 {
		t.Errorf("idle ops = %v", idle.ActualOps)
	}
	if idle.AvgPower <= 0 {
		t.Errorf("idle power = %v", idle.AvgPower)
	}
	// Intervals include calibration runs.
	if len(res.Intervals) != cfg.CalibrationIntervals+len(cfg.LoadLevels)+1 {
		t.Errorf("intervals = %d", len(res.Intervals))
	}
}

func TestPacingReducesThroughput(t *testing.T) {
	cfg := shortConfig()
	cfg.LoadLevels = []int{100, 50, 20}
	cfg.IntervalDuration = 60 * time.Millisecond
	meter := NewSimMeter(testCurve(), 0, 7)
	eng, err := NewEngine(cfg, meter)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	get := func(load int) float64 {
		for _, p := range res.Points {
			if p.TargetLoad == load {
				return p.ActualOps
			}
		}
		t.Fatalf("missing load %d", load)
		return 0
	}
	full, half, fifth := get(100), get(50), get(20)
	if half >= full*0.85 {
		t.Errorf("50%% load achieved %.0f vs full %.0f; pacing ineffective", half, full)
	}
	if fifth >= half {
		t.Errorf("20%% load %.0f should be below 50%% load %.0f", fifth, half)
	}
	// Pacing should be reasonably accurate: 50% of calibrated ±40%.
	want := res.CalibratedRate * 0.5
	if half < want*0.6 || half > want*1.4 {
		t.Errorf("50%% load = %.0f tx/s, want ≈%.0f", half, want)
	}
}

func TestPowerFollowsLoad(t *testing.T) {
	cfg := shortConfig()
	meter := NewSimMeter(testCurve(), 0, 3)
	eng, _ := NewEngine(cfg, meter)
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	var p100, p50, pIdle float64
	for _, p := range res.Points {
		switch p.TargetLoad {
		case 100:
			p100 = p.AvgPower
		case 50:
			p50 = p.AvgPower
		case 0:
			pIdle = p.AvgPower
		}
	}
	if !(p100 > p50 && p50 > pIdle) {
		t.Errorf("power ordering broken: 100%%=%v 50%%=%v idle=%v", p100, p50, pIdle)
	}
	// Idle should match the curve's idle fraction.
	wantIdle := testCurve().At(0)
	if math.Abs(pIdle-wantIdle) > 1 {
		t.Errorf("idle power = %v, want ≈%v", pIdle, wantIdle)
	}
}

func TestDeterministicWorkload(t *testing.T) {
	// Same seed ⇒ same per-type transaction mix shares (throughput
	// varies with the host, the mix must not).
	run := func() [int(numTxTypes)]int64 {
		cfg := shortConfig()
		meter := NewSimMeter(testCurve(), 0, 1)
		eng, _ := NewEngine(cfg, meter)
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.TxCounts
	}
	counts := run()
	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		t.Fatal("no transactions executed")
	}
	// Mix shares approximate MixWeights.
	for tt, want := range MixWeights {
		got := float64(counts[tt]) / float64(total)
		if math.Abs(got-want) > 0.05 {
			t.Errorf("%v share = %.3f, want ≈%.3f", TxType(tt), got, want)
		}
	}
}

func TestMeterLifecycleErrors(t *testing.T) {
	m := NewSimMeter(testCurve(), 0, 1)
	if _, err := m.Stop(); err == nil {
		t.Error("Stop before Start should error")
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err == nil {
		t.Error("double Start should error")
	}
	if _, err := m.Stop(); err != nil {
		t.Error(err)
	}
}

func TestSimMeterAveraging(t *testing.T) {
	m := NewSimMeter(testCurve(), 0, 1)
	m.SetLoad(1)
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		m.Sample()
	}
	w, err := m.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w-400) > 1e-9 {
		t.Errorf("avg = %v, want 400", w)
	}
	// Noiseless fallback when no samples were taken.
	m2 := NewSimMeter(testCurve(), 0.5, 2)
	m2.SetLoad(0)
	_ = m2.Start()
	w2, err := m2.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w2-testCurve().At(0)) > 1e-9 {
		t.Errorf("fallback reading = %v", w2)
	}
}

func TestWarehouseTransactions(t *testing.T) {
	w := newWarehouse(42)
	// Execute every type directly; none may panic on fresh state.
	for tt := TxType(0); tt < numTxTypes; tt++ {
		w.execute(tt)
	}
	// Fill the ring past capacity to exercise wraparound.
	for i := 0; i < 3*orderRingCapacity; i++ {
		w.newOrder()
	}
	if w.count != orderRingCapacity {
		t.Errorf("ring count = %d, want %d", w.count, orderRingCapacity)
	}
	for i := 0; i < 100; i++ {
		w.delivery()
		w.orderStatus()
		w.customerReport()
		w.stockLevel()
		w.payment()
	}
	if w.totalTx() == 0 || w.checksum == 0 {
		t.Error("work was optimized away")
	}
}

func TestTxTypeStrings(t *testing.T) {
	seen := map[string]bool{}
	for tt := TxType(0); tt < numTxTypes; tt++ {
		s := tt.String()
		if s == "" || seen[s] {
			t.Errorf("bad name for tx %d: %q", tt, s)
		}
		seen[s] = true
	}
	// Weights sum to ≈1.
	var sum float64
	for _, w := range MixWeights {
		sum += w
	}
	if math.Abs(sum-1) > 0.01 {
		t.Errorf("mix weights sum to %v", sum)
	}
}
