package ssj

import (
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/model"
	"repro/internal/power"
)

func TestAssembleRun(t *testing.T) {
	spec, err := catalog.Find("EPYC 9554")
	if err != nil {
		t.Fatal(err)
	}
	cfg := shortConfig()
	eng, err := NewEngine(cfg, testMeterM())
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	run, err := AssembleRun(spec, power.SystemConfig{Sockets: 2, MemGB: 384, PSUWatts: 1100},
		RunMeta{
			TestDate:     model.YM(2024, time.May),
			SystemVendor: "test", SystemName: "rig",
			OSName: "Ubuntu 22.04 LTS", JVM: "engine",
		}, res)
	if err != nil {
		t.Fatal(err)
	}
	if got := model.Classify(run); got != model.RejectNone {
		t.Fatalf("assembled run classified %v", got)
	}
	if run.TotalThreads != 2*spec.Cores*spec.ThreadsPerCore {
		t.Errorf("threads = %d", run.TotalThreads)
	}
	if run.OSFamily != model.OSLinux {
		t.Errorf("os family = %v", run.OSFamily)
	}
	if run.ID == "" || run.SubmissionDate.IsZero() {
		t.Error("defaults not filled")
	}
	// Points are copied, not aliased.
	run.Points[0].AvgPower = -1
	if res.Points[0].AvgPower == -1 {
		t.Error("points aliased into the result")
	}
}

func TestAssembleRunErrors(t *testing.T) {
	spec, err := catalog.Find("EPYC 9554")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AssembleRun(spec, power.SystemConfig{Sockets: 2, MemGB: 64},
		RunMeta{}, nil); err == nil {
		t.Error("nil result should error")
	}
	if _, err := AssembleRun(spec, power.SystemConfig{Sockets: 9, MemGB: 64},
		RunMeta{}, &Result{Points: []model.LoadPoint{{TargetLoad: 100}}}); err == nil {
		t.Error("invalid config should error")
	}
}
