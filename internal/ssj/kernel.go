package ssj

// Kernel exposes the ssj transaction workload as a reusable compute
// kernel, so other harnesses (the SERT suite's hybrid worklet) can
// execute the exact same transaction mix outside the benchmark engine.
type Kernel struct {
	w *warehouse
}

// NewKernel builds an independent warehouse-backed kernel. The seed is
// mixed so adjacent seeds produce unrelated transaction streams.
func NewKernel(seed uint64) *Kernel {
	return &Kernel{w: newWarehouse(seed*0x9E3779B97F4A7C15 + 0x7F4A7C15)}
}

// Do executes n mixed transactions and returns n.
func (k *Kernel) Do(n int) int64 {
	for i := 0; i < n; i++ {
		k.w.executeOne()
	}
	return int64(n)
}

// Checksum exposes the accumulated result so callers can keep the work
// observable (and so tests can verify it is not optimized away).
func (k *Kernel) Checksum() int64 {
	return k.w.checksum
}
