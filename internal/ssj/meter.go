package ssj

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/power"
)

// Meter observes AC power during measurement intervals. Implementations:
// SimMeter (in-process, model-backed) and ptd.Client (TCP, backed by a
// simulated power analyzer).
type Meter interface {
	// SetLoad informs the meter of the current target utilization in
	// [0,1]; model-backed meters derive their reading from it.
	SetLoad(u float64)
	// Start begins averaging an interval.
	Start() error
	// Stop ends the interval and returns the average watts observed.
	Stop() (watts float64, err error)
}

// SimMeter is an in-process Meter that synthesizes readings from a
// power.Curve plus multiplicative Gaussian noise.
type SimMeter struct {
	mu      sync.Mutex
	curve   power.Curve
	noise   float64 // relative σ of each reading
	rng     *rand.Rand
	load    float64
	running bool
	sum     float64
	n       int
}

// NewSimMeter builds a meter over the given curve. noise is the relative
// standard deviation of individual readings (e.g. 0.01 for 1 %).
func NewSimMeter(curve power.Curve, noise float64, seed int64) *SimMeter {
	return &SimMeter{
		curve: curve,
		noise: noise,
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// SetLoad implements Meter.
func (m *SimMeter) SetLoad(u float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.load = u
}

// Start implements Meter.
func (m *SimMeter) Start() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.running {
		return fmt.Errorf("ssj: meter already started")
	}
	m.running = true
	m.sum, m.n = 0, 0
	return nil
}

// Sample records one reading; the engine calls it periodically during an
// interval. It is a no-op when the meter is stopped.
func (m *SimMeter) Sample() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.running {
		return
	}
	w := m.curve.At(m.load) * (1 + m.noise*m.rng.NormFloat64())
	m.sum += w
	m.n++
}

// Stop implements Meter.
func (m *SimMeter) Stop() (float64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.running {
		return 0, fmt.Errorf("ssj: meter not started")
	}
	m.running = false
	if m.n == 0 {
		// No explicit samples taken: fall back to one noiseless reading
		// so very short test intervals still yield a measurement.
		return m.curve.At(m.load), nil
	}
	return m.sum / float64(m.n), nil
}

// sampler lets the engine drive meters that need periodic sampling.
type sampler interface{ Sample() }
