// Package ssj implements a simulator of the SPECpower_ssj2008 workload:
// an integer-heavy transactional server workload with six weighted
// transaction types executed against in-memory warehouses, a calibration
// phase that finds the system's maximum throughput, and a graduated-load
// measurement schedule (100 %, 90 %, …, 10 %, active idle).
//
// The engine really executes work on goroutine-backed warehouses and
// paces transaction arrival to hit each target load, mirroring the
// benchmark's design (SPEC, "Design Document SSJ Workload", 2012).
// Power is observed through the Meter interface, implemented by an
// in-process model-backed meter (SimMeter) and by the ptd package's
// TCP client, so a full run exercises the same
// workload → measurement → report → parse path that produced the
// paper's dataset.
package ssj
