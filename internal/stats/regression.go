package stats

import (
	"fmt"
	"math"
)

// LinFit is an ordinary-least-squares line y = Intercept + Slope·x.
type LinFit struct {
	Slope     float64
	Intercept float64
	R2        float64 // coefficient of determination
	N         int     // number of finite (x,y) pairs used
}

// LinReg fits a least-squares line through the finite (x,y) pairs. Pairs
// with a NaN/Inf on either side are skipped. It returns an error if the
// slices differ in length or fewer than two usable pairs remain, or if
// all x values coincide (vertical line).
func LinReg(xs, ys []float64) (LinFit, error) {
	if len(xs) != len(ys) {
		return LinFit{}, fmt.Errorf("stats: LinReg length mismatch %d != %d", len(xs), len(ys))
	}
	var sx, sy float64
	n := 0
	for i := range xs {
		if !finite(xs[i]) || !finite(ys[i]) {
			continue
		}
		sx += xs[i]
		sy += ys[i]
		n++
	}
	if n < 2 {
		return LinFit{}, fmt.Errorf("stats: LinReg needs ≥2 finite pairs, have %d", n)
	}
	mx, my := sx/float64(n), sy/float64(n)
	var sxx, sxy, syy float64
	for i := range xs {
		if !finite(xs[i]) || !finite(ys[i]) {
			continue
		}
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinFit{}, fmt.Errorf("stats: LinReg degenerate: all x equal")
	}
	slope := sxy / sxx
	fit := LinFit{
		Slope:     slope,
		Intercept: my - slope*mx,
		N:         n,
	}
	switch {
	case syy == 0:
		fit.R2 = 1 // constant y perfectly fit by horizontal line
	default:
		fit.R2 = (sxy * sxy) / (sxx * syy)
	}
	return fit, nil
}

// Predict evaluates the fitted line at x.
func (f LinFit) Predict(x float64) float64 {
	return f.Intercept + f.Slope*x
}

// TwoPointLine returns the exact line through (x1,y1) and (x2,y2), the
// degenerate regression the paper uses to extrapolate idle power from
// the 10 % and 20 % load points.
func TwoPointLine(x1, y1, x2, y2 float64) (LinFit, error) {
	if x1 == x2 {
		return LinFit{}, fmt.Errorf("stats: TwoPointLine degenerate: x1 == x2")
	}
	slope := (y2 - y1) / (x2 - x1)
	return LinFit{Slope: slope, Intercept: y1 - slope*x1, R2: 1, N: 2}, nil
}

func finite(x float64) bool {
	return !math.IsNaN(x) && !math.IsInf(x, 0)
}
