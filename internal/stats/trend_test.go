package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKendallTauPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	up := []float64{10, 20, 30, 40, 50}
	down := []float64{5, 4, 3, 2, 1}
	if tau, err := KendallTau(xs, up); err != nil || !almostEq(tau, 1, 1e-12) {
		t.Errorf("tau up = %v (%v)", tau, err)
	}
	if tau, err := KendallTau(xs, down); err != nil || !almostEq(tau, -1, 1e-12) {
		t.Errorf("tau down = %v (%v)", tau, err)
	}
}

func TestKendallTauTies(t *testing.T) {
	// Ties reduce |τ| but the sign holds.
	xs := []float64{1, 2, 3, 4, 5, 6}
	ys := []float64{1, 1, 2, 2, 3, 3}
	tau, err := KendallTau(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if tau <= 0.8 {
		t.Errorf("tau with ties = %v, want strongly positive", tau)
	}
}

func TestKendallTauErrors(t *testing.T) {
	if _, err := KendallTau([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := KendallTau([]float64{1, 1, 1}, []float64{1, 1, 1}); err == nil {
		t.Error("all-tied should error")
	}
	if _, err := KendallTau([]float64{math.NaN()}, []float64{1}); err == nil {
		t.Error("no finite pairs should error")
	}
}

func TestKendallTauBounded(t *testing.T) {
	f := func(pairs [][2]float64) bool {
		if len(pairs) < 3 {
			return true
		}
		var xs, ys []float64
		for _, p := range pairs {
			xs = append(xs, math.Mod(p[0], 100))
			ys = append(ys, math.Mod(p[1], 100))
		}
		tau, err := KendallTau(xs, ys)
		if err != nil {
			return true
		}
		return tau >= -1-1e-9 && tau <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMannKendallTrends(t *testing.T) {
	up := make([]float64, 30)
	down := make([]float64, 30)
	rng := rand.New(rand.NewSource(5))
	for i := range up {
		up[i] = float64(i) + 0.5*rng.NormFloat64()
		down[i] = -float64(i) + 0.5*rng.NormFloat64()
	}
	r, err := MannKendall(up, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if r.Direction != TrendIncreasing {
		t.Errorf("up: %+v", r)
	}
	r, err = MannKendall(down, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if r.Direction != TrendDecreasing {
		t.Errorf("down: %+v", r)
	}
	// White noise: no trend at 5 %.
	noise := make([]float64, 40)
	for i := range noise {
		noise[i] = rng.NormFloat64()
	}
	r, err = MannKendall(noise, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if r.Direction != TrendNone {
		t.Errorf("noise classified as %v (p=%v)", r.Direction, r.P)
	}
}

func TestMannKendallAllTied(t *testing.T) {
	r, err := MannKendall([]float64{3, 3, 3, 3}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if r.Direction != TrendNone || r.P != 1 {
		t.Errorf("all tied: %+v", r)
	}
}

func TestMannKendallErrors(t *testing.T) {
	if _, err := MannKendall([]float64{1, 2}, 0.05); err == nil {
		t.Error("too few points should error")
	}
	if _, err := MannKendall([]float64{1, 2, 3}, 1.5); err == nil {
		t.Error("bad alpha should error")
	}
}

func TestMannKendallPValueRange(t *testing.T) {
	f := func(raw []float64) bool {
		xs := boundTo(raw, 1e4)
		r, err := MannKendall(xs, 0.05)
		if err != nil {
			return true
		}
		return r.P >= 0 && r.P <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSenSlope(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := []float64{7, 9, 11, 13, 15}
	s, err := SenSlope(xs, ys)
	if err != nil || !almostEq(s, 2, 1e-12) {
		t.Errorf("slope = %v (%v)", s, err)
	}
	// Robustness: one wild outlier barely moves the estimate.
	ys[2] = 1000
	s, err = SenSlope(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if s < 1.5 || s > 3 {
		t.Errorf("outlier destroyed Sen slope: %v", s)
	}
	// Compare: OLS is dragged far away.
	fit, err := LinReg(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-2) < math.Abs(s-2) {
		t.Errorf("OLS (%v) should be worse than Sen (%v) here", fit.Slope, s)
	}
}

func TestSenSlopeErrors(t *testing.T) {
	if _, err := SenSlope([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := SenSlope([]float64{2, 2}, []float64{1, 2}); err == nil {
		t.Error("vertical should error")
	}
}
