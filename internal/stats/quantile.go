package stats

import (
	"math"
	"sort"
)

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) of the finite entries
// of xs using linear interpolation between order statistics (the same
// "linear" method as numpy's default). It returns NaN on empty input or
// q outside [0,1].
func Quantile(xs []float64, q float64) float64 {
	if q < 0 || q > 1 || math.IsNaN(q) {
		return math.NaN()
	}
	clean := DropNaN(xs)
	if len(clean) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), clean...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

// quantileSorted computes the interpolated quantile of an already sorted,
// NaN-free, non-empty slice.
func quantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median is Quantile(xs, 0.5).
func Median(xs []float64) float64 {
	return Quantile(xs, 0.5)
}

// Quantiles evaluates several quantiles in one pass over the sorted data,
// cheaper than repeated Quantile calls.
func Quantiles(xs []float64, qs ...float64) []float64 {
	out := make([]float64, len(qs))
	clean := DropNaN(xs)
	if len(clean) == 0 {
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	sorted := append([]float64(nil), clean...)
	sort.Float64s(sorted)
	for i, q := range qs {
		if q < 0 || q > 1 || math.IsNaN(q) {
			out[i] = math.NaN()
			continue
		}
		out[i] = quantileSorted(sorted, q)
	}
	return out
}

// BoxStats is the five-number summary plus Tukey whiskers used by the
// Figure 4 box plots.
type BoxStats struct {
	N        int
	Min      float64 // smallest finite observation
	Q1       float64
	Median   float64
	Q3       float64
	Max      float64   // largest finite observation
	LoWhisk  float64   // smallest observation ≥ Q1 − 1.5·IQR
	HiWhisk  float64   // largest observation ≤ Q3 + 1.5·IQR
	Outliers []float64 // observations beyond the whiskers, ascending
}

// Box computes BoxStats over the finite entries of xs. On empty input
// every field is NaN and N is zero.
func Box(xs []float64) BoxStats {
	clean := DropNaN(xs)
	if len(clean) == 0 {
		nan := math.NaN()
		return BoxStats{Min: nan, Q1: nan, Median: nan, Q3: nan, Max: nan,
			LoWhisk: nan, HiWhisk: nan}
	}
	sorted := append([]float64(nil), clean...)
	sort.Float64s(sorted)
	b := BoxStats{
		N:      len(sorted),
		Min:    sorted[0],
		Q1:     quantileSorted(sorted, 0.25),
		Median: quantileSorted(sorted, 0.5),
		Q3:     quantileSorted(sorted, 0.75),
		Max:    sorted[len(sorted)-1],
	}
	iqr := b.Q3 - b.Q1
	loFence := b.Q1 - 1.5*iqr
	hiFence := b.Q3 + 1.5*iqr
	b.LoWhisk = b.Max
	b.HiWhisk = b.Min
	for _, x := range sorted {
		if x >= loFence && x < b.LoWhisk {
			b.LoWhisk = x
		}
		if x <= hiFence && x > b.HiWhisk {
			b.HiWhisk = x
		}
		if x < loFence || x > hiFence {
			b.Outliers = append(b.Outliers, x)
		}
	}
	return b
}
