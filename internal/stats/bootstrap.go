package stats

import (
	"fmt"
	"math/rand"
	"sort"
)

// CI is a two-sided confidence interval around a point estimate.
type CI struct {
	Point float64
	Lo    float64
	Hi    float64
	Level float64 // e.g. 0.95
}

// BootstrapMeanCI estimates a percentile-bootstrap confidence interval
// for the mean of the finite entries of xs, using resamples draws from a
// deterministic generator seeded with seed. Level must lie in (0,1).
func BootstrapMeanCI(xs []float64, resamples int, level float64, seed int64) (CI, error) {
	return bootstrapCI(xs, resamples, level, seed, Mean)
}

// BootstrapMedianCI is BootstrapMeanCI for the median.
func BootstrapMedianCI(xs []float64, resamples int, level float64, seed int64) (CI, error) {
	return bootstrapCI(xs, resamples, level, seed, Median)
}

func bootstrapCI(xs []float64, resamples int, level float64, seed int64,
	stat func([]float64) float64) (CI, error) {

	clean := DropNaN(xs)
	if len(clean) == 0 {
		return CI{}, fmt.Errorf("stats: bootstrap on empty sample")
	}
	if resamples < 1 {
		return CI{}, fmt.Errorf("stats: bootstrap needs ≥1 resample, got %d", resamples)
	}
	if !(level > 0 && level < 1) {
		return CI{}, fmt.Errorf("stats: bootstrap level %v outside (0,1)", level)
	}
	rng := rand.New(rand.NewSource(seed))
	draws := make([]float64, resamples)
	buf := make([]float64, len(clean))
	for r := 0; r < resamples; r++ {
		for i := range buf {
			buf[i] = clean[rng.Intn(len(clean))]
		}
		draws[r] = stat(buf)
	}
	sort.Float64s(draws)
	alpha := (1 - level) / 2
	return CI{
		Point: stat(clean),
		Lo:    quantileSorted(draws, alpha),
		Hi:    quantileSorted(draws, 1-alpha),
		Level: level,
	}, nil
}
