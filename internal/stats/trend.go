package stats

import (
	"fmt"
	"math"
	"sort"
)

// KendallTau returns Kendall's τ-b rank correlation of the jointly
// finite (x,y) pairs, with tie correction. It errors with fewer than
// two usable pairs or when either side is entirely tied.
func KendallTau(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("stats: KendallTau length mismatch %d != %d", len(xs), len(ys))
	}
	var fx, fy []float64
	for i := range xs {
		if finite(xs[i]) && finite(ys[i]) {
			fx = append(fx, xs[i])
			fy = append(fy, ys[i])
		}
	}
	n := len(fx)
	if n < 2 {
		return 0, fmt.Errorf("stats: KendallTau needs ≥2 finite pairs, have %d", n)
	}
	var concordant, discordant, tieX, tieY float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx := fx[i] - fx[j]
			dy := fy[i] - fy[j]
			switch {
			case dx == 0 && dy == 0:
				tieX++
				tieY++
			case dx == 0:
				tieX++
			case dy == 0:
				tieY++
			case dx*dy > 0:
				concordant++
			default:
				discordant++
			}
		}
	}
	total := float64(n*(n-1)) / 2
	denom := math.Sqrt((total - tieX) * (total - tieY))
	if denom == 0 {
		return 0, fmt.Errorf("stats: KendallTau degenerate: all ties")
	}
	return (concordant - discordant) / denom, nil
}

// TrendDirection classifies a Mann-Kendall result.
type TrendDirection int

// Trend directions.
const (
	TrendNone TrendDirection = iota
	TrendIncreasing
	TrendDecreasing
)

// String names the direction.
func (t TrendDirection) String() string {
	switch t {
	case TrendIncreasing:
		return "increasing"
	case TrendDecreasing:
		return "decreasing"
	default:
		return "no trend"
	}
}

// MKResult is the outcome of the Mann-Kendall trend test.
type MKResult struct {
	S float64 // Mann-Kendall S statistic
	Z float64 // normal-approximation test statistic
	P float64 // two-sided p-value
	// Direction at the given significance level.
	Direction TrendDirection
	N         int
}

// MannKendall tests ys (ordered by time) for a monotonic trend using
// the Mann-Kendall test with tie-corrected variance and the usual
// continuity correction. alpha is the two-sided significance level
// (e.g. 0.05).
func MannKendall(ys []float64, alpha float64) (MKResult, error) {
	clean := DropNaN(ys)
	n := len(clean)
	if n < 3 {
		return MKResult{}, fmt.Errorf("stats: MannKendall needs ≥3 points, have %d", n)
	}
	if !(alpha > 0 && alpha < 1) {
		return MKResult{}, fmt.Errorf("stats: MannKendall alpha %v outside (0,1)", alpha)
	}
	var s float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			switch {
			case clean[j] > clean[i]:
				s++
			case clean[j] < clean[i]:
				s--
			}
		}
	}
	// Tie-corrected variance.
	variance := float64(n*(n-1)*(2*n+5)) / 18
	for _, t := range tieGroupSizes(clean) {
		variance -= float64(t*(t-1)*(2*t+5)) / 18
	}
	res := MKResult{S: s, N: n}
	if variance <= 0 {
		// All values tied: no trend by definition.
		res.P = 1
		return res, nil
	}
	sd := math.Sqrt(variance)
	switch {
	case s > 0:
		res.Z = (s - 1) / sd
	case s < 0:
		res.Z = (s + 1) / sd
	}
	res.P = math.Erfc(math.Abs(res.Z) / math.Sqrt2) // two-sided
	if res.P <= alpha {
		if res.Z > 0 {
			res.Direction = TrendIncreasing
		} else if res.Z < 0 {
			res.Direction = TrendDecreasing
		}
	}
	return res, nil
}

// tieGroupSizes returns the sizes of groups of equal values (size ≥ 2).
func tieGroupSizes(xs []float64) []int {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var out []int
	for i := 0; i < len(sorted); {
		j := i
		for j < len(sorted) && sorted[j] == sorted[i] {
			j++
		}
		if j-i >= 2 {
			out = append(out, j-i)
		}
		i = j
	}
	return out
}

// SenSlope returns the Theil–Sen estimator: the median of all pairwise
// slopes of the jointly finite (x,y) pairs — a robust trend slope.
func SenSlope(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("stats: SenSlope length mismatch %d != %d", len(xs), len(ys))
	}
	var fx, fy []float64
	for i := range xs {
		if finite(xs[i]) && finite(ys[i]) {
			fx = append(fx, xs[i])
			fy = append(fy, ys[i])
		}
	}
	if len(fx) < 2 {
		return 0, fmt.Errorf("stats: SenSlope needs ≥2 finite pairs, have %d", len(fx))
	}
	var slopes []float64
	for i := 0; i < len(fx); i++ {
		for j := i + 1; j < len(fx); j++ {
			if fx[j] == fx[i] {
				continue
			}
			slopes = append(slopes, (fy[j]-fy[i])/(fx[j]-fx[i]))
		}
	}
	if len(slopes) == 0 {
		return 0, fmt.Errorf("stats: SenSlope degenerate: all x equal")
	}
	return Median(slopes), nil
}
