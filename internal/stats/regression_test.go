package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLinRegExactLine(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3*x + 7
	}
	fit, err := LinReg(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(fit.Slope, 3, 1e-12) || !almostEq(fit.Intercept, 7, 1e-12) {
		t.Errorf("fit = %+v", fit)
	}
	if !almostEq(fit.R2, 1, 1e-12) {
		t.Errorf("R2 = %v, want 1", fit.R2)
	}
	if got := fit.Predict(10); !almostEq(got, 37, 1e-12) {
		t.Errorf("Predict(10) = %v", got)
	}
}

func TestLinRegNoisy(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6}
	ys := []float64{2.1, 3.9, 6.2, 7.8, 10.1, 11.9}
	fit, err := LinReg(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if fit.Slope < 1.8 || fit.Slope > 2.2 {
		t.Errorf("Slope = %v, want ≈2", fit.Slope)
	}
	if fit.R2 < 0.99 {
		t.Errorf("R2 = %v, want ≈1", fit.R2)
	}
}

func TestLinRegErrors(t *testing.T) {
	if _, err := LinReg([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := LinReg([]float64{1}, []float64{2}); err == nil {
		t.Error("single point should error")
	}
	if _, err := LinReg([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Error("vertical line should error")
	}
	if _, err := LinReg([]float64{math.NaN(), 1}, []float64{1, 2}); err == nil {
		t.Error("one finite pair should error")
	}
}

func TestLinRegSkipsNaN(t *testing.T) {
	xs := []float64{0, 1, math.NaN(), 2}
	ys := []float64{7, 10, 99, 13}
	fit, err := LinReg(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if fit.N != 3 || !almostEq(fit.Slope, 3, 1e-12) {
		t.Errorf("fit = %+v", fit)
	}
}

func TestLinRegResidualOrthogonality(t *testing.T) {
	// OLS residuals are orthogonal to x and sum to zero.
	f := func(pts [][2]float64) bool {
		if len(pts) < 3 {
			return true
		}
		var xs, ys []float64
		for _, p := range pts {
			x := math.Mod(p[0], 1000)
			y := math.Mod(p[1], 1000)
			if !finite(x) || !finite(y) {
				return true
			}
			xs = append(xs, x)
			ys = append(ys, y)
		}
		fit, err := LinReg(xs, ys)
		if err != nil {
			return true // degenerate input; nothing to check
		}
		var sumR, sumRX, scale float64
		for i := range xs {
			r := ys[i] - fit.Predict(xs[i])
			sumR += r
			sumRX += r * xs[i]
			scale += math.Abs(ys[i]) + math.Abs(xs[i]) + 1
		}
		tol := 1e-6 * scale
		return math.Abs(sumR) < tol && math.Abs(sumRX) < tol
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTwoPointLine(t *testing.T) {
	fit, err := TwoPointLine(10, 150, 20, 180)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(fit.Slope, 3, 1e-12) || !almostEq(fit.Intercept, 120, 1e-12) {
		t.Errorf("fit = %+v", fit)
	}
	if !almostEq(fit.Predict(0), 120, 1e-12) {
		t.Errorf("Predict(0) = %v", fit.Predict(0))
	}
	if _, err := TwoPointLine(5, 1, 5, 2); err == nil {
		t.Error("vertical two-point line should error")
	}
}

func TestTwoPointMatchesLinReg(t *testing.T) {
	fitA, errA := TwoPointLine(10, 151.2, 20, 183.4)
	fitB, errB := LinReg([]float64{10, 20}, []float64{151.2, 183.4})
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}
	if !almostEq(fitA.Slope, fitB.Slope, 1e-9) ||
		!almostEq(fitA.Intercept, fitB.Intercept, 1e-9) {
		t.Errorf("two-point %+v vs OLS %+v", fitA, fitB)
	}
}
