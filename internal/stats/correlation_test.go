package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPearsonPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(r, 1, 1e-12) {
		t.Errorf("Pearson = %v, want 1", r)
	}
	neg := []float64{10, 8, 6, 4, 2}
	r, err = Pearson(xs, neg)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(r, -1, 1e-12) {
		t.Errorf("Pearson = %v, want -1", r)
	}
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); err == nil {
		t.Error("zero variance should error")
	}
	if _, err := Pearson([]float64{1}, []float64{1}); err == nil {
		t.Error("single pair should error")
	}
}

func TestPearsonBounded(t *testing.T) {
	f := func(pairs [][2]float64) bool {
		if len(pairs) < 2 {
			return true
		}
		var xs, ys []float64
		for _, p := range pairs {
			xs = append(xs, math.Mod(p[0], 1e6))
			ys = append(ys, math.Mod(p[1], 1e6))
		}
		r, err := Pearson(xs, ys)
		if err != nil {
			return true
		}
		return r >= -1 && r <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSpearmanMonotone(t *testing.T) {
	// Any strictly monotone transform has Spearman exactly 1.
	xs := []float64{1, 2, 3, 4, 5, 6}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = math.Exp(x) // nonlinear but monotone
	}
	rho, err := Spearman(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(rho, 1, 1e-12) {
		t.Errorf("Spearman = %v, want 1", rho)
	}
	// Pearson of the same data is below 1 (nonlinearity).
	r, err := Pearson(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if r >= 0.999 {
		t.Errorf("Pearson = %v, expected visibly < 1", r)
	}
}

func TestSpearmanSkipsNaNPairs(t *testing.T) {
	xs := []float64{1, math.NaN(), 3, 4}
	ys := []float64{1, 100, 3, 4}
	rho, err := Spearman(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(rho, 1, 1e-12) {
		t.Errorf("Spearman = %v, want 1", rho)
	}
}

func TestRanksTies(t *testing.T) {
	ranks := Ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if !almostEq(ranks[i], want[i], 1e-12) {
			t.Fatalf("Ranks = %v, want %v", ranks, want)
		}
	}
}

func TestRanksNaN(t *testing.T) {
	ranks := Ranks([]float64{5, math.NaN(), 1})
	if !math.IsNaN(ranks[1]) {
		t.Errorf("NaN input should yield NaN rank, got %v", ranks[1])
	}
	if ranks[0] != 2 || ranks[2] != 1 {
		t.Errorf("Ranks = %v", ranks)
	}
}

func TestRanksSumInvariant(t *testing.T) {
	// Fractional ranks of n finite values always sum to n(n+1)/2.
	f := func(raw []float64) bool {
		xs := DropNaN(raw)
		n := len(xs)
		if n == 0 {
			return true
		}
		sum := Sum(Ranks(xs))
		return almostEq(sum, float64(n*(n+1))/2, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCorrMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 200
	a := make([]float64, n)
	b := make([]float64, n)
	c := make([]float64, n)
	for i := 0; i < n; i++ {
		a[i] = rng.NormFloat64()
		b[i] = 2*a[i] + 0.01*rng.NormFloat64()
		c[i] = rng.NormFloat64()
	}
	m := CorrMatrix(map[string][]float64{"a": a, "b": b, "c": c},
		[]string{"a", "b", "c"})
	if m[0][0] != 1 || m[1][1] != 1 {
		t.Error("diagonal must be 1")
	}
	if m[0][1] < 0.99 {
		t.Errorf("corr(a,b) = %v, want ≈1", m[0][1])
	}
	if math.Abs(m[0][2]) > 0.2 {
		t.Errorf("corr(a,c) = %v, want ≈0", m[0][2])
	}
	if m[0][1] != m[1][0] {
		t.Error("matrix must be symmetric")
	}
}

func TestBootstrapMeanCI(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = 10 + rng.NormFloat64()
	}
	ci, err := BootstrapMeanCI(xs, 400, 0.95, 42)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Lo > ci.Point || ci.Point > ci.Hi {
		t.Errorf("CI not ordered: %+v", ci)
	}
	if ci.Lo < 9.5 || ci.Hi > 10.5 {
		t.Errorf("CI implausibly wide: %+v", ci)
	}
	// Determinism under the same seed.
	ci2, _ := BootstrapMeanCI(xs, 400, 0.95, 42)
	if ci != ci2 {
		t.Error("bootstrap not deterministic under fixed seed")
	}
}

func TestBootstrapErrors(t *testing.T) {
	if _, err := BootstrapMeanCI(nil, 100, 0.95, 1); err == nil {
		t.Error("empty sample should error")
	}
	if _, err := BootstrapMeanCI([]float64{1, 2}, 0, 0.95, 1); err == nil {
		t.Error("zero resamples should error")
	}
	if _, err := BootstrapMeanCI([]float64{1, 2}, 10, 1.5, 1); err == nil {
		t.Error("bad level should error")
	}
	if _, err := BootstrapMedianCI([]float64{1, 2, 3}, 10, 0.9, 1); err != nil {
		t.Errorf("median CI: %v", err)
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0.5, 1.5, 1.6, 2.5, 3.5, 4.0, -1, 99, math.NaN()}
	h, err := NewHistogram(xs, 4, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	wantCounts := []int{1, 2, 1, 2} // 4.0 lands in the closed top bin
	for i, w := range wantCounts {
		if h.Counts[i] != w {
			t.Errorf("bin %d = %d, want %d (all: %v)", i, h.Counts[i], w, h.Counts)
		}
	}
	if h.Under != 1 || h.Over != 1 {
		t.Errorf("Under=%d Over=%d", h.Under, h.Over)
	}
	if h.Total() != 6 {
		t.Errorf("Total = %d", h.Total())
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(nil, 0, 0, 1); err == nil {
		t.Error("0 bins should error")
	}
	if _, err := NewHistogram(nil, 3, 2, 2); err == nil {
		t.Error("empty range should error")
	}
}

func TestHistogramMode(t *testing.T) {
	xs := []float64{1.1, 1.2, 1.3, 3.7}
	h, err := NewHistogram(xs, 4, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.Mode(); !almostEq(got, 1.5, 1e-12) {
		t.Errorf("Mode = %v, want 1.5", got)
	}
	empty, _ := NewHistogram(nil, 4, 0, 4)
	if !math.IsNaN(empty.Mode()) {
		t.Error("Mode of empty histogram should be NaN")
	}
}

func TestHistogramConservation(t *testing.T) {
	f := func(raw []float64) bool {
		h, err := NewHistogram(raw, 7, -100, 100)
		if err != nil {
			return false
		}
		return h.Total()+h.Under+h.Over == Count(raw)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
