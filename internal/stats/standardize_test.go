package stats

import (
	"math"
	"testing"
)

func TestStandardize(t *testing.T) {
	got := Standardize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	// mean = 5, sample std ≈ 2.138; spot-check the first and last entry.
	if math.Abs(got[0]-(2-5)/2.1380899352993947) > 1e-12 {
		t.Errorf("z[0] = %v", got[0])
	}
	if math.Abs(got[7]-(9-5)/2.1380899352993947) > 1e-12 {
		t.Errorf("z[7] = %v", got[7])
	}
	// The z-scores of the finite entries always re-centre to mean 0.
	if m := Mean(got); math.Abs(m) > 1e-12 {
		t.Errorf("mean of z-scores = %v, want 0", m)
	}
}

func TestStandardizeNaNPassThrough(t *testing.T) {
	in := []float64{1, math.NaN(), 3, math.Inf(1), 5}
	got := Standardize(in)
	if !math.IsNaN(got[1]) || !math.IsNaN(got[3]) {
		t.Errorf("non-finite entries must stay NaN: %v", got)
	}
	// The finite entries are scored against the finite mean/std only.
	want := Standardize([]float64{1, 3, 5})
	for i, j := range []int{0, 2, 4} {
		if math.Abs(got[j]-want[i]) > 1e-12 {
			t.Errorf("z[%d] = %v, want %v", j, got[j], want[i])
		}
	}
	// The input must not be modified.
	if in[0] != 1 || in[2] != 3 || in[4] != 5 {
		t.Errorf("input modified: %v", in)
	}
}

func TestStandardizeDegenerate(t *testing.T) {
	for name, in := range map[string][]float64{
		"empty":         {},
		"single":        {42},
		"zero-variance": {3, 3, 3, 3},
		"all-nan":       {math.NaN(), math.NaN()},
	} {
		got := Standardize(in)
		if len(got) != len(in) {
			t.Fatalf("%s: len = %d, want %d", name, len(got), len(in))
		}
		for i, z := range got {
			if math.IsNaN(in[i]) {
				if !math.IsNaN(z) {
					t.Errorf("%s: z[%d] = %v, want NaN", name, i, z)
				}
			} else if z != 0 {
				t.Errorf("%s: z[%d] = %v, want 0", name, i, z)
			}
		}
	}
}

func TestEuclideanDist(t *testing.T) {
	if d := EuclideanDist([]float64{0, 0}, []float64{3, 4}); math.Abs(d-5) > 1e-12 {
		t.Errorf("3-4-5 distance = %v", d)
	}
	if d := EuclideanDist([]float64{1, 2, 3}, []float64{1, 2, 3}); d != 0 {
		t.Errorf("self distance = %v", d)
	}
	if d := EuclideanDist(nil, nil); d != 0 {
		t.Errorf("empty distance = %v", d)
	}
}

func TestEuclideanDistMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	EuclideanDist([]float64{1}, []float64{1, 2})
}
