package stats

import (
	"fmt"
	"math"
	"sort"
)

// Pearson returns the Pearson product-moment correlation of the finite
// (x,y) pairs. It returns an error on length mismatch, fewer than two
// usable pairs, or zero variance on either side.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("stats: Pearson length mismatch %d != %d", len(xs), len(ys))
	}
	var sx, sy float64
	n := 0
	for i := range xs {
		if !finite(xs[i]) || !finite(ys[i]) {
			continue
		}
		sx += xs[i]
		sy += ys[i]
		n++
	}
	if n < 2 {
		return 0, fmt.Errorf("stats: Pearson needs ≥2 finite pairs, have %d", n)
	}
	mx, my := sx/float64(n), sy/float64(n)
	var sxx, syy, sxy float64
	for i := range xs {
		if !finite(xs[i]) || !finite(ys[i]) {
			continue
		}
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		syy += dy * dy
		sxy += dx * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, fmt.Errorf("stats: Pearson degenerate: zero variance")
	}
	r := sxy / math.Sqrt(sxx*syy)
	// Clamp tiny floating-point excursions outside [-1, 1].
	if r > 1 {
		r = 1
	} else if r < -1 {
		r = -1
	}
	return r, nil
}

// Spearman returns the Spearman rank correlation: the Pearson
// correlation of the rank-transformed data, with ties assigned the mean
// of the ranks they span (fractional ranking).
func Spearman(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("stats: Spearman length mismatch %d != %d", len(xs), len(ys))
	}
	// Keep only jointly finite pairs so the two rank vectors align.
	var fx, fy []float64
	for i := range xs {
		if finite(xs[i]) && finite(ys[i]) {
			fx = append(fx, xs[i])
			fy = append(fy, ys[i])
		}
	}
	if len(fx) < 2 {
		return 0, fmt.Errorf("stats: Spearman needs ≥2 finite pairs, have %d", len(fx))
	}
	return Pearson(Ranks(fx), Ranks(fy))
}

// Ranks returns the fractional (mid) ranks of xs, 1-based: the smallest
// value gets rank 1, and tied values share the mean of the ranks they
// occupy. NaN entries receive NaN ranks.
func Ranks(xs []float64) []float64 {
	type iv struct {
		idx int
		v   float64
	}
	ordered := make([]iv, 0, len(xs))
	for i, x := range xs {
		if finite(x) {
			ordered = append(ordered, iv{i, x})
		}
	}
	sort.Slice(ordered, func(a, b int) bool { return ordered[a].v < ordered[b].v })
	ranks := make([]float64, len(xs))
	for i := range ranks {
		ranks[i] = math.NaN()
	}
	for i := 0; i < len(ordered); {
		j := i
		for j < len(ordered) && ordered[j].v == ordered[i].v {
			j++
		}
		// Ranks i+1 .. j span the tie group; assign their mean.
		mean := float64(i+1+j) / 2
		for k := i; k < j; k++ {
			ranks[ordered[k].idx] = mean
		}
		i = j
	}
	return ranks
}

// CorrMatrix computes the pairwise Pearson correlation matrix of the
// given named columns. Entries that cannot be computed (degenerate
// columns) are NaN. The result is symmetric with a unit diagonal.
func CorrMatrix(cols map[string][]float64, names []string) [][]float64 {
	n := len(names)
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
		m[i][i] = 1
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			r, err := Pearson(cols[names[i]], cols[names[j]])
			if err != nil {
				r = math.NaN()
			}
			m[i][j] = r
			m[j][i] = r
		}
	}
	return m
}
