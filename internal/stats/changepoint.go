package stats

import (
	"fmt"
	"math"
)

// PettittResult is the outcome of the Pettitt changepoint test.
type PettittResult struct {
	// Index is the position of the most probable change point: the
	// series behaves differently before (inclusive) and after it.
	Index int
	// K is the test statistic max|U_t|.
	K float64
	// P is the approximate significance probability.
	P float64
	// Significant reports P ≤ the alpha passed to Pettitt.
	Significant bool
}

// Pettitt runs the Pettitt (1979) non-parametric changepoint test on a
// time-ordered series: it locates the single most probable shift in the
// distribution and reports its approximate significance. The paper's
// idle-power history (falling to a 2017 minimum, rising after) is the
// motivating use: the test finds where a monotonic regime ends.
func Pettitt(ys []float64, alpha float64) (PettittResult, error) {
	clean := DropNaN(ys)
	n := len(clean)
	if n < 4 {
		return PettittResult{}, fmt.Errorf("stats: Pettitt needs ≥4 points, have %d", n)
	}
	if !(alpha > 0 && alpha < 1) {
		return PettittResult{}, fmt.Errorf("stats: Pettitt alpha %v outside (0,1)", alpha)
	}
	// U_t = Σ_{i≤t} Σ_{j>t} sign(x_j − x_i), computed incrementally.
	var res PettittResult
	var ut float64
	for t := 0; t < n-1; t++ {
		// Adding element t to the "before" side: its sign contributions
		// against all "after" elements, minus the contributions it had
		// as an "after" element against the existing "before" side.
		for j := t + 1; j < n; j++ {
			ut += sign(clean[j] - clean[t])
		}
		for i := 0; i < t; i++ {
			ut -= sign(clean[t] - clean[i])
		}
		if math.Abs(ut) > res.K {
			res.K = math.Abs(ut)
			res.Index = t
		}
	}
	// Approximate significance (Pettitt 1979).
	nn := float64(n)
	res.P = 2 * math.Exp(-6*res.K*res.K/(nn*nn*nn+nn*nn))
	if res.P > 1 {
		res.P = 1
	}
	res.Significant = res.P <= alpha
	return res, nil
}

func sign(x float64) float64 {
	switch {
	case x > 0:
		return 1
	case x < 0:
		return -1
	default:
		return 0
	}
}
