package stats

import "math"

// DropNaN returns xs without NaN or ±Inf entries. The input is not
// modified; the result may share no memory with it.
func DropNaN(xs []float64) []float64 {
	out := make([]float64, 0, len(xs))
	for _, x := range xs {
		if !math.IsNaN(x) && !math.IsInf(x, 0) {
			out = append(out, x)
		}
	}
	return out
}

// Sum returns the sum of the finite entries of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			continue
		}
		s += x
	}
	return s
}

// Count returns the number of finite entries of xs.
func Count(xs []float64) int {
	n := 0
	for _, x := range xs {
		if !math.IsNaN(x) && !math.IsInf(x, 0) {
			n++
		}
	}
	return n
}

// Mean returns the arithmetic mean of the finite entries of xs, or NaN
// if there are none.
func Mean(xs []float64) float64 {
	n := Count(xs)
	if n == 0 {
		return math.NaN()
	}
	return Sum(xs) / float64(n)
}

// Variance returns the sample variance (n−1 denominator) of the finite
// entries, or NaN with fewer than two of them. It uses a two-pass
// algorithm for numerical stability.
func Variance(xs []float64) float64 {
	m := Mean(xs)
	if math.IsNaN(m) {
		return math.NaN()
	}
	var ss float64
	n := 0
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			continue
		}
		d := x - m
		ss += d * d
		n++
	}
	if n < 2 {
		return math.NaN()
	}
	return ss / float64(n-1)
}

// StdDev returns the sample standard deviation of the finite entries.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Min returns the smallest finite entry, or NaN if there is none.
func Min(xs []float64) float64 {
	best := math.NaN()
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			continue
		}
		if math.IsNaN(best) || x < best {
			best = x
		}
	}
	return best
}

// Max returns the largest finite entry, or NaN if there is none.
func Max(xs []float64) float64 {
	best := math.NaN()
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			continue
		}
		if math.IsNaN(best) || x > best {
			best = x
		}
	}
	return best
}

// Summary holds the eight-number description used throughout the
// analysis output.
type Summary struct {
	N      int
	Mean   float64
	Std    float64
	Min    float64
	Q25    float64
	Median float64
	Q75    float64
	Max    float64
}

// Describe computes the Summary of the finite entries of xs.
func Describe(xs []float64) Summary {
	clean := DropNaN(xs)
	return Summary{
		N:      len(clean),
		Mean:   Mean(clean),
		Std:    StdDev(clean),
		Min:    Min(clean),
		Q25:    Quantile(clean, 0.25),
		Median: Quantile(clean, 0.5),
		Q75:    Quantile(clean, 0.75),
		Max:    Max(clean),
	}
}
