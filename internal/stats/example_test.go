package stats_test

import (
	"fmt"

	"repro/internal/stats"
)

// ExampleLinReg shows the two-point idle extrapolation the paper uses
// (Section IV): fit the 10 % and 20 % load powers, evaluate at 0 %.
func ExampleLinReg() {
	fit, err := stats.LinReg([]float64{10, 20}, []float64{150, 180})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("extrapolated idle: %.0f W\n", fit.Predict(0))
	// Output:
	// extrapolated idle: 120 W
}

// ExampleMannKendall tests a yearly series for a monotonic trend.
func ExampleMannKendall() {
	idleFraction := []float64{0.70, 0.62, 0.51, 0.40, 0.33, 0.25, 0.21, 0.18, 0.16}
	res, err := stats.MannKendall(idleFraction, 0.05)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("direction:", res.Direction)
	// Output:
	// direction: decreasing
}

// ExampleBox computes the five-number summary behind Figure 4's boxes.
func ExampleBox() {
	relEff := []float64{0.92, 0.95, 0.98, 1.00, 1.02, 1.05, 1.31}
	b := stats.Box(relEff)
	fmt.Printf("median %.2f, IQR [%.2f, %.2f], outliers %v\n",
		b.Median, b.Q1, b.Q3, b.Outliers)
	// Output:
	// median 1.00, IQR [0.96, 1.04], outliers [1.31]
}
