package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestQuantileInterpolation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	cases := []struct {
		q, want float64
	}{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75}, {0.75, 3.25},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQuantileEdges(t *testing.T) {
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile on empty should be NaN")
	}
	if !math.IsNaN(Quantile([]float64{1}, -0.1)) || !math.IsNaN(Quantile([]float64{1}, 1.1)) {
		t.Error("Quantile outside [0,1] should be NaN")
	}
	if got := Quantile([]float64{42}, 0.99); got != 42 {
		t.Errorf("Quantile singleton = %v", got)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestQuantilesBatchMatchesSingle(t *testing.T) {
	xs := []float64{7, 1, 4, 4, 9, 2}
	qs := []float64{0, 0.1, 0.5, 0.9, 1}
	batch := Quantiles(xs, qs...)
	for i, q := range qs {
		if got := Quantile(xs, q); !almostEq(batch[i], got, 1e-12) {
			t.Errorf("Quantiles[%v] = %v, single = %v", q, batch[i], got)
		}
	}
}

func TestQuantileMonotoneInQ(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		xs := DropNaN(raw)
		if len(xs) == 0 {
			return true
		}
		qa := math.Abs(math.Mod(a, 1))
		qb := math.Abs(math.Mod(b, 1))
		if qa > qb {
			qa, qb = qb, qa
		}
		va, vb := Quantile(xs, qa), Quantile(xs, qb)
		return va <= vb+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMedianOddEven(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("odd median = %v", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("even median = %v", got)
	}
}

func TestBoxStats(t *testing.T) {
	// 1..9 plus an extreme outlier.
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 100}
	b := Box(xs)
	if b.N != 10 || b.Min != 1 || b.Max != 100 {
		t.Fatalf("Box = %+v", b)
	}
	if b.Median != 5.5 {
		t.Errorf("Median = %v", b.Median)
	}
	if len(b.Outliers) != 1 || b.Outliers[0] != 100 {
		t.Errorf("Outliers = %v", b.Outliers)
	}
	if b.HiWhisk != 9 {
		t.Errorf("HiWhisk = %v, want 9", b.HiWhisk)
	}
	if b.LoWhisk != 1 {
		t.Errorf("LoWhisk = %v, want 1", b.LoWhisk)
	}
}

func TestBoxEmpty(t *testing.T) {
	b := Box(nil)
	if b.N != 0 || !math.IsNaN(b.Median) || !math.IsNaN(b.Q1) {
		t.Fatalf("Box(nil) = %+v", b)
	}
}

func TestBoxOrderInvariant(t *testing.T) {
	f := func(raw []float64) bool {
		xs := DropNaN(raw)
		if len(xs) == 0 {
			return true
		}
		shuffled := append([]float64(nil), xs...)
		sort.Sort(sort.Reverse(sort.Float64Slice(shuffled)))
		a, b := Box(xs), Box(shuffled)
		return a.N == b.N && almostEq(a.Median, b.Median, 1e-9) &&
			almostEq(a.Q1, b.Q1, 1e-9) && almostEq(a.Q3, b.Q3, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBoxInvariants(t *testing.T) {
	f := func(raw []float64) bool {
		xs := DropNaN(raw)
		if len(xs) == 0 {
			return true
		}
		b := Box(xs)
		return b.Min <= b.Q1 && b.Q1 <= b.Median &&
			b.Median <= b.Q3 && b.Q3 <= b.Max &&
			b.LoWhisk >= b.Min && b.HiWhisk <= b.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
