package stats

import (
	"fmt"
	"math"
)

// Histogram is a fixed-width binning of a sample.
type Histogram struct {
	// Edges has len(Counts)+1 entries; bin i covers [Edges[i], Edges[i+1]),
	// with the final bin closed on the right.
	Edges  []float64
	Counts []int
	// Under/Over count finite observations outside [Edges[0], Edges[last]].
	Under, Over int
}

// NewHistogram bins the finite entries of xs into n equal-width bins
// spanning [lo, hi]. It returns an error for n < 1 or hi ≤ lo.
func NewHistogram(xs []float64, n int, lo, hi float64) (*Histogram, error) {
	if n < 1 {
		return nil, fmt.Errorf("stats: histogram needs ≥1 bin, got %d", n)
	}
	if !(hi > lo) {
		return nil, fmt.Errorf("stats: histogram range [%v,%v] invalid", lo, hi)
	}
	h := &Histogram{
		Edges:  make([]float64, n+1),
		Counts: make([]int, n),
	}
	width := (hi - lo) / float64(n)
	for i := 0; i <= n; i++ {
		h.Edges[i] = lo + width*float64(i)
	}
	h.Edges[n] = hi // avoid accumulation error at the top edge
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			continue
		}
		switch {
		case x < lo:
			h.Under++
		case x > hi:
			h.Over++
		case x == hi:
			h.Counts[n-1]++
		default:
			idx := int((x - lo) / width)
			if idx >= n { // guard rounding at the edge
				idx = n - 1
			}
			h.Counts[idx]++
		}
	}
	return h, nil
}

// Total returns the number of binned observations (excluding under/over).
func (h *Histogram) Total() int {
	t := 0
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// Mode returns the midpoint of the fullest bin, or NaN on an empty
// histogram.
func (h *Histogram) Mode() float64 {
	best, bestCount := -1, 0
	for i, c := range h.Counts {
		if c > bestCount {
			best, bestCount = i, c
		}
	}
	if best < 0 {
		return math.NaN()
	}
	return (h.Edges[best] + h.Edges[best+1]) / 2
}
