package stats

import (
	"math/rand"
	"testing"
)

func TestPettittFindsShift(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ys := make([]float64, 40)
	for i := range ys {
		base := 10.0
		if i >= 25 {
			base = 20.0
		}
		ys[i] = base + rng.NormFloat64()
	}
	res, err := Pettitt(ys, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Significant {
		t.Errorf("clear shift not significant: %+v", res)
	}
	if res.Index < 20 || res.Index > 28 {
		t.Errorf("changepoint at %d, want ≈24", res.Index)
	}
}

func TestPettittNoShift(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ys := make([]float64, 40)
	for i := range ys {
		ys[i] = rng.NormFloat64()
	}
	res, err := Pettitt(ys, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if res.Significant {
		t.Errorf("noise flagged as changepoint: %+v", res)
	}
	if res.P < 0 || res.P > 1 {
		t.Errorf("p = %v", res.P)
	}
}

func TestPettittVShape(t *testing.T) {
	// A V-shaped series (like the idle fraction history) has its
	// changepoint at the regime boundary, not the minimum itself; the
	// test still localizes the structural break.
	var ys []float64
	for i := 0; i < 12; i++ {
		ys = append(ys, 70-5*float64(i)) // falling era
	}
	for i := 0; i < 7; i++ {
		ys = append(ys, 12+2*float64(i)) // rising era
	}
	res, err := Pettitt(ys, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Significant {
		t.Errorf("V-shape not significant: %+v", res)
	}
	if res.Index < 5 || res.Index > 14 {
		t.Errorf("changepoint at %d for a fall/rise boundary near 11", res.Index)
	}
}

func TestPettittErrors(t *testing.T) {
	if _, err := Pettitt([]float64{1, 2, 3}, 0.05); err == nil {
		t.Error("too short should error")
	}
	if _, err := Pettitt([]float64{1, 2, 3, 4}, 2); err == nil {
		t.Error("bad alpha should error")
	}
}
