package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return math.Abs(a-b) <= tol
}

func TestMeanBasics(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v, want 2.5", got)
	}
	if got := Mean(nil); !math.IsNaN(got) {
		t.Errorf("Mean(nil) = %v, want NaN", got)
	}
	if got := Mean([]float64{math.NaN(), 2, 4, math.Inf(1)}); got != 3 {
		t.Errorf("Mean skipping non-finite = %v, want 3", got)
	}
}

func TestVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Sample variance of this classic example is 32/7.
	want := 32.0 / 7.0
	if got := Variance(xs); !almostEq(got, want, 1e-12) {
		t.Errorf("Variance = %v, want %v", got, want)
	}
	if got := StdDev(xs); !almostEq(got, math.Sqrt(want), 1e-12) {
		t.Errorf("StdDev = %v", got)
	}
	if got := Variance([]float64{5}); !math.IsNaN(got) {
		t.Errorf("Variance of single value = %v, want NaN", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, math.NaN(), -1, 7, math.Inf(-1)}
	if got := Min(xs); got != -1 {
		t.Errorf("Min = %v, want -1", got)
	}
	if got := Max(xs); got != 7 {
		t.Errorf("Max = %v, want 7", got)
	}
	if !math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) {
		t.Error("Min/Max of empty should be NaN")
	}
}

func TestDescribe(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, math.NaN()}
	d := Describe(xs)
	if d.N != 5 || d.Mean != 3 || d.Median != 3 || d.Min != 1 || d.Max != 5 {
		t.Errorf("Describe = %+v", d)
	}
	if !almostEq(d.Q25, 2, 1e-12) || !almostEq(d.Q75, 4, 1e-12) {
		t.Errorf("quartiles = %v, %v", d.Q25, d.Q75)
	}
}

func TestMeanWithinBounds(t *testing.T) {
	f := func(raw []float64) bool {
		xs := boundTo(raw, 1e6)
		clean := DropNaN(xs)
		if len(clean) == 0 {
			return math.IsNaN(Mean(xs))
		}
		m := Mean(xs)
		return m >= Min(xs)-1e-9 && m <= Max(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVarianceNonNegative(t *testing.T) {
	f := func(raw []float64) bool {
		v := Variance(boundTo(raw, 1e6))
		return math.IsNaN(v) || v >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// boundTo maps arbitrary quick-generated floats into [-limit, limit] so
// property tests exercise the statistics rather than float64 overflow.
// NaN/Inf entries pass through so NaN-handling is still covered.
func boundTo(raw []float64, limit float64) []float64 {
	out := make([]float64, len(raw))
	for i, x := range raw {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			out[i] = x
			continue
		}
		out[i] = math.Mod(x, limit)
	}
	return out
}

func TestDropNaNPreservesOrder(t *testing.T) {
	xs := []float64{5, math.NaN(), 3, math.Inf(1), 1}
	got := DropNaN(xs)
	want := []float64{5, 3, 1}
	if len(got) != len(want) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestSumCount(t *testing.T) {
	xs := []float64{1, 2, math.NaN(), 3}
	if Sum(xs) != 6 {
		t.Errorf("Sum = %v", Sum(xs))
	}
	if Count(xs) != 3 {
		t.Errorf("Count = %v", Count(xs))
	}
}
