// Package stats provides the descriptive-statistics substrate the paper's
// analysis relies on: means, quantiles, dispersion, histograms, boxplot
// summaries, ordinary-least-squares regression, Pearson and Spearman
// correlation, and bootstrap confidence intervals.
//
// Go has no pandas/scipy equivalent, so this package reimplements the
// small, well-defined subset needed by the longitudinal analysis. All
// functions treat NaN inputs explicitly: aggregations skip NaNs (matching
// pandas' default) unless documented otherwise, and functions return NaN
// rather than panicking on empty input.
package stats
