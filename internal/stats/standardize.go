package stats

import "math"

// Standardize z-scores xs against the mean and sample standard
// deviation of its finite entries: each finite value maps to
// (x−mean)/std, while NaN and ±Inf entries pass through as NaN so
// callers can apply their own missing-value policy afterwards.
// Degenerate inputs stay centred instead of exploding: with fewer than
// two finite entries, or a zero deviation, every finite entry maps
// to 0. The input is not modified.
func Standardize(xs []float64) []float64 {
	m := Mean(xs)
	sd := StdDev(xs)
	degenerate := math.IsNaN(m) || math.IsNaN(sd) || sd == 0
	out := make([]float64, len(xs))
	for i, x := range xs {
		switch {
		case math.IsNaN(x) || math.IsInf(x, 0):
			out[i] = math.NaN()
		case degenerate:
			out[i] = 0
		default:
			out[i] = (x - m) / sd
		}
	}
	return out
}

// EuclideanDist returns the Euclidean (L2) distance between two vectors
// of equal length. It panics on a length mismatch: rows compared here
// come from one feature extraction, so differing lengths are a
// programming error, not a data condition.
func EuclideanDist(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("stats: EuclideanDist on vectors of differing length")
	}
	var ss float64
	for i := range a {
		d := a[i] - b[i]
		ss += d * d
	}
	return math.Sqrt(ss)
}
