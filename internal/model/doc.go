// Package model defines the core data types shared by the whole
// specpower-trends system: benchmark runs, per-load-level measurements,
// CPU and system metadata, year-month dates, and the validation reasons
// used by the filtering pipeline.
//
// The types mirror the fields of a published SPECpower_ssj2008 result
// ("Result File Fields", SPEC 2018): every run carries four dates (test,
// submission, hardware availability, software availability), hardware and
// software stack descriptors, and eleven measurement intervals — the
// graduated load levels 100 %, 90 %, …, 10 % plus active idle.
package model
