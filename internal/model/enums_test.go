package model

import "testing"

func TestParseCPUVendor(t *testing.T) {
	cases := []struct {
		in   string
		want CPUVendor
	}{
		{"Intel Xeon Platinum 8490H", VendorIntel},
		{"intel", VendorIntel},
		{"AMD EPYC 9754", VendorAMD},
		{"AMD Opteron 6174", VendorAMD},
		{"Quad-Core AMD Opteron(tm) Processor 2356", VendorAMD},
		{"Sun UltraSPARC T2", VendorOther},
		{"IBM POWER7", VendorOther},
		// The Arm-ecosystem server vendors classify explicitly.
		{"Ampere Altra Max M128-30", VendorOther},
		{"Ampere", VendorOther},
		{"Arm Neoverse N1", VendorOther},
		{"Arm", VendorOther},
		{"Fujitsu A64FX", VendorOther},
		{"A64FX", VendorOther},
		{"", VendorUnknown},
	}
	for _, c := range cases {
		if got := ParseCPUVendor(c.in); got != c.want {
			t.Errorf("ParseCPUVendor(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestParseOSFamily(t *testing.T) {
	cases := []struct {
		in   string
		want OSFamily
	}{
		{"Windows Server 2022 Datacenter", OSWindows},
		{"Microsoft Windows Server 2008 Enterprise x64 Edition", OSWindows},
		{"SUSE Linux Enterprise Server 15 SP4", OSLinux},
		{"Red Hat Enterprise Linux release 9.0 (Plow)", OSLinux},
		{"Ubuntu 22.04 LTS", OSLinux},
		{"Mac OS X Server 10.5", OSMacOS},
		{"Solaris 10", OSOther},
		{"", OSUnknown},
	}
	for _, c := range cases {
		if got := ParseOSFamily(c.in); got != c.want {
			t.Errorf("ParseOSFamily(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestClassifyCPU(t *testing.T) {
	cases := []struct {
		in   string
		want CPUClass
	}{
		{"Intel Xeon Platinum 8490H", ClassXeon},
		{"AMD EPYC 9754", ClassEPYC},
		{"AMD Opteron 2356", ClassOpteron},
		{"Intel Core i9-13900K", ClassNonServer},
		{"Intel Pentium D 950", ClassNonServer},
		{"", ClassUnknown},
	}
	for _, c := range cases {
		if got := ClassifyCPU(c.in); got != c.want {
			t.Errorf("ClassifyCPU(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestIsServerClass(t *testing.T) {
	for _, c := range []CPUClass{ClassXeon, ClassOpteron, ClassEPYC} {
		if !c.IsServerClass() {
			t.Errorf("%v should be server class", c)
		}
	}
	for _, c := range []CPUClass{ClassUnknown, ClassNonServer} {
		if c.IsServerClass() {
			t.Errorf("%v should not be server class", c)
		}
	}
}

func TestEnumStrings(t *testing.T) {
	if VendorIntel.String() != "Intel" || VendorAMD.String() != "AMD" ||
		VendorOther.String() != "Other" || VendorUnknown.String() != "Unknown" {
		t.Error("CPUVendor.String mismatch")
	}
	if OSWindows.String() != "Windows" || OSLinux.String() != "Linux" ||
		OSMacOS.String() != "macOS" {
		t.Error("OSFamily.String mismatch")
	}
	if ClassXeon.String() != "Xeon" || ClassEPYC.String() != "EPYC" ||
		ClassOpteron.String() != "Opteron" {
		t.Error("CPUClass.String mismatch")
	}
}
