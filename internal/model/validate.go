package model

import "fmt"

// RejectReason enumerates why a run is excluded, in the order the paper
// applies its checks. The first group ("parse-consistency") reduces the
// raw corpus of 1017 submissions to 960 parsed runs; the second group
// ("comparability") reduces those to the 676 runs analysed.
type RejectReason int

// Reject reasons, in pipeline order.
const (
	// RejectNone means the run passed every check.
	RejectNone RejectReason = iota

	// Parse-consistency checks (1017 → 960).

	// RejectNotAccepted marks runs not accepted by SPEC (paper: 40).
	RejectNotAccepted
	// RejectAmbiguousDate marks runs whose dates disagree with each
	// other irreconcilably (paper: 3).
	RejectAmbiguousDate
	// RejectImplausibleDate marks dates outside the plausible window,
	// e.g. hardware available years after the test (paper: 4).
	RejectImplausibleDate
	// RejectAmbiguousCPUName marks CPU fields naming several distinct
	// models (paper: 3).
	RejectAmbiguousCPUName
	// RejectMissingNodeCount marks runs that omit the node count (paper: 1).
	RejectMissingNodeCount
	// RejectInconsistentCoreThread marks runs whose reported totals
	// contradict sockets×cores×threads (paper: 5).
	RejectInconsistentCoreThread
	// RejectImplausibleCoreThread marks physically impossible topology
	// values (paper: 1).
	RejectImplausibleCoreThread

	// Comparability filters (960 → 676).

	// RejectNonX86Vendor marks CPUs made by neither Intel nor AMD (paper: 9).
	RejectNonX86Vendor
	// RejectNonServerCPU marks parts marketed neither as Xeon, Opteron,
	// nor EPYC (paper: 6).
	RejectNonServerCPU
	// RejectMultiNodeOrBigSMP marks runs with more than one node or more
	// than two sockets (paper: 269).
	RejectMultiNodeOrBigSMP
)

// String names the reason for reports and tests.
func (rr RejectReason) String() string {
	switch rr {
	case RejectNone:
		return "accepted"
	case RejectNotAccepted:
		return "not accepted by SPEC"
	case RejectAmbiguousDate:
		return "ambiguous dates"
	case RejectImplausibleDate:
		return "implausible dates"
	case RejectAmbiguousCPUName:
		return "ambiguous CPU name"
	case RejectMissingNodeCount:
		return "missing node count"
	case RejectInconsistentCoreThread:
		return "inconsistent core/thread counts"
	case RejectImplausibleCoreThread:
		return "implausible core/thread counts"
	case RejectNonX86Vendor:
		return "CPU neither Intel nor AMD"
	case RejectNonServerCPU:
		return "not a server/workstation CPU"
	case RejectMultiNodeOrBigSMP:
		return "more than one node or more than two sockets"
	default:
		return fmt.Sprintf("RejectReason(%d)", int(rr))
	}
}

// MarshalText renders the reason by name, so JSON funnels are readable
// without knowledge of the Go enum.
func (rr RejectReason) MarshalText() ([]byte, error) {
	return []byte(rr.String()), nil
}

// IsParseStage reports whether the reason belongs to the
// parse-consistency group (applied before the 960-run dataset).
func (rr RejectReason) IsParseStage() bool {
	return rr >= RejectNotAccepted && rr <= RejectImplausibleCoreThread
}

// ParseReasons lists the parse-consistency reasons in pipeline order.
func ParseReasons() []RejectReason {
	return []RejectReason{
		RejectNotAccepted, RejectAmbiguousDate, RejectImplausibleDate,
		RejectAmbiguousCPUName, RejectMissingNodeCount,
		RejectInconsistentCoreThread, RejectImplausibleCoreThread,
	}
}

// ComparabilityReasons lists the comparability reasons in pipeline order.
func ComparabilityReasons() []RejectReason {
	return []RejectReason{
		RejectNonX86Vendor, RejectNonServerCPU, RejectMultiNodeOrBigSMP,
	}
}

// maxPlausibleCoresPerSocket bounds topology sanity. The densest x86
// server parts in the corpus period top out below 200 cores per socket.
const maxPlausibleCoresPerSocket = 256

// CheckParseConsistency applies the parse-stage checks in order and
// returns the first failing reason, or RejectNone.
func CheckParseConsistency(r *Run) RejectReason {
	if !r.Accepted {
		return RejectNotAccepted
	}
	if reasonForDates(r) != RejectNone {
		return reasonForDates(r)
	}
	if ambiguousCPUName(r.CPUName) {
		return RejectAmbiguousCPUName
	}
	if r.Nodes <= 0 {
		return RejectMissingNodeCount
	}
	if rr := checkTopology(r); rr != RejectNone {
		return rr
	}
	return RejectNone
}

func reasonForDates(r *Run) RejectReason {
	// All four dates must parse; HW availability is the analysis key.
	if !r.HWAvail.Valid() || !r.TestDate.Valid() {
		return RejectAmbiguousDate
	}
	// Implausible: hardware generally available long after the test was
	// run (> 18 months), or dates outside the benchmark's lifetime.
	if r.HWAvail.Index() > r.TestDate.Index()+18 {
		return RejectImplausibleDate
	}
	if r.HWAvail.Year < 1995 || r.HWAvail.Year > 2100 {
		return RejectImplausibleDate
	}
	if r.SubmissionDate.Valid() && r.SubmissionDate.Before(r.TestDate) {
		return RejectImplausibleDate
	}
	return RejectNone
}

// ambiguousCPUName reports whether the CPU field names more than one
// distinct model (vendors occasionally list alternates, e.g.
// "Intel Xeon X5570 or X5560").
func ambiguousCPUName(name string) bool {
	return containsWord(name, "or") || containsWord(name, "/")
}

func containsWord(s, w string) bool {
	fields := splitWords(s)
	for _, f := range fields {
		if f == w {
			return true
		}
	}
	return false
}

func splitWords(s string) []string {
	var out []string
	cur := ""
	for _, r := range s {
		if r == ' ' || r == '\t' {
			if cur != "" {
				out = append(out, cur)
				cur = ""
			}
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}

func checkTopology(r *Run) RejectReason {
	if r.SocketsPerNode <= 0 || r.CoresPerSocket <= 0 || r.ThreadsPerCore <= 0 {
		return RejectImplausibleCoreThread
	}
	if r.CoresPerSocket > maxPlausibleCoresPerSocket || r.ThreadsPerCore > 8 {
		return RejectImplausibleCoreThread
	}
	expCores := r.Nodes * r.SocketsPerNode * r.CoresPerSocket
	expThreads := expCores * r.ThreadsPerCore
	if r.TotalCores != expCores || r.TotalThreads != expThreads {
		return RejectInconsistentCoreThread
	}
	return RejectNone
}

// CheckComparability applies the paper's comparability filters in order
// and returns the first failing reason, or RejectNone. It assumes the run
// already passed CheckParseConsistency.
func CheckComparability(r *Run) RejectReason {
	if r.CPUVendor != VendorIntel && r.CPUVendor != VendorAMD {
		return RejectNonX86Vendor
	}
	if !r.CPUClass.IsServerClass() {
		return RejectNonServerCPU
	}
	if r.Nodes > 1 || r.SocketsPerNode > 2 {
		return RejectMultiNodeOrBigSMP
	}
	return RejectNone
}

// Classify runs both check groups and returns the first failing reason.
func Classify(r *Run) RejectReason {
	if rr := CheckParseConsistency(r); rr != RejectNone {
		return rr
	}
	return CheckComparability(r)
}
