package model

import (
	"testing"
	"time"
)

func validRun() *Run {
	r := testRun()
	return r
}

func TestClassifyAccepts(t *testing.T) {
	if got := Classify(validRun()); got != RejectNone {
		t.Fatalf("Classify(valid) = %v", got)
	}
}

func TestParseConsistencyChecks(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Run)
		want RejectReason
	}{
		{"not accepted", func(r *Run) { r.Accepted = false }, RejectNotAccepted},
		{"missing hw date", func(r *Run) { r.HWAvail = YearMonth{} }, RejectAmbiguousDate},
		{"missing test date", func(r *Run) { r.TestDate = YearMonth{} }, RejectAmbiguousDate},
		{"hw long after test", func(r *Run) { r.HWAvail = r.TestDate.AddMonths(24) }, RejectImplausibleDate},
		{"ancient hw date", func(r *Run) {
			r.HWAvail = YM(1901, time.March)
			r.TestDate = YM(1901, time.April)
		}, RejectImplausibleDate},
		{"submission before test", func(r *Run) { r.SubmissionDate = r.TestDate.AddMonths(-3) }, RejectImplausibleDate},
		{"ambiguous cpu or", func(r *Run) { r.CPUName = "Intel Xeon X5570 or X5560" }, RejectAmbiguousCPUName},
		{"ambiguous cpu slash", func(r *Run) { r.CPUName = "Xeon E5-2670 / E5-2680" }, RejectAmbiguousCPUName},
		{"missing node count", func(r *Run) { r.Nodes = 0 }, RejectMissingNodeCount},
		{"inconsistent cores", func(r *Run) { r.TotalCores = 100 }, RejectInconsistentCoreThread},
		{"inconsistent threads", func(r *Run) { r.TotalThreads = 100 }, RejectInconsistentCoreThread},
		{"implausible cores", func(r *Run) {
			r.CoresPerSocket = 1000
			r.TotalCores = 2000
			r.TotalThreads = 4000
		}, RejectImplausibleCoreThread},
		{"zero threads per core", func(r *Run) { r.ThreadsPerCore = 0 }, RejectImplausibleCoreThread},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			r := validRun()
			c.mut(r)
			if got := CheckParseConsistency(r); got != c.want {
				t.Errorf("got %v, want %v", got, c.want)
			}
		})
	}
}

func TestComparabilityChecks(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Run)
		want RejectReason
	}{
		{"sparc", func(r *Run) {
			r.CPUVendor = VendorOther
			r.CPUName = "Sun UltraSPARC T2"
		}, RejectNonX86Vendor},
		{"desktop part", func(r *Run) {
			r.CPUClass = ClassNonServer
			r.CPUName = "Intel Core i7-980X"
			r.CPUVendor = VendorIntel
		}, RejectNonServerCPU},
		{"multi node", func(r *Run) {
			r.Nodes = 4
			r.TotalCores = 4 * 2 * 128
			r.TotalThreads = 4 * 2 * 128 * 2
		}, RejectMultiNodeOrBigSMP},
		{"four sockets", func(r *Run) {
			r.SocketsPerNode = 4
			r.TotalCores = 4 * 128
			r.TotalThreads = 4 * 128 * 2
		}, RejectMultiNodeOrBigSMP},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			r := validRun()
			c.mut(r)
			if got := Classify(r); got != c.want {
				t.Errorf("got %v, want %v", got, c.want)
			}
		})
	}
}

func TestCheckOrderingNotAcceptedWins(t *testing.T) {
	// A run failing several checks must report the first one in pipeline
	// order, matching the paper's sequential funnel accounting.
	r := validRun()
	r.Accepted = false
	r.Nodes = 0
	if got := Classify(r); got != RejectNotAccepted {
		t.Fatalf("got %v, want RejectNotAccepted", got)
	}
}

func TestReasonStageSplit(t *testing.T) {
	for _, rr := range ParseReasons() {
		if !rr.IsParseStage() {
			t.Errorf("%v should be parse stage", rr)
		}
	}
	for _, rr := range ComparabilityReasons() {
		if rr.IsParseStage() {
			t.Errorf("%v should not be parse stage", rr)
		}
	}
	if RejectNone.IsParseStage() {
		t.Error("RejectNone is not a parse-stage reason")
	}
}

func TestReasonStrings(t *testing.T) {
	seen := map[string]bool{}
	all := append(ParseReasons(), ComparabilityReasons()...)
	all = append(all, RejectNone)
	for _, rr := range all {
		s := rr.String()
		if s == "" || seen[s] {
			t.Errorf("reason %d has empty or duplicate string %q", int(rr), s)
		}
		seen[s] = true
	}
	if got := RejectReason(99).String(); got != "RejectReason(99)" {
		t.Errorf("unknown reason string = %q", got)
	}
}
