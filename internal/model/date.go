package model

import (
	"fmt"
	"strings"
	"time"
)

// YearMonth is a calendar month with year precision, the resolution SPEC
// uses for availability dates ("the month at which the system became
// generally available").
type YearMonth struct {
	Year  int
	Month time.Month
}

// YM is a convenience constructor.
func YM(year int, month time.Month) YearMonth {
	return YearMonth{Year: year, Month: month}
}

// IsZero reports whether ym is the zero value (no date recorded).
func (ym YearMonth) IsZero() bool {
	return ym.Year == 0 && ym.Month == 0
}

// Valid reports whether ym denotes a real calendar month.
func (ym YearMonth) Valid() bool {
	return ym.Year > 0 && ym.Month >= time.January && ym.Month <= time.December
}

// Before reports whether ym is strictly earlier than other.
func (ym YearMonth) Before(other YearMonth) bool {
	if ym.Year != other.Year {
		return ym.Year < other.Year
	}
	return ym.Month < other.Month
}

// After reports whether ym is strictly later than other.
func (ym YearMonth) After(other YearMonth) bool {
	return other.Before(ym)
}

// Index returns the number of months since January of year 0, a
// convenient totally ordered integer form.
func (ym YearMonth) Index() int {
	return ym.Year*12 + int(ym.Month) - 1
}

// FromIndex is the inverse of Index.
func FromIndex(idx int) YearMonth {
	return YearMonth{Year: idx / 12, Month: time.Month(idx%12 + 1)}
}

// AddMonths returns ym shifted by n months (n may be negative).
func (ym YearMonth) AddMonths(n int) YearMonth {
	return FromIndex(ym.Index() + n)
}

// Frac returns the date as a fractional year (e.g. Jul 2017 ≈ 2017.54),
// the x-coordinate used by all trend plots.
func (ym YearMonth) Frac() float64 {
	return float64(ym.Year) + (float64(ym.Month)-0.5)/12
}

// String renders the SPEC report style, e.g. "Feb-2023".
func (ym YearMonth) String() string {
	if ym.IsZero() {
		return "-"
	}
	return fmt.Sprintf("%s-%04d", ym.Month.String()[:3], ym.Year)
}

var monthAbbrev = map[string]time.Month{
	"jan": time.January, "feb": time.February, "mar": time.March,
	"apr": time.April, "may": time.May, "jun": time.June,
	"jul": time.July, "aug": time.August, "sep": time.September,
	"oct": time.October, "nov": time.November, "dec": time.December,
}

// ParseYearMonth parses the date spellings found in SPEC result files:
// "Feb-2023", "Feb 2023", "Feb-23", "02/2023", and "2023-02".
// It returns an error for anything it cannot understand unambiguously.
func ParseYearMonth(s string) (YearMonth, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "-" {
		return YearMonth{}, fmt.Errorf("model: empty date")
	}
	norm := strings.NewReplacer("/", " ", "-", " ", ",", " ").Replace(s)
	fields := strings.Fields(norm)
	if len(fields) != 2 {
		return YearMonth{}, fmt.Errorf("model: cannot parse date %q", s)
	}
	// Try "Mon Year" first.
	if m, ok := monthAbbrev[strings.ToLower(trunc3(fields[0]))]; ok {
		year, err := parseYear(fields[1])
		if err != nil {
			return YearMonth{}, fmt.Errorf("model: bad year in date %q: %w", s, err)
		}
		return YearMonth{Year: year, Month: m}, nil
	}
	// Numeric forms: "MM YYYY" or "YYYY MM".
	a, errA := atoiStrict(fields[0])
	b, errB := atoiStrict(fields[1])
	if errA != nil || errB != nil {
		return YearMonth{}, fmt.Errorf("model: cannot parse date %q", s)
	}
	switch {
	case a >= 1 && a <= 12 && b >= 1000:
		return YearMonth{Year: b, Month: time.Month(a)}, nil
	case b >= 1 && b <= 12 && a >= 1000:
		return YearMonth{Year: a, Month: time.Month(b)}, nil
	}
	return YearMonth{}, fmt.Errorf("model: ambiguous numeric date %q", s)
}

func trunc3(s string) string {
	if len(s) > 3 {
		return s[:3]
	}
	return s
}

func parseYear(s string) (int, error) {
	y, err := atoiStrict(s)
	if err != nil {
		return 0, err
	}
	switch {
	case y >= 1000:
		return y, nil
	case y >= 0 && y < 100:
		// Two-digit year: SPEC Power spans 2005–2099 in practice.
		return 2000 + y, nil
	default:
		return 0, fmt.Errorf("year %d out of range", y)
	}
}

func atoiStrict(s string) (int, error) {
	if s == "" {
		return 0, fmt.Errorf("empty number")
	}
	n := 0
	for _, r := range s {
		if r < '0' || r > '9' {
			return 0, fmt.Errorf("non-digit %q", r)
		}
		n = n*10 + int(r-'0')
	}
	return n, nil
}
