package model

import (
	"testing"
	"testing/quick"
	"time"
)

func TestParseYearMonth(t *testing.T) {
	cases := []struct {
		in      string
		want    YearMonth
		wantErr bool
	}{
		{"Feb-2023", YM(2023, time.February), false},
		{"Feb 2023", YM(2023, time.February), false},
		{"feb-23", YM(2023, time.February), false},
		{"Aug 23", YM(2023, time.August), false},
		{"02/2023", YM(2023, time.February), false},
		{"2023-02", YM(2023, time.February), false},
		{"December-2007", YM(2007, time.December), false},
		{"Jul, 2017", YM(2017, time.July), false},
		{"  Nov-2011 ", YM(2011, time.November), false},
		{"", YearMonth{}, true},
		{"-", YearMonth{}, true},
		{"2023", YearMonth{}, true},
		{"13/13", YearMonth{}, true}, // no valid month reading
		{"garbage-2023", YearMonth{}, true},
		{"02-03", YearMonth{}, true}, // ambiguous numeric
	}
	for _, c := range cases {
		got, err := ParseYearMonth(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("ParseYearMonth(%q) = %v, want error", c.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseYearMonth(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseYearMonth(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestYearMonthRoundTripString(t *testing.T) {
	ym := YM(2019, time.September)
	got, err := ParseYearMonth(ym.String())
	if err != nil {
		t.Fatalf("parse %q: %v", ym.String(), err)
	}
	if got != ym {
		t.Fatalf("round trip %v -> %q -> %v", ym, ym.String(), got)
	}
}

func TestYearMonthOrdering(t *testing.T) {
	a := YM(2017, time.June)
	b := YM(2017, time.July)
	c := YM(2018, time.January)
	if !a.Before(b) || !b.Before(c) || !a.Before(c) {
		t.Fatal("Before ordering broken")
	}
	if !c.After(a) {
		t.Fatal("After ordering broken")
	}
	if a.Before(a) || a.After(a) {
		t.Fatal("strict ordering violated for equal values")
	}
}

func TestYearMonthIndexInverse(t *testing.T) {
	f := func(y uint16, m uint8) bool {
		ym := YM(int(y%200)+1900, time.Month(int(m%12)+1))
		return FromIndex(ym.Index()) == ym
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestYearMonthIndexMonotone(t *testing.T) {
	f := func(y uint16, m uint8, dy uint8) bool {
		ym := YM(int(y%200)+1900, time.Month(int(m%12)+1))
		later := ym.AddMonths(int(dy%120) + 1)
		return ym.Index() < later.Index() && ym.Before(later)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddMonths(t *testing.T) {
	cases := []struct {
		in   YearMonth
		n    int
		want YearMonth
	}{
		{YM(2020, time.January), 1, YM(2020, time.February)},
		{YM(2020, time.December), 1, YM(2021, time.January)},
		{YM(2020, time.January), -1, YM(2019, time.December)},
		{YM(2020, time.June), 12, YM(2021, time.June)},
		{YM(2020, time.June), -18, YM(2018, time.December)},
		{YM(2020, time.June), 0, YM(2020, time.June)},
	}
	for _, c := range cases {
		if got := c.in.AddMonths(c.n); got != c.want {
			t.Errorf("%v.AddMonths(%d) = %v, want %v", c.in, c.n, got, c.want)
		}
	}
}

func TestFrac(t *testing.T) {
	jan := YM(2017, time.January).Frac()
	dec := YM(2017, time.December).Frac()
	if !(jan > 2017.0 && jan < 2017.1) {
		t.Errorf("Frac(Jan 2017) = %v", jan)
	}
	if !(dec > 2017.9 && dec < 2018.0) {
		t.Errorf("Frac(Dec 2017) = %v", dec)
	}
	if jan >= dec {
		t.Errorf("Frac not monotone within year: %v >= %v", jan, dec)
	}
}

func TestZeroDate(t *testing.T) {
	var ym YearMonth
	if !ym.IsZero() || ym.Valid() {
		t.Fatal("zero YearMonth should be zero and invalid")
	}
	if ym.String() != "-" {
		t.Fatalf("zero String = %q", ym.String())
	}
}
