package model

import (
	"fmt"
	"math"
	"sort"
)

// LoadPoint is one measurement interval of a SPECpower_ssj2008 run: a
// target load percentage, the throughput achieved during the interval,
// and the average wall power drawn.
type LoadPoint struct {
	// TargetLoad is the calibrated load percentage: 100, 90, …, 10,
	// or 0 for the active-idle interval.
	TargetLoad int
	// ActualOps is the achieved throughput in ssj_ops (0 at active idle).
	ActualOps float64
	// AvgPower is the average AC power in watts over the interval.
	AvgPower float64
}

// OpsPerWatt is the interval's energy efficiency. It returns 0 for the
// active-idle interval and for non-positive power readings.
func (lp LoadPoint) OpsPerWatt() float64 {
	if lp.AvgPower <= 0 {
		return 0
	}
	return lp.ActualOps / lp.AvgPower
}

// StandardLoads lists the eleven target loads of a compliant run in
// report order: 100 % down to 10 % in steps of ten, then active idle.
func StandardLoads() []int {
	return []int{100, 90, 80, 70, 60, 50, 40, 30, 20, 10, 0}
}

// Run is one parsed SPECpower_ssj2008 result.
type Run struct {
	// ID is the SPEC publication identifier, e.g. "power_ssj2008-20230214-01234".
	ID string
	// Accepted reports whether SPEC accepted the submission. The paper
	// discards runs "that have not been accepted by SPEC".
	Accepted bool

	// TestDate is when the benchmark was executed.
	TestDate YearMonth
	// SubmissionDate is when the result was submitted to SPEC.
	SubmissionDate YearMonth
	// HWAvail is the hardware general-availability date; the paper bins
	// all trends by this date.
	HWAvail YearMonth
	// SWAvail is the software availability date.
	SWAvail YearMonth

	// SystemVendor and SystemName identify the SUT ("Lenovo", "SR645 V3").
	SystemVendor string
	SystemName   string

	// CPUName is the marketing name, e.g. "AMD EPYC 9754 2.25 GHz".
	CPUName string
	// CPUVendor is the classified manufacturer.
	CPUVendor CPUVendor
	// CPUClass is the classified market segment.
	CPUClass CPUClass

	// Nodes is the number of nodes in the SUT (0 = missing in report).
	Nodes int
	// SocketsPerNode is the number of populated CPU sockets per node.
	SocketsPerNode int
	// CoresPerSocket and ThreadsPerCore describe the topology; TotalCores
	// and TotalThreads are the values reported in the result file and are
	// cross-checked against the topology during validation.
	CoresPerSocket int
	ThreadsPerCore int
	TotalCores     int
	TotalThreads   int

	// NominalGHz is the base frequency; TDPWatts the rated thermal
	// design power per socket; MemGB the installed memory.
	NominalGHz float64
	TDPWatts   float64
	MemGB      int
	// PSUWatts is the rated output of one power supply.
	PSUWatts int

	// OSName is the full OS string; OSFamily its classification.
	OSName   string
	OSFamily OSFamily
	// JVM is the Java runtime used by the ssj workload.
	JVM string

	// Points are the measurement intervals, in report order
	// (100 % … 10 %, then active idle).
	Points []LoadPoint
}

// Point returns the load point with the given target load and whether it
// exists.
func (r *Run) Point(target int) (LoadPoint, bool) {
	for _, p := range r.Points {
		if p.TargetLoad == target {
			return p, true
		}
	}
	return LoadPoint{}, false
}

// FullLoadPower returns the average power at the 100 % interval, or NaN
// if the run lacks one.
func (r *Run) FullLoadPower() float64 {
	if p, ok := r.Point(100); ok {
		return p.AvgPower
	}
	return math.NaN()
}

// IdlePower returns the active-idle average power, or NaN if absent.
func (r *Run) IdlePower() float64 {
	if p, ok := r.Point(0); ok {
		return p.AvgPower
	}
	return math.NaN()
}

// IdleFraction is idle power divided by full-load power (Figure 5).
func (r *Run) IdleFraction() float64 {
	full := r.FullLoadPower()
	idle := r.IdlePower()
	if math.IsNaN(full) || math.IsNaN(idle) || full <= 0 {
		return math.NaN()
	}
	return idle / full
}

// OverallOpsPerWatt is the headline SPEC Power score: the sum of ssj_ops
// across all load levels divided by the sum of average power across all
// levels including active idle.
func (r *Run) OverallOpsPerWatt() float64 {
	var ops, pw float64
	for _, p := range r.Points {
		ops += p.ActualOps
		pw += p.AvgPower
	}
	if pw <= 0 {
		return math.NaN()
	}
	return ops / pw
}

// EfficiencyAt returns ssj_ops/W at one target load, or NaN if the point
// is absent or unpowered.
func (r *Run) EfficiencyAt(target int) float64 {
	p, ok := r.Point(target)
	if !ok || p.AvgPower <= 0 {
		return math.NaN()
	}
	return p.ActualOps / p.AvgPower
}

// RelativeEfficiencyAt is the interval efficiency scaled to the full-load
// efficiency (Figure 4). A value of 1 at every level corresponds to
// perfect energy proportionality.
func (r *Run) RelativeEfficiencyAt(target int) float64 {
	full := r.EfficiencyAt(100)
	at := r.EfficiencyAt(target)
	if math.IsNaN(full) || math.IsNaN(at) || full <= 0 {
		return math.NaN()
	}
	return at / full
}

// ExtrapolatedIdlePower performs the paper's linear extrapolation of the
// power consumed at 20 % and 10 % load down to 0 % load: the power the
// system would draw at active idle absent idle-specific optimizations.
func (r *Run) ExtrapolatedIdlePower() float64 {
	p10, ok10 := r.Point(10)
	p20, ok20 := r.Point(20)
	if !ok10 || !ok20 {
		return math.NaN()
	}
	// Two points determine the line: P(0) = P10 - (P20-P10)/(20-10)*10.
	slope := (p20.AvgPower - p10.AvgPower) / 10
	return p10.AvgPower - slope*10
}

// ExtrapolatedIdleQuotient divides the extrapolated by the measured
// active-idle power (Figure 6). Values above 1 indicate effective
// idle-specific power optimization; 1 indicates none.
func (r *Run) ExtrapolatedIdleQuotient() float64 {
	idle := r.IdlePower()
	ext := r.ExtrapolatedIdlePower()
	if math.IsNaN(idle) || math.IsNaN(ext) || idle <= 0 {
		return math.NaN()
	}
	return ext / idle
}

// TotalSockets is the populated socket count across all nodes.
func (r *Run) TotalSockets() int {
	return r.Nodes * r.SocketsPerNode
}

// PowerPerSocketAt divides interval power by the total socket count
// (Figure 2 uses the 100 % interval).
func (r *Run) PowerPerSocketAt(target int) float64 {
	s := r.TotalSockets()
	p, ok := r.Point(target)
	if s <= 0 || !ok {
		return math.NaN()
	}
	return p.AvgPower / float64(s)
}

// SortPoints orders the measurement intervals in report order
// (descending target load, active idle last).
func (r *Run) SortPoints() {
	sort.Slice(r.Points, func(i, j int) bool {
		return r.Points[i].TargetLoad > r.Points[j].TargetLoad
	})
}

// Clone returns a deep copy of the run.
func (r *Run) Clone() *Run {
	c := *r
	c.Points = append([]LoadPoint(nil), r.Points...)
	return &c
}

// String returns a compact one-line description for logs and errors.
func (r *Run) String() string {
	return fmt.Sprintf("%s [%s %s, %dN×%dS, HW %s, %.0f ops/W]",
		r.ID, r.CPUVendor, r.CPUName, r.Nodes, r.SocketsPerNode,
		r.HWAvail, r.OverallOpsPerWatt())
}
