package model

import "strings"

// CPUVendor identifies the processor manufacturer.
type CPUVendor int

// CPU vendors observed in the SPEC Power corpus.
const (
	VendorUnknown CPUVendor = iota
	VendorIntel
	VendorAMD
	VendorOther // e.g. Sun UltraSPARC, IBM POWER, Ampere
)

// String returns the display name used in figures.
func (v CPUVendor) String() string {
	switch v {
	case VendorIntel:
		return "Intel"
	case VendorAMD:
		return "AMD"
	case VendorOther:
		return "Other"
	default:
		return "Unknown"
	}
}

// ParseCPUVendor classifies a free-form vendor or CPU-name string.
// The Arm-ecosystem server vendors that appear in newer submissions —
// Ampere (Altra), Arm-branded parts (Neoverse), and Fujitsu (A64FX) —
// classify explicitly rather than through the catch-all, so a rename
// of the fallback can never silently reclassify them.
func ParseCPUVendor(s string) CPUVendor {
	l := strings.ToLower(s)
	switch {
	case strings.Contains(l, "intel") || strings.Contains(l, "xeon"):
		return VendorIntel
	case strings.Contains(l, "amd") || strings.Contains(l, "epyc") ||
		strings.Contains(l, "opteron"):
		return VendorAMD
	case strings.Contains(l, "ampere") || strings.Contains(l, "altra") ||
		strings.Contains(l, "arm") || strings.Contains(l, "neoverse") ||
		strings.Contains(l, "fujitsu") || strings.Contains(l, "a64fx"):
		return VendorOther
	case l == "":
		return VendorUnknown
	default:
		return VendorOther
	}
}

// OSFamily is the coarse operating-system classification of Figure 1.
type OSFamily int

// OS families observed in the SPEC Power corpus.
const (
	OSUnknown OSFamily = iota
	OSWindows
	OSLinux
	OSMacOS
	OSOther // Solaris, AIX, …
)

// String returns the display name used in figures.
func (o OSFamily) String() string {
	switch o {
	case OSWindows:
		return "Windows"
	case OSLinux:
		return "Linux"
	case OSMacOS:
		return "macOS"
	case OSOther:
		return "Other"
	default:
		return "Unknown"
	}
}

// ParseOSFamily classifies a free-form operating-system name.
func ParseOSFamily(s string) OSFamily {
	l := strings.ToLower(s)
	switch {
	case strings.Contains(l, "windows"):
		return OSWindows
	case strings.Contains(l, "linux") || strings.Contains(l, "red hat") ||
		strings.Contains(l, "suse") || strings.Contains(l, "ubuntu") ||
		strings.Contains(l, "centos"):
		return OSLinux
	case strings.Contains(l, "mac os") || strings.Contains(l, "macos") ||
		strings.Contains(l, "os x"):
		return OSMacOS
	case l == "":
		return OSUnknown
	default:
		return OSOther
	}
}

// CPUClass is the market segment of the processor. The paper keeps only
// server/workstation parts: Xeon, Opteron, and EPYC.
type CPUClass int

// CPU market classes.
const (
	ClassUnknown CPUClass = iota
	ClassXeon
	ClassOpteron
	ClassEPYC
	ClassNonServer // desktop/embedded parts (Core, Athlon, Pentium, …)
)

// String returns the display name of the class.
func (c CPUClass) String() string {
	switch c {
	case ClassXeon:
		return "Xeon"
	case ClassOpteron:
		return "Opteron"
	case ClassEPYC:
		return "EPYC"
	case ClassNonServer:
		return "NonServer"
	default:
		return "Unknown"
	}
}

// ClassifyCPU derives the market class from a CPU model name.
func ClassifyCPU(name string) CPUClass {
	l := strings.ToLower(name)
	switch {
	case strings.Contains(l, "xeon"):
		return ClassXeon
	case strings.Contains(l, "opteron"):
		return ClassOpteron
	case strings.Contains(l, "epyc"):
		return ClassEPYC
	case l == "":
		return ClassUnknown
	default:
		return ClassNonServer
	}
}

// IsServerClass reports whether the class is one the paper keeps
// (marketed as Xeon, Opteron, or EPYC).
func (c CPUClass) IsServerClass() bool {
	return c == ClassXeon || c == ClassOpteron || c == ClassEPYC
}
