package model

import (
	"math"
	"testing"
	"time"
)

// testRun builds a plausible dual-socket run with a linear-ish power
// curve: P(load) = idle + (full-idle)*load/100 with an idle-optimization
// dip at the 0 % point.
func testRun() *Run {
	r := &Run{
		ID:             "power_ssj2008-20230801-00001",
		Accepted:       true,
		TestDate:       YM(2023, time.July),
		SubmissionDate: YM(2023, time.August),
		HWAvail:        YM(2023, time.August),
		SWAvail:        YM(2023, time.June),
		SystemVendor:   "Lenovo",
		SystemName:     "ThinkSystem SR645 V3",
		CPUName:        "AMD EPYC 9754",
		CPUVendor:      VendorAMD,
		CPUClass:       ClassEPYC,
		Nodes:          1,
		SocketsPerNode: 2,
		CoresPerSocket: 128,
		ThreadsPerCore: 2,
		TotalCores:     256,
		TotalThreads:   512,
		NominalGHz:     2.25,
		TDPWatts:       360,
		MemGB:          384,
		PSUWatts:       1100,
		OSName:         "Windows Server 2022 Datacenter",
		OSFamily:       OSWindows,
		JVM:            "Oracle Java HotSpot 64-Bit Server VM",
	}
	maxOps := 4.0e6
	full, idle := 720.0, 120.0
	for _, load := range StandardLoads() {
		f := float64(load) / 100
		p := LoadPoint{
			TargetLoad: load,
			ActualOps:  maxOps * f,
			AvgPower:   idle + (full-idle)*f,
		}
		if load == 0 {
			p.AvgPower = 90 // idle-specific optimization below the linear trend
		}
		r.Points = append(r.Points, p)
	}
	return r
}

func TestPointLookup(t *testing.T) {
	r := testRun()
	if _, ok := r.Point(100); !ok {
		t.Fatal("missing 100% point")
	}
	if _, ok := r.Point(55); ok {
		t.Fatal("unexpected 55% point")
	}
	if len(r.Points) != 11 {
		t.Fatalf("want 11 standard points, got %d", len(r.Points))
	}
}

func TestDerivedPowerMetrics(t *testing.T) {
	r := testRun()
	if got := r.FullLoadPower(); got != 720 {
		t.Errorf("FullLoadPower = %v, want 720", got)
	}
	if got := r.IdlePower(); got != 90 {
		t.Errorf("IdlePower = %v, want 90", got)
	}
	wantFrac := 90.0 / 720.0
	if got := r.IdleFraction(); math.Abs(got-wantFrac) > 1e-12 {
		t.Errorf("IdleFraction = %v, want %v", got, wantFrac)
	}
	if got := r.PowerPerSocketAt(100); got != 360 {
		t.Errorf("PowerPerSocketAt(100) = %v, want 360", got)
	}
	if got := r.TotalSockets(); got != 2 {
		t.Errorf("TotalSockets = %d, want 2", got)
	}
}

func TestOverallOpsPerWatt(t *testing.T) {
	r := testRun()
	var ops, pw float64
	for _, p := range r.Points {
		ops += p.ActualOps
		pw += p.AvgPower
	}
	want := ops / pw
	if got := r.OverallOpsPerWatt(); math.Abs(got-want) > 1e-9 {
		t.Errorf("OverallOpsPerWatt = %v, want %v", got, want)
	}
}

func TestRelativeEfficiency(t *testing.T) {
	r := testRun()
	if got := r.RelativeEfficiencyAt(100); math.Abs(got-1) > 1e-12 {
		t.Errorf("RelativeEfficiencyAt(100) = %v, want 1", got)
	}
	// With a positive idle intercept the partial-load efficiency is below
	// full-load efficiency.
	if got := r.RelativeEfficiencyAt(50); got >= 1 {
		t.Errorf("RelativeEfficiencyAt(50) = %v, want < 1", got)
	}
}

func TestExtrapolatedIdle(t *testing.T) {
	r := testRun()
	// Power curve is linear with intercept 120, so extrapolation from
	// 10 % and 20 % must recover 120 exactly.
	if got := r.ExtrapolatedIdlePower(); math.Abs(got-120) > 1e-9 {
		t.Errorf("ExtrapolatedIdlePower = %v, want 120", got)
	}
	want := 120.0 / 90.0
	if got := r.ExtrapolatedIdleQuotient(); math.Abs(got-want) > 1e-9 {
		t.Errorf("ExtrapolatedIdleQuotient = %v, want %v", got, want)
	}
}

func TestNaNOnMissingPoints(t *testing.T) {
	r := &Run{}
	for _, got := range []float64{
		r.FullLoadPower(), r.IdlePower(), r.IdleFraction(),
		r.ExtrapolatedIdlePower(), r.ExtrapolatedIdleQuotient(),
		r.EfficiencyAt(50), r.RelativeEfficiencyAt(50),
		r.PowerPerSocketAt(100), r.OverallOpsPerWatt(),
	} {
		if !math.IsNaN(got) {
			t.Errorf("want NaN on empty run, got %v", got)
		}
	}
}

func TestSortPoints(t *testing.T) {
	r := testRun()
	// Shuffle deterministically.
	r.Points[0], r.Points[5] = r.Points[5], r.Points[0]
	r.Points[2], r.Points[10] = r.Points[10], r.Points[2]
	r.SortPoints()
	for i := 1; i < len(r.Points); i++ {
		if r.Points[i-1].TargetLoad <= r.Points[i].TargetLoad {
			t.Fatalf("points not in descending order at %d", i)
		}
	}
	if r.Points[len(r.Points)-1].TargetLoad != 0 {
		t.Fatal("active idle must sort last")
	}
}

func TestClone(t *testing.T) {
	r := testRun()
	c := r.Clone()
	c.Points[0].AvgPower = 9999
	c.CPUName = "changed"
	if r.Points[0].AvgPower == 9999 || r.CPUName == "changed" {
		t.Fatal("Clone must deep-copy points and not alias fields")
	}
}

func TestLoadPointOpsPerWatt(t *testing.T) {
	lp := LoadPoint{TargetLoad: 50, ActualOps: 1000, AvgPower: 200}
	if got := lp.OpsPerWatt(); got != 5 {
		t.Errorf("OpsPerWatt = %v, want 5", got)
	}
	zero := LoadPoint{TargetLoad: 0, ActualOps: 0, AvgPower: 0}
	if got := zero.OpsPerWatt(); got != 0 {
		t.Errorf("OpsPerWatt on unpowered = %v, want 0", got)
	}
}
