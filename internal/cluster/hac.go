package cluster

import (
	"fmt"
	"sort"

	"repro/internal/par"
	"repro/internal/stats"
)

// Linkage selects how HAC measures the distance between clusters.
type Linkage int

// The supported linkage criteria.
const (
	LinkageAverage  Linkage = iota // UPGMA: size-weighted mean pair distance
	LinkageSingle                  // nearest pair
	LinkageComplete                // farthest pair
)

// String returns the flag spelling of the linkage.
func (l Linkage) String() string {
	switch l {
	case LinkageAverage:
		return "average"
	case LinkageSingle:
		return "single"
	case LinkageComplete:
		return "complete"
	default:
		return fmt.Sprintf("Linkage(%d)", int(l))
	}
}

// ParseLinkage resolves a flag spelling to a Linkage.
func ParseLinkage(s string) (Linkage, error) {
	switch s {
	case "average":
		return LinkageAverage, nil
	case "single":
		return LinkageSingle, nil
	case "complete":
		return LinkageComplete, nil
	default:
		return 0, fmt.Errorf("cluster: unknown linkage %q (average, single, complete)", s)
	}
}

// HACOptions configures one agglomerative run. Exactly one stopping
// rule applies: a positive Cut stops merging once the next merge would
// exceed that distance (the MicroTrace-style threshold cut); otherwise
// merging stops at K clusters.
type HACOptions struct {
	Linkage Linkage
	// K is the target cluster count, used when Cut is zero.
	K int
	// Cut is the dendrogram distance threshold; > 0 overrides K.
	Cut float64
	// Workers bounds the parallel distance-matrix build (0 = GOMAXPROCS).
	Workers int
	// OnMergeBatch, when non-nil, is called after every mergeBatchSize
	// dendrogram merges (and once for the remainder) with the 1-based
	// batch number, the merges in the batch, and the largest merge
	// distance seen in it. Purely observational, like
	// KMeansOptions.OnIteration.
	OnMergeBatch func(batch, merges int, maxDist float64)
}

// mergeBatchSize is the OnMergeBatch granularity: coarse enough that a
// 676-row dendrogram reports ~20 events instead of ~675, fine enough
// that a trace still shows where the merge loop spends its time.
const mergeBatchSize = 32

// Merge is one dendrogram step: clusters represented by rows A and B
// (A < B, each the smallest row index of its cluster) merged at the
// given linkage distance into a cluster of Size members.
type Merge struct {
	A, B int
	Dist float64
	Size int
}

// HACResult is one cut dendrogram.
type HACResult struct {
	// K is the resulting cluster count.
	K int
	// Labels assigns each matrix row a cluster in [0, K), numbered by
	// ascending smallest member row, so equal inputs give equal labels.
	Labels []int
	// Merges is the dendrogram prefix that was applied, in merge order.
	Merges []Merge
}

// HAC clusters the matrix rows bottom-up: every row starts as its own
// cluster and the closest pair merges until the stopping rule bites.
// Cluster distances update through the Lance–Williams recurrence, so
// single, complete, and average linkage share one O(n²)-memory
// implementation. The pairwise distance matrix builds on the worker
// pool; the merge loop itself is serial and index-ordered, hence
// deterministic.
func HAC(m *Matrix, opt HACOptions) (*HACResult, error) {
	n := len(m.Rows)
	if n == 0 {
		return nil, fmt.Errorf("cluster: HAC on an empty matrix")
	}
	if opt.Cut < 0 {
		return nil, fmt.Errorf("cluster: negative cut %v", opt.Cut)
	}
	if opt.Cut == 0 && (opt.K < 1 || opt.K > n) {
		return nil, fmt.Errorf("cluster: k = %d outside [1, %d rows]", opt.K, n)
	}
	switch opt.Linkage {
	case LinkageAverage, LinkageSingle, LinkageComplete:
	default:
		return nil, fmt.Errorf("cluster: unknown linkage %d", int(opt.Linkage))
	}

	// Full symmetric distance matrix; rows fill in parallel (disjoint
	// writes), the mirror pass is serial.
	dm := make([][]float64, n)
	_ = par.ForEach(n, opt.Workers, func(i int) error {
		row := make([]float64, n)
		for j := 0; j < i; j++ {
			row[j] = stats.EuclideanDist(m.Rows[i], m.Rows[j])
		}
		dm[i] = row
		return nil
	})
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dm[i][j] = dm[j][i]
		}
	}

	active := make([]bool, n)
	size := make([]int, n)
	members := make([][]int, n)
	for i := 0; i < n; i++ {
		active[i] = true
		size[i] = 1
		members[i] = []int{i}
	}
	// nearest[i] caches the closest active partner of active cluster i.
	nearest := make([]int, n)
	for i := 0; i < n; i++ {
		nearest[i] = scanNearest(dm, active, i)
	}

	res := &HACResult{}
	clusters := n
	targetK := opt.K
	if opt.Cut > 0 {
		targetK = 1
	}
	// Batch accounting for OnMergeBatch; all zero-cost when unset.
	var batches, pending int
	var batchMax float64
	flushBatch := func() {
		if pending == 0 || opt.OnMergeBatch == nil {
			pending, batchMax = 0, 0
			return
		}
		batches++
		opt.OnMergeBatch(batches, pending, batchMax)
		pending, batchMax = 0, 0
	}
	for clusters > targetK {
		// The globally closest pair, ties to the lowest representative.
		best := -1
		for i := 0; i < n; i++ {
			if !active[i] || nearest[i] < 0 {
				continue
			}
			if best < 0 || dm[i][nearest[i]] < dm[best][nearest[best]] {
				best = i
			}
		}
		if best < 0 {
			break // single active cluster
		}
		i, j := best, nearest[best]
		if j < i {
			i, j = j, i
		}
		d := dm[i][j]
		if opt.Cut > 0 && d > opt.Cut {
			break
		}
		// Lance–Williams: fold cluster j into i, keeping the smaller
		// representative index.
		for k := 0; k < n; k++ {
			if !active[k] || k == i || k == j {
				continue
			}
			dik, djk := dm[i][k], dm[j][k]
			var nd float64
			switch opt.Linkage {
			case LinkageSingle:
				nd = min(dik, djk)
			case LinkageComplete:
				nd = max(dik, djk)
			case LinkageAverage:
				si, sj := float64(size[i]), float64(size[j])
				nd = (si*dik + sj*djk) / (si + sj)
			}
			dm[i][k], dm[k][i] = nd, nd
		}
		active[j] = false
		size[i] += size[j]
		members[i] = append(members[i], members[j]...)
		res.Merges = append(res.Merges, Merge{A: i, B: j, Dist: d, Size: size[i]})
		clusters--
		pending++
		batchMax = max(batchMax, d)
		if pending == mergeBatchSize {
			flushBatch()
		}
		// Refresh the nearest cache: i's own partner always, and any
		// cluster whose cached partner was i or j (their distance to i
		// changed, and j is gone); everyone else can only have gotten
		// closer to i, which a cheap comparison catches.
		nearest[i] = scanNearest(dm, active, i)
		for k := 0; k < n; k++ {
			if !active[k] || k == i {
				continue
			}
			if nearest[k] == i || nearest[k] == j {
				nearest[k] = scanNearest(dm, active, k)
			} else if nearest[k] >= 0 && dm[k][i] < dm[k][nearest[k]] {
				nearest[k] = i
			}
		}
	}
	flushBatch()

	// Label clusters by ascending representative (= smallest member) so
	// numbering is reproducible.
	reps := make([]int, 0, clusters)
	for i := 0; i < n; i++ {
		if active[i] {
			reps = append(reps, i)
		}
	}
	sort.Ints(reps)
	res.K = len(reps)
	res.Labels = make([]int, n)
	for label, rep := range reps {
		for _, row := range members[rep] {
			res.Labels[row] = label
		}
	}
	return res, nil
}

// scanNearest finds the closest active partner of i (ties to the
// lowest index), or -1 when i is the only active cluster.
func scanNearest(dm [][]float64, active []bool, i int) int {
	best := -1
	for j := range active {
		if !active[j] || j == i {
			continue
		}
		if best < 0 || dm[i][j] < dm[i][best] {
			best = j
		}
	}
	return best
}
