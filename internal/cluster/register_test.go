package cluster_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"strconv"
	"testing"

	"repro/internal/analysis"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/synth"
)

// synthDataset classifies the default synthetic corpus — the "synth:"
// corpus the acceptance criteria cluster over.
func synthDataset(t *testing.T) *analysis.Dataset {
	t.Helper()
	runs, err := synth.Generate(synth.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ds := analysis.BuildDataset(runs)
	ds.Workers = 4
	return ds
}

func lookup(t *testing.T, name string) analysis.Registration {
	t.Helper()
	reg, ok := analysis.Lookup(name)
	if !ok {
		t.Fatalf("analysis %q not registered", name)
	}
	return reg
}

// runOn computes a registered analysis over ds with raw parameter
// assignments (nil = defaults), resolving them against the declared
// schema the way every serving surface does.
func runOn(t *testing.T, ds *analysis.Dataset, name string, raw map[string]string) (any, error) {
	t.Helper()
	reg := lookup(t, name)
	params, err := reg.Params.Resolve(raw)
	if err != nil {
		t.Fatalf("%s: resolve %v: %v", name, raw, err)
	}
	return reg.Func(ds, params)
}

func TestClustersAnalysisOnSynthCorpus(t *testing.T) {
	ds := synthDataset(t)
	v, err := runOn(t, ds, "clusters", nil)
	if err != nil {
		t.Fatal(err)
	}
	res, ok := v.(cluster.Result)
	if !ok {
		t.Fatalf("clusters returned %T", v)
	}
	if res.Algo != "kmeans++" || res.K < 2 || res.K > 8 {
		t.Errorf("algo/k = %s/%d", res.Algo, res.K)
	}
	if len(res.Assignments) != len(ds.Comparable) {
		t.Errorf("%d assignments for %d comparable runs",
			len(res.Assignments), len(ds.Comparable))
	}
	total := 0
	for _, s := range res.Sizes {
		total += s
		if s == 0 {
			t.Error("registered clustering produced an empty cluster")
		}
	}
	if total != len(ds.Comparable) {
		t.Errorf("sizes sum to %d, want %d", total, len(ds.Comparable))
	}
	if res.Silhouette <= 0 {
		t.Errorf("silhouette = %v, want > 0 on the calibrated corpus", res.Silhouette)
	}
	if res.SSE <= 0 {
		t.Errorf("SSE = %v", res.SSE)
	}
}

func TestHACOnSynthCorpus(t *testing.T) {
	ds := synthDataset(t)
	m, err := cluster.Extract(ds.Comparable, cluster.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := cluster.HAC(m, cluster.HACOptions{
		Linkage: cluster.LinkageAverage, K: 5, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 5 {
		t.Fatalf("K = %d", res.K)
	}
	if sil := cluster.Silhouette(m, res.Labels, res.K, 4); sil <= -1 || sil >= 1 {
		t.Errorf("silhouette = %v out of range", sil)
	}
}

func TestClusterProfilesAndSweepOnSynthCorpus(t *testing.T) {
	ds := synthDataset(t)
	v, err := runOn(t, ds, "cluster-profiles", nil)
	if err != nil {
		t.Fatal(err)
	}
	ps := v.(cluster.ProfileSet)
	if ps.K < 2 || len(ps.Profiles) != ps.K {
		t.Errorf("profile set: k=%d, %d profiles", ps.K, len(ps.Profiles))
	}
	for _, p := range ps.Profiles {
		if p.Size == 0 || p.DominantVendor == "" {
			t.Errorf("degenerate profile: %+v", p)
		}
	}
	v, err = runOn(t, ds, "cluster-sweep", nil)
	if err != nil {
		t.Fatal(err)
	}
	sweep := v.([]cluster.SweepPoint)
	if len(sweep) != 9 || sweep[0].K != 2 || sweep[8].K != 10 {
		t.Errorf("sweep shape: %+v", sweep)
	}
	for i := 1; i < len(sweep); i++ {
		if sweep[i].SSE > sweep[0].SSE {
			// SSE at higher k occasionally plateaus but must never beat
			// k=2 badly; a gross inversion means broken bookkeeping.
			t.Errorf("SSE grew from %v (k=2) to %v (k=%d)",
				sweep[0].SSE, sweep[i].SSE, sweep[i].K)
		}
	}
}

// TestClustersTinyCorpus: filtered scopes can leave almost nothing;
// the analyses must degrade to an empty result, not an error.
func TestClustersTinyCorpus(t *testing.T) {
	ds := analysis.BuildDataset(nil)
	for _, name := range []string{"clusters", "cluster-profiles", "cluster-sweep"} {
		if _, err := runOn(t, ds, name, nil); err != nil {
			t.Errorf("%s on empty corpus: %v", name, err)
		}
	}
	v, err := runOn(t, ds, "clusters", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res := v.(cluster.Result); res.K != 0 || len(res.Assignments) != 0 {
		t.Errorf("empty-corpus result: %+v", res)
	}
}

// TestClustersJSONDeterministic is the determinism acceptance test:
// the same seed and corpus must produce byte-identical "clusters" JSON
// across repeated runs on fresh engines — under -race in CI, this also
// guards against map-iteration order and global-rand leaks in the
// parallel paths. Half the runs spell the old pinned parameters out
// explicitly (?seed=14&kmin=2&kmax=8): the back-compat pin of the
// parameterized API is that an explicit-defaults request and a
// parameterless one are the same bytes, params echo included.
func TestClustersJSONDeterministic(t *testing.T) {
	reg, ok := analysis.Lookup("clusters")
	if !ok {
		t.Fatal("clusters not registered")
	}
	explicit, err := reg.Params.Resolve(map[string]string{
		"seed": "14", "kmin": "2", "kmax": "8", "algo": "kmeans",
	})
	if err != nil {
		t.Fatal(err)
	}
	var want []byte
	for i := 0; i < 10; i++ {
		eng := core.New(core.WithSeed(synth.DefaultSeed), core.WithWorkers(4))
		var buf bytes.Buffer
		req := core.Request{Name: "clusters"}
		if i%2 == 1 {
			req.Params = explicit // odd runs pin the explicit spelling
		}
		if err := eng.WriteJSONRequests(&buf, req); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			want = append([]byte(nil), buf.Bytes()...)
			if len(want) == 0 {
				t.Fatal("empty clusters JSON")
			}
			continue
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Fatalf("run %d (explicit=%v): clusters JSON differs from run 0",
				i, i%2 == 1)
		}
	}
}

// TestClustersParamScenarios drives the registered analyses through
// non-default parameterizations: explicit k, hac by k and by cut,
// feature subsets, and a sweep range — every knob the schema declares.
func TestClustersParamScenarios(t *testing.T) {
	ds := synthDataset(t)

	v, err := runOn(t, ds, "clusters", map[string]string{"k": "3"})
	if err != nil {
		t.Fatal(err)
	}
	if res := v.(cluster.Result); res.K != 3 || res.Algo != "kmeans++" {
		t.Errorf("k=3: got k=%d algo=%s", res.K, res.Algo)
	}

	v, err = runOn(t, ds, "clusters", map[string]string{"algo": "hac", "k": "4", "linkage": "complete"})
	if err != nil {
		t.Fatal(err)
	}
	if res := v.(cluster.Result); res.K != 4 || res.Algo != "hac/complete" {
		t.Errorf("hac k=4: got k=%d algo=%s", res.K, res.Algo)
	}

	v, err = runOn(t, ds, "clusters", map[string]string{"algo": "hac", "cut": "3.5"})
	if err != nil {
		t.Fatal(err)
	}
	if res := v.(cluster.Result); res.K < 1 || res.Algo != "hac/average" {
		t.Errorf("hac cut: got k=%d algo=%s", res.K, res.Algo)
	}

	v, err = runOn(t, ds, "clusters", map[string]string{"k": "2", "features": "score,cores"})
	if err != nil {
		t.Fatal(err)
	}
	if res := v.(cluster.Result); len(res.Features) != 2 || res.Features[0] != "score" {
		t.Errorf("feature subset: %v", res.Features)
	}

	v, err = runOn(t, ds, "cluster-profiles", map[string]string{"k": "3"})
	if err != nil {
		t.Fatal(err)
	}
	if ps := v.(cluster.ProfileSet); ps.K != 3 || len(ps.Profiles) != 3 {
		t.Errorf("profiles k=3: k=%d, %d profiles", ps.K, len(ps.Profiles))
	}

	v, err = runOn(t, ds, "cluster-sweep", map[string]string{"kmin": "3", "kmax": "5"})
	if err != nil {
		t.Fatal(err)
	}
	if sweep := v.([]cluster.SweepPoint); len(sweep) != 3 || sweep[0].K != 3 || sweep[2].K != 5 {
		t.Errorf("sweep 3…5: %+v", v)
	}

	// Seeds are real inputs: different seeds may legitimately differ,
	// equal seeds must agree exactly.
	a, err := runOn(t, ds, "clusters", map[string]string{"k": "4", "seed": "99"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := runOn(t, ds, "clusters", map[string]string{"k": "4", "seed": "99"})
	if err != nil {
		t.Fatal(err)
	}
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if !bytes.Equal(aj, bj) {
		t.Error("equal seeds produced different partitions")
	}
}

// TestClustersBadParamCombos: failures the per-key validation cannot
// see surface as BadParamsErrors (the server's 400), never panics.
func TestClustersBadParamCombos(t *testing.T) {
	ds := synthDataset(t)
	cases := []map[string]string{
		{"algo": "hac"},            // no stopping rule
		{"k": "100000"},            // beyond the corpus
		{"kmin": "6", "kmax": "3"}, // inverted sweep range
	}
	for _, raw := range cases {
		_, err := runOn(t, ds, "clusters", raw)
		var bad *analysis.BadParamsError
		if !errors.As(err, &bad) {
			t.Errorf("%v: err = %v, want *analysis.BadParamsError", raw, err)
		}
	}
	_, err := runOn(t, ds, "cluster-sweep", map[string]string{"kmin": "6", "kmax": "3"})
	var bad *analysis.BadParamsError
	if !errors.As(err, &bad) {
		t.Errorf("sweep inverted range: err = %v, want *analysis.BadParamsError", err)
	}
}

// TestMemoRingCounters: the partition and sweep rings count hits,
// misses, and ring-slot evictions. Counters are process-global, so the
// test asserts deltas over its own sequential requests.
func TestMemoRingCounters(t *testing.T) {
	opt := synth.DefaultOptions()
	opt.Plan = []synth.YearPlan{
		{Year: 2020, Parsed: 40, AMDShare: 0.3, LinuxShare: 0.3, TwoSocketShare: 0.7},
	}
	runs, err := synth.Generate(opt)
	if err != nil {
		t.Fatal(err)
	}
	ds := analysis.BuildDataset(runs)
	ds.Workers = 2

	before := cluster.MemoRingCounters()
	// Nine distinct parameterizations overflow the 8-slot ring, so the
	// ninth put must evict the first; re-requesting the first then
	// misses and recomputes.
	for i := 0; i < 9; i++ {
		if _, err := runOn(t, ds, "clusters",
			map[string]string{"k": "3", "seed": itoa(9001 + i)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := runOn(t, ds, "clusters",
		map[string]string{"k": "3", "seed": "9009"}); err != nil { // resident: hit
		t.Fatal(err)
	}
	if _, err := runOn(t, ds, "clusters",
		map[string]string{"k": "3", "seed": "9001"}); err != nil { // evicted: miss
		t.Fatal(err)
	}
	after := cluster.MemoRingCounters()
	if got := after.Partition.Misses - before.Partition.Misses; got != 10 {
		t.Errorf("partition misses delta = %d, want 10", got)
	}
	if got := after.Partition.Hits - before.Partition.Hits; got != 1 {
		t.Errorf("partition hits delta = %d, want 1", got)
	}
	// At least the wrap-around eviction and the recompute's re-insert;
	// more if earlier tests left residents in the overwritten slots.
	if got := after.Partition.Evictions - before.Partition.Evictions; got < 2 {
		t.Errorf("partition evictions delta = %d, want >= 2", got)
	}

	before = cluster.MemoRingCounters()
	for i := 0; i < 2; i++ {
		if _, err := runOn(t, ds, "cluster-sweep",
			map[string]string{"kmax": "4"}); err != nil {
			t.Fatal(err)
		}
	}
	after = cluster.MemoRingCounters()
	if h, m := after.Sweep.Hits-before.Sweep.Hits, after.Sweep.Misses-before.Sweep.Misses; h != 1 || m != 1 {
		t.Errorf("sweep hits/misses delta = %d/%d, want 1/1", h, m)
	}
}

func itoa(n int) string { return strconv.Itoa(n) }
