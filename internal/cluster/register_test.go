package cluster_test

import (
	"bytes"
	"testing"

	"repro/internal/analysis"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/synth"
)

// synthDataset classifies the default synthetic corpus — the "synth:"
// corpus the acceptance criteria cluster over.
func synthDataset(t *testing.T) *analysis.Dataset {
	t.Helper()
	runs, err := synth.Generate(synth.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ds := analysis.BuildDataset(runs)
	ds.Workers = 4
	return ds
}

func lookup(t *testing.T, name string) analysis.Registration {
	t.Helper()
	reg, ok := analysis.Lookup(name)
	if !ok {
		t.Fatalf("analysis %q not registered", name)
	}
	return reg
}

func TestClustersAnalysisOnSynthCorpus(t *testing.T) {
	ds := synthDataset(t)
	v, err := lookup(t, "clusters").Func(ds)
	if err != nil {
		t.Fatal(err)
	}
	res, ok := v.(cluster.Result)
	if !ok {
		t.Fatalf("clusters returned %T", v)
	}
	if res.Algo != "kmeans++" || res.K < 2 || res.K > 8 {
		t.Errorf("algo/k = %s/%d", res.Algo, res.K)
	}
	if len(res.Assignments) != len(ds.Comparable) {
		t.Errorf("%d assignments for %d comparable runs",
			len(res.Assignments), len(ds.Comparable))
	}
	total := 0
	for _, s := range res.Sizes {
		total += s
		if s == 0 {
			t.Error("registered clustering produced an empty cluster")
		}
	}
	if total != len(ds.Comparable) {
		t.Errorf("sizes sum to %d, want %d", total, len(ds.Comparable))
	}
	if res.Silhouette <= 0 {
		t.Errorf("silhouette = %v, want > 0 on the calibrated corpus", res.Silhouette)
	}
	if res.SSE <= 0 {
		t.Errorf("SSE = %v", res.SSE)
	}
}

func TestHACOnSynthCorpus(t *testing.T) {
	ds := synthDataset(t)
	m, err := cluster.Extract(ds.Comparable, cluster.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := cluster.HAC(m, cluster.HACOptions{
		Linkage: cluster.LinkageAverage, K: 5, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 5 {
		t.Fatalf("K = %d", res.K)
	}
	if sil := cluster.Silhouette(m, res.Labels, res.K, 4); sil <= -1 || sil >= 1 {
		t.Errorf("silhouette = %v out of range", sil)
	}
}

func TestClusterProfilesAndSweepOnSynthCorpus(t *testing.T) {
	ds := synthDataset(t)
	v, err := lookup(t, "cluster-profiles").Func(ds)
	if err != nil {
		t.Fatal(err)
	}
	ps := v.(cluster.ProfileSet)
	if ps.K < 2 || len(ps.Profiles) != ps.K {
		t.Errorf("profile set: k=%d, %d profiles", ps.K, len(ps.Profiles))
	}
	for _, p := range ps.Profiles {
		if p.Size == 0 || p.DominantVendor == "" {
			t.Errorf("degenerate profile: %+v", p)
		}
	}
	v, err = lookup(t, "cluster-sweep").Func(ds)
	if err != nil {
		t.Fatal(err)
	}
	sweep := v.([]cluster.SweepPoint)
	if len(sweep) != 9 || sweep[0].K != 2 || sweep[8].K != 10 {
		t.Errorf("sweep shape: %+v", sweep)
	}
	for i := 1; i < len(sweep); i++ {
		if sweep[i].SSE > sweep[0].SSE {
			// SSE at higher k occasionally plateaus but must never beat
			// k=2 badly; a gross inversion means broken bookkeeping.
			t.Errorf("SSE grew from %v (k=2) to %v (k=%d)",
				sweep[0].SSE, sweep[i].SSE, sweep[i].K)
		}
	}
}

// TestClustersTinyCorpus: filtered scopes can leave almost nothing;
// the analyses must degrade to an empty result, not an error.
func TestClustersTinyCorpus(t *testing.T) {
	ds := analysis.BuildDataset(nil)
	for _, name := range []string{"clusters", "cluster-profiles", "cluster-sweep"} {
		if _, err := lookup(t, name).Func(ds); err != nil {
			t.Errorf("%s on empty corpus: %v", name, err)
		}
	}
	v, err := lookup(t, "clusters").Func(ds)
	if err != nil {
		t.Fatal(err)
	}
	if res := v.(cluster.Result); res.K != 0 || len(res.Assignments) != 0 {
		t.Errorf("empty-corpus result: %+v", res)
	}
}

// TestClustersJSONDeterministic is the determinism acceptance test:
// the same seed and corpus must produce byte-identical "clusters" JSON
// across repeated runs on fresh engines — under -race in CI, this also
// guards against map-iteration order and global-rand leaks in the
// parallel paths.
func TestClustersJSONDeterministic(t *testing.T) {
	var want []byte
	for i := 0; i < 10; i++ {
		eng := core.New(core.WithSeed(synth.DefaultSeed), core.WithWorkers(4))
		var buf bytes.Buffer
		if err := eng.WriteJSON(&buf, "clusters"); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			want = append([]byte(nil), buf.Bytes()...)
			if len(want) == 0 {
				t.Fatal("empty clusters JSON")
			}
			continue
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Fatalf("run %d: clusters JSON differs from run 0", i)
		}
	}
}
