package cluster

import (
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/model"
)

// testRun builds a run with the given headline features; the single
// load point makes OverallOpsPerWatt() == score exactly.
func testRun(id string, vendor model.CPUVendor, score float64, cores, mem, year int, ghz float64) *model.Run {
	return &model.Run{
		ID:           id,
		CPUVendor:    vendor,
		TotalCores:   cores,
		TotalThreads: 2 * cores,
		NominalGHz:   ghz,
		MemGB:        mem,
		HWAvail:      model.YM(year, time.June),
		Points: []model.LoadPoint{
			{TargetLoad: 100, ActualOps: score * 100, AvgPower: 100},
		},
	}
}

// twoBlobs is a corpus with an obvious split: small old Intel boxes vs
// big new AMD boxes, nPer runs each.
func twoBlobs(nPer int) []*model.Run {
	runs := make([]*model.Run, 0, 2*nPer)
	for i := 0; i < nPer; i++ {
		runs = append(runs, testRun(
			"small-"+string(rune('a'+i)), model.VendorIntel,
			1000+float64(i), 8+i%2, 32, 2010+i%3, 2.5))
	}
	for i := 0; i < nPer; i++ {
		runs = append(runs, testRun(
			"big-"+string(rune('a'+i)), model.VendorAMD,
			20000+float64(100*i), 128+i%2, 1024, 2022+i%3, 3.1))
	}
	return runs
}

// matrixOf is a test helper: rows straight into a Matrix, no runs.
func matrixOf(rows ...[]float64) *Matrix {
	return &Matrix{Features: []string{"x", "y"}, Rows: rows}
}

func TestFeatureNamesAndSelection(t *testing.T) {
	all := FeatureNames()
	if len(all) < 9 || all[0] != "score" {
		t.Fatalf("FeatureNames = %v", all)
	}
	runs := twoBlobs(3)
	m, err := Extract(runs, Options{Features: []string{"cores", "score"}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m.Features, []string{"cores", "score"}) {
		t.Errorf("selected features = %v", m.Features)
	}
	if len(m.Rows) != len(runs) || len(m.Rows[0]) != 2 {
		t.Errorf("matrix shape = %d×%d", len(m.Rows), len(m.Rows[0]))
	}
	if _, err := Extract(runs, Options{Features: []string{"bogus"}}); err == nil ||
		!strings.Contains(err.Error(), "unknown feature") {
		t.Errorf("unknown feature error = %v", err)
	}
	if _, err := Extract(runs, Options{Features: []string{"score", "score"}}); err == nil ||
		!strings.Contains(err.Error(), "twice") {
		t.Errorf("duplicate feature error = %v", err)
	}
}

func TestExtractStandardizesAndImputes(t *testing.T) {
	runs := twoBlobs(4)
	// Break one run's score and topology: the column z-scores must
	// impute the gaps at 0, never NaN.
	runs[0].Points = nil   // OverallOpsPerWatt → NaN
	runs[1].TotalCores = 0 // missing count
	runs[1].TotalThreads = 0
	m, err := Extract(runs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range m.Rows {
		for j, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("row %d col %d (%s) = %v", i, j, m.Features[j], v)
			}
		}
	}
	// Column means over non-imputed entries are 0 in z-space; the
	// imputed entries equal exactly 0.
	if m.Rows[0][0] != 0 {
		t.Errorf("imputed score = %v, want 0", m.Rows[0][0])
	}
}

func TestKMeansSeparatesBlobs(t *testing.T) {
	runs := twoBlobs(6)
	m, err := Extract(runs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := KMeans(m, KMeansOptions{K: 2, Seed: 1, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("two blobs did not converge")
	}
	// All smalls share one label, all bigs the other.
	small, big := res.Labels[0], res.Labels[6]
	if small == big {
		t.Fatalf("blobs merged: labels = %v", res.Labels)
	}
	for i, l := range res.Labels {
		want := small
		if i >= 6 {
			want = big
		}
		if l != want {
			t.Errorf("run %d label = %d, want %d", i, l, want)
		}
	}
	if res.SSE <= 0 || math.IsNaN(res.SSE) {
		t.Errorf("SSE = %v", res.SSE)
	}
}

func TestKMeansDeterministicAcrossWorkers(t *testing.T) {
	runs := twoBlobs(8)
	m, err := Extract(runs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var first *KMeansResult
	for _, workers := range []int{1, 2, 8} {
		res, err := KMeans(m, KMeansOptions{K: 3, Seed: 42, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = res
			continue
		}
		if !reflect.DeepEqual(res.Labels, first.Labels) || res.SSE != first.SSE {
			t.Errorf("workers=%d diverged: labels %v vs %v, SSE %v vs %v",
				workers, res.Labels, first.Labels, res.SSE, first.SSE)
		}
	}
}

func TestKMeansBounds(t *testing.T) {
	m := matrixOf([]float64{0, 0}, []float64{1, 1})
	for _, k := range []int{0, 3, -1} {
		if _, err := KMeans(m, KMeansOptions{K: k, Seed: 1}); err == nil {
			t.Errorf("k=%d did not error", k)
		}
	}
	// k == n degenerates to singletons but must work.
	res, err := KMeans(m, KMeansOptions{K: 2, Seed: 1})
	if err != nil || res.SSE != 0 {
		t.Errorf("k=n: res=%+v err=%v", res, err)
	}
}

func TestHACSeparatesBlobsAllLinkages(t *testing.T) {
	runs := twoBlobs(5)
	m, err := Extract(runs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, lk := range []Linkage{LinkageSingle, LinkageComplete, LinkageAverage} {
		res, err := HAC(m, HACOptions{Linkage: lk, K: 2, Workers: 3})
		if err != nil {
			t.Fatalf("%v: %v", lk, err)
		}
		if res.K != 2 {
			t.Fatalf("%v: K = %d", lk, res.K)
		}
		small, big := res.Labels[0], res.Labels[5]
		if small == big {
			t.Errorf("%v: blobs merged: %v", lk, res.Labels)
		}
		for i, l := range res.Labels {
			want := small
			if i >= 5 {
				want = big
			}
			if l != want {
				t.Errorf("%v: run %d label = %d, want %d", lk, i, l, want)
			}
		}
		if len(res.Merges) != len(runs)-2 {
			t.Errorf("%v: %d merges, want %d", lk, len(res.Merges), len(runs)-2)
		}
	}
}

func TestHACThresholdCut(t *testing.T) {
	runs := twoBlobs(5)
	m, err := Extract(runs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// A huge threshold merges everything; a tiny one merges nothing.
	all, err := HAC(m, HACOptions{Linkage: LinkageAverage, Cut: 1e9})
	if err != nil || all.K != 1 {
		t.Errorf("huge cut: K = %d, err = %v", all.K, err)
	}
	none, err := HAC(m, HACOptions{Linkage: LinkageAverage, Cut: 1e-12})
	if err != nil || none.K != len(runs) {
		t.Errorf("tiny cut: K = %d, err = %v", none.K, err)
	}
	// A threshold between the blob diameters and the blob separation
	// recovers exactly the two blobs — the MicroTrace-style cut.
	two, err := HAC(m, HACOptions{Linkage: LinkageComplete, Cut: 2.0})
	if err != nil {
		t.Fatal(err)
	}
	if two.K != 2 {
		t.Errorf("mid cut: K = %d, labels = %v", two.K, two.Labels)
	}
	// Merge distances in the applied prefix never exceed the cut.
	for _, mg := range two.Merges {
		if mg.Dist > 2.0 {
			t.Errorf("merge at %v above the cut", mg.Dist)
		}
	}
}

func TestHACErrors(t *testing.T) {
	m := matrixOf([]float64{0, 0}, []float64{1, 1})
	if _, err := HAC(&Matrix{}, HACOptions{K: 1}); err == nil {
		t.Error("empty matrix did not error")
	}
	if _, err := HAC(m, HACOptions{K: 0}); err == nil {
		t.Error("k=0 without cut did not error")
	}
	if _, err := HAC(m, HACOptions{K: 1, Cut: -1}); err == nil {
		t.Error("negative cut did not error")
	}
	if _, err := HAC(m, HACOptions{Linkage: Linkage(99), K: 1}); err == nil {
		t.Error("unknown linkage did not error")
	}
}

func TestParseLinkage(t *testing.T) {
	for s, want := range map[string]Linkage{
		"single": LinkageSingle, "complete": LinkageComplete, "average": LinkageAverage,
	} {
		got, err := ParseLinkage(s)
		if err != nil || got != want {
			t.Errorf("ParseLinkage(%q) = %v, %v", s, got, err)
		}
		if got.String() != s {
			t.Errorf("%v.String() = %q, want %q", got, got.String(), s)
		}
	}
	if _, err := ParseLinkage("ward"); err == nil {
		t.Error("unknown linkage parsed")
	}
}

func TestSilhouette(t *testing.T) {
	// Two tight, well-separated pairs: silhouette near 1.
	m := matrixOf(
		[]float64{0, 0}, []float64{0, 0.1},
		[]float64{10, 10}, []float64{10, 10.1})
	labels := []int{0, 0, 1, 1}
	if s := Silhouette(m, labels, 2, 2); s < 0.9 {
		t.Errorf("separated silhouette = %v", s)
	}
	// A deliberately wrong partition scores worse.
	bad := []int{0, 1, 0, 1}
	if s := Silhouette(m, bad, 2, 1); s >= 0.5 {
		t.Errorf("shuffled silhouette = %v, want low", s)
	}
	// Undefined cases return 0, never NaN.
	if s := Silhouette(m, []int{0, 0, 0, 0}, 1, 0); s != 0 {
		t.Errorf("k=1 silhouette = %v", s)
	}
	same := matrixOf([]float64{1, 1}, []float64{1, 1}, []float64{1, 1})
	if s := Silhouette(same, []int{0, 1, 0}, 2, 0); math.IsNaN(s) {
		t.Errorf("identical-point silhouette = %v", s)
	}
}

func TestSweepAndAutoK(t *testing.T) {
	// Three separated blobs: the silhouette sweep must pick k=3.
	var rows [][]float64
	for _, c := range [][]float64{{0, 0}, {10, 0}, {0, 10}} {
		for i := 0; i < 5; i++ {
			rows = append(rows, []float64{c[0] + float64(i)*0.01, c[1] - float64(i)*0.01})
		}
	}
	m := matrixOf(rows...)
	sweep, err := SweepK(m, 2, 6, 7, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep) != 5 || sweep[0].K != 2 || sweep[4].K != 6 {
		t.Fatalf("sweep shape: %+v", sweep)
	}
	for _, p := range sweep {
		if math.IsNaN(p.SSE) || math.IsNaN(p.Silhouette) {
			t.Errorf("k=%d has NaN metrics: %+v", p.K, p)
		}
	}
	if k := AutoK(sweep); k != 3 {
		t.Errorf("AutoK = %d, want 3 (sweep %+v)", k, sweep)
	}
	if _, err := SweepK(m, 0, 3, 1, 0); err == nil {
		t.Error("kmin=0 did not error")
	}
	if AutoK(nil) != 0 {
		t.Error("AutoK(nil) != 0")
	}
}

func TestProfiles(t *testing.T) {
	runs := twoBlobs(4)
	labels := []int{0, 0, 0, 0, 1, 1, 1, 1}
	ps := Profiles(runs, labels, 2)
	if len(ps) != 2 {
		t.Fatalf("%d profiles", len(ps))
	}
	smalls, bigs := ps[0], ps[1]
	if smalls.DominantVendor != "Intel" || smalls.VendorShare != 1 {
		t.Errorf("small blob vendor = %s (%.2f)", smalls.DominantVendor, smalls.VendorShare)
	}
	if bigs.DominantVendor != "AMD" {
		t.Errorf("big blob vendor = %s", bigs.DominantVendor)
	}
	if smalls.MedianCores >= bigs.MedianCores {
		t.Errorf("median cores: small %v, big %v", smalls.MedianCores, bigs.MedianCores)
	}
	if smalls.Size != 4 || math.Abs(smalls.Share-0.5) > 1e-12 {
		t.Errorf("size/share = %d/%v", smalls.Size, smalls.Share)
	}
	if smalls.YearMin != 2010 || smalls.YearMax != 2012 {
		t.Errorf("small years = %d–%d", smalls.YearMin, smalls.YearMax)
	}
	if bigs.MedianScore <= smalls.MedianScore {
		t.Errorf("median score: small %v, big %v", smalls.MedianScore, bigs.MedianScore)
	}
	// The rendered table mentions every cluster and the vendor names.
	table := ProfileSet{Algo: "kmeans++", K: 2, Silhouette: 0.9, Profiles: ps}.String()
	for _, want := range []string{"kmeans++", "Intel", "AMD", "silhouette"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
}

func TestNewResult(t *testing.T) {
	runs := twoBlobs(3)
	m, err := Extract(runs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	km, err := KMeans(m, KMeansOptions{K: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	res := NewResult("kmeans++", m, km.Labels, km.K, 0)
	if res.K != 2 || len(res.Assignments) != len(runs) {
		t.Fatalf("result shape: %+v", res)
	}
	total := 0
	for _, s := range res.Sizes {
		total += s
	}
	if total != len(runs) {
		t.Errorf("sizes sum to %d, want %d", total, len(runs))
	}
	for i, a := range res.Assignments {
		if a.ID != runs[i].ID || a.Cluster != km.Labels[i] {
			t.Errorf("assignment %d = %+v", i, a)
		}
	}
	if math.Abs(res.SSE-km.SSE) > 1e-9 {
		t.Errorf("SSE %v vs kmeans %v", res.SSE, km.SSE)
	}
}
