package cluster

import (
	"fmt"
	"math"
	"math/rand"
)

// MiniBatchOptions configures one seeded mini-batch k-means run
// (Sculley 2010): each iteration samples BatchSize rows with
// replacement from the private RNG and pulls the nearest centroid
// toward each sample with a per-centroid learning rate of 1/count, so
// centroids stabilize as they accumulate assignment mass.
type MiniBatchOptions struct {
	// K is the cluster count (1 ≤ K ≤ rows).
	K int
	// Seed seeds the private RNG behind both the cold k-means++
	// initialization and the batch sampling. Equal seeds on equal
	// matrices (and equal warm state) give identical results; the
	// global rand is never touched.
	Seed int64
	// BatchSize is the number of rows sampled per iteration (0 = 128).
	BatchSize int
	// MaxIter bounds the iterations (0 = 64).
	MaxIter int
	// Workers bounds the final full-assignment pass (0 = GOMAXPROCS).
	Workers int
	// InitCentroids and InitCounts warm-start the run from a previous
	// partition's online state: centroids and per-centroid assignment
	// mass. Both are copied, never mutated. A mismatch with K or the
	// matrix dimensionality (the feature set changed) falls back to
	// cold k-means++ seeding instead of erroring, so a warm start is
	// always a hint, never a contract.
	InitCentroids [][]float64
	InitCounts    []int64
	// OnIteration, when non-nil, is called after each batch with the
	// 1-based iteration number, how many sampled rows changed their
	// nearest centroid, and whether the run converged on this batch.
	// Purely observational.
	OnIteration func(iter, moved int, converged bool)
}

// MiniBatchResult is one mini-batch partition plus the online state a
// successor run warm-starts from.
type MiniBatchResult struct {
	// K is the cluster count.
	K int
	// Labels assigns each matrix row a cluster in [0, K), from a final
	// full assignment pass over all rows.
	Labels []int
	// Centroids are the online cluster centers in standardized feature
	// space; Counts is the assignment mass each accumulated (the
	// learning-rate state).
	Centroids [][]float64
	Counts    []int64
	// SSE is the within-cluster sum of squared distances under the
	// final assignment.
	SSE float64
	// Iterations counts the batches run; Converged reports whether a
	// batch moved no sampled row before MaxIter.
	Iterations int
	Converged  bool
	// WarmStarted reports whether the run accepted the caller's init
	// state (false = cold k-means++ seeding).
	WarmStarted bool
}

// MiniBatch partitions the matrix rows into K clusters with seeded
// mini-batch k-means. The batch loop is strictly sequential — sampling
// order is the RNG stream, updates apply in sample order — so the
// result is deterministic for a given (matrix, options) tuple; only
// the final labeling pass fans out across workers, writing disjoint
// row slots.
func MiniBatch(m *Matrix, opt MiniBatchOptions) (*MiniBatchResult, error) {
	n := len(m.Rows)
	if opt.K < 1 || opt.K > n {
		return nil, fmt.Errorf("cluster: k = %d outside [1, %d rows]", opt.K, n)
	}
	batch := opt.BatchSize
	if batch <= 0 {
		batch = 128
	}
	maxIter := opt.MaxIter
	if maxIter <= 0 {
		maxIter = 64
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	res := &MiniBatchResult{K: opt.K, Counts: make([]int64, opt.K)}
	if warmUsable(m, opt) {
		res.WarmStarted = true
		res.Centroids = make([][]float64, opt.K)
		for c, cent := range opt.InitCentroids {
			res.Centroids[c] = cloneRow(cent)
		}
		copy(res.Counts, opt.InitCounts)
	} else {
		res.Centroids = seedPlusPlus(m.Rows, opt.K, rng)
	}
	cents, counts := res.Centroids, res.Counts

	// last remembers each row's nearest centroid as of its most recent
	// sampling, so "moved" means what it does for Lloyd iterations: how
	// much of the batch still changes its mind.
	last := make([]int, n)
	for i := range last {
		last[i] = -1
	}
	for res.Iterations < maxIter {
		res.Iterations++
		moved := 0
		for b := 0; b < batch; b++ {
			i := rng.Intn(n)
			row := m.Rows[i]
			best, bestD := 0, math.Inf(1)
			for c, cent := range cents {
				if d := sqDist(row, cent); d < bestD {
					best, bestD = c, d
				}
			}
			if last[i] != best {
				last[i] = best
				moved++
			}
			counts[best]++
			eta := 1 / float64(counts[best])
			cent := cents[best]
			for j, v := range row {
				cent[j] += eta * (v - cent[j])
			}
		}
		converged := moved == 0
		if opt.OnIteration != nil {
			opt.OnIteration(res.Iterations, moved, converged)
		}
		if converged {
			res.Converged = true
			break
		}
	}

	// One full assignment pass gives every row a label against the
	// final centroids; empty clusters are rescued deterministically and
	// restart their learning-rate state.
	labels := make([]int, n)
	for i := range labels {
		labels[i] = -1
	}
	dist2 := make([]float64, n)
	assignRows(m.Rows, cents, labels, dist2, opt.Workers)
	sizes := make([]int, opt.K)
	for _, l := range labels {
		sizes[l]++
	}
	if reseedEmpty(m.Rows, cents, labels, dist2, opt.K) > 0 {
		for c, sz := range sizes {
			if sz == 0 {
				counts[c] = 1
			}
		}
	}
	res.Labels = labels
	for _, d := range dist2 {
		res.SSE += d
	}
	return res, nil
}

// warmUsable reports whether the caller's init state matches the run's
// shape: K centroids with K counts, each centroid in the matrix's
// feature space.
func warmUsable(m *Matrix, opt MiniBatchOptions) bool {
	if len(opt.InitCentroids) != opt.K || len(opt.InitCounts) != opt.K {
		return false
	}
	dim := len(m.Features)
	for _, cent := range opt.InitCentroids {
		if len(cent) != dim {
			return false
		}
	}
	return true
}
