package cluster_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/analysis"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/synth"
)

// minibatchParams resolves the fixed parameterization the live test
// replays: algo=minibatch with an explicit k so every generation
// clusters, plus the default seed.
func minibatchParams(t *testing.T) analysis.Params {
	t.Helper()
	reg, ok := analysis.Lookup("clusters")
	if !ok {
		t.Fatal("clusters not registered")
	}
	p, err := reg.Params.Resolve(map[string]string{"algo": "minibatch", "k": "3"})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// appendTranscript replays one fixed append sequence — ingest base,
// then fold in each batch — querying the mini-batch clustering (and its
// profile sibling, concurrently) after every generation, and returns
// the concatenated JSON of everything served.
func appendTranscript(t *testing.T, base []*model.Run, batches [][]*model.Run, p analysis.Params) []byte {
	t.Helper()
	eng := core.New(core.WithSource(core.SliceSource(base)), core.WithWorkers(4))
	var buf bytes.Buffer
	record := func() {
		results, err := eng.RunRequests(
			core.Request{Name: "clusters", Params: p},
			core.Request{Name: "cluster-profiles", Params: p},
		)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range results {
			b, err := json.Marshal(r.Value)
			if err != nil {
				t.Fatal(err)
			}
			buf.Write(b)
			buf.WriteByte('\n')
		}
	}
	record()
	for _, batch := range batches {
		if _, err := eng.Append(batch); err != nil {
			t.Fatal(err)
		}
		record()
	}
	return buf.Bytes()
}

// TestMiniBatchAppendSequenceDeterministic is the live-clustering
// acceptance pin: for a fixed seed and a fixed append sequence, the
// mini-batch partition served after every generation is byte-identical
// across 10 independent replays — warm starts included — so online
// clustering is reproducible run-to-run even though it is
// append-order-dependent.
func TestMiniBatchAppendSequenceDeterministic(t *testing.T) {
	runs, err := synth.Generate(synth.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Three append batches of growing size, carved off the corpus tail
	// so every replay folds in exactly the same runs in the same order.
	n := len(runs)
	base := runs[:n-14]
	batches := [][]*model.Run{runs[n-14 : n-10], runs[n-10 : n-4], runs[n-4:]}
	p := minibatchParams(t)

	want := appendTranscript(t, base, batches, p)
	if len(want) == 0 {
		t.Fatal("empty transcript")
	}
	var result cluster.Result
	if err := json.Unmarshal(bytes.SplitN(want, []byte("\n"), 2)[0], &result); err != nil {
		t.Fatal(err)
	}
	if result.Algo != "minibatch" || result.K != 3 {
		t.Fatalf("transcript leads with algo=%s k=%d, want minibatch k=3", result.Algo, result.K)
	}
	for rep := 1; rep < 10; rep++ {
		got := appendTranscript(t, base, batches, p)
		if !bytes.Equal(got, want) {
			t.Fatalf("replay %d diverged from the first transcript", rep)
		}
	}
}
