package cluster

import (
	"reflect"
	"testing"
)

func TestMiniBatchSeparatesBlobs(t *testing.T) {
	m, err := Extract(twoBlobs(6), Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := MiniBatch(m, MiniBatchOptions{K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 2 || len(res.Labels) != len(m.Rows) {
		t.Fatalf("K = %d, %d labels for %d rows", res.K, len(res.Labels), len(m.Rows))
	}
	if res.WarmStarted {
		t.Error("cold run reported WarmStarted")
	}
	// The two blobs are far apart: every "small" run must share a label,
	// and every "big" run the other one.
	half := len(m.Rows) / 2
	for i := 1; i < half; i++ {
		if res.Labels[i] != res.Labels[0] {
			t.Fatalf("small blob split: labels %v", res.Labels)
		}
	}
	for i := half + 1; i < len(m.Rows); i++ {
		if res.Labels[i] != res.Labels[half] {
			t.Fatalf("big blob split: labels %v", res.Labels)
		}
	}
	if res.Labels[0] == res.Labels[half] {
		t.Fatalf("blobs merged: labels %v", res.Labels)
	}
}

// TestMiniBatchDeterministic: equal (matrix, options) tuples produce
// identical results — including across worker counts, which only
// parallelize the final assignment pass.
func TestMiniBatchDeterministic(t *testing.T) {
	m, err := Extract(twoBlobs(8), Options{})
	if err != nil {
		t.Fatal(err)
	}
	base, err := MiniBatch(m, MiniBatchOptions{K: 3, Seed: 42, BatchSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 7} {
		got, err := MiniBatch(m, MiniBatchOptions{K: 3, Seed: 42, BatchSize: 16, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, base) {
			t.Fatalf("workers = %d diverged:\n%+v\nvs\n%+v", workers, got, base)
		}
	}
	// A different seed is allowed to differ; assert only that the run
	// still terminates with a full labeling.
	other, err := MiniBatch(m, MiniBatchOptions{K: 3, Seed: 43, BatchSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(other.Labels) != len(m.Rows) {
		t.Fatalf("seed 43: %d labels", len(other.Labels))
	}
}

// TestMiniBatchWarmStart: a successor run accepts matching online state,
// stays deterministic, and keeps the warm input intact (the state is
// copied, never mutated in place).
func TestMiniBatchWarmStart(t *testing.T) {
	m, err := Extract(twoBlobs(8), Options{})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := MiniBatch(m, MiniBatchOptions{K: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	centsBefore := make([][]float64, len(cold.Centroids))
	for i, c := range cold.Centroids {
		centsBefore[i] = cloneRow(c)
	}
	warmOpt := MiniBatchOptions{K: 2, Seed: 7,
		InitCentroids: cold.Centroids, InitCounts: cold.Counts}
	warm1, err := MiniBatch(m, warmOpt)
	if err != nil {
		t.Fatal(err)
	}
	if !warm1.WarmStarted {
		t.Fatal("matching init state rejected")
	}
	warm2, err := MiniBatch(m, warmOpt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(warm1, warm2) {
		t.Error("warm-started run not deterministic")
	}
	if !reflect.DeepEqual(cold.Centroids, centsBefore) {
		t.Error("warm start mutated the caller's init centroids")
	}
	// Warm-starting on the same data continues a converged state: the
	// partition must be the cold one.
	if !reflect.DeepEqual(warm1.Labels, cold.Labels) {
		t.Errorf("warm labels %v diverged from cold %v", warm1.Labels, cold.Labels)
	}
}

// TestMiniBatchWarmStartShapeMismatch: init state that no longer fits —
// wrong k, wrong dimensionality, missing counts — degrades to a cold
// seed instead of erroring.
func TestMiniBatchWarmStartShapeMismatch(t *testing.T) {
	m, err := Extract(twoBlobs(6), Options{})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := MiniBatch(m, MiniBatchOptions{K: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]MiniBatchOptions{
		"wrong k": {K: 3, Seed: 7,
			InitCentroids: cold.Centroids, InitCounts: cold.Counts},
		"missing counts": {K: 2, Seed: 7, InitCentroids: cold.Centroids},
		"wrong dim": {K: 2, Seed: 7,
			InitCentroids: [][]float64{{1}, {2}}, InitCounts: cold.Counts},
	}
	for name, opt := range cases {
		res, err := MiniBatch(m, opt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.WarmStarted {
			t.Errorf("%s: mismatched init state accepted", name)
		}
		// The fallback is exactly the cold path for the same k/seed.
		if opt.K == 2 && !reflect.DeepEqual(res.Labels, cold.Labels) {
			t.Errorf("%s: fallback diverged from cold run", name)
		}
	}
}

func TestMiniBatchBounds(t *testing.T) {
	m := matrixOf([]float64{0, 0}, []float64{1, 1})
	if _, err := MiniBatch(m, MiniBatchOptions{K: 0, Seed: 1}); err == nil {
		t.Error("k = 0 accepted")
	}
	if _, err := MiniBatch(m, MiniBatchOptions{K: 3, Seed: 1}); err == nil {
		t.Error("k > rows accepted")
	}
	res, err := MiniBatch(m, MiniBatchOptions{K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Labels[0] == res.Labels[1] {
		t.Error("k = n left two rows in one cluster")
	}
}

// TestMiniBatchObserver: the iteration callback sees every batch and
// the convergence flag on the final one.
func TestMiniBatchObserver(t *testing.T) {
	m, err := Extract(twoBlobs(6), Options{})
	if err != nil {
		t.Fatal(err)
	}
	var iters []int
	var sawConverged bool
	res, err := MiniBatch(m, MiniBatchOptions{K: 2, Seed: 3,
		OnIteration: func(iter, moved int, converged bool) {
			iters = append(iters, iter)
			sawConverged = sawConverged || converged
		}})
	if err != nil {
		t.Fatal(err)
	}
	if len(iters) != res.Iterations {
		t.Fatalf("observer saw %d iterations, result reports %d", len(iters), res.Iterations)
	}
	for i, it := range iters {
		if it != i+1 {
			t.Fatalf("iteration numbers not 1-based sequential: %v", iters)
		}
	}
	if res.Converged && !sawConverged {
		t.Error("converged run never reported converged=true to the observer")
	}
}
