package cluster

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/model"
	"repro/internal/stats"
)

// Profile is one cluster phenotype: the human-readable summary of the
// configurations a cluster groups, in raw (unstandardized) units.
type Profile struct {
	// Cluster is the label; Size its member count; Share its fraction
	// of the clustered corpus.
	Cluster int
	Size    int
	Share   float64
	// DominantVendor is the most common CPU vendor and VendorShare its
	// within-cluster share.
	DominantVendor string
	VendorShare    float64
	// Medians of the headline configuration features (0 when no member
	// reports the value).
	MedianScore float64 // ssj_ops/W
	MedianCores float64
	MedianGHz   float64
	MedianMemGB float64
	// YearMin and YearMax bound the members' hardware availability
	// years (0 when unreported).
	YearMin, YearMax int
}

// Profiles summarizes a partition of runs into per-cluster phenotypes,
// ordered by cluster label. Labels must be in [0, k); len(labels) must
// equal len(runs).
func Profiles(runs []*model.Run, labels []int, k int) []Profile {
	byCluster := make([][]*model.Run, k)
	for i, r := range runs {
		byCluster[labels[i]] = append(byCluster[labels[i]], r)
	}
	out := make([]Profile, k)
	for c, members := range byCluster {
		out[c] = profileOf(c, members, len(runs))
	}
	return out
}

func profileOf(label int, members []*model.Run, total int) Profile {
	p := Profile{Cluster: label, Size: len(members)}
	if len(members) == 0 {
		return p
	}
	if total > 0 {
		p.Share = float64(len(members)) / float64(total)
	}
	scores := make([]float64, 0, len(members))
	cores := make([]float64, 0, len(members))
	ghz := make([]float64, 0, len(members))
	mem := make([]float64, 0, len(members))
	vendors := map[model.CPUVendor]int{}
	for _, r := range members {
		scores = append(scores, r.OverallOpsPerWatt())
		if r.TotalCores > 0 {
			cores = append(cores, float64(r.TotalCores))
		}
		if r.NominalGHz > 0 {
			ghz = append(ghz, r.NominalGHz)
		}
		if r.MemGB > 0 {
			mem = append(mem, float64(r.MemGB))
		}
		vendors[r.CPUVendor]++
		if y := r.HWAvail.Year; y > 0 {
			if p.YearMin == 0 || y < p.YearMin {
				p.YearMin = y
			}
			if y > p.YearMax {
				p.YearMax = y
			}
		}
	}
	p.MedianScore = medianOrZero(scores)
	p.MedianCores = medianOrZero(cores)
	p.MedianGHz = medianOrZero(ghz)
	p.MedianMemGB = medianOrZero(mem)
	// Dominant vendor, ties to the lower enum value (a fixed order, so
	// profiles are deterministic).
	bestVendor, bestCount := model.VendorUnknown, -1
	for v := model.VendorUnknown; v <= model.VendorOther; v++ {
		if n := vendors[v]; n > bestCount {
			bestVendor, bestCount = v, n
		}
	}
	p.DominantVendor = bestVendor.String()
	p.VendorShare = float64(bestCount) / float64(len(members))
	return p
}

// medianOrZero is the median of the finite entries, or 0 when there
// are none — profiles must marshal to JSON, which rejects NaN.
func medianOrZero(xs []float64) float64 {
	clean := stats.DropNaN(xs)
	if len(clean) == 0 {
		return 0
	}
	m := stats.Quantile(clean, 0.5)
	if math.IsNaN(m) {
		return 0
	}
	return m
}

// ProfileSet is the "cluster-profiles" analysis result: the phenotype
// table plus the partition it came from.
type ProfileSet struct {
	// Algo names the clustering that produced the partition.
	Algo string
	// K is the cluster count; Silhouette the partition's mean
	// silhouette coefficient.
	K          int
	Silhouette float64
	Profiles   []Profile
}

// String renders the phenotype table for terminal reports.
func (ps ProfileSet) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s, k=%d, silhouette %.3f\n", ps.Algo, ps.K, ps.Silhouette)
	if len(ps.Profiles) == 0 {
		b.WriteString("(corpus too small to cluster)\n")
		return b.String()
	}
	fmt.Fprintf(&b, "%-8s %5s %6s  %-7s %6s  %10s %6s %5s %7s  %s\n",
		"cluster", "n", "share", "vendor", "v.shr", "med ops/W", "cores", "GHz", "mem GB", "years")
	for _, p := range ps.Profiles {
		fmt.Fprintf(&b, "%-8d %5d %5.1f%%  %-7s %5.0f%%  %10.0f %6.0f %5.2f %7.0f  %d–%d\n",
			p.Cluster, p.Size, 100*p.Share, p.DominantVendor, 100*p.VendorShare,
			p.MedianScore, p.MedianCores, p.MedianGHz, p.MedianMemGB,
			p.YearMin, p.YearMax)
	}
	return b.String()
}
