package cluster

import (
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"

	"repro/internal/par"
)

// KMeansOptions configures one k-means++ run.
type KMeansOptions struct {
	// K is the cluster count (1 ≤ K ≤ rows).
	K int
	// Seed seeds the private RNG behind the k-means++ initialization.
	// Equal seeds on equal matrices give identical results; the global
	// rand is never touched.
	Seed int64
	// MaxIter bounds the Lloyd iterations (0 = 64).
	MaxIter int
	// Workers bounds the parallel assignment step (0 = GOMAXPROCS).
	Workers int
	// OnIteration, when non-nil, is called after each Lloyd round with
	// the 1-based iteration number, how many labels moved, and whether
	// the partition converged on this round. Purely observational: the
	// computation is identical with or without it, and it must not
	// mutate anything the kernel reads.
	OnIteration func(iter, moved int, converged bool)
}

// KMeansResult is one converged (or iteration-capped) partition.
type KMeansResult struct {
	// K is the cluster count.
	K int
	// Labels assigns each matrix row a cluster in [0, K).
	Labels []int
	// Centroids are the cluster means in standardized feature space.
	Centroids [][]float64
	// SSE is the within-cluster sum of squared distances.
	SSE float64
	// Iterations counts the Lloyd rounds run; Converged reports whether
	// assignments stabilized before MaxIter.
	Iterations int
	Converged  bool
}

// KMeans partitions the matrix rows into K clusters: k-means++
// initialization from the seeded RNG, then Lloyd iterations with the
// assignment step fanned across the par.ForEach worker pool. The
// result is deterministic for a given (matrix, options) pair no matter
// the worker count: parallel workers write disjoint row slots and
// every floating-point reduction runs in fixed row order.
func KMeans(m *Matrix, opt KMeansOptions) (*KMeansResult, error) {
	n := len(m.Rows)
	if opt.K < 1 || opt.K > n {
		return nil, fmt.Errorf("cluster: k = %d outside [1, %d rows]", opt.K, n)
	}
	maxIter := opt.MaxIter
	if maxIter <= 0 {
		maxIter = 64
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	cents := seedPlusPlus(m.Rows, opt.K, rng)
	labels := make([]int, n)
	for i := range labels {
		labels[i] = -1
	}
	dist2 := make([]float64, n)
	res := &KMeansResult{K: opt.K, Labels: labels, Centroids: cents}
	for res.Iterations < maxIter {
		res.Iterations++
		changed := assignRows(m.Rows, cents, labels, dist2, opt.Workers)
		changed += reseedEmpty(m.Rows, cents, labels, dist2, opt.K)
		if opt.OnIteration != nil {
			opt.OnIteration(res.Iterations, changed, changed == 0)
		}
		if changed == 0 {
			res.Converged = true
			break
		}
		updateCentroids(m.Rows, labels, cents)
	}
	if !res.Converged {
		// The last update moved the centroids: re-sync assignments so
		// Labels, Centroids, and SSE describe the same partition.
		assignRows(m.Rows, cents, labels, dist2, opt.Workers)
		reseedEmpty(m.Rows, cents, labels, dist2, opt.K)
	}
	for _, d := range dist2 {
		res.SSE += d
	}
	return res, nil
}

// seedPlusPlus picks the K initial centroids: the first uniformly, each
// later one with probability proportional to its squared distance from
// the nearest centroid so far (Arthur & Vassilvitskii 2007).
func seedPlusPlus(rows [][]float64, k int, rng *rand.Rand) [][]float64 {
	n := len(rows)
	cents := make([][]float64, 0, k)
	cents = append(cents, cloneRow(rows[rng.Intn(n)]))
	d2 := make([]float64, n)
	for i := range d2 {
		d2[i] = math.Inf(1)
	}
	for len(cents) < k {
		last := cents[len(cents)-1]
		var total float64
		for i, row := range rows {
			if d := sqDist(row, last); d < d2[i] {
				d2[i] = d
			}
			total += d2[i]
		}
		idx := n - 1
		if total > 0 {
			target := rng.Float64() * total
			var acc float64
			for i, d := range d2 {
				acc += d
				if acc > target {
					idx = i
					break
				}
			}
		} else {
			// Every row duplicates a centroid already; any pick works.
			idx = rng.Intn(n)
		}
		cents = append(cents, cloneRow(rows[idx]))
	}
	return cents
}

// assignRows labels every row with its nearest centroid (ties to the
// lowest centroid index) and records the squared distance. Rows shard
// across the worker pool; each worker writes only its own slots, so
// the outcome is schedule-independent. Returns how many labels moved.
func assignRows(rows, cents [][]float64, labels []int, dist2 []float64, workers int) int {
	var changed atomic.Int64
	_ = par.ForEach(len(rows), workers, func(i int) error {
		best, bestD := 0, math.Inf(1)
		for c, cent := range cents {
			if d := sqDist(rows[i], cent); d < bestD {
				best, bestD = c, d
			}
		}
		if labels[i] != best {
			labels[i] = best
			changed.Add(1)
		}
		dist2[i] = bestD
		return nil
	})
	return int(changed.Load())
}

// reseedEmpty relocates each empty cluster's centroid onto the row
// farthest from its assigned centroid (ties to the lowest row index),
// the standard deterministic rescue that keeps K honest. Returns how
// many rows were relabeled.
func reseedEmpty(rows, cents [][]float64, labels []int, dist2 []float64, k int) int {
	sizes := make([]int, k)
	for _, l := range labels {
		sizes[l]++
	}
	moved := 0
	for c := 0; c < k; c++ {
		if sizes[c] > 0 {
			continue
		}
		far := 0
		for i, d := range dist2 {
			if d > dist2[far] {
				far = i
			}
		}
		sizes[labels[far]]--
		labels[far] = c
		sizes[c] = 1
		copy(cents[c], rows[far])
		dist2[far] = 0
		moved++
	}
	return moved
}

// updateCentroids recomputes each centroid as the mean of its members,
// accumulating in fixed row order for floating-point determinism.
func updateCentroids(rows [][]float64, labels []int, cents [][]float64) {
	dim := len(cents[0])
	counts := make([]int, len(cents))
	for c := range cents {
		for j := 0; j < dim; j++ {
			cents[c][j] = 0
		}
	}
	for i, row := range rows {
		c := labels[i]
		counts[c]++
		for j, v := range row {
			cents[c][j] += v
		}
	}
	for c, cnt := range counts {
		if cnt == 0 {
			continue // reseedEmpty guarantees members; belt and braces
		}
		for j := 0; j < dim; j++ {
			cents[c][j] /= float64(cnt)
		}
	}
}

// sqDist is the squared Euclidean distance, the inner loop of both the
// seeding and assignment steps (no sqrt: comparisons only).
func sqDist(a, b []float64) float64 {
	var ss float64
	for i := range a {
		d := a[i] - b[i]
		ss += d * d
	}
	return ss
}

func cloneRow(row []float64) []float64 {
	return append([]float64(nil), row...)
}
