package cluster

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/model"
	"repro/internal/stats"
)

// featureDef is one extractable run feature: a registry name and the
// raw-value accessor. Accessors return NaN for missing values (zero
// counts, absent load points); Extract imputes those at the column
// mean after standardization.
type featureDef struct {
	name string
	raw  func(*model.Run) float64
}

// intFeature adapts a count accessor, treating 0 as "missing in
// report" (the model's convention for absent topology fields).
func intFeature(get func(*model.Run) int) func(*model.Run) float64 {
	return func(r *model.Run) float64 {
		if v := get(r); v > 0 {
			return float64(v)
		}
		return math.NaN()
	}
}

// oneHot adapts a vendor membership test to a 0/1 feature.
func oneHot(v model.CPUVendor) func(*model.Run) float64 {
	return func(r *model.Run) float64 {
		if r.CPUVendor == v {
			return 1
		}
		return 0
	}
}

// featureDefs lists every extractable feature in canonical order.
var featureDefs = []featureDef{
	{"score", (*model.Run).OverallOpsPerWatt},
	{"cores", intFeature(func(r *model.Run) int { return r.TotalCores })},
	{"threads", intFeature(func(r *model.Run) int { return r.TotalThreads })},
	{"ghz", func(r *model.Run) float64 {
		if r.NominalGHz > 0 {
			return r.NominalGHz
		}
		return math.NaN()
	}},
	{"mem", intFeature(func(r *model.Run) int { return r.MemGB })},
	{"year", func(r *model.Run) float64 {
		if r.HWAvail.Valid() {
			return r.HWAvail.Frac()
		}
		return math.NaN()
	}},
	{"vendor_intel", oneHot(model.VendorIntel)},
	{"vendor_amd", oneHot(model.VendorAMD)},
	{"vendor_other", oneHot(model.VendorOther)},
}

// FeatureNames lists every extractable feature in canonical order.
func FeatureNames() []string {
	names := make([]string, len(featureDefs))
	for i, f := range featureDefs {
		names[i] = f.name
	}
	return names
}

// Options configures feature extraction.
type Options struct {
	// Features selects a subset of FeatureNames, in the order given
	// (empty = all, in canonical order).
	Features []string
}

// Matrix is the standardized feature matrix: one row per run, one
// column per selected feature. Each column is z-scored over its finite
// entries (stats.Standardize) and missing values are imputed at the
// column mean — 0 in z-space — so every distance below is NaN-free.
type Matrix struct {
	// Features names the columns, in row order.
	Features []string
	// Runs holds the source run of each row, for profiling.
	Runs []*model.Run
	// Rows are the standardized feature vectors, one per run.
	Rows [][]float64
}

// Extract builds the standardized feature matrix of runs. Unknown or
// repeated feature names error, listing what is available.
func Extract(runs []*model.Run, opt Options) (*Matrix, error) {
	defs, err := selectFeatures(opt.Features)
	if err != nil {
		return nil, err
	}
	m := &Matrix{
		Features: make([]string, len(defs)),
		Runs:     runs,
		Rows:     make([][]float64, len(runs)),
	}
	for i := range m.Rows {
		m.Rows[i] = make([]float64, len(defs))
	}
	col := make([]float64, len(runs))
	for j, def := range defs {
		m.Features[j] = def.name
		for i, r := range runs {
			col[i] = def.raw(r)
		}
		for i, z := range stats.Standardize(col) {
			if math.IsNaN(z) {
				z = 0 // impute missing at the column mean
			}
			m.Rows[i][j] = z
		}
	}
	return m, nil
}

// selectFeatures resolves names against featureDefs (empty = all).
func selectFeatures(names []string) ([]featureDef, error) {
	if len(names) == 0 {
		return featureDefs, nil
	}
	byName := map[string]featureDef{}
	for _, def := range featureDefs {
		byName[def.name] = def
	}
	defs := make([]featureDef, 0, len(names))
	seen := map[string]bool{}
	for _, name := range names {
		def, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("cluster: unknown feature %q (available: %s)",
				name, strings.Join(FeatureNames(), ", "))
		}
		if seen[name] {
			return nil, fmt.Errorf("cluster: feature %q selected twice", name)
		}
		seen[name] = true
		defs = append(defs, def)
	}
	return defs, nil
}
