package cluster

import (
	"sync"

	"repro/internal/analysis"
)

// Pinned parameters of the registered analyses, so a registry name
// always means the same computation (matching the registry convention
// for the paper's analyses). The seed mirrors the default synthetic
// corpus seed.
const (
	DefaultSeed = 14
	autoKMin    = 2
	autoKMax    = 8
	sweepKMax   = 10
)

// Assignment maps one run to its cluster, in corpus order.
type Assignment struct {
	ID      string `json:"id"`
	Cluster int    `json:"cluster"`
}

// Result is the "clusters" analysis outcome: the labeled partition
// plus its quality metrics. K = 0 means the corpus slice was too small
// to cluster (fewer than two comparable runs).
type Result struct {
	Algo        string       `json:"algo"`
	K           int          `json:"k"`
	Features    []string     `json:"features"`
	SSE         float64      `json:"sse"`
	Silhouette  float64      `json:"silhouette"`
	Sizes       []int        `json:"sizes"`
	Assignments []Assignment `json:"assignments"`
}

// NewResult assembles a Result from a labeled partition: sizes, SSE
// against the label centroids, silhouette, and per-run assignments in
// row order. It is shared by the registry analyses, the speccluster
// CLI, and the benchmarks, so every surface reports the same shape.
func NewResult(algo string, m *Matrix, labels []int, k, workers int) Result {
	return newResult(algo, m, labels, k, Silhouette(m, labels, k, workers))
}

// newResult is NewResult with the silhouette already in hand — the
// registry analyses reuse the sweep's value instead of rescanning.
func newResult(algo string, m *Matrix, labels []int, k int, silhouette float64) Result {
	res := Result{
		Algo:        algo,
		K:           k,
		Features:    m.Features,
		Silhouette:  silhouette,
		Sizes:       make([]int, k),
		Assignments: make([]Assignment, len(m.Runs)),
	}
	for i, r := range m.Runs {
		res.Sizes[labels[i]]++
		res.Assignments[i] = Assignment{ID: r.ID, Cluster: labels[i]}
	}
	res.SSE = SSE(m, labels, Centroids(m, labels, k))
	return res
}

// pinned is the shared outcome of the registered analyses: the feature
// matrix plus the auto-k partition and its silhouette. res == nil
// means the corpus slice had fewer than two comparable runs — nothing
// to cluster, but not an error.
type pinned struct {
	m   *Matrix
	res *KMeansResult
	sil float64
}

// pinnedCache memoizes pinnedKMeans per dataset so "clusters" and
// "cluster-profiles" — fanned out concurrently by Engine.Run — share
// one sweep instead of each paying for it. The ring is tiny and
// bounded: an evicted entry just recomputes, and because the whole
// pipeline is deterministic, concurrent misses that race to fill a
// slot produce identical values.
var pinnedCache struct {
	sync.Mutex
	entries [4]struct {
		ds *analysis.Dataset
		p  *pinned
	}
	next int
}

// pinnedKMeans extracts the full feature set from the comparable runs
// and clusters them with auto-k k-means++ under the pinned seed,
// memoized per dataset.
func pinnedKMeans(ds *analysis.Dataset) (*pinned, error) {
	pinnedCache.Lock()
	for _, e := range pinnedCache.entries {
		if e.ds == ds {
			pinnedCache.Unlock()
			return e.p, nil
		}
	}
	pinnedCache.Unlock()
	p, err := computePinned(ds)
	if err != nil {
		return nil, err
	}
	pinnedCache.Lock()
	pinnedCache.entries[pinnedCache.next] = struct {
		ds *analysis.Dataset
		p  *pinned
	}{ds, p}
	pinnedCache.next = (pinnedCache.next + 1) % len(pinnedCache.entries)
	pinnedCache.Unlock()
	return p, nil
}

func computePinned(ds *analysis.Dataset) (*pinned, error) {
	m, err := Extract(ds.Comparable, Options{})
	if err != nil {
		return nil, err
	}
	kmax := min(autoKMax, len(m.Rows))
	if kmax < autoKMin {
		return &pinned{m: m}, nil
	}
	sweep, err := SweepK(m, autoKMin, kmax, DefaultSeed, ds.Workers)
	if err != nil {
		return nil, err
	}
	k := AutoK(sweep)
	res, err := KMeans(m, KMeansOptions{K: k, Seed: DefaultSeed, Workers: ds.Workers})
	if err != nil {
		return nil, err
	}
	// The sweep already scored this k; the same seed reproduces the
	// same labels, so the silhouette carries over exactly.
	sil := 0.0
	for _, p := range sweep {
		if p.K == k {
			sil = p.Silhouette
		}
	}
	return &pinned{m: m, res: res, sil: sil}, nil
}

const algoKMeans = "kmeans++"

func init() {
	analysis.Register("clusters",
		"machine-configuration clusters (k-means++, auto-k by silhouette)",
		func(ds *analysis.Dataset) (any, error) {
			p, err := pinnedKMeans(ds)
			if err != nil {
				return nil, err
			}
			if p.res == nil {
				return Result{Algo: algoKMeans, Features: p.m.Features,
					Sizes: []int{}, Assignments: []Assignment{}}, nil
			}
			return newResult(algoKMeans, p.m, p.res.Labels, p.res.K, p.sil), nil
		})
	analysis.Register("cluster-profiles",
		"per-cluster phenotypes: dominant vendor, median cores/score, year range",
		func(ds *analysis.Dataset) (any, error) {
			p, err := pinnedKMeans(ds)
			if err != nil {
				return nil, err
			}
			if p.res == nil {
				return ProfileSet{Algo: algoKMeans, Profiles: []Profile{}}, nil
			}
			return ProfileSet{
				Algo:       algoKMeans,
				K:          p.res.K,
				Silhouette: p.sil,
				Profiles:   Profiles(p.m.Runs, p.res.Labels, p.res.K),
			}, nil
		})
	analysis.Register("cluster-sweep",
		"k sweep: within-cluster SSE and silhouette for k = 2…10 (elbow curve)",
		func(ds *analysis.Dataset) (any, error) {
			m, err := Extract(ds.Comparable, Options{})
			if err != nil {
				return nil, err
			}
			kmax := min(sweepKMax, len(m.Rows))
			if kmax < autoKMin {
				return []SweepPoint{}, nil
			}
			return SweepK(m, autoKMin, kmax, DefaultSeed, ds.Workers)
		})
}
