package cluster

import (
	"fmt"
	"math"
	"strings"
	"sync"

	"repro/internal/analysis"
)

// Defaults of the registered analyses' parameter schemas. A request
// that supplies none of the knobs computes exactly what the pinned
// registrations of old did (seed 14, auto-k over 2…8), so the default
// output is stable across the parameterization of the API. The seed
// mirrors the default synthetic corpus seed.
const (
	DefaultSeed = 14
	autoKMin    = 2
	autoKMax    = 8
	sweepKMax   = 10
)

// Assignment maps one run to its cluster, in corpus order.
type Assignment struct {
	ID      string `json:"id"`
	Cluster int    `json:"cluster"`
}

// Result is the "clusters" analysis outcome: the labeled partition
// plus its quality metrics. K = 0 means the corpus slice was too small
// to cluster (fewer than two comparable runs).
type Result struct {
	Algo        string       `json:"algo"`
	K           int          `json:"k"`
	Features    []string     `json:"features"`
	SSE         float64      `json:"sse"`
	Silhouette  float64      `json:"silhouette"`
	Sizes       []int        `json:"sizes"`
	Assignments []Assignment `json:"assignments"`
}

// NewResult assembles a Result from a labeled partition: sizes, SSE
// against the label centroids, silhouette, and per-run assignments in
// row order. It is shared by the registry analyses, the speccluster
// CLI, and the benchmarks, so every surface reports the same shape.
func NewResult(algo string, m *Matrix, labels []int, k, workers int) Result {
	return newResult(algo, m, labels, k, Silhouette(m, labels, k, workers))
}

// newResult is NewResult with the silhouette already in hand — the
// registry analyses reuse the sweep's value instead of rescanning.
func newResult(algo string, m *Matrix, labels []int, k int, silhouette float64) Result {
	res := Result{
		Algo:        algo,
		K:           k,
		Features:    m.Features,
		Silhouette:  silhouette,
		Sizes:       make([]int, k),
		Assignments: make([]Assignment, len(m.Runs)),
	}
	for i, r := range m.Runs {
		res.Sizes[labels[i]]++
		res.Assignments[i] = Assignment{ID: r.ID, Cluster: labels[i]}
	}
	res.SSE = SSE(m, labels, Centroids(m, labels, k))
	return res
}

// Validation hooks shared by the schema declarations.

func intAtLeast(low int64) func(any) error {
	return func(v any) error {
		if n := v.(int64); n < low {
			return fmt.Errorf("%d below minimum %d", n, low)
		}
		return nil
	}
}

func floatAtLeast(low float64) func(any) error {
	return func(v any) error {
		f := v.(float64)
		// ParseFloat admits "NaN" and "Inf"; both slip past every
		// downstream range check (NaN compares false with everything),
		// so reject non-finite values here, at the 400 boundary.
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return fmt.Errorf("%g is not a finite number", f)
		}
		if f < low {
			return fmt.Errorf("%g below minimum %g", f, low)
		}
		return nil
	}
}

// featuresParam declares the feature-subset knob, validated against
// FeatureNames at resolve time so a typo is a 400, not a computation
// failure deep in Extract.
func featuresParam() analysis.Param {
	return analysis.Param{
		Name: "features", Kind: analysis.KindStringList,
		Description: "feature subset (default all: " + strings.Join(FeatureNames(), ",") + ")",
		Validate: func(v any) error {
			_, err := selectFeatures(v.([]string))
			return err
		},
	}
}

func seedParam() analysis.Param {
	return analysis.Param{
		Name: "seed", Kind: analysis.KindInt, Default: DefaultSeed,
		Description: "k-means++ RNG seed",
	}
}

func sweepRangeParams(kmaxDefault int) []analysis.Param {
	return []analysis.Param{
		{Name: "kmin", Kind: analysis.KindInt, Default: autoKMin,
			Description: "sweep lower bound", Validate: intAtLeast(2)},
		{Name: "kmax", Kind: analysis.KindInt, Default: kmaxDefault,
			Description: "sweep upper bound (clamped to the corpus size)",
			Validate:    intAtLeast(2)},
	}
}

// partitionSchema declares the knobs of the "clusters" and
// "cluster-profiles" analyses — both describe the same partition, so
// they share one schema (and, through the partition cache, one
// computation per parameterization). The canonical identity is
// schema-wide: a knob the selected algorithm happens to ignore
// (linkage under kmeans, say) still keys a distinct scenario. Equal
// canonical strings always mean equal computations; the converse is
// deliberately not promised — collapsing it would couple the identity
// to per-algorithm data flow.
func partitionSchema() analysis.Schema {
	s := analysis.Schema{
		{Name: "k", Kind: analysis.KindInt, Default: 0,
			Description: "cluster count (0 = auto-select by silhouette over kmin…kmax)",
			Validate:    intAtLeast(0)},
		{Name: "algo", Kind: analysis.KindEnum, Enum: []string{"kmeans", "hac", "minibatch"},
			Default: "kmeans", Description: "clustering algorithm"},
		{Name: "batch", Kind: analysis.KindInt, Default: 128,
			Description: "minibatch rows sampled per iteration",
			Validate:    intAtLeast(1)},
		{Name: "linkage", Kind: analysis.KindEnum,
			Enum:    []string{"average", "single", "complete"},
			Default: "average", Description: "hac cluster-distance criterion"},
		{Name: "cut", Kind: analysis.KindFloat, Default: 0.0,
			Description: "hac dendrogram distance threshold (overrides k)",
			Validate:    floatAtLeast(0)},
		seedParam(),
		featuresParam(),
	}
	return append(s, sweepRangeParams(autoKMax)...)
}

func sweepSchema() analysis.Schema {
	s := analysis.Schema{seedParam(), featuresParam()}
	return append(s, sweepRangeParams(sweepKMax)...)
}

// partition is the shared outcome of one parameterized clustering: the
// feature matrix plus the labeled partition and its silhouette. k == 0
// means the corpus slice had fewer than two comparable runs (or the
// auto-k sweep had no room after clamping) — nothing to cluster, but
// not an error.
type partition struct {
	m      *Matrix
	algo   string // reported label: "kmeans++" or "hac/<linkage>"
	k      int
	labels []int
	sil    float64
}

// memoRing is the tiny bounded (dataset, key) → value memo behind the
// clustering analyses. The ring is small and bounded: an evicted entry
// just recomputes, and because the whole pipeline is deterministic,
// concurrent misses that race to fill a slot store identical values.
type memoRing[T any] struct {
	mu      sync.Mutex
	entries [8]memoEntry[T]
	next    int
	// Lifetime counters, guarded by mu. Plain counts only — this code is
	// reachable from registered analyses, so no clocks or I/O here; the
	// serving layer reads them out via MemoRingCounters.
	hits      int64
	misses    int64
	evictions int64
}

type memoEntry[T any] struct {
	// ds is the dataset's CacheKey, not the pointer itself: the engine
	// hands traced requests a shallow WithKernel copy, and both copies
	// must hit the same entry.
	ds  any
	key string
	val T
}

func (r *memoRing[T]) get(ds *analysis.Dataset, key string) (T, bool) {
	return r.getByID(ds.CacheKey(), key)
}

// getByID is get keyed by a raw cache identity, for callers holding a
// dataset lineage key rather than the dataset itself (the mini-batch
// warm-start path). A nil id — a dataset with no predecessor — is
// always a miss: empty ring slots must never match it.
func (r *memoRing[T]) getByID(id any, key string) (T, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if id != nil {
		for _, e := range r.entries {
			if e.ds == id && e.key == key {
				r.hits++
				return e.val, true
			}
		}
	}
	r.misses++
	var zero T
	return zero, false
}

func (r *memoRing[T]) put(ds *analysis.Dataset, key string, val T) {
	r.putByID(ds.CacheKey(), key, val)
}

func (r *memoRing[T]) putByID(id any, key string, val T) {
	r.mu.Lock()
	if r.entries[r.next].ds != nil {
		r.evictions++
	}
	r.entries[r.next] = memoEntry[T]{ds: id, key: key, val: val}
	r.next = (r.next + 1) % len(r.entries)
	r.mu.Unlock()
}

// counters snapshots one ring's lifetime counts.
func (r *memoRing[T]) counters() RingCounters {
	r.mu.Lock()
	defer r.mu.Unlock()
	return RingCounters{Hits: r.hits, Misses: r.misses, Evictions: r.evictions}
}

// RingCounters is one memo ring's lifetime hit/miss/eviction counts.
type RingCounters struct {
	Hits      int64
	Misses    int64
	Evictions int64
}

// MemoRingStats snapshots the package's memo rings — the partition ring
// behind "clusters"/"cluster-profiles", the sweep ring behind the
// auto-k branch and "cluster-sweep", and the warm ring carrying
// mini-batch online state across dataset generations.
type MemoRingStats struct {
	Partition RingCounters
	Sweep     RingCounters
	Warm      RingCounters
}

// MemoRingCounters reports the process-wide memo-ring counters, for the
// serving layer's /metrics exposition.
func MemoRingCounters() MemoRingStats {
	return MemoRingStats{
		Partition: partitionCache.counters(),
		Sweep:     sweepCache.counters(),
		Warm:      warmCache.counters(),
	}
}

// partitionCache memoizes partitionFor per (dataset, canonical params)
// so "clusters" and "cluster-profiles" — fanned out concurrently by
// Engine.Run — share one computation per scenario instead of each
// paying for it. sweepCache memoizes sweepFor per (dataset, features,
// range, seed): the auto-k branch of the partition and the
// "cluster-sweep" analysis both need the same SweepK — the dominant
// cost of a default clustering — so sharing it keeps "run clusters and
// its sweep" at one sweep instead of two.
var (
	partitionCache memoRing[*partition]
	sweepCache     memoRing[[]SweepPoint]
	// warmCache carries mini-batch online state (centroids + counts)
	// across dataset generations: entries are stored under the dataset
	// that produced them and looked up under the successor's
	// PrevCacheKey, so an appended-to corpus continues its predecessor's
	// clustering instead of re-seeding. An evicted entry just means a
	// cold re-seed — determinism holds per lineage either way, because a
	// fixed append sequence replays fixed lookups.
	warmCache memoRing[miniWarm]
)

// miniWarm is the online state one mini-batch run hands its successor.
type miniWarm struct {
	cents  [][]float64
	counts []int64
}

// partitionFor computes (or recalls) the partition the params describe
// over the dataset's comparable runs.
func partitionFor(ds *analysis.Dataset, params analysis.Params) (*partition, error) {
	key := params.Canonical()
	if p, ok := partitionCache.get(ds, key); ok {
		return p, nil
	}
	p, err := computePartition(ds, params)
	if err != nil {
		return nil, err
	}
	partitionCache.put(ds, key, p)
	return p, nil
}

// sweepFor computes (or recalls) the k sweep of m over [kmin, kmax]
// under seed. Equal feature selections over one dataset produce equal
// matrices (extraction is deterministic), so the cache keys by the
// sweep-relevant inputs alone, letting the partition path and the
// sweep analysis share entries across their different schemas.
func sweepFor(ds *analysis.Dataset, m *Matrix, kmin, kmax int, seed int64, workers int) ([]SweepPoint, error) {
	key := fmt.Sprintf("%s|%d|%d|%d", strings.Join(m.Features, ","), kmin, kmax, seed)
	if pts, ok := sweepCache.get(ds, key); ok {
		return pts, nil
	}
	pts, err := SweepK(m, kmin, kmax, seed, workers)
	if err != nil {
		return nil, err
	}
	sweepCache.put(ds, key, pts)
	return pts, nil
}

const (
	algoKMeans    = "kmeans++"
	algoMiniBatch = "minibatch"
)

// kmeansObserver adapts the dataset's kernel observer to the k-means
// per-iteration callback; nil when the dataset is unobserved. The
// adapter only forwards deterministic counts through a dynamic call —
// no clocks, no I/O — so registered analyses stay determinism-clean.
func kmeansObserver(ds *analysis.Dataset) func(iter, moved int, converged bool) {
	obs := ds.Kernel
	if obs == nil {
		return nil
	}
	return func(iter, moved int, converged bool) {
		obs(analysis.KernelEvent{Kernel: "kmeans", Event: "iteration",
			Index: iter, Moved: moved, Converged: converged})
	}
}

// minibatchObserver forwards mini-batch iteration events to the
// dataset's kernel observer; nil when the dataset is unobserved.
func minibatchObserver(ds *analysis.Dataset) func(iter, moved int, converged bool) {
	obs := ds.Kernel
	if obs == nil {
		return nil
	}
	return func(iter, moved int, converged bool) {
		obs(analysis.KernelEvent{Kernel: "minibatch", Event: "iteration",
			Index: iter, Moved: moved, Converged: converged})
	}
}

// hacObserver is kmeansObserver's HAC sibling, forwarding merge-batch
// events.
func hacObserver(ds *analysis.Dataset) func(batch, merges int, maxDist float64) {
	obs := ds.Kernel
	if obs == nil {
		return nil
	}
	return func(batch, merges int, maxDist float64) {
		obs(analysis.KernelEvent{Kernel: "hac", Event: "merge-batch",
			Index: batch, Merges: merges, MaxDist: maxDist})
	}
}

func computePartition(ds *analysis.Dataset, p analysis.Params) (*partition, error) {
	m, err := Extract(ds.Comparable, Options{Features: p.Strings("features")})
	if err != nil {
		return nil, err
	}
	algo := p.Str("algo")
	label := algoKMeans
	switch algo {
	case "hac":
		label = "hac/" + p.Str("linkage")
	case "minibatch":
		label = algoMiniBatch
	}
	part := &partition{m: m, algo: label}
	n := len(m.Rows)
	if n < 2 {
		return part, nil // nothing to cluster; degrade, don't error
	}
	k := p.Int("k")
	if k > n {
		return nil, analysis.BadParams("k = %d exceeds the %d clusterable runs", k, n)
	}
	workers := ds.Workers
	switch algo {
	case "kmeans":
		seed := p.Int64("seed")
		if k == 0 {
			kmin, kmax, err := sweepRange(p, n)
			if err != nil {
				return nil, err
			}
			if kmax < kmin {
				return part, nil // corpus smaller than the sweep floor
			}
			sweep, err := sweepFor(ds, m, kmin, kmax, seed, workers)
			if err != nil {
				return nil, err
			}
			k = AutoK(sweep)
			res, err := KMeans(m, KMeansOptions{K: k, Seed: seed, Workers: workers,
				OnIteration: kmeansObserver(ds)})
			if err != nil {
				return nil, err
			}
			part.k, part.labels = res.K, res.Labels
			// The sweep already scored this k; the same seed reproduces
			// the same labels, so the silhouette carries over exactly.
			for _, pt := range sweep {
				if pt.K == k {
					part.sil = pt.Silhouette
				}
			}
			return part, nil
		}
		res, err := KMeans(m, KMeansOptions{K: k, Seed: seed, Workers: workers,
			OnIteration: kmeansObserver(ds)})
		if err != nil {
			return nil, err
		}
		part.k, part.labels = res.K, res.Labels
		part.sil = Silhouette(m, res.Labels, res.K, workers)
		return part, nil
	case "hac":
		cut := p.Float("cut")
		if k == 0 && cut == 0 {
			return nil, analysis.BadParams("algo=hac needs k or cut")
		}
		lk, err := ParseLinkage(p.Str("linkage"))
		if err != nil {
			return nil, err // unreachable: the enum admits only valid spellings
		}
		res, err := HAC(m, HACOptions{Linkage: lk, K: k, Cut: cut, Workers: workers,
			OnMergeBatch: hacObserver(ds)})
		if err != nil {
			return nil, err
		}
		part.k, part.labels = res.K, res.Labels
		part.sil = Silhouette(m, res.Labels, res.K, workers)
		return part, nil
	case "minibatch":
		seed := p.Int64("seed")
		if k == 0 {
			kmin, kmax, err := sweepRange(p, n)
			if err != nil {
				return nil, err
			}
			if kmax < kmin {
				return part, nil // corpus smaller than the sweep floor
			}
			sweep, err := sweepFor(ds, m, kmin, kmax, seed, workers)
			if err != nil {
				return nil, err
			}
			k = AutoK(sweep)
		}
		mbo := MiniBatchOptions{K: k, Seed: seed, BatchSize: p.Int("batch"),
			Workers: workers, OnIteration: minibatchObserver(ds)}
		// Warm-start from the predecessor dataset's online state (the
		// partition this same parameterization produced before the last
		// append), when one exists and its shape still fits.
		if w, ok := warmCache.getByID(ds.PrevCacheKey(), p.Canonical()); ok {
			mbo.InitCentroids, mbo.InitCounts = w.cents, w.counts
		}
		res, err := MiniBatch(m, mbo)
		if err != nil {
			return nil, err
		}
		warmCache.putByID(ds.CacheKey(), p.Canonical(),
			miniWarm{cents: res.Centroids, counts: res.Counts})
		part.k, part.labels = res.K, res.Labels
		part.sil = Silhouette(m, res.Labels, res.K, workers)
		return part, nil
	default:
		return nil, analysis.BadParams("unknown algo %q", algo)
	}
}

// sweepRange reads kmin/kmax, rejects an inverted request, and clamps
// kmax to the corpus size (a small scope must degrade, not error).
func sweepRange(p analysis.Params, rows int) (kmin, kmax int, err error) {
	kmin, kmax = p.Int("kmin"), p.Int("kmax")
	if kmax < kmin {
		return 0, 0, analysis.BadParams("kmax = %d below kmin = %d", kmax, kmin)
	}
	return kmin, min(kmax, rows), nil
}

func init() {
	analysis.RegisterParams("clusters",
		"machine-configuration clusters (k-means++, auto-k by silhouette)",
		partitionSchema(),
		func(ds *analysis.Dataset, p analysis.Params) (any, error) {
			part, err := partitionFor(ds, p)
			if err != nil {
				return nil, err
			}
			if part.k == 0 {
				return Result{Algo: part.algo, Features: part.m.Features,
					Sizes: []int{}, Assignments: []Assignment{}}, nil
			}
			return newResult(part.algo, part.m, part.labels, part.k, part.sil), nil
		}, analysis.Reads(analysis.InputComparable))
	analysis.RegisterParams("cluster-profiles",
		"per-cluster phenotypes: dominant vendor, median cores/score, year range",
		partitionSchema(),
		func(ds *analysis.Dataset, p analysis.Params) (any, error) {
			part, err := partitionFor(ds, p)
			if err != nil {
				return nil, err
			}
			if part.k == 0 {
				return ProfileSet{Algo: part.algo, Profiles: []Profile{}}, nil
			}
			return ProfileSet{
				Algo:       part.algo,
				K:          part.k,
				Silhouette: part.sil,
				Profiles:   Profiles(part.m.Runs, part.labels, part.k),
			}, nil
		}, analysis.Reads(analysis.InputComparable))
	analysis.RegisterParams("cluster-sweep",
		"k sweep: within-cluster SSE and silhouette for k = 2…10 (elbow curve)",
		sweepSchema(),
		func(ds *analysis.Dataset, p analysis.Params) (any, error) {
			m, err := Extract(ds.Comparable, Options{Features: p.Strings("features")})
			if err != nil {
				return nil, err
			}
			kmin, kmax, err := sweepRange(p, len(m.Rows))
			if err != nil {
				return nil, err
			}
			if kmax < kmin {
				return []SweepPoint{}, nil
			}
			return sweepFor(ds, m, kmin, kmax, p.Int64("seed"), ds.Workers)
		}, analysis.Reads(analysis.InputComparable))
}
