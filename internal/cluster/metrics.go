package cluster

import (
	"fmt"
	"strings"

	"repro/internal/par"
	"repro/internal/stats"
)

// Centroids returns the per-cluster mean rows of m under labels,
// accumulated in fixed row order. Clusters without members keep a zero
// centroid.
func Centroids(m *Matrix, labels []int, k int) [][]float64 {
	dim := 0
	if len(m.Rows) > 0 {
		dim = len(m.Rows[0])
	}
	cents := make([][]float64, k)
	for c := range cents {
		cents[c] = make([]float64, dim)
	}
	counts := make([]int, k)
	for i, row := range m.Rows {
		c := labels[i]
		counts[c]++
		for j, v := range row {
			cents[c][j] += v
		}
	}
	for c, cnt := range counts {
		if cnt == 0 {
			continue
		}
		for j := range cents[c] {
			cents[c][j] /= float64(cnt)
		}
	}
	return cents
}

// SSE is the within-cluster sum of squared distances from each row to
// its cluster centroid — the elbow-curve quantity.
func SSE(m *Matrix, labels []int, cents [][]float64) float64 {
	var sum float64
	for i, row := range m.Rows {
		sum += sqDist(row, cents[labels[i]])
	}
	return sum
}

// Silhouette is the mean silhouette coefficient of the partition: per
// row, (b−a)/max(a,b) where a is the mean distance to the row's own
// cluster and b the smallest mean distance to another cluster. Rows in
// singleton clusters score 0, as do rows where both means vanish. The
// per-row O(n) scans shard across the worker pool (disjoint writes),
// and the final mean accumulates in row order, so the value is
// schedule-independent. With fewer than two clusters the coefficient
// is undefined and Silhouette returns 0.
func Silhouette(m *Matrix, labels []int, k, workers int) float64 {
	n := len(m.Rows)
	if k < 2 || n < 2 {
		return 0
	}
	sizes := make([]int, k)
	for _, l := range labels {
		sizes[l]++
	}
	scores := make([]float64, n)
	_ = par.ForEach(n, workers, func(i int) error {
		if sizes[labels[i]] < 2 {
			return nil // singleton: s(i) = 0 by convention
		}
		sums := make([]float64, k)
		for j, row := range m.Rows {
			if j == i {
				continue
			}
			sums[labels[j]] += stats.EuclideanDist(m.Rows[i], row)
		}
		own := labels[i]
		a := sums[own] / float64(sizes[own]-1)
		b := -1.0
		for c := 0; c < k; c++ {
			if c == own || sizes[c] == 0 {
				continue
			}
			if mean := sums[c] / float64(sizes[c]); b < 0 || mean < b {
				b = mean
			}
		}
		if denom := max(a, b); denom > 0 {
			scores[i] = (b - a) / denom
		}
		return nil
	})
	var sum float64
	for _, s := range scores {
		sum += s
	}
	return sum / float64(n)
}

// SweepPoint is one row of the k sweep: the elbow curve (SSE) plus the
// silhouette at that k.
type SweepPoint struct {
	K          int
	SSE        float64
	Silhouette float64
}

// SweepK runs seeded k-means for every k in [kmin, kmax] and reports
// SSE and silhouette per k — the elbow/auto-k sweep. Each k uses the
// same seed, so the sweep is as deterministic as its parts.
func SweepK(m *Matrix, kmin, kmax int, seed int64, workers int) ([]SweepPoint, error) {
	if kmin < 1 || kmin > kmax || kmax > len(m.Rows) {
		return nil, fmt.Errorf("cluster: sweep range [%d, %d] outside [1, %d rows]",
			kmin, kmax, len(m.Rows))
	}
	points := make([]SweepPoint, 0, kmax-kmin+1)
	for k := kmin; k <= kmax; k++ {
		res, err := KMeans(m, KMeansOptions{K: k, Seed: seed, Workers: workers})
		if err != nil {
			return nil, err
		}
		points = append(points, SweepPoint{
			K:          k,
			SSE:        res.SSE,
			Silhouette: Silhouette(m, res.Labels, res.K, workers),
		})
	}
	return points, nil
}

// SweepTable renders a sweep as the text table every surface shares
// (the terminal report and the speccluster CLI both print this).
func SweepTable(points []SweepPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%4s %14s %12s\n", "k", "within-SSE", "silhouette")
	for _, p := range points {
		fmt.Fprintf(&b, "%4d %14.1f %12.3f\n", p.K, p.SSE, p.Silhouette)
	}
	return b.String()
}

// AutoK picks the sweep's best k: the highest silhouette, ties to the
// smaller k. An empty sweep returns 0.
func AutoK(points []SweepPoint) int {
	best := 0
	bestSil := 0.0
	for _, p := range points {
		if best == 0 || p.Silhouette > bestSil {
			best, bestSil = p.K, p.Silhouette
		}
	}
	return best
}
