// Package cluster groups machine configurations of the SPEC Power
// corpus: it turns parsed runs into standardized numeric feature
// vectors (Extract) and partitions them with seeded k-means++ (KMeans)
// or hierarchical agglomerative clustering under the Lance–Williams
// update (HAC), in the spirit of the phenotype and outbreak-detection
// clustering the source paper's related work builds on.
//
// Quality is judged by within-cluster SSE and the silhouette score
// (Silhouette, SweepK, AutoK), and clusters are summarized into
// human-readable phenotypes (Profiles): dominant vendor, median
// cores/score, year range. The pinned corpus analyses — "clusters",
// "cluster-profiles", "cluster-sweep" — are registered with the
// analysis registry in this package's init, so they flow through
// core.Engine, specanalyze, and specserve like every other analysis.
//
// Everything is deterministic under a seed: the k-means RNG is private
// (never the global rand), parallel phases write disjoint indexes, and
// all reductions run in fixed index order, so equal seeds and corpora
// give byte-identical JSON.
package cluster
