// Package cliutil holds the flag wiring shared by the command line
// tools: specanalyze, specserve, and speccluster accept the same
// -in/-seed/-workers/-cache/-filter corpus flags and build their
// core.Source through the same helper, so the binaries cannot drift.
// ParamFlags adds the repeatable -p name.key=value analysis-parameter
// flag (registered by specanalyze; specserve takes the same parameters
// as query keys and speccluster as dedicated flags, all resolved
// against the same declared schemas).
package cliutil

import (
	"flag"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/synth"
)

// CorpusFlags collects the shared corpus-selection flags after
// flag.Parse. Zero values select the default in-memory synthetic
// corpus.
type CorpusFlags struct {
	// Ins are the -in values in order: corpus directories and
	// "synth:<seed>" specs, merged into one stream.
	Ins []string
	// Seed generates the in-memory corpus when Ins is empty.
	Seed int64
	// Workers bounds parsing and analysis parallelism (0 = GOMAXPROCS).
	Workers int
	// Cache keeps a gob parse cache next to each corpus directory.
	Cache bool
	// Filter slices the corpus with a core.ParseFilter expression.
	Filter string
}

// insFlag adapts CorpusFlags.Ins to flag.Value for repeatable -in.
type insFlag CorpusFlags

func (f *insFlag) String() string { return strings.Join(f.Ins, ",") }

func (f *insFlag) Set(v string) error {
	// An empty -in (e.g. an unset shell variable) falls through to the
	// default in-memory corpus, as the usage string promises.
	if v != "" {
		f.Ins = append(f.Ins, v)
	}
	return nil
}

// RegisterCorpusFlags installs the shared corpus flags on fs (use
// flag.CommandLine in main) and returns the struct they populate.
func RegisterCorpusFlags(fs *flag.FlagSet) *CorpusFlags {
	c := &CorpusFlags{}
	fs.Var((*insFlag)(c), "in", "corpus directory or synth:<seed>; repeatable, merged in order (empty = generate in memory)")
	fs.Int64Var(&c.Seed, "seed", synth.DefaultSeed, "seed when generating in memory")
	fs.IntVar(&c.Workers, "workers", 0, "parallel parsers and analyses (0 = GOMAXPROCS)")
	fs.BoolVar(&c.Cache, "cache", false, "keep a gob parse cache next to each corpus directory")
	fs.StringVar(&c.Filter, "filter", "", "corpus slice, e.g. \"vendor=AMD,since=2021\" (keys: vendor, os, year, since)")
	return c
}

// Source builds the corpus source the flags describe: every -in merged
// in order (or the seeded in-memory corpus when none was given),
// cached when -cache is set, wrapped in the -filter slice when one was
// given.
func (c *CorpusFlags) Source() (core.Source, error) {
	var src core.Source
	switch len(c.Ins) {
	case 0:
		opt := synth.DefaultOptions()
		opt.Seed = c.Seed
		src = core.SynthSource{Options: opt}
	case 1:
		s, err := sourceFor(c.Ins[0], c.Cache)
		if err != nil {
			return nil, err
		}
		src = s
	default:
		merged := make(core.MergeSource, len(c.Ins))
		for i, in := range c.Ins {
			s, err := sourceFor(in, c.Cache)
			if err != nil {
				return nil, err
			}
			merged[i] = s
		}
		src = merged
	}
	if c.Filter != "" {
		keep, err := core.ParseFilter(c.Filter)
		if err != nil {
			return nil, err
		}
		src = core.FilterSource{Inner: src, Keep: keep, Desc: c.Filter}
	}
	return src, nil
}

// Dirs returns the -in values that name corpus directories —
// synth:<seed> specs excluded — in flag order. This is the set a live
// watcher (specserve -watch) can poll for new result files; an empty
// result means the corpus has no on-disk component to watch.
func (c *CorpusFlags) Dirs() []string {
	var dirs []string
	for _, in := range c.Ins {
		if !strings.HasPrefix(in, "synth:") {
			dirs = append(dirs, in)
		}
	}
	return dirs
}

// ParamFlags collects repeatable -p name.key=value analysis-parameter
// assignments, grouped by analysis name. The assignments resolve
// against each analysis's declared schema (analysis.Registration
// .Params), so the CLI rejects exactly what the HTTP server would 400.
type ParamFlags map[string]map[string]string

// String implements flag.Value.
func (p ParamFlags) String() string {
	var parts []string
	for name, raw := range p {
		for key, val := range raw {
			parts = append(parts, name+"."+key+"="+val)
		}
	}
	sort.Strings(parts)
	return strings.Join(parts, " ")
}

// Set implements flag.Value for one "name.key=value" assignment.
func (p ParamFlags) Set(v string) error {
	name, rest, ok := strings.Cut(v, ".")
	if !ok || name == "" {
		return fmt.Errorf("-p %q: want name.key=value (e.g. clusters.k=5)", v)
	}
	key, val, ok := strings.Cut(rest, "=")
	if !ok || key == "" {
		return fmt.Errorf("-p %q: want name.key=value (e.g. clusters.k=5)", v)
	}
	if p[name] == nil {
		p[name] = map[string]string{}
	}
	p[name][key] = val
	return nil
}

// RegisterParamFlags installs the repeatable -p flag on fs and returns
// the map it populates.
func RegisterParamFlags(fs *flag.FlagSet) ParamFlags {
	p := ParamFlags{}
	fs.Var(p, "p", "analysis parameter, name.key=value (repeatable), e.g. -p clusters.k=5")
	return p
}

// Requests builds engine requests for the named analyses (empty =
// every registered one, in registration order), resolving the
// collected -p assignments against each analysis's declared schema.
// Assignments naming an analysis outside the selection error rather
// than being silently dropped; unknown analysis names without
// assignments pass through so the engine reports them with its usual
// listing.
func (p ParamFlags) Requests(names []string) ([]core.Request, error) {
	if len(names) == 0 {
		names = analysis.Names()
	}
	selected := map[string]bool{}
	reqs := make([]core.Request, len(names))
	for i, name := range names {
		selected[name] = true
		reqs[i] = core.Request{Name: name}
		raw := p[name]
		if len(raw) == 0 {
			continue
		}
		reg, ok := analysis.Lookup(name)
		if !ok {
			return nil, &core.UnknownAnalysisError{Name: name, Available: analysis.SortedNames()}
		}
		params, err := reg.Params.Resolve(raw)
		if err != nil {
			return nil, fmt.Errorf("-p %s.*: %w", name, err)
		}
		reqs[i].Params = params
	}
	var strays []string
	for name := range p {
		if !selected[name] {
			strays = append(strays, name)
		}
	}
	if len(strays) > 0 {
		// Sorted so the error names the same stray assignment every run
		// — map iteration order must not pick which mistake is blamed.
		sort.Strings(strays)
		return nil, fmt.Errorf("-p %s.*: analysis %q is not among the analyses being run",
			strays[0], strings.Join(strays, ", "))
	}
	return reqs, nil
}

// sourceFor builds the source for one -in value: a corpus directory
// (cached when asked) or "synth:<seed>".
func sourceFor(in string, cache bool) (core.Source, error) {
	if spec, ok := strings.CutPrefix(in, "synth:"); ok {
		seed, err := strconv.ParseInt(spec, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("-in %q: synth seed must be an integer", in)
		}
		opt := synth.DefaultOptions()
		opt.Seed = seed
		return core.SynthSource{Options: opt}, nil
	}
	if cache {
		return core.CachedSource{Dir: in}, nil
	}
	return core.DirSource{Dir: in}, nil
}
