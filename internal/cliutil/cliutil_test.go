package cliutil

import (
	"flag"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/synth"
)

func parse(t *testing.T, args ...string) *CorpusFlags {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	c := RegisterCorpusFlags(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return c
}

func sourceOf(t *testing.T, args ...string) core.Source {
	t.Helper()
	src, err := parse(t, args...).Source()
	if err != nil {
		t.Fatal(err)
	}
	return src
}

func TestDefaultSourceIsSeededSynth(t *testing.T) {
	src := sourceOf(t)
	syn, ok := src.(core.SynthSource)
	if !ok {
		t.Fatalf("default source is %T, want SynthSource", src)
	}
	if syn.Options.Seed != synth.DefaultSeed {
		t.Errorf("seed = %d, want default %d", syn.Options.Seed, synth.DefaultSeed)
	}
	if s := sourceOf(t, "-seed", "99").(core.SynthSource); s.Options.Seed != 99 {
		t.Errorf("-seed 99 gave seed %d", s.Options.Seed)
	}
}

func TestInFlagVariants(t *testing.T) {
	if src := sourceOf(t, "-in", "corpus/"); src.Name() != "dir(corpus/)" {
		t.Errorf("single dir -in gave %s", src.Name())
	}
	if src := sourceOf(t, "-in", "corpus/", "-cache"); !strings.HasPrefix(src.Name(), "cached(") {
		t.Errorf("-cache gave %s", src.Name())
	}
	if src := sourceOf(t, "-in", "synth:42"); src.(core.SynthSource).Options.Seed != 42 {
		t.Errorf("synth:42 gave %s", src.Name())
	}
	// Repeated -in values merge in order.
	src := sourceOf(t, "-in", "a/", "-in", "synth:7", "-in", "b/")
	merged, ok := src.(core.MergeSource)
	if !ok || len(merged) != 3 {
		t.Fatalf("three -in gave %T %s", src, src.Name())
	}
	if name := src.Name(); !strings.Contains(name, "dir(a/)") ||
		!strings.Contains(name, "synth(seed=7)") || !strings.Contains(name, "dir(b/)") {
		t.Errorf("merged name = %s", name)
	}
	// An empty -in value is ignored (unset shell variables).
	if src := sourceOf(t, "-in", ""); src.Name() != (core.SynthSource{Options: synth.DefaultOptions()}).Name() {
		t.Errorf("empty -in gave %s", src.Name())
	}
}

func TestFilterWrapsSource(t *testing.T) {
	src := sourceOf(t, "-filter", "vendor=AMD,since=2021")
	if name := src.Name(); !strings.HasPrefix(name, "filter(vendor=AMD,since=2021") {
		t.Errorf("filtered source name = %s", name)
	}
	if _, err := parse(t, "-filter", "color=red").Source(); err == nil {
		t.Error("bad -filter expression should fail")
	}
	if !strings.Contains(parse(t, "-filter", "color=red").Filter, "color") {
		t.Error("Filter field not populated")
	}
}

func TestBadSynthSeed(t *testing.T) {
	if _, err := parse(t, "-in", "synth:banana").Source(); err == nil ||
		!strings.Contains(err.Error(), "synth seed") {
		t.Errorf("synth:banana should fail mentioning the seed, got %v", err)
	}
}

func TestWorkersFlag(t *testing.T) {
	if c := parse(t, "-workers", "8"); c.Workers != 8 {
		t.Errorf("Workers = %d", c.Workers)
	}
}

func parseParams(t *testing.T, args ...string) (ParamFlags, error) {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(&strings.Builder{}) // silence usage on expected errors
	p := RegisterParamFlags(fs)
	return p, fs.Parse(args)
}

func TestParamFlagsCollect(t *testing.T) {
	p, err := parseParams(t,
		"-p", "clusters.k=5",
		"-p", "clusters.linkage=average",
		"-p", "cluster-sweep.kmax=6")
	if err != nil {
		t.Fatal(err)
	}
	if p["clusters"]["k"] != "5" || p["clusters"]["linkage"] != "average" ||
		p["cluster-sweep"]["kmax"] != "6" {
		t.Fatalf("collected %v", p)
	}
	// Malformed assignments fail at flag-parse time.
	for _, bad := range []string{"clusters", "clusters.k", ".k=5", "clusters.=5"} {
		if _, err := parseParams(t, "-p", bad); err == nil {
			t.Errorf("-p %q should fail", bad)
		}
	}
}

func TestParamFlagsRequests(t *testing.T) {
	p, err := parseParams(t, "-p", "clusters.k=4")
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := p.Requests([]string{"funnel", "clusters"})
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 2 || reqs[0].Name != "funnel" || reqs[1].Name != "clusters" {
		t.Fatalf("reqs = %+v", reqs)
	}
	if !reqs[0].Params.IsZero() {
		t.Error("funnel request carries params")
	}
	if got := reqs[1].Params.Canonical(); got != "k=4" {
		t.Errorf("clusters canonical = %q, want k=4", got)
	}
	// Empty selection = every registered analysis; the assignment still
	// lands on its analysis.
	reqs, err = p.Requests(nil)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, req := range reqs {
		if req.Name == "clusters" && req.Params.Canonical() == "k=4" {
			found = true
		}
	}
	if !found {
		t.Error("all-analyses selection dropped the clusters assignment")
	}
}

func TestParamFlagsRequestsErrors(t *testing.T) {
	// A value the schema rejects is a CLI error, mirroring the HTTP 400.
	p, err := parseParams(t, "-p", "clusters.k=banana")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Requests([]string{"clusters"}); err == nil ||
		!strings.Contains(err.Error(), "integer") {
		t.Errorf("bad value error = %v", err)
	}
	// Unknown keys are rejected against the schema.
	p, _ = parseParams(t, "-p", "clusters.bogus=1")
	if _, err := p.Requests([]string{"clusters"}); err == nil ||
		!strings.Contains(err.Error(), "unknown parameter") {
		t.Errorf("unknown key error = %v", err)
	}
	// Assignments for an unselected analysis error instead of being
	// silently dropped.
	p, _ = parseParams(t, "-p", "clusters.k=4")
	if _, err := p.Requests([]string{"funnel"}); err == nil ||
		!strings.Contains(err.Error(), "not among") {
		t.Errorf("unselected analysis error = %v", err)
	}
	// Params for a name that is not registered at all.
	p, _ = parseParams(t, "-p", "nope.k=4")
	if _, err := p.Requests([]string{"nope"}); err == nil {
		t.Error("unregistered analysis with params should fail")
	}
}

func TestDirsFiltersSynthSpecs(t *testing.T) {
	c := parse(t, "-in", "a/", "-in", "synth:7", "-in", "b/")
	got := c.Dirs()
	want := []string{"a/", "b/"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("Dirs() = %v, want %v", got, want)
	}
	if d := parse(t, "-in", "synth:7").Dirs(); len(d) != 0 {
		t.Errorf("Dirs() over pure synth = %v, want empty", d)
	}
	if d := parse(t).Dirs(); len(d) != 0 {
		t.Errorf("Dirs() with no -in = %v, want empty", d)
	}
}
