package cliutil

import (
	"flag"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/synth"
)

func parse(t *testing.T, args ...string) *CorpusFlags {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	c := RegisterCorpusFlags(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return c
}

func sourceOf(t *testing.T, args ...string) core.Source {
	t.Helper()
	src, err := parse(t, args...).Source()
	if err != nil {
		t.Fatal(err)
	}
	return src
}

func TestDefaultSourceIsSeededSynth(t *testing.T) {
	src := sourceOf(t)
	syn, ok := src.(core.SynthSource)
	if !ok {
		t.Fatalf("default source is %T, want SynthSource", src)
	}
	if syn.Options.Seed != synth.DefaultSeed {
		t.Errorf("seed = %d, want default %d", syn.Options.Seed, synth.DefaultSeed)
	}
	if s := sourceOf(t, "-seed", "99").(core.SynthSource); s.Options.Seed != 99 {
		t.Errorf("-seed 99 gave seed %d", s.Options.Seed)
	}
}

func TestInFlagVariants(t *testing.T) {
	if src := sourceOf(t, "-in", "corpus/"); src.Name() != "dir(corpus/)" {
		t.Errorf("single dir -in gave %s", src.Name())
	}
	if src := sourceOf(t, "-in", "corpus/", "-cache"); !strings.HasPrefix(src.Name(), "cached(") {
		t.Errorf("-cache gave %s", src.Name())
	}
	if src := sourceOf(t, "-in", "synth:42"); src.(core.SynthSource).Options.Seed != 42 {
		t.Errorf("synth:42 gave %s", src.Name())
	}
	// Repeated -in values merge in order.
	src := sourceOf(t, "-in", "a/", "-in", "synth:7", "-in", "b/")
	merged, ok := src.(core.MergeSource)
	if !ok || len(merged) != 3 {
		t.Fatalf("three -in gave %T %s", src, src.Name())
	}
	if name := src.Name(); !strings.Contains(name, "dir(a/)") ||
		!strings.Contains(name, "synth(seed=7)") || !strings.Contains(name, "dir(b/)") {
		t.Errorf("merged name = %s", name)
	}
	// An empty -in value is ignored (unset shell variables).
	if src := sourceOf(t, "-in", ""); src.Name() != (core.SynthSource{Options: synth.DefaultOptions()}).Name() {
		t.Errorf("empty -in gave %s", src.Name())
	}
}

func TestFilterWrapsSource(t *testing.T) {
	src := sourceOf(t, "-filter", "vendor=AMD,since=2021")
	if name := src.Name(); !strings.HasPrefix(name, "filter(vendor=AMD,since=2021") {
		t.Errorf("filtered source name = %s", name)
	}
	if _, err := parse(t, "-filter", "color=red").Source(); err == nil {
		t.Error("bad -filter expression should fail")
	}
	if !strings.Contains(parse(t, "-filter", "color=red").Filter, "color") {
		t.Error("Filter field not populated")
	}
}

func TestBadSynthSeed(t *testing.T) {
	if _, err := parse(t, "-in", "synth:banana").Source(); err == nil ||
		!strings.Contains(err.Error(), "synth seed") {
		t.Errorf("synth:banana should fail mentioning the seed, got %v", err)
	}
}

func TestWorkersFlag(t *testing.T) {
	if c := parse(t, "-workers", "8"); c.Workers != 8 {
		t.Errorf("Workers = %d", c.Workers)
	}
}
