// Package catalog is the hardware substrate: a curated table of x86
// server processor generations (plus a few non-x86 and desktop parts)
// spanning 2005–2024, with the topology, frequency, TDP and
// per-generation performance characterization the rest of the system
// needs.
//
// The entries are modelled on the processors that actually dominate the
// SPECpower_ssj2008 corpus — Intel Xeon from Woodcrest through Emerald
// Rapids, AMD Opteron and the EPYC line from Naples through Turin — with
// per-core throughput factors chosen so the simulated fleet reproduces
// the efficiency magnitudes the paper reports.
package catalog
