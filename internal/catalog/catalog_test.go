package catalog

import (
	"strings"
	"testing"

	"repro/internal/model"
)

func TestCatalogWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range All() {
		if s.Name == "" {
			t.Fatal("entry with empty name")
		}
		if seen[s.Name] {
			t.Errorf("duplicate entry %q", s.Name)
		}
		seen[s.Name] = true
		if !s.Avail.Valid() {
			t.Errorf("%s: invalid availability date", s.Name)
		}
		if s.Cores <= 0 || s.ThreadsPerCore <= 0 || s.MaxSockets <= 0 {
			t.Errorf("%s: bad topology %d/%d/%d", s.Name, s.Cores, s.ThreadsPerCore, s.MaxSockets)
		}
		if s.NominalGHz <= 0.5 || s.NominalGHz > 5 {
			t.Errorf("%s: implausible clock %v", s.Name, s.NominalGHz)
		}
		if s.TDPWatts < 20 || s.TDPWatts > 600 {
			t.Errorf("%s: implausible TDP %v", s.Name, s.TDPWatts)
		}
		if s.OpsPerCoreGHz <= 0 || s.FPRatio <= 0 {
			t.Errorf("%s: missing characterization", s.Name)
		}
		switch s.VectorBits {
		case 128, 256, 512:
		default:
			t.Errorf("%s: bad vector width %d", s.Name, s.VectorBits)
		}
	}
	if len(seen) < 40 {
		t.Errorf("catalog has only %d entries", len(seen))
	}
}

func TestClassificationConsistency(t *testing.T) {
	for _, s := range All() {
		// The model's name-based classifiers must agree with the tags,
		// since parsed result files rely on name classification.
		if got := model.ParseCPUVendor(s.Name); got != s.Vendor {
			t.Errorf("%s: ParseCPUVendor = %v, tag %v", s.Name, got, s.Vendor)
		}
		if s.Vendor == model.VendorIntel || s.Vendor == model.VendorAMD {
			if got := model.ClassifyCPU(s.Name); got != s.Class {
				t.Errorf("%s: ClassifyCPU = %v, tag %v", s.Name, got, s.Class)
			}
		}
	}
}

func TestOpsPerCoreGHzProgression(t *testing.T) {
	// Within each vendor's server line, per-core throughput must broadly
	// rise over time: the last generation beats the first by ≥4×.
	for _, v := range []model.CPUVendor{model.VendorIntel, model.VendorAMD} {
		parts := ByVendor(v)
		if len(parts) < 5 {
			t.Fatalf("%v: only %d server parts", v, len(parts))
		}
		first, last := parts[0], parts[0]
		for _, s := range parts {
			if s.Avail.Before(first.Avail) {
				first = s
			}
			if s.Avail.After(last.Avail) {
				last = s
			}
		}
		if last.OpsPerCoreGHz < 4*first.OpsPerCoreGHz {
			t.Errorf("%v: per-core ops grew only %.1f× (%s → %s)",
				v, last.OpsPerCoreGHz/first.OpsPerCoreGHz, first.Name, last.Name)
		}
	}
}

func TestTDPGrowth(t *testing.T) {
	// The paper's Figure 2 premise: top-end TDP grows strongly.
	maxEarly, maxLate := 0.0, 0.0
	for _, s := range ServerParts() {
		if s.Avail.Year <= 2010 && s.TDPWatts > maxEarly {
			maxEarly = s.TDPWatts
		}
		if s.Avail.Year >= 2022 && s.TDPWatts > maxLate {
			maxLate = s.TDPWatts
		}
	}
	if maxLate < 2*maxEarly {
		t.Errorf("late TDP %v not ≥2× early TDP %v", maxLate, maxEarly)
	}
}

func TestFind(t *testing.T) {
	s, err := Find("EPYC 9754")
	if err != nil {
		t.Fatal(err)
	}
	if s.Cores != 128 || s.Vendor != model.VendorAMD {
		t.Errorf("unexpected spec %+v", s)
	}
	if _, err := Find("EPYC"); err == nil ||
		!strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("ambiguous Find should error, got %v", err)
	}
	if _, err := Find("Itanium"); err == nil {
		t.Error("unknown Find should error")
	}
}

func TestVendorQueries(t *testing.T) {
	for _, s := range ByVendor(model.VendorAMD) {
		if s.Vendor != model.VendorAMD || !s.Class.IsServerClass() {
			t.Errorf("ByVendor(AMD) returned %s", s.Name)
		}
	}
	win := AvailableWithin(model.VendorAMD, model.YM(2017, 1), model.YM(2019, 12))
	if len(win) == 0 {
		t.Fatal("no AMD parts 2017–2019; EPYC launch missing")
	}
	for _, s := range win {
		if s.Avail.Year < 2017 || s.Avail.Year > 2019 {
			t.Errorf("AvailableWithin leaked %s (%s)", s.Name, s.Avail)
		}
	}
	for _, s := range NonServerParts() {
		isServer := s.Class.IsServerClass() &&
			(s.Vendor == model.VendorIntel || s.Vendor == model.VendorAMD)
		if isServer {
			t.Errorf("NonServerParts returned server part %s", s.Name)
		}
	}
}

func TestEPYCEraCoreAdvantage(t *testing.T) {
	// Paper (since 2021): AMD mean cores 85.8 vs Intel 39.5. The catalog
	// must make such a fleet constructible: AMD's ≥2021 parts out-core
	// Intel's on average by at least 1.5×.
	meanCores := func(v model.CPUVendor) float64 {
		sum, n := 0.0, 0
		for _, s := range ByVendor(v) {
			if s.Avail.Year >= 2021 {
				sum += float64(s.Cores)
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return sum / float64(n)
	}
	amd, intl := meanCores(model.VendorAMD), meanCores(model.VendorIntel)
	if amd < 1.5*intl {
		t.Errorf("≥2021 mean cores: AMD %.1f vs Intel %.1f, want ≥1.5×", amd, intl)
	}
}

func TestAllReturnsCopy(t *testing.T) {
	a := All()
	a[0].Name = "mutated"
	if All()[0].Name == "mutated" {
		t.Fatal("All must return a copy")
	}
}
