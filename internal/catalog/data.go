package catalog

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/model"
)

// intel builds an Intel Xeon entry.
func intel(name string, y int, m time.Month, cores, tpc int, ghz, tdp float64,
	maxSock int, opcg, fpRatio float64, vec, pop int) CPUSpec {
	return CPUSpec{
		Name: name, Vendor: model.VendorIntel, Class: model.ClassXeon,
		Avail: ym(y, m), Cores: cores, ThreadsPerCore: tpc,
		NominalGHz: ghz, TDPWatts: tdp, MaxSockets: maxSock,
		OpsPerCoreGHz: opcg, FPRatio: fpRatio, VectorBits: vec, Popularity: pop,
	}
}

// amd builds an AMD Opteron or EPYC entry (class derived from the name).
func amd(name string, y int, m time.Month, cores, tpc int, ghz, tdp float64,
	maxSock int, opcg, fpRatio float64, vec, pop int) CPUSpec {
	return CPUSpec{
		Name: name, Vendor: model.VendorAMD, Class: model.ClassifyCPU(name),
		Avail: ym(y, m), Cores: cores, ThreadsPerCore: tpc,
		NominalGHz: ghz, TDPWatts: tdp, MaxSockets: maxSock,
		OpsPerCoreGHz: opcg, FPRatio: fpRatio, VectorBits: vec, Popularity: pop,
	}
}

// specs is the processor table. OpsPerCoreGHz values are calibrated so
// the simulated fleet reproduces the paper's efficiency magnitudes (a
// few hundred overall ssj_ops/W in 2007, tens of thousands in 2023+).
// Popularity weights how often the synthetic fleet picks a part:
// volume mid-range SKUs (4) outnumber mainstream high-end (2–3) and
// flagship or niche parts (1), which keeps fleet-mean core counts near
// the paper's per-vendor feature statistics.
var specs = []CPUSpec{
	// --- Intel Xeon: NetBurst / Core era (2005–2008) ---
	intel("Intel Xeon 3.60 GHz (Irwindale)", 2005, time.February, 1, 2, 3.60, 110, 2, 5000, 0.95, 128, 3),
	intel("Intel Xeon 5060", 2006, time.May, 2, 2, 3.20, 130, 2, 6000, 0.95, 128, 2),
	intel("Intel Xeon 5160", 2006, time.June, 2, 1, 3.00, 80, 2, 8000, 1.00, 128, 3),
	intel("Intel Xeon X5355", 2006, time.November, 4, 1, 2.66, 120, 2, 9000, 1.00, 128, 3),
	intel("Intel Xeon 7140M", 2006, time.August, 2, 2, 3.40, 150, 4, 6000, 0.95, 128, 1),
	intel("Intel Xeon L5335", 2007, time.August, 4, 1, 2.00, 50, 2, 9200, 1.00, 128, 1),
	intel("Intel Xeon X5460", 2007, time.November, 4, 1, 3.16, 120, 2, 10500, 1.00, 128, 3),
	intel("Intel Xeon X7350", 2007, time.September, 4, 1, 2.93, 130, 4, 9500, 1.00, 128, 1),
	intel("Intel Xeon L5420", 2008, time.March, 4, 1, 2.50, 50, 2, 10500, 1.00, 128, 1),
	intel("Intel Xeon X3360", 2008, time.January, 4, 1, 2.83, 95, 1, 10500, 1.00, 128, 2),

	// --- Intel Xeon: Nehalem / Westmere (2009–2011) ---
	intel("Intel Xeon X5570", 2009, time.March, 4, 2, 2.93, 95, 2, 15000, 1.00, 128, 4),
	intel("Intel Xeon L5530", 2009, time.August, 4, 2, 2.40, 60, 2, 15000, 1.00, 128, 1),
	intel("Intel Xeon X3470", 2009, time.September, 4, 2, 2.93, 95, 1, 15000, 1.00, 128, 2),
	intel("Intel Xeon X5670", 2010, time.March, 6, 2, 2.93, 95, 2, 16500, 1.00, 128, 4),
	intel("Intel Xeon L5640", 2010, time.March, 6, 2, 2.26, 60, 2, 16500, 1.00, 128, 1),
	intel("Intel Xeon X7560", 2010, time.April, 8, 2, 2.26, 130, 4, 15500, 1.00, 128, 1),
	intel("Intel Xeon E7-4870", 2011, time.April, 10, 2, 2.40, 130, 4, 17000, 1.00, 128, 1),
	intel("Intel Xeon E3-1260L", 2011, time.April, 4, 2, 2.40, 45, 1, 17500, 1.00, 256, 2),

	// --- Intel Xeon: Sandy Bridge → Broadwell (2012–2016) ---
	intel("Intel Xeon E5-2670", 2012, time.March, 8, 2, 2.60, 115, 2, 19000, 1.05, 256, 4),
	intel("Intel Xeon E5-2660", 2012, time.March, 8, 2, 2.20, 95, 2, 19000, 1.05, 256, 3),
	intel("Intel Xeon E3-1265L v2", 2012, time.June, 4, 2, 2.50, 45, 1, 19500, 1.05, 256, 1),
	intel("Intel Xeon E5-2697 v2", 2013, time.September, 12, 2, 2.70, 130, 2, 20000, 1.05, 256, 3),
	intel("Intel Xeon E5-2699 v3", 2014, time.September, 18, 2, 2.30, 145, 2, 22000, 1.08, 256, 2),
	intel("Intel Xeon E5-2650L v3", 2015, time.February, 12, 2, 1.80, 65, 2, 22000, 1.08, 256, 1),
	intel("Intel Xeon E5-2699 v4", 2016, time.March, 22, 2, 2.20, 145, 2, 23500, 1.08, 256, 2),
	intel("Intel Xeon E5-2630L v4", 2016, time.March, 10, 2, 1.80, 55, 2, 23500, 1.08, 256, 1),

	// --- Intel Xeon Scalable (2017–2024) ---
	intel("Intel Xeon Platinum 8180", 2017, time.July, 28, 2, 2.50, 205, 8, 15900, 1.15, 512, 2),
	intel("Intel Xeon Gold 6138", 2017, time.July, 20, 2, 2.00, 125, 2, 20600, 1.15, 512, 4),
	intel("Intel Xeon Platinum 8280", 2019, time.April, 28, 2, 2.70, 205, 4, 26610, 1.15, 512, 2),
	intel("Intel Xeon Gold 6252", 2019, time.April, 24, 2, 2.10, 150, 2, 29420, 1.15, 512, 4),
	intel("Intel Xeon Platinum 8380", 2021, time.April, 40, 2, 2.30, 270, 2, 35580, 1.15, 512, 1),
	intel("Intel Xeon Platinum 8362", 2021, time.April, 32, 2, 2.80, 265, 2, 30000, 1.15, 512, 2),
	intel("Intel Xeon Gold 6330", 2021, time.April, 28, 2, 2.00, 205, 2, 43730, 1.15, 512, 3),
	intel("Intel Xeon Silver 4314", 2021, time.April, 16, 2, 2.40, 135, 2, 40250, 1.15, 512, 4),
	intel("Intel Xeon Platinum 8490H", 2023, time.February, 60, 2, 1.90, 350, 8, 71450, 1.18, 512, 1),
	intel("Intel Xeon Gold 6448Y", 2023, time.February, 32, 2, 2.10, 225, 2, 54800, 1.18, 512, 3),
	intel("Intel Xeon Gold 5420+", 2023, time.February, 28, 2, 2.00, 205, 2, 53270, 1.18, 512, 4),
	intel("Intel Xeon Gold 6426Y", 2023, time.February, 16, 2, 2.50, 185, 2, 59700, 1.18, 512, 4),
	intel("Intel Xeon Gold 6444Y", 2023, time.February, 16, 2, 3.60, 270, 2, 43000, 1.18, 512, 2),
	intel("Intel Xeon Silver 4510", 2023, time.December, 12, 2, 2.40, 150, 2, 76600, 1.18, 512, 4),
	intel("Intel Xeon Platinum 8592+", 2023, time.December, 64, 2, 1.90, 350, 2, 88150, 1.18, 512, 1),
	intel("Intel Xeon 6780E", 2024, time.June, 144, 1, 2.20, 330, 2, 48130, 0.90, 256, 1),

	// --- AMD Opteron (2005–2012) ---
	amd("AMD Opteron 252", 2005, time.February, 1, 1, 2.60, 92, 2, 5200, 0.95, 128, 2),
	amd("AMD Opteron 2218", 2006, time.August, 2, 1, 2.60, 95, 2, 8000, 0.95, 128, 3),
	amd("AMD Opteron 2216 HE", 2006, time.August, 2, 1, 2.40, 68, 2, 8000, 0.95, 128, 1),
	amd("Quad-Core AMD Opteron 2356", 2008, time.April, 4, 1, 2.30, 75, 2, 9500, 1.00, 128, 3),
	amd("AMD Opteron 2384", 2009, time.January, 4, 1, 2.70, 75, 2, 10500, 1.00, 128, 3),
	amd("AMD Opteron 6174", 2010, time.March, 12, 1, 2.20, 80, 4, 13000, 1.00, 128, 3),
	amd("AMD Opteron 6276", 2011, time.November, 16, 1, 2.30, 115, 4, 12000, 0.90, 256, 3),
	amd("AMD Opteron 6380", 2012, time.November, 16, 1, 2.50, 115, 4, 12500, 0.90, 256, 2),

	// --- AMD EPYC (2017–2024) ---
	amd("AMD EPYC 7601", 2017, time.July, 32, 2, 2.20, 180, 2, 33500, 0.95, 256, 2),
	amd("AMD EPYC 7551", 2017, time.July, 32, 2, 2.00, 180, 2, 39100, 0.95, 256, 3),
	amd("AMD EPYC 7742", 2019, time.August, 64, 2, 2.25, 225, 2, 35300, 1.00, 256, 2),
	amd("AMD EPYC 7702", 2019, time.August, 64, 2, 2.00, 200, 2, 37800, 1.00, 256, 2),
	amd("AMD EPYC 7402", 2019, time.August, 24, 2, 2.80, 180, 2, 52700, 1.00, 256, 4),
	amd("AMD EPYC 7763", 2021, time.March, 64, 2, 2.45, 280, 2, 50730, 1.00, 256, 2),
	amd("AMD EPYC 7713", 2021, time.March, 64, 2, 2.00, 225, 2, 46500, 1.00, 256, 2),
	amd("AMD EPYC 7313", 2021, time.March, 16, 2, 3.00, 155, 2, 77400, 1.00, 256, 4),
	amd("AMD EPYC 9654", 2022, time.November, 96, 2, 2.40, 360, 2, 68000, 1.00, 512, 1),
	amd("AMD EPYC 9554", 2022, time.November, 64, 2, 3.10, 360, 2, 61680, 1.00, 512, 2),
	amd("AMD EPYC 9334", 2022, time.November, 32, 2, 2.70, 210, 2, 74900, 1.00, 512, 4),
	amd("AMD EPYC 9224", 2022, time.November, 24, 2, 2.50, 200, 2, 89400, 1.00, 512, 4),
	amd("AMD EPYC 9754", 2023, time.August, 128, 2, 2.25, 360, 2, 56700, 0.90, 512, 2),
	amd("AMD EPYC 8324P", 2023, time.September, 32, 2, 2.05, 180, 1, 110000, 1.00, 512, 3),
	amd("AMD EPYC 9965", 2024, time.October, 192, 2, 2.25, 500, 2, 51200, 0.90, 512, 1),

	// --- Non-x86 server parts (filtered by the paper: "Other" vendor) ---
	{Name: "Sun UltraSPARC T2", Vendor: model.VendorOther, Class: model.ClassNonServer,
		Avail: ym(2007, time.October), Cores: 8, ThreadsPerCore: 8, NominalGHz: 1.40,
		TDPWatts: 95, MaxSockets: 1, OpsPerCoreGHz: 9000, FPRatio: 0.60, VectorBits: 128, Popularity: 1},
	{Name: "IBM POWER7", Vendor: model.VendorOther, Class: model.ClassNonServer,
		Avail: ym(2010, time.February), Cores: 8, ThreadsPerCore: 4, NominalGHz: 3.00,
		TDPWatts: 150, MaxSockets: 4, OpsPerCoreGHz: 16000, FPRatio: 1.20, VectorBits: 128, Popularity: 1},
	{Name: "Ampere Altra Q80-30", Vendor: model.VendorOther, Class: model.ClassNonServer,
		Avail: ym(2021, time.June), Cores: 80, ThreadsPerCore: 1, NominalGHz: 3.00,
		TDPWatts: 210, MaxSockets: 2, OpsPerCoreGHz: 28000, FPRatio: 0.80, VectorBits: 128, Popularity: 1},

	// --- x86 desktop/workstation parts (filtered: not Xeon/Opteron/EPYC) ---
	{Name: "Intel Pentium D 950", Vendor: model.VendorIntel, Class: model.ClassNonServer,
		Avail: ym(2006, time.January), Cores: 2, ThreadsPerCore: 1, NominalGHz: 3.40,
		TDPWatts: 130, MaxSockets: 1, OpsPerCoreGHz: 5500, FPRatio: 0.95, VectorBits: 128, Popularity: 1},
	{Name: "Intel Core i7-980X", Vendor: model.VendorIntel, Class: model.ClassNonServer,
		Avail: ym(2010, time.March), Cores: 6, ThreadsPerCore: 2, NominalGHz: 3.33,
		TDPWatts: 130, MaxSockets: 1, OpsPerCoreGHz: 16500, FPRatio: 1.00, VectorBits: 128, Popularity: 1},
	{Name: "AMD Athlon 64 X2 5000+", Vendor: model.VendorAMD, Class: model.ClassNonServer,
		Avail: ym(2006, time.May), Cores: 2, ThreadsPerCore: 1, NominalGHz: 2.60,
		TDPWatts: 89, MaxSockets: 1, OpsPerCoreGHz: 7800, FPRatio: 0.95, VectorBits: 128, Popularity: 1},
	{Name: "AMD Ryzen 9 5950X", Vendor: model.VendorAMD, Class: model.ClassNonServer,
		Avail: ym(2020, time.November), Cores: 16, ThreadsPerCore: 2, NominalGHz: 3.40,
		TDPWatts: 105, MaxSockets: 1, OpsPerCoreGHz: 33000, FPRatio: 1.00, VectorBits: 256, Popularity: 1},
}

// All returns every catalog entry (a copy; callers may reorder).
func All() []CPUSpec {
	return append([]CPUSpec(nil), specs...)
}

// Find returns the entry whose name contains the given substring
// (case-insensitive); it errors if zero or several entries match.
func Find(substr string) (CPUSpec, error) {
	var hits []CPUSpec
	needle := strings.ToLower(substr)
	for _, s := range specs {
		if strings.Contains(strings.ToLower(s.Name), needle) {
			hits = append(hits, s)
		}
	}
	switch len(hits) {
	case 0:
		return CPUSpec{}, fmt.Errorf("catalog: no CPU matching %q", substr)
	case 1:
		return hits[0], nil
	default:
		names := make([]string, len(hits))
		for i, h := range hits {
			names[i] = h.Name
		}
		return CPUSpec{}, fmt.Errorf("catalog: %q is ambiguous: %s",
			substr, strings.Join(names, "; "))
	}
}

// ServerParts returns the Intel/AMD server-class entries, the population
// the paper's filtered dataset draws from.
func ServerParts() []CPUSpec {
	var out []CPUSpec
	for _, s := range specs {
		if s.Class.IsServerClass() &&
			(s.Vendor == model.VendorIntel || s.Vendor == model.VendorAMD) {
			out = append(out, s)
		}
	}
	return out
}

// ByVendor returns the server-class entries of one vendor.
func ByVendor(v model.CPUVendor) []CPUSpec {
	var out []CPUSpec
	for _, s := range ServerParts() {
		if s.Vendor == v {
			out = append(out, s)
		}
	}
	return out
}

// AvailableWithin returns server-class entries of the vendor whose
// availability date falls in [from, to].
func AvailableWithin(v model.CPUVendor, from, to model.YearMonth) []CPUSpec {
	var out []CPUSpec
	for _, s := range ByVendor(v) {
		if !s.Avail.Before(from) && !s.Avail.After(to) {
			out = append(out, s)
		}
	}
	return out
}

// NonServerParts returns entries the paper's comparability filters
// remove: non-x86 vendors and desktop-class parts.
func NonServerParts() []CPUSpec {
	var out []CPUSpec
	for _, s := range specs {
		if !s.Class.IsServerClass() ||
			(s.Vendor != model.VendorIntel && s.Vendor != model.VendorAMD) {
			out = append(out, s)
		}
	}
	return out
}
