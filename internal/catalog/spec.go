package catalog

import (
	"fmt"
	"time"

	"repro/internal/model"
)

// CPUSpec describes one processor model: identity, topology, and the
// characterization constants used by the power and throughput models.
type CPUSpec struct {
	// Name is the marketing name as it appears in result files.
	Name string
	// Vendor and Class are the classifications used by the paper's filters.
	Vendor model.CPUVendor
	Class  model.CPUClass

	// Avail is the general-availability month.
	Avail model.YearMonth

	// Cores is the core count per socket; ThreadsPerCore is 2 with SMT.
	Cores          int
	ThreadsPerCore int
	// NominalGHz is the base clock; TDPWatts the rated per-socket TDP.
	NominalGHz float64
	TDPWatts   float64
	// MaxSockets is the largest supported socket count.
	MaxSockets int

	// OpsPerCoreGHz is the ssj throughput per core per GHz, the
	// per-generation integer IPC proxy. It rises roughly 4–5× across the
	// corpus period.
	OpsPerCoreGHz float64
	// FPRatio scales floating-point rate throughput relative to integer
	// (vector width, FP ports); used by the SPEC CPU model for Table I.
	FPRatio float64
	// VectorBits is the widest SIMD register (128/256/512).
	VectorBits int
	// Popularity weights how often the synthetic fleet samples this part
	// (volume SKUs 4 … flagship/niche 1; 0 is treated as 1).
	Popularity int
}

// String implements fmt.Stringer.
func (c CPUSpec) String() string {
	return fmt.Sprintf("%s (%dC/%dT %.2f GHz, %g W, %s)",
		c.Name, c.Cores, c.Cores*c.ThreadsPerCore, c.NominalGHz,
		c.TDPWatts, c.Avail)
}

// ym abbreviates date construction in the tables below.
func ym(y int, m time.Month) model.YearMonth { return model.YM(y, m) }
