package frame_test

import (
	"fmt"

	"repro/internal/frame"
	"repro/internal/stats"
)

// ExampleFrame_GroupBy aggregates efficiency by vendor, the shape of
// every per-figure analysis in the study.
func ExampleFrame_GroupBy() {
	f := frame.MustNew(
		frame.StringCol("vendor", []string{"AMD", "Intel", "AMD", "Intel"}),
		frame.FloatCol("eff", []float64{30000, 12000, 34000, 14000}),
	)
	g, err := f.GroupBy("vendor")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	agg, err := g.AggFloat("eff", "mean_eff", stats.Mean)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for i, v := range agg.MustStrings("vendor") {
		fmt.Printf("%s: %.0f\n", v, agg.MustFloats("mean_eff")[i])
	}
	// Output:
	// AMD: 32000
	// Intel: 13000
}

// ExampleFrame_Pivot builds the year × vendor mean-efficiency table.
func ExampleFrame_Pivot() {
	f := frame.MustNew(
		frame.IntCol("year", []int64{2022, 2022, 2023, 2023}),
		frame.StringCol("vendor", []string{"AMD", "Intel", "AMD", "Intel"}),
		frame.FloatCol("eff", []float64{28000, 11000, 32000, 15000}),
	)
	p, err := f.Pivot("year", "vendor", "eff", stats.Mean)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	years := p.MustStrings("year")
	amd := p.MustFloats("AMD")
	for i := range years {
		fmt.Printf("%s: AMD %.0f\n", years[i], amd[i])
	}
	// Output:
	// 2022: AMD 28000
	// 2023: AMD 32000
}
