package frame

import (
	"math"
	"strings"
	"testing"
)

func sample() *Frame {
	return MustNew(
		StringCol("vendor", []string{"AMD", "Intel", "AMD", "Intel", "AMD"}),
		IntCol("year", []int64{2020, 2020, 2021, 2021, 2021}),
		FloatCol("eff", []float64{30000, 12000, 35000, 15000, math.NaN()}),
		BoolCol("linux", []bool{true, false, true, false, true}),
	)
}

func TestNewValidation(t *testing.T) {
	if _, err := New(
		FloatCol("a", []float64{1, 2}),
		FloatCol("a", []float64{3, 4}),
	); err == nil {
		t.Error("duplicate names should error")
	}
	if _, err := New(
		FloatCol("a", []float64{1, 2}),
		FloatCol("b", []float64{3}),
	); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := New(nil); err == nil {
		t.Error("nil column should error")
	}
	empty, err := New()
	if err != nil || empty.Len() != 0 || empty.NumCols() != 0 {
		t.Errorf("empty frame: %v %v", empty, err)
	}
}

func TestAccessors(t *testing.T) {
	f := sample()
	if f.Len() != 5 || f.NumCols() != 4 {
		t.Fatalf("shape = %d×%d", f.Len(), f.NumCols())
	}
	if !f.Has("eff") || f.Has("nope") {
		t.Error("Has broken")
	}
	if _, err := f.Col("nope"); err == nil ||
		!strings.Contains(err.Error(), "vendor") {
		t.Errorf("missing-column error should list names, got %v", err)
	}
	eff := f.MustFloats("eff")
	if eff[0] != 30000 || !math.IsNaN(eff[4]) {
		t.Errorf("eff = %v", eff)
	}
	years := f.MustInts("year")
	if years[2] != 2021 {
		t.Errorf("year = %v", years)
	}
	vendors := f.MustStrings("vendor")
	if vendors[1] != "Intel" {
		t.Errorf("vendor = %v", vendors)
	}
}

func TestColumnConversions(t *testing.T) {
	ic := IntCol("x", []int64{1, 0, 3})
	if fs := ic.Floats(); fs[2] != 3 {
		t.Errorf("int→float = %v", fs)
	}
	if bs := ic.Bools(); !bs[0] || bs[1] {
		t.Errorf("int→bool = %v", bs)
	}
	sc := StringCol("s", []string{"1.5", "x", "2"})
	fs := sc.Floats()
	if fs[0] != 1.5 || !math.IsNaN(fs[1]) || fs[2] != 2 {
		t.Errorf("string→float = %v", fs)
	}
	bc := BoolCol("b", []bool{true, false})
	if ss := bc.Strings(); ss[0] != "true" || ss[1] != "false" {
		t.Errorf("bool→string = %v", ss)
	}
	fc := FloatCol("f", []float64{2.9, math.NaN()})
	if is := fc.Ints(); is[0] != 2 || is[1] != 0 {
		t.Errorf("float→int = %v", is)
	}
}

func TestAccessorCopies(t *testing.T) {
	f := sample()
	eff := f.MustFloats("eff")
	eff[0] = -1
	if f.MustFloats("eff")[0] != 30000 {
		t.Fatal("Floats must return a copy")
	}
}

func TestFilter(t *testing.T) {
	f := sample()
	vendors := f.MustStrings("vendor")
	amd := f.Filter(func(i int) bool { return vendors[i] == "AMD" })
	if amd.Len() != 3 {
		t.Fatalf("AMD rows = %d", amd.Len())
	}
	for _, v := range amd.MustStrings("vendor") {
		if v != "AMD" {
			t.Fatal("filter leaked non-AMD row")
		}
	}
	// Original untouched.
	if f.Len() != 5 {
		t.Fatal("filter mutated source")
	}
}

func TestFilterMask(t *testing.T) {
	f := sample()
	sub, err := f.FilterMask([]bool{true, false, false, false, true})
	if err != nil || sub.Len() != 2 {
		t.Fatalf("mask filter: %v len=%d", err, sub.Len())
	}
	if _, err := f.FilterMask([]bool{true}); err == nil {
		t.Error("short mask should error")
	}
}

func TestSelectAndWithColumn(t *testing.T) {
	f := sample()
	sub, err := f.Select("eff", "vendor")
	if err != nil {
		t.Fatal(err)
	}
	if got := sub.Names(); got[0] != "eff" || got[1] != "vendor" || len(got) != 2 {
		t.Errorf("Select names = %v", got)
	}
	if _, err := f.Select("missing"); err == nil {
		t.Error("selecting missing column should error")
	}

	f2, err := f.WithColumn(FloatCol("tdp", []float64{280, 350, 280, 350, 360}))
	if err != nil {
		t.Fatal(err)
	}
	if f2.NumCols() != 5 || f.NumCols() != 4 {
		t.Error("WithColumn must not mutate receiver")
	}
	// Replacement keeps position.
	f3, err := f2.WithColumn(FloatCol("tdp", []float64{1, 2, 3, 4, 5}))
	if err != nil {
		t.Fatal(err)
	}
	if f3.NumCols() != 5 || f3.MustFloats("tdp")[0] != 1 {
		t.Error("WithColumn replace failed")
	}
	if _, err := f.WithColumn(FloatCol("bad", []float64{1})); err == nil {
		t.Error("wrong-length column should error")
	}
}

func TestHead(t *testing.T) {
	f := sample()
	if got := f.Head(2).Len(); got != 2 {
		t.Errorf("Head(2) = %d rows", got)
	}
	if got := f.Head(99).Len(); got != 5 {
		t.Errorf("Head(99) = %d rows", got)
	}
}

func TestConcat(t *testing.T) {
	f := sample()
	both, err := f.Concat(f)
	if err != nil || both.Len() != 10 {
		t.Fatalf("concat: %v len=%d", err, both.Len())
	}
	other := MustNew(StringCol("vendor", []string{"x"}))
	if _, err := f.Concat(other); err == nil {
		t.Error("mismatched concat should error")
	}
}

func TestSortBy(t *testing.T) {
	f := sample()
	sorted, err := f.SortBy(Asc("year"), Desc("eff"))
	if err != nil {
		t.Fatal(err)
	}
	years := sorted.MustInts("year")
	effs := sorted.MustFloats("eff")
	for i := 1; i < len(years); i++ {
		if years[i-1] > years[i] {
			t.Fatalf("years out of order: %v", years)
		}
		if years[i-1] == years[i] && !math.IsNaN(effs[i]) && effs[i-1] < effs[i] {
			t.Fatalf("eff not descending within year: %v", effs)
		}
	}
	// NaN sorts last within its year group.
	if !math.IsNaN(effs[len(effs)-1]) {
		t.Errorf("NaN should sort last: %v", effs)
	}
	if _, err := f.SortBy(); err == nil {
		t.Error("no keys should error")
	}
	if _, err := f.SortBy(Asc("missing")); err == nil {
		t.Error("missing key should error")
	}
}

func TestSortStability(t *testing.T) {
	f := MustNew(
		IntCol("k", []int64{1, 1, 1, 1}),
		StringCol("tag", []string{"a", "b", "c", "d"}),
	)
	sorted, err := f.SortBy(Asc("k"))
	if err != nil {
		t.Fatal(err)
	}
	got := strings.Join(sorted.MustStrings("tag"), "")
	if got != "abcd" {
		t.Errorf("stable sort broke ties: %q", got)
	}
}

func TestStringPreview(t *testing.T) {
	f := sample()
	s := f.String()
	if !strings.Contains(s, "5 rows") || !strings.Contains(s, "vendor") {
		t.Errorf("preview = %q", s)
	}
	big := MustNew(IntCol("x", make([]int64, 20)))
	if !strings.Contains(big.String(), "more rows") {
		t.Error("long frame preview should be truncated")
	}
}
