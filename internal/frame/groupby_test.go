package frame

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestGroupByBasic(t *testing.T) {
	f := sample()
	g, err := f.GroupBy("vendor")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumGroups() != 2 {
		t.Fatalf("NumGroups = %d", g.NumGroups())
	}
	if g.Size("AMD") != 3 || g.Size("Intel") != 2 {
		t.Errorf("sizes: AMD=%d Intel=%d", g.Size("AMD"), g.Size("Intel"))
	}
	if g.Size("VIA") != 0 {
		t.Error("unknown group should have size 0")
	}
	amd, err := g.Group("AMD")
	if err != nil || amd.Len() != 3 {
		t.Fatalf("Group(AMD): %v len=%d", err, amd.Len())
	}
	if _, err := g.Group("VIA"); err == nil {
		t.Error("unknown group should error")
	}
}

func TestGroupByComposite(t *testing.T) {
	f := sample()
	g, err := f.GroupBy("vendor", "year")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumGroups() != 4 {
		t.Fatalf("NumGroups = %d", g.NumGroups())
	}
	if g.Size("AMD", "2021") != 2 {
		t.Errorf("AMD 2021 = %d", g.Size("AMD", "2021"))
	}
	keys := g.SortedKeys()
	if len(keys) != 4 || len(keys[0]) != 2 {
		t.Fatalf("SortedKeys = %v", keys)
	}
	// Lexicographic: AMD < Intel.
	if keys[0][0] != "AMD" {
		t.Errorf("first sorted key = %v", keys[0])
	}
}

func TestGroupByErrors(t *testing.T) {
	f := sample()
	if _, err := f.GroupBy(); err == nil {
		t.Error("no columns should error")
	}
	if _, err := f.GroupBy("missing"); err == nil {
		t.Error("missing column should error")
	}
}

func TestAggFloat(t *testing.T) {
	f := sample()
	g, err := f.GroupBy("vendor")
	if err != nil {
		t.Fatal(err)
	}
	agg, err := g.AggFloat("eff", "mean_eff", stats.Mean)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Len() != 2 {
		t.Fatalf("agg rows = %d", agg.Len())
	}
	vendors := agg.MustStrings("vendor")
	means := agg.MustFloats("mean_eff")
	counts := agg.MustInts("count")
	byVendor := map[string]float64{}
	countBy := map[string]int64{}
	for i, v := range vendors {
		byVendor[v] = means[i]
		countBy[v] = counts[i]
	}
	// AMD: mean of {30000, 35000, NaN} skipping NaN = 32500.
	if got := byVendor["AMD"]; math.Abs(got-32500) > 1e-9 {
		t.Errorf("AMD mean = %v", got)
	}
	if got := byVendor["Intel"]; math.Abs(got-13500) > 1e-9 {
		t.Errorf("Intel mean = %v", got)
	}
	if countBy["AMD"] != 3 {
		t.Errorf("AMD count = %d (NaN row still counts as a row)", countBy["AMD"])
	}
	if _, err := g.AggFloat("missing", "x", stats.Mean); err == nil {
		t.Error("missing column should error")
	}
}

func TestCounts(t *testing.T) {
	f := sample()
	g, _ := f.GroupBy("year")
	counts, err := g.Counts()
	if err != nil {
		t.Fatal(err)
	}
	total := int64(0)
	for _, c := range counts.MustInts("count") {
		total += c
	}
	if total != int64(f.Len()) {
		t.Fatalf("group sizes sum to %d, want %d", total, f.Len())
	}
}

func TestEachVisitsAllRows(t *testing.T) {
	f := sample()
	g, _ := f.GroupBy("vendor", "year")
	visited := 0
	err := g.Each(func(key []string, sub *Frame) error {
		if len(key) != 2 {
			t.Errorf("key parts = %v", key)
		}
		visited += sub.Len()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if visited != f.Len() {
		t.Fatalf("visited %d rows, want %d", visited, f.Len())
	}
}

// Property: group sizes always partition the frame.
func TestGroupPartitionInvariant(t *testing.T) {
	f := func(vals []uint8) bool {
		if len(vals) == 0 {
			return true
		}
		keys := make([]string, len(vals))
		for i, v := range vals {
			keys[i] = string(rune('a' + v%5))
		}
		fr := MustNew(StringCol("k", keys))
		g, err := fr.GroupBy("k")
		if err != nil {
			return false
		}
		total := 0
		for _, parts := range g.Keys() {
			total += g.Size(parts...)
		}
		return total == fr.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: per-group mean lies within the group min/max.
func TestGroupMeanBounds(t *testing.T) {
	f := func(vals []float64, tags []uint8) bool {
		n := len(vals)
		if n == 0 || len(tags) == 0 {
			return true
		}
		keys := make([]string, n)
		clean := make([]float64, n)
		for i := range vals {
			keys[i] = string(rune('a' + tags[i%len(tags)]%3))
			clean[i] = math.Mod(vals[i], 1e6)
			if math.IsNaN(clean[i]) {
				clean[i] = 0
			}
		}
		fr := MustNew(StringCol("k", keys), FloatCol("v", clean))
		g, err := fr.GroupBy("k")
		if err != nil {
			return false
		}
		ok := true
		_ = g.Each(func(_ []string, sub *Frame) error {
			vs := sub.MustFloats("v")
			m := stats.Mean(vs)
			if m < stats.Min(vs)-1e-9 || m > stats.Max(vs)+1e-9 {
				ok = false
			}
			return nil
		})
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
