package frame

import (
	"fmt"
	"strings"
)

// Frame is an ordered collection of equally long named columns.
type Frame struct {
	cols  []*Column
	index map[string]int
	n     int
}

// New builds a frame from columns. All columns must have distinct names
// and equal lengths.
func New(cols ...*Column) (*Frame, error) {
	f := &Frame{index: make(map[string]int, len(cols))}
	for idx, c := range cols {
		if c == nil {
			return nil, fmt.Errorf("frame: nil column at position %d", idx)
		}
		if _, dup := f.index[c.name]; dup {
			return nil, fmt.Errorf("frame: duplicate column %q", c.name)
		}
		if idx == 0 {
			f.n = c.Len()
		} else if c.Len() != f.n {
			return nil, fmt.Errorf("frame: column %q has %d rows, want %d",
				c.name, c.Len(), f.n)
		}
		f.index[c.name] = idx
		f.cols = append(f.cols, c)
	}
	return f, nil
}

// MustNew is New that panics on error; for statically correct literals.
func MustNew(cols ...*Column) *Frame {
	f, err := New(cols...)
	if err != nil {
		panic(err)
	}
	return f
}

// Len returns the number of rows.
func (f *Frame) Len() int { return f.n }

// NumCols returns the number of columns.
func (f *Frame) NumCols() int { return len(f.cols) }

// Names returns the column names in order.
func (f *Frame) Names() []string {
	out := make([]string, len(f.cols))
	for i, c := range f.cols {
		out[i] = c.name
	}
	return out
}

// Col returns the named column, or an error naming the missing column
// and listing what exists (typo diagnosis in analysis code).
func (f *Frame) Col(name string) (*Column, error) {
	if i, ok := f.index[name]; ok {
		return f.cols[i], nil
	}
	return nil, fmt.Errorf("frame: no column %q (have %s)",
		name, strings.Join(f.Names(), ", "))
}

// Has reports whether the named column exists.
func (f *Frame) Has(name string) bool {
	_, ok := f.index[name]
	return ok
}

// Floats is shorthand for Col(name).Floats() with the error propagated.
func (f *Frame) Floats(name string) ([]float64, error) {
	c, err := f.Col(name)
	if err != nil {
		return nil, err
	}
	return c.Floats(), nil
}

// MustFloats panics if the column is missing; for analysis code whose
// column set is fixed by construction.
func (f *Frame) MustFloats(name string) []float64 {
	v, err := f.Floats(name)
	if err != nil {
		panic(err)
	}
	return v
}

// Ints is shorthand for Col(name).Ints().
func (f *Frame) Ints(name string) ([]int64, error) {
	c, err := f.Col(name)
	if err != nil {
		return nil, err
	}
	return c.Ints(), nil
}

// MustInts panics if the column is missing.
func (f *Frame) MustInts(name string) []int64 {
	v, err := f.Ints(name)
	if err != nil {
		panic(err)
	}
	return v
}

// Strings is shorthand for Col(name).Strings().
func (f *Frame) Strings(name string) ([]string, error) {
	c, err := f.Col(name)
	if err != nil {
		return nil, err
	}
	return c.Strings(), nil
}

// MustStrings panics if the column is missing.
func (f *Frame) MustStrings(name string) []string {
	v, err := f.Strings(name)
	if err != nil {
		panic(err)
	}
	return v
}

// WithColumn returns a new frame with the column appended (or replaced,
// if a column of that name exists). The receiver is unchanged.
func (f *Frame) WithColumn(c *Column) (*Frame, error) {
	if c == nil {
		return nil, fmt.Errorf("frame: WithColumn(nil)")
	}
	if f.n != c.Len() && len(f.cols) > 0 {
		return nil, fmt.Errorf("frame: column %q has %d rows, want %d",
			c.name, c.Len(), f.n)
	}
	cols := make([]*Column, 0, len(f.cols)+1)
	replaced := false
	for _, old := range f.cols {
		if old.name == c.name {
			cols = append(cols, c)
			replaced = true
		} else {
			cols = append(cols, old)
		}
	}
	if !replaced {
		cols = append(cols, c)
	}
	return New(cols...)
}

// Select returns a new frame containing only the named columns, in the
// given order.
func (f *Frame) Select(names ...string) (*Frame, error) {
	cols := make([]*Column, 0, len(names))
	for _, n := range names {
		c, err := f.Col(n)
		if err != nil {
			return nil, err
		}
		cols = append(cols, c.clone(n))
	}
	return New(cols...)
}

// Filter returns the rows where keep returns true. keep receives the row
// index into the receiver.
func (f *Frame) Filter(keep func(row int) bool) *Frame {
	rows := make([]int, 0, f.n)
	for i := 0; i < f.n; i++ {
		if keep(i) {
			rows = append(rows, i)
		}
	}
	return f.take(rows)
}

// FilterMask returns the rows where mask is true. The mask must have
// exactly Len entries.
func (f *Frame) FilterMask(mask []bool) (*Frame, error) {
	if len(mask) != f.n {
		return nil, fmt.Errorf("frame: mask has %d entries, want %d", len(mask), f.n)
	}
	return f.Filter(func(i int) bool { return mask[i] }), nil
}

// Head returns the first n rows (all rows if n exceeds Len).
func (f *Frame) Head(n int) *Frame {
	if n > f.n {
		n = f.n
	}
	rows := make([]int, n)
	for i := range rows {
		rows[i] = i
	}
	return f.take(rows)
}

// take builds a new frame from the given row indices.
func (f *Frame) take(rows []int) *Frame {
	cols := make([]*Column, len(f.cols))
	for i, c := range f.cols {
		cols[i] = c.take(rows)
	}
	nf, err := New(cols...)
	if err != nil {
		// Cannot happen: take preserves names and lengths.
		panic(err)
	}
	return nf
}

// Concat appends the rows of other. Both frames must have identical
// column names, order, and kinds.
func (f *Frame) Concat(other *Frame) (*Frame, error) {
	if len(f.cols) != len(other.cols) {
		return nil, fmt.Errorf("frame: concat column count %d != %d",
			len(f.cols), len(other.cols))
	}
	cols := make([]*Column, len(f.cols))
	for i, a := range f.cols {
		b := other.cols[i]
		if a.name != b.name || a.kind != b.kind {
			return nil, fmt.Errorf("frame: concat mismatch at %d: %s/%s vs %s/%s",
				i, a.name, a.kind, b.name, b.kind)
		}
		c := a.clone(a.name)
		c.f = append(c.f, b.f...)
		c.i = append(c.i, b.i...)
		c.s = append(c.s, b.s...)
		c.b = append(c.b, b.b...)
		cols[i] = c
	}
	return New(cols...)
}

// String renders a compact table preview (up to 8 rows) for debugging.
func (f *Frame) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Frame[%d rows × %d cols]\n", f.n, len(f.cols))
	sb.WriteString(strings.Join(f.Names(), "\t"))
	sb.WriteByte('\n')
	limit := f.n
	if limit > 8 {
		limit = 8
	}
	for r := 0; r < limit; r++ {
		for ci, c := range f.cols {
			if ci > 0 {
				sb.WriteByte('\t')
			}
			sb.WriteString(c.valueString(r))
		}
		sb.WriteByte('\n')
	}
	if limit < f.n {
		fmt.Fprintf(&sb, "… %d more rows\n", f.n-limit)
	}
	return sb.String()
}
