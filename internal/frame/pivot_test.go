package frame

import (
	"math"
	"testing"

	"repro/internal/stats"
)

func pivotSample() *Frame {
	return MustNew(
		StringCol("vendor", []string{"AMD", "Intel", "AMD", "Intel", "AMD", "Intel"}),
		IntCol("year", []int64{2020, 2020, 2021, 2021, 2021, 2020}),
		FloatCol("eff", []float64{30, 12, 35, 15, 33, 14}),
	)
}

func TestPivotMeans(t *testing.T) {
	f := pivotSample()
	p, err := f.Pivot("year", "vendor", "eff", stats.Mean)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 2 || p.NumCols() != 3 {
		t.Fatalf("pivot shape %d×%d", p.Len(), p.NumCols())
	}
	years := p.MustStrings("year")
	amd := p.MustFloats("AMD")
	intel := p.MustFloats("Intel")
	if years[0] != "2020" || years[1] != "2021" {
		t.Fatalf("rows = %v", years)
	}
	if amd[0] != 30 || math.Abs(amd[1]-34) > 1e-9 {
		t.Errorf("AMD = %v", amd)
	}
	if math.Abs(intel[0]-13) > 1e-9 || intel[1] != 15 {
		t.Errorf("Intel = %v", intel)
	}
}

func TestPivotEmptyCellIsNaN(t *testing.T) {
	f := MustNew(
		StringCol("vendor", []string{"AMD", "Intel"}),
		IntCol("year", []int64{2020, 2021}),
		FloatCol("eff", []float64{30, 15}),
	)
	p, err := f.Pivot("year", "vendor", "eff", stats.Mean)
	if err != nil {
		t.Fatal(err)
	}
	amd := p.MustFloats("AMD")
	if amd[0] != 30 || !math.IsNaN(amd[1]) {
		t.Errorf("AMD = %v", amd)
	}
}

func TestPivotErrors(t *testing.T) {
	f := pivotSample()
	if _, err := f.Pivot("nope", "vendor", "eff", stats.Mean); err == nil {
		t.Error("missing row column should error")
	}
	if _, err := f.Pivot("year", "nope", "eff", stats.Mean); err == nil {
		t.Error("missing col column should error")
	}
	if _, err := f.Pivot("year", "vendor", "nope", stats.Mean); err == nil {
		t.Error("missing val column should error")
	}
}

func TestPivotCount(t *testing.T) {
	f := pivotSample()
	p, err := f.PivotCount("year", "vendor")
	if err != nil {
		t.Fatal(err)
	}
	amd := p.MustFloats("AMD")
	intel := p.MustFloats("Intel")
	if amd[0] != 1 || amd[1] != 2 || intel[0] != 2 || intel[1] != 1 {
		t.Errorf("counts AMD=%v Intel=%v", amd, intel)
	}
	// Total equals frame length.
	total := 0.0
	for _, v := range append(amd, intel...) {
		total += v
	}
	if int(total) != f.Len() {
		t.Errorf("pivot counts sum to %v, want %d", total, f.Len())
	}
}

func TestPivotNameClash(t *testing.T) {
	// A column value equal to the row column's name must not collide.
	f := MustNew(
		StringCol("a", []string{"x", "y"}),
		StringCol("b", []string{"a", "a"}),
		FloatCol("v", []float64{1, 2}),
	)
	p, err := f.Pivot("a", "b", "v", stats.Mean)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Has("b=a") {
		t.Errorf("clash column missing; names = %v", p.Names())
	}
}

func TestDescribe(t *testing.T) {
	f := pivotSample()
	d, err := f.Describe()
	if err != nil {
		t.Fatal(err)
	}
	// Numeric columns only: year and eff.
	if d.Len() != 2 {
		t.Fatalf("describe rows = %d", d.Len())
	}
	cols := d.MustStrings("column")
	if cols[0] != "year" || cols[1] != "eff" {
		t.Fatalf("columns = %v", cols)
	}
	means := d.MustFloats("mean")
	if math.Abs(means[1]-(30.0+12+35+15+33+14)/6) > 1e-9 {
		t.Errorf("eff mean = %v", means[1])
	}
	counts := d.MustInts("count")
	if counts[0] != 6 {
		t.Errorf("year count = %d", counts[0])
	}
	// No numeric columns → error.
	s := MustNew(StringCol("x", []string{"a"}))
	if _, err := s.Describe(); err == nil {
		t.Error("all-string frame should error")
	}
}
