package frame

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	f := sample()
	var buf bytes.Buffer
	if err := f.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != f.Len() || back.NumCols() != f.NumCols() {
		t.Fatalf("shape %d×%d, want %d×%d",
			back.Len(), back.NumCols(), f.Len(), f.NumCols())
	}
	// Kinds survive: year back as int, eff as float with NaN, linux as bool.
	yc, _ := back.Col("year")
	if yc.Kind() != KindInt {
		t.Errorf("year kind = %v", yc.Kind())
	}
	ec, _ := back.Col("eff")
	if ec.Kind() != KindFloat {
		t.Errorf("eff kind = %v", ec.Kind())
	}
	lc, _ := back.Col("linux")
	if lc.Kind() != KindBool {
		t.Errorf("linux kind = %v", lc.Kind())
	}
	eff := back.MustFloats("eff")
	if eff[0] != 30000 || !math.IsNaN(eff[4]) {
		t.Errorf("eff = %v", eff)
	}
	for i, v := range back.MustStrings("vendor") {
		if v != f.MustStrings("vendor")[i] {
			t.Errorf("vendor[%d] = %q", i, v)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Error("empty input should error")
	}
	// Ragged rows are a csv-level error.
	if _, err := ReadCSV(strings.NewReader("a,b\n1\n")); err == nil {
		t.Error("ragged row should error")
	}
}

func TestReadCSVInference(t *testing.T) {
	in := "i,f,s,b,e\n1,1.5,x,true,\n2,2.5,y,false,\n"
	f, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	wantKinds := map[string]Kind{
		"i": KindInt, "f": KindFloat, "s": KindString, "b": KindBool,
		"e": KindString, // all-empty column stays string
	}
	for name, want := range wantKinds {
		c, err := f.Col(name)
		if err != nil {
			t.Fatal(err)
		}
		if c.Kind() != want {
			t.Errorf("col %q kind = %v, want %v", name, c.Kind(), want)
		}
	}
}

func TestReadCSVEmptyNumericCellBecomesNaN(t *testing.T) {
	// A bare blank line would be skipped by encoding/csv, so the missing
	// value is written as a quoted empty cell (what WriteCSV emits when
	// there are multiple columns).
	in := "x\n1.5\n\"\"\n2.5\n"
	f, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	xs := f.MustFloats("x")
	if xs[0] != 1.5 || !math.IsNaN(xs[1]) || xs[2] != 2.5 {
		t.Errorf("x = %v", xs)
	}
}
