package frame

import (
	"math"
	"testing"
)

func TestLeftJoin(t *testing.T) {
	left := MustNew(
		StringCol("cpu", []string{"9754", "8490H", "9654", "unknown"}),
		IntCol("year", []int64{2023, 2023, 2022, 2020}),
	)
	right := MustNew(
		StringCol("cpu", []string{"9754", "9654", "8490H"}),
		FloatCol("tdp", []float64{360, 360, 350}),
		StringCol("vendor", []string{"AMD", "AMD", "Intel"}),
	)
	joined, dups, err := left.LeftJoin(right, "cpu")
	if err != nil {
		t.Fatal(err)
	}
	if dups != 0 {
		t.Errorf("dups = %d", dups)
	}
	if joined.Len() != 4 || joined.NumCols() != 4 {
		t.Fatalf("shape %d×%d", joined.Len(), joined.NumCols())
	}
	tdp := joined.MustFloats("tdp")
	if tdp[0] != 360 || tdp[1] != 350 || tdp[2] != 360 || !math.IsNaN(tdp[3]) {
		t.Errorf("tdp = %v", tdp)
	}
	vendors := joined.MustStrings("vendor")
	if vendors[1] != "Intel" || vendors[3] != "" {
		t.Errorf("vendor = %v", vendors)
	}
	// Left frame untouched.
	if left.NumCols() != 2 {
		t.Error("join mutated left frame")
	}
}

func TestLeftJoinDuplicatesFirstWins(t *testing.T) {
	left := MustNew(StringCol("k", []string{"a"}))
	right := MustNew(
		StringCol("k", []string{"a", "a"}),
		FloatCol("v", []float64{1, 2}),
	)
	joined, dups, err := left.LeftJoin(right, "k")
	if err != nil {
		t.Fatal(err)
	}
	if dups != 1 {
		t.Errorf("dups = %d", dups)
	}
	if got := joined.MustFloats("v")[0]; got != 1 {
		t.Errorf("v = %v, want first occurrence", got)
	}
}

func TestLeftJoinNameCollision(t *testing.T) {
	left := MustNew(
		StringCol("k", []string{"a"}),
		FloatCol("v", []float64{10}),
	)
	right := MustNew(
		StringCol("k", []string{"a"}),
		FloatCol("v", []float64{99}),
	)
	joined, _, err := left.LeftJoin(right, "k")
	if err != nil {
		t.Fatal(err)
	}
	if !joined.Has("v_right") {
		t.Fatalf("collision column missing: %v", joined.Names())
	}
	if joined.MustFloats("v")[0] != 10 || joined.MustFloats("v_right")[0] != 99 {
		t.Error("collision values wrong")
	}
}

func TestLeftJoinIntPromotion(t *testing.T) {
	left := MustNew(StringCol("k", []string{"a", "b"}))
	right := MustNew(
		StringCol("k", []string{"a"}),
		IntCol("n", []int64{7}),
	)
	joined, _, err := left.LeftJoin(right, "k")
	if err != nil {
		t.Fatal(err)
	}
	c, err := joined.Col("n")
	if err != nil {
		t.Fatal(err)
	}
	if c.Kind() != KindFloat {
		t.Errorf("int column should promote to float for missing values, got %v", c.Kind())
	}
	vals := joined.MustFloats("n")
	if vals[0] != 7 || !math.IsNaN(vals[1]) {
		t.Errorf("n = %v", vals)
	}
}

func TestLeftJoinErrors(t *testing.T) {
	left := MustNew(StringCol("k", []string{"a"}))
	right := MustNew(StringCol("other", []string{"a"}))
	if _, _, err := left.LeftJoin(right, "k"); err == nil {
		t.Error("missing right key should error")
	}
	if _, _, err := left.LeftJoin(right, "nope"); err == nil {
		t.Error("missing left key should error")
	}
}
