package frame

import (
	"fmt"
	"math"
)

// LeftJoin joins other onto the receiver by equality of the named key
// column (compared as strings). Every row of the receiver appears once
// in the result; matching rows contribute other's non-key columns, and
// unmatched rows get NaN/zero values. If a key occurs several times in
// other, the first occurrence wins (and is reported via the returned
// duplicate count).
//
// Column name collisions from other are suffixed with "_right".
func (f *Frame) LeftJoin(other *Frame, key string) (*Frame, int, error) {
	lk, err := f.Col(key)
	if err != nil {
		return nil, 0, fmt.Errorf("frame: left join: %w", err)
	}
	rk, err := other.Col(key)
	if err != nil {
		return nil, 0, fmt.Errorf("frame: right join: %w", err)
	}
	// Index the right side.
	index := make(map[string]int, other.n)
	duplicates := 0
	for i := 0; i < other.n; i++ {
		k := rk.valueString(i)
		if _, seen := index[k]; seen {
			duplicates++
			continue
		}
		index[k] = i
	}
	// Row mapping: left row → right row (-1 = no match).
	match := make([]int, f.n)
	for i := 0; i < f.n; i++ {
		if j, ok := index[lk.valueString(i)]; ok {
			match[i] = j
		} else {
			match[i] = -1
		}
	}
	cols := make([]*Column, 0, len(f.cols)+len(other.cols)-1)
	for _, c := range f.cols {
		cols = append(cols, c.clone(c.name))
	}
	for _, rc := range other.cols {
		if rc.name == key {
			continue
		}
		name := rc.name
		if f.Has(name) {
			name += "_right"
		}
		cols = append(cols, gatherColumn(rc, name, match))
	}
	joined, err := New(cols...)
	if err != nil {
		return nil, 0, err
	}
	return joined, duplicates, nil
}

// gatherColumn builds a column of len(match) rows taking src[match[i]],
// with missing-value fill for match[i] < 0.
func gatherColumn(src *Column, name string, match []int) *Column {
	switch src.kind {
	case KindFloat:
		vals := make([]float64, len(match))
		for i, j := range match {
			if j < 0 {
				vals[i] = math.NaN()
			} else {
				vals[i] = src.f[j]
			}
		}
		return FloatCol(name, vals)
	case KindInt:
		// Ints cannot express missing; promote to float with NaN.
		vals := make([]float64, len(match))
		for i, j := range match {
			if j < 0 {
				vals[i] = math.NaN()
			} else {
				vals[i] = float64(src.i[j])
			}
		}
		return FloatCol(name, vals)
	case KindBool:
		vals := make([]bool, len(match))
		for i, j := range match {
			if j >= 0 {
				vals[i] = src.b[j]
			}
		}
		return BoolCol(name, vals)
	default:
		vals := make([]string, len(match))
		for i, j := range match {
			if j >= 0 {
				vals[i] = src.s[j]
			}
		}
		return StringCol(name, vals)
	}
}
