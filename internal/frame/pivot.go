package frame

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/stats"
)

// Pivot builds a two-dimensional aggregation table: rows are the
// distinct values of rowCol, columns the distinct values of colCol
// (both rendered as strings, lexicographically ordered), and each cell
// reduces valCol over the matching rows. Empty cells are NaN.
//
// The result frame has rowCol as its first (string) column followed by
// one float column per distinct colCol value.
func (f *Frame) Pivot(rowCol, colCol, valCol string, reduce func([]float64) float64) (*Frame, error) {
	rc, err := f.Col(rowCol)
	if err != nil {
		return nil, err
	}
	cc, err := f.Col(colCol)
	if err != nil {
		return nil, err
	}
	vc, err := f.Col(valCol)
	if err != nil {
		return nil, err
	}
	vals := vc.Floats()

	type cell struct{ row, col string }
	buckets := map[cell][]float64{}
	rowSet := map[string]bool{}
	colSet := map[string]bool{}
	for i := 0; i < f.n; i++ {
		r, c := rc.valueString(i), cc.valueString(i)
		rowSet[r] = true
		colSet[c] = true
		key := cell{r, c}
		buckets[key] = append(buckets[key], vals[i])
	}
	rows := sortedKeys(rowSet)
	colsNames := sortedKeys(colSet)

	out := make([]*Column, 0, len(colsNames)+1)
	out = append(out, StringCol(rowCol, rows))
	for _, cn := range colsNames {
		col := make([]float64, len(rows))
		for ri, rn := range rows {
			vs, ok := buckets[cell{rn, cn}]
			if !ok {
				col[ri] = math.NaN()
				continue
			}
			col[ri] = reduce(vs)
		}
		name := cn
		if name == rowCol {
			name = colCol + "=" + cn // avoid clashing with the row column
		}
		out = append(out, FloatCol(name, col))
	}
	return New(out...)
}

// PivotCount is Pivot with a row-count aggregation (valCol ignored
// beyond existence checks are unnecessary — counts need no values).
func (f *Frame) PivotCount(rowCol, colCol string) (*Frame, error) {
	rc, err := f.Col(rowCol)
	if err != nil {
		return nil, err
	}
	cc, err := f.Col(colCol)
	if err != nil {
		return nil, err
	}
	type cell struct{ row, col string }
	counts := map[cell]float64{}
	rowSet := map[string]bool{}
	colSet := map[string]bool{}
	for i := 0; i < f.n; i++ {
		r, c := rc.valueString(i), cc.valueString(i)
		rowSet[r] = true
		colSet[c] = true
		counts[cell{r, c}]++
	}
	rows := sortedKeys(rowSet)
	colsNames := sortedKeys(colSet)
	out := make([]*Column, 0, len(colsNames)+1)
	out = append(out, StringCol(rowCol, rows))
	for _, cn := range colsNames {
		col := make([]float64, len(rows))
		for ri, rn := range rows {
			col[ri] = counts[cell{rn, cn}]
		}
		name := cn
		if name == rowCol {
			name = colCol + "=" + cn
		}
		out = append(out, FloatCol(name, col))
	}
	return New(out...)
}

// Describe summarizes every numeric (float/int) column of the frame:
// the result has one row per column with count/mean/std/min/quartiles.
func (f *Frame) Describe() (*Frame, error) {
	var names []string
	var summaries []stats.Summary
	for _, name := range f.Names() {
		c, err := f.Col(name)
		if err != nil {
			return nil, err
		}
		if c.Kind() != KindFloat && c.Kind() != KindInt {
			continue
		}
		names = append(names, name)
		summaries = append(summaries, stats.Describe(c.Floats()))
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("frame: Describe: no numeric columns")
	}
	n := len(names)
	counts := make([]int64, n)
	means := make([]float64, n)
	stds := make([]float64, n)
	mins := make([]float64, n)
	q25s := make([]float64, n)
	meds := make([]float64, n)
	q75s := make([]float64, n)
	maxs := make([]float64, n)
	for i, s := range summaries {
		counts[i] = int64(s.N)
		means[i] = s.Mean
		stds[i] = s.Std
		mins[i] = s.Min
		q25s[i] = s.Q25
		meds[i] = s.Median
		q75s[i] = s.Q75
		maxs[i] = s.Max
	}
	return New(
		StringCol("column", names),
		IntCol("count", counts),
		FloatCol("mean", means),
		FloatCol("std", stds),
		FloatCol("min", mins),
		FloatCol("q25", q25s),
		FloatCol("median", meds),
		FloatCol("q75", q75s),
		FloatCol("max", maxs),
	)
}

func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
