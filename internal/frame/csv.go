package frame

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
)

// WriteCSV writes the frame with a header row. Floats render with full
// precision; NaN renders as an empty cell (pandas-compatible).
func (f *Frame) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(f.Names()); err != nil {
		return fmt.Errorf("frame: write header: %w", err)
	}
	rec := make([]string, len(f.cols))
	for r := 0; r < f.n; r++ {
		for ci, c := range f.cols {
			if c.kind == KindFloat && math.IsNaN(c.f[r]) {
				rec[ci] = ""
				continue
			}
			rec[ci] = c.valueString(r)
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("frame: write row %d: %w", r, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads a headered CSV into a frame, inferring column kinds:
// a column is int if every non-empty cell parses as an integer, else
// float if every non-empty cell parses as a number (empty cells become
// NaN), else bool if every cell is true/false, else string.
func ReadCSV(r io.Reader) (*Frame, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("frame: read csv: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("frame: csv has no header")
	}
	header := records[0]
	rows := records[1:]
	cols := make([]*Column, len(header))
	for ci, name := range header {
		cells := make([]string, len(rows))
		for ri, rec := range rows {
			if ci >= len(rec) {
				return nil, fmt.Errorf("frame: row %d has %d cells, want %d",
					ri+1, len(rec), len(header))
			}
			cells[ri] = rec[ci]
		}
		cols[ci] = inferColumn(name, cells)
	}
	return New(cols...)
}

func inferColumn(name string, cells []string) *Column {
	isInt, isFloat, isBool := true, true, true
	anyNonEmpty := false
	for _, cell := range cells {
		if cell == "" {
			isInt = false // empty means missing; ints cannot express that
			isBool = false
			continue
		}
		anyNonEmpty = true
		if _, err := strconv.ParseInt(cell, 10, 64); err != nil {
			isInt = false
		}
		if _, err := strconv.ParseFloat(cell, 64); err != nil {
			isFloat = false
		}
		if cell != "true" && cell != "false" {
			isBool = false
		}
	}
	if !anyNonEmpty {
		isInt, isFloat, isBool = false, false, false
	}
	switch {
	case isInt:
		vals := make([]int64, len(cells))
		for i, cell := range cells {
			vals[i], _ = strconv.ParseInt(cell, 10, 64)
		}
		return IntCol(name, vals)
	case isBool:
		vals := make([]bool, len(cells))
		for i, cell := range cells {
			vals[i] = cell == "true"
		}
		return BoolCol(name, vals)
	case isFloat:
		vals := make([]float64, len(cells))
		for i, cell := range cells {
			if cell == "" {
				vals[i] = math.NaN()
				continue
			}
			vals[i], _ = strconv.ParseFloat(cell, 64)
		}
		return FloatCol(name, vals)
	default:
		return StringCol(name, cells)
	}
}
