package frame

import (
	"fmt"
	"math"
	"strconv"
)

// Kind is the storage type of a column.
type Kind int

// Column kinds.
const (
	KindFloat Kind = iota
	KindInt
	KindString
	KindBool
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindFloat:
		return "float"
	case KindInt:
		return "int"
	case KindString:
		return "string"
	case KindBool:
		return "bool"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Column is one named, typed column. Exactly one of the backing slices
// is non-nil, selected by kind.
type Column struct {
	name string
	kind Kind
	f    []float64
	i    []int64
	s    []string
	b    []bool
}

// FloatCol builds a float column (the slice is copied).
func FloatCol(name string, vals []float64) *Column {
	return &Column{name: name, kind: KindFloat, f: append([]float64(nil), vals...)}
}

// IntCol builds an int column (the slice is copied).
func IntCol(name string, vals []int64) *Column {
	return &Column{name: name, kind: KindInt, i: append([]int64(nil), vals...)}
}

// StringCol builds a string column (the slice is copied).
func StringCol(name string, vals []string) *Column {
	return &Column{name: name, kind: KindString, s: append([]string(nil), vals...)}
}

// BoolCol builds a bool column (the slice is copied).
func BoolCol(name string, vals []bool) *Column {
	return &Column{name: name, kind: KindBool, b: append([]bool(nil), vals...)}
}

// Name returns the column name.
func (c *Column) Name() string { return c.name }

// Kind returns the storage type.
func (c *Column) Kind() Kind { return c.kind }

// Len returns the number of rows.
func (c *Column) Len() int {
	switch c.kind {
	case KindFloat:
		return len(c.f)
	case KindInt:
		return len(c.i)
	case KindString:
		return len(c.s)
	default:
		return len(c.b)
	}
}

// Floats returns the column as float64s. Int columns convert exactly;
// bool columns map to 0/1; string columns parse, with NaN for
// unparseable entries. The result is always a fresh slice.
func (c *Column) Floats() []float64 {
	out := make([]float64, c.Len())
	switch c.kind {
	case KindFloat:
		copy(out, c.f)
	case KindInt:
		for i, v := range c.i {
			out[i] = float64(v)
		}
	case KindBool:
		for i, v := range c.b {
			if v {
				out[i] = 1
			}
		}
	case KindString:
		for i, v := range c.s {
			x, err := strconv.ParseFloat(v, 64)
			if err != nil {
				x = math.NaN()
			}
			out[i] = x
		}
	}
	return out
}

// Ints returns the column as int64s; float columns truncate (NaN → 0),
// bools map to 0/1, strings parse with 0 for unparseable entries.
func (c *Column) Ints() []int64 {
	out := make([]int64, c.Len())
	switch c.kind {
	case KindInt:
		copy(out, c.i)
	case KindFloat:
		for i, v := range c.f {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				out[i] = int64(v)
			}
		}
	case KindBool:
		for i, v := range c.b {
			if v {
				out[i] = 1
			}
		}
	case KindString:
		for i, v := range c.s {
			n, err := strconv.ParseInt(v, 10, 64)
			if err == nil {
				out[i] = n
			}
		}
	}
	return out
}

// Strings renders every entry as a string.
func (c *Column) Strings() []string {
	out := make([]string, c.Len())
	switch c.kind {
	case KindString:
		copy(out, c.s)
	case KindFloat:
		for i, v := range c.f {
			out[i] = strconv.FormatFloat(v, 'g', -1, 64)
		}
	case KindInt:
		for i, v := range c.i {
			out[i] = strconv.FormatInt(v, 10)
		}
	case KindBool:
		for i, v := range c.b {
			out[i] = strconv.FormatBool(v)
		}
	}
	return out
}

// Bools returns the column as bools; numeric columns are true when
// non-zero, strings when equal to "true".
func (c *Column) Bools() []bool {
	out := make([]bool, c.Len())
	switch c.kind {
	case KindBool:
		copy(out, c.b)
	case KindFloat:
		for i, v := range c.f {
			out[i] = v != 0 && !math.IsNaN(v)
		}
	case KindInt:
		for i, v := range c.i {
			out[i] = v != 0
		}
	case KindString:
		for i, v := range c.s {
			out[i] = v == "true"
		}
	}
	return out
}

// valueString renders row i for CSV output and group keys.
func (c *Column) valueString(i int) string {
	switch c.kind {
	case KindFloat:
		return strconv.FormatFloat(c.f[i], 'g', -1, 64)
	case KindInt:
		return strconv.FormatInt(c.i[i], 10)
	case KindString:
		return c.s[i]
	default:
		return strconv.FormatBool(c.b[i])
	}
}

// take returns a new column containing the given rows in order.
func (c *Column) take(rows []int) *Column {
	n := &Column{name: c.name, kind: c.kind}
	switch c.kind {
	case KindFloat:
		n.f = make([]float64, len(rows))
		for j, r := range rows {
			n.f[j] = c.f[r]
		}
	case KindInt:
		n.i = make([]int64, len(rows))
		for j, r := range rows {
			n.i[j] = c.i[r]
		}
	case KindString:
		n.s = make([]string, len(rows))
		for j, r := range rows {
			n.s[j] = c.s[r]
		}
	default:
		n.b = make([]bool, len(rows))
		for j, r := range rows {
			n.b[j] = c.b[r]
		}
	}
	return n
}

// clone returns a deep copy with an optional new name.
func (c *Column) clone(name string) *Column {
	n := &Column{name: name, kind: c.kind}
	n.f = append([]float64(nil), c.f...)
	n.i = append([]int64(nil), c.i...)
	n.s = append([]string(nil), c.s...)
	n.b = append([]bool(nil), c.b...)
	return n
}

// less compares rows a and b for sorting (NaN sorts last).
func (c *Column) less(a, b int) bool {
	return c.cmp(a, b, false) < 0
}

// cmp compares rows a and b and returns -1/0/+1. desc flips the order of
// finite values, but NaN always sorts last so trend analyses keep finite
// data first regardless of direction.
func (c *Column) cmp(a, b int, desc bool) int {
	var r int
	switch c.kind {
	case KindFloat:
		x, y := c.f[a], c.f[b]
		xn, yn := math.IsNaN(x), math.IsNaN(y)
		switch {
		case xn && yn:
			return 0
		case xn:
			return 1 // NaN after everything, even under desc
		case yn:
			return -1
		case x < y:
			r = -1
		case x > y:
			r = 1
		}
	case KindInt:
		switch {
		case c.i[a] < c.i[b]:
			r = -1
		case c.i[a] > c.i[b]:
			r = 1
		}
	case KindString:
		switch {
		case c.s[a] < c.s[b]:
			r = -1
		case c.s[a] > c.s[b]:
			r = 1
		}
	default:
		switch {
		case !c.b[a] && c.b[b]:
			r = -1
		case c.b[a] && !c.b[b]:
			r = 1
		}
	}
	if desc {
		return -r
	}
	return r
}
