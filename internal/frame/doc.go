// Package frame implements a small columnar dataframe: typed named
// columns of equal length with filtering, sorting, grouping, and
// aggregation. It stands in for the pandas layer of the original
// analysis scripts.
//
// A Frame is immutable in spirit: operations return new frames (sharing
// no mutable state with the input) so analyses can branch from a common
// base dataset without defensive copying. Columns are stored as dense
// slices of one of four kinds (float64, int64, string, bool); missing
// numeric values are represented as NaN, matching the stats package's
// conventions.
package frame
