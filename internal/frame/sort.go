package frame

import (
	"fmt"
	"sort"
)

// SortKey names a column and a direction for SortBy.
type SortKey struct {
	Col        string
	Descending bool
}

// Asc and Desc build sort keys.
func Asc(col string) SortKey  { return SortKey{Col: col} }
func Desc(col string) SortKey { return SortKey{Col: col, Descending: true} }

// SortBy returns a new frame with rows stably ordered by the given keys
// (first key is most significant).
func (f *Frame) SortBy(keys ...SortKey) (*Frame, error) {
	if len(keys) == 0 {
		return nil, fmt.Errorf("frame: SortBy needs at least one key")
	}
	cols := make([]*Column, len(keys))
	for i, k := range keys {
		c, err := f.Col(k.Col)
		if err != nil {
			return nil, err
		}
		cols[i] = c
	}
	rows := make([]int, f.n)
	for i := range rows {
		rows[i] = i
	}
	sort.SliceStable(rows, func(a, b int) bool {
		ra, rb := rows[a], rows[b]
		for i, c := range cols {
			if r := c.cmp(ra, rb, keys[i].Descending); r != 0 {
				return r < 0
			}
		}
		return false
	})
	return f.take(rows), nil
}
