package frame

import (
	"fmt"
	"sort"
	"strings"
)

// keySep joins composite group keys; the unit separator cannot occur in
// the corpus's string values.
const keySep = "\x1f"

// Grouped is the result of Frame.GroupBy: row indices partitioned by the
// values of one or more key columns.
type Grouped struct {
	src     *Frame
	byCols  []string
	keys    []string         // composite keys in first-appearance order
	indices map[string][]int // key → rows in the source frame
}

// GroupBy partitions the frame's rows by the values of the named
// columns.
func (f *Frame) GroupBy(cols ...string) (*Grouped, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("frame: GroupBy needs at least one column")
	}
	keyCols := make([]*Column, len(cols))
	for i, name := range cols {
		c, err := f.Col(name)
		if err != nil {
			return nil, err
		}
		keyCols[i] = c
	}
	g := &Grouped{
		src:     f,
		byCols:  append([]string(nil), cols...),
		indices: make(map[string][]int),
	}
	parts := make([]string, len(keyCols))
	for row := 0; row < f.n; row++ {
		for i, c := range keyCols {
			parts[i] = c.valueString(row)
		}
		key := strings.Join(parts, keySep)
		if _, seen := g.indices[key]; !seen {
			g.keys = append(g.keys, key)
		}
		g.indices[key] = append(g.indices[key], row)
	}
	return g, nil
}

// NumGroups returns the number of distinct keys.
func (g *Grouped) NumGroups() int { return len(g.keys) }

// Keys returns the composite keys in first-appearance order; each entry
// has one part per grouping column.
func (g *Grouped) Keys() [][]string {
	out := make([][]string, len(g.keys))
	for i, k := range g.keys {
		out[i] = strings.Split(k, keySep)
	}
	return out
}

// SortedKeys returns the keys in lexicographic order of their parts.
func (g *Grouped) SortedKeys() [][]string {
	keys := append([]string(nil), g.keys...)
	sort.Strings(keys)
	out := make([][]string, len(keys))
	for i, k := range keys {
		out[i] = strings.Split(k, keySep)
	}
	return out
}

// Group returns the sub-frame for one key (parts in grouping-column
// order), or an error for unknown keys.
func (g *Grouped) Group(parts ...string) (*Frame, error) {
	key := strings.Join(parts, keySep)
	rows, ok := g.indices[key]
	if !ok {
		return nil, fmt.Errorf("frame: no group %v", parts)
	}
	return g.src.take(rows), nil
}

// Size returns the row count for one key, 0 for unknown keys.
func (g *Grouped) Size(parts ...string) int {
	return len(g.indices[strings.Join(parts, keySep)])
}

// Each calls fn for every group in first-appearance order.
func (g *Grouped) Each(fn func(key []string, sub *Frame) error) error {
	for _, k := range g.keys {
		sub := g.src.take(g.indices[k])
		if err := fn(strings.Split(k, keySep), sub); err != nil {
			return err
		}
	}
	return nil
}

// AggFloat reduces one float column per group. The result frame has the
// grouping columns (as strings), a "count" int column, and the reduced
// value under outName, rows in first-appearance order.
func (g *Grouped) AggFloat(col, outName string, reduce func([]float64) float64) (*Frame, error) {
	src, err := g.src.Col(col)
	if err != nil {
		return nil, err
	}
	vals := src.Floats()

	keyParts := make([][]string, len(g.byCols))
	for i := range keyParts {
		keyParts[i] = make([]string, 0, len(g.keys))
	}
	counts := make([]int64, 0, len(g.keys))
	out := make([]float64, 0, len(g.keys))
	for _, k := range g.keys {
		rows := g.indices[k]
		buf := make([]float64, len(rows))
		for j, r := range rows {
			buf[j] = vals[r]
		}
		parts := strings.Split(k, keySep)
		for i, p := range parts {
			keyParts[i] = append(keyParts[i], p)
		}
		counts = append(counts, int64(len(rows)))
		out = append(out, reduce(buf))
	}
	cols := make([]*Column, 0, len(g.byCols)+2)
	for i, name := range g.byCols {
		cols = append(cols, StringCol(name, keyParts[i]))
	}
	cols = append(cols, IntCol("count", counts), FloatCol(outName, out))
	return New(cols...)
}

// Counts returns a frame of group sizes: the grouping columns plus a
// "count" int column, rows in first-appearance order.
func (g *Grouped) Counts() (*Frame, error) {
	keyParts := make([][]string, len(g.byCols))
	for i := range keyParts {
		keyParts[i] = make([]string, 0, len(g.keys))
	}
	counts := make([]int64, 0, len(g.keys))
	for _, k := range g.keys {
		parts := strings.Split(k, keySep)
		for i, p := range parts {
			keyParts[i] = append(keyParts[i], p)
		}
		counts = append(counts, int64(len(g.indices[k])))
	}
	cols := make([]*Column, 0, len(g.byCols)+1)
	for i, name := range g.byCols {
		cols = append(cols, StringCol(name, keyParts[i]))
	}
	cols = append(cols, IntCol("count", counts))
	return New(cols...)
}
