// Package par holds the bounded-worker parallel loop shared by the
// corpus pipeline (internal/core) and the clustering subsystem
// (internal/cluster). It lives below both so either side can fan work
// out without importing the other.
package par

import (
	"runtime"
	"sync"
)

// ForEach runs fn(0..n-1) on a bounded worker pool (workers <= 0 =
// GOMAXPROCS). On failure it returns the error of the lowest failing
// index — not whichever worker lost the race — so error reporting is
// deterministic. All workers drain before returning; once an error at
// index i is recorded, work at indexes above i may be skipped (indexes
// below i still run, in case one of them fails too).
func ForEach(n, workers int, fn func(i int) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if n == 0 {
		return nil
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		mu       sync.Mutex
		firstIdx = -1
		firstErr error
	)
	record := func(i int, err error) {
		mu.Lock()
		if firstIdx == -1 || i < firstIdx {
			firstIdx, firstErr = i, err
		}
		mu.Unlock()
	}
	skippable := func(i int) bool {
		mu.Lock()
		defer mu.Unlock()
		return firstIdx != -1 && i > firstIdx
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		//lint:allow nodeterminism the pool reports the lowest failing index, not the race winner; callers slot results by index
		go func() {
			defer wg.Done()
			for i := range idx {
				if skippable(i) {
					continue
				}
				if err := fn(i); err != nil {
					record(i, err)
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return firstErr
}
