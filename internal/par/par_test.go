package par

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestForEachVisitsAll(t *testing.T) {
	var visited [100]atomic.Bool
	if err := ForEach(100, 8, func(i int) error {
		if visited[i].Swap(true) {
			t.Errorf("index %d visited twice", i)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range visited {
		if !visited[i].Load() {
			t.Errorf("index %d not visited", i)
		}
	}
}

func TestForEachLowestErrorWins(t *testing.T) {
	errLow, errHigh := errors.New("low"), errors.New("high")
	for trial := 0; trial < 20; trial++ {
		err := ForEach(64, 8, func(i int) error {
			switch i {
			case 9:
				return errLow
			case 40:
				return errHigh
			}
			return nil
		})
		if !errors.Is(err, errLow) {
			t.Fatalf("trial %d: err = %v, want the lowest-index error", trial, err)
		}
	}
}

func TestForEachEmptyAndSequential(t *testing.T) {
	wantErr := errors.New("boom")
	if err := ForEach(0, 4, func(int) error { return wantErr }); err != nil {
		t.Errorf("n=0 returned %v", err)
	}
	// workers=1 exercises the sequential fast path.
	n := 0
	if err := ForEach(5, 1, func(i int) error { n++; return nil }); err != nil || n != 5 {
		t.Errorf("sequential path: n=%d err=%v", n, err)
	}
	if err := ForEach(5, 1, func(i int) error {
		if i == 2 {
			return wantErr
		}
		return nil
	}); !errors.Is(err, wantErr) {
		t.Errorf("sequential error = %v", err)
	}
}
