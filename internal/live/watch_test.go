package live

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/synth"
)

// corpusDir writes n synthetic runs as result files and returns the
// directory plus the runs in ID order (the order WriteCorpus names
// files in).
func corpusDir(t *testing.T, n int) (string, []*model.Run) {
	t.Helper()
	runs, err := synth.Generate(synth.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) < n {
		t.Fatalf("need %d runs, synth produced %d", n, len(runs))
	}
	runs = runs[:n]
	dir := t.TempDir()
	if err := core.WriteCorpus(dir, runs, 0); err != nil {
		t.Fatal(err)
	}
	return dir, runs
}

func runPath(dir string, r *model.Run) string {
	return filepath.Join(dir, r.ID+".txt")
}

func TestWatcherBaselineSuppressesExisting(t *testing.T) {
	dir, _ := corpusDir(t, 4)
	w := NewWatcher(dir)
	if err := w.Baseline(); err != nil {
		t.Fatal(err)
	}
	d, err := w.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if !d.Empty() {
		t.Fatalf("poll after baseline reported changes: %+v", d)
	}
}

func TestWatcherFirstPollWithoutBaselineReportsAll(t *testing.T) {
	dir, runs := corpusDir(t, 3)
	w := NewWatcher(dir)
	d, err := w.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Added) != len(runs) || len(d.Modified) != 0 || len(d.Removed) != 0 {
		t.Fatalf("first poll: %+v, want %d added", d, len(runs))
	}
}

func TestWatcherClassifiesDeltas(t *testing.T) {
	dir, runs := corpusDir(t, 5)
	w := NewWatcher(dir)
	if err := w.Baseline(); err != nil {
		t.Fatal(err)
	}

	// Added: a new result file plus a non-result file that must be
	// invisible to the result-file predicate. The new file reuses an
	// existing body under a fresh name — content does not matter to the
	// watcher, only the path appearing.
	added := filepath.Join(dir, "zz-new-run.txt")
	src, err := os.ReadFile(runPath(dir, runs[0]))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(added, src, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "notes.md"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	// Modified: bump one file's mtime without changing its size.
	modified := runPath(dir, runs[1])
	past := time.Unix(1700000000, 0)
	if err := os.Chtimes(modified, past, past); err != nil {
		t.Fatal(err)
	}

	// Removed: delete one file.
	removed := runPath(dir, runs[2])
	if err := os.Remove(removed); err != nil {
		t.Fatal(err)
	}

	d, err := w.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d.Added, []string{added}) {
		t.Errorf("Added = %v, want [%s]", d.Added, added)
	}
	if !reflect.DeepEqual(d.Modified, []string{modified}) {
		t.Errorf("Modified = %v, want [%s]", d.Modified, modified)
	}
	if !reflect.DeepEqual(d.Removed, []string{removed}) {
		t.Errorf("Removed = %v, want [%s]", d.Removed, removed)
	}

	// The next poll starts from the updated state: quiescent again.
	d, err = w.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if !d.Empty() {
		t.Fatalf("second poll not empty: %+v", d)
	}
}

func TestWatcherErrorKeepsState(t *testing.T) {
	dir, runs := corpusDir(t, 2)
	gone := filepath.Join(t.TempDir(), "missing")
	w := NewWatcher(dir, gone)
	// Baseline fails on the missing directory; the watcher keeps nil
	// state, so after the directory problem is fixed a poll still sees
	// everything.
	if err := w.Baseline(); err == nil {
		t.Fatal("baseline over a missing directory succeeded")
	}
	if err := os.Mkdir(gone, 0o755); err != nil {
		t.Fatal(err)
	}
	d, err := w.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Added) != len(runs) {
		t.Fatalf("post-recovery poll Added = %v, want %d files", d.Added, len(runs))
	}
}

func TestWatcherMultipleDirs(t *testing.T) {
	dirA, runsA := corpusDir(t, 2)
	dirB, runsB := corpusDir(t, 3)
	w := NewWatcher(dirA, dirB)
	d, err := w.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Added) != len(runsA)+len(runsB) {
		t.Fatalf("Added = %d files, want %d", len(d.Added), len(runsA)+len(runsB))
	}
}

func TestRunnerDrivesPolls(t *testing.T) {
	dir, runs := corpusDir(t, 3)
	w := NewWatcher(dir)
	if err := w.Baseline(); err != nil {
		t.Fatal(err)
	}

	ticks := make(chan time.Time)
	var deltas []Delta
	done := make(chan error, 1)
	r := &Runner{
		W:       w,
		Ticks:   ticks,
		OnDelta: func(d Delta) { deltas = append(deltas, d) },
	}
	go func() { done <- r.Run(context.Background()) }()

	// Tick 1: nothing changed — OnDelta must not fire. The synchronous
	// handshake is the tick send itself: Run only re-enters the select
	// after finishing the previous tick's poll and handler.
	ticks <- time.Time{}

	// Tick 2: one file removed.
	if err := os.Remove(runPath(dir, runs[0])); err != nil {
		t.Fatal(err)
	}
	ticks <- time.Time{}

	close(ticks)
	if err := <-done; err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(deltas) != 1 || len(deltas[0].Removed) != 1 {
		t.Fatalf("deltas = %+v, want one delta with one removal", deltas)
	}
}

func TestRunnerErrorDoesNotStop(t *testing.T) {
	dir := t.TempDir()
	sub := filepath.Join(dir, "corpus")
	w := NewWatcher(sub)

	ticks := make(chan time.Time)
	var errs []error
	var deltas []Delta
	done := make(chan error, 1)
	r := &Runner{
		W:       w,
		Ticks:   ticks,
		OnDelta: func(d Delta) { deltas = append(deltas, d) },
		OnError: func(err error) { errs = append(errs, err) },
	}
	go func() { done <- r.Run(context.Background()) }()

	ticks <- time.Time{} // directory missing: error, keep going
	if err := os.Mkdir(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	runs, err := synth.Generate(synth.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := core.WriteCorpus(sub, runs[:1], 0); err != nil {
		t.Fatal(err)
	}
	ticks <- time.Time{} // recovered: the file reports as Added

	close(ticks)
	if err := <-done; err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(errs) != 1 {
		t.Fatalf("errs = %v, want exactly one poll error", errs)
	}
	if len(deltas) != 1 || len(deltas[0].Added) != 1 {
		t.Fatalf("deltas = %+v, want one delta with one addition", deltas)
	}
}

func TestRunnerContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	r := &Runner{W: NewWatcher(), Ticks: make(chan time.Time)}
	done := make(chan error, 1)
	go func() { done <- r.Run(ctx) }()
	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("Run = %v, want context.Canceled", err)
	}
}
