package live

import (
	"context"
	"time"
)

// Runner drives a Watcher from an externally owned tick channel: one
// Poll per tick, deltas handed to OnDelta, errors to OnError. The
// runner never constructs a clock — specserve feeds it a time.Ticker,
// tests feed it a plain channel — so poll cadence is entirely the
// caller's policy and the package stays free of time reads.
type Runner struct {
	// W is the watcher to poll. Run is the only goroutine touching it.
	W *Watcher
	// Ticks delivers poll triggers. Run exits when the channel closes.
	Ticks <-chan time.Time
	// OnDelta receives each non-empty delta, synchronously: the next
	// poll waits until the handler returns, so deltas are observed in
	// order and never concurrently.
	OnDelta func(Delta)
	// OnError receives poll errors (nil handler drops them). An error
	// does not stop the runner — the watcher keeps its previous state,
	// so the next successful poll reports the accumulated changes.
	OnError func(error)
}

// Run polls on each tick until the context is cancelled or the tick
// channel closes. It always returns nil on channel close and
// ctx.Err() on cancellation.
func (r *Runner) Run(ctx context.Context) error {
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case _, ok := <-r.Ticks:
			if !ok {
				return nil
			}
			d, err := r.W.Poll()
			if err != nil {
				if r.OnError != nil {
					r.OnError(err)
				}
				continue
			}
			if !d.Empty() && r.OnDelta != nil {
				r.OnDelta(d)
			}
		}
	}
}
