// Package live detects growth of on-disk corpora for the serving
// layer's append plane. A Watcher polls one or more corpus directories
// and reports which result files appeared, changed, or vanished since
// the previous poll; a Runner drives those polls from an injectable
// tick channel, so the package itself never reads a clock — the caller
// owns time (a time.Ticker in specserve, a hand-fed channel in tests),
// which keeps the package deterministic under test and clean under
// specvet's determinism analyzers.
//
// The watcher is deliberately a poller, not an inotify consumer: the
// corpus directories it watches are small (hundreds of files), polls
// are two syscalls per file, and polling works identically on every
// platform and over network filesystems where notification APIs are
// unreliable. Deltas are classified by (size, mtime) pairs — the same
// signature the gob parse cache trusts — so a rewritten file with
// identical length still registers as Modified when its mtime moved.
package live

import (
	"os"
	"sort"

	"repro/internal/core"
)

// fileState is the change signature for one result file.
type fileState struct {
	size  int64
	mtime int64 // UnixNano
}

// Delta is one poll's classified changes. Paths in each slice are
// sorted, so a delta built from a given directory state is
// deterministic regardless of filesystem iteration order.
type Delta struct {
	// Added lists result files that appeared since the previous poll —
	// the append-friendly case: the serving layer folds them in through
	// the engine delta path without rebuilding anything.
	Added []string
	// Modified lists files whose (size, mtime) signature changed, and
	// Removed files that vanished. Neither is expressible as an append;
	// the serving layer responds by resetting its pool.
	Modified []string
	Removed  []string
}

// Empty reports whether the poll found no changes.
func (d Delta) Empty() bool {
	return len(d.Added) == 0 && len(d.Modified) == 0 && len(d.Removed) == 0
}

// Watcher polls a set of corpus directories for result-file changes.
// It is not safe for concurrent use; the Runner serializes polls.
type Watcher struct {
	dirs []string
	// known is the signature map from the previous poll (nil until
	// Baseline or the first Poll).
	known map[string]fileState
}

// NewWatcher watches the given corpus directories. Directories are
// walked recursively with the same result-file predicate the corpus
// sources use, so the watcher sees exactly what a DirSource would
// ingest.
func NewWatcher(dirs ...string) *Watcher {
	return &Watcher{dirs: append([]string(nil), dirs...)}
}

// Baseline records the current directory state without reporting it,
// so files present at startup — already ingested by the corpus source
// — are not re-announced as Added by the first Poll.
func (w *Watcher) Baseline() error {
	state, err := w.scan()
	if err != nil {
		return err
	}
	w.known = state
	return nil
}

// Poll scans the watched directories and returns the changes since the
// previous Poll (or Baseline). The first Poll without a Baseline
// reports every existing file as Added. On scan error the previous
// state is kept, so a transient failure never manufactures a delta.
func (w *Watcher) Poll() (Delta, error) {
	state, err := w.scan()
	if err != nil {
		return Delta{}, err
	}
	var d Delta
	for path, cur := range state {
		prev, ok := w.known[path]
		switch {
		case !ok:
			d.Added = append(d.Added, path)
		case cur != prev:
			d.Modified = append(d.Modified, path)
		}
	}
	for path := range w.known {
		if _, ok := state[path]; !ok {
			d.Removed = append(d.Removed, path)
		}
	}
	sort.Strings(d.Added)
	sort.Strings(d.Modified)
	sort.Strings(d.Removed)
	w.known = state
	return d, nil
}

// scan builds the signature map for the watched directories. A file
// that vanishes between listing and stat is simply absent from the
// map — it will surface as Removed on the poll after its deletion
// completes, never as an error.
func (w *Watcher) scan() (map[string]fileState, error) {
	state := map[string]fileState{}
	for _, dir := range w.dirs {
		paths, err := core.ListResultFiles(dir)
		if err != nil {
			return nil, err
		}
		for _, path := range paths {
			info, err := os.Stat(path)
			if err != nil {
				if os.IsNotExist(err) {
					continue
				}
				return nil, err
			}
			state[path] = fileState{size: info.Size(), mtime: info.ModTime().UnixNano()}
		}
	}
	return state, nil
}
