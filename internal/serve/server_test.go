package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/synth"
)

// countingSource counts how often the base corpus is streamed — the
// ground truth for the single-flight and warm-scope assertions.
type countingSource struct {
	inner   core.Source
	streams *atomic.Int64
}

func (c countingSource) Name() string { return "counting(" + c.inner.Name() + ")" }

func (c countingSource) Each(workers int, yield func(*model.Run) error) error {
	c.streams.Add(1)
	return c.inner.Each(workers, yield)
}

func testRuns(t testing.TB) []*model.Run {
	t.Helper()
	runs, err := core.GenerateCorpus(synth.Options{
		Seed: 7,
		Plan: []synth.YearPlan{
			{Year: 2009, Parsed: 12, AMDShare: 0.25, LinuxShare: 0.02, TwoSocketShare: 0.7},
			{Year: 2019, Parsed: 12, AMDShare: 0.30, LinuxShare: 0.30, TwoSocketShare: 0.7},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return runs
}

// testServer builds a Server over the small corpus and returns the
// stream counter of its base source.
func testServer(t testing.TB, cfg Config) (*Server, *atomic.Int64) {
	t.Helper()
	var streams atomic.Int64
	if cfg.Base == nil {
		cfg.Base = countingSource{inner: core.SliceSource(testRuns(t)), streams: &streams}
	}
	return New(cfg), &streams
}

func get(t testing.TB, s *Server, path string, hdr ...string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	for i := 0; i+1 < len(hdr); i += 2 {
		req.Header.Set(hdr[i], hdr[i+1])
	}
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

func TestHealthz(t *testing.T) {
	s, _ := testServer(t, Config{})
	rec := get(t, s, "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var body map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body["status"] != "ok" {
		t.Errorf("body = %v", body)
	}
}

func TestListAnalyses(t *testing.T) {
	s, streams := testServer(t, Config{})
	rec := get(t, s, "/v1/analyses")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	var entries []struct{ Name, Description string }
	if err := json.Unmarshal(rec.Body.Bytes(), &entries); err != nil {
		t.Fatal(err)
	}
	if len(entries) < 16 {
		t.Fatalf("listed %d analyses", len(entries))
	}
	seen := map[string]bool{}
	for _, e := range entries {
		if e.Description == "" {
			t.Errorf("analysis %q listed without a description", e.Name)
		}
		seen[e.Name] = true
	}
	if !seen["funnel"] || !seen["fig3"] || !seen["table1"] {
		t.Errorf("listing missing expected names: %v", seen)
	}
	// The listing is registry-only: no engine, no ingestion.
	if streams.Load() != 0 {
		t.Errorf("listing streamed the corpus %d times", streams.Load())
	}
	// And it is cacheable: the ETag round-trips to a 304.
	etag := rec.Header().Get("ETag")
	if etag == "" {
		t.Fatal("listing has no ETag")
	}
	if rec := get(t, s, "/v1/analyses", "If-None-Match", etag); rec.Code != http.StatusNotModified {
		t.Errorf("repeat with ETag = %d, want 304", rec.Code)
	}
}

func TestAnalysisEndpoint(t *testing.T) {
	s, _ := testServer(t, Config{})
	rec := get(t, s, "/v1/analyses/funnel")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var body struct {
		Name        string          `json:"name"`
		Description string          `json:"description"`
		Filter      string          `json:"filter"`
		Value       json.RawMessage `json:"value"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Name != "funnel" || body.Description == "" || len(body.Value) == 0 {
		t.Errorf("body = %+v", body)
	}
	if body.Filter != "" {
		t.Errorf("unfiltered request reported filter %q", body.Filter)
	}
}

func TestAnalysisScoped(t *testing.T) {
	runs := testRuns(t)
	wantAMD := 0
	for _, r := range runs {
		if r.CPUVendor == model.VendorAMD {
			wantAMD++
		}
	}
	if wantAMD == 0 || wantAMD == len(runs) {
		t.Fatalf("test corpus needs a vendor mix, got %d/%d AMD", wantAMD, len(runs))
	}
	s := New(Config{Base: core.SliceSource(runs)})
	rec := get(t, s, "/v1/analyses/funnel?filter=vendor%3DAMD")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	var body struct {
		Filter string `json:"filter"`
		Value  struct {
			Raw int `json:"Raw"`
		} `json:"value"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Filter != "vendor=amd" {
		t.Errorf("filter echoed as %q, want canonical %q", body.Filter, "vendor=amd")
	}
	if body.Value.Raw != wantAMD {
		t.Errorf("scoped funnel saw %d raw runs, want %d", body.Value.Raw, wantAMD)
	}
}

func TestAnalysisUnknownName(t *testing.T) {
	s, streams := testServer(t, Config{})
	rec := get(t, s, "/v1/analyses/nope")
	if rec.Code != http.StatusNotFound {
		t.Fatalf("status = %d", rec.Code)
	}
	var body struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	// The error is helpful (names the miss, lists what exists) and
	// cheap: no engine was built for a typo.
	for _, want := range []string{`"nope"`, "available", "fig3"} {
		if !strings.Contains(body.Error, want) {
			t.Errorf("error %q missing %q", body.Error, want)
		}
	}
	if streams.Load() != 0 {
		t.Errorf("404 streamed the corpus %d times", streams.Load())
	}
}

// TestAnalysisParamScenarios is the parameterized-API acceptance test:
// one scope engine concurrently serves clusters with k=3 and k=5 —
// distinct memoized results, distinct ETags, both independently
// 304-revalidatable — while a spelled-out default shares the default
// request's validator, and the whole family shares one engine build
// and one ingestion.
func TestAnalysisParamScenarios(t *testing.T) {
	s, streams := testServer(t, Config{})

	type outcome struct {
		code int
		etag string
		k    int
	}
	fetch := func(path string, hdr ...string) outcome {
		rec := get(t, s, path, hdr...)
		var body struct {
			Params string `json:"params"`
			Value  struct {
				K int `json:"k"`
			} `json:"value"`
		}
		if rec.Code == http.StatusOK {
			if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
				t.Fatalf("%s: %v", path, err)
			}
		}
		return outcome{code: rec.Code, etag: rec.Header().Get("ETag"), k: body.Value.K}
	}

	// Concurrent cold requests for both parameterizations.
	var wg sync.WaitGroup
	outs := make([]outcome, 8)
	for i := range outs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			k := 3 + 2*(i%2) // alternate k=3 / k=5
			outs[i] = fetch(fmt.Sprintf("/v1/analyses/clusters?k=%d", k))
		}(i)
	}
	wg.Wait()
	for i, out := range outs {
		wantK := 3 + 2*(i%2)
		if out.code != http.StatusOK {
			t.Fatalf("request %d: status %d", i, out.code)
		}
		if out.k != wantK {
			t.Errorf("request %d: clustered into k=%d, want %d", i, out.k, wantK)
		}
		if out.etag == "" || out.etag != outs[i%2].etag {
			t.Errorf("request %d: ETag %q differs within the k=%d family", i, out.etag, wantK)
		}
	}
	if outs[0].etag == outs[1].etag {
		t.Error("k=3 and k=5 share an ETag — 304s would serve the wrong partition")
	}
	if got := s.Stats().EngineBuilds; got != 1 {
		t.Errorf("param scenarios built %d engines, want 1 shared scope engine", got)
	}
	if got := streams.Load(); got != 1 {
		t.Errorf("corpus streamed %d times across scenarios, want 1", got)
	}

	// Each parameterization revalidates independently.
	for i := 0; i < 2; i++ {
		k := 3 + 2*i
		path := fmt.Sprintf("/v1/analyses/clusters?k=%d", k)
		rec := get(t, s, path, "If-None-Match", outs[i].etag)
		if rec.Code != http.StatusNotModified || rec.Body.Len() != 0 {
			t.Errorf("k=%d revalidation: status %d, %d-byte body, want bare 304",
				k, rec.Code, rec.Body.Len())
		}
		// The other parameterization's validator must not match.
		rec = get(t, s, path, "If-None-Match", outs[1-i].etag)
		if rec.Code != http.StatusOK {
			t.Errorf("k=%d with the other family's ETag: status %d, want 200", k, rec.Code)
		}
	}

	// A default request and the defaults spelled out share a validator;
	// a param request echoes its canonical (non-default) params.
	def := fetch("/v1/analyses/clusters")
	spelled := fetch("/v1/analyses/clusters?seed=14&kmin=2&kmax=8&algo=kmeans")
	if def.code != http.StatusOK || spelled.code != http.StatusOK {
		t.Fatalf("default/spelled status %d/%d", def.code, spelled.code)
	}
	if def.etag != spelled.etag {
		t.Errorf("spelled-out defaults got ETag %q, want the default %q", spelled.etag, def.etag)
	}
	var echoed struct {
		Params string `json:"params"`
	}
	rec := get(t, s, "/v1/analyses/clusters?k=3")
	if err := json.Unmarshal(rec.Body.Bytes(), &echoed); err != nil {
		t.Fatal(err)
	}
	if echoed.Params != "k=3" {
		t.Errorf("params echoed as %q, want %q", echoed.Params, "k=3")
	}
	if rec := get(t, s, "/v1/analyses/clusters"); strings.Contains(rec.Body.String(), `"params"`) {
		t.Error("default response carries a params field (breaks byte-compat)")
	}
}

// TestAnalysisParamErrors: unknown keys and invalid values are 400s
// carrying the declared schema — and they never build an engine or
// touch the corpus. Compute-time combination errors (hac without a
// stopping rule, k beyond the corpus) are also 400s, not 500s.
func TestAnalysisParamErrors(t *testing.T) {
	s, streams := testServer(t, Config{})
	badQueries := []string{
		"bogus=1",             // unknown key
		"k=-1",                // fails the k >= 0 validation
		"k=abc",               // unparsable int
		"algo=ward",           // outside the enum
		"features=score,nope", // unknown feature name
		"kmin=7&kmax=3",       // inverted sweep range
		"algo=hac&cut=NaN",    // non-finite floats defeat range checks
		"algo=hac&cut=Inf",
	}
	for _, q := range badQueries {
		rec := get(t, s, "/v1/analyses/clusters?"+q)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("?%s: status = %d, want 400 (body %s)", q, rec.Code, rec.Body)
			continue
		}
		if etag := rec.Header().Get("ETag"); etag != "" {
			t.Errorf("?%s: 400 carries ETag %q", q, etag)
		}
		var body struct {
			Error  string `json:"error"`
			Schema []struct {
				Name string `json:"name"`
				Kind string `json:"kind"`
			} `json:"schema"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatalf("?%s: %v", q, err)
		}
		if body.Error == "" {
			t.Errorf("?%s: empty error", q)
		}
		names := map[string]string{}
		for _, p := range body.Schema {
			names[p.Name] = p.Kind
		}
		if names["k"] != "int" || names["algo"] != "enum" || names["features"] != "string-list" {
			t.Errorf("?%s: schema echo incomplete: %v", q, names)
		}
	}
	// Resolve-level 400s must not build an engine or ingest anything.
	if got := streams.Load(); got != 0 {
		// kmin/kmax inversion is caught at compute time and ingests once;
		// everything before it is resolve-level. Allow exactly that one.
		if got != 1 {
			t.Errorf("param errors streamed the corpus %d times", got)
		}
	}
	// Params on a parameterless analysis are unknown keys.
	if rec := get(t, s, "/v1/analyses/funnel?k=3"); rec.Code != http.StatusBadRequest {
		t.Errorf("funnel?k=3: status = %d, want 400", rec.Code)
	}
	// hac without k or cut: a compute-time combination error, still 400.
	if rec := get(t, s, "/v1/analyses/clusters?algo=hac"); rec.Code != http.StatusBadRequest {
		t.Errorf("algo=hac without k/cut: status = %d, want 400 (body %s)", rec.Code, rec.Body)
	}
	// And a valid hac request on the same (healthy, resident) scope
	// engine still serves — the 400 must not have poisoned the pool.
	if rec := get(t, s, "/v1/analyses/clusters?algo=hac&k=3"); rec.Code != http.StatusOK {
		t.Errorf("algo=hac&k=3 after a 400: status = %d (body %s)", rec.Code, rec.Body)
	}
}

// TestListSchemas: /v1/analyses describes each analysis's declared
// parameters, and parameterless analyses stay schema-free.
func TestListSchemas(t *testing.T) {
	s, _ := testServer(t, Config{})
	rec := get(t, s, "/v1/analyses")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var entries []struct {
		Name   string `json:"name"`
		Params []struct {
			Name    string   `json:"name"`
			Kind    string   `json:"kind"`
			Default string   `json:"default"`
			Enum    []string `json:"enum"`
		} `json:"params"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &entries); err != nil {
		t.Fatal(err)
	}
	byName := map[string]int{}
	for i, e := range entries {
		byName[e.Name] = i
	}
	clusters := entries[byName["clusters"]]
	if len(clusters.Params) < 6 {
		t.Fatalf("clusters schema lists %d params: %+v", len(clusters.Params), clusters.Params)
	}
	seen := map[string]bool{}
	for _, p := range clusters.Params {
		seen[p.Name] = true
		if p.Name == "algo" && (p.Kind != "enum" || len(p.Enum) != 3 || p.Default != "kmeans") {
			t.Errorf("algo param listed as %+v", p)
		}
		if p.Name == "seed" && p.Default != "14" {
			t.Errorf("seed default listed as %q", p.Default)
		}
	}
	for _, want := range []string{"k", "algo", "linkage", "cut", "seed", "features", "kmin", "kmax"} {
		if !seen[want] {
			t.Errorf("clusters schema missing %q", want)
		}
	}
	if len(entries[byName["funnel"]].Params) != 0 {
		t.Errorf("funnel lists params: %+v", entries[byName["funnel"]].Params)
	}
}

func TestAnalysisBadFilter(t *testing.T) {
	s, _ := testServer(t, Config{})
	for _, filter := range []string{"color=red", "year=abc", "vendor"} {
		rec := get(t, s, "/v1/analyses/funnel?filter="+filter)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("filter %q: status = %d, want 400", filter, rec.Code)
		}
	}
}

func TestETagRoundTrip(t *testing.T) {
	s, _ := testServer(t, Config{})
	first := get(t, s, "/v1/analyses/funnel")
	if first.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", first.Code, first.Body)
	}
	etag := first.Header().Get("ETag")
	if etag == "" || !strings.HasPrefix(etag, `"`) {
		t.Fatalf("ETag = %q, want a quoted strong validator", etag)
	}
	if cc := first.Header().Get("Cache-Control"); cc != "no-cache" {
		t.Errorf("Cache-Control = %q", cc)
	}

	second := get(t, s, "/v1/analyses/funnel", "If-None-Match", etag)
	if second.Code != http.StatusNotModified {
		t.Fatalf("repeat with ETag: status = %d, want 304", second.Code)
	}
	if second.Body.Len() != 0 {
		t.Errorf("304 carried a %d-byte body", second.Body.Len())
	}
	if got := second.Header().Get("ETag"); got != etag {
		t.Errorf("304 ETag = %q, want %q", got, etag)
	}
	if s.Stats().NotModified != 1 {
		t.Errorf("not_modified = %d, want 1", s.Stats().NotModified)
	}

	// The validator is specific: a different analysis and a different
	// scope both get different ETags (a shared one would serve wrong
	// 304s).
	other := get(t, s, "/v1/analyses/fig1")
	if other.Header().Get("ETag") == etag {
		t.Error("fig1 shares funnel's ETag")
	}
	scoped := get(t, s, "/v1/analyses/funnel?filter=vendor%3DAMD")
	if scoped.Header().Get("ETag") == etag {
		t.Error("scoped funnel shares the unscoped ETag")
	}
	// A stale validator still gets a fresh 200.
	if rec := get(t, s, "/v1/analyses/funnel", "If-None-Match", `"deadbeef"`); rec.Code != http.StatusOK {
		t.Errorf("stale ETag: status = %d, want 200", rec.Code)
	}
}

// TestSingleFlight: N concurrent requests for the same cold scope build
// exactly one engine and stream the corpus exactly once.
func TestSingleFlight(t *testing.T) {
	s, streams := testServer(t, Config{})
	const n = 8
	var wg sync.WaitGroup
	codes := make([]int, n)
	etags := make([]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec := get(t, s, "/v1/analyses/funnel?filter=vendor%3DAMD")
			codes[i] = rec.Code
			etags[i] = rec.Header().Get("ETag")
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: status %d", i, codes[i])
		}
		if etags[i] != etags[0] {
			t.Errorf("request %d: ETag %q differs from %q", i, etags[i], etags[0])
		}
	}
	if got := s.Stats().EngineBuilds; got != 1 {
		t.Errorf("engine_builds = %d, want 1 (single-flight)", got)
	}
	if got := streams.Load(); got != 1 {
		t.Errorf("corpus streamed %d times under concurrency, want 1", got)
	}
}

// TestWarmScopeServedFromMemo: once a scope is resident, repeat
// requests recompute nothing — no new engine, no new ingestion — and
// are far faster than the cold request that built the scope.
func TestWarmScopeServedFromMemo(t *testing.T) {
	s, streams := testServer(t, Config{})

	coldStart := time.Now()
	if rec := get(t, s, "/v1/analyses/funnel"); rec.Code != http.StatusOK {
		t.Fatalf("cold: status %d", rec.Code)
	}
	cold := time.Since(coldStart)
	if streams.Load() != 1 {
		t.Fatalf("cold request streamed %d times", streams.Load())
	}

	warmStart := time.Now()
	for i := 0; i < 5; i++ {
		if rec := get(t, s, "/v1/analyses/funnel"); rec.Code != http.StatusOK {
			t.Fatalf("warm: status %d", rec.Code)
		}
	}
	warm := time.Since(warmStart) / 5
	if streams.Load() != 1 {
		t.Errorf("warm requests re-streamed the corpus (%d streams)", streams.Load())
	}
	if got := s.Stats().EngineBuilds; got != 1 {
		t.Errorf("warm requests rebuilt the engine (%d builds)", got)
	}
	// The wall-clock claim (≥10× in BenchmarkServeAnalysis) is asserted
	// loosely here to stay robust on loaded CI machines.
	if warm > cold {
		t.Errorf("warm request (%v) slower than cold (%v)", warm, cold)
	}
	t.Logf("cold=%v warm=%v (%.0f× speedup)", cold, warm, float64(cold)/float64(warm))
}

// TestPoolEviction: past the LRU bound the least recently served scope
// is evicted and a later request for it rebuilds.
func TestPoolEviction(t *testing.T) {
	s, _ := testServer(t, Config{PoolSize: 2})
	hit := func(filter string) {
		t.Helper()
		rec := get(t, s, "/v1/analyses/funnel?filter="+filter)
		if rec.Code != http.StatusOK {
			t.Fatalf("filter %q: status %d: %s", filter, rec.Code, rec.Body)
		}
	}
	hit("vendor%3DAMD")   // pool: [amd]
	hit("vendor%3DIntel") // pool: [intel amd]
	hit("os%3DLinux")     // pool: [linux intel], amd evicted
	st := s.Stats()
	if st.PoolEngines != 2 {
		t.Errorf("pool_engines = %d, want 2", st.PoolEngines)
	}
	if st.EngineBuilds != 3 || st.PoolEvictions != 1 {
		t.Errorf("builds/evictions = %d/%d, want 3/1", st.EngineBuilds, st.PoolEvictions)
	}
	hit("os%3DLinux") // still resident: no rebuild
	if got := s.Stats().EngineBuilds; got != 3 {
		t.Errorf("resident scope rebuilt: builds = %d", got)
	}
	hit("vendor%3DAMD") // evicted: rebuilt, evicting intel
	st = s.Stats()
	if st.EngineBuilds != 4 || st.PoolEvictions != 2 {
		t.Errorf("after re-request: builds/evictions = %d/%d, want 4/2",
			st.EngineBuilds, st.PoolEvictions)
	}
}

// TestScopeCanonicalization: different spellings of the same filter
// share one pool engine.
func TestScopeCanonicalization(t *testing.T) {
	s, streams := testServer(t, Config{})
	for _, spelling := range []string{
		"vendor%3DAMD%2Csince%3D2015",
		"since%3D2015%2Cvendor%3Damd",
		"%20vendor%3DAMD%20%2C%20since%3D2015%20",
	} {
		rec := get(t, s, "/v1/analyses/funnel?filter="+spelling)
		if rec.Code != http.StatusOK {
			t.Fatalf("spelling %q: status %d: %s", spelling, rec.Code, rec.Body)
		}
	}
	if got := s.Stats().EngineBuilds; got != 1 {
		t.Errorf("equal scopes built %d engines, want 1", got)
	}
	if got := streams.Load(); got != 1 {
		t.Errorf("equal scopes streamed %d times, want 1", got)
	}
}

func TestReportEndpoint(t *testing.T) {
	// The full report needs enough yearly bins for the trend tests, so
	// it gets a wider corpus than the two-year default.
	runs, err := core.GenerateCorpus(synth.Options{
		Seed: 7,
		Plan: []synth.YearPlan{
			{Year: 2008, Parsed: 10, AMDShare: 0.25, LinuxShare: 0.02, TwoSocketShare: 0.7},
			{Year: 2012, Parsed: 10, AMDShare: 0.20, LinuxShare: 0.05, TwoSocketShare: 0.7},
			{Year: 2016, Parsed: 10, AMDShare: 0.10, LinuxShare: 0.10, TwoSocketShare: 0.7},
			{Year: 2018, Parsed: 10, AMDShare: 0.20, LinuxShare: 0.20, TwoSocketShare: 0.7},
			{Year: 2020, Parsed: 10, AMDShare: 0.30, LinuxShare: 0.30, TwoSocketShare: 0.7},
			{Year: 2023, Parsed: 10, AMDShare: 0.35, LinuxShare: 0.40, TwoSocketShare: 0.7},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Base: core.SliceSource(runs)})
	rec := get(t, s, "/v1/report")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "Filter funnel") {
		t.Errorf("report body missing the funnel section")
	}
	etag := rec.Header().Get("ETag")
	if etag == "" {
		t.Fatal("report has no ETag")
	}
	if rec := get(t, s, "/v1/report", "If-None-Match", etag); rec.Code != http.StatusNotModified {
		t.Errorf("repeat report = %d, want 304", rec.Code)
	}
}

func TestStatsEndpoint(t *testing.T) {
	s, _ := testServer(t, Config{})
	get(t, s, "/healthz")
	get(t, s, "/v1/analyses/funnel")
	rec := get(t, s, "/v1/stats")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var st StatsSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	// The stats request itself is not yet counted when the snapshot is
	// taken, hence 2, not 3.
	if st.Requests != 2 {
		t.Errorf("requests = %d, want 2", st.Requests)
	}
	if st.EngineBuilds != 1 || st.PoolEngines != 1 {
		t.Errorf("builds/engines = %d/%d, want 1/1", st.EngineBuilds, st.PoolEngines)
	}
	if st.Analyses < 16 {
		t.Errorf("analyses = %d", st.Analyses)
	}
	if cc := rec.Header().Get("Cache-Control"); cc != "no-store" {
		t.Errorf("stats Cache-Control = %q", cc)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	s, _ := testServer(t, Config{})
	req := httptest.NewRequest(http.MethodPost, "/v1/analyses/funnel", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST status = %d, want 405", rec.Code)
	}
}

func TestPoolBuildErrorNotCached(t *testing.T) {
	s := New(Config{Base: core.DirSource{Dir: "/nonexistent-corpus-dir"}})
	if rec := get(t, s, "/v1/analyses/funnel"); rec.Code != http.StatusInternalServerError {
		t.Fatalf("missing corpus: status = %d, want 500", rec.Code)
	}
	// The failed build must not be pinned in the pool.
	if got := s.Stats().PoolEngines; got != 0 {
		t.Errorf("failed scope stayed resident: pool_engines = %d", got)
	}
}

// flakySource fails its first `fails` streams, then delegates — a
// corpus directory mid-sync, as seen by the engine.
type flakySource struct {
	inner core.Source
	fails *atomic.Int64
}

func (f flakySource) Name() string { return "flaky(" + f.inner.Name() + ")" }

func (f flakySource) Each(workers int, yield func(*model.Run) error) error {
	if f.fails.Add(-1) >= 0 {
		return fmt.Errorf("transient corpus failure")
	}
	return f.inner.Each(workers, yield)
}

// TestIngestionFailureRetried: a scope whose ingestion fails is dropped
// from the pool — the 500 carries no ETag (nothing to revalidate to),
// and the next request rebuilds and succeeds instead of replaying the
// engine's memoized error forever.
func TestIngestionFailureRetried(t *testing.T) {
	var fails atomic.Int64
	fails.Store(1)
	s := New(Config{Base: flakySource{inner: core.SliceSource(testRuns(t)), fails: &fails}})

	first := get(t, s, "/v1/analyses/funnel")
	if first.Code != http.StatusInternalServerError {
		t.Fatalf("first request = %d, want 500", first.Code)
	}
	if etag := first.Header().Get("ETag"); etag != "" {
		t.Errorf("error response carries ETag %q — a later If-None-Match would 304 a broken resource", etag)
	}
	if got := s.Stats().PoolEngines; got != 0 {
		t.Errorf("broken scope stayed resident: pool_engines = %d", got)
	}

	second := get(t, s, "/v1/analyses/funnel")
	if second.Code != http.StatusOK {
		t.Fatalf("after the corpus recovered: status = %d, want 200 (body %s)",
			second.Code, second.Body)
	}
	if second.Header().Get("ETag") == "" {
		t.Error("recovered response has no ETag")
	}
}

// The gate probe blocks inside an analysis until released, so the test
// can hold a request in flight deterministically. The analysis is
// registered once per process (the registry rejects duplicates) but
// reads its channels through a mutex, so repeated runs (-count) get
// fresh ones.
var (
	gateProbeOnce    sync.Once
	gateProbeMu      sync.Mutex
	gateProbeEnter   chan struct{}
	gateProbeRelease chan struct{}
)

func registerGateProbe() (enter, release chan struct{}) {
	gateProbeOnce.Do(func() {
		analysis.Register("serve_gate_probe", "blocking probe (test only)",
			func(ds *analysis.Dataset) (any, error) {
				gateProbeMu.Lock()
				enter, release := gateProbeEnter, gateProbeRelease
				gateProbeMu.Unlock()
				enter <- struct{}{}
				<-release
				return "ok", nil
			})
	})
	enter = make(chan struct{}, 1)
	release = make(chan struct{})
	gateProbeMu.Lock()
	gateProbeEnter, gateProbeRelease = enter, release
	gateProbeMu.Unlock()
	return enter, release
}

// TestConcurrencyGate: with MaxInFlight=1 and one request parked inside
// a handler, a second request whose client has given up is answered 503
// instead of queueing forever.
func TestConcurrencyGate(t *testing.T) {
	gateEnter, gateRelease := registerGateProbe()
	s, _ := testServer(t, Config{MaxInFlight: 1})

	done := make(chan int, 1)
	go func() {
		rec := get(t, s, "/v1/analyses/serve_gate_probe")
		done <- rec.Code
	}()
	<-gateEnter // the first request is now inside the gate

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil).WithContext(ctx)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("gated request = %d, want 503", rec.Code)
	}
	if got := s.Stats().RejectedBusy; got != 1 {
		t.Errorf("rejected_busy = %d, want 1", got)
	}

	close(gateRelease)
	if code := <-done; code != http.StatusOK {
		t.Errorf("parked request finished with %d", code)
	}
}

func TestWarm(t *testing.T) {
	s, streams := testServer(t, Config{})
	if err := s.Warm(); err != nil {
		t.Fatal(err)
	}
	if streams.Load() != 1 {
		t.Fatalf("Warm streamed %d times", streams.Load())
	}
	if rec := get(t, s, "/v1/analyses/funnel"); rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if streams.Load() != 1 {
		t.Errorf("first request after Warm re-ingested (streams = %d)", streams.Load())
	}
}

func TestRequestLogging(t *testing.T) {
	var mu sync.Mutex
	var lines []string
	logf := func(format string, args ...any) {
		mu.Lock()
		lines = append(lines, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	var streams atomic.Int64
	s := New(Config{
		Base: countingSource{inner: core.SliceSource(testRuns(t)), streams: &streams},
		Logf: logf,
	})
	get(t, s, "/v1/analyses/funnel?filter=vendor%3DAMD")
	mu.Lock()
	defer mu.Unlock()
	if len(lines) != 1 {
		t.Fatalf("logged %d lines, want 1", len(lines))
	}
	for _, want := range []string{"GET", "/v1/analyses/funnel", "200"} {
		if !strings.Contains(lines[0], want) {
			t.Errorf("log line %q missing %q", lines[0], want)
		}
	}
}

// TestClusterAnalysisServed: the clustering subsystem is an ordinary
// registry analysis as far as the server is concerned, so it inherits
// the scoped engine pool and ETag/304 revalidation for free. This
// pins that inheritance: a cold request computes and tags, the
// revalidation transfers nothing, and the scope engine is reused.
func TestClusterAnalysisServed(t *testing.T) {
	s, streams := testServer(t, Config{})
	rec := get(t, s, "/v1/analyses/clusters")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	var body struct {
		Name  string `json:"name"`
		Value struct {
			Algo        string  `json:"algo"`
			K           int     `json:"k"`
			Silhouette  float64 `json:"silhouette"`
			Sizes       []int   `json:"sizes"`
			Assignments []struct {
				ID      string `json:"id"`
				Cluster int    `json:"cluster"`
			} `json:"assignments"`
		} `json:"value"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Name != "clusters" || body.Value.Algo != "kmeans++" {
		t.Errorf("body name/algo = %s/%s", body.Name, body.Value.Algo)
	}
	if body.Value.K < 2 {
		t.Errorf("k = %d, want >= 2 on the test corpus", body.Value.K)
	}
	total := 0
	for _, n := range body.Value.Sizes {
		total += n
	}
	if total != len(body.Value.Assignments) || total == 0 {
		t.Errorf("sizes sum %d, %d assignments", total, len(body.Value.Assignments))
	}
	// Revalidation: the ETag round-trips to a bodyless 304 without
	// re-ingesting the corpus.
	etag := rec.Header().Get("ETag")
	if etag == "" {
		t.Fatal("clusters response has no ETag")
	}
	streamsBefore := streams.Load()
	second := get(t, s, "/v1/analyses/clusters", "If-None-Match", etag)
	if second.Code != http.StatusNotModified {
		t.Fatalf("revalidation status = %d, want 304", second.Code)
	}
	if second.Body.Len() != 0 {
		t.Errorf("304 carried a %d-byte body", second.Body.Len())
	}
	if streams.Load() != streamsBefore {
		t.Errorf("revalidation re-ingested the corpus")
	}
	// And a filtered scope clusters its slice through the same pool.
	if rec := get(t, s, "/v1/analyses/clusters?filter=vendor%3DAMD"); rec.Code != http.StatusOK {
		t.Errorf("filtered clusters status = %d: %s", rec.Code, rec.Body)
	}
}
