package serve

import (
	"context"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/obs/trace"
)

// tracerKey carries the request's tracer through the context, beside
// the metrics record.
type tracerKeyType struct{}

var tracerKey tracerKeyType

// requestTracer returns the request's tracer, nil when tracing is
// disabled. A nil tracer is a valid receiver for every method below —
// root() returns a nil span (itself a no-op receiver) and hooks()
// returns nil — so handlers call through unconditionally.
func requestTracer(r *http.Request) *tracer {
	t, _ := r.Context().Value(tracerKey).(*tracer)
	return t
}

// tracer owns one request's trace: the span tree plus the engine hook
// adapters that turn core lifecycle callbacks and count-only kernel
// events into timed child spans.
type tracer struct {
	tr *trace.Trace

	// Kernel events buffer until the compute hook fires (the compute
	// span they nest under is only created then, with its real start).
	// Each event is timestamped on receipt here, in the serving layer —
	// the kernels themselves never read the clock, which is what keeps
	// registered analyses clean under specvet's determinism gate.
	kmu  sync.Mutex
	kevs []kernelEventRec
}

type kernelEventRec struct {
	at    time.Time
	name  string
	attrs []trace.Attr
}

func newTracer(method, path, traceparent string, start time.Time) *tracer {
	return &tracer{tr: trace.New(method+" "+path, traceparent, start)}
}

// root returns the root span (nil on a nil tracer).
func (t *tracer) root() *trace.Span {
	if t == nil {
		return nil
	}
	return t.tr.Root()
}

// id returns the trace id ("" on a nil tracer), the value audit
// records and slow-request log lines carry.
func (t *tracer) id() string {
	if t == nil {
		return ""
	}
	return t.tr.TraceID()
}

// hooks returns the engine trace hooks for this request, nil when
// untraced (a nil core.Request.Trace is the engine's "don't report"
// value).
func (t *tracer) hooks() *core.TraceHooks {
	if t == nil {
		return nil
	}
	return &core.TraceHooks{
		Ingest:  t.ingest,
		Compute: t.compute,
		Kernel:  t.kernelEvent,
	}
}

// ingest renders the engine's ingestion report as an "ingest" child of
// the root, with one "ingest-source" sub-span per part of a merged
// corpus. It fires only on the request that actually streamed the
// corpus, so the span marks who paid, not who waited.
func (t *tracer) ingest(it core.IngestTrace) {
	sp := t.tr.Root().ChildAt("ingest", it.Start)
	sp.SetAttr("source", it.Source)
	sp.SetAttr("runs", strconv.Itoa(it.Runs))
	if it.Err != nil {
		sp.SetAttr("error", it.Err.Error())
	}
	for _, p := range it.Parts {
		ps := sp.ChildAt("ingest-source", p.Start)
		ps.SetAttr("source", p.Source)
		ps.SetAttr("runs", strconv.Itoa(p.Runs))
		ps.FinishAt(p.End)
	}
	sp.FinishAt(it.End)
}

// kernelEvent receives one count-only kernel progress event and stamps
// it with the receipt time. The spans materialize later, in compute:
// event i's span covers the gap since event i-1 (the first one since
// compute start, so it also absorbs feature extraction ahead of the
// kernel).
func (t *tracer) kernelEvent(ev analysis.KernelEvent) {
	rec := kernelEventRec{at: time.Now(), name: ev.Kernel + "-" + ev.Event}
	switch ev.Kernel {
	case "kmeans":
		rec.attrs = []trace.Attr{
			{Key: "iteration", Value: strconv.Itoa(ev.Index)},
			{Key: "moved", Value: strconv.Itoa(ev.Moved)},
			{Key: "converged", Value: strconv.FormatBool(ev.Converged)},
		}
	case "hac":
		rec.attrs = []trace.Attr{
			{Key: "batch", Value: strconv.Itoa(ev.Index)},
			{Key: "merges", Value: strconv.Itoa(ev.Merges)},
			{Key: "max_dist", Value: strconv.FormatFloat(ev.MaxDist, 'g', -1, 64)},
		}
	default:
		rec.attrs = []trace.Attr{{Key: "index", Value: strconv.Itoa(ev.Index)}}
	}
	t.kmu.Lock()
	t.kevs = append(t.kevs, rec)
	t.kmu.Unlock()
}

// compute renders one executed analysis as a "compute" child of the
// root, draining the buffered kernel events into its sub-spans. Memo
// hits never reach here, so a warm trace simply has no compute span.
func (t *tracer) compute(ct core.ComputeTrace) {
	sp := t.tr.Root().ChildAt("compute", ct.Start)
	sp.SetAttr("analysis", ct.Name)
	if ct.Params != "" {
		sp.SetAttr("params", ct.Params)
	}
	if ct.Err != nil {
		sp.SetAttr("error", ct.Err.Error())
	}
	t.kmu.Lock()
	evs := t.kevs
	t.kevs = nil
	t.kmu.Unlock()
	prev := ct.Start
	for _, ev := range evs {
		k := sp.ChildAt(ev.name, prev)
		for _, a := range ev.attrs {
			k.SetAttr(a.Key, a.Value)
		}
		k.FinishAt(ev.at)
		prev = ev.at
	}
	sp.FinishAt(ct.End)
}

// tracesResponse is the GET /v1/traces body.
type tracesResponse struct {
	// Capacity is the ring bound; Recorded counts every trace ever
	// pushed, including overwritten ones.
	Capacity int    `json:"capacity"`
	Recorded uint64 `json:"recorded"`
	// Traces are the resident completed traces, newest first.
	Traces []trace.Snapshot `json:"traces"`
}

// handleTraces serves the recent-trace ring: ?n= bounds the count,
// ?min_ms= keeps only traces at least that slow. The response is
// assembled from completed traces only (a trace joins the ring after
// its response is written), so this request never observes itself.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	limit := s.traces.Capacity()
	if v := q.Get("n"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			httpError(w, http.StatusBadRequest, "n must be a positive integer")
			return
		}
		limit = n
	}
	var minNs int64
	if v := q.Get("min_ms"); v != "" {
		ms, err := strconv.Atoi(v)
		if err != nil || ms < 0 {
			httpError(w, http.StatusBadRequest, "min_ms must be a non-negative integer")
			return
		}
		minNs = int64(ms) * int64(time.Millisecond)
	}
	resp := tracesResponse{
		Capacity: s.traces.Capacity(),
		Recorded: s.traces.Recorded(),
		Traces:   []trace.Snapshot{},
	}
	for _, tr := range s.traces.Snapshot() {
		if len(resp.Traces) == limit {
			break
		}
		if d := tr.DurationNs(); d < minNs {
			continue
		}
		resp.Traces = append(resp.Traces, tr.Snapshot())
	}
	w.Header().Set("Cache-Control", "no-store")
	writeJSON(w, http.StatusOK, resp)
}

// loopbackOnly wraps a pprof handler so only loopback clients reach
// it: profiles expose memory contents and must not leak past the host
// even when the server itself is bound wide. Non-loopback callers get
// the same 404 a server without -pprof serves, revealing nothing.
func loopbackOnly(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		host, _, err := net.SplitHostPort(r.RemoteAddr)
		if err != nil {
			host = r.RemoteAddr
		}
		if ip := net.ParseIP(host); ip == nil || !ip.IsLoopback() {
			http.NotFound(w, r)
			return
		}
		h(w, r)
	}
}

// mountPprof wires net/http/pprof onto the mux, loopback-gated. The
// index route also serves the named runtime profiles (heap, goroutine,
// block, mutex, …) by path suffix.
func mountPprof(mux *http.ServeMux) {
	mux.HandleFunc("GET /debug/pprof/", loopbackOnly(pprof.Index))
	mux.HandleFunc("GET /debug/pprof/cmdline", loopbackOnly(pprof.Cmdline))
	mux.HandleFunc("GET /debug/pprof/profile", loopbackOnly(pprof.Profile))
	mux.HandleFunc("GET /debug/pprof/symbol", loopbackOnly(pprof.Symbol))
	mux.HandleFunc("GET /debug/pprof/trace", loopbackOnly(pprof.Trace))
}

// withTrace plants the tracer in the request context (when tracing is
// enabled) and, after the handler chain returns, finishes the root
// span, publishes the completed trace to the ring, and emits the slow-
// request log line when the request crossed the configured threshold.
// It runs inside withMetrics so the trace covers exactly what the
// metrics total covers.
func (s *Server) withTrace(r *http.Request, start time.Time) (*http.Request, *tracer) {
	if s.traces == nil {
		return r, nil
	}
	t := newTracer(r.Method, r.URL.Path, r.Header.Get("Traceparent"), start)
	return r.WithContext(context.WithValue(r.Context(), tracerKey, t)), t
}

// finishTrace completes and publishes t (no-op on nil).
func (s *Server) finishTrace(t *tracer, r *http.Request, status int, d time.Duration) {
	if t == nil {
		return
	}
	root := t.tr.Root()
	root.SetAttr("status", strconv.Itoa(status))
	root.Finish()
	s.traces.Add(t.tr)
	if s.cfg.SlowTrace > 0 && d >= s.cfg.SlowTrace && s.cfg.Logf != nil {
		s.cfg.Logf("slow request: %s %s %d %s trace=%s",
			r.Method, r.URL.RequestURI(), status,
			d.Round(time.Microsecond), t.tr.TraceID())
	}
}
