package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/model"
)

// postRun POSTs one result-file body to /v1/runs.
func postRun(t testing.TB, s *Server, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/runs", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

// resultFileBytes renders runs to result files on disk and reads one
// back — the exact body a client would POST.
func resultFileBytes(t testing.TB, r *model.Run) []byte {
	t.Helper()
	dir := t.TempDir()
	if err := core.WriteCorpus(dir, []*model.Run{r}, 0); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dir, r.ID+".txt"))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// funnelRaw decodes the Raw corpus count out of a funnel response body.
func funnelRaw(t testing.TB, body []byte) int {
	t.Helper()
	var resp struct {
		Value struct{ Raw int }
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("decode funnel response: %v", err)
	}
	return resp.Value.Raw
}

// TestLiveAppendRollover walks the satellite scenario end to end: warm
// 304 before the append, POST /v1/runs, 200 with a rolled ETag after,
// and the generation/append counters surfacing in /v1/stats, /v1/pool,
// and /metrics.
func TestLiveAppendRollover(t *testing.T) {
	runs := testRuns(t)
	base, extra := runs[:len(runs)-1], runs[len(runs)-1]
	s := New(Config{Base: core.SliceSource(base), Live: true})

	first := get(t, s, "/v1/analyses/funnel")
	if first.Code != http.StatusOK {
		t.Fatalf("funnel = %d: %s", first.Code, first.Body)
	}
	etag := first.Header().Get("ETag")
	if etag == "" {
		t.Fatal("no ETag on live funnel response")
	}
	if got := funnelRaw(t, first.Body.Bytes()); got != len(base) {
		t.Fatalf("funnel.Raw = %d, want %d", got, len(base))
	}
	// Warm revalidation before the append: nothing changed, 304.
	if rec := get(t, s, "/v1/analyses/funnel", "If-None-Match", etag); rec.Code != http.StatusNotModified {
		t.Fatalf("pre-append revalidation = %d, want 304", rec.Code)
	}

	rec := postRun(t, s, resultFileBytes(t, extra))
	if rec.Code != http.StatusOK {
		t.Fatalf("POST /v1/runs = %d: %s", rec.Code, rec.Body)
	}
	var ar appendResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &ar); err != nil {
		t.Fatal(err)
	}
	if ar.ID != extra.ID || ar.Generation != 1 {
		t.Fatalf("append response = %+v, want id=%s generation=1", ar, extra.ID)
	}

	// The old validator no longer matches: full 200 with the appended
	// run in the corpus and a rolled ETag.
	after := get(t, s, "/v1/analyses/funnel", "If-None-Match", etag)
	if after.Code != http.StatusOK {
		t.Fatalf("post-append revalidation = %d, want 200", after.Code)
	}
	if after.Header().Get("ETag") == etag {
		t.Error("ETag did not roll across the append")
	}
	if got := funnelRaw(t, after.Body.Bytes()); got != len(base)+1 {
		t.Errorf("post-append funnel.Raw = %d, want %d", got, len(base)+1)
	}

	var stats StatsSnapshot
	if err := json.Unmarshal(get(t, s, "/v1/stats").Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Live == nil {
		t.Fatal("/v1/stats has no live section on a live server")
	}
	if stats.Live.Generation != 1 || stats.Live.Appends != 1 || stats.Live.AppendedRuns != 1 {
		t.Errorf("live stats = %+v, want generation/appends/appended_runs all 1", *stats.Live)
	}
	var pool PoolSnapshot
	if err := json.Unmarshal(get(t, s, "/v1/pool").Body.Bytes(), &pool); err != nil {
		t.Fatal(err)
	}
	if len(pool.Engines) != 1 {
		t.Fatalf("pool holds %d engines, want 1", len(pool.Engines))
	}
	ent := pool.Engines[0]
	if ent.Generation != 1 || ent.RunsAppended != 1 || ent.RunsIngested != len(base)+1 {
		t.Errorf("pool view = gen %d appended %d ingested %d, want 1/1/%d",
			ent.Generation, ent.RunsAppended, ent.RunsIngested, len(base)+1)
	}
	metrics := get(t, s, "/metrics").Body.String()
	for _, want := range []string{
		"specserve_generation 1",
		"specserve_appends_total 1",
		"specserve_appended_runs_total 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// A body the parser rejects is the client's fault.
	if rec := postRun(t, s, []byte("not a result file")); rec.Code != http.StatusBadRequest {
		t.Errorf("garbage POST = %d, want 400", rec.Code)
	}
}

// TestLiveDisabled: a static server exposes none of the append plane.
func TestLiveDisabled(t *testing.T) {
	s, _ := testServer(t, Config{})
	if rec := postRun(t, s, []byte("x")); rec.Code != http.StatusNotFound {
		t.Errorf("POST /v1/runs on static server = %d, want 404", rec.Code)
	}
	if _, err := s.AppendRuns(testRuns(t)[0]); err == nil {
		t.Error("AppendRuns succeeded on a static server")
	}
	if _, err := s.ResetPool("test"); err == nil {
		t.Error("ResetPool succeeded on a static server")
	}
	if s.Generation() != 0 {
		t.Errorf("static Generation = %d", s.Generation())
	}
	var stats StatsSnapshot
	if err := json.Unmarshal(get(t, s, "/v1/stats").Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Live != nil {
		t.Errorf("static /v1/stats grew a live section: %+v", *stats.Live)
	}
	if m := get(t, s, "/metrics").Body.String(); strings.Contains(m, "specserve_generation") {
		t.Error("static /metrics exposes specserve_generation")
	}
}

// TestLiveAppendScopes: an append reaches each resident scope through
// its own predicate — the matching scope's corpus grows, the
// non-matching scope's does not — while every scope's ETag rolls (the
// fingerprint composes the generation).
func TestLiveAppendScopes(t *testing.T) {
	runs := testRuns(t)
	var amd *model.Run
	for _, r := range runs {
		if r.CPUVendor == model.VendorAMD {
			amd = r
			break
		}
	}
	if amd == nil {
		t.Fatal("test corpus has no AMD run")
	}
	s := New(Config{Base: core.SliceSource(runs), Live: true})

	amdBefore := get(t, s, "/v1/analyses/funnel?filter=vendor=amd")
	intelBefore := get(t, s, "/v1/analyses/funnel?filter=vendor=intel")
	extra := *amd
	extra.ID = "live-scope-extra"
	if _, err := s.AppendRuns(&extra); err != nil {
		t.Fatal(err)
	}
	amdAfter := get(t, s, "/v1/analyses/funnel?filter=vendor=amd")
	intelAfter := get(t, s, "/v1/analyses/funnel?filter=vendor=intel")

	if got, want := funnelRaw(t, amdAfter.Body.Bytes()), funnelRaw(t, amdBefore.Body.Bytes())+1; got != want {
		t.Errorf("amd scope funnel.Raw = %d, want %d", got, want)
	}
	if got, want := funnelRaw(t, intelAfter.Body.Bytes()), funnelRaw(t, intelBefore.Body.Bytes()); got != want {
		t.Errorf("intel scope funnel.Raw = %d, want %d (append must not leak)", got, want)
	}
	for _, pair := range [][2]*httptest.ResponseRecorder{
		{amdBefore, amdAfter}, {intelBefore, intelAfter},
	} {
		if pair[0].Header().Get("ETag") == pair[1].Header().Get("ETag") {
			t.Error("scope ETag did not roll across the append")
		}
	}
}

// TestLiveAbsorbBaseGrowth covers the watcher path: a result file lands
// in the corpus directory, the watcher parses it and calls
// AbsorbBaseGrowth. Resident engines fold it in through the delta path;
// a scope built afterwards streams it from the directory — and the run
// arrives exactly once on each path.
func TestLiveAbsorbBaseGrowth(t *testing.T) {
	runs := testRuns(t)
	dir := t.TempDir()
	base, extra := runs[:len(runs)-1], runs[len(runs)-1]
	if err := core.WriteCorpus(dir, base, 0); err != nil {
		t.Fatal(err)
	}
	s := New(Config{Base: core.DirSource{Dir: dir}, Live: true})
	before := get(t, s, "/v1/analyses/funnel")
	if got := funnelRaw(t, before.Body.Bytes()); got != len(base) {
		t.Fatalf("funnel.Raw = %d, want %d", got, len(base))
	}

	// The "watcher" sees a new file, parses it, absorbs it.
	if err := core.WriteCorpus(dir, []*model.Run{extra}, 0); err != nil {
		t.Fatal(err)
	}
	parsed, err := core.ParseResultFile(filepath.Join(dir, extra.ID+".txt"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.AbsorbBaseGrowth(parsed); err != nil {
		t.Fatal(err)
	}

	// The warm engine absorbed it via the delta path — once.
	after := get(t, s, "/v1/analyses/funnel")
	if got := funnelRaw(t, after.Body.Bytes()); got != len(base)+1 {
		t.Errorf("warm engine funnel.Raw = %d, want %d", got, len(base)+1)
	}
	if before.Header().Get("ETag") == after.Header().Get("ETag") {
		t.Error("ETag did not roll across the absorbed growth")
	}
	// A cold scope streams the directory — which already holds the
	// file — so it must see the run exactly once too, not twice.
	vendor := strings.ToLower(extra.CPUVendor.String())
	want := 1
	for _, r := range base {
		if r.CPUVendor == extra.CPUVendor {
			want++
		}
	}
	cold := get(t, s, "/v1/analyses/funnel?filter=vendor="+vendor)
	if cold.Code != http.StatusOK {
		t.Fatalf("cold scope = %d: %s", cold.Code, cold.Body)
	}
	if got := funnelRaw(t, cold.Body.Bytes()); got != want {
		t.Errorf("cold scope funnel.Raw = %d, want %d (each run exactly once)", got, want)
	}
}

// TestLiveResetPool: a mutation the delta path cannot express drops
// every engine and rolls the generation, so rebuilt scopes serve fresh
// fingerprints.
func TestLiveResetPool(t *testing.T) {
	runs := testRuns(t)
	s := New(Config{Base: core.SliceSource(runs), Live: true})
	before := get(t, s, "/v1/analyses/funnel")
	if s.pool.len() != 1 {
		t.Fatalf("pool holds %d entries", s.pool.len())
	}
	n, err := s.ResetPool("file_modified")
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("reset dropped %d entries, want 1", n)
	}
	if s.pool.len() != 0 {
		t.Errorf("pool holds %d entries after reset", s.pool.len())
	}
	if s.Generation() != 1 {
		t.Errorf("generation = %d after reset, want 1", s.Generation())
	}
	after := get(t, s, "/v1/analyses/funnel")
	if after.Code != http.StatusOK {
		t.Fatalf("post-reset funnel = %d", after.Code)
	}
	if before.Header().Get("ETag") == after.Header().Get("ETag") {
		t.Error("ETag did not roll across the reset")
	}
}

// TestLiveConcurrentAppendReads is the race-correctness pin: readers
// hammer one scope while appends land, and every 200 must be
// internally consistent — one ETag never validates two different
// bodies (the ETag a response carries is never older, or newer, than
// the data it serves), and each reader's corpus counts never move
// backwards. Run under -race in CI.
func TestLiveConcurrentAppendReads(t *testing.T) {
	runs := testRuns(t)
	base := runs[:len(runs)-1]
	tmpl := *runs[len(runs)-1]
	s := New(Config{Base: core.SliceSource(base), Live: true})
	if err := s.Warm(); err != nil {
		t.Fatal(err)
	}

	const readers, appends = 4, 24
	type obsPair struct {
		etag string
		body string
		raw  int
	}
	results := make([][]obsPair, readers)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rec := get(t, s, "/v1/analyses/funnel")
				if rec.Code != http.StatusOK {
					t.Errorf("reader %d: status %d", i, rec.Code)
					return
				}
				results[i] = append(results[i], obsPair{
					etag: rec.Header().Get("ETag"),
					body: rec.Body.String(),
					raw:  funnelRaw(t, rec.Body.Bytes()),
				})
			}
		}(i)
	}
	for n := 0; n < appends; n++ {
		r := tmpl
		r.ID = fmt.Sprintf("race-append-%d", n)
		if _, err := s.AppendRuns(&r); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	byETag := map[string]string{}
	for i, seq := range results {
		prev := -1
		for _, p := range seq {
			if p.raw < prev {
				t.Fatalf("reader %d saw the corpus shrink: %d after %d", i, p.raw, prev)
			}
			prev = p.raw
			if body, seen := byETag[p.etag]; seen && body != p.body {
				t.Fatalf("one ETag validated two bodies (etag %s)", p.etag)
			} else if !seen {
				byETag[p.etag] = p.body
			}
		}
	}
	if s.Generation() != appends {
		t.Errorf("generation = %d, want %d", s.Generation(), appends)
	}
}
