package serve

import (
	"net/http"
	"sort"
)

// Approximate per-item memory costs behind PoolScopeView.ApproxBytes.
// These are deliberately rough, order-of-magnitude constants — a parsed
// run is a small struct plus a dozen short strings, a memoized analysis
// result a few KB of slices — documented so the estimate is at least
// interpretable: bytes ≈ runs·1KiB + memo entries·8KiB.
const (
	approxRunBytes  = 1 << 10
	approxMemoBytes = 8 << 10
)

// PoolScopeView is one resident scope engine as GET /v1/pool reports
// it. All fields are monotone counters or stable identities, so on a
// quiesced server repeated snapshots are byte-identical.
type PoolScopeView struct {
	// Filter is the canonical scope expression ("" = the whole corpus).
	Filter string `json:"filter"`
	// Fingerprint is the scope's corpus identity (empty while the entry
	// is still building, or when its build failed and the drop raced).
	Fingerprint string `json:"fingerprint,omitempty"`
	// Building marks an entry whose single-flight construction has not
	// finished yet.
	Building bool `json:"building,omitempty"`
	// AgeRequests is how many pool lookups (across all scopes) have
	// happened since this entry was inserted — request-counted age, not
	// wall-clock, so the snapshot stays deterministic.
	AgeRequests int64 `json:"age_requests"`
	// Hits counts requests that found this entry already resident.
	Hits int64 `json:"hits"`
	// RunsIngested is the ingested corpus size (0 until ingestion
	// happens — engines ingest lazily on the first analysis), counting
	// both the initial stream and runs appended since.
	RunsIngested int `json:"runs_ingested"`
	// Generation is the live-corpus generation this entry's fingerprint
	// reflects; RunsAppended counts the runs folded in through the
	// delta path after the initial build. Both stay zero on a static
	// server.
	Generation   uint64 `json:"generation,omitempty"`
	RunsAppended int64  `json:"runs_appended,omitempty"`
	// MemoEntries / MemoHits / MemoMisses describe the engine's analysis
	// memo cache.
	MemoEntries int   `json:"memo_entries"`
	MemoHits    int64 `json:"memo_hits"`
	MemoMisses  int64 `json:"memo_misses"`
	// ApproxBytes estimates resident memory (see the package constants).
	ApproxBytes int64 `json:"approx_bytes"`
}

// PoolSnapshot is the GET /v1/pool response body.
type PoolSnapshot struct {
	// Capacity is the LRU bound; len(Engines) never exceeds it.
	Capacity int `json:"capacity"`
	// Engines lists the resident scopes, sorted by canonical filter.
	Engines []PoolScopeView `json:"engines"`
}

// snapshot reads the resident entries without disturbing them: no LRU
// movement, no counter bumps — introspection must not perturb the state
// it reports, and /v1/pool must be byte-stable on a quiesced server.
func (p *enginePool) snapshot() PoolSnapshot {
	p.mu.Lock()
	ents := make([]*poolEntry, 0, p.lru.Len())
	for el := p.lru.Front(); el != nil; el = el.Next() {
		ents = append(ents, el.Value.(*poolEntry))
	}
	p.mu.Unlock()
	gets := p.gets.Load()

	views := make([]PoolScopeView, 0, len(ents))
	for _, ent := range ents {
		v := PoolScopeView{
			Filter:      ent.scope,
			AgeRequests: gets - ent.born,
			Hits:        ent.hits.Load(),
		}
		if !ent.built.Load() {
			v.Building = true
		} else {
			// The entry read lock keeps the fingerprint/generation pair
			// coherent against a concurrent absorb.
			ent.live.RLock()
			v.Fingerprint = ent.fingerprint
			v.Generation = ent.gen
			v.RunsAppended = ent.runsAppended
			ent.live.RUnlock()
			ms := ent.eng.MemoStats()
			v.MemoEntries = ms.Entries
			v.MemoHits = ms.Hits
			v.MemoMisses = ms.Misses
			v.RunsIngested = ent.eng.RunsIngested()
			v.ApproxBytes = int64(v.RunsIngested)*approxRunBytes + int64(v.MemoEntries)*approxMemoBytes
		}
		views = append(views, v)
	}
	sort.Slice(views, func(i, j int) bool { return views[i].Filter < views[j].Filter })
	return PoolSnapshot{Capacity: p.max, Engines: views}
}

// handlePool serves the pool introspection snapshot. Reading it never
// touches the pool's LRU order or counters, so polling dashboards do
// not distort the state they watch.
func (s *Server) handlePool(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Cache-Control", "no-store")
	writeJSON(w, http.StatusOK, s.pool.snapshot())
}
