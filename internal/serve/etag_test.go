package serve

import "testing"

func TestEtagForDistinguishesParts(t *testing.T) {
	a := etagFor("fp", "analysis", "fig3", "")
	if a[0] != '"' || a[len(a)-1] != '"' {
		t.Errorf("etag %q is not quoted", a)
	}
	for _, other := range [][]string{
		{"fp", "analysis", "fig4", ""},           // different name
		{"fp", "analysis", "fig3", "vendor=amd"}, // different scope
		{"fp2", "analysis", "fig3", ""},          // different corpus
		{"fp", "report", "fig3", ""},             // different endpoint
		{"fp", "analysis", "fig", "3"},           // boundary shift
	} {
		if etagFor(other...) == a {
			t.Errorf("etagFor(%v) collides with %v", other, []string{"fp", "analysis", "fig3", ""})
		}
	}
	if etagFor("fp", "analysis", "fig3", "") != a {
		t.Error("etagFor is not deterministic")
	}
}

func TestEtagMatches(t *testing.T) {
	const tag = `"abc123"`
	cases := []struct {
		header string
		want   bool
	}{
		{`"abc123"`, true},
		{`W/"abc123"`, true}, // If-None-Match mandates weak comparison
		// "*" asserts "any current representation"; the handlers check
		// preconditions before computing, so they cannot honor it — a
		// request that would 400/500 has no representation to match.
		{`*`, false},
		{`"zzz", "abc123"`, true},
		{` "zzz" , W/"abc123" `, true},
		{`"zzz"`, false},
		{`abc123`, false}, // unquoted ≠ quoted
		{``, false},
	}
	for _, c := range cases {
		if got := etagMatches(c.header, tag); got != c.want {
			t.Errorf("etagMatches(%q) = %v, want %v", c.header, got, c.want)
		}
	}
}
