package serve

import (
	"context"
	"fmt"
	"net/http"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/evlog"
)

// statusWriter records the status and body size a handler produced, for
// logging and the 304/5xx counters.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

// metricsKey carries the request's obs.RequestMetrics through the
// context so every layer — gate, pool, handler — fills in the stage it
// owns without threading an extra parameter through http.Handler.
type metricsKeyType struct{}

var metricsKey metricsKeyType

// requestMetrics returns the request's metrics record (never nil: a
// request that somehow bypassed withMetrics gets a discardable one, so
// handlers need no nil checks).
func requestMetrics(r *http.Request) *obs.RequestMetrics {
	if m, ok := r.Context().Value(metricsKey).(*obs.RequestMetrics); ok {
		return m
	}
	return &obs.RequestMetrics{}
}

// withGate bounds request concurrency: at most MaxInFlight requests run
// at once, later arrivals queue on the semaphore, and a queued client
// that gives up (context canceled, connection gone) gets 503 instead of
// holding a goroutine forever. Time spent waiting for a slot is the
// request's queue_wait stage.
func (s *Server) withGate(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		wait := time.Now()
		select {
		case s.gate <- struct{}{}:
		case <-r.Context().Done():
			s.counters.rejected.Add(1)
			httpError(w, http.StatusServiceUnavailable, "server busy")
			return
		}
		entered := time.Now()
		requestMetrics(r).QueueWaitNs = entered.Sub(wait).Nanoseconds()
		qsp := requestTracer(r).root().ChildAt("queue_wait", wait)
		qsp.FinishAt(entered)
		s.counters.inFlight.Add(1)
		defer func() {
			s.counters.inFlight.Add(-1)
			<-s.gate
		}()
		next.ServeHTTP(w, r)
	})
}

// withMetrics is the outermost layer: it plants the request's metrics
// record (and, when tracing is on, its tracer) in the context, and when
// the handler chain returns it stamps the final status and total
// duration, folds the record into the collector — the single point
// every response (200, 304, 4xx, 5xx, and gate 503s alike) is counted
// at — and publishes the completed trace. One Logf line per request
// when configured, now with the stage breakdown.
func (s *Server) withMetrics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		m := &obs.RequestMetrics{}
		r = r.WithContext(context.WithValue(r.Context(), metricsKey, m))
		r, t := s.withTrace(r, start)
		if t != nil {
			// The outbound header carries this trace's id with the local
			// root span as parent, so a caller's distributed trace links
			// up; set before the handler writes the status line.
			w.Header().Set("Traceparent", t.tr.Traceparent())
		}
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK // nothing written: net/http defaults to 200
		}
		dur := time.Since(start)
		m.Status = sw.status
		m.TotalNs = dur.Nanoseconds()
		s.metrics.ObserveRequest(m)
		s.finishTrace(t, r, sw.status, dur)
		if s.cfg.Logf != nil {
			s.cfg.Logf("%s %s %d %dB %s",
				r.Method, r.URL.RequestURI(), sw.status, sw.bytes,
				dur.Round(time.Microsecond))
		}
		s.requestEvent(r, t, m, sw, dur)
	})
}

// requestEvent emits the structured form of the request log line:
// every response carries its trace id, and status_class /
// etag_revalidated make error responses and 304 revalidations
// grep-distinguishable from attributable 200s — the one-line text
// format logs all of them with the same shape.
func (s *Server) requestEvent(r *http.Request, t *tracer, m *obs.RequestMetrics, sw *statusWriter, dur time.Duration) {
	if s.cfg.Events == nil {
		return
	}
	attrs := []evlog.Attr{
		evlog.String("method", r.Method),
		evlog.String("path", r.URL.RequestURI()),
		evlog.Int("status", sw.status),
		evlog.String("status_class", fmt.Sprintf("%dxx", sw.status/100)),
		evlog.Bool("etag_revalidated", sw.status == http.StatusNotModified),
		evlog.Int64("bytes", sw.bytes),
		evlog.Dur("dur", dur),
		evlog.String("trace_id", t.id()),
	}
	if m.Analysis != "" {
		attrs = append(attrs, evlog.String("analysis", m.Analysis))
	}
	if m.Params != "" {
		attrs = append(attrs, evlog.String("params", m.Params))
	}
	level := evlog.Info
	switch {
	case sw.status >= 500:
		level = evlog.Error
	case sw.status >= 400:
		level = evlog.Warn
	}
	s.cfg.Events.Log(level, "request", attrs...)
}
