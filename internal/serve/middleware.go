package serve

import (
	"net/http"
	"time"
)

// statusWriter records the status and body size a handler produced, for
// logging and the 304/5xx counters.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

// withGate bounds request concurrency: at most MaxInFlight requests run
// at once, later arrivals queue on the semaphore, and a queued client
// that gives up (context canceled, connection gone) gets 503 instead of
// holding a goroutine forever.
func (s *Server) withGate(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.gate <- struct{}{}:
		case <-r.Context().Done():
			s.counters.rejected.Add(1)
			httpError(w, http.StatusServiceUnavailable, "server busy")
			return
		}
		s.counters.inFlight.Add(1)
		defer func() {
			s.counters.inFlight.Add(-1)
			<-s.gate
		}()
		next.ServeHTTP(w, r)
	})
}

// withLogging counts every request and emits one Logf line per request
// (method, path, status, bytes, duration).
func (s *Server) withLogging(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		s.counters.requests.Add(1)
		switch {
		case sw.status == http.StatusNotModified:
			s.counters.notModified.Add(1)
		case sw.status >= 500:
			s.counters.errors.Add(1)
		}
		if s.cfg.Logf != nil {
			s.cfg.Logf("%s %s %d %dB %s",
				r.Method, r.URL.RequestURI(), sw.status, sw.bytes,
				time.Since(start).Round(time.Microsecond))
		}
	})
}
