package serve

import (
	"context"
	"net/http"
	"time"

	"repro/internal/obs"
)

// statusWriter records the status and body size a handler produced, for
// logging and the 304/5xx counters.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

// metricsKey carries the request's obs.RequestMetrics through the
// context so every layer — gate, pool, handler — fills in the stage it
// owns without threading an extra parameter through http.Handler.
type metricsKeyType struct{}

var metricsKey metricsKeyType

// requestMetrics returns the request's metrics record (never nil: a
// request that somehow bypassed withMetrics gets a discardable one, so
// handlers need no nil checks).
func requestMetrics(r *http.Request) *obs.RequestMetrics {
	if m, ok := r.Context().Value(metricsKey).(*obs.RequestMetrics); ok {
		return m
	}
	return &obs.RequestMetrics{}
}

// withGate bounds request concurrency: at most MaxInFlight requests run
// at once, later arrivals queue on the semaphore, and a queued client
// that gives up (context canceled, connection gone) gets 503 instead of
// holding a goroutine forever. Time spent waiting for a slot is the
// request's queue_wait stage.
func (s *Server) withGate(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		wait := time.Now()
		select {
		case s.gate <- struct{}{}:
		case <-r.Context().Done():
			s.counters.rejected.Add(1)
			httpError(w, http.StatusServiceUnavailable, "server busy")
			return
		}
		requestMetrics(r).QueueWaitNs = time.Since(wait).Nanoseconds()
		s.counters.inFlight.Add(1)
		defer func() {
			s.counters.inFlight.Add(-1)
			<-s.gate
		}()
		next.ServeHTTP(w, r)
	})
}

// withMetrics is the outermost layer: it plants the request's metrics
// record in the context, and when the handler chain returns it stamps
// the final status and total duration and folds the record into the
// collector — the single point every response (200, 304, 4xx, 5xx, and
// gate 503s alike) is counted at. One Logf line per request when
// configured, now with the stage breakdown.
func (s *Server) withMetrics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		m := &obs.RequestMetrics{}
		r = r.WithContext(context.WithValue(r.Context(), metricsKey, m))
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK // nothing written: net/http defaults to 200
		}
		m.Status = sw.status
		m.TotalNs = time.Since(start).Nanoseconds()
		s.metrics.ObserveRequest(m)
		if s.cfg.Logf != nil {
			s.cfg.Logf("%s %s %d %dB %s",
				r.Method, r.URL.RequestURI(), sw.status, sw.bytes,
				time.Since(start).Round(time.Microsecond))
		}
	})
}
