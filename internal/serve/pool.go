package serve

import (
	"container/list"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/obs"
)

// scope is one corpus slice a client can request: the canonical filter
// expression (the pool key; "" = the whole base corpus) and its
// compiled predicate.
type scope struct {
	expr string
	keep func(*model.Run) bool
}

// parseScope canonicalizes and compiles a ?filter= expression. The
// canonical form — lower-cased, space-trimmed clauses in sorted order —
// keys the engine pool, so semantically equal spellings share one
// engine. An expression with no clauses left after trimming (absent,
// empty-but-present ?filter=, whitespace, bare commas) canonicalizes to
// the zero scope, so every such spelling shares the single unfiltered
// pool entry rather than keying duplicates. Filter comparisons are
// case-insensitive throughout core.ParseFilter, which makes the
// lower-casing safe.
func parseScope(expr string) (scope, error) {
	var clauses []string
	for _, c := range strings.Split(strings.ToLower(expr), ",") {
		if c = strings.TrimSpace(c); c != "" {
			clauses = append(clauses, c)
		}
	}
	if len(clauses) == 0 {
		return scope{}, nil
	}
	sort.Strings(clauses)
	canonical := strings.Join(clauses, ",")
	keep, err := core.ParseFilter(canonical)
	if err != nil {
		return scope{}, err
	}
	return scope{expr: canonical, keep: keep}, nil
}

// poolEntry is one resident scope engine. The engine and its corpus
// fingerprint are built inside once, so concurrent requests for a cold
// scope block on the same construction instead of each building their
// own (and then, through the engine's own sync.Once memoization, share
// one ingestion and one computation per analysis).
type poolEntry struct {
	scope string
	once  sync.Once

	eng         *core.Engine
	fingerprint string
	err         error
}

// enginePool maps canonical scopes to engines, LRU-bounded. Every
// engine it builds carries the pool's core.Observer, so ingest and
// compute timings flow into the shared collector no matter which scope
// they happen on.
type enginePool struct {
	base    core.Source
	workers int
	max     int
	metrics *obs.Collector

	mu      sync.Mutex
	lru     *list.List // of *poolEntry; front = most recently served
	byScope map[string]*list.Element

	builds    atomic.Int64
	evictions atomic.Int64
}

func newEnginePool(base core.Source, workers, max int, metrics *obs.Collector) *enginePool {
	return &enginePool{
		base:    base,
		workers: workers,
		max:     max,
		metrics: metrics,
		lru:     list.New(),
		byScope: map[string]*list.Element{},
	}
}

// observer bridges engine lifecycle events into the collector.
func (p *enginePool) observer() core.Observer {
	return core.Observer{
		Ingest: func(d time.Duration, runs int, err error) {
			p.metrics.ObserveIngest(d.Nanoseconds())
		},
		Compute: func(name, params string, d time.Duration, err error) {
			p.metrics.ObserveCompute(name, d.Nanoseconds())
		},
	}
}

// get returns the entry for sc, building it on first use. Only the
// entry bookkeeping happens under the pool lock; the build itself runs
// in the entry's once, so a slow ingestion never blocks requests for
// other scopes.
func (p *enginePool) get(sc scope) (*poolEntry, error) {
	ent := p.entry(sc.expr)
	ent.once.Do(func() {
		start := time.Now()
		src := p.source(sc)
		fp, err := core.SourceFingerprint(src)
		if err != nil {
			// Never cache a failed build: drop the entry so a transient
			// problem (corpus dir mid-sync, say) is retried, not pinned.
			ent.err = err
			p.drop(ent)
			return
		}
		p.builds.Add(1)
		ent.fingerprint = fp
		ent.eng = core.New(core.WithSource(src), core.WithWorkers(p.workers),
			core.WithObserver(p.observer()))
		// The build stage covers fingerprinting plus construction;
		// ingestion stays lazy and is timed by the engine itself.
		p.metrics.ObserveBuild(time.Since(start).Nanoseconds())
	})
	if ent.err != nil {
		return nil, ent.err
	}
	return ent, nil
}

// source builds the corpus source for one scope: the base source,
// sliced by the scope predicate when there is one.
func (p *enginePool) source(sc scope) core.Source {
	if sc.keep == nil {
		return p.base
	}
	return core.FilterSource{Inner: p.base, Keep: sc.keep, Desc: sc.expr}
}

// entry looks the scope up, inserting (and evicting beyond the LRU
// bound) when missing. Served scopes move to the LRU front.
func (p *enginePool) entry(key string) *poolEntry {
	p.mu.Lock()
	defer p.mu.Unlock()
	if el, ok := p.byScope[key]; ok {
		p.lru.MoveToFront(el)
		return el.Value.(*poolEntry)
	}
	ent := &poolEntry{scope: key}
	p.byScope[key] = p.lru.PushFront(ent)
	for p.lru.Len() > p.max {
		back := p.lru.Back()
		p.lru.Remove(back)
		delete(p.byScope, back.Value.(*poolEntry).scope)
		p.evictions.Add(1)
	}
	return ent
}

// drop removes ent unless the scope has already been re-inserted by a
// later request (then the newer entry stays).
func (p *enginePool) drop(ent *poolEntry) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if el, ok := p.byScope[ent.scope]; ok && el.Value.(*poolEntry) == ent {
		p.lru.Remove(el)
		delete(p.byScope, ent.scope)
	}
}

// len reports the resident engine count.
func (p *enginePool) len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lru.Len()
}
