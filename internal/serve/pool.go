package serve

import (
	"container/list"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/obs/evlog"
)

// scope is one corpus slice a client can request: the canonical filter
// expression (the pool key; "" = the whole base corpus) and its
// compiled predicate.
type scope struct {
	expr string
	keep func(*model.Run) bool
}

// parseScope canonicalizes and compiles a ?filter= expression. The
// canonical form — lower-cased, space-trimmed clauses in sorted order —
// keys the engine pool, so semantically equal spellings share one
// engine. An expression with no clauses left after trimming (absent,
// empty-but-present ?filter=, whitespace, bare commas) canonicalizes to
// the zero scope, so every such spelling shares the single unfiltered
// pool entry rather than keying duplicates. Filter comparisons are
// case-insensitive throughout core.ParseFilter, which makes the
// lower-casing safe.
func parseScope(expr string) (scope, error) {
	var clauses []string
	for _, c := range strings.Split(strings.ToLower(expr), ",") {
		if c = strings.TrimSpace(c); c != "" {
			clauses = append(clauses, c)
		}
	}
	if len(clauses) == 0 {
		return scope{}, nil
	}
	sort.Strings(clauses)
	canonical := strings.Join(clauses, ",")
	keep, err := core.ParseFilter(canonical)
	if err != nil {
		return scope{}, err
	}
	return scope{expr: canonical, keep: keep}, nil
}

// poolEntry is one resident scope engine. The engine and its corpus
// fingerprint are built inside once, so concurrent requests for a cold
// scope block on the same construction instead of each building their
// own (and then, through the engine's own sync.Once memoization, share
// one ingestion and one computation per analysis).
type poolEntry struct {
	scope string
	keep  func(*model.Run) bool // scope predicate (nil = whole corpus)
	once  sync.Once

	eng *core.Engine
	src core.Source // the scope's source, for fingerprint refresh on append
	err error

	// live orders appends against serving on a live pool: a handler
	// holds the read side from reading the fingerprint until its
	// response bytes (and audit record) exist, so the ETag it hands out
	// always matches the engine state it computed from; absorb holds
	// the write side while folding runs in and refreshing the
	// fingerprint. The guarded fields below are immutable on a static
	// pool — the lock is then uncontended and the fast path unchanged.
	live         sync.RWMutex
	fingerprint  string
	gen          uint64 // live-source generation the fingerprint reflects
	runsAppended int64  // runs folded in after the initial build

	// born is the pool's get counter at insertion; age-in-requests is
	// the counter's distance from it.
	born int64
	// hits counts requests that found this entry already resident.
	hits atomic.Int64
	// arrivals counts requests that reached the entry before its build
	// finished — the single-flight cohort. The build winner reports
	// joins = arrivals-1 (everyone but itself); built stops the count.
	arrivals atomic.Int64
	built    atomic.Bool
}

// enginePool maps canonical scopes to engines, LRU-bounded. Every
// engine it builds carries the pool's core.Observer, so ingest and
// compute timings flow into the shared collector no matter which scope
// they happen on.
type enginePool struct {
	base    core.Source
	workers int
	max     int
	metrics *obs.Collector
	events  *evlog.Logger // nil = no event log

	// live is the append-aware base source when live ingestion is on
	// (it wraps base), nil on a static pool. appendMu serializes the
	// append plane — absorbs, resets, and the build-time fingerprint
	// fallback — so generations advance one at a time.
	live     *core.AppendSource
	appendMu sync.Mutex

	mu      sync.Mutex
	lru     *list.List // of *poolEntry; front = most recently served
	byScope map[string]*list.Element

	builds    atomic.Int64
	evictions atomic.Int64 // LRU evictions only, the /v1/stats semantics

	appends      atomic.Int64 // absorbed appends (POST bodies + watcher deltas)
	appendedRuns atomic.Int64 // runs those appends carried

	// state-plane counters for the exposition
	gets              atomic.Int64 // every pool.get, the age-in-requests clock
	hits              atomic.Int64 // gets that found the scope resident
	misses            atomic.Int64 // gets that inserted a fresh entry
	joins             atomic.Int64 // single-flight waiters across all builds
	evictBuildFailed  atomic.Int64 // entries dropped because the build errored
	evictIngestFailed atomic.Int64 // entries dropped after IngestionFailed
}

func newEnginePool(base core.Source, live *core.AppendSource, workers, max int, metrics *obs.Collector, events *evlog.Logger) *enginePool {
	return &enginePool{
		base:    base,
		live:    live,
		workers: workers,
		max:     max,
		metrics: metrics,
		events:  events,
		lru:     list.New(),
		byScope: map[string]*list.Element{},
	}
}

// observer bridges engine lifecycle events into the collector.
func (p *enginePool) observer() core.Observer {
	return core.Observer{
		Ingest: func(d time.Duration, runs int, err error) {
			p.metrics.ObserveIngest(d.Nanoseconds())
		},
		Compute: func(name, params string, d time.Duration, err error) {
			p.metrics.ObserveCompute(name, d.Nanoseconds())
		},
		Hit: p.metrics.ObserveMemoHit,
	}
}

// get returns the entry for sc, building it on first use. Only the
// entry bookkeeping happens under the pool lock; the build itself runs
// in the entry's once, so a slow ingestion never blocks requests for
// other scopes. traceID labels the build events with the request that
// triggered them ("" with tracing off).
func (p *enginePool) get(sc scope, traceID string) (*poolEntry, error) {
	p.gets.Add(1)
	ent, fresh := p.entry(sc.expr)
	if fresh {
		p.misses.Add(1)
	} else {
		p.hits.Add(1)
		ent.hits.Add(1)
	}
	if !ent.built.Load() {
		ent.arrivals.Add(1)
	}
	ent.once.Do(func() {
		p.events.Debug("pool_build_start",
			evlog.String("scope", ent.scope),
			evlog.String("trace_id", traceID))
		start := time.Now()
		src := p.source(sc)
		fp, gen, err := p.stableFingerprint(src)
		if err != nil {
			// Never cache a failed build: drop the entry so a transient
			// problem (corpus dir mid-sync, say) is retried, not pinned.
			ent.err = err
			p.dropReason(ent, "build_failed", traceID)
			return
		}
		p.builds.Add(1)
		ent.fingerprint = fp
		ent.gen = gen
		ent.src = src
		ent.keep = sc.keep
		ent.eng = core.New(core.WithSource(src), core.WithWorkers(p.workers),
			core.WithObserver(p.observer()))
		// The build stage covers fingerprinting plus construction;
		// ingestion stays lazy and is timed by the engine itself.
		dur := time.Since(start)
		p.metrics.ObserveBuild(dur.Nanoseconds())
		// Count the single-flight cohort before opening the fast path:
		// requests arriving after built is set never bump arrivals, so
		// the joins tally is exactly who waited on this build.
		joins := ent.arrivals.Load() - 1
		if joins < 0 {
			joins = 0 // defensive: the winner itself always arrived
		}
		p.joins.Add(joins)
		ent.built.Store(true)
		p.events.Info("pool_build",
			evlog.String("scope", ent.scope),
			evlog.String("fingerprint", fp),
			evlog.Int64("joins", joins),
			evlog.Dur("dur", dur),
			evlog.String("trace_id", traceID))
	})
	if ent.err != nil {
		return nil, ent.err
	}
	return ent, nil
}

// source builds the corpus source for one scope: the base source,
// sliced by the scope predicate when there is one.
func (p *enginePool) source(sc scope) core.Source {
	if sc.keep == nil {
		return p.base
	}
	return core.FilterSource{Inner: p.base, Keep: sc.keep, Desc: sc.expr}
}

// stableFingerprint fingerprints a scope source at a known generation.
// On a static pool that is just SourceFingerprint. On a live pool an
// append can land mid-walk, yielding a fingerprint that matches neither
// the old nor the new corpus — so the generation is read on both sides
// and the walk retried on a mismatch; after two dirty reads the final
// attempt runs under appendMu, with the append plane quiesced.
func (p *enginePool) stableFingerprint(src core.Source) (string, uint64, error) {
	if p.live == nil {
		fp, err := core.SourceFingerprint(src)
		return fp, 0, err
	}
	for attempt := 0; attempt < 2; attempt++ {
		gen := p.live.Generation()
		fp, err := core.SourceFingerprint(src)
		if err != nil {
			return "", 0, err
		}
		if p.live.Generation() == gen {
			return fp, gen, nil
		}
	}
	p.appendMu.Lock()
	defer p.appendMu.Unlock()
	fp, err := core.SourceFingerprint(src)
	return fp, p.live.Generation(), err
}

// entries snapshots the resident entries without disturbing LRU order.
func (p *enginePool) entries() []*poolEntry {
	p.mu.Lock()
	defer p.mu.Unlock()
	ents := make([]*poolEntry, 0, p.lru.Len())
	for el := p.lru.Front(); el != nil; el = el.Next() {
		ents = append(ents, el.Value.(*poolEntry))
	}
	return ents
}

// absorb folds freshly arrived runs into the live corpus: it advances
// the append source — Append for runs that exist nowhere else (the
// POST /v1/runs path), Bump for runs whose files the base source
// already sees (the watcher path, where appending them again would
// deliver them twice to engines that ingest later) — then walks every
// resident entry, feeding matching runs through its engine's delta path
// and refreshing its fingerprint. Returns the new generation.
func (p *enginePool) absorb(runs []*model.Run, viaOverlay bool, traceID string) uint64 {
	p.appendMu.Lock()
	defer p.appendMu.Unlock()
	var gen uint64
	if viaOverlay {
		gen = p.live.Append(runs...)
	} else {
		gen = p.live.Bump()
	}
	p.appends.Add(1)
	p.appendedRuns.Add(int64(len(runs)))
	for _, ent := range p.entries() {
		p.absorbEntry(ent, runs, gen, traceID)
	}
	p.events.Info("pool_append",
		evlog.Int("runs", len(runs)),
		evlog.Int64("generation", int64(gen)),
		evlog.Bool("overlay", viaOverlay),
		evlog.String("trace_id", traceID))
	return gen
}

// absorbEntry folds one absorbed append into one resident entry, under
// its write lock so no in-flight request sees the fingerprint move
// between its ETag and its body. Entries still building are skipped —
// their build fingerprints the post-append source (stableFingerprint
// rules out the torn read) and their engine ingests it whole. Likewise
// an already-current entry (built after the bump), and an engine that
// has not ingested yet: its eventual ingestion streams the post-append
// source, so feeding it the runs now would deliver them twice.
func (p *enginePool) absorbEntry(ent *poolEntry, runs []*model.Run, gen uint64, traceID string) {
	if !ent.built.Load() {
		return
	}
	ent.live.Lock()
	defer ent.live.Unlock()
	if ent.gen >= gen {
		return
	}
	var st core.AppendStats
	if ent.eng.Ingested() {
		matching := runs
		if ent.keep != nil {
			matching = nil
			for _, r := range runs {
				if ent.keep(r) {
					matching = append(matching, r)
				}
			}
		}
		var err error
		if st, err = ent.eng.Append(matching); err != nil {
			// A failed delta leaves the engine's dataset behind its
			// source: drop the entry so the next request rebuilds from
			// the full post-append corpus.
			p.dropReason(ent, "append_failed", traceID)
			return
		}
	}
	fp, err := core.SourceFingerprint(ent.src)
	if err != nil {
		p.dropReason(ent, "append_failed", traceID)
		return
	}
	ent.fingerprint = fp
	ent.gen = gen
	ent.runsAppended += int64(st.Appended)
	p.events.Debug("pool_append_scope",
		evlog.String("scope", ent.scope),
		evlog.Int("appended", st.Appended),
		evlog.Int("invalidated", st.Invalidated),
		evlog.Int("retained", st.Retained),
		evlog.Int64("generation", int64(gen)),
		evlog.String("trace_id", traceID))
}

// reset drops every resident entry and advances the generation: the
// base corpus changed in a way the delta path cannot express (a file
// modified or removed under the watcher), so every engine and every
// outstanding ETag is stale. In-flight requests finish against the
// engines they already hold — their ETags match the bytes they serve,
// and the next revalidation misses.
func (p *enginePool) reset(reason string) int {
	p.appendMu.Lock()
	defer p.appendMu.Unlock()
	if p.live != nil {
		p.live.Bump()
	}
	p.mu.Lock()
	dropped := make([]string, 0, p.lru.Len())
	for el := p.lru.Front(); el != nil; el = el.Next() {
		dropped = append(dropped, el.Value.(*poolEntry).scope)
	}
	p.lru.Init()
	p.byScope = map[string]*list.Element{}
	p.mu.Unlock()
	for _, sc := range dropped {
		p.events.Info("pool_evict",
			evlog.String("scope", sc),
			evlog.String("reason", reason))
	}
	return len(dropped)
}

// entry looks the scope up, inserting (and evicting beyond the LRU
// bound) when missing. Served scopes move to the LRU front. The bool
// reports whether the entry was freshly inserted (a pool miss).
func (p *enginePool) entry(key string) (*poolEntry, bool) {
	p.mu.Lock()
	if el, ok := p.byScope[key]; ok {
		p.lru.MoveToFront(el)
		p.mu.Unlock()
		return el.Value.(*poolEntry), false
	}
	ent := &poolEntry{scope: key, born: p.gets.Load()}
	p.byScope[key] = p.lru.PushFront(ent)
	var evicted []string
	for p.lru.Len() > p.max {
		back := p.lru.Back()
		p.lru.Remove(back)
		delete(p.byScope, back.Value.(*poolEntry).scope)
		p.evictions.Add(1)
		evicted = append(evicted, back.Value.(*poolEntry).scope)
	}
	p.mu.Unlock()
	for _, sc := range evicted {
		p.events.Info("pool_evict",
			evlog.String("scope", sc),
			evlog.String("reason", "lru"))
	}
	return ent, true
}

// dropReason removes ent — unless the scope has already been
// re-inserted by a later request (then the newer entry stays) — and
// attributes the removal: "build_failed" for a construction error,
// "ingestion_failed" for a corpus that broke after construction. LRU
// removals never come through here; entry() owns those.
func (p *enginePool) dropReason(ent *poolEntry, reason, traceID string) {
	p.mu.Lock()
	removed := false
	if el, ok := p.byScope[ent.scope]; ok && el.Value.(*poolEntry) == ent {
		p.lru.Remove(el)
		delete(p.byScope, ent.scope)
		removed = true
	}
	p.mu.Unlock()
	if !removed {
		return
	}
	switch reason {
	case "build_failed":
		p.evictBuildFailed.Add(1)
	case "ingestion_failed":
		p.evictIngestFailed.Add(1)
	}
	p.events.Warn("pool_evict",
		evlog.String("scope", ent.scope),
		evlog.String("reason", reason),
		evlog.String("trace_id", traceID))
}

// len reports the resident engine count.
func (p *enginePool) len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lru.Len()
}
