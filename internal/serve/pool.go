package serve

import (
	"container/list"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/obs/evlog"
)

// scope is one corpus slice a client can request: the canonical filter
// expression (the pool key; "" = the whole base corpus) and its
// compiled predicate.
type scope struct {
	expr string
	keep func(*model.Run) bool
}

// parseScope canonicalizes and compiles a ?filter= expression. The
// canonical form — lower-cased, space-trimmed clauses in sorted order —
// keys the engine pool, so semantically equal spellings share one
// engine. An expression with no clauses left after trimming (absent,
// empty-but-present ?filter=, whitespace, bare commas) canonicalizes to
// the zero scope, so every such spelling shares the single unfiltered
// pool entry rather than keying duplicates. Filter comparisons are
// case-insensitive throughout core.ParseFilter, which makes the
// lower-casing safe.
func parseScope(expr string) (scope, error) {
	var clauses []string
	for _, c := range strings.Split(strings.ToLower(expr), ",") {
		if c = strings.TrimSpace(c); c != "" {
			clauses = append(clauses, c)
		}
	}
	if len(clauses) == 0 {
		return scope{}, nil
	}
	sort.Strings(clauses)
	canonical := strings.Join(clauses, ",")
	keep, err := core.ParseFilter(canonical)
	if err != nil {
		return scope{}, err
	}
	return scope{expr: canonical, keep: keep}, nil
}

// poolEntry is one resident scope engine. The engine and its corpus
// fingerprint are built inside once, so concurrent requests for a cold
// scope block on the same construction instead of each building their
// own (and then, through the engine's own sync.Once memoization, share
// one ingestion and one computation per analysis).
type poolEntry struct {
	scope string
	once  sync.Once

	eng         *core.Engine
	fingerprint string
	err         error

	// born is the pool's get counter at insertion; age-in-requests is
	// the counter's distance from it.
	born int64
	// hits counts requests that found this entry already resident.
	hits atomic.Int64
	// arrivals counts requests that reached the entry before its build
	// finished — the single-flight cohort. The build winner reports
	// joins = arrivals-1 (everyone but itself); built stops the count.
	arrivals atomic.Int64
	built    atomic.Bool
}

// enginePool maps canonical scopes to engines, LRU-bounded. Every
// engine it builds carries the pool's core.Observer, so ingest and
// compute timings flow into the shared collector no matter which scope
// they happen on.
type enginePool struct {
	base    core.Source
	workers int
	max     int
	metrics *obs.Collector
	events  *evlog.Logger // nil = no event log

	mu      sync.Mutex
	lru     *list.List // of *poolEntry; front = most recently served
	byScope map[string]*list.Element

	builds    atomic.Int64
	evictions atomic.Int64 // LRU evictions only, the /v1/stats semantics

	// state-plane counters for the exposition
	gets              atomic.Int64 // every pool.get, the age-in-requests clock
	hits              atomic.Int64 // gets that found the scope resident
	misses            atomic.Int64 // gets that inserted a fresh entry
	joins             atomic.Int64 // single-flight waiters across all builds
	evictBuildFailed  atomic.Int64 // entries dropped because the build errored
	evictIngestFailed atomic.Int64 // entries dropped after IngestionFailed
}

func newEnginePool(base core.Source, workers, max int, metrics *obs.Collector, events *evlog.Logger) *enginePool {
	return &enginePool{
		base:    base,
		workers: workers,
		max:     max,
		metrics: metrics,
		events:  events,
		lru:     list.New(),
		byScope: map[string]*list.Element{},
	}
}

// observer bridges engine lifecycle events into the collector.
func (p *enginePool) observer() core.Observer {
	return core.Observer{
		Ingest: func(d time.Duration, runs int, err error) {
			p.metrics.ObserveIngest(d.Nanoseconds())
		},
		Compute: func(name, params string, d time.Duration, err error) {
			p.metrics.ObserveCompute(name, d.Nanoseconds())
		},
		Hit: p.metrics.ObserveMemoHit,
	}
}

// get returns the entry for sc, building it on first use. Only the
// entry bookkeeping happens under the pool lock; the build itself runs
// in the entry's once, so a slow ingestion never blocks requests for
// other scopes. traceID labels the build events with the request that
// triggered them ("" with tracing off).
func (p *enginePool) get(sc scope, traceID string) (*poolEntry, error) {
	p.gets.Add(1)
	ent, fresh := p.entry(sc.expr)
	if fresh {
		p.misses.Add(1)
	} else {
		p.hits.Add(1)
		ent.hits.Add(1)
	}
	if !ent.built.Load() {
		ent.arrivals.Add(1)
	}
	ent.once.Do(func() {
		p.events.Debug("pool_build_start",
			evlog.String("scope", ent.scope),
			evlog.String("trace_id", traceID))
		start := time.Now()
		src := p.source(sc)
		fp, err := core.SourceFingerprint(src)
		if err != nil {
			// Never cache a failed build: drop the entry so a transient
			// problem (corpus dir mid-sync, say) is retried, not pinned.
			ent.err = err
			p.dropReason(ent, "build_failed", traceID)
			return
		}
		p.builds.Add(1)
		ent.fingerprint = fp
		ent.eng = core.New(core.WithSource(src), core.WithWorkers(p.workers),
			core.WithObserver(p.observer()))
		// The build stage covers fingerprinting plus construction;
		// ingestion stays lazy and is timed by the engine itself.
		dur := time.Since(start)
		p.metrics.ObserveBuild(dur.Nanoseconds())
		// Count the single-flight cohort before opening the fast path:
		// requests arriving after built is set never bump arrivals, so
		// the joins tally is exactly who waited on this build.
		joins := ent.arrivals.Load() - 1
		if joins < 0 {
			joins = 0 // defensive: the winner itself always arrived
		}
		p.joins.Add(joins)
		ent.built.Store(true)
		p.events.Info("pool_build",
			evlog.String("scope", ent.scope),
			evlog.String("fingerprint", fp),
			evlog.Int64("joins", joins),
			evlog.Dur("dur", dur),
			evlog.String("trace_id", traceID))
	})
	if ent.err != nil {
		return nil, ent.err
	}
	return ent, nil
}

// source builds the corpus source for one scope: the base source,
// sliced by the scope predicate when there is one.
func (p *enginePool) source(sc scope) core.Source {
	if sc.keep == nil {
		return p.base
	}
	return core.FilterSource{Inner: p.base, Keep: sc.keep, Desc: sc.expr}
}

// entry looks the scope up, inserting (and evicting beyond the LRU
// bound) when missing. Served scopes move to the LRU front. The bool
// reports whether the entry was freshly inserted (a pool miss).
func (p *enginePool) entry(key string) (*poolEntry, bool) {
	p.mu.Lock()
	if el, ok := p.byScope[key]; ok {
		p.lru.MoveToFront(el)
		p.mu.Unlock()
		return el.Value.(*poolEntry), false
	}
	ent := &poolEntry{scope: key, born: p.gets.Load()}
	p.byScope[key] = p.lru.PushFront(ent)
	var evicted []string
	for p.lru.Len() > p.max {
		back := p.lru.Back()
		p.lru.Remove(back)
		delete(p.byScope, back.Value.(*poolEntry).scope)
		p.evictions.Add(1)
		evicted = append(evicted, back.Value.(*poolEntry).scope)
	}
	p.mu.Unlock()
	for _, sc := range evicted {
		p.events.Info("pool_evict",
			evlog.String("scope", sc),
			evlog.String("reason", "lru"))
	}
	return ent, true
}

// dropReason removes ent — unless the scope has already been
// re-inserted by a later request (then the newer entry stays) — and
// attributes the removal: "build_failed" for a construction error,
// "ingestion_failed" for a corpus that broke after construction. LRU
// removals never come through here; entry() owns those.
func (p *enginePool) dropReason(ent *poolEntry, reason, traceID string) {
	p.mu.Lock()
	removed := false
	if el, ok := p.byScope[ent.scope]; ok && el.Value.(*poolEntry) == ent {
		p.lru.Remove(el)
		delete(p.byScope, ent.scope)
		removed = true
	}
	p.mu.Unlock()
	if !removed {
		return
	}
	switch reason {
	case "build_failed":
		p.evictBuildFailed.Add(1)
	case "ingestion_failed":
		p.evictIngestFailed.Add(1)
	}
	p.events.Warn("pool_evict",
		evlog.String("scope", ent.scope),
		evlog.String("reason", reason),
		evlog.String("trace_id", traceID))
}

// len reports the resident engine count.
func (p *enginePool) len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lru.Len()
}
