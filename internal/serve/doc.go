// Package serve exposes the analysis registry as a long-running HTTP
// service — the network-facing surface over the streaming core.Engine.
//
// # Endpoints
//
//	GET /healthz                   liveness probe
//	GET /metrics                   Prometheus text exposition (counters + latency histograms)
//	GET /v1/analyses               the registry listing: {name, description, params}
//	GET /v1/analyses/{name}        one analysis result as {name, description, filter, params, value}
//	GET /v1/report                 the full text report
//	GET /v1/stats                  serving metrics (JSON; stage and per-analysis latency breakdowns)
//	GET /v1/pool                   engine-pool introspection (resident scopes, cache counters)
//	GET /v1/traces                 recent request traces (?n= count, ?min_ms= slow filter)
//	GET /debug/pprof/              runtime profiles (Config.Pprof, loopback clients only)
//
// The analysis and report endpoints accept ?filter=EXPR, a
// core.ParseFilter corpus-slice expression ("vendor=AMD,since=2021"),
// selecting the scope the analysis runs over.
//
// # Typed parameters
//
// Every other query key is a typed parameter of the requested analysis,
// validated against the schema its registration declares
// (analysis.Registration.Params) — /v1/analyses/clusters?k=5&seed=3
// asks the clustering subsystem for a five-way partition under seed 3.
// An unknown key, an unparsable or out-of-range value, or a combination
// the analysis rejects (algo=hac without k or cut) is answered 400 with
// the declared schema echoed in the body, before any engine is built or
// corpus ingested. Resolved parameters canonicalize to their sorted
// non-default assignments; the canonical string keys the engine's memo
// (k=3 and k=5 are independent cached scenarios on one scope engine)
// and joins the ETag (each parameterization revalidates independently,
// and spelling a default out shares the default's validator).
//
// # The scope-keyed engine pool
//
// Every distinct scope maps to one lazily built core.Engine wrapped in
// FilterSource over the server's base source. Scopes are canonicalized
// (lower-cased, clause-sorted) before keying, so "since=2021,vendor=AMD"
// and "vendor=amd, since=2021" share an engine. Construction is
// single-flight: the pool entry is inserted under the pool lock but
// built inside the entry's sync.Once, so N concurrent requests for the
// same cold scope perform exactly one build — and because the engine
// memoizes its dataset and analyses behind sync.Once too, they share
// one corpus ingestion and one computation per analysis instead of
// stampeding the parser. The pool is LRU-bounded: beyond PoolSize
// resident engines the least recently served scope is evicted (a
// request already holding the evicted engine finishes unharmed; the
// next request for that scope rebuilds). Failures are never pinned:
// a scope whose fingerprint or ingestion errors is dropped from the
// pool, so a transient corpus problem is retried by the next request
// instead of replaying a memoized error forever.
//
// # ETags
//
// Responses carry strong ETags derived from (corpus fingerprint,
// endpoint, analysis name, canonical filter, canonical params). The fingerprint comes
// from core.SourceFingerprint — for directory corpora a digest of every
// file's path, size, and mtime; for synthetic corpora the generator
// options — so the validator changes exactly when the served bytes
// could. A repeat request carrying If-None-Match is answered 304 Not
// Modified with zero recomputation and an empty body. Responses are
// marked Cache-Control: no-cache, which tells well-behaved clients to
// revalidate (cheap: a 304) rather than serve possibly-stale copies
// blindly.
//
// # Observability
//
// Every request carries an obs.RequestMetrics through its context: the
// gate records queue wait, the handlers record engine acquisition,
// compute, and serialize spans, and the outermost middleware folds the
// finished request into the server's obs.Collector (and emits the
// Config.Logf line). Engine-side events — corpus ingestion, memo-miss
// computations — are timed by the engines themselves via core.Observer
// and flow into the same collector, once per actual event rather than
// once per request, so single-flight sharing cannot inflate them. The
// aggregates surface twice from one source: /v1/stats as JSON (stage
// and per-analysis percentile summaries) and /metrics as Prometheus
// text exposition (cumulative histograms and counters, plus a
// specserve_runtime_* section sampled at scrape time).
//
// # Event log and pool introspection
//
// Config.Events (an obs/evlog.Logger) adds a structured event stream
// alongside — or instead of — the Config.Logf line, which keeps its
// historical one-line format byte-for-byte. Every request emits one
// "request" event carrying method, path, status, status_class,
// etag_revalidated, bytes, duration, and trace_id; the state plane
// emits its own lifecycle: pool_build (with the single-flight join
// count — how many requests waited on that one build), pool_evict with
// a reason (lru, build_failed, ingestion_failed), and audit_flush.
// The same instrumentation feeds counter families in /metrics
// (specserve_pool_*, specserve_memo_*, specserve_parse_cache_*,
// specserve_audit_queue_*) and GET /v1/pool, a deterministic snapshot
// of the resident scope engines: canonical filter, corpus fingerprint,
// age in requests, hit counts, memo occupancy, and approximate bytes,
// sorted by filter and byte-identical across reads on a quiesced
// server — the snapshot never touches the LRU order or any counter it
// reports. cmd/spectop renders all three surfaces as a live dashboard.
//
// # Tracing
//
// Histograms aggregate; traces explain. Unless Config.TraceBufferSize
// is negative, each request also carries an obs/trace tracer: the
// middleware opens a root span (adopting an inbound W3C Traceparent
// header and echoing the outbound one), the gate and handlers hang
// stage child spans off it, and engine-side events arrive through
// core.TraceHooks — fired only on the request that actually paid for
// the ingestion or computation, so warm traces have no compute span.
// Kernel-depth spans (per k-means iteration, per HAC merge batch) come
// from count-only observer callbacks injected per request; the tracer
// timestamps them on receipt, keeping registered analyses clock-free
// under specvet's determinism gate. Completed traces are published to
// a bounded lock-free ring served by /v1/traces, Config.SlowTrace logs
// one line per slower-than-threshold request with its trace id, and
// the id also rides the audit record for the same response.
//
// # Audit
//
// With Config.Audit set, every attributable 200 — an analysis or report
// response, whose bytes derive from a corpus state — appends one record
// to an obs.AuditLog: timestamp, scope fingerprint, analysis name,
// canonical params, and a digest of the exact served bytes, each record
// hash-chained to its predecessor. Listings, health, stats, errors, and
// 304s are never audited. The append is a channel send; a batching
// writer goroutine does the file I/O off the request path. The caller
// owns the log's lifecycle and closes it after the server drains.
//
// # Operational behavior
//
// Requests pass a bounded-concurrency gate (Config.MaxInFlight; waiters
// respect request-context cancellation and get 503 when the client
// gives up). cmd/specserve wires the package to the shared corpus
// flags, the -audit flag, and graceful shutdown on SIGINT/SIGTERM;
// cmd/specaudit verifies the chains specserve writes.
package serve
