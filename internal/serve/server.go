package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/synth"
)

// Defaults for the pool and concurrency bounds (Config zero values).
const (
	DefaultPoolSize    = 32
	DefaultMaxInFlight = 64
)

// Config configures a Server.
type Config struct {
	// Base is the unfiltered corpus source every requested scope slices
	// from (nil = the default synthetic corpus, via core.New).
	Base core.Source
	// Workers bounds each engine's parallelism (0 = GOMAXPROCS).
	Workers int
	// PoolSize bounds the resident scope engines; the least recently
	// served scope past the bound is evicted (<=0 = DefaultPoolSize).
	PoolSize int
	// MaxInFlight bounds concurrently served requests (<=0 =
	// DefaultMaxInFlight).
	MaxInFlight int
	// Logf, when non-nil, receives one line per request.
	Logf func(format string, args ...any)
}

// Server serves the analysis registry over HTTP. It is an http.Handler;
// wire it into an http.Server (see cmd/specserve) or hit it directly in
// tests via httptest.
type Server struct {
	cfg      Config
	pool     *enginePool
	gate     chan struct{}
	handler  http.Handler
	started  time.Time
	counters counters
}

// New builds a Server over cfg.
func New(cfg Config) *Server {
	if cfg.Base == nil {
		cfg.Base = core.SynthSource{Options: synth.DefaultOptions()}
	}
	if cfg.PoolSize <= 0 {
		cfg.PoolSize = DefaultPoolSize
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = DefaultMaxInFlight
	}
	s := &Server{
		cfg:     cfg,
		pool:    newEnginePool(cfg.Base, cfg.Workers, cfg.PoolSize),
		gate:    make(chan struct{}, cfg.MaxInFlight),
		started: time.Now(),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/analyses", s.handleList)
	mux.HandleFunc("GET /v1/analyses/{name}", s.handleAnalysis)
	mux.HandleFunc("GET /v1/report", s.handleReport)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.handler = s.withLogging(s.withGate(mux))
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.handler.ServeHTTP(w, r)
}

// Warm pre-builds the whole-corpus engine and ingests its dataset, so
// the first unfiltered request after startup is served from memory
// instead of paying for ingestion.
func (s *Server) Warm() error {
	ent, err := s.pool.get(scope{})
	if err != nil {
		return err
	}
	_, err = ent.eng.Dataset()
	return err
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func httpError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorBody{Error: msg})
}

// writeJSON writes v indented, with the content type set. The encode
// happens into a buffer first so a marshal failure can still become a
// clean 500 instead of a truncated 200.
func writeJSON(w http.ResponseWriter, status int, v any) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		httpError(w, http.StatusInternalServerError, fmt.Sprintf("encode response: %v", err))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(buf.Bytes())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Cache-Control", "no-store")
	writeJSON(w, http.StatusOK, s.Stats())
}

// listEntry is one row of the registry listing.
type listEntry struct {
	Name        string `json:"name"`
	Description string `json:"description"`
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	names := analysis.Names()
	entries := make([]listEntry, 0, len(names))
	etagParts := make([]string, 0, 2*len(names)+1)
	etagParts = append(etagParts, "list")
	for _, name := range names {
		reg, _ := analysis.Lookup(name)
		entries = append(entries, listEntry{Name: name, Description: reg.Description})
		etagParts = append(etagParts, name, reg.Description)
	}
	etag := etagFor(etagParts...)
	writeValidator(w, etag)
	if notModified(r, etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	writeJSON(w, http.StatusOK, entries)
}

// analysisResponse is the body of /v1/analyses/{name}: the registry
// row plus the scope it was computed over, so consumers need no second
// lookup.
type analysisResponse struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	Filter      string `json:"filter,omitempty"`
	Value       any    `json:"value"`
}

func (s *Server) handleAnalysis(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	reg, ok := analysis.Lookup(name)
	if !ok {
		// 404 before touching the pool: a typo'd name must not build an
		// engine or ingest anything.
		err := &core.UnknownAnalysisError{Name: name, Available: analysis.SortedNames()}
		httpError(w, http.StatusNotFound, err.Error())
		return
	}
	sc, err := parseScope(r.URL.Query().Get("filter"))
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	ent, err := s.pool.get(sc)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	etag := etagFor(ent.fingerprint, "analysis", name, sc.expr)
	if notModified(r, etag) {
		writeValidator(w, etag)
		w.WriteHeader(http.StatusNotModified)
		return
	}
	v, err := ent.eng.Analysis(name)
	if err != nil {
		// A broken corpus poisons every analysis of the scope: drop the
		// entry so the next request retries ingestion instead of
		// replaying the memoized failure forever. An analysis that
		// errors on a healthy corpus keeps its (cheap, memoized) entry.
		if ent.eng.IngestionFailed() {
			s.pool.drop(ent)
		}
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	// The validator is attached only now, to a response that represents
	// the resource — an error above must not hand out an ETag that
	// would later revalidate to a misleading 304.
	writeValidator(w, etag)
	writeJSON(w, http.StatusOK, analysisResponse{
		Name:        name,
		Description: reg.Description,
		Filter:      sc.expr,
		Value:       v,
	})
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	sc, err := parseScope(r.URL.Query().Get("filter"))
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	ent, err := s.pool.get(sc)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	etag := etagFor(ent.fingerprint, "report", sc.expr)
	if notModified(r, etag) {
		writeValidator(w, etag)
		w.WriteHeader(http.StatusNotModified)
		return
	}
	// Render into a buffer so a mid-report analysis failure becomes a
	// clean 500 instead of half a 200.
	var buf bytes.Buffer
	if err := ent.eng.WriteReport(&buf); err != nil {
		if ent.eng.IngestionFailed() {
			s.pool.drop(ent)
		}
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeValidator(w, etag)
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf.Bytes())
}
