package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/obs/evlog"
	"repro/internal/obs/trace"
	"repro/internal/parser"
	"repro/internal/synth"
)

// Defaults for the pool and concurrency bounds (Config zero values).
const (
	DefaultPoolSize    = 32
	DefaultMaxInFlight = 64
	// DefaultTraceBuffer bounds the resident completed traces served
	// by /v1/traces when Config.TraceBufferSize is zero.
	DefaultTraceBuffer = 256
)

// Config configures a Server.
type Config struct {
	// Base is the unfiltered corpus source every requested scope slices
	// from (nil = the default synthetic corpus, via core.New).
	Base core.Source
	// Workers bounds each engine's parallelism (0 = GOMAXPROCS).
	Workers int
	// PoolSize bounds the resident scope engines; the least recently
	// served scope past the bound is evicted (<=0 = DefaultPoolSize).
	PoolSize int
	// MaxInFlight bounds concurrently served requests (<=0 =
	// DefaultMaxInFlight).
	MaxInFlight int
	// Logf, when non-nil, receives one line per request in the legacy
	// one-line text format (preserved byte-for-byte for existing
	// log-scraping).
	Logf func(format string, args ...any)
	// Events, when non-nil, receives structured lifecycle events (see
	// internal/obs/evlog): one "request" event per response carrying
	// trace_id, status_class, and etag_revalidated, plus the state-plane
	// events (pool builds and evictions, audit flushes when the audit
	// log is wired to the same logger). Independent of Logf — a server
	// can emit both, either, or neither.
	Events *evlog.Logger
	// Audit, when non-nil, receives one hash-chained provenance record
	// per attributable 200 — analysis and report responses, whose bytes
	// derive from a corpus state. Listings, health, stats, errors, and
	// 304s (no bytes served) are never appended. The server does not
	// own the log's lifecycle; the caller closes it after shutdown.
	Audit *obs.AuditLog
	// TraceBufferSize bounds the completed request traces retained for
	// GET /v1/traces (0 = DefaultTraceBuffer; negative disables
	// tracing entirely — no per-request trace, no /v1/traces route).
	TraceBufferSize int
	// SlowTrace, when positive, logs one line through Logf for every
	// request at least this slow, carrying its trace id. No effect
	// when tracing is disabled or Logf is nil.
	SlowTrace time.Duration
	// Pprof mounts GET /debug/pprof/* for loopback clients. Off by
	// default: profiles expose memory contents.
	Pprof bool
	// Live enables the append plane: Base is wrapped in a
	// core.AppendSource, POST /v1/runs accepts one result file per
	// request, AppendRuns / AbsorbBaseGrowth / ResetPool become
	// operational, and the generation + append counters join /metrics
	// and /v1/stats. Off by default — a static corpus needs none of it.
	Live bool
}

// Server serves the analysis registry over HTTP. It is an http.Handler;
// wire it into an http.Server (see cmd/specserve) or hit it directly in
// tests via httptest.
type Server struct {
	cfg      Config
	pool     *enginePool
	live     *core.AppendSource // nil unless cfg.Live
	gate     chan struct{}
	handler  http.Handler
	started  time.Time
	counters counters
	metrics  *obs.Collector
	audit    *obs.AuditLog
	traces   *trace.Ring // nil when tracing is disabled
	runtime  obs.RuntimeSampler
}

// New builds a Server over cfg.
func New(cfg Config) *Server {
	if cfg.Base == nil {
		cfg.Base = core.SynthSource{Options: synth.DefaultOptions()}
	}
	if cfg.PoolSize <= 0 {
		cfg.PoolSize = DefaultPoolSize
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = DefaultMaxInFlight
	}
	var live *core.AppendSource
	if cfg.Live {
		live = core.NewAppendSource(cfg.Base)
		cfg.Base = live
	}
	metrics := obs.NewCollector()
	s := &Server{
		cfg:     cfg,
		pool:    newEnginePool(cfg.Base, live, cfg.Workers, cfg.PoolSize, metrics, cfg.Events),
		live:    live,
		gate:    make(chan struct{}, cfg.MaxInFlight),
		started: time.Now(),
		metrics: metrics,
		audit:   cfg.Audit,
	}
	if cfg.TraceBufferSize >= 0 {
		size := cfg.TraceBufferSize
		if size == 0 {
			size = DefaultTraceBuffer
		}
		s.traces = trace.NewRing(size)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/analyses", s.handleList)
	mux.HandleFunc("GET /v1/analyses/{name}", s.handleAnalysis)
	mux.HandleFunc("GET /v1/report", s.handleReport)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/pool", s.handlePool)
	if cfg.Live {
		mux.HandleFunc("POST /v1/runs", s.handleAppendRun)
	}
	if s.traces != nil {
		mux.HandleFunc("GET /v1/traces", s.handleTraces)
	}
	if cfg.Pprof {
		mountPprof(mux)
	}
	s.handler = s.withMetrics(s.withGate(mux))
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.handler.ServeHTTP(w, r)
}

// Warm pre-builds the whole-corpus engine and ingests its dataset, so
// the first unfiltered request after startup is served from memory
// instead of paying for ingestion. The ingestion runs under the
// entry's read lock like any request's would, so on a live pool it
// cannot interleave with an absorb (which would leave the entry's
// fingerprint ahead of the data the engine streamed).
func (s *Server) Warm() error {
	ent, err := s.pool.get(scope{}, "")
	if err != nil {
		return err
	}
	ent.live.RLock()
	defer ent.live.RUnlock()
	_, err = ent.eng.Dataset()
	return err
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func httpError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorBody{Error: msg})
}

// encodeJSON renders v as the exact indented bytes a 200 would serve —
// handlers that audit or digest the response encode once and reuse the
// bytes for both the wire and the provenance record.
func encodeJSON(v any) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// writeJSON writes v indented, with the content type set. The encode
// happens into a buffer first so a marshal failure can still become a
// clean 500 instead of a truncated 200.
func writeJSON(w http.ResponseWriter, status int, v any) {
	body, err := encodeJSON(v)
	if err != nil {
		httpError(w, http.StatusInternalServerError, fmt.Sprintf("encode response: %v", err))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Cache-Control", "no-store")
	writeJSON(w, http.StatusOK, s.Stats())
}

// handleMetrics serves the Prometheus text exposition: the same
// counters /v1/stats reports, plus the per-stage and per-analysis
// histograms in scrapeable form.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var buf bytes.Buffer
	s.metrics.WritePrometheus(&buf, s.gauges())
	obs.WriteRuntimePrometheus(&buf, s.runtime.Sample())
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf.Bytes())
}

// appendAudit chains one provenance record for a served 200, carrying
// the precomputed body digest (the handler also stamps it onto the
// trace, so it is hashed once) and the request's trace id ("" with
// tracing off). The append is a channel send — the batching writer
// does the file I/O off the request path.
func (s *Server) appendAudit(fingerprint, analysisName, params, filter, digest, traceID string) {
	if s.audit == nil {
		return
	}
	s.audit.Append(obs.Entry{
		Time:         time.Now(),
		Fingerprint:  fingerprint,
		Analysis:     analysisName,
		Params:       params,
		Filter:       filter,
		ResultDigest: digest,
		TraceID:      traceID,
	})
}

// paramInfo is the wire form of one declared parameter, echoed by the
// registry listing and by 400 responses so a client that sent a bad
// request learns the schema without a second round trip.
type paramInfo struct {
	Name        string   `json:"name"`
	Kind        string   `json:"kind"`
	Default     string   `json:"default,omitempty"`
	Enum        []string `json:"enum,omitempty"`
	Description string   `json:"description,omitempty"`
}

func schemaInfo(s analysis.Schema) []paramInfo {
	if len(s) == 0 {
		return nil
	}
	info := make([]paramInfo, len(s))
	for i, p := range s {
		info[i] = paramInfo{
			Name:        p.Name,
			Kind:        p.Kind.String(),
			Default:     p.DefaultString(),
			Enum:        p.Enum,
			Description: p.Description,
		}
	}
	return info
}

// paramErrorBody is the 400 envelope for parameter failures: the error
// plus the analysis's declared schema.
type paramErrorBody struct {
	Error  string      `json:"error"`
	Schema []paramInfo `json:"schema"`
}

func paramError(w http.ResponseWriter, reg analysis.Registration, err error) {
	writeJSON(w, http.StatusBadRequest, paramErrorBody{
		Error:  err.Error(),
		Schema: schemaInfo(reg.Params),
	})
}

// listEntry is one row of the registry listing: the registry row plus
// the declared parameter schema (absent for parameterless analyses).
type listEntry struct {
	Name        string      `json:"name"`
	Description string      `json:"description"`
	Params      []paramInfo `json:"params,omitempty"`
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	names := analysis.Names()
	entries := make([]listEntry, 0, len(names))
	etagParts := make([]string, 0, 2*len(names)+1)
	etagParts = append(etagParts, "list")
	for _, name := range names {
		reg, _ := analysis.Lookup(name)
		entries = append(entries, listEntry{
			Name:        name,
			Description: reg.Description,
			Params:      schemaInfo(reg.Params),
		})
		etagParts = append(etagParts, name, reg.Description)
		for _, p := range reg.Params {
			// The schema is part of the listing's identity: a changed
			// default, description, or domain — anything the body
			// serves — must invalidate cached listings.
			etagParts = append(etagParts, fmt.Sprintf("param:%s:%s:%s:%v:%s",
				p.Name, p.Kind, p.DefaultString(), p.Enum, p.Description))
		}
	}
	etag := etagFor(etagParts...)
	writeValidator(w, etag)
	if notModified(r, etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	writeJSON(w, http.StatusOK, entries)
}

// analysisResponse is the body of /v1/analyses/{name}: the registry
// row plus the scope and canonical parameters it was computed over, so
// consumers need no second lookup. Params is the canonical non-default
// string — absent for a default request, keeping parameterless
// responses byte-compatible with the pre-params server.
type analysisResponse struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	Filter      string `json:"filter,omitempty"`
	Params      string `json:"params,omitempty"`
	Value       any    `json:"value"`
}

// rawParams collects every query key except the reserved "filter" as a
// raw parameter assignment for the schema to resolve (first value wins,
// matching url.Values.Get).
func rawParams(q url.Values) map[string]string {
	raw := make(map[string]string, len(q))
	for key, vals := range q {
		if key == "filter" || len(vals) == 0 {
			continue
		}
		raw[key] = vals[0]
	}
	return raw
}

func (s *Server) handleAnalysis(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	reg, ok := analysis.Lookup(name)
	if !ok {
		// 404 before touching the pool: a typo'd name must not build an
		// engine or ingest anything.
		err := &core.UnknownAnalysisError{Name: name, Available: analysis.SortedNames()}
		httpError(w, http.StatusNotFound, err.Error())
		return
	}
	q := r.URL.Query()
	sc, err := parseScope(q.Get("filter"))
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	// Resolve query parameters against the declared schema before
	// touching the pool: an unknown key or a failed validation is a 400
	// carrying the schema, and must not build an engine or ingest
	// anything. The param-less hot path (including 304 revalidations)
	// skips the resolve entirely — the bag was resolved once, at
	// registration.
	params := reg.DefaultParams()
	if raw := rawParams(q); len(raw) > 0 {
		var err error
		if params, err = reg.Params.Resolve(raw); err != nil {
			paramError(w, reg, err)
			return
		}
	}
	m := requestMetrics(r)
	m.Analysis = name
	m.Params = params.Canonical()
	t := requestTracer(r)
	root := t.root()
	root.SetAttr("analysis", name)
	if p := params.Canonical(); p != "" {
		root.SetAttr("params", p)
	}
	if sc.expr != "" {
		root.SetAttr("filter", sc.expr)
	}
	poolStart := time.Now()
	ent, err := s.pool.get(sc, t.id())
	buildEnd := time.Now()
	m.EngineBuildNs = buildEnd.Sub(poolStart).Nanoseconds()
	bsp := root.ChildAt("build", poolStart)
	bsp.FinishAt(buildEnd)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	// The entry's read lock spans fingerprint read through audit: on a
	// live pool an absorb cannot land between the ETag and the bytes it
	// validates, so a response never carries an ETag older (or newer)
	// than the data it serves. The lock is released before the network
	// write — a slow client must not stall the append plane.
	ent.live.RLock()
	fingerprint := ent.fingerprint
	// The canonical param string joins the validator identity, so
	// ?k=3 and ?k=5 on one scope revalidate independently while two
	// spellings of the same parameterization share one ETag.
	etag := etagFor(fingerprint, "analysis", name, sc.expr, params.Canonical())
	root.SetAttr("etag", etag)
	if notModified(r, etag) {
		ent.live.RUnlock()
		writeValidator(w, etag)
		w.WriteHeader(http.StatusNotModified)
		return
	}
	computeStart := time.Now()
	v, err := ent.eng.AnalysisRequest(core.Request{Name: name, Params: params, Trace: t.hooks()})
	m.ComputeNs = time.Since(computeStart).Nanoseconds()
	if err != nil {
		ent.live.RUnlock()
		// A broken corpus poisons every analysis of the scope: drop the
		// entry so the next request retries ingestion instead of
		// replaying the memoized failure forever. An analysis that
		// errors on a healthy corpus keeps its (cheap, memoized) entry.
		if ent.eng.IngestionFailed() {
			s.pool.dropReason(ent, "ingestion_failed", t.id())
		}
		// Parameter combinations the per-key validation cannot see
		// (hac without k or cut, k beyond the scope's corpus) blame the
		// request, not the server.
		var bad *analysis.BadParamsError
		if errors.As(err, &bad) {
			paramError(w, reg, err)
			return
		}
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	serializeStart := time.Now()
	body, err := encodeJSON(analysisResponse{
		Name:        name,
		Description: reg.Description,
		Filter:      sc.expr,
		Params:      params.Canonical(),
		Value:       v,
	})
	serializeEnd := time.Now()
	m.SerializeNs = serializeEnd.Sub(serializeStart).Nanoseconds()
	if err != nil {
		ent.live.RUnlock()
		httpError(w, http.StatusInternalServerError, fmt.Sprintf("encode response: %v", err))
		return
	}
	ssp := root.ChildAt("serialize", serializeStart)
	ssp.SetAttr("bytes", fmt.Sprint(len(body)))
	ssp.FinishAt(serializeEnd)
	// The validator is attached only now, to a response that represents
	// the resource — an error above must not hand out an ETag that
	// would later revalidate to a misleading 304. The audit record
	// digests the exact bytes about to be served, under the same
	// fingerprint + canonical params identity the ETag derives from,
	// and both the record and the trace carry the digest so a span can
	// be matched to its audit row (and vice versa).
	digest := obs.ResultDigest(body)
	root.SetAttr("audit_digest", digest)
	s.appendAudit(fingerprint, name, params.Canonical(), sc.expr, digest, t.id())
	ent.live.RUnlock()
	writeValidator(w, etag)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	// The report renders fixed sections with default parameters, so any
	// key but filter is a mistake — a typo'd ?filtre= must not silently
	// serve the unfiltered corpus (the same refusal specanalyze gives
	// -p without -only/-json). Unknown keys are sorted so the echoed
	// 400 body is deterministic regardless of map iteration order.
	var unknown []string
	for key := range q {
		if key != "filter" {
			unknown = append(unknown, key)
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		httpError(w, http.StatusBadRequest, fmt.Sprintf(
			"report takes no parameters: unknown query key %q (only filter)", unknown[0]))
		return
	}
	sc, err := parseScope(q.Get("filter"))
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	m := requestMetrics(r)
	m.Analysis = "report"
	t := requestTracer(r)
	root := t.root()
	root.SetAttr("analysis", "report")
	if sc.expr != "" {
		root.SetAttr("filter", sc.expr)
	}
	poolStart := time.Now()
	ent, err := s.pool.get(sc, t.id())
	buildEnd := time.Now()
	m.EngineBuildNs = buildEnd.Sub(poolStart).Nanoseconds()
	bsp := root.ChildAt("build", poolStart)
	bsp.FinishAt(buildEnd)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	// Same read-lock discipline as handleAnalysis: the ETag and the
	// rendered bytes come from one corpus state, released before the
	// network write.
	ent.live.RLock()
	fingerprint := ent.fingerprint
	etag := etagFor(fingerprint, "report", sc.expr)
	root.SetAttr("etag", etag)
	if notModified(r, etag) {
		ent.live.RUnlock()
		writeValidator(w, etag)
		w.WriteHeader(http.StatusNotModified)
		return
	}
	// Render into a buffer so a mid-report analysis failure becomes a
	// clean 500 instead of half a 200. Rendering is compute and
	// serialize in one pass; it counts as compute, the dominant cost —
	// the trace gets one "render" span rather than engine hooks, since
	// WriteReport fans analyses out internally and per-request
	// attribution of the shared memo fills would mislead.
	computeStart := time.Now()
	var buf bytes.Buffer
	renderErr := ent.eng.WriteReport(&buf)
	computeEnd := time.Now()
	m.ComputeNs = computeEnd.Sub(computeStart).Nanoseconds()
	rsp := root.ChildAt("render", computeStart)
	rsp.FinishAt(computeEnd)
	if renderErr != nil {
		ent.live.RUnlock()
		if ent.eng.IngestionFailed() {
			s.pool.dropReason(ent, "ingestion_failed", t.id())
		}
		httpError(w, http.StatusInternalServerError, renderErr.Error())
		return
	}
	// The report is attributable output like any analysis: audit it
	// under the reserved name "report" (the registry rejects no such
	// analysis name collision — names are lowercase identifiers and
	// "report" is not registered).
	digest := obs.ResultDigest(buf.Bytes())
	root.SetAttr("audit_digest", digest)
	s.appendAudit(fingerprint, "report", "", sc.expr, digest, t.id())
	ent.live.RUnlock()
	writeValidator(w, etag)
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf.Bytes())
}

// maxRunBody bounds a POST /v1/runs body. Real result files are tens
// of kilobytes; 4MB leaves two orders of magnitude of headroom while
// keeping a runaway upload from buffering unbounded memory.
const maxRunBody = 4 << 20

// appendResponse is the POST /v1/runs success body.
type appendResponse struct {
	// ID of the appended run, echoed from the parsed file.
	ID string `json:"id"`
	// Generation the corpus advanced to; every scope's ETag has rolled.
	Generation uint64 `json:"generation"`
}

// handleAppendRun ingests one result file — the request body, verbatim
// in the same format the corpus directory holds — into the live corpus.
// The append is synchronous: when the 200 returns, every resident
// engine has folded the run in and every ETag has rolled.
func (s *Server) handleAppendRun(w http.ResponseWriter, r *http.Request) {
	m := requestMetrics(r)
	m.Analysis = "append"
	t := requestTracer(r)
	root := t.root()
	root.SetAttr("analysis", "append")
	parseStart := time.Now()
	run, err := parser.Parse(http.MaxBytesReader(w, r.Body, maxRunBody))
	parseEnd := time.Now()
	psp := root.ChildAt("parse", parseStart)
	psp.FinishAt(parseEnd)
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("parse result file: %v", err))
		return
	}
	root.SetAttr("run_id", run.ID)
	appendStart := time.Now()
	gen := s.pool.absorb([]*model.Run{run}, true, t.id())
	appendEnd := time.Now()
	m.ComputeNs = appendEnd.Sub(appendStart).Nanoseconds()
	asp := root.ChildAt("append", appendStart)
	asp.SetAttr("generation", fmt.Sprint(gen))
	asp.FinishAt(appendEnd)
	writeJSON(w, http.StatusOK, appendResponse{ID: run.ID, Generation: gen})
}

// errNotLive rejects append-plane calls on a server built without
// Config.Live.
var errNotLive = errors.New("serve: live ingestion disabled (set Config.Live)")

// Generation reports the live corpus generation (0 on a static server:
// the corpus never moves).
func (s *Server) Generation() uint64 {
	if s.live == nil {
		return 0
	}
	return s.live.Generation()
}

// AppendRuns folds runs that exist nowhere else — no backing file the
// base source could re-deliver — into the live corpus, synchronously:
// the overlay, every resident engine, and every fingerprint have
// absorbed them when it returns. The programmatic form of POST
// /v1/runs.
func (s *Server) AppendRuns(runs ...*model.Run) (uint64, error) {
	if s.live == nil {
		return 0, errNotLive
	}
	return s.pool.absorb(runs, true, ""), nil
}

// AbsorbBaseGrowth folds runs whose result files the base source
// already sees — the watcher path, after new files landed in the
// corpus directory. The runs reach resident engines through the delta
// path, but stay out of the overlay: engines built later stream them
// from the base source, and double-absorbing them here would deliver
// them twice.
func (s *Server) AbsorbBaseGrowth(runs ...*model.Run) (uint64, error) {
	if s.live == nil {
		return 0, errNotLive
	}
	return s.pool.absorb(runs, false, ""), nil
}

// ResetPool drops every resident engine and rolls the generation: the
// base corpus changed in a way the delta path cannot express (a result
// file modified or deleted), so each scope rebuilds from the current
// corpus on its next request. Returns the number of entries dropped.
func (s *Server) ResetPool(reason string) (int, error) {
	if s.live == nil {
		return 0, errNotLive
	}
	return s.pool.reset(reason), nil
}
