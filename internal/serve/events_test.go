package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"regexp"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/obs/evlog"
)

// syncBuf is a mutex-guarded event sink: requests log concurrently.
type syncBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuf) lines() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := strings.TrimSpace(b.buf.String())
	if s == "" {
		return nil
	}
	return strings.Split(s, "\n")
}

// eventSeq extracts the event= value of each line matching any of the
// given event names, in emission order.
func eventSeq(lines []string, names ...string) []string {
	var seq []string
	for _, line := range lines {
		for _, n := range names {
			if strings.Contains(line, "event="+n+" ") || strings.HasSuffix(line, "event="+n) {
				seq = append(seq, n)
				break
			}
		}
	}
	return seq
}

func linesWith(lines []string, substr string) []string {
	var out []string
	for _, l := range lines {
		if strings.Contains(l, substr) {
			out = append(out, l)
		}
	}
	return out
}

// TestEventSequenceColdWarmEvict pins the state-plane event log for the
// canonical pool lifecycle: a cold scope logs exactly one build, a warm
// repeat logs nothing, and pushing a second scope through a capacity-1
// pool logs exactly one lru eviction of the first — in that order.
func TestEventSequenceColdWarmEvict(t *testing.T) {
	var sink syncBuf
	ev := evlog.New(&sink, evlog.Options{})
	s, _ := testServer(t, Config{PoolSize: 1, Events: ev})

	for _, path := range []string{
		"/v1/analyses/funnel",                   // cold: build scope ""
		"/v1/analyses/funnel",                   // warm: no pool events
		"/v1/analyses/funnel?filter=vendor=amd", // evicts "" then builds
	} {
		if rec := get(t, s, path); rec.Code != 200 {
			t.Fatalf("GET %s = %d: %s", path, rec.Code, rec.Body)
		}
	}

	lines := sink.lines()
	seq := eventSeq(lines, "pool_build", "pool_evict")
	want := []string{"pool_build", "pool_evict", "pool_build"}
	if fmt.Sprint(seq) != fmt.Sprint(want) {
		t.Fatalf("pool event sequence = %v, want %v\nlog:\n%s",
			seq, want, strings.Join(lines, "\n"))
	}

	builds := linesWith(lines, "event=pool_build ")
	if len(builds) != 2 {
		t.Fatalf("pool_build lines = %d, want 2", len(builds))
	}
	if !strings.Contains(builds[0], `scope=""`) || !strings.Contains(builds[0], "joins=0") {
		t.Errorf("first build line = %q, want scope=\"\" joins=0", builds[0])
	}
	if !strings.Contains(builds[1], `scope="vendor=amd"`) {
		t.Errorf("second build line = %q, want scope=\"vendor=amd\"", builds[1])
	}
	evicts := linesWith(lines, "event=pool_evict")
	if len(evicts) != 1 {
		t.Fatalf("pool_evict lines = %d, want 1:\n%s", len(evicts), strings.Join(evicts, "\n"))
	}
	if !strings.Contains(evicts[0], `scope=""`) || !strings.Contains(evicts[0], "reason=lru") {
		t.Errorf("evict line = %q, want scope=\"\" reason=lru", evicts[0])
	}

	// The counters agree with the log.
	st := s.Stats()
	if st.PoolEvictions != 1 || st.EngineBuilds != 2 {
		t.Errorf("evictions=%d builds=%d, want 1, 2", st.PoolEvictions, st.EngineBuilds)
	}
	if st.PoolHits != 1 || st.PoolMisses != 2 {
		t.Errorf("pool hits=%d misses=%d, want 1, 2", st.PoolHits, st.PoolMisses)
	}
}

// TestRequestEventAttrs pins the structured request line: every request
// carries a non-empty trace_id, its status_class, and whether it was
// answered by ETag revalidation.
func TestRequestEventAttrs(t *testing.T) {
	var sink syncBuf
	s, _ := testServer(t, Config{Events: evlog.New(&sink, evlog.Options{})})

	rec := get(t, s, "/v1/analyses/funnel")
	if rec.Code != 200 {
		t.Fatalf("cold = %d: %s", rec.Code, rec.Body)
	}
	etag := rec.Header().Get("ETag")
	if rec := get(t, s, "/v1/analyses/funnel", "If-None-Match", etag); rec.Code != 304 {
		t.Fatalf("conditional = %d, want 304", rec.Code)
	}
	if rec := get(t, s, "/v1/analyses/nosuch"); rec.Code != 404 {
		t.Fatalf("unknown analysis = %d, want 404", rec.Code)
	}

	reqs := linesWith(sink.lines(), "event=request")
	if len(reqs) != 3 {
		t.Fatalf("request events = %d, want 3:\n%s", len(reqs), strings.Join(reqs, "\n"))
	}
	traceID := regexp.MustCompile(`trace_id=[0-9a-f]{32}`)
	for i, line := range reqs {
		if !traceID.MatchString(line) {
			t.Errorf("request line %d missing trace_id: %q", i, line)
		}
	}
	for i, want := range []string{
		"status=200 status_class=2xx etag_revalidated=false",
		"status=304 status_class=3xx etag_revalidated=true",
		"status=404 status_class=4xx etag_revalidated=false",
	} {
		if !strings.Contains(reqs[i], want) {
			t.Errorf("request line %d = %q, want %q", i, reqs[i], want)
		}
	}
	if !strings.Contains(reqs[2], "level=warn") {
		t.Errorf("4xx logged at %q, want level=warn", reqs[2])
	}
	if !strings.Contains(reqs[0], "analysis=funnel") {
		t.Errorf("attributable 200 missing analysis attr: %q", reqs[0])
	}
}

// gatedSource holds the corpus fingerprint hostage until released, so a
// test can park an arbitrary single-flight cohort inside one pool build.
type gatedSource struct {
	inner   core.Source
	release chan struct{}
}

func (g gatedSource) Name() string { return g.inner.Name() }

func (g gatedSource) Each(workers int, yield func(*model.Run) error) error {
	return g.inner.Each(workers, yield)
}

func (g gatedSource) Fingerprint() (string, error) {
	<-g.release
	return core.Digest("gated", g.inner.Name()), nil
}

// TestPoolBuildJoins parks N concurrent cold requests on one
// single-flight build and asserts the pool logs exactly one pool_build
// with joins=N-1 — the joins counter is who waited, not who asked.
func TestPoolBuildJoins(t *testing.T) {
	const n = 8
	var sink syncBuf
	release := make(chan struct{})
	s := New(Config{
		Base:   gatedSource{inner: core.SliceSource(testRuns(t)), release: release},
		Events: evlog.New(&sink, evlog.Options{}),
	})

	var wg sync.WaitGroup
	var bad atomic.Int64
	for range n {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if rec := get(t, s, "/v1/analyses/funnel"); rec.Code != 200 {
				bad.Add(1)
			}
		}()
	}

	// Release the build only once the whole cohort has arrived at the
	// entry (arrivals is bumped before the once, so this converges).
	deadline := time.Now().Add(10 * time.Second)
	for {
		var ent *poolEntry
		s.pool.mu.Lock()
		if el, ok := s.pool.byScope[""]; ok {
			ent = el.Value.(*poolEntry)
		}
		s.pool.mu.Unlock()
		if ent != nil && ent.arrivals.Load() == n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("cohort never assembled")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if bad.Load() != 0 {
		t.Fatalf("%d requests failed", bad.Load())
	}
	if got := s.pool.builds.Load(); got != 1 {
		t.Errorf("builds = %d, want 1 (single-flight)", got)
	}
	if got := s.pool.joins.Load(); got != n-1 {
		t.Errorf("joins = %d, want %d", got, n-1)
	}
	builds := linesWith(sink.lines(), "event=pool_build ")
	if len(builds) != 1 {
		t.Fatalf("pool_build lines = %d, want 1", len(builds))
	}
	if want := fmt.Sprintf("joins=%d", n-1); !strings.Contains(builds[0], want) {
		t.Errorf("build line = %q, want %s", builds[0], want)
	}
}

// TestPoolViewStable pins /v1/pool's determinism contract: on a
// quiesced server, repeated reads are byte-identical — the snapshot
// neither touches the LRU order nor bumps any counter it reports.
func TestPoolViewStable(t *testing.T) {
	s, _ := testServer(t, Config{})
	for _, path := range []string{
		"/v1/analyses/funnel",
		"/v1/analyses/funnel", // memo + pool hit
		"/v1/analyses/clusters?k=4",
		"/v1/analyses/funnel?filter=vendor=amd",
	} {
		if rec := get(t, s, path); rec.Code != 200 {
			t.Fatalf("GET %s = %d: %s", path, rec.Code, rec.Body)
		}
	}

	first := get(t, s, "/v1/pool")
	if first.Code != 200 {
		t.Fatalf("/v1/pool = %d: %s", first.Code, first.Body)
	}
	for i := 0; i < 3; i++ {
		again := get(t, s, "/v1/pool")
		if !bytes.Equal(first.Body.Bytes(), again.Body.Bytes()) {
			t.Fatalf("read %d differs:\n%s\nvs\n%s", i+2, first.Body, again.Body)
		}
	}

	var view PoolSnapshot
	if err := json.Unmarshal(first.Body.Bytes(), &view); err != nil {
		t.Fatal(err)
	}
	if view.Capacity != DefaultPoolSize || len(view.Engines) != 2 {
		t.Fatalf("capacity=%d engines=%d, want %d, 2", view.Capacity, len(view.Engines), DefaultPoolSize)
	}
	// Deterministic order: sorted by canonical filter, "" first.
	if view.Engines[0].Filter != "" || view.Engines[1].Filter != "vendor=amd" {
		t.Errorf("engine order = %q, %q", view.Engines[0].Filter, view.Engines[1].Filter)
	}
	base := view.Engines[0]
	if base.Fingerprint == "" || base.Building {
		t.Errorf("base engine not built: %+v", base)
	}
	if base.Hits != 2 { // funnel repeat + clusters
		t.Errorf("base hits = %d, want 2", base.Hits)
	}
	if base.MemoEntries != 2 || base.MemoHits < 1 {
		t.Errorf("base memo entries=%d hits=%d, want 2, ≥1", base.MemoEntries, base.MemoHits)
	}
	if base.RunsIngested == 0 || base.ApproxBytes == 0 {
		t.Errorf("base runs=%d approx_bytes=%d, want both >0", base.RunsIngested, base.ApproxBytes)
	}
}

// TestTextLogFormatPinned pins the legacy one-line request log
// byte-for-byte: -log-format text must keep emitting exactly this
// shape no matter what the structured event log grows.
func TestTextLogFormatPinned(t *testing.T) {
	var mu sync.Mutex
	var formats, lines []string
	s, _ := testServer(t, Config{Logf: func(format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		formats = append(formats, format)
		lines = append(lines, fmt.Sprintf(format, args...))
	}})
	if rec := get(t, s, "/v1/analyses/funnel"); rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(formats) != 1 {
		t.Fatalf("log lines = %d, want 1", len(formats))
	}
	if formats[0] != "%s %s %d %dB %s" {
		t.Fatalf("format = %q, want %q", formats[0], "%s %s %d %dB %s")
	}
	shape := regexp.MustCompile(`^GET /v1/analyses/funnel 200 \d+B \d+(\.\d+)?(ns|µs|ms|s)$`)
	if !shape.MatchString(lines[0]) {
		t.Errorf("line = %q does not match %v", lines[0], shape)
	}
}

// TestMetricsNewFamilies pins the introspection families added to the
// exposition: pool traffic, memo and memo-ring counters, and the gob
// parse cache, with the eviction counter now labeled by reason.
func TestMetricsNewFamilies(t *testing.T) {
	s, _ := testServer(t, Config{})
	get(t, s, "/v1/analyses/funnel")
	get(t, s, "/v1/analyses/funnel")

	body := get(t, s, "/metrics").Body.String()
	for _, want := range []string{
		"specserve_pool_hits_total 1",
		"specserve_pool_misses_total 1",
		"specserve_pool_joins_total 0",
		`specserve_pool_evictions_total{reason="lru"} 0`,
		`specserve_pool_evictions_total{reason="build_failed"} 0`,
		`specserve_pool_evictions_total{reason="ingestion_failed"} 0`,
		"specserve_memo_hits_total",
		"specserve_memo_misses_total",
		`specserve_memo_ring_hits_total{ring="partition"}`,
		`specserve_memo_ring_misses_total{ring="sweep"}`,
		`specserve_memo_ring_evictions_total{ring="partition"}`,
		"specserve_parse_cache_hits_total",
		"specserve_parse_cache_misses_total",
		"specserve_parse_cache_invalidations_total",
		"specserve_parse_cache_prunes_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}
