package serve

import (
	"net/http"
	"strings"

	"repro/internal/core"
)

// etagFor derives a strong validator from the response identity: the
// corpus fingerprint plus whatever distinguishes this resource on that
// corpus (endpoint, analysis name, canonical filter). It reuses
// core.Digest, the collision-safe part framing behind the corpus
// fingerprints themselves, truncated to 128 bits and quoted.
func etagFor(parts ...string) string {
	return `"` + core.Digest(parts...)[:32] + `"`
}

// etagMatches reports whether an If-None-Match header value matches
// etag, per RFC 9110 weak comparison (which If-None-Match mandates):
// W/ prefixes are ignored and the list form is honored. The "*" form
// is deliberately NOT honored: per the RFC it matches only when a
// current representation exists, and these handlers evaluate the
// precondition before computing — a request that would turn out to be
// a 400 (bad parameter combination) or 500 has no representation, so
// answering "*" with a 304 would assert a cached resource that never
// existed. Clients revalidate with the specific validator they hold.
func etagMatches(header, etag string) bool {
	for _, cand := range strings.Split(header, ",") {
		cand = strings.TrimSpace(cand)
		cand = strings.TrimPrefix(cand, "W/")
		if cand == etag {
			return true
		}
	}
	return false
}

// notModified reports whether the request carries a matching
// If-None-Match validator.
func notModified(r *http.Request, etag string) bool {
	inm := r.Header.Get("If-None-Match")
	return inm != "" && etagMatches(inm, etag)
}

// writeValidator attaches the validator (and no-cache, so clients
// revalidate instead of trusting their copy blindly). Handlers call it
// only on responses that actually represent the resource — a 200 or a
// 304 — never on errors, so a failing endpoint can never hand out a
// validator that later revalidates to a misleading 304.
func writeValidator(w http.ResponseWriter, etag string) {
	h := w.Header()
	h.Set("ETag", etag)
	h.Set("Cache-Control", "no-cache")
}
