package serve

import "testing"

func TestParseScopeCanonicalizes(t *testing.T) {
	cases := []struct {
		in, want string
	}{
		{"", ""},
		{"   ", ""},
		{",,", ""},
		{"vendor=AMD", "vendor=amd"},
		{"since=2015,vendor=AMD", "since=2015,vendor=amd"},
		{"vendor=AMD,since=2015", "since=2015,vendor=amd"}, // clause order sorted
		{" Vendor=AMD , since=2015 ", "since=2015,vendor=amd"},
		{"vendor=AMD|Intel", "vendor=amd|intel"},
	}
	for _, c := range cases {
		sc, err := parseScope(c.in)
		if err != nil {
			t.Errorf("parseScope(%q): %v", c.in, err)
			continue
		}
		if sc.expr != c.want {
			t.Errorf("parseScope(%q).expr = %q, want %q", c.in, sc.expr, c.want)
		}
		if (sc.keep == nil) != (c.want == "") {
			t.Errorf("parseScope(%q): keep nil-ness inconsistent with expr %q", c.in, c.want)
		}
	}
	for _, bad := range []string{"color=red", "year=abc", "vendor", "since=soon"} {
		if _, err := parseScope(bad); err == nil {
			t.Errorf("parseScope(%q) should fail", bad)
		}
	}
}

// TestEmptyFilterSharesUnfilteredScope: an empty-but-present ?filter=
// (and its whitespace and bare-comma spellings) canonicalizes to the
// absent filter's scope, so the pool holds one engine — not two — for
// the same whole-corpus slice, and every spelling shares its ETag.
func TestEmptyFilterSharesUnfilteredScope(t *testing.T) {
	s, streams := testServer(t, Config{})
	var etags []string
	for _, path := range []string{
		"/v1/analyses/funnel",
		"/v1/analyses/funnel?filter=",
		"/v1/analyses/funnel?filter=%20%20",
		"/v1/analyses/funnel?filter=%2C%2C",
	} {
		rec := get(t, s, path)
		if rec.Code != 200 {
			t.Fatalf("%s: status %d: %s", path, rec.Code, rec.Body)
		}
		etags = append(etags, rec.Header().Get("ETag"))
	}
	for i, etag := range etags {
		if etag != etags[0] {
			t.Errorf("spelling %d: ETag %q differs from unfiltered %q", i, etag, etags[0])
		}
	}
	st := s.Stats()
	if st.EngineBuilds != 1 || st.PoolEngines != 1 {
		t.Errorf("builds/engines = %d/%d, want 1/1 (empty filter keyed a duplicate scope)",
			st.EngineBuilds, st.PoolEngines)
	}
	if got := streams.Load(); got != 1 {
		t.Errorf("corpus streamed %d times across equal scopes, want 1", got)
	}
}

func TestParseScopeEquivalentSpellingsShareKey(t *testing.T) {
	a, err := parseScope("vendor=AMD, since=2015")
	if err != nil {
		t.Fatal(err)
	}
	b, err := parseScope("SINCE=2015,vendor=amd")
	if err != nil {
		t.Fatal(err)
	}
	if a.expr != b.expr {
		t.Errorf("equivalent scopes key differently: %q vs %q", a.expr, b.expr)
	}
}
