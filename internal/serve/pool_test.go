package serve

import "testing"

func TestParseScopeCanonicalizes(t *testing.T) {
	cases := []struct {
		in, want string
	}{
		{"", ""},
		{"   ", ""},
		{",,", ""},
		{"vendor=AMD", "vendor=amd"},
		{"since=2015,vendor=AMD", "since=2015,vendor=amd"},
		{"vendor=AMD,since=2015", "since=2015,vendor=amd"}, // clause order sorted
		{" Vendor=AMD , since=2015 ", "since=2015,vendor=amd"},
		{"vendor=AMD|Intel", "vendor=amd|intel"},
	}
	for _, c := range cases {
		sc, err := parseScope(c.in)
		if err != nil {
			t.Errorf("parseScope(%q): %v", c.in, err)
			continue
		}
		if sc.expr != c.want {
			t.Errorf("parseScope(%q).expr = %q, want %q", c.in, sc.expr, c.want)
		}
		if (sc.keep == nil) != (c.want == "") {
			t.Errorf("parseScope(%q): keep nil-ness inconsistent with expr %q", c.in, c.want)
		}
	}
	for _, bad := range []string{"color=red", "year=abc", "vendor", "since=soon"} {
		if _, err := parseScope(bad); err == nil {
			t.Errorf("parseScope(%q) should fail", bad)
		}
	}
}

func TestParseScopeEquivalentSpellingsShareKey(t *testing.T) {
	a, err := parseScope("vendor=AMD, since=2015")
	if err != nil {
		t.Fatal(err)
	}
	b, err := parseScope("SINCE=2015,vendor=amd")
	if err != nil {
		t.Fatal(err)
	}
	if a.expr != b.expr {
		t.Errorf("equivalent scopes key differently: %q vs %q", a.expr, b.expr)
	}
}
