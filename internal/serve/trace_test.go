package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs/trace"
)

func getTraces(t *testing.T, s *Server, path string) tracesResponse {
	t.Helper()
	rec := get(t, s, path)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET %s = %d: %s", path, rec.Code, rec.Body.String())
	}
	var resp tracesResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

// findSpan walks the span tree depth-first for the first span named
// name.
func findSpan(sp trace.SpanSnapshot, name string) (trace.SpanSnapshot, bool) {
	if sp.Name == name {
		return sp, true
	}
	for _, c := range sp.Children {
		if got, ok := findSpan(c, name); ok {
			return got, true
		}
	}
	return trace.SpanSnapshot{}, false
}

func attrValue(sp trace.SpanSnapshot, key string) (string, bool) {
	for _, a := range sp.Attrs {
		if a.Key == key {
			return a.Value, true
		}
	}
	return "", false
}

// TestTraceColdAnalysis pins the acceptance shape: a cold clustering
// request leaves a trace whose tree holds queue_wait, build, ingest,
// compute, and kmeans-iteration spans with non-zero durations, plus
// the response's ETag and audit digest as root attributes.
func TestTraceColdAnalysis(t *testing.T) {
	s, _ := testServer(t, Config{})
	rec := get(t, s, "/v1/analyses/clusters?k=2")
	if rec.Code != http.StatusOK {
		t.Fatalf("analysis status = %d: %s", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Traceparent") == "" {
		t.Fatal("no Traceparent response header")
	}
	resp := getTraces(t, s, "/v1/traces")
	if resp.Recorded != 1 || len(resp.Traces) != 1 {
		t.Fatalf("recorded %d, resident %d, want 1 and 1", resp.Recorded, len(resp.Traces))
	}
	tr := resp.Traces[0]
	if tr.Root.Name != "GET /v1/analyses/clusters" {
		t.Fatalf("root span %q", tr.Root.Name)
	}
	if tr.DurationNs <= 0 {
		t.Fatalf("root duration %d", tr.DurationNs)
	}
	for _, name := range []string{"queue_wait", "build", "ingest", "compute", "kmeans-iteration", "serialize"} {
		sp, ok := findSpan(tr.Root, name)
		if !ok {
			t.Fatalf("span %q missing from cold trace", name)
		}
		if sp.DurationNs < 0 {
			t.Fatalf("span %q unfinished", name)
		}
		// Stage spans measure real work; only the queue can legally take
		// zero time on an idle server.
		if name != "queue_wait" && sp.DurationNs == 0 {
			t.Fatalf("span %q has zero duration", name)
		}
	}
	compute, _ := findSpan(tr.Root, "compute")
	if v, ok := attrValue(compute, "analysis"); !ok || v != "clusters" {
		t.Fatalf("compute analysis attr = %q, %v", v, ok)
	}
	iter, _ := findSpan(tr.Root, "kmeans-iteration")
	if _, ok := attrValue(iter, "moved"); !ok {
		t.Fatalf("kmeans-iteration lacks moved attr: %+v", iter.Attrs)
	}
	if v, ok := attrValue(tr.Root, "status"); !ok || v != "200" {
		t.Fatalf("root status attr = %q, %v", v, ok)
	}
	if _, ok := attrValue(tr.Root, "etag"); !ok {
		t.Fatal("root lacks etag attr")
	}
	if _, ok := attrValue(tr.Root, "audit_digest"); !ok {
		t.Fatal("root lacks audit_digest attr")
	}

	// The warm repeat pays neither ingest nor compute: its trace must
	// not claim work it skipped.
	get(t, s, "/v1/analyses/clusters?k=2")
	warm := getTraces(t, s, "/v1/traces").Traces[0]
	for _, name := range []string{"ingest", "compute", "kmeans-iteration"} {
		if _, ok := findSpan(warm.Root, name); ok {
			t.Fatalf("warm trace has a %q span", name)
		}
	}
	if _, ok := findSpan(warm.Root, "serialize"); !ok {
		t.Fatal("warm trace lacks serialize span")
	}
}

// TestTraceHACSpans covers the second kernel: an HAC request records
// merge-batch spans.
func TestTraceHACSpans(t *testing.T) {
	s, _ := testServer(t, Config{})
	rec := get(t, s, "/v1/analyses/clusters?algo=hac&k=2")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	tr := getTraces(t, s, "/v1/traces").Traces[0]
	sp, ok := findSpan(tr.Root, "hac-merge-batch")
	if !ok {
		t.Fatal("no hac-merge-batch span in HAC trace")
	}
	if _, ok := attrValue(sp, "merges"); !ok {
		t.Fatalf("merge-batch lacks merges attr: %+v", sp.Attrs)
	}
}

// TestTraceParentPropagation: an inbound W3C header donates the trace
// id; the response echoes it with a locally minted parent.
func TestTraceParentPropagation(t *testing.T) {
	s, _ := testServer(t, Config{})
	in := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	rec := get(t, s, "/healthz", "Traceparent", in)
	out := rec.Header().Get("Traceparent")
	tid, pid, ok := ParseOutbound(out)
	if !ok {
		t.Fatalf("outbound traceparent %q does not parse", out)
	}
	if tid != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("trace id not adopted: %q", tid)
	}
	if pid == "00f067aa0ba902b7" {
		t.Fatalf("outbound parent must be the local root span, got the inbound parent")
	}
	tr := getTraces(t, s, "/v1/traces").Traces[0]
	if tr.TraceID != tid || tr.ParentSpanID != "00f067aa0ba902b7" {
		t.Fatalf("ring trace identity = (%s, %s)", tr.TraceID, tr.ParentSpanID)
	}
}

// ParseOutbound re-exports trace.ParseTraceparent for the test above
// without importing it at each call site.
func ParseOutbound(h string) (string, string, bool) { return trace.ParseTraceparent(h) }

// TestTracesQueryParams pins ?n=, ?min_ms=, and their validation.
func TestTracesQueryParams(t *testing.T) {
	s, _ := testServer(t, Config{})
	for i := 0; i < 5; i++ {
		get(t, s, "/healthz")
	}
	if got := getTraces(t, s, "/v1/traces?n=2"); len(got.Traces) != 2 {
		t.Fatalf("?n=2 returned %d traces", len(got.Traces))
	}
	// min_ms=0 admits everything; an absurd threshold admits nothing —
	// and repeating the filtered query is deterministic for a quiet
	// server because the ring only changes when requests finish.
	if got := getTraces(t, s, "/v1/traces?min_ms=0"); len(got.Traces) == 0 {
		t.Fatal("min_ms=0 filtered everything out")
	}
	first := getTraces(t, s, "/v1/traces?min_ms=3600000")
	if len(first.Traces) != 0 {
		t.Fatalf("min_ms=1h admitted %d traces", len(first.Traces))
	}
	for _, bad := range []string{"/v1/traces?n=0", "/v1/traces?n=x", "/v1/traces?min_ms=-1", "/v1/traces?min_ms=x"} {
		if rec := get(t, s, bad); rec.Code != http.StatusBadRequest {
			t.Fatalf("GET %s = %d, want 400", bad, rec.Code)
		}
	}
}

// TestTraceRingWraparoundServed: a tiny ring serves only the newest
// traces once it wraps.
func TestTraceRingWraparoundServed(t *testing.T) {
	s, _ := testServer(t, Config{TraceBufferSize: 3})
	for i := 0; i < 7; i++ {
		get(t, s, "/healthz")
	}
	resp := getTraces(t, s, "/v1/traces")
	if resp.Capacity != 3 || resp.Recorded != 7 || len(resp.Traces) != 3 {
		t.Fatalf("capacity %d recorded %d resident %d", resp.Capacity, resp.Recorded, len(resp.Traces))
	}
	for i := 1; i < len(resp.Traces); i++ {
		if resp.Traces[i-1].Seq <= resp.Traces[i].Seq {
			t.Fatal("traces not newest-first")
		}
	}
}

// TestTracingDisabled: a negative buffer removes the route, the
// response header, and the per-request tracer.
func TestTracingDisabled(t *testing.T) {
	s, _ := testServer(t, Config{TraceBufferSize: -1})
	rec := get(t, s, "/v1/analyses/clusters?k=2")
	if rec.Code != http.StatusOK {
		t.Fatalf("analysis status = %d", rec.Code)
	}
	if h := rec.Header().Get("Traceparent"); h != "" {
		t.Fatalf("untraced response has Traceparent %q", h)
	}
	if rec := get(t, s, "/v1/traces"); rec.Code != http.StatusNotFound {
		t.Fatalf("/v1/traces = %d with tracing disabled, want 404", rec.Code)
	}
}

// TestSlowTraceLog: requests at or above the threshold log one slow
// line carrying the trace id; fast requests do not.
func TestSlowTraceLog(t *testing.T) {
	var mu strings.Builder
	s, _ := testServer(t, Config{
		SlowTrace: time.Nanosecond, // every request qualifies
		Logf:      func(f string, a ...any) { fmt.Fprintf(&mu, f+"\n", a...) },
	})
	get(t, s, "/healthz")
	logged := mu.String()
	if !strings.Contains(logged, "slow request:") {
		t.Fatalf("no slow line in log:\n%s", logged)
	}
	if !strings.Contains(logged, "trace=") {
		t.Fatalf("slow line lacks trace id:\n%s", logged)
	}
}

// TestPprofGate: the flag mounts /debug/pprof for loopback clients
// only; without the flag the route 404s.
func TestPprofGate(t *testing.T) {
	s, _ := testServer(t, Config{Pprof: true})
	req := httptest.NewRequest(http.MethodGet, "/debug/pprof/heap", nil)
	req.RemoteAddr = "127.0.0.1:54321"
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("loopback heap profile = %d", rec.Code)
	}
	// httptest.NewRequest's default RemoteAddr (192.0.2.1) is not
	// loopback: the gate must serve the same 404 an unmounted route
	// would.
	if rec := get(t, s, "/debug/pprof/heap"); rec.Code != http.StatusNotFound {
		t.Fatalf("non-loopback heap profile = %d, want 404", rec.Code)
	}
	off, _ := testServer(t, Config{})
	if rec := get(t, off, "/debug/pprof/heap"); rec.Code != http.StatusNotFound {
		t.Fatalf("heap profile without -pprof = %d, want 404", rec.Code)
	}
}

// TestStatsAndMetricsSurfaceTracing: pool capacity and the trace ring
// show up consistently in /v1/stats and /metrics.
func TestStatsAndMetricsSurfaceTracing(t *testing.T) {
	s, _ := testServer(t, Config{PoolSize: 5})
	get(t, s, "/healthz")
	var stats StatsSnapshot
	if err := json.Unmarshal(get(t, s, "/v1/stats").Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.PoolCapacity != 5 {
		t.Fatalf("pool capacity %d, want 5", stats.PoolCapacity)
	}
	if stats.Traces == nil || stats.Traces.Capacity != DefaultTraceBuffer || stats.Traces.Recorded < 1 {
		t.Fatalf("trace stats %+v", stats.Traces)
	}
	page := get(t, s, "/metrics").Body.String()
	for _, want := range []string{
		"specserve_pool_capacity 5",
		"specserve_trace_ring_capacity " + fmt.Sprint(DefaultTraceBuffer),
		"specserve_traces_recorded_total",
		"specserve_runtime_goroutines",
		"specserve_runtime_heap_inuse_bytes",
		"specserve_runtime_gc_pause_seconds_count",
	} {
		if !strings.Contains(page, want) {
			t.Fatalf("metrics page lacks %q", want)
		}
	}
}
