package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/synth"
)

// TestMetricsEndpoint: /metrics serves the Prometheus text exposition —
// the counters /v1/stats reports plus per-stage and per-analysis
// histograms — after cold, warm, and 304 traffic has populated them.
func TestMetricsEndpoint(t *testing.T) {
	s, _ := testServer(t, Config{})
	first := get(t, s, "/v1/analyses/funnel") // cold: build + ingest + compute
	if first.Code != http.StatusOK {
		t.Fatalf("cold status = %d", first.Code)
	}
	get(t, s, "/v1/analyses/funnel") // warm: memoized
	if rec := get(t, s, "/v1/analyses/funnel", "If-None-Match", first.Header().Get("ETag")); rec.Code != http.StatusNotModified {
		t.Fatalf("revalidation status = %d", rec.Code)
	}
	get(t, s, "/v1/analyses/nope") // one 404 into the error counter

	rec := get(t, s, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("Content-Type = %q", ct)
	}
	body := rec.Body.String()
	// Counters carry the values the traffic above produced. The /metrics
	// request itself is still in flight (same self-count rule as
	// /v1/stats), so requests_total reads 4.
	for _, want := range []string{
		"# TYPE specserve_requests_total counter",
		"specserve_requests_total 4",
		"specserve_not_modified_total 1",
		"specserve_client_errors_total 1",
		"specserve_engine_builds_total 1",
		"specserve_ingests_total 1",
		"specserve_computes_total 1",
		"specserve_pool_engines 1",
		"# TYPE specserve_stage_duration_seconds histogram",
		`specserve_stage_duration_seconds_bucket{stage="queue_wait",le="+Inf"}`,
		`specserve_stage_duration_seconds_bucket{stage="compute",le="+Inf"} 1`,
		`specserve_stage_duration_seconds_count{stage="engine_build"} 1`,
		"# TYPE specserve_request_duration_seconds histogram",
		`specserve_request_duration_seconds_bucket{analysis="funnel",le="+Inf"}`,
		`specserve_request_duration_seconds_count{analysis="funnel"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// No audit log configured: the audit metric must not appear (a 0
	// would read as "auditing, empty chain").
	if strings.Contains(body, "specserve_audit_records_total") {
		t.Error("audit metric exposed without an audit log")
	}
}

// TestStatsObservability: the enriched /v1/stats carries a parseable
// start time, positive uptime, and the stage/analysis latency
// breakdowns — while the pre-existing counters keep their semantics.
func TestStatsObservability(t *testing.T) {
	s, _ := testServer(t, Config{})
	get(t, s, "/v1/analyses/funnel")
	rec := get(t, s, "/v1/stats")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var st StatsSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	started, err := time.Parse(time.RFC3339Nano, st.StartedAt)
	if err != nil {
		t.Fatalf("started_at %q: %v", st.StartedAt, err)
	}
	if time.Since(started) < 0 || st.UptimeSeconds < 0 {
		t.Errorf("started_at %v in the future / uptime %v negative", started, st.UptimeSeconds)
	}
	stages := map[string]obs.StageSummary{}
	for _, sg := range st.Stages {
		stages[sg.Stage] = sg
	}
	// One completed request: queue_wait and serialize observed once per
	// request; engine_build, ingest, and compute once per actual event.
	for _, stage := range []string{
		obs.StageQueueWait, obs.StageEngineBuild, obs.StageIngest,
		obs.StageCompute, obs.StageSerialize,
	} {
		sg, ok := stages[stage]
		if !ok {
			t.Errorf("stats missing stage %q", stage)
			continue
		}
		if sg.Count != 1 {
			t.Errorf("stage %q count = %d, want 1", stage, sg.Count)
		}
		if sg.P50Ns < 0 || sg.SumNs < 0 {
			t.Errorf("stage %q has negative durations: %+v", stage, sg)
		}
	}
	var funnel *obs.AnalysisSummary
	for i := range st.AnalysisLatency {
		if st.AnalysisLatency[i].Analysis == "funnel" {
			funnel = &st.AnalysisLatency[i]
		}
	}
	if funnel == nil {
		t.Fatalf("analysis_latency missing funnel: %+v", st.AnalysisLatency)
	}
	if funnel.Count != 1 || funnel.SumNs <= 0 {
		t.Errorf("funnel latency = %+v", funnel)
	}
	if st.Audit != nil {
		t.Errorf("audit stats present without an audit log: %+v", st.Audit)
	}
}

// auditServer builds a Server auditing to a fresh temp-dir log and
// returns the log path.
func auditServer(t *testing.T, cfg Config) (*Server, *obs.AuditLog, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "audit.log")
	audit, err := obs.OpenAuditLog(path, obs.AuditOptions{FlushRecords: 2, FlushInterval: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Audit = audit
	s, _ := testServer(t, cfg)
	return s, audit, path
}

// TestAuditIntegration is the audit acceptance test: attributable 200s
// (analyses, the report) chain records carrying the scope fingerprint,
// canonical params, and a digest of the exact served bytes; nothing
// else — listings, health, stats, 304s, errors — is ever appended; and
// the resulting file verifies as an unbroken chain until a byte is
// flipped.
func TestAuditIntegration(t *testing.T) {
	// The report section needs enough yearly bins for its trend tests, so
	// this test runs over a wider corpus than the two-year default.
	runs, err := core.GenerateCorpus(synth.Options{
		Seed: 7,
		Plan: []synth.YearPlan{
			{Year: 2008, Parsed: 10, AMDShare: 0.25, LinuxShare: 0.02, TwoSocketShare: 0.7},
			{Year: 2012, Parsed: 10, AMDShare: 0.20, LinuxShare: 0.05, TwoSocketShare: 0.7},
			{Year: 2016, Parsed: 10, AMDShare: 0.10, LinuxShare: 0.10, TwoSocketShare: 0.7},
			{Year: 2018, Parsed: 10, AMDShare: 0.20, LinuxShare: 0.20, TwoSocketShare: 0.7},
			{Year: 2020, Parsed: 10, AMDShare: 0.30, LinuxShare: 0.30, TwoSocketShare: 0.7},
			{Year: 2023, Parsed: 10, AMDShare: 0.35, LinuxShare: 0.40, TwoSocketShare: 0.7},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s, audit, path := auditServer(t, Config{Base: core.SliceSource(runs)})

	funnel := get(t, s, "/v1/analyses/funnel")
	if funnel.Code != http.StatusOK {
		t.Fatalf("funnel status = %d", funnel.Code)
	}
	clusters := get(t, s, "/v1/analyses/clusters?k=3&filter=vendor%3DAMD")
	if clusters.Code != http.StatusOK {
		t.Fatalf("clusters status = %d: %s", clusters.Code, clusters.Body)
	}
	report := get(t, s, "/v1/report")
	if report.Code != http.StatusOK {
		t.Fatalf("report status = %d", report.Code)
	}
	// None of these serve attributable corpus-derived bytes; none may
	// append a record.
	get(t, s, "/healthz")
	get(t, s, "/v1/analyses")
	get(t, s, "/v1/stats")
	get(t, s, "/metrics")
	if rec := get(t, s, "/v1/analyses/funnel", "If-None-Match", funnel.Header().Get("ETag")); rec.Code != http.StatusNotModified {
		t.Fatalf("revalidation status = %d", rec.Code)
	}

	// /v1/stats reports the audit surface while the log is open.
	var st StatsSnapshot
	if err := json.Unmarshal(get(t, s, "/v1/stats").Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Audit == nil || st.Audit.Path != path {
		t.Errorf("stats audit = %+v, want path %q", st.Audit, path)
	}
	// And /metrics exposes the chain length once auditing is on.
	if body := get(t, s, "/metrics").Body.String(); !strings.Contains(body, "specserve_audit_records_total") {
		t.Error("exposition missing specserve_audit_records_total with auditing on")
	}

	// Graceful drain: every enqueued record reaches the file.
	if err := audit.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	res, verr := obs.VerifyChain(f)
	f.Close()
	if verr != nil {
		t.Fatalf("chain verification failed: %v", verr)
	}
	if res.Records != 3 {
		t.Fatalf("chained %d records, want 3 (funnel, clusters, report)", res.Records)
	}

	// The records carry the provenance a verifier needs: which corpus
	// state (fingerprint), which analysis under which canonical params
	// and scope, and the digest of the exact bytes served.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var recs []obs.Record
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var r obs.Record
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatal(err)
		}
		recs = append(recs, r)
	}
	if recs[0].Analysis != "funnel" || recs[0].Params != "" || recs[0].Filter != "" {
		t.Errorf("record 0 = %+v", recs[0])
	}
	if recs[1].Analysis != "clusters" || recs[1].Params != "k=3" || recs[1].Filter != "vendor=amd" {
		t.Errorf("record 1 = %+v", recs[1])
	}
	if recs[2].Analysis != "report" || recs[2].Params != "" {
		t.Errorf("record 2 = %+v", recs[2])
	}
	for i, rec := range recs {
		if rec.Fingerprint == "" {
			t.Errorf("record %d has no fingerprint", i)
		}
		if _, err := time.Parse(time.RFC3339Nano, rec.Time); err != nil {
			t.Errorf("record %d time %q: %v", i, rec.Time, err)
		}
	}
	// The digest is over the exact served body bytes — recomputable by
	// anyone holding the response.
	if got, want := recs[0].ResultDigest, obs.ResultDigest(funnel.Body.Bytes()); got != want {
		t.Errorf("funnel digest %s, want %s (served-bytes digest)", got, want)
	}
	if got, want := recs[2].ResultDigest, obs.ResultDigest(report.Body.Bytes()); got != want {
		t.Errorf("report digest %s, want %s", got, want)
	}
	// The scoped record's fingerprint differs from the unfiltered one:
	// provenance pins the slice, not just the base corpus.
	if recs[0].Fingerprint == recs[1].Fingerprint {
		t.Error("filtered and unfiltered scopes share a fingerprint")
	}

	// Flip one byte of the middle record: verification must fail and
	// name it.
	mutated := append([]byte(nil), data...)
	idx := strings.Index(string(mutated), `"analysis":"clusters"`)
	if idx < 0 {
		t.Fatal("mutation target not found")
	}
	mutated[idx+len(`"analysis":"c`)] ^= 0x01
	if _, verr := obs.VerifyChain(strings.NewReader(string(mutated))); verr == nil {
		t.Error("mutated chain verified")
	} else if ce := new(obs.ChainError); !strings.Contains(verr.Error(), "record 1") || !asChainError(verr, ce) || ce.Index != 1 {
		t.Errorf("mutation blamed: %v, want record 1", verr)
	}
}

func asChainError(err error, target *obs.ChainError) bool {
	ce, ok := err.(*obs.ChainError)
	if ok {
		*target = *ce
	}
	return ok
}

// TestErrorsCountedNotAudited pins the satellite invariant: error
// responses land in the metrics counters but never in the audit chain —
// a 400, a 404, and a gate 503 leave the log empty while the counters
// move.
func TestErrorsCountedNotAudited(t *testing.T) {
	gateEnter, gateRelease := registerGateProbe()
	s, audit, path := auditServer(t, Config{MaxInFlight: 1})

	if rec := get(t, s, "/v1/analyses/clusters?k=abc"); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad param status = %d", rec.Code)
	}
	if rec := get(t, s, "/v1/analyses/nope"); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown analysis status = %d", rec.Code)
	}

	// A gate 503 on an analysis path: the request never reaches the
	// handler, so nothing attributable was served.
	done := make(chan int, 1)
	go func() {
		done <- get(t, s, "/v1/analyses/serve_gate_probe").Code
	}()
	<-gateEnter
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodGet, "/v1/analyses/funnel", nil).WithContext(ctx)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("gated status = %d, want 503", rec.Code)
	}
	close(gateRelease)
	if code := <-done; code != http.StatusOK {
		t.Fatalf("parked probe finished with %d", code)
	}

	st := s.Stats()
	if st.ClientErrors != 2 {
		t.Errorf("client_errors = %d, want 2", st.ClientErrors)
	}
	if st.RejectedBusy != 1 {
		t.Errorf("rejected_busy = %d, want 1", st.RejectedBusy)
	}
	if err := audit.Close(); err != nil {
		t.Fatal(err)
	}
	// Exactly one record: the probe's eventual 200. The 400, 404, and
	// 503 appended nothing.
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	res, verr := obs.VerifyChain(f)
	if verr != nil {
		t.Fatal(verr)
	}
	if res.Records != 1 {
		t.Errorf("chained %d records, want 1 (only the probe's 200)", res.Records)
	}
}

// TestAuditSurvivesRestart: a server over a reopened log continues the
// chain — records from both processes verify as one sequence.
func TestAuditSurvivesRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "audit.log")
	for i := 0; i < 2; i++ {
		audit, err := obs.OpenAuditLog(path, obs.AuditOptions{})
		if err != nil {
			t.Fatalf("open %d: %v", i, err)
		}
		s, _ := testServer(t, Config{Audit: audit})
		if rec := get(t, s, "/v1/analyses/funnel"); rec.Code != http.StatusOK {
			t.Fatalf("run %d status = %d", i, rec.Code)
		}
		if err := audit.Close(); err != nil {
			t.Fatal(err)
		}
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	res, verr := obs.VerifyChain(f)
	if verr != nil {
		t.Fatalf("restarted chain broken: %v", verr)
	}
	if res.Records != 2 {
		t.Errorf("chained %d records across restarts, want 2", res.Records)
	}
}
