package serve

import (
	"sync/atomic"
	"time"

	"repro/internal/analysis"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/obs"
)

// counters holds the gate-owned serving metrics. Request, 304, and
// error counts live in the server's obs.Collector (the same source the
// /metrics exposition reads), so the two surfaces can never disagree.
type counters struct {
	rejected atomic.Int64 // 503s from the concurrency gate
	inFlight atomic.Int64
}

// AuditStats reports the audit log's state in /v1/stats.
type AuditStats struct {
	// Path of the chained log file.
	Path string `json:"path"`
	// Records chained over the process lifetime.
	Records int64 `json:"records"`
}

// StatsSnapshot is one point-in-time reading of the serving metrics,
// the /v1/stats response body.
//
// Self-count rule: a snapshot includes only requests that finished
// before it was taken. The /v1/stats request that carries a snapshot is
// still in flight while the snapshot is assembled, so it is never
// included — two back-to-back /v1/stats calls with no other traffic
// report Requests of N and N+1, not N+1 and N+2.
type StatsSnapshot struct {
	// StartedAt is the server construction time, RFC3339Nano UTC.
	StartedAt string `json:"started_at"`
	// UptimeSeconds since the server was constructed.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Requests served (all endpoints, all statuses) — completed
	// requests only, per the self-count rule above.
	Requests int64 `json:"requests"`
	// NotModified counts 304 responses — traffic served with zero
	// recomputation.
	NotModified int64 `json:"not_modified"`
	// ClientErrors counts 4xx responses (bad filters, unknown analyses,
	// rejected parameters).
	ClientErrors int64 `json:"client_errors"`
	// Errors counts 5xx responses.
	Errors int64 `json:"errors"`
	// RejectedBusy counts requests whose client gave up while waiting
	// at the concurrency gate.
	RejectedBusy int64 `json:"rejected_busy"`
	// InFlight is the number of requests currently inside the gate.
	InFlight int64 `json:"in_flight"`
	// PoolEngines is the number of resident scope engines; PoolCapacity
	// is the LRU bound they never exceed, so occupancy is
	// PoolEngines/PoolCapacity without knowing the server's config.
	PoolEngines  int `json:"pool_engines"`
	PoolCapacity int `json:"pool_capacity"`
	// EngineBuilds counts engines built over the server's lifetime
	// (PoolEngines plus evicted ones; single-flight keeps this at one
	// per cold scope no matter the concurrency).
	EngineBuilds int64 `json:"engine_builds"`
	// PoolEvictions counts scopes dropped past the LRU bound.
	PoolEvictions int64 `json:"pool_evictions"`
	// PoolHits counts requests that found their scope engine resident;
	// PoolMisses ones that inserted a fresh pool entry; PoolJoins ones
	// that waited on another request's single-flight build.
	PoolHits   int64 `json:"pool_hits"`
	PoolMisses int64 `json:"pool_misses"`
	PoolJoins  int64 `json:"pool_joins"`
	// Analyses is the registry size, read live so late registrations
	// stay consistent with the /v1/analyses listing.
	Analyses int `json:"analyses"`
	// Stages breaks serving time down by lifecycle stage: queue wait
	// and serialize observed per request, engine build / ingest /
	// compute observed once per actual event. Bucketed percentiles are
	// histogram estimates (±2× bucket resolution).
	Stages []obs.StageSummary `json:"stages,omitempty"`
	// AnalysisLatency is the end-to-end request latency per served
	// analysis, same histogram estimates.
	AnalysisLatency []obs.AnalysisSummary `json:"analysis_latency,omitempty"`
	// Audit reports the hash-chained audit log, when enabled.
	Audit *AuditStats `json:"audit,omitempty"`
	// Traces reports the request-trace ring, when tracing is enabled.
	Traces *TraceStats `json:"traces,omitempty"`
	// Live reports the append plane, when live ingestion is enabled.
	Live *LiveStats `json:"live,omitempty"`
}

// LiveStats reports the live-ingestion plane in /v1/stats.
type LiveStats struct {
	// Generation is the corpus generation: 0 at boot, bumped once per
	// absorbed append. Every bump rolls every scope's ETag.
	Generation uint64 `json:"generation"`
	// Appends counts absorbed appends (POST /v1/runs bodies and watcher
	// deltas); AppendedRuns counts the runs they carried.
	Appends      int64 `json:"appends"`
	AppendedRuns int64 `json:"appended_runs"`
}

// TraceStats reports the trace ring's state in /v1/stats.
type TraceStats struct {
	// Capacity is the ring bound (resident traces never exceed it).
	Capacity int `json:"capacity"`
	// Recorded counts traces pushed over the process lifetime,
	// including ones since overwritten.
	Recorded uint64 `json:"recorded"`
}

// Stats returns a snapshot of the serving metrics.
func (s *Server) Stats() StatsSnapshot {
	sum := s.metrics.Summarize()
	snap := StatsSnapshot{
		StartedAt:       s.started.UTC().Format(time.RFC3339Nano),
		UptimeSeconds:   time.Since(s.started).Seconds(),
		Requests:        s.metrics.Requests(),
		NotModified:     s.metrics.NotModified(),
		ClientErrors:    s.metrics.ClientErrors(),
		Errors:          s.metrics.ServerErrors(),
		RejectedBusy:    s.counters.rejected.Load(),
		InFlight:        s.counters.inFlight.Load(),
		PoolEngines:     s.pool.len(),
		PoolCapacity:    s.pool.max,
		EngineBuilds:    s.pool.builds.Load(),
		PoolEvictions:   s.pool.evictions.Load(),
		PoolHits:        s.pool.hits.Load(),
		PoolMisses:      s.pool.misses.Load(),
		PoolJoins:       s.pool.joins.Load(),
		Analyses:        len(analysis.Names()),
		Stages:          sum.Stages,
		AnalysisLatency: sum.Analyses,
	}
	if s.audit != nil {
		snap.Audit = &AuditStats{Path: s.audit.Path(), Records: s.audit.Records()}
	}
	if s.traces != nil {
		snap.Traces = &TraceStats{Capacity: s.traces.Capacity(), Recorded: s.traces.Recorded()}
	}
	if s.live != nil {
		snap.Live = &LiveStats{
			Generation:   s.live.Generation(),
			Appends:      s.pool.appends.Load(),
			AppendedRuns: s.pool.appendedRuns.Load(),
		}
	}
	return snap
}

// gauges assembles the exposition's counter/gauge values from the same
// sources Stats reads.
func (s *Server) gauges() obs.ServerGauges {
	rings := cluster.MemoRingCounters()
	pc := core.ParseCacheCounters()
	g := obs.ServerGauges{
		Requests:      s.metrics.Requests(),
		NotModified:   s.metrics.NotModified(),
		ClientErrors:  s.metrics.ClientErrors(),
		ServerErrors:  s.metrics.ServerErrors(),
		RejectedBusy:  s.counters.rejected.Load(),
		InFlight:      s.counters.inFlight.Load(),
		PoolEngines:   s.pool.len(),
		PoolCapacity:  s.pool.max,
		EngineBuilds:  s.pool.builds.Load(),
		PoolEvictions: s.pool.evictions.Load(),
		UptimeSeconds: time.Since(s.started).Seconds(),
		Analyses:      len(analysis.Names()),

		PoolHits:                  s.pool.hits.Load(),
		PoolMisses:                s.pool.misses.Load(),
		PoolJoins:                 s.pool.joins.Load(),
		PoolEvictionsBuildFailed:  s.pool.evictBuildFailed.Load(),
		PoolEvictionsIngestFailed: s.pool.evictIngestFailed.Load(),

		MemoRings: []obs.MemoRingGauge{
			{Ring: "partition", Hits: rings.Partition.Hits,
				Misses: rings.Partition.Misses, Evictions: rings.Partition.Evictions},
			{Ring: "sweep", Hits: rings.Sweep.Hits,
				Misses: rings.Sweep.Misses, Evictions: rings.Sweep.Evictions},
			{Ring: "warm", Hits: rings.Warm.Hits,
				Misses: rings.Warm.Misses, Evictions: rings.Warm.Evictions},
		},
		ParseCacheHits:          pc.Hits,
		ParseCacheMisses:        pc.Misses,
		ParseCacheInvalidations: pc.Invalidations,
		ParseCachePrunes:        pc.Prunes,
	}
	if s.audit != nil {
		g.AuditEnabled = true
		g.AuditRecords = s.audit.Records()
		g.AuditQueueDepth = int64(s.audit.QueueDepth())
		fs := s.audit.FlushStats()
		g.AuditFlushesBatch = fs.Batch
		g.AuditFlushesInterval = fs.Interval
		g.AuditFlushesClose = fs.Close
		g.AuditFlushedRecords = fs.FlushedRecords
	}
	if s.traces != nil {
		g.TraceCapacity = s.traces.Capacity()
		g.TracesRecorded = int64(s.traces.Recorded())
	}
	if s.live != nil {
		g.LiveEnabled = true
		g.Generation = s.live.Generation()
		g.AppendsTotal = s.pool.appends.Load()
		g.AppendedRunsTotal = s.pool.appendedRuns.Load()
	}
	return g
}
