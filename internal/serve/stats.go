package serve

import (
	"sync/atomic"
	"time"

	"repro/internal/analysis"
)

// counters aggregates the serving metrics behind /v1/stats. All fields
// are updated atomically from the request path.
type counters struct {
	requests    atomic.Int64
	notModified atomic.Int64
	errors      atomic.Int64 // responses with status >= 500
	rejected    atomic.Int64 // 503s from the concurrency gate
	inFlight    atomic.Int64
}

// StatsSnapshot is one point-in-time reading of the serving metrics,
// the /v1/stats response body.
type StatsSnapshot struct {
	// UptimeSeconds since the server was constructed.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Requests served (all endpoints, all statuses).
	Requests int64 `json:"requests"`
	// NotModified counts 304 responses — traffic served with zero
	// recomputation.
	NotModified int64 `json:"not_modified"`
	// Errors counts 5xx responses.
	Errors int64 `json:"errors"`
	// RejectedBusy counts requests whose client gave up while waiting
	// at the concurrency gate.
	RejectedBusy int64 `json:"rejected_busy"`
	// InFlight is the number of requests currently inside the gate.
	InFlight int64 `json:"in_flight"`
	// PoolEngines is the number of resident scope engines.
	PoolEngines int `json:"pool_engines"`
	// EngineBuilds counts engines built over the server's lifetime
	// (PoolEngines plus evicted ones; single-flight keeps this at one
	// per cold scope no matter the concurrency).
	EngineBuilds int64 `json:"engine_builds"`
	// PoolEvictions counts scopes dropped past the LRU bound.
	PoolEvictions int64 `json:"pool_evictions"`
	// Analyses is the registry size, read live so late registrations
	// stay consistent with the /v1/analyses listing.
	Analyses int `json:"analyses"`
}

// Stats returns a snapshot of the serving metrics.
func (s *Server) Stats() StatsSnapshot {
	return StatsSnapshot{
		UptimeSeconds: time.Since(s.started).Seconds(),
		Requests:      s.counters.requests.Load(),
		NotModified:   s.counters.notModified.Load(),
		Errors:        s.counters.errors.Load(),
		RejectedBusy:  s.counters.rejected.Load(),
		InFlight:      s.counters.inFlight.Load(),
		PoolEngines:   s.pool.len(),
		EngineBuilds:  s.pool.builds.Load(),
		PoolEvictions: s.pool.evictions.Load(),
		Analyses:      len(analysis.Names()),
	}
}
