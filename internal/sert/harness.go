package sert

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/ssj"
)

// Config controls a suite run.
type Config struct {
	// Workers is the number of goroutines per worklet.
	Workers int
	// IntervalDuration is the length of each measured interval.
	IntervalDuration time.Duration
	// Intensities is the per-worklet load ladder, descending fractions
	// of the calibrated maximum (the real SERT uses 100/75/50/25 for
	// CPU worklets).
	Intensities []float64
	// Seed makes worker state deterministic.
	Seed int64
	// SamplePeriod is the meter sampling cadence.
	SamplePeriod time.Duration
}

// DefaultConfig returns a short-but-real configuration.
func DefaultConfig(workers int) Config {
	return Config{
		Workers:          workers,
		IntervalDuration: 100 * time.Millisecond,
		Intensities:      []float64{1.0, 0.75, 0.5, 0.25},
		Seed:             1,
		SamplePeriod:     5 * time.Millisecond,
	}
}

// Validate reports the first unusable parameter.
func (c Config) Validate() error {
	switch {
	case c.Workers < 1:
		return fmt.Errorf("sert: need ≥1 worker")
	case c.IntervalDuration <= 0:
		return fmt.Errorf("sert: non-positive interval")
	case len(c.Intensities) == 0:
		return fmt.Errorf("sert: no intensities")
	}
	for _, u := range c.Intensities {
		if u <= 0 || u > 1 {
			return fmt.Errorf("sert: intensity %v outside (0,1]", u)
		}
	}
	return nil
}

// LevelResult is one measured interval of one worklet.
type LevelResult struct {
	Intensity float64
	OpsPerSec float64
	AvgWatts  float64
	// Efficiency is OpsPerSec/AvgWatts.
	Efficiency float64
}

// WorkletResult aggregates one worklet's ladder.
type WorkletResult struct {
	Name   string
	Domain Domain
	Levels []LevelResult
	// Score is the geometric mean of reference-normalized efficiencies.
	Score float64
}

// Result is a full suite run.
type Result struct {
	Worklets []WorkletResult
	// DomainScores are geometric means of the domain's worklet scores.
	DomainScores map[Domain]float64
	// Overall is the weighted geometric mean across domains.
	Overall float64
}

// DefaultSuite returns the standard worklet set.
func DefaultSuite() []Worklet {
	return []Worklet{
		CryptoWorklet{}, CompressWorklet{}, SortWorklet{}, HashWorklet{},
		SSJWorklet{},
		FloodWorklet{}, CapacityWorklet{},
		SequentialIOWorklet{}, RandomIOWorklet{},
	}
}

// Run executes the suite: for each worklet, a full-speed calibration
// interval followed by the intensity ladder, each interval measured
// through the meter.
func Run(cfg Config, suite []Worklet, meter ssj.Meter) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(suite) == 0 {
		return nil, fmt.Errorf("sert: empty suite")
	}
	if meter == nil {
		return nil, fmt.Errorf("sert: nil meter")
	}
	res := &Result{DomainScores: map[Domain]float64{}}
	for wi, w := range suite {
		wr, err := runWorklet(cfg, w, int64(wi), meter)
		if err != nil {
			return nil, fmt.Errorf("sert: worklet %s: %w", w.Name(), err)
		}
		res.Worklets = append(res.Worklets, wr)
	}

	byDomain := map[Domain][]float64{}
	for _, wr := range res.Worklets {
		byDomain[wr.Domain] = append(byDomain[wr.Domain], wr.Score)
	}
	var domVals, domWeights []float64
	for d := Domain(0); d < numDomains; d++ {
		scores, ok := byDomain[d]
		if !ok {
			continue
		}
		ds := geoMean(scores)
		res.DomainScores[d] = ds
		domVals = append(domVals, ds)
		domWeights = append(domWeights, DomainWeights[d])
	}
	res.Overall = weightedGeoMean(domVals, domWeights)
	return res, nil
}

func runWorklet(cfg Config, w Worklet, widx int64, meter ssj.Meter) (WorkletResult, error) {
	states := make([]WorkletState, cfg.Workers)
	for i := range states {
		states[i] = w.NewState(uint64(cfg.Seed)*0x9E3779B9 + uint64(widx)*0xBF58476D + uint64(i))
	}
	wr := WorkletResult{Name: w.Name(), Domain: w.Domain()}

	// Calibration: full speed, not scored.
	calOps, _, err := interval(cfg, states, 1.0, 0, meter)
	if err != nil {
		return wr, err
	}
	if calOps <= 0 {
		return wr, fmt.Errorf("calibration produced no throughput")
	}

	var normEffs []float64
	for _, u := range cfg.Intensities {
		target := calOps * u
		ops, watts, err := interval(cfg, states, u, target, meter)
		if err != nil {
			return wr, err
		}
		lr := LevelResult{Intensity: u, OpsPerSec: ops, AvgWatts: watts}
		if watts > 0 {
			lr.Efficiency = ops / watts
		}
		wr.Levels = append(wr.Levels, lr)
		normEffs = append(normEffs, lr.Efficiency/w.RefOpsPerWatt())
	}
	wr.Score = geoMean(normEffs)
	return wr, nil
}

// interval runs one measured interval. target is the paced ops/s
// (0 = full speed).
func interval(cfg Config, states []WorkletState, u, target float64, meter ssj.Meter) (opsPerSec, watts float64, err error) {
	meter.SetLoad(u)
	if err := meter.Start(); err != nil {
		return 0, 0, err
	}
	stopSampling := make(chan struct{})
	var samplerWG sync.WaitGroup
	if s, ok := meter.(interface{ Sample() }); ok && cfg.SamplePeriod > 0 {
		samplerWG.Add(1)
		go func() {
			defer samplerWG.Done()
			tick := time.NewTicker(cfg.SamplePeriod)
			defer tick.Stop()
			for {
				select {
				case <-stopSampling:
					return
				case <-tick.C:
					s.Sample()
				}
			}
		}()
	}

	start := time.Now()
	perWorker := target / float64(len(states))
	counts := make([]int64, len(states))
	var wg sync.WaitGroup
	for i, st := range states {
		wg.Add(1)
		go func(i int, st WorkletState) {
			defer wg.Done()
			counts[i] = pacedLoop(st, start, cfg.IntervalDuration, perWorker, target == 0)
		}(i, st)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(stopSampling)
	samplerWG.Wait()
	w, err := meter.Stop()
	if err != nil {
		return 0, 0, err
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	return float64(total) / elapsed.Seconds(), w, nil
}

// pacedLoop is the duty-cycled batch loop shared by all worklets.
func pacedLoop(st WorkletState, start time.Time, d time.Duration, rate float64, fullSpeed bool) int64 {
	deadline := start.Add(d)
	var done int64
	for {
		now := time.Now()
		if now.After(deadline) {
			return done
		}
		if fullSpeed {
			done += st.Batch()
			continue
		}
		allowed := now.Sub(start).Seconds() * rate
		if float64(done) < allowed {
			done += st.Batch()
			continue
		}
		time.Sleep(100 * time.Microsecond)
	}
}
