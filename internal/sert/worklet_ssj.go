package sert

import "repro/internal/ssj"

// SSJWorklet runs the SPECpower ssj transaction mix as a SERT CPU
// worklet — the real SERT likewise ships a "Hybrid SSJ" worklet reusing
// the power benchmark's workload.
type SSJWorklet struct{}

// Name implements Worklet.
func (SSJWorklet) Name() string { return "HybridSSJ" }

// Domain implements Worklet.
func (SSJWorklet) Domain() Domain { return DomainCPU }

// RefOpsPerWatt implements Worklet.
func (SSJWorklet) RefOpsPerWatt() float64 { return 2000 }

type ssjState struct {
	k *ssj.Kernel
}

// NewState implements Worklet.
func (SSJWorklet) NewState(seed uint64) WorkletState {
	return &ssjState{k: ssj.NewKernel(seed)}
}

// Batch implements WorkletState: 64 mixed transactions.
func (s *ssjState) Batch() int64 {
	return s.k.Do(64)
}
