package sert

// FloodWorklet mirrors SERT's Flood: sequential memory bandwidth via
// large block copies (a STREAM-like kernel).
type FloodWorklet struct{}

// Name implements Worklet.
func (FloodWorklet) Name() string { return "Flood" }

// Domain implements Worklet.
func (FloodWorklet) Domain() Domain { return DomainMemory }

// RefOpsPerWatt implements Worklet.
func (FloodWorklet) RefOpsPerWatt() float64 { return 40 }

type floodState struct {
	a, b []uint64
}

// NewState implements Worklet. Each worker owns ~8 MB, comfortably
// exceeding typical L2 so the traffic reaches shared cache/DRAM.
func (FloodWorklet) NewState(seed uint64) WorkletState {
	const words = 512 * 1024
	s := &floodState{a: make([]uint64, words), b: make([]uint64, words)}
	r := xorshift(seed | 1)
	for i := range s.a {
		s.a[i] = r.next()
	}
	return s
}

// Batch implements WorkletState: triad-style copy+scale pass.
func (s *floodState) Batch() int64 {
	for i := range s.a {
		s.b[i] = s.a[i]*3 + 1
	}
	s.a, s.b = s.b, s.a
	return 1
}

// CapacityWorklet mirrors SERT's Capacity: random access over a working
// set larger than cache, stressing memory latency.
type CapacityWorklet struct{}

// Name implements Worklet.
func (CapacityWorklet) Name() string { return "Capacity" }

// Domain implements Worklet.
func (CapacityWorklet) Domain() Domain { return DomainMemory }

// RefOpsPerWatt implements Worklet.
func (CapacityWorklet) RefOpsPerWatt() float64 { return 25 }

type capacityState struct {
	table []uint64
	idx   uint64
}

// NewState implements Worklet: a pointer-chase table with a random
// permutation cycle.
func (CapacityWorklet) NewState(seed uint64) WorkletState {
	const n = 1 << 20 // 8 MB of uint64 indices
	s := &capacityState{table: make([]uint64, n)}
	// Sattolo's algorithm: a single cycle through the whole table.
	for i := range s.table {
		s.table[i] = uint64(i)
	}
	r := xorshift(seed | 1)
	for i := n - 1; i > 0; i-- {
		j := int(r.next() % uint64(i))
		s.table[i], s.table[j] = s.table[j], s.table[i]
	}
	return s
}

// Batch implements WorkletState: 1024 dependent loads.
func (s *capacityState) Batch() int64 {
	idx := s.idx
	for k := 0; k < 1024; k++ {
		idx = s.table[idx%uint64(len(s.table))]
	}
	s.idx = idx
	return 1
}
