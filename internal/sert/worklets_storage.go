package sert

import "time"

// The storage worklets run against a simulated block device: an
// in-memory image with per-operation service latencies modelled on a
// datacenter SSD. The paper's corpus machines idle their disks during
// ssj, but SERT rates storage explicitly, so the substrate exists here
// too — simulated, per DESIGN.md's substitution rules, because the
// repository must not depend on host-disk behaviour.

const (
	storageBlockSize = 4096
	storageBlocks    = 4096 // 16 MB image per worker
	seqLatency       = 8 * time.Microsecond
	randLatency      = 25 * time.Microsecond
)

// SequentialIOWorklet streams through the image in order.
type SequentialIOWorklet struct{}

// Name implements Worklet.
func (SequentialIOWorklet) Name() string { return "SequentialIO" }

// Domain implements Worklet.
func (SequentialIOWorklet) Domain() Domain { return DomainStorage }

// RefOpsPerWatt implements Worklet.
func (SequentialIOWorklet) RefOpsPerWatt() float64 { return 300 }

type seqIOState struct {
	dev  *simDisk
	next int
}

// NewState implements Worklet.
func (SequentialIOWorklet) NewState(seed uint64) WorkletState {
	return &seqIOState{dev: newSimDisk(seed)}
}

// Batch implements WorkletState: read 8 consecutive blocks.
func (s *seqIOState) Batch() int64 {
	for k := 0; k < 8; k++ {
		s.dev.read(s.next, seqLatency)
		s.next = (s.next + 1) % storageBlocks
	}
	return 8
}

// RandomIOWorklet issues 4K reads at random offsets.
type RandomIOWorklet struct{}

// Name implements Worklet.
func (RandomIOWorklet) Name() string { return "RandomIO" }

// Domain implements Worklet.
func (RandomIOWorklet) Domain() Domain { return DomainStorage }

// RefOpsPerWatt implements Worklet.
func (RandomIOWorklet) RefOpsPerWatt() float64 { return 120 }

type randIOState struct {
	dev *simDisk
	rng xorshift
}

// NewState implements Worklet.
func (RandomIOWorklet) NewState(seed uint64) WorkletState {
	return &randIOState{dev: newSimDisk(seed), rng: xorshift(seed | 1)}
}

// Batch implements WorkletState: 4 random-block reads.
func (s *randIOState) Batch() int64 {
	for k := 0; k < 4; k++ {
		s.dev.read(int(s.rng.next()%storageBlocks), randLatency)
	}
	return 4
}

// simDisk is the in-memory device with service-time simulation.
type simDisk struct {
	image []byte
	sink  byte
}

func newSimDisk(seed uint64) *simDisk {
	d := &simDisk{image: make([]byte, storageBlockSize*storageBlocks)}
	r := xorshift(seed | 1)
	for i := 0; i < len(d.image); i += 64 {
		d.image[i] = byte(r.next())
	}
	return d
}

// read touches one block and burns the device's service latency. The
// latency is simulated with a busy-wait over a monotonic deadline so
// durations well under the scheduler's sleep resolution still register.
func (d *simDisk) read(block int, latency time.Duration) {
	off := block * storageBlockSize
	var acc byte
	for i := off; i < off+storageBlockSize; i += 64 {
		acc ^= d.image[i]
	}
	d.sink = acc
	deadline := time.Now().Add(latency)
	for time.Now().Before(deadline) {
	}
}
