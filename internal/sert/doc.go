// Package sert implements a miniature Server Efficiency Rating Tool
// (SERT) suite. The paper's background section notes that the SPECpower
// committee maintains, beyond SPECpower_ssj2008 itself, "the
// definitions and tool infrastructures for power measurements …, the
// SERT suite, and the Chauffeur Worklet Development Kit"; this package
// reproduces that substrate in Go.
//
// A SERT run executes a set of worklets — small, self-contained
// workloads grouped into CPU, Memory and Storage domains — each at a
// ladder of target intensities, measuring throughput and (via the same
// ssj.Meter interface the benchmark engine uses) power. Per-worklet
// efficiency scores are normalized against reference values and
// aggregated with geometric means into domain scores and one overall
// rating, mirroring the real tool's scoring hierarchy.
package sert
