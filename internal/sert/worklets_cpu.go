package sert

import (
	"bytes"
	"compress/flate"
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha256"
	"sort"
)

// CryptoWorklet mirrors SERT's CryptoAES: AES-CBC encrypt/decrypt of
// small buffers.
type CryptoWorklet struct{}

// Name implements Worklet.
func (CryptoWorklet) Name() string { return "CryptoAES" }

// Domain implements Worklet.
func (CryptoWorklet) Domain() Domain { return DomainCPU }

// RefOpsPerWatt implements Worklet.
func (CryptoWorklet) RefOpsPerWatt() float64 { return 60 }

type cryptoState struct {
	enc cipher.BlockMode
	dec cipher.BlockMode
	buf []byte
}

// NewState implements Worklet.
func (CryptoWorklet) NewState(seed uint64) WorkletState {
	key := make([]byte, 32)
	iv := make([]byte, aes.BlockSize)
	r := xorshift(seed | 1)
	for i := range key {
		key[i] = byte(r.next())
	}
	for i := range iv {
		iv[i] = byte(r.next())
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		panic(err) // cannot happen with a 32-byte key
	}
	buf := make([]byte, 4096)
	for i := range buf {
		buf[i] = byte(r.next())
	}
	return &cryptoState{
		enc: cipher.NewCBCEncrypter(block, iv),
		dec: cipher.NewCBCDecrypter(block, iv),
		buf: buf,
	}
}

// Batch implements WorkletState: one encrypt+decrypt round trip.
func (s *cryptoState) Batch() int64 {
	s.enc.CryptBlocks(s.buf, s.buf)
	s.dec.CryptBlocks(s.buf, s.buf)
	return 2
}

// CompressWorklet mirrors SERT's Compress: DEFLATE a text-like buffer.
type CompressWorklet struct{}

// Name implements Worklet.
func (CompressWorklet) Name() string { return "Compress" }

// Domain implements Worklet.
func (CompressWorklet) Domain() Domain { return DomainCPU }

// RefOpsPerWatt implements Worklet.
func (CompressWorklet) RefOpsPerWatt() float64 { return 4 }

type compressState struct {
	src []byte
	dst bytes.Buffer
	w   *flate.Writer
}

// NewState implements Worklet.
func (CompressWorklet) NewState(seed uint64) WorkletState {
	r := xorshift(seed | 1)
	words := []string{"power", "efficiency", "server", "benchmark", "load", "idle "}
	var src []byte
	for len(src) < 16*1024 {
		src = append(src, words[r.next()%uint64(len(words))]...)
	}
	s := &compressState{src: src}
	w, err := flate.NewWriter(&s.dst, flate.BestSpeed)
	if err != nil {
		panic(err) // level is valid
	}
	s.w = w
	return s
}

// Batch implements WorkletState: one full-buffer compression.
func (s *compressState) Batch() int64 {
	s.dst.Reset()
	s.w.Reset(&s.dst)
	if _, err := s.w.Write(s.src); err != nil {
		panic(err) // bytes.Buffer cannot fail
	}
	if err := s.w.Close(); err != nil {
		panic(err)
	}
	return 1
}

// SortWorklet mirrors SERT's LU/SOR-style integer work with a sort
// kernel over pseudo-random keys.
type SortWorklet struct{}

// Name implements Worklet.
func (SortWorklet) Name() string { return "Sort" }

// Domain implements Worklet.
func (SortWorklet) Domain() Domain { return DomainCPU }

// RefOpsPerWatt implements Worklet.
func (SortWorklet) RefOpsPerWatt() float64 { return 15 }

type sortState struct {
	rng  xorshift
	keys []int
}

// NewState implements Worklet.
func (SortWorklet) NewState(seed uint64) WorkletState {
	return &sortState{rng: xorshift(seed | 1), keys: make([]int, 2048)}
}

// Batch implements WorkletState: refill and sort one buffer.
func (s *sortState) Batch() int64 {
	for i := range s.keys {
		s.keys[i] = int(s.rng.next())
	}
	sort.Ints(s.keys)
	return 1
}

// HashWorklet is a SHA-256 digest kernel (SERT's SHA256 worklet).
type HashWorklet struct{}

// Name implements Worklet.
func (HashWorklet) Name() string { return "SHA256" }

// Domain implements Worklet.
func (HashWorklet) Domain() Domain { return DomainCPU }

// RefOpsPerWatt implements Worklet.
func (HashWorklet) RefOpsPerWatt() float64 { return 150 }

type hashState struct {
	buf [4096]byte
	sum [32]byte
}

// NewState implements Worklet.
func (HashWorklet) NewState(seed uint64) WorkletState {
	s := &hashState{}
	r := xorshift(seed | 1)
	for i := range s.buf {
		s.buf[i] = byte(r.next())
	}
	return s
}

// Batch implements WorkletState: hash the buffer, feeding the digest
// back so the work cannot be hoisted.
func (s *hashState) Batch() int64 {
	s.sum = sha256.Sum256(s.buf[:])
	copy(s.buf[:32], s.sum[:])
	return 1
}

// xorshift is the same tiny PRNG the ssj engine uses.
type xorshift uint64

func (x *xorshift) next() uint64 {
	v := uint64(*x)
	if v == 0 {
		v = 0x9E3779B97F4A7C15
	}
	v ^= v >> 12
	v ^= v << 25
	v ^= v >> 27
	*x = xorshift(v)
	return v * 0x2545F4914F6CDD1D
}
