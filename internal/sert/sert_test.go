package sert

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/power"
	"repro/internal/ssj"
)

func testMeter() *ssj.SimMeter {
	curve := power.Curve{
		FullWatts: 400,
		Prof: power.Profile{IdleFrac: 0.2, LowIntercept: 0.3, Beta: 0.85,
			TurboWeight: 0.25, TurboGamma: 3},
	}
	return ssj.NewSimMeter(curve, 0, 1)
}

func fastConfig() Config {
	cfg := DefaultConfig(2)
	cfg.IntervalDuration = 15 * time.Millisecond
	cfg.Intensities = []float64{1.0, 0.5}
	cfg.SamplePeriod = 2 * time.Millisecond
	return cfg
}

func TestConfigValidate(t *testing.T) {
	if err := fastConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Workers = 0 },
		func(c *Config) { c.IntervalDuration = 0 },
		func(c *Config) { c.Intensities = nil },
		func(c *Config) { c.Intensities = []float64{1.5} },
		func(c *Config) { c.Intensities = []float64{0} },
	}
	for i, mut := range bad {
		c := fastConfig()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d validated", i)
		}
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{}, DefaultSuite(), testMeter()); err == nil {
		t.Error("invalid config should error")
	}
	if _, err := Run(fastConfig(), nil, testMeter()); err == nil {
		t.Error("empty suite should error")
	}
	if _, err := Run(fastConfig(), DefaultSuite(), nil); err == nil {
		t.Error("nil meter should error")
	}
}

func TestDefaultSuiteCoversAllDomains(t *testing.T) {
	seen := map[Domain]int{}
	names := map[string]bool{}
	for _, w := range DefaultSuite() {
		seen[w.Domain()]++
		if names[w.Name()] {
			t.Errorf("duplicate worklet %q", w.Name())
		}
		names[w.Name()] = true
		if w.RefOpsPerWatt() <= 0 {
			t.Errorf("%s: non-positive reference", w.Name())
		}
	}
	for d := Domain(0); d < numDomains; d++ {
		if seen[d] == 0 {
			t.Errorf("domain %v has no worklets", d)
		}
	}
}

func TestWorkletBatchesDoWork(t *testing.T) {
	for _, w := range DefaultSuite() {
		st := w.NewState(42)
		var ops int64
		for i := 0; i < 5; i++ {
			n := st.Batch()
			if n <= 0 {
				t.Errorf("%s: batch returned %d", w.Name(), n)
			}
			ops += n
		}
		if ops <= 0 {
			t.Errorf("%s: no ops", w.Name())
		}
	}
}

func TestSuiteRunScores(t *testing.T) {
	res, err := Run(fastConfig(), DefaultSuite(), testMeter())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Worklets) != len(DefaultSuite()) {
		t.Fatalf("worklet results = %d", len(res.Worklets))
	}
	for _, wr := range res.Worklets {
		if len(wr.Levels) != 2 {
			t.Errorf("%s: levels = %d", wr.Name, len(wr.Levels))
		}
		if wr.Score <= 0 || math.IsNaN(wr.Score) {
			t.Errorf("%s: score = %v", wr.Name, wr.Score)
		}
		for _, lv := range wr.Levels {
			if lv.OpsPerSec <= 0 || lv.AvgWatts <= 0 {
				t.Errorf("%s @%v: ops=%v watts=%v", wr.Name, lv.Intensity,
					lv.OpsPerSec, lv.AvgWatts)
			}
		}
	}
	for d := Domain(0); d < numDomains; d++ {
		if s, ok := res.DomainScores[d]; !ok || s <= 0 {
			t.Errorf("domain %v score = %v", d, res.DomainScores[d])
		}
	}
	if res.Overall <= 0 || math.IsNaN(res.Overall) {
		t.Errorf("overall = %v", res.Overall)
	}
}

func TestPacingReducesThroughput(t *testing.T) {
	cfg := fastConfig()
	cfg.IntervalDuration = 40 * time.Millisecond
	cfg.Intensities = []float64{1.0, 0.25}
	res, err := Run(cfg, []Worklet{HashWorklet{}}, testMeter())
	if err != nil {
		t.Fatal(err)
	}
	levels := res.Worklets[0].Levels
	if levels[1].OpsPerSec >= levels[0].OpsPerSec*0.6 {
		t.Errorf("25%% intensity achieved %.0f vs full %.0f",
			levels[1].OpsPerSec, levels[0].OpsPerSec)
	}
}

func TestGeoMean(t *testing.T) {
	if got := geoMean([]float64{2, 8}); math.Abs(got-4) > 1e-12 {
		t.Errorf("geoMean = %v, want 4", got)
	}
	if got := geoMean([]float64{5}); got != 5 {
		t.Errorf("geoMean singleton = %v", got)
	}
	if got := geoMean([]float64{1, 0}); got != 0 {
		t.Errorf("zero should poison: %v", got)
	}
	if !math.IsNaN(geoMean(nil)) {
		t.Error("empty should be NaN")
	}
	if !math.IsNaN(geoMean([]float64{1, math.NaN()})) {
		t.Error("NaN should propagate")
	}
}

func TestWeightedGeoMean(t *testing.T) {
	// Equal weights reduce to the plain geometric mean.
	a := weightedGeoMean([]float64{2, 8}, []float64{1, 1})
	if math.Abs(a-4) > 1e-12 {
		t.Errorf("equal-weight = %v", a)
	}
	// All weight on one value returns that value.
	b := weightedGeoMean([]float64{2, 8}, []float64{1, 1e-12})
	if math.Abs(b-2) > 0.01 {
		t.Errorf("skewed = %v", b)
	}
	if !math.IsNaN(weightedGeoMean([]float64{1}, []float64{1, 2})) {
		t.Error("length mismatch should be NaN")
	}
}

func TestGeoMeanBounds(t *testing.T) {
	// Property: geomean lies between min and max of positive inputs.
	f := func(raw []float64) bool {
		var vals []float64
		for _, v := range raw {
			v = math.Abs(math.Mod(v, 1000))
			if v > 0.001 {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return true
		}
		g := geoMean(vals)
		lo, hi := vals[0], vals[0]
		for _, v := range vals {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDomainWeightsSumToOne(t *testing.T) {
	var sum float64
	for _, w := range DomainWeights {
		sum += w
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("domain weights sum to %v", sum)
	}
}

func TestDomainStrings(t *testing.T) {
	if DomainCPU.String() != "CPU" || DomainMemory.String() != "Memory" ||
		DomainStorage.String() != "Storage" {
		t.Error("domain names wrong")
	}
}
