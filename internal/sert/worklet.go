package sert

import (
	"fmt"
	"math"
)

// Domain groups worklets the way SERT groups workloads.
type Domain int

// Worklet domains.
const (
	DomainCPU Domain = iota
	DomainMemory
	DomainStorage
	numDomains
)

// String names the domain.
func (d Domain) String() string {
	switch d {
	case DomainCPU:
		return "CPU"
	case DomainMemory:
		return "Memory"
	case DomainStorage:
		return "Storage"
	default:
		return fmt.Sprintf("Domain(%d)", int(d))
	}
}

// DomainWeights are the contribution of each domain to the overall
// score (the real SERT heavily weights CPU).
var DomainWeights = map[Domain]float64{
	DomainCPU:     0.65,
	DomainMemory:  0.30,
	DomainStorage: 0.05,
}

// Worklet is one unit of work. Batch executes a fixed small amount of
// work and returns the operations completed; the harness calls it in a
// loop, pacing by duty-cycling, so implementations must keep a batch in
// the sub-millisecond range and must not retain goroutines.
type Worklet interface {
	Name() string
	Domain() Domain
	// NewState allocates per-worker state (called once per worker).
	NewState(seed uint64) WorkletState
	// RefOpsPerWatt is the reference efficiency the score normalizes
	// against (score 1.0 ≡ reference system).
	RefOpsPerWatt() float64
}

// WorkletState is the per-goroutine execution state of a worklet.
type WorkletState interface {
	// Batch performs one batch and returns ops completed.
	Batch() int64
}

// geoMean returns the geometric mean of positive values; zero or
// negative inputs poison the result to 0, NaNs are rejected.
func geoMean(vals []float64) float64 {
	if len(vals) == 0 {
		return math.NaN()
	}
	var logSum float64
	for _, v := range vals {
		if math.IsNaN(v) {
			return math.NaN()
		}
		if v <= 0 {
			return 0
		}
		logSum += math.Log(v)
	}
	return math.Exp(logSum / float64(len(vals)))
}

// weightedGeoMean returns exp(Σ w·log v / Σ w).
func weightedGeoMean(vals, weights []float64) float64 {
	if len(vals) == 0 || len(vals) != len(weights) {
		return math.NaN()
	}
	var logSum, wSum float64
	for i, v := range vals {
		if math.IsNaN(v) || weights[i] <= 0 {
			return math.NaN()
		}
		if v <= 0 {
			return 0
		}
		logSum += weights[i] * math.Log(v)
		wSum += weights[i]
	}
	if wSum == 0 {
		return math.NaN()
	}
	return math.Exp(logSum / wSum)
}
