package sert

import "testing"

func TestSSJWorkletDoesTransactionWork(t *testing.T) {
	w := SSJWorklet{}
	if w.Domain() != DomainCPU || w.Name() != "HybridSSJ" {
		t.Fatalf("identity: %v %v", w.Domain(), w.Name())
	}
	st := w.NewState(7)
	var ops int64
	for i := 0; i < 10; i++ {
		ops += st.Batch()
	}
	if ops != 640 {
		t.Errorf("ops = %d, want 640", ops)
	}
	// The underlying kernel accumulates observable state.
	if st.(*ssjState).k.Checksum() == 0 {
		t.Error("transaction work optimized away")
	}
}

func TestSSJWorkletDeterministicMix(t *testing.T) {
	a := SSJWorklet{}.NewState(42).(*ssjState)
	b := SSJWorklet{}.NewState(42).(*ssjState)
	a.k.Do(1000)
	b.k.Do(1000)
	if a.k.Checksum() != b.k.Checksum() {
		t.Error("same seed should produce identical transaction streams")
	}
	c := SSJWorklet{}.NewState(43).(*ssjState)
	c.k.Do(1000)
	if c.k.Checksum() == a.k.Checksum() {
		t.Error("different seeds should diverge")
	}
}
