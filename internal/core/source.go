package core

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/model"
	"repro/internal/parser"
	"repro/internal/synth"
)

// A Source streams a corpus of runs into an Engine. Implementations
// deliver runs one at a time, in a deterministic order, so the engine's
// DatasetBuilder can classify each run as it arrives instead of holding
// the whole corpus in memory first.
//
// Each calls yield sequentially for every run; a non-nil yield error
// stops the stream and is returned. workers bounds any internal
// parallelism (0 = GOMAXPROCS); sources without internal parallelism
// ignore it.
type Source interface {
	// Name describes the source in errors and logs.
	Name() string
	Each(workers int, yield func(*model.Run) error) error
}

// SliceSource streams an in-memory corpus in slice order.
type SliceSource []*model.Run

// Name implements Source.
func (s SliceSource) Name() string { return fmt.Sprintf("slice[%d]", len(s)) }

// Each implements Source.
func (s SliceSource) Each(_ int, yield func(*model.Run) error) error {
	for _, r := range s {
		if err := yield(r); err != nil {
			return err
		}
	}
	return nil
}

// SynthSource generates the synthetic corpus (the stand-in for the
// paper's 1017 downloaded result files) and streams it in submission
// order.
type SynthSource struct {
	Options synth.Options
}

// Name implements Source.
func (s SynthSource) Name() string {
	return fmt.Sprintf("synth(seed=%d)", s.Options.Seed)
}

// Each implements Source.
func (s SynthSource) Each(_ int, yield func(*model.Run) error) error {
	runs, err := synth.Generate(s.Options)
	if err != nil {
		return err
	}
	return SliceSource(runs).Each(0, yield)
}

// DirSource streams every *.txt result file under Dir, parsed across a
// worker pool but delivered in sorted file-name order. At most workers
// parsed runs exist outside the consumer at any time (a token is
// acquired before a file is parsed and released once the run has been
// yielded), so ingesting a corpus much larger than memory is safe.
type DirSource struct {
	Dir string

	// trackHeld, when non-nil, observes the number of parsed runs the
	// source currently holds (test instrumentation for the streaming
	// bound).
	trackHeld func(delta int)
}

// Name implements Source.
func (s DirSource) Name() string { return "dir(" + s.Dir + ")" }

// ListResultFiles returns the sorted result-file paths under dir,
// recursing into subdirectories so sharded corpus layouts
// (corpus/2023/….txt) work. The extension match is case-insensitive
// (.txt, .TXT, …). Paths are sorted as full strings, so the stream
// order is deterministic regardless of layout. Exported because it is
// the single definition of "what counts as a result file": DirSource,
// CachedSource, the fingerprinter, and the speclint data linter must
// all see exactly the same corpus.
func ListResultFiles(dir string) ([]string, error) {
	var paths []string
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.EqualFold(filepath.Ext(d.Name()), ".txt") {
			paths = append(paths, path)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("core: read corpus dir: %w", err)
	}
	sort.Strings(paths)
	return paths, nil
}

// ParseResultFile parses one result file from disk — the single-file
// form of DirSource's loader, exported for callers folding newly
// arrived files into a live corpus (the specserve watcher).
func ParseResultFile(path string) (*model.Run, error) {
	return parseResultFile(path)
}

// parseResultFile parses one result file.
func parseResultFile(path string) (*model.Run, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: open %s: %w", path, err)
	}
	defer f.Close()
	r, err := parser.Parse(f)
	if err != nil {
		return nil, fmt.Errorf("core: parse %s: %w", path, err)
	}
	return r, nil
}

// Each implements Source. Errors are deterministic: the first failing
// file in sorted name order wins, regardless of which worker hit it
// first.
func (s DirSource) Each(workers int, yield func(*model.Run) error) error {
	paths, err := ListResultFiles(s.Dir)
	if err != nil {
		return err
	}
	return eachLoaded(paths, workers, parseResultFile, s.trackHeld, yield)
}

// eachLoaded streams load(path) for every path, in slice order, across
// a bounded worker pool — the shared machinery behind DirSource and
// CachedSource. The streaming bound holds regardless of the load
// function: at most workers loaded-but-unconsumed runs exist at any
// time, and the first error in path order wins.
func eachLoaded(paths []string, workers int, load func(string) (*model.Run, error),
	track func(delta int), yield func(*model.Run) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(paths) {
		workers = len(paths)
	}
	if track == nil {
		track = func(int) {}
	}
	if workers <= 1 {
		for _, p := range paths {
			r, err := load(p)
			if err != nil {
				return err
			}
			track(+1)
			err = yield(r)
			track(-1)
			if err != nil {
				return err
			}
		}
		return nil
	}

	// Parallel ordered streaming. The dispatcher acquires one token per
	// file before handing it to the pool, and the consumer releases the
	// token only after the run has been yielded, so at most workers
	// parsed-but-unconsumed runs exist. Results come back through a
	// per-job buffered channel, read in dispatch (= sorted) order.
	type item struct {
		run *model.Run
		err error
	}
	type job struct {
		path string
		res  chan item
	}
	var (
		tokens  = make(chan struct{}, workers)
		jobs    = make(chan *job, workers)
		ordered = make(chan *job, workers)
		done    = make(chan struct{})
		wg      sync.WaitGroup
	)
	wg.Add(1)
	go func() { // dispatcher
		defer wg.Done()
		defer close(jobs)
		defer close(ordered)
		for _, p := range paths {
			select {
			case tokens <- struct{}{}:
			case <-done:
				return
			}
			j := &job{path: p, res: make(chan item, 1)}
			jobs <- j    // cap == workers ≥ in-flight tokens: never blocks
			ordered <- j // same bound
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				r, err := load(j.path)
				if err == nil {
					track(+1)
				}
				j.res <- item{run: r, err: err}
			}
		}()
	}

	var firstErr error
	for j := range ordered {
		it := <-j.res
		if firstErr == nil {
			if it.err != nil {
				firstErr = it.err
				close(done)
			} else {
				err := yield(it.run)
				if err != nil {
					firstErr = err
					close(done)
				}
			}
		}
		if it.err == nil {
			track(-1)
		}
		<-tokens // release: the run has left the source
	}
	wg.Wait()
	return firstErr
}
