package core

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/model"
	"repro/internal/parser"
	"repro/internal/report"
)

// WriteCorpus renders every run into dir as <ID>.txt, sharding the work
// across workers goroutines (0 = GOMAXPROCS).
func WriteCorpus(dir string, runs []*model.Run, workers int) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("core: create corpus dir: %w", err)
	}
	return forEachParallel(len(runs), workers, func(i int) error {
		r := runs[i]
		path := filepath.Join(dir, r.ID+".txt")
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("core: create %s: %w", path, err)
		}
		if err := report.Render(f, r); err != nil {
			f.Close()
			return fmt.Errorf("core: render %s: %w", path, err)
		}
		return f.Close()
	})
}

// LoadRuns parses every *.txt result file under dir, sharding across
// workers goroutines (0 = GOMAXPROCS). Files are processed in sorted
// name order so the result is deterministic.
func LoadRuns(dir string, workers int) ([]*model.Run, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("core: read corpus dir: %w", err)
	}
	var paths []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".txt") {
			paths = append(paths, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(paths)
	runs := make([]*model.Run, len(paths))
	err = forEachParallel(len(paths), workers, func(i int) error {
		f, err := os.Open(paths[i])
		if err != nil {
			return fmt.Errorf("core: open %s: %w", paths[i], err)
		}
		defer f.Close()
		r, err := parser.Parse(f)
		if err != nil {
			return fmt.Errorf("core: parse %s: %w", paths[i], err)
		}
		runs[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return runs, nil
}

// LoadStudy parses a corpus directory and classifies it.
func LoadStudy(dir string, workers int) (*Study, error) {
	runs, err := LoadRuns(dir, workers)
	if err != nil {
		return nil, err
	}
	return NewStudy(runs), nil
}

// forEachParallel runs fn(0..n-1) on a bounded worker pool and returns
// the first error (all workers drain before returning).
func forEachParallel(n, workers int, fn func(i int) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if n == 0 {
		return nil
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	idx := make(chan int)
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var firstErr error
			for i := range idx {
				if firstErr != nil {
					continue // drain, but do no more work
				}
				firstErr = fn(i)
			}
			errs <- firstErr
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
