package core

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"

	"repro/internal/model"
	"repro/internal/report"
)

// WriteCorpus renders every run into dir as <ID>.txt, sharding the work
// across workers goroutines (0 = GOMAXPROCS).
func WriteCorpus(dir string, runs []*model.Run, workers int) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("core: create corpus dir: %w", err)
	}
	return forEachParallel(len(runs), workers, func(i int) error {
		r := runs[i]
		path := filepath.Join(dir, r.ID+".txt")
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("core: create %s: %w", path, err)
		}
		if err := report.Render(f, r); err != nil {
			f.Close()
			return fmt.Errorf("core: render %s: %w", path, err)
		}
		return f.Close()
	})
}

// LoadRuns parses every *.txt result file under dir, sharding across
// workers goroutines (0 = GOMAXPROCS). Files are processed in sorted
// name order so the result is deterministic. It materializes the whole
// corpus; prefer streaming through DirSource when only the classified
// dataset is needed.
func LoadRuns(dir string, workers int) ([]*model.Run, error) {
	var runs []*model.Run
	err := DirSource{Dir: dir}.Each(workers, func(r *model.Run) error {
		runs = append(runs, r)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return runs, nil
}

// forEachParallel runs fn(0..n-1) on a bounded worker pool. On failure
// it returns the error of the lowest failing index — not whichever
// worker lost the race — so error reporting is deterministic. All
// workers drain before returning; once an error at index i is recorded,
// work at indexes above i may be skipped (indexes below i still run, in
// case one of them fails too).
func forEachParallel(n, workers int, fn func(i int) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if n == 0 {
		return nil
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		mu       sync.Mutex
		firstIdx = -1
		firstErr error
	)
	record := func(i int, err error) {
		mu.Lock()
		if firstIdx == -1 || i < firstIdx {
			firstIdx, firstErr = i, err
		}
		mu.Unlock()
	}
	skippable := func(i int) bool {
		mu.Lock()
		defer mu.Unlock()
		return firstIdx != -1 && i > firstIdx
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if skippable(i) {
					continue
				}
				if err := fn(i); err != nil {
					record(i, err)
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return firstErr
}
