package core

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/model"
	"repro/internal/par"
	"repro/internal/report"
)

// WriteCorpus renders every run into dir as <ID>.txt, sharding the work
// across workers goroutines (0 = GOMAXPROCS).
func WriteCorpus(dir string, runs []*model.Run, workers int) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("core: create corpus dir: %w", err)
	}
	return forEachParallel(len(runs), workers, func(i int) error {
		r := runs[i]
		path := filepath.Join(dir, r.ID+".txt")
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("core: create %s: %w", path, err)
		}
		if err := report.Render(f, r); err != nil {
			f.Close()
			return fmt.Errorf("core: render %s: %w", path, err)
		}
		return f.Close()
	})
}

// LoadRuns parses every *.txt result file under dir, sharding across
// workers goroutines (0 = GOMAXPROCS). Files are processed in sorted
// name order so the result is deterministic. It materializes the whole
// corpus; prefer streaming through DirSource when only the classified
// dataset is needed.
func LoadRuns(dir string, workers int) ([]*model.Run, error) {
	var runs []*model.Run
	err := DirSource{Dir: dir}.Each(workers, func(r *model.Run) error {
		runs = append(runs, r)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return runs, nil
}

// forEachParallel runs fn(0..n-1) on a bounded worker pool with
// lowest-index-deterministic errors. The implementation lives in
// internal/par so the clustering subsystem shares the same pool
// semantics; this wrapper keeps core's internal call sites unchanged.
func forEachParallel(n, workers int, fn func(i int) error) error {
	return par.ForEach(n, workers, fn)
}
