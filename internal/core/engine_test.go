package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/model"
	"repro/internal/synth"
)

// smallEngine builds an engine over the small test corpus.
func smallEngine(t *testing.T) *Engine {
	t.Helper()
	runs, err := GenerateCorpus(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	return New(WithSource(SliceSource(runs)))
}

func TestEngineRunSelectsByName(t *testing.T) {
	eng := smallEngine(t)
	results, err := eng.Run("fig3", "funnel")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || results[0].Name != "fig3" || results[1].Name != "funnel" {
		t.Fatalf("results = %+v, want fig3 then funnel", results)
	}
	if _, ok := results[0].Value.(analysis.TrendFigure); !ok {
		t.Errorf("fig3 value is %T", results[0].Value)
	}
	f, ok := results[1].Value.(analysis.Funnel)
	if !ok {
		t.Fatalf("funnel value is %T", results[1].Value)
	}
	if f.Raw == 0 || f.Raw != f.Parsed+countStage(f.ParseStage) {
		t.Errorf("funnel inconsistent: raw %d, parsed %d + %d rejects",
			f.Raw, f.Parsed, countStage(f.ParseStage))
	}
}

func countStage(rcs []analysis.ReasonCount) int {
	n := 0
	for _, rc := range rcs {
		n += rc.Count
	}
	return n
}

func TestEngineRunAllNames(t *testing.T) {
	// The trend and changepoint analyses need several yearly bins, so
	// this test uses a corpus spanning more years than smallOptions.
	opt := smallOptions()
	opt.Plan = []synth.YearPlan{
		{Year: 2008, Parsed: 10, AMDShare: 0.25, LinuxShare: 0.02, TwoSocketShare: 0.7},
		{Year: 2012, Parsed: 10, AMDShare: 0.20, LinuxShare: 0.05, TwoSocketShare: 0.7},
		{Year: 2016, Parsed: 10, AMDShare: 0.10, LinuxShare: 0.10, TwoSocketShare: 0.7},
		{Year: 2018, Parsed: 10, AMDShare: 0.20, LinuxShare: 0.20, TwoSocketShare: 0.7},
		{Year: 2020, Parsed: 10, AMDShare: 0.30, LinuxShare: 0.30, TwoSocketShare: 0.7},
		{Year: 2023, Parsed: 10, AMDShare: 0.35, LinuxShare: 0.40, TwoSocketShare: 0.7},
	}
	runs, err := GenerateCorpus(opt)
	if err != nil {
		t.Fatal(err)
	}
	eng := New(WithSource(SliceSource(runs)))
	results, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) < 16 {
		t.Fatalf("only %d analyses registered", len(results))
	}
	seen := map[string]bool{}
	for _, res := range results {
		seen[res.Name] = true
	}
	for _, want := range []string{"funnel", "fig1", "fig2", "fig3", "fig4", "fig5",
		"fig6", "submissions", "growth", "top100", "idlehistory", "features",
		"trends", "ep", "confound", "changepoint", "table1"} {
		if !seen[want] {
			t.Errorf("Run() missing %q", want)
		}
	}
}

func TestEngineUnknownAnalysis(t *testing.T) {
	eng := smallEngine(t)
	_, err := eng.Run("fig3", "nope")
	if err == nil {
		t.Fatal("unknown name should error")
	}
	var unknown *UnknownAnalysisError
	if !errors.As(err, &unknown) {
		t.Fatalf("err = %T %v, want *UnknownAnalysisError", err, err)
	}
	if unknown.Name != "nope" {
		t.Errorf("Name = %q", unknown.Name)
	}
	// The message is helpful: it names the miss and lists what exists.
	for _, want := range []string{`"nope"`, "available", "fig3", "funnel"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}

// The memoization probe registers once per process (the registry is
// global and rejects duplicates, so re-registering per test run — e.g.
// under -count=2 — would panic) and counts its invocations.
var (
	memoProbeOnce  sync.Once
	memoProbeCalls atomic.Int64
)

func registerMemoProbe() {
	memoProbeOnce.Do(func() {
		analysis.Register("test_memo_probe", "memoization probe (test only)",
			func(ds *analysis.Dataset) (any, error) {
				memoProbeCalls.Add(1)
				return len(ds.Raw), nil
			})
	})
}

// TestEngineMemoization: an analysis runs at most once per engine, and
// different engines do not share results.
func TestEngineMemoization(t *testing.T) {
	registerMemoProbe()
	before := memoProbeCalls.Load()
	eng := smallEngine(t)
	for i := 0; i < 5; i++ {
		if _, err := eng.Analysis("test_memo_probe"); err != nil {
			t.Fatal(err)
		}
	}
	if got := memoProbeCalls.Load() - before; got != 1 {
		t.Errorf("analysis ran %d times on one engine, want 1", got)
	}
	if _, err := smallEngine(t).Analysis("test_memo_probe"); err != nil {
		t.Fatal(err)
	}
	if got := memoProbeCalls.Load() - before; got != 2 {
		t.Errorf("fresh engine should recompute: %d calls, want 2", got)
	}
}

func TestEngineDatasetComputedOnce(t *testing.T) {
	runs, err := GenerateCorpus(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	var streams atomic.Int64
	eng := New(WithSource(countingSource{inner: SliceSource(runs), streams: &streams}))
	if _, err := eng.Run("fig2", "fig3", "funnel", "ep"); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Dataset(); err != nil {
		t.Fatal(err)
	}
	if got := streams.Load(); got != 1 {
		t.Errorf("source streamed %d times, want 1", got)
	}
}

// countingSource counts how often the corpus is streamed.
type countingSource struct {
	inner   Source
	streams *atomic.Int64
}

func (c countingSource) Name() string { return "counting(" + c.inner.Name() + ")" }

func (c countingSource) Each(workers int, yield func(*model.Run) error) error {
	c.streams.Add(1)
	return c.inner.Each(workers, yield)
}

// TestEngineConcurrentHammer drives one engine from many goroutines
// mixing Analysis, Run, and Dataset calls (run under -race in CI) and
// asserts the exactly-once contract holds anyway: one corpus stream,
// one probe computation.
func TestEngineConcurrentHammer(t *testing.T) {
	registerMemoProbe()
	runs, err := GenerateCorpus(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	var streams atomic.Int64
	eng := New(WithSource(countingSource{inner: SliceSource(runs), streams: &streams}))
	before := memoProbeCalls.Load()

	const goroutines = 16
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*3)
	start := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			if _, err := eng.Analysis("test_memo_probe"); err != nil {
				errs <- err
			}
			results, err := eng.Run("fig3", "funnel", "test_memo_probe")
			if err != nil {
				errs <- err
				return
			}
			if len(results) != 3 || results[0].Name != "fig3" ||
				results[1].Name != "funnel" || results[2].Name != "test_memo_probe" {
				errs <- fmt.Errorf("goroutine %d: results out of request order: %+v", g, results)
			}
			if _, err := eng.Dataset(); err != nil {
				errs <- err
			}
		}(g)
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := memoProbeCalls.Load() - before; got != 1 {
		t.Errorf("probe analysis computed %d times under concurrency, want exactly 1", got)
	}
	if got := streams.Load(); got != 1 {
		t.Errorf("source streamed %d times under concurrency, want exactly 1", got)
	}
}

// The param probe registers once per process and counts invocations
// per canonical parameterization, so tests can assert which
// parameterizations actually computed.
var (
	paramProbeOnce  sync.Once
	paramProbeCalls sync.Map // canonical string → *atomic.Int64
)

func registerParamProbe() {
	paramProbeOnce.Do(func() {
		analysis.RegisterParams("test_param_probe", "param memoization probe (test only)",
			analysis.Schema{{Name: "k", Kind: analysis.KindInt, Default: 1}},
			func(ds *analysis.Dataset, p analysis.Params) (any, error) {
				c, _ := paramProbeCalls.LoadOrStore(p.Canonical(), new(atomic.Int64))
				c.(*atomic.Int64).Add(1)
				return p.Int("k") * len(ds.Raw), nil
			})
	})
}

func paramProbeCount(canonical string) int64 {
	c, ok := paramProbeCalls.Load(canonical)
	if !ok {
		return 0
	}
	return c.(*atomic.Int64).Load()
}

func paramProbeParams(t *testing.T, raw map[string]string) analysis.Params {
	t.Helper()
	reg, ok := analysis.Lookup("test_param_probe")
	if !ok {
		t.Fatal("probe not registered")
	}
	p, err := reg.Params.Resolve(raw)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestEngineParamMemoization: one engine holds an independent memo per
// (name, canonical params) — k=3 and k=5 each compute exactly once and
// return distinct values — while spelled-out defaults share the
// default entry.
func TestEngineParamMemoization(t *testing.T) {
	registerParamProbe()
	eng := smallEngine(t)
	k3 := paramProbeParams(t, map[string]string{"k": "3"})
	k5 := paramProbeParams(t, map[string]string{"k": "5"})
	before3, before5 := paramProbeCount("k=3"), paramProbeCount("k=5")
	beforeDef := paramProbeCount("")

	var got3, got5 any
	for i := 0; i < 3; i++ {
		var err error
		if got3, err = eng.AnalysisRequest(Request{Name: "test_param_probe", Params: k3}); err != nil {
			t.Fatal(err)
		}
		if got5, err = eng.AnalysisRequest(Request{Name: "test_param_probe", Params: k5}); err != nil {
			t.Fatal(err)
		}
	}
	if got3 == got5 {
		t.Errorf("k=3 and k=5 returned the same value %v", got3)
	}
	if d := paramProbeCount("k=3") - before3; d != 1 {
		t.Errorf("k=3 computed %d times, want 1", d)
	}
	if d := paramProbeCount("k=5") - before5; d != 1 {
		t.Errorf("k=5 computed %d times, want 1", d)
	}

	// A default-params request — by name, as a zero-params request, and
	// with the default spelled out — shares one memo entry.
	if _, err := eng.Analysis("test_param_probe"); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.AnalysisRequest(Request{Name: "test_param_probe"}); err != nil {
		t.Fatal(err)
	}
	spelled := paramProbeParams(t, map[string]string{"k": "1"})
	if spelled.Canonical() != "" {
		t.Fatalf("spelled-out default canonicalizes to %q", spelled.Canonical())
	}
	if _, err := eng.AnalysisRequest(Request{Name: "test_param_probe", Params: spelled}); err != nil {
		t.Fatal(err)
	}
	if d := paramProbeCount("") - beforeDef; d != 1 {
		t.Errorf("default parameterization computed %d times, want 1", d)
	}
}

// TestEngineParamMemoBound: parameter values are request inputs, so
// the per-engine memo must not grow without bound when a client scans
// them — beyond the cap the oldest parameterized entry is evicted
// (and recomputes on a repeat request), while default entries stay.
func TestEngineParamMemoBound(t *testing.T) {
	registerParamProbe()
	eng := smallEngine(t)
	if _, err := eng.Analysis("test_param_probe"); err != nil { // default entry
		t.Fatal(err)
	}
	for i := 0; i < paramMemoLimit+10; i++ {
		p := paramProbeParams(t, map[string]string{"k": fmt.Sprint(i + 2)})
		if _, err := eng.AnalysisRequest(Request{Name: "test_param_probe", Params: p}); err != nil {
			t.Fatal(err)
		}
	}
	eng.mu.Lock()
	memos, order := len(eng.memos), len(eng.paramOrder)
	_, defaultKept := eng.memos[memoKey{name: "test_param_probe"}]
	eng.mu.Unlock()
	if order != paramMemoLimit {
		t.Errorf("paramOrder holds %d keys, want the cap %d", order, paramMemoLimit)
	}
	if memos > paramMemoLimit+1 {
		t.Errorf("memo map holds %d entries, want <= cap+default = %d",
			memos, paramMemoLimit+1)
	}
	if !defaultKept {
		t.Error("default-parameter entry was evicted")
	}
	// An evicted parameterization recomputes instead of erroring.
	before := paramProbeCount("k=2")
	p := paramProbeParams(t, map[string]string{"k": "2"})
	if _, err := eng.AnalysisRequest(Request{Name: "test_param_probe", Params: p}); err != nil {
		t.Fatal(err)
	}
	if d := paramProbeCount("k=2") - before; d != 1 {
		t.Errorf("evicted entry recomputed %d times on re-request, want 1", d)
	}
}

// TestEngineRunRequests: request-order results with per-request params,
// the canonical string carried on each Result, and default requests
// indistinguishable from the by-name path.
func TestEngineRunRequests(t *testing.T) {
	registerParamProbe()
	eng := smallEngine(t)
	k3 := paramProbeParams(t, map[string]string{"k": "3"})
	results, err := eng.RunRequests(
		Request{Name: "funnel"},
		Request{Name: "test_param_probe", Params: k3},
		Request{Name: "test_param_probe"},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 || results[0].Name != "funnel" || results[1].Name != "test_param_probe" {
		t.Fatalf("results = %+v", results)
	}
	if results[0].Params != "" || results[1].Params != "k=3" || results[2].Params != "" {
		t.Errorf("params carried as %q/%q/%q, want \"\"/\"k=3\"/\"\"",
			results[0].Params, results[1].Params, results[2].Params)
	}
	if results[1].Value == results[2].Value {
		t.Errorf("k=3 and default returned the same value %v", results[1].Value)
	}
	// The JSON encoding omits params for default requests (back-compat)
	// and carries them for parameterized ones.
	var buf bytes.Buffer
	if err := eng.WriteJSONRequests(&buf,
		Request{Name: "test_param_probe", Params: k3},
		Request{Name: "funnel"}); err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if string(decoded[0]["params"]) != `"k=3"` {
		t.Errorf("parameterized JSON params = %s", decoded[0]["params"])
	}
	if _, ok := decoded[1]["params"]; ok {
		t.Error("default request JSON carries a params field")
	}
}

// TestEngineRunParallelDeterministicError: with several unknown names in
// one parallel batch, the lowest-index failure wins every time.
func TestEngineRunParallelDeterministicError(t *testing.T) {
	eng := smallEngine(t)
	for round := 0; round < 10; round++ {
		_, err := eng.Run("fig3", "nope_a", "funnel", "nope_b", "nope_c")
		var unknown *UnknownAnalysisError
		if !errors.As(err, &unknown) || unknown.Name != "nope_a" {
			t.Fatalf("round %d: err = %v, want UnknownAnalysisError for nope_a", round, err)
		}
	}
}

// TestEngineWorkerBoundThreadsToDataset: WithWorkers must reach
// analyses with internal parallelism via Dataset.Workers.
func TestEngineWorkerBoundThreadsToDataset(t *testing.T) {
	ds, err := New(WithSource(SliceSource(nil)), WithWorkers(3)).Dataset()
	if err != nil {
		t.Fatal(err)
	}
	if ds.Workers != 3 {
		t.Errorf("Dataset.Workers = %d, want the engine's bound 3", ds.Workers)
	}
}

// TestReportAnalysesRegistered pins the warm-up list to the registry:
// every name WriteReport pre-computes must exist, and every registered
// corpus analysis the report renders must be pre-computed (a missing
// entry silently degrades the parallel warm-up to sequential renders).
func TestReportAnalysesRegistered(t *testing.T) {
	warm := map[string]bool{}
	for _, name := range reportAnalyses {
		if _, ok := analysis.Lookup(name); !ok {
			t.Errorf("reportAnalyses lists %q, which is not registered", name)
		}
		warm[name] = true
	}
	for _, name := range []string{"funnel", "submissions", "fig1", "fig2",
		"growth", "fig3", "top100", "fig4", "fig5", "idlehistory",
		"changepoint", "fig6", "features", "trends", "ep", "confound",
		"cluster-profiles", "table1"} {
		if !warm[name] {
			t.Errorf("report section %q missing from the warm-up list", name)
		}
	}
}

// TestCachedSourceUnwritableCache: a cache that cannot be written is
// best-effort — ingestion that already succeeded must not fail.
func TestCachedSourceUnwritableCache(t *testing.T) {
	runs, err := GenerateCorpus(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := WriteCorpus(dir, runs, 0); err != nil {
		t.Fatal(err)
	}
	src := CachedSource{Dir: dir,
		CachePath: filepath.Join(t.TempDir(), "missing", "sub", "c.gob")}
	n := 0
	if err := src.Each(0, func(*model.Run) error { n++; return nil }); err != nil {
		t.Fatalf("unwritable cache failed the stream: %v", err)
	}
	if n != len(runs) {
		t.Errorf("streamed %d of %d", n, len(runs))
	}
}

func TestAnalysisAsTypeMismatch(t *testing.T) {
	eng := smallEngine(t)
	_, err := AnalysisAs[int](eng, "fig3")
	if err == nil || !strings.Contains(err.Error(), "fig3") {
		t.Fatalf("type mismatch should name the analysis, got %v", err)
	}
}

func TestEngineWriteJSON(t *testing.T) {
	eng := smallEngine(t)
	var buf bytes.Buffer
	if err := eng.WriteJSON(&buf, "funnel", "top100"); err != nil {
		t.Fatal(err)
	}
	var decoded []struct {
		Name        string          `json:"name"`
		Description string          `json:"description"`
		Value       json.RawMessage `json:"value"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(decoded) != 2 || decoded[0].Name != "funnel" || decoded[1].Name != "top100" {
		t.Fatalf("decoded = %+v", decoded)
	}
	if decoded[0].Description == "" {
		t.Error("descriptions should be carried into JSON")
	}
	// Funnel reject reasons marshal by name, not enum ordinal.
	if !strings.Contains(string(decoded[0].Value), "not accepted by SPEC") {
		t.Errorf("funnel JSON should name reject reasons: %s", decoded[0].Value)
	}
}

// TestRunDescriptionsMatchRegistry pins the {name, description, value}
// contract of Run/WriteJSON to the registry: every result carries its
// registry description verbatim, so JSON consumers (the specanalyze
// -json output, the HTTP server) never need a second lookup. This keeps
// the engine output and the registry from drifting apart.
func TestRunDescriptionsMatchRegistry(t *testing.T) {
	eng := smallEngine(t)
	names := []string{"funnel", "fig1", "top100", "table1"}
	results, err := eng.Run(names...)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if res.Name != names[i] {
			t.Fatalf("result %d is %q, want request order %v", i, res.Name, names)
		}
		reg, ok := analysis.Lookup(res.Name)
		if !ok {
			t.Fatalf("result %q not in registry", res.Name)
		}
		if res.Description != reg.Description {
			t.Errorf("%s: description %q differs from registry %q",
				res.Name, res.Description, reg.Description)
		}
		if res.Description == "" {
			t.Errorf("%s: empty description", res.Name)
		}
	}
	// And the JSON encoding carries all three fields for every result.
	var buf bytes.Buffer
	if err := eng.WriteJSON(&buf, names...); err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded) != len(names) {
		t.Fatalf("encoded %d results for %d names", len(decoded), len(names))
	}
	for i, obj := range decoded {
		for _, field := range []string{"name", "description", "value"} {
			if _, ok := obj[field]; !ok {
				t.Errorf("result %d (%s) missing JSON field %q", i, names[i], field)
			}
		}
	}
}

func TestEngineWriteAnalysisText(t *testing.T) {
	eng := smallEngine(t)
	results, err := eng.Run("funnel", "fig3", "growth", "table1")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, res := range results {
		if err := WriteAnalysisText(&buf, res); err != nil {
			t.Fatal(err)
		}
	}
	out := buf.String()
	for _, want := range []string{
		"raw results:", "yearly means:", "S3 @", "Benchmark",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered text missing %q", want)
		}
	}
}

// failingSource errors on every stream.
type failingSource struct{}

func (failingSource) Name() string { return "failing" }

func (failingSource) Each(int, func(*model.Run) error) error {
	return errors.New("boom")
}

// TestEngineIngestionFailed: the flag is false before ingestion and
// after a successful one, true only once an ingestion has completed
// with an error — the signal long-lived engine caches evict on.
func TestEngineIngestionFailed(t *testing.T) {
	bad := New(WithSource(failingSource{}))
	if bad.IngestionFailed() {
		t.Error("IngestionFailed before any ingestion")
	}
	if _, err := bad.Dataset(); err == nil {
		t.Fatal("failing source should error")
	}
	if !bad.IngestionFailed() {
		t.Error("IngestionFailed false after a failed ingestion")
	}
	// An analysis error alone (healthy corpus, unknown name is checked
	// elsewhere) must not trip the flag.
	good := smallEngine(t)
	if _, err := good.Dataset(); err != nil {
		t.Fatal(err)
	}
	if good.IngestionFailed() {
		t.Error("IngestionFailed true after a successful ingestion")
	}
}

// TestEngineStaticAnalysisSkipsIngestion: corpus-independent analyses
// (table1) must not trigger source streaming.
func TestEngineStaticAnalysisSkipsIngestion(t *testing.T) {
	var streams atomic.Int64
	eng := New(WithSource(countingSource{inner: SliceSource(nil), streams: &streams}))
	if _, err := eng.Run("table1"); err != nil {
		t.Fatal(err)
	}
	if got := streams.Load(); got != 0 {
		t.Errorf("static analysis streamed the source %d times, want 0", got)
	}
}

func TestEngineLazyConstruction(t *testing.T) {
	// Construction must not touch the source; only the first analysis
	// call may.
	var streams atomic.Int64
	eng := New(WithSource(countingSource{inner: SliceSource(nil), streams: &streams}))
	if streams.Load() != 0 {
		t.Fatal("New streamed the source eagerly")
	}
	if _, err := eng.Dataset(); err != nil {
		t.Fatal(err)
	}
	if streams.Load() != 1 {
		t.Fatalf("Dataset streamed %d times", streams.Load())
	}
}

// TestEngineObserver: lifecycle callbacks fire exactly once per actual
// event — one Ingest per streamed engine no matter how many goroutines
// race on Dataset, one Compute per memoized computation (hits silent),
// each with the analysis identity and a positive duration.
func TestEngineObserver(t *testing.T) {
	runs, err := GenerateCorpus(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	var ingests, computes atomic.Int64
	var ingestRuns atomic.Int64
	type computeEvent struct {
		name, params string
	}
	var mu sync.Mutex
	var events []computeEvent
	eng := New(WithSource(SliceSource(runs)), WithObserver(Observer{
		Ingest: func(d time.Duration, n int, err error) {
			if err != nil {
				t.Errorf("ingest observer got error: %v", err)
			}
			if d <= 0 {
				t.Error("ingest observer got non-positive duration")
			}
			ingests.Add(1)
			ingestRuns.Store(int64(n))
		},
		Compute: func(name, params string, d time.Duration, err error) {
			if err != nil {
				t.Errorf("compute observer got error for %s: %v", name, err)
			}
			if d < 0 {
				t.Errorf("compute observer got negative duration for %s", name)
			}
			computes.Add(1)
			mu.Lock()
			events = append(events, computeEvent{name, params})
			mu.Unlock()
		},
	}))

	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := eng.Run("fig3", "funnel"); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()

	if got := ingests.Load(); got != 1 {
		t.Errorf("ingest fired %d times, want 1", got)
	}
	if got := ingestRuns.Load(); got != int64(len(runs)) {
		t.Errorf("ingest reported %d runs, want %d", got, len(runs))
	}
	if got := computes.Load(); got != 2 {
		t.Errorf("compute fired %d times, want 2 (fig3, funnel — hits silent)", got)
	}
	seen := map[string]bool{}
	for _, ev := range events {
		if ev.params != "" {
			t.Errorf("default request reported params %q", ev.params)
		}
		seen[ev.name] = true
	}
	if !seen["fig3"] || !seen["funnel"] {
		t.Errorf("compute events = %+v, want fig3 and funnel", events)
	}

	// Warm repeat: everything memoized, no further events.
	if _, err := eng.Run("fig3", "funnel"); err != nil {
		t.Fatal(err)
	}
	if ingests.Load() != 1 || computes.Load() != 2 {
		t.Errorf("warm repeat re-fired observers: ingests=%d computes=%d",
			ingests.Load(), computes.Load())
	}
}

// TestEngineObserverIngestError: a failed ingestion still reports to
// the observer, with the error and zero runs.
func TestEngineObserverIngestError(t *testing.T) {
	var gotErr error
	var calls int
	eng := New(WithSource(failingSource{}), WithObserver(Observer{
		Ingest: func(d time.Duration, n int, err error) {
			calls++
			gotErr = err
			if n != 0 {
				t.Errorf("failed ingest reported %d runs", n)
			}
		},
	}))
	if _, err := eng.Dataset(); err == nil {
		t.Fatal("failing source should error")
	}
	if calls != 1 || gotErr == nil {
		t.Errorf("ingest observer: calls=%d err=%v, want 1 call with the error", calls, gotErr)
	}
}

// TestEngineMemoStats: hits + misses equals AnalysisRequest calls, the
// Observer.Hit callback fires once per hit, and RunsIngested reports
// the corpus size only after a successful ingestion.
func TestEngineMemoStats(t *testing.T) {
	registerMemoProbe()
	var hits atomic.Int64
	runs, err := GenerateCorpus(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	eng := New(WithSource(SliceSource(runs)), WithObserver(Observer{
		Hit: func(name, params string) {
			if name != "test_memo_probe" || params != "" {
				t.Errorf("Hit(%q, %q)", name, params)
			}
			hits.Add(1)
		},
	}))
	if got := eng.RunsIngested(); got != 0 {
		t.Errorf("RunsIngested before ingestion = %d, want 0", got)
	}
	for i := 0; i < 5; i++ {
		if _, err := eng.Analysis("test_memo_probe"); err != nil {
			t.Fatal(err)
		}
	}
	st := eng.MemoStats()
	if st.Misses != 1 || st.Hits != 4 || st.Entries != 1 {
		t.Errorf("MemoStats = %+v, want 1 miss, 4 hits, 1 entry", st)
	}
	if hits.Load() != 4 {
		t.Errorf("Observer.Hit fired %d times, want 4", hits.Load())
	}
	if got := eng.RunsIngested(); got != len(runs) {
		t.Errorf("RunsIngested = %d, want %d", got, len(runs))
	}
}

// TestEngineMemoStatsParamMix mirrors BenchmarkParamMemoization's
// shape: one miss per distinct parameterization, hits on repeats.
func TestEngineMemoStatsParamMix(t *testing.T) {
	eng := smallEngine(t)
	reg, ok := analysis.Lookup("clusters")
	if !ok {
		t.Fatal("clusters not registered")
	}
	k4, err := reg.Params.Resolve(map[string]string{"k": "4"})
	if err != nil {
		t.Fatal(err)
	}
	k5, err := reg.Params.Resolve(map[string]string{"k": "5"})
	if err != nil {
		t.Fatal(err)
	}
	for _, req := range []Request{
		{Name: "clusters", Params: k4}, // miss
		{Name: "clusters", Params: k4}, // hit
		{Name: "clusters", Params: k5}, // miss
		{Name: "clusters", Params: k4}, // hit
	} {
		if _, err := eng.AnalysisRequest(req); err != nil {
			t.Fatal(err)
		}
	}
	st := eng.MemoStats()
	if st.Misses != 2 || st.Hits != 2 || st.Entries != 2 {
		t.Errorf("MemoStats = %+v, want 2 misses, 2 hits, 2 entries", st)
	}
}
