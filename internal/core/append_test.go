package core

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/analysis"
	"repro/internal/model"
	"repro/internal/synth"
)

// appendTestOptions spans enough yearly bins for every registered
// analysis (trends, changepoint) to compute.
func appendTestOptions() synth.Options {
	return synth.Options{
		Seed: 11,
		Plan: []synth.YearPlan{
			{Year: 2008, Parsed: 10, AMDShare: 0.25, LinuxShare: 0.02, TwoSocketShare: 0.7},
			{Year: 2012, Parsed: 10, AMDShare: 0.20, LinuxShare: 0.05, TwoSocketShare: 0.7},
			{Year: 2016, Parsed: 10, AMDShare: 0.10, LinuxShare: 0.10, TwoSocketShare: 0.7},
			{Year: 2018, Parsed: 10, AMDShare: 0.20, LinuxShare: 0.20, TwoSocketShare: 0.7},
			{Year: 2020, Parsed: 10, AMDShare: 0.30, LinuxShare: 0.30, TwoSocketShare: 0.7},
			{Year: 2023, Parsed: 10, AMDShare: 0.35, LinuxShare: 0.40, TwoSocketShare: 0.7},
		},
	}
}

func TestAppendSourceStreamAndFingerprint(t *testing.T) {
	runs, err := GenerateCorpus(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	base, extra := runs[:len(runs)-1], runs[len(runs)-1]
	src := NewAppendSource(SliceSource(base))
	if got := src.Generation(); got != 0 {
		t.Fatalf("fresh generation = %d, want 0", got)
	}
	fp0, err := src.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}

	if gen := src.Append(extra); gen != 1 {
		t.Fatalf("Append generation = %d, want 1", gen)
	}
	var ids []string
	if err := src.Each(0, func(r *model.Run) error {
		ids = append(ids, r.ID)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(ids) != len(runs) {
		t.Fatalf("streamed %d runs, want %d", len(ids), len(runs))
	}
	if ids[len(ids)-1] != extra.ID {
		t.Errorf("overlay run not streamed last: got %s", ids[len(ids)-1])
	}
	fp1, err := src.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fp1 == fp0 {
		t.Error("fingerprint unchanged after Append")
	}

	// Bump advances the generation (and therefore the fingerprint)
	// without touching the overlay — the watcher path, where the inner
	// source already carries the new content.
	if gen := src.Bump(); gen != 2 {
		t.Fatalf("Bump generation = %d, want 2", gen)
	}
	if src.AppendedRuns() != 1 {
		t.Errorf("AppendedRuns = %d, want 1", src.AppendedRuns())
	}
	fp2, err := src.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fp2 == fp1 {
		t.Error("fingerprint unchanged after Bump")
	}
	again, err := src.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if again != fp2 {
		t.Error("fingerprint not deterministic for a quiesced source")
	}
	if parts := src.SourceParts(); len(parts) != 2 {
		t.Errorf("SourceParts = %d parts, want inner + overlay", len(parts))
	}
}

// TestEngineAppendEquivalence pins the delta path to the batch path:
// ingesting N runs and appending M more must produce byte-identical
// analysis output to ingesting all N+M at once.
func TestEngineAppendEquivalence(t *testing.T) {
	runs, err := GenerateCorpus(appendTestOptions())
	if err != nil {
		t.Fatal(err)
	}
	split := len(runs) - 7

	batch := New(WithSource(SliceSource(runs)))
	var want bytes.Buffer
	if err := batch.WriteJSON(&want); err != nil {
		t.Fatal(err)
	}

	inc := New(WithSource(SliceSource(runs[:split])))
	if _, err := inc.Dataset(); err != nil {
		t.Fatal(err)
	}
	st, err := inc.Append(runs[split:])
	if err != nil {
		t.Fatal(err)
	}
	if st.Appended != 7 {
		t.Fatalf("AppendStats.Appended = %d, want 7", st.Appended)
	}
	var got bytes.Buffer
	if err := inc.WriteJSON(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Errorf("append path diverged from batch ingestion:\nbatch:  %.200s\nappend: %.200s",
			want.String(), got.String())
	}
}

// TestEngineAppendMemoInvalidation pins the delta-aware invalidation:
// an append only drops the memos whose declared input stage gained
// rows, counted through the engine's hit/miss counters.
func TestEngineAppendMemoInvalidation(t *testing.T) {
	runs, err := GenerateCorpus(appendTestOptions())
	if err != nil {
		t.Fatal(err)
	}
	eng := New(WithSource(SliceSource(runs)))
	ds, err := eng.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Comparable) == 0 {
		t.Fatal("test corpus has no comparable runs")
	}
	warm := func(names ...string) {
		t.Helper()
		for _, name := range names {
			if _, err := eng.Analysis(name); err != nil {
				t.Fatal(err)
			}
		}
	}
	// One memo per input stage: raw, parsed, comparable, none.
	warm("funnel", "fig1", "fig3", "table1")

	// requery returns how many of the four requests missed the memo.
	requery := func() int64 {
		t.Helper()
		before := eng.MemoStats().Misses
		warm("funnel", "fig1", "fig3", "table1")
		return eng.MemoStats().Misses - before
	}

	tmpl := *ds.Comparable[0]

	// A parse-stage reject only grows the raw set: funnel recomputes,
	// everything else stays warm.
	reject := tmpl
	reject.ID = "append-parse-reject"
	reject.Accepted = false
	st, err := eng.Append([]*model.Run{&reject})
	if err != nil {
		t.Fatal(err)
	}
	if st.Parsed != 0 || st.Comparable != 0 {
		t.Fatalf("parse-rejected append classified as %+v", st)
	}
	if st.Invalidated != 1 || st.Retained != 3 {
		t.Errorf("parse-reject invalidated %d / retained %d, want 1/3",
			st.Invalidated, st.Retained)
	}
	if n := requery(); n != 1 {
		t.Errorf("after parse-reject append: %d recomputes, want 1 (funnel)", n)
	}
	f, err := AnalysisAs[analysis.Funnel](eng, "funnel")
	if err != nil {
		t.Fatal(err)
	}
	if f.Raw != len(runs)+1 {
		t.Errorf("funnel.Raw = %d, want %d", f.Raw, len(runs)+1)
	}

	// A comparability reject grows raw + parsed: fig3 (comparable) and
	// table1 (static) stay warm.
	other := tmpl
	other.ID = "append-comp-reject"
	other.CPUVendor = model.VendorOther
	if st, err = eng.Append([]*model.Run{&other}); err != nil {
		t.Fatal(err)
	}
	if st.Parsed != 1 || st.Comparable != 0 {
		t.Fatalf("comparability-rejected append classified as %+v", st)
	}
	if st.Invalidated != 2 || st.Retained != 2 {
		t.Errorf("comp-reject invalidated %d / retained %d, want 2/2",
			st.Invalidated, st.Retained)
	}
	if n := requery(); n != 2 {
		t.Errorf("after comp-reject append: %d recomputes, want 2 (funnel, fig1)", n)
	}

	// A comparable run invalidates every corpus-reading memo; the
	// static table alone survives.
	comp := tmpl
	comp.ID = "append-comparable"
	if st, err = eng.Append([]*model.Run{&comp}); err != nil {
		t.Fatal(err)
	}
	if st.Comparable != 1 {
		t.Fatalf("comparable append classified as %+v", st)
	}
	if st.Invalidated != 3 || st.Retained != 1 {
		t.Errorf("comparable invalidated %d / retained %d, want 3/1",
			st.Invalidated, st.Retained)
	}
	if n := requery(); n != 3 {
		t.Errorf("after comparable append: %d recomputes, want 3", n)
	}
}

func TestEngineAppendEmptyIsNoOp(t *testing.T) {
	eng := smallEngine(t)
	if _, err := eng.Dataset(); err != nil {
		t.Fatal(err)
	}
	before := eng.RunsIngested()
	st, err := eng.Append(nil)
	if err != nil {
		t.Fatal(err)
	}
	if st != (AppendStats{}) {
		t.Errorf("empty append reported %+v", st)
	}
	if eng.RunsIngested() != before {
		t.Errorf("empty append changed the corpus: %d -> %d", before, eng.RunsIngested())
	}
}

// BenchmarkAppendVsRebuild is the acceptance benchmark: folding one
// run into a warm engine (and recomputing the one analysis it
// invalidates) must beat dropping the engine and re-classifying the
// full synthetic corpus by at least 5x.
func BenchmarkAppendVsRebuild(b *testing.B) {
	runs, err := GenerateCorpus(synth.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	newRun := func(i int) *model.Run {
		r := *runs[0]
		r.ID = fmt.Sprintf("bench-append-%d", i)
		return &r
	}

	b.Run("append", func(b *testing.B) {
		eng := New(WithSource(SliceSource(runs)))
		if _, err := eng.Analysis("funnel"); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Append([]*model.Run{newRun(i)}); err != nil {
				b.Fatal(err)
			}
			if _, err := eng.Analysis("funnel"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rebuild", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			grown := make([]*model.Run, 0, len(runs)+1)
			grown = append(grown, runs...)
			grown = append(grown, newRun(i))
			eng := New(WithSource(SliceSource(grown)))
			if _, err := eng.Analysis("funnel"); err != nil {
				b.Fatal(err)
			}
		}
	})
}
