package core

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/model"
)

// FilterSource streams only the runs of Inner that satisfy Keep — a
// corpus slice (per-vendor, per-year, since-N, …) expressed as a source,
// so every engine feature works on the slice unchanged. A nil Keep
// passes everything through.
type FilterSource struct {
	Inner Source
	Keep  func(*model.Run) bool
	// Desc names the predicate in Name() and error messages, e.g.
	// "vendor=AMD,since=2021".
	Desc string
}

// Name implements Source.
func (s FilterSource) Name() string {
	d := s.Desc
	if d == "" {
		d = "func"
	}
	return fmt.Sprintf("filter(%s, %s)", d, s.Inner.Name())
}

// Each implements Source. Filtering happens on the consumer side of the
// inner stream, so the inner source's ordering, parallelism, and
// streaming bound are preserved.
func (s FilterSource) Each(workers int, yield func(*model.Run) error) error {
	if s.Keep == nil {
		return s.Inner.Each(workers, yield)
	}
	return s.Inner.Each(workers, func(r *model.Run) error {
		if !s.Keep(r) {
			return nil
		}
		return yield(r)
	})
}

// MergeSource concatenates several sources — corpus directories,
// synthetic corpora, slices, other combinators — into one stream.
// Sources are drained in slice order, each in its own deterministic
// order, so the merged stream is deterministic too.
type MergeSource []Source

// Name implements Source.
func (s MergeSource) Name() string {
	names := make([]string, len(s))
	for i, src := range s {
		names[i] = src.Name()
	}
	return "merge(" + strings.Join(names, " + ") + ")"
}

// Each implements Source. The first source error or yield error stops
// the whole stream.
func (s MergeSource) Each(workers int, yield func(*model.Run) error) error {
	for _, src := range s {
		if err := src.Each(workers, yield); err != nil {
			return err
		}
	}
	return nil
}

// Parted is implemented by composite sources that decompose into
// sequential parts whose concatenated streams equal their own. Tracing
// uses it to give a merged corpus per-source ingest sub-spans without
// changing what is streamed.
type Parted interface {
	// SourceParts returns the parts in drain order, or nil when the
	// source does not decompose.
	SourceParts() []Source
}

// SourceParts implements Parted: the merge's elements, in drain order.
func (s MergeSource) SourceParts() []Source { return []Source(s) }

// SourceParts implements Parted: the inner source's parts, each wrapped
// in the same filter, so filter(merge(a, b)) decomposes into
// filter(a), filter(b).
func (s FilterSource) SourceParts() []Source {
	inner, ok := s.Inner.(Parted)
	if !ok {
		return nil
	}
	ps := inner.SourceParts()
	out := make([]Source, len(ps))
	for i, p := range ps {
		out[i] = FilterSource{Inner: p, Keep: s.Keep, Desc: s.Desc}
	}
	return out
}

// sourceParts returns src's sequential decomposition, or nil.
func sourceParts(src Source) []Source {
	if p, ok := src.(Parted); ok {
		return p.SourceParts()
	}
	return nil
}

// ParseFilter compiles a corpus-slice expression into a run predicate
// for FilterSource. An expression is a comma-separated list of clauses,
// all of which must hold (AND); within a clause, "|" separates
// alternatives (OR). Supported clauses:
//
//	vendor=AMD|Intel|Other   CPU vendor (case-insensitive)
//	os=Linux|Windows|...     OS family (case-insensitive)
//	year=2020                hardware-availability year
//	year=2018-2022           inclusive year range
//	since=2021               hardware available in or after the year
//
// Years use the hardware-availability date, the axis the paper bins
// every trend by.
func ParseFilter(expr string) (func(*model.Run) bool, error) {
	var preds []func(*model.Run) bool
	for _, clause := range strings.Split(expr, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		key, val, ok := strings.Cut(clause, "=")
		if !ok {
			return nil, fmt.Errorf("core: filter clause %q: want key=value", clause)
		}
		key = strings.TrimSpace(strings.ToLower(key))
		val = strings.TrimSpace(val)
		p, err := filterClause(key, val)
		if err != nil {
			return nil, err
		}
		preds = append(preds, p)
	}
	if len(preds) == 0 {
		return nil, fmt.Errorf("core: empty filter expression")
	}
	return func(r *model.Run) bool {
		for _, p := range preds {
			if !p(r) {
				return false
			}
		}
		return true
	}, nil
}

// filterClause compiles one key=value clause.
func filterClause(key, val string) (func(*model.Run) bool, error) {
	switch key {
	case "vendor":
		want, err := filterAlternatives(key, val)
		if err != nil {
			return nil, err
		}
		return func(r *model.Run) bool {
			return want[strings.ToLower(r.CPUVendor.String())]
		}, nil
	case "os":
		want, err := filterAlternatives(key, val)
		if err != nil {
			return nil, err
		}
		return func(r *model.Run) bool {
			return want[strings.ToLower(r.OSFamily.String())]
		}, nil
	case "year":
		lo, hi, err := parseYearRange(val)
		if err != nil {
			return nil, err
		}
		return func(r *model.Run) bool {
			y := r.HWAvail.Year
			return y >= lo && y <= hi
		}, nil
	case "since":
		y, err := strconv.Atoi(val)
		if err != nil {
			return nil, fmt.Errorf("core: filter since=%q: not a year", val)
		}
		return func(r *model.Run) bool { return r.HWAvail.Year >= y }, nil
	default:
		return nil, fmt.Errorf("core: unknown filter key %q (want vendor, os, year, or since)", key)
	}
}

// filterAlternatives splits "AMD|Intel" into a lower-cased membership
// set.
func filterAlternatives(key, val string) (map[string]bool, error) {
	want := map[string]bool{}
	for _, alt := range strings.Split(val, "|") {
		if alt = strings.TrimSpace(alt); alt != "" {
			want[strings.ToLower(alt)] = true
		}
	}
	if len(want) == 0 {
		return nil, fmt.Errorf("core: filter %s=: empty value", key)
	}
	return want, nil
}

// parseYearRange parses "2020" or "2018-2022" (inclusive).
func parseYearRange(val string) (lo, hi int, err error) {
	from, to, ranged := strings.Cut(val, "-")
	if lo, err = strconv.Atoi(strings.TrimSpace(from)); err != nil {
		return 0, 0, fmt.Errorf("core: filter year=%q: not a year", val)
	}
	if !ranged {
		return lo, lo, nil
	}
	if hi, err = strconv.Atoi(strings.TrimSpace(to)); err != nil || hi < lo {
		return 0, 0, fmt.Errorf("core: filter year=%q: want YEAR or FROM-TO", val)
	}
	return lo, hi, nil
}
