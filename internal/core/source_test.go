package core

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/model"
)

func TestSliceSourceRoundTrip(t *testing.T) {
	runs, err := GenerateCorpus(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	src := SliceSource(runs)
	var got int
	err = src.Each(0, func(r *model.Run) error {
		if r != runs[got] {
			t.Fatalf("run %d delivered out of order", got)
		}
		got++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != len(runs) {
		t.Fatalf("yielded %d of %d runs", got, len(runs))
	}
	// The engine over the same slice reproduces BuildDataset exactly.
	ds, err := New(WithSource(src)).Dataset()
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Raw) != len(runs) {
		t.Fatalf("raw %d vs %d", len(ds.Raw), len(runs))
	}
	// A yield error stops the stream.
	stop := errors.New("stop")
	n := 0
	err = src.Each(0, func(*model.Run) error {
		n++
		if n == 3 {
			return stop
		}
		return nil
	})
	if !errors.Is(err, stop) || n != 3 {
		t.Fatalf("err=%v after %d yields, want stop after 3", err, n)
	}
}

func TestDirSourceMissingDir(t *testing.T) {
	src := DirSource{Dir: filepath.Join(t.TempDir(), "nope")}
	if err := src.Each(0, func(*model.Run) error { return nil }); err == nil {
		t.Error("missing dir should error")
	}
	if _, err := New(WithSource(src)).Dataset(); err == nil ||
		!strings.Contains(err.Error(), "nope") {
		t.Errorf("engine error should name the source, got %v", err)
	}
}

func TestDirSourceEmptyDir(t *testing.T) {
	ds, err := New(WithSource(DirSource{Dir: t.TempDir()})).Dataset()
	if err != nil {
		t.Fatal(err)
	}
	if f := ds.Funnel; f.Raw != 0 || f.Parsed != 0 || f.Comparable != 0 {
		t.Errorf("empty dir funnel = %v", f)
	}
}

// TestDirSourceDeterministicError: with several corrupt files and many
// workers, the reported error is always the alphabetically first bad
// file.
func TestDirSourceDeterministicError(t *testing.T) {
	runs, err := GenerateCorpus(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := WriteCorpus(dir, runs, 0); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"aa_bad.txt", "mm_bad.txt", "zz_bad.txt"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("not a report"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	for round := 0; round < 20; round++ {
		err := DirSource{Dir: dir}.Each(8, func(*model.Run) error { return nil })
		if err == nil || !strings.Contains(err.Error(), "aa_bad.txt") {
			t.Fatalf("round %d: err = %v, want the first bad file (aa_bad.txt)", round, err)
		}
	}
}

// TestDirSourceStreamingBound verifies the streaming memory contract:
// ingestion never holds more than workers parsed runs outside the
// consumer, however slow the consumer is.
func TestDirSourceStreamingBound(t *testing.T) {
	runs, err := GenerateCorpus(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := WriteCorpus(dir, runs, 0); err != nil {
		t.Fatal(err)
	}
	const workers = 3
	var held, maxHeld atomic.Int64
	src := DirSource{
		Dir: dir,
		trackHeld: func(delta int) {
			h := held.Add(int64(delta))
			for {
				m := maxHeld.Load()
				if h <= m || maxHeld.CompareAndSwap(m, h) {
					break
				}
			}
		},
	}
	count := 0
	err = src.Each(workers, func(*model.Run) error {
		// A deliberately slow consumer lets the worker pool race ahead
		// as far as it ever will.
		for i := 0; i < 10000; i++ {
			_ = i * i
		}
		count++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != len(runs) {
		t.Fatalf("yielded %d of %d runs", count, len(runs))
	}
	if got := maxHeld.Load(); got > workers {
		t.Errorf("source held %d parsed runs at once, streaming bound is %d", got, workers)
	}
	if held.Load() != 0 {
		t.Errorf("source still holds %d runs after Each returned", held.Load())
	}
}

// TestDirSourceNestedCorpus: sharded layouts (files split across
// subdirectories, mixed-case extensions) stream completely and
// deterministically.
func TestDirSourceNestedCorpus(t *testing.T) {
	runs, err := GenerateCorpus(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	flat := t.TempDir()
	if err := WriteCorpus(flat, runs, 0); err != nil {
		t.Fatal(err)
	}
	// Shard the flat corpus into nested/<i%3>/, uppercasing every third
	// extension, with a decoy non-result file alongside.
	nested := t.TempDir()
	files, err := filepath.Glob(filepath.Join(flat, "*.txt"))
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range files {
		shard := filepath.Join(nested, fmt.Sprint(i%3))
		if err := os.MkdirAll(shard, 0o755); err != nil {
			t.Fatal(err)
		}
		name := filepath.Base(f)
		if i%3 == 0 {
			name = strings.TrimSuffix(name, ".txt") + ".TXT"
		}
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(shard, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(nested, "README.md"), []byte("not a result"), 0o644); err != nil {
		t.Fatal(err)
	}
	collect := func(workers int) map[string]bool {
		ids := map[string]bool{}
		err := DirSource{Dir: nested}.Each(workers, func(r *model.Run) error {
			ids[r.ID] = true
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return ids
	}
	got := collect(4)
	if len(got) != len(runs) {
		t.Fatalf("nested corpus yielded %d of %d runs", len(got), len(runs))
	}
	for _, r := range runs {
		if !got[r.ID] {
			t.Errorf("run %s missing from nested stream", r.ID)
		}
	}
	// Sequential and parallel walks agree.
	if seq := collect(1); len(seq) != len(got) {
		t.Errorf("sequential walk yielded %d, parallel %d", len(seq), len(got))
	}
}

// TestDirSourceOrder: parallel ingestion delivers runs in sorted
// file-name order, matching the sequential path.
func TestDirSourceOrder(t *testing.T) {
	runs, err := GenerateCorpus(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := WriteCorpus(dir, runs, 0); err != nil {
		t.Fatal(err)
	}
	collect := func(workers int) []string {
		var ids []string
		err := DirSource{Dir: dir}.Each(workers, func(r *model.Run) error {
			ids = append(ids, r.ID)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return ids
	}
	seq, par := collect(1), collect(8)
	if len(seq) != len(par) {
		t.Fatalf("lengths differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("order differs at %d: %s vs %s", i, seq[i], par[i])
		}
	}
}
