package core

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/analysis"
	"repro/internal/model"
	"repro/internal/speccpu"
	"repro/internal/synth"
)

// Engine is the library's entry point: a corpus source plus a cache of
// derived analyses. Construction is cheap — nothing is generated,
// parsed, or classified until the first Dataset, Analysis, Run, or
// WriteReport call, and every analysis is computed at most once per
// engine and parameterization.
//
//	eng := core.New(core.WithSource(core.DirSource{Dir: "corpus"}),
//		core.WithWorkers(8))
//	fig3, err := core.AnalysisAs[analysis.TrendFigure](eng, "fig3")
type Engine struct {
	src     Source
	workers int
	obs     Observer

	dsOnce sync.Once
	dsDone atomic.Bool
	ds     atomic.Pointer[analysis.Dataset]
	dsErr  error

	// builder survives ingestion so Append can extend the classified
	// corpus incrementally; appendMu serializes appends (the builder is
	// single-writer) while readers keep loading immutable snapshots
	// from ds.
	builder  *analysis.DatasetBuilder
	appendMu sync.Mutex

	mu         sync.Mutex
	memos      map[memoKey]*memo
	paramOrder []memoKey // non-default keys in insertion order, for eviction

	memoHits   atomic.Int64
	memoMisses atomic.Int64
}

// memoKey identifies one cached computation: the analysis name plus the
// canonical string of its resolved parameters ("" = all defaults).
// Keying by the canonical form — not the raw request — means ?seed=14
// spelled out and omitted share one entry, while every distinct
// parameterization gets its own.
type memoKey struct {
	name   string
	params string
}

// paramMemoLimit bounds the resident non-default parameterizations per
// engine. Parameter values are request inputs — on a served engine,
// client-controlled — so without a bound a scan over ?seed=1,2,3,…
// would grow the memo map without limit. Default-parameter entries
// (the fixed registry names the report renders) are never evicted;
// beyond the bound the oldest parameterized entry is dropped and a
// repeat request simply recomputes it (deterministically, so evicting
// mid-flight readers is harmless — they keep their own result).
const paramMemoLimit = 512

// memo is one lazily computed analysis result.
type memo struct {
	once sync.Once
	val  any
	err  error
}

// Option configures an Engine.
type Option func(*Engine)

// WithSource sets the corpus source (default: the paper-calibrated
// synthetic corpus).
func WithSource(s Source) Option {
	return func(e *Engine) { e.src = s }
}

// WithWorkers bounds the engine's parallelism — both the streaming
// source's parser pool and the analysis fan-out of Run, WriteJSON, and
// WriteReport (0 = GOMAXPROCS).
func WithWorkers(n int) Option {
	return func(e *Engine) { e.workers = n }
}

// Observer receives engine lifecycle timings, for serving layers that
// aggregate them (see internal/obs). Nil fields are skipped; non-nil
// ones must be safe for concurrent use — analyses compute in parallel.
// Each callback fires exactly once per actual event: Ingest once per
// engine that streamed its source (concurrent requests that merely
// waited on the shared sync.Once do not re-fire it), Compute once per
// memoized (analysis, params) computation — memo hits are silent.
type Observer struct {
	// Ingest is called after the corpus is streamed and classified:
	// duration of the whole ingestion, runs delivered, and the
	// ingestion error if any.
	Ingest func(d time.Duration, runs int, err error)
	// Compute is called after an analysis function executes (memo
	// misses only) with the registry name, the canonical parameter
	// string, the function's own duration (excluding any ingestion it
	// waited on), and its error.
	Compute func(name, params string, d time.Duration, err error)
	// Hit is called when an analysis request finds an existing memo
	// entry (whether or not its computation has finished yet) — the
	// cache-hit counterpart of Compute. Fires under no engine lock.
	Hit func(name, params string)
}

// WithObserver installs lifecycle timing callbacks on the engine.
func WithObserver(o Observer) Option {
	return func(e *Engine) { e.obs = o }
}

// TraceHooks threads one request's trace through the engine. Where
// Observer aggregates per-engine (every event, whoever caused it),
// TraceHooks attribute per-request: each callback fires only on the
// request whose computation actually did the work — the sync.Once
// winner for ingestion, the memo-miss request for compute — so a trace
// shows what its request paid for, never work it merely waited on.
// Callbacks receive explicit timestamps; the hook layer owning the span
// tree must not re-read the clock. All fields are optional.
type TraceHooks struct {
	// Ingest fires after corpus ingestion completes, on the request
	// that streamed it.
	Ingest func(tr IngestTrace)
	// Compute fires after an analysis function returns, on the request
	// that computed it (memo hits are silent).
	Compute func(tr ComputeTrace)
	// Kernel receives kernel progress events (per k-means Lloyd
	// iteration, per HAC merge batch) from analyses this request
	// computed. The engine attaches it to the dataset via
	// analysis.Dataset.WithKernel; it must be safe for concurrent use.
	Kernel analysis.KernelObserver
}

// IngestPart is one source's share of a merged corpus ingestion.
type IngestPart struct {
	Source     string
	Start, End time.Time
	Runs       int
}

// IngestTrace describes one completed corpus ingestion.
type IngestTrace struct {
	Source     string
	Start, End time.Time
	Runs       int
	Err        error
	// Parts holds per-source boundaries when the source decomposes
	// (see Parted); empty for single sources.
	Parts []IngestPart
}

// ComputeTrace describes one executed analysis function.
type ComputeTrace struct {
	Name, Params string
	Start, End   time.Time
	Err          error
}

// WithSeed selects the synthetic corpus with the given generation seed;
// shorthand for WithSource(SynthSource{…}) when only the seed varies.
func WithSeed(seed int64) Option {
	return func(e *Engine) {
		opt := synth.DefaultOptions()
		opt.Seed = seed
		e.src = SynthSource{Options: opt}
	}
}

// New builds an Engine. With no options it studies the default
// synthetic corpus, the in-memory equivalent of the paper's 1017
// downloaded result files.
func New(opts ...Option) *Engine {
	e := &Engine{
		src:   SynthSource{Options: synth.DefaultOptions()},
		memos: map[memoKey]*memo{},
	}
	for _, opt := range opts {
		opt(e)
	}
	return e
}

// Dataset streams the source through the classification funnel once and
// memoizes the result. Runs are classified as they arrive (via
// analysis.DatasetBuilder), so for streaming sources ingestion overlaps
// with parsing.
func (e *Engine) Dataset() (*analysis.Dataset, error) {
	return e.dataset(nil)
}

// dataset is Dataset with a per-request trace hook. The goroutine that
// wins the sync.Once — the one that actually streams the corpus — fires
// both the engine observer and its own hook, so the ingestion span
// attaches to the request that paid for it; concurrent requests that
// merely waited report nothing.
func (e *Engine) dataset(hook *TraceHooks) (*analysis.Dataset, error) {
	e.dsOnce.Do(func() {
		defer e.dsDone.Store(true)
		start := time.Now()
		b := analysis.NewDatasetBuilder()
		var parts []IngestPart
		err := e.streamSource(b, hook, &parts)
		end := time.Now()
		if err != nil {
			e.dsErr = fmt.Errorf("core: source %s: %w", e.src.Name(), err)
			if e.obs.Ingest != nil {
				e.obs.Ingest(end.Sub(start), 0, e.dsErr)
			}
			if hook != nil && hook.Ingest != nil {
				hook.Ingest(IngestTrace{Source: e.src.Name(),
					Start: start, End: end, Err: e.dsErr, Parts: parts})
			}
			return
		}
		e.builder = b
		snap := b.Snapshot()
		// Analyses with internal parallelism (e.g. the trend tests)
		// honor the same worker bound as the engine itself.
		snap.Workers = e.workers
		e.ds.Store(snap)
		if e.obs.Ingest != nil {
			e.obs.Ingest(end.Sub(start), len(snap.Raw), nil)
		}
		if hook != nil && hook.Ingest != nil {
			hook.Ingest(IngestTrace{Source: e.src.Name(),
				Start: start, End: end, Runs: len(snap.Raw), Parts: parts})
		}
	})
	return e.ds.Load(), e.dsErr
}

// streamSource drains the corpus into the builder. On a traced request
// whose source decomposes (Parted), each part streams separately so the
// trace gets per-source sub-spans; the merged stream is identical
// either way because part order is the composite's drain order.
func (e *Engine) streamSource(b *analysis.DatasetBuilder, hook *TraceHooks, parts *[]IngestPart) error {
	yield := func(r *model.Run) error {
		b.Add(r)
		return nil
	}
	if hook == nil || hook.Ingest == nil {
		return e.src.Each(e.workers, yield)
	}
	ps := sourceParts(e.src)
	if len(ps) < 2 {
		return e.src.Each(e.workers, yield)
	}
	for _, p := range ps {
		start := time.Now()
		before := b.Len()
		err := p.Each(e.workers, yield)
		*parts = append(*parts, IngestPart{Source: p.Name(),
			Start: start, End: time.Now(), Runs: b.Len() - before})
		if err != nil {
			return err
		}
	}
	return nil
}

// IngestionFailed reports whether a completed ingestion errored,
// without triggering one: false while the source has not been streamed
// yet (or streamed successfully). Long-lived engine caches use it to
// tell a broken corpus — worth discarding the engine and retrying —
// from an analysis that legitimately errors on a healthy corpus. The
// dsDone release/acquire pair makes reading dsErr safe here without
// entering the once.
func (e *Engine) IngestionFailed() bool {
	return e.dsDone.Load() && e.dsErr != nil
}

// Runs returns the raw corpus (every run the source delivered).
func (e *Engine) Runs() ([]*model.Run, error) {
	ds, err := e.Dataset()
	if err != nil {
		return nil, err
	}
	return ds.Raw, nil
}

// UnknownAnalysisError is returned when a requested analysis name is
// not registered; it lists what is.
type UnknownAnalysisError struct {
	Name      string
	Available []string
}

func (e *UnknownAnalysisError) Error() string {
	return fmt.Sprintf("core: unknown analysis %q (available: %s)",
		e.Name, strings.Join(e.Available, ", "))
}

// Request selects one analysis computation: a registry name plus a
// resolved parameter bag. The zero Params means "all defaults" — the
// engine resolves it against the registration's schema — so
// Request{Name: "fig3"} is exactly the old by-name selection. Build
// non-default bags with reg.Params.Resolve(raw).
type Request struct {
	Name   string
	Params analysis.Params
	// Trace, when non-nil, receives this request's lifecycle events.
	// It never affects memo identity or results — two requests
	// differing only in Trace share one computation, and only the one
	// that computes reports.
	Trace *TraceHooks
}

// Analysis computes one named analysis with default parameters,
// memoized per engine: the first call pays for the computation (and,
// transitively, for corpus ingestion), every later call returns the
// cached result.
func (e *Engine) Analysis(name string) (any, error) {
	return e.AnalysisRequest(Request{Name: name})
}

// AnalysisRequest computes one parameterized analysis, memoized per
// (name, canonical params): requesting clusters with k=3 and k=5 holds
// two independent cache entries, while two spellings of the same
// parameterization — including defaults spelled out — share one.
func (e *Engine) AnalysisRequest(req Request) (any, error) {
	reg, ok := analysis.Lookup(req.Name)
	if !ok {
		return nil, &UnknownAnalysisError{Name: req.Name, Available: analysis.SortedNames()}
	}
	params := req.Params
	if params.IsZero() {
		params = reg.DefaultParams() // resolved once, at registration
	}
	key := memoKey{name: req.Name, params: params.Canonical()}
	e.mu.Lock()
	m := e.memos[key]
	hit := m != nil
	if m == nil {
		m = &memo{}
		e.memos[key] = m
		if key.params != "" {
			e.paramOrder = append(e.paramOrder, key)
			if len(e.paramOrder) > paramMemoLimit {
				delete(e.memos, e.paramOrder[0])
				copy(e.paramOrder, e.paramOrder[1:])
				e.paramOrder = e.paramOrder[:paramMemoLimit]
			}
		}
	}
	e.mu.Unlock()
	if hit {
		e.memoHits.Add(1)
		if e.obs.Hit != nil {
			e.obs.Hit(key.name, key.params)
		}
	} else {
		e.memoMisses.Add(1)
	}
	m.once.Do(func() {
		var ds *analysis.Dataset
		if !reg.Static {
			var err error
			if ds, err = e.dataset(req.Trace); err != nil {
				m.err = err
				return
			}
			if req.Trace != nil && req.Trace.Kernel != nil {
				// A shallow copy sharing the dataset's cache identity,
				// so attaching the per-request observer never splits
				// dataset-keyed caches downstream.
				ds = ds.WithKernel(req.Trace.Kernel)
			}
		}
		// The compute timer starts after dataset so the observer sees
		// the analysis function's own cost, not the ingestion it may
		// have been first to trigger — Ingest reports that separately.
		start := time.Now()
		m.val, m.err = reg.Func(ds, params)
		end := time.Now()
		if e.obs.Compute != nil {
			e.obs.Compute(key.name, key.params, end.Sub(start), m.err)
		}
		if req.Trace != nil && req.Trace.Compute != nil {
			req.Trace.Compute(ComputeTrace{Name: key.name, Params: key.params,
				Start: start, End: end, Err: m.err})
		}
	})
	return m.val, m.err
}

// MemoStats is a point-in-time snapshot of one engine's analysis memo
// cache: lifetime hit/miss counts plus the resident entry count.
// A "hit" is any request that found an existing entry — including
// requests that then blocked on a computation still in flight — so
// hits + misses equals total AnalysisRequest calls.
type MemoStats struct {
	Hits    int64
	Misses  int64
	Entries int
}

// MemoStats reports the engine's memo-cache counters.
func (e *Engine) MemoStats() MemoStats {
	e.mu.Lock()
	n := len(e.memos)
	e.mu.Unlock()
	return MemoStats{
		Hits:    e.memoHits.Load(),
		Misses:  e.memoMisses.Load(),
		Entries: n,
	}
}

// RunsIngested reports the corpus size without triggering ingestion:
// zero until the source has been streamed (or if it failed). The dsDone
// acquire makes reading dsErr safe here, mirroring IngestionFailed.
func (e *Engine) RunsIngested() int {
	if !e.Ingested() {
		return 0
	}
	return len(e.ds.Load().Raw)
}

// Ingested reports whether the corpus has been streamed successfully,
// without triggering ingestion. It is the append path's precondition
// check: runs handed to Append on an engine that has not ingested yet
// would be delivered again by the source itself on first ingestion.
func (e *Engine) Ingested() bool {
	return e.dsDone.Load() && e.dsErr == nil
}

// AppendStats reports what one Append delivered: how far the appended
// runs got through the classification funnel and what that did to the
// memo cache.
type AppendStats struct {
	// Appended is the number of runs handed in.
	Appended int
	// Parsed counts appended runs that passed parse-consistency
	// (including the comparable ones); Comparable counts runs that
	// reached the comparable set.
	Parsed     int
	Comparable int
	// Invalidated is the number of memo entries dropped because their
	// declared input stage gained rows; Retained is the number kept
	// warm because it did not.
	Invalidated int
	Retained    int
}

// Append feeds new runs through the classification funnel the engine
// already built, publishes a fresh dataset snapshot, and drops exactly
// the memos whose declared input stage (analysis.Reads) gained rows —
// analyses unaffected by the appended runs keep serving from memo.
// Ingestion is triggered if it has not happened yet, so the appended
// runs must not also be delivered by the engine's source; callers
// layering Append over a growing source (core.AppendSource) skip
// already-ingested content by checking Ingested first, as the serving
// pool does.
//
// Append is atomic with respect to other Append calls but not with
// respect to in-flight computations: a computation that started before
// an Append may observe the newer snapshot. Callers needing
// ETag-style read consistency serialize appends against reads, as the
// serving pool does with its per-scope lock.
func (e *Engine) Append(runs []*model.Run) (AppendStats, error) {
	var st AppendStats
	if len(runs) == 0 {
		return st, nil
	}
	if _, err := e.dataset(nil); err != nil {
		return st, err
	}
	e.appendMu.Lock()
	defer e.appendMu.Unlock()
	before := e.builder.Funnel()
	for _, r := range runs {
		e.builder.Add(r)
	}
	after := e.builder.Funnel()
	st.Appended = len(runs)
	st.Parsed = after.Parsed - before.Parsed
	st.Comparable = after.Comparable - before.Comparable
	snap := e.builder.Snapshot()
	snap.Workers = e.workers
	e.ds.Store(snap)
	st.Invalidated, st.Retained = e.invalidate(st.Parsed > 0, st.Comparable > 0)
	return st, nil
}

// invalidate drops the memos whose declared input stage gained rows
// and reports how many were dropped vs. kept warm.
func (e *Engine) invalidate(parsed, comparable bool) (dropped, kept int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for key := range e.memos {
		if !appendAffects(inputOf(key.name), parsed, comparable) {
			kept++
			continue
		}
		delete(e.memos, key)
		dropped++
	}
	if dropped > 0 && len(e.paramOrder) > 0 {
		live := e.paramOrder[:0]
		for _, key := range e.paramOrder {
			if _, ok := e.memos[key]; ok {
				live = append(live, key)
			}
		}
		e.paramOrder = live
	}
	return dropped, kept
}

// inputOf resolves an analysis's declared input stage, defaulting to
// the conservative InputRaw for names no longer registered.
func inputOf(name string) analysis.Input {
	if reg, ok := analysis.Lookup(name); ok {
		return reg.Input
	}
	return analysis.InputRaw
}

// appendAffects reports whether an analysis reading the given stage is
// affected by an append whose runs reached the given stages. Raw is
// always affected: every appended run lands in the raw set.
func appendAffects(in analysis.Input, parsed, comparable bool) bool {
	switch in {
	case analysis.InputNone:
		return false
	case analysis.InputComparable:
		return comparable
	case analysis.InputParsed:
		return parsed
	default:
		return true
	}
}

// AnalysisAs runs a named analysis and asserts its result type.
func AnalysisAs[T any](e *Engine, name string) (T, error) {
	var zero T
	v, err := e.Analysis(name)
	if err != nil {
		return zero, err
	}
	t, ok := v.(T)
	if !ok {
		return zero, fmt.Errorf("core: analysis %q is %T, not %T", name, v, zero)
	}
	return t, nil
}

// Result is one analysis outcome, as selected by Run or RunRequests.
// Params is the canonical non-default parameter string of the request
// ("" — and absent from JSON — for a default request, keeping
// parameterless output byte-identical to the pre-params engine).
type Result struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	Params      string `json:"params,omitempty"`
	Value       any    `json:"value"`
}

// Run computes the named analyses (all registered ones when names is
// empty, in registration order) with default parameters; sugar over
// RunRequests.
func (e *Engine) Run(names ...string) ([]Result, error) {
	return e.RunRequests(requestsFor(names)...)
}

// requestsFor maps names to default-parameter requests (empty = every
// registered analysis, in registration order).
func requestsFor(names []string) []Request {
	if len(names) == 0 {
		names = analysis.Names()
	}
	reqs := make([]Request, len(names))
	for i, name := range names {
		reqs[i] = Request{Name: name}
	}
	return reqs
}

// RunRequests computes the requested analyses (empty = all registered
// ones with default parameters) concurrently across the engine's worker
// pool and returns them in request order. The memo cache makes the
// fan-out safe — each (name, params) pair still runs at most once per
// engine, with a full report costing max(analysis) wall-clock instead
// of sum(analysis) — and errors stay deterministic: the lowest-index
// failure wins, matching forEachParallel. Re-running a request is free.
func (e *Engine) RunRequests(reqs ...Request) ([]Result, error) {
	if len(reqs) == 0 {
		reqs = requestsFor(nil)
	}
	if err := e.compute(reqs, nil); err != nil {
		return nil, err
	}
	out := make([]Result, 0, len(reqs))
	for _, req := range reqs {
		v, err := e.AnalysisRequest(req) // memoized by compute: a cache read
		if err != nil {
			return nil, err
		}
		reg, _ := analysis.Lookup(req.Name)
		out = append(out, Result{
			Name:        req.Name,
			Description: reg.Description,
			Params:      req.Params.Canonical(),
			Value:       v,
		})
	}
	return out, nil
}

// compute fans the requested analyses out across a bounded worker pool
// (e.workers, 0 = GOMAXPROCS) and populates the memo cache. Names in
// optional still warm the cache but do not fail the batch. Corpus
// ingestion happens once: the first worker to need the dataset pays for
// it inside dsOnce while the others block on the same sync.Once.
func (e *Engine) compute(reqs []Request, optional map[string]bool) error {
	return forEachParallel(len(reqs), e.workers, func(i int) error {
		_, err := e.AnalysisRequest(reqs[i])
		if optional[reqs[i].Name] {
			return nil
		}
		return err
	})
}

// WriteJSON runs the named analyses (empty = all) with default
// parameters and writes them as an indented JSON array of
// {name, description, value} objects — the machine-readable sibling of
// WriteReport.
func (e *Engine) WriteJSON(w io.Writer, names ...string) error {
	return e.WriteJSONRequests(w, requestsFor(names)...)
}

// WriteJSONRequests runs the requested analyses (empty = all, default
// parameters) and writes them as an indented JSON array; requests with
// non-default parameters additionally carry their canonical params
// string.
func (e *Engine) WriteJSONRequests(w io.Writer, reqs ...Request) error {
	results, err := e.RunRequests(reqs...)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		return fmt.Errorf("core: encode analyses: %w", err)
	}
	return nil
}

// table1 is registered here rather than in the analysis package: it
// compares two catalog systems under SPEC CPU 2017 and SPEC Power
// models and does not depend on the corpus, so it lives with the layer
// that knows about speccpu. It also demonstrates that the registry is
// open to callers outside the analysis package.
func init() {
	analysis.RegisterStatic("table1",
		"Table I: SR650 V3 (Intel) vs SR645 V3 (AMD) across SPEC benchmarks",
		func() (any, error) {
			intelSys, amdSys, err := speccpu.DefaultDuel()
			if err != nil {
				return nil, err
			}
			return speccpu.Table1(intelSys, amdSys)
		})
}
