package core

import (
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"repro/internal/model"
)

// Parse-cache counters are package-level because CachedSource is a
// value type constructed per ingestion — there is no long-lived
// receiver to hang them on. They count process-lifetime events across
// every CachedSource stream.
var (
	parseCacheHits          atomic.Int64 // size+mtime matched, parser skipped
	parseCacheMisses        atomic.Int64 // file absent from the cache
	parseCacheInvalidations atomic.Int64 // cached but stale (size or mtime changed)
	parseCachePrunes        atomic.Int64 // stale keys dropped at rewrite (deleted files)
)

// ParseCacheStats is a point-in-time snapshot of the process-wide gob
// parse-cache counters. Misses and invalidations both end in a
// re-parse; they are kept apart so a corpus that churns in place
// (invalidations) reads differently from one that grows (misses).
type ParseCacheStats struct {
	Hits          int64
	Misses        int64
	Invalidations int64
	Prunes        int64
}

// ParseCacheCounters reports the process-wide parse-cache counters.
func ParseCacheCounters() ParseCacheStats {
	return ParseCacheStats{
		Hits:          parseCacheHits.Load(),
		Misses:        parseCacheMisses.Load(),
		Invalidations: parseCacheInvalidations.Load(),
		Prunes:        parseCachePrunes.Load(),
	}
}

// cacheFileName is the default gob parse-cache file inside a corpus
// directory. It carries no .txt extension, so the corpus lister never
// picks it up.
const cacheFileName = ".parse-cache.gob"

// cacheEntry is one cached parse: the file's identity (size + mtime)
// and the run it parsed to.
type cacheEntry struct {
	Size    int64
	ModTime int64 // UnixNano
	Run     *model.Run
}

// CachedSource streams a corpus directory like DirSource but keeps a
// gob parse cache next to the files (Dir/.parse-cache.gob by default),
// so repeat ingestion skips the text parser entirely. Entries are
// keyed by path relative to Dir and invalidated by file size + mtime:
// modified files are re-parsed, deleted files are pruned on the next
// successful stream, and cache trouble — missing, corrupt, or
// unwritable — silently degrades to plain parsing. Ordering,
// parallelism, and deterministic errors all match DirSource, but NOT
// its streaming memory bound: the cache holds every run in memory
// (both the loaded cache and the rewrite under construction), so for
// corpora larger than memory use DirSource instead.
type CachedSource struct {
	Dir string
	// CachePath overrides the cache file location (default
	// Dir/.parse-cache.gob).
	CachePath string
}

// Name implements Source.
func (s CachedSource) Name() string { return "cached(" + s.Dir + ")" }

func (s CachedSource) cachePath() string {
	if s.CachePath != "" {
		return s.CachePath
	}
	return filepath.Join(s.Dir, cacheFileName)
}

// Each implements Source.
func (s CachedSource) Each(workers int, yield func(*model.Run) error) error {
	paths, err := ListResultFiles(s.Dir)
	if err != nil {
		return err
	}
	old := loadParseCache(s.cachePath())
	var (
		mu    sync.Mutex
		fresh = make(map[string]cacheEntry, len(paths))
		dirty bool
	)
	load := func(path string) (*model.Run, error) {
		rel, err := filepath.Rel(s.Dir, path)
		if err != nil {
			rel = path
		}
		info, err := os.Stat(path)
		if err != nil {
			return nil, fmt.Errorf("core: stat %s: %w", path, err)
		}
		if ent, ok := old[rel]; ok {
			if ent.Size == info.Size() && ent.ModTime == info.ModTime().UnixNano() {
				parseCacheHits.Add(1)
				mu.Lock()
				fresh[rel] = ent
				mu.Unlock()
				return ent.Run, nil
			}
			parseCacheInvalidations.Add(1)
		} else {
			parseCacheMisses.Add(1)
		}
		r, err := parseResultFile(path)
		if err != nil {
			return nil, err
		}
		mu.Lock()
		fresh[rel] = cacheEntry{Size: info.Size(), ModTime: info.ModTime().UnixNano(), Run: r}
		dirty = true
		mu.Unlock()
		return r, nil
	}
	if err := eachLoaded(paths, workers, load, nil, yield); err != nil {
		return err
	}
	// Rewrite only when something changed: a new or re-parsed file, or a
	// stale entry to prune. Best-effort, like the load side: a read-only
	// corpus mount must not fail an ingestion that already succeeded —
	// the next run just parses cold again.
	if dirty || len(fresh) != len(old) {
		for rel := range old {
			if _, ok := fresh[rel]; !ok {
				parseCachePrunes.Add(1)
			}
		}
		_ = saveParseCache(s.cachePath(), fresh)
	}
	return nil
}

// loadParseCache reads a cache file; any failure (missing, corrupt,
// incompatible) yields an empty cache and a full re-parse.
func loadParseCache(path string) map[string]cacheEntry {
	f, err := os.Open(path)
	if err != nil {
		return nil
	}
	defer f.Close()
	var m map[string]cacheEntry
	if err := gob.NewDecoder(f).Decode(&m); err != nil {
		return nil
	}
	return m
}

// saveParseCache writes the cache atomically (temp file + rename), so a
// crash mid-write leaves the previous cache intact.
func saveParseCache(path string, m map[string]cacheEntry) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), cacheFileName+".tmp-*")
	if err != nil {
		return fmt.Errorf("core: write parse cache: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := gob.NewEncoder(tmp).Encode(m); err != nil {
		tmp.Close()
		return fmt.Errorf("core: encode parse cache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("core: write parse cache: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("core: write parse cache: %w", err)
	}
	return nil
}
