package core

import (
	"fmt"
	"strconv"
	"sync"

	"repro/internal/model"
)

// AppendSource is a Source that grows while it is being served: an
// inner source (the corpus as booted) plus an in-memory overlay of runs
// appended afterwards, stamped with a generation counter that advances
// on every change. Each streams the inner source first, then the
// overlay in append order, so the stream stays deterministic for a
// fixed append sequence.
//
// The generation composes into the fingerprint, so ETags derived from
// it change exactly when content does — including when the change
// happened underneath the inner source (a watcher dropping a new
// result file into a DirSource's directory advances the generation via
// Bump without duplicating the file into the overlay).
//
// All methods are safe for concurrent use.
type AppendSource struct {
	inner Source

	mu       sync.RWMutex
	appended []*model.Run
	gen      uint64
}

// NewAppendSource wraps inner at generation 0 with an empty overlay.
func NewAppendSource(inner Source) *AppendSource {
	return &AppendSource{inner: inner}
}

// Name implements Source.
func (s *AppendSource) Name() string {
	s.mu.RLock()
	n, gen := len(s.appended), s.gen
	s.mu.RUnlock()
	return fmt.Sprintf("append(%s, +%d@g%d)", s.inner.Name(), n, gen)
}

// Each implements Source: the inner stream, then the overlay in append
// order. The overlay is snapshotted up front, so a stream observes one
// generation's overlay even if appends land while the inner source is
// still draining — callers needing the stream to match a specific
// generation exclude appends for the duration, as the serving pool
// does.
func (s *AppendSource) Each(workers int, yield func(*model.Run) error) error {
	s.mu.RLock()
	overlay := s.appended[:len(s.appended):len(s.appended)]
	s.mu.RUnlock()
	if err := s.inner.Each(workers, yield); err != nil {
		return err
	}
	return SliceSource(overlay).Each(workers, yield)
}

// Append adds runs to the overlay and advances the generation,
// returning the new generation. Use it for runs that exist nowhere
// else (the POST /v1/runs path); runs whose files already joined the
// inner source belong to Bump instead, or they would be delivered
// twice on the next cold ingestion.
func (s *AppendSource) Append(runs ...*model.Run) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.appended = append(s.appended, runs...)
	s.gen++
	return s.gen
}

// Bump advances the generation without touching the overlay, for
// growth that happened inside the inner source (new result files in a
// watched directory). The inner fingerprint already reflects the new
// content; bumping keeps the generation a complete change counter.
func (s *AppendSource) Bump() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gen++
	return s.gen
}

// Generation returns the current generation: the number of Append and
// Bump calls so far.
func (s *AppendSource) Generation() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.gen
}

// AppendedRuns reports the overlay size.
func (s *AppendSource) AppendedRuns() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.appended)
}

// Fingerprint implements Fingerprinter: the generation, the inner
// fingerprint, and the overlay run IDs, all under one lock so a
// fingerprint never mixes two generations' overlays.
func (s *AppendSource) Fingerprint() (string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	inner, err := SourceFingerprint(s.inner)
	if err != nil {
		return "", err
	}
	parts := make([]string, 0, len(s.appended)+3)
	parts = append(parts, "append", strconv.FormatUint(s.gen, 10), inner)
	for _, r := range s.appended {
		parts = append(parts, r.ID)
	}
	return Digest(parts...), nil
}

// SourceParts implements Parted: the inner source (decomposed if it
// decomposes itself) followed by the overlay as a slice part, so
// ingest traces show booted corpus and live appends separately.
func (s *AppendSource) SourceParts() []Source {
	s.mu.RLock()
	overlay := s.appended[:len(s.appended):len(s.appended)]
	s.mu.RUnlock()
	parts := sourceParts(s.inner)
	if parts == nil {
		parts = []Source{s.inner}
	}
	if len(overlay) > 0 {
		parts = append(parts[:len(parts):len(parts)], SliceSource(overlay))
	}
	return parts
}
