package core

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/model"
)

func TestFilterSource(t *testing.T) {
	runs, err := GenerateCorpus(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	wantAMD := 0
	for _, r := range runs {
		if r.CPUVendor == model.VendorAMD {
			wantAMD++
		}
	}
	if wantAMD == 0 || wantAMD == len(runs) {
		t.Fatalf("test corpus needs a vendor mix, got %d/%d AMD", wantAMD, len(runs))
	}
	src := FilterSource{
		Inner: SliceSource(runs),
		Keep:  func(r *model.Run) bool { return r.CPUVendor == model.VendorAMD },
		Desc:  "vendor=AMD",
	}
	var got int
	err = src.Each(0, func(r *model.Run) error {
		if r.CPUVendor != model.VendorAMD {
			t.Fatalf("non-AMD run %s leaked through the filter", r.ID)
		}
		got++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != wantAMD {
		t.Errorf("filter yielded %d runs, want %d", got, wantAMD)
	}
	if name := src.Name(); !strings.Contains(name, "vendor=AMD") ||
		!strings.Contains(name, "slice") {
		t.Errorf("Name() = %q should describe predicate and inner source", name)
	}
	// nil Keep passes everything.
	all := 0
	if err := (FilterSource{Inner: SliceSource(runs)}).Each(0,
		func(*model.Run) error { all++; return nil }); err != nil {
		t.Fatal(err)
	}
	if all != len(runs) {
		t.Errorf("nil Keep yielded %d of %d", all, len(runs))
	}
}

func TestMergeSource(t *testing.T) {
	runs, err := GenerateCorpus(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	half := len(runs) / 2
	src := MergeSource{SliceSource(runs[:half]), SliceSource(runs[half:])}
	var ids []string
	if err := src.Each(0, func(r *model.Run) error {
		ids = append(ids, r.ID)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(ids) != len(runs) {
		t.Fatalf("merged %d of %d runs", len(ids), len(runs))
	}
	// Concatenation order is deterministic: first source fully drained,
	// then the second.
	for i, r := range runs {
		if ids[i] != r.ID {
			t.Fatalf("order differs at %d: %s vs %s", i, ids[i], r.ID)
		}
	}
	if name := src.Name(); !strings.HasPrefix(name, "merge(") ||
		!strings.Contains(name, " + ") {
		t.Errorf("Name() = %q", name)
	}
	// A yield error stops the whole merged stream.
	stop := errors.New("stop")
	n := 0
	err = src.Each(0, func(*model.Run) error {
		n++
		if n == half+2 { // inside the second source
			return stop
		}
		return nil
	})
	if !errors.Is(err, stop) || n != half+2 {
		t.Fatalf("err=%v after %d yields, want stop after %d", err, n, half+2)
	}
	// The merged engine classifies the same dataset as one big slice.
	merged, err := New(WithSource(src)).Dataset()
	if err != nil {
		t.Fatal(err)
	}
	direct, err := New(WithSource(SliceSource(runs))).Dataset()
	if err != nil {
		t.Fatal(err)
	}
	if a, b := funnelKey(direct), funnelKey(merged); a != b {
		t.Errorf("funnel differs: direct %v vs merged %v", a, b)
	}
}

func TestParseFilter(t *testing.T) {
	run := func(vendor model.CPUVendor, osf model.OSFamily, year int) *model.Run {
		return &model.Run{CPUVendor: vendor, OSFamily: osf,
			HWAvail: model.YM(year, time.June)}
	}
	amd2022 := run(model.VendorAMD, model.OSLinux, 2022)
	intel2010 := run(model.VendorIntel, model.OSWindows, 2010)
	intel2020 := run(model.VendorIntel, model.OSLinux, 2020)

	cases := []struct {
		expr string
		want map[*model.Run]bool
	}{
		{"vendor=AMD", map[*model.Run]bool{amd2022: true, intel2010: false}},
		{"vendor=amd|INTEL", map[*model.Run]bool{amd2022: true, intel2010: true}},
		{"os=Linux", map[*model.Run]bool{amd2022: true, intel2010: false}},
		{"year=2010", map[*model.Run]bool{intel2010: true, intel2020: false}},
		{"year=2018-2022", map[*model.Run]bool{amd2022: true, intel2020: true, intel2010: false}},
		{"since=2020", map[*model.Run]bool{amd2022: true, intel2020: true, intel2010: false}},
		{"vendor=Intel, since=2015", map[*model.Run]bool{intel2020: true, intel2010: false, amd2022: false}},
	}
	for _, c := range cases {
		keep, err := ParseFilter(c.expr)
		if err != nil {
			t.Fatalf("ParseFilter(%q): %v", c.expr, err)
		}
		for r, want := range c.want {
			if got := keep(r); got != want {
				t.Errorf("filter %q on %s/%s/%d = %v, want %v",
					c.expr, r.CPUVendor, r.OSFamily, r.HWAvail.Year, got, want)
			}
		}
	}

	for _, bad := range []string{
		"", "   ", "vendor", "color=red", "year=abc", "year=2022-2018",
		"since=soon", "vendor=", "os=",
	} {
		if _, err := ParseFilter(bad); err == nil {
			t.Errorf("ParseFilter(%q) should fail", bad)
		}
	}
}

// TestParseFilterErrorMessages: each error path names what went wrong
// precisely enough to fix the expression — these strings surface
// verbatim in CLI fatal messages and HTTP 400 bodies.
func TestParseFilterErrorMessages(t *testing.T) {
	cases := []struct {
		expr string
		want []string
	}{
		{"color=red", []string{"unknown filter key", `"color"`, "vendor"}},
		{"vendor", []string{`"vendor"`, "key=value"}},
		{"year=abc", []string{"year", `"abc"`}},
		{"year=2022-20xx", []string{"year", "FROM-TO"}},
		{"year=2022-2018", []string{"year", "FROM-TO"}},
		{"since=soon", []string{"since", `"soon"`, "year"}},
		{"", []string{"empty filter"}},
		{" , , ", []string{"empty filter"}},
		{"vendor=", []string{"vendor", "empty value"}},
		{"os=|", []string{"os", "empty value"}},
		{"vendor=AMD,color=red", []string{"unknown filter key", `"color"`}},
	}
	for _, c := range cases {
		_, err := ParseFilter(c.expr)
		if err == nil {
			t.Errorf("ParseFilter(%q) should fail", c.expr)
			continue
		}
		for _, want := range c.want {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("ParseFilter(%q) error %q missing %q", c.expr, err, want)
			}
		}
	}
}

// TestFilterOverCachedSource: FilterSource composed over CachedSource —
// the exact stack the HTTP server pool builds per scope. The filter
// must see the same runs cold (parsing) and warm (gob cache), and the
// filtered stream must not disturb what gets cached: the cache holds
// the whole directory, so differently-filtered scopes share it.
func TestFilterOverCachedSource(t *testing.T) {
	runs, err := GenerateCorpus(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := WriteCorpus(dir, runs, 0); err != nil {
		t.Fatal(err)
	}
	keep, err := ParseFilter("vendor=AMD")
	if err != nil {
		t.Fatal(err)
	}
	stack := func() Source {
		return FilterSource{Inner: CachedSource{Dir: dir}, Keep: keep, Desc: "vendor=AMD"}
	}
	count := func(src Source) int {
		t.Helper()
		n := 0
		if err := src.Each(0, func(r *model.Run) error {
			if r.CPUVendor != model.VendorAMD {
				t.Fatalf("non-AMD run %s leaked through the cached filter", r.ID)
			}
			n++
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return n
	}

	cold := count(stack())
	if cold == 0 || cold == len(runs) {
		t.Fatalf("filtered corpus needs a vendor mix, got %d of %d", cold, len(runs))
	}
	if _, err := os.Stat(filepath.Join(dir, cacheFileName)); err != nil {
		t.Fatalf("cold filtered pass did not write the parse cache: %v", err)
	}
	if warm := count(stack()); warm != cold {
		t.Errorf("warm pass yielded %d runs, cold %d", warm, cold)
	}
	// A different scope over the same cached directory still sees the
	// full complement of its runs (the cache was not filtered down).
	keepIntel, err := ParseFilter("vendor=Intel")
	if err != nil {
		t.Fatal(err)
	}
	intel := 0
	if err := (FilterSource{Inner: CachedSource{Dir: dir}, Keep: keepIntel,
		Desc: "vendor=Intel"}).Each(0, func(*model.Run) error {
		intel++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if wantIntel := len(runs) - cold; intel == 0 || intel > wantIntel {
		t.Errorf("intel scope over the shared cache saw %d runs (corpus has ≤ %d)", intel, wantIntel)
	}
	// The engine-level view agrees with an unfiltered in-memory slice
	// of the same predicate.
	ds, err := New(WithSource(stack())).Dataset()
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Raw) != cold {
		t.Errorf("engine over the stack ingested %d runs, want %d", len(ds.Raw), cold)
	}
}

// TestFilterSourceEngineSlice: the canonical use — an engine over a
// per-vendor slice of a directory corpus.
func TestFilterSourceEngineSlice(t *testing.T) {
	runs, err := GenerateCorpus(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	keep, err := ParseFilter("vendor=AMD")
	if err != nil {
		t.Fatal(err)
	}
	ds, err := New(WithSource(FilterSource{
		Inner: SliceSource(runs), Keep: keep, Desc: "vendor=AMD",
	})).Dataset()
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Raw) == 0 {
		t.Fatal("AMD slice is empty")
	}
	for _, r := range ds.Raw {
		if r.CPUVendor != model.VendorAMD {
			t.Fatalf("run %s is %s, want AMD", r.ID, r.CPUVendor)
		}
	}
}
