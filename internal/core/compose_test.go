package core

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/model"
)

func TestFilterSource(t *testing.T) {
	runs, err := GenerateCorpus(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	wantAMD := 0
	for _, r := range runs {
		if r.CPUVendor == model.VendorAMD {
			wantAMD++
		}
	}
	if wantAMD == 0 || wantAMD == len(runs) {
		t.Fatalf("test corpus needs a vendor mix, got %d/%d AMD", wantAMD, len(runs))
	}
	src := FilterSource{
		Inner: SliceSource(runs),
		Keep:  func(r *model.Run) bool { return r.CPUVendor == model.VendorAMD },
		Desc:  "vendor=AMD",
	}
	var got int
	err = src.Each(0, func(r *model.Run) error {
		if r.CPUVendor != model.VendorAMD {
			t.Fatalf("non-AMD run %s leaked through the filter", r.ID)
		}
		got++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != wantAMD {
		t.Errorf("filter yielded %d runs, want %d", got, wantAMD)
	}
	if name := src.Name(); !strings.Contains(name, "vendor=AMD") ||
		!strings.Contains(name, "slice") {
		t.Errorf("Name() = %q should describe predicate and inner source", name)
	}
	// nil Keep passes everything.
	all := 0
	if err := (FilterSource{Inner: SliceSource(runs)}).Each(0,
		func(*model.Run) error { all++; return nil }); err != nil {
		t.Fatal(err)
	}
	if all != len(runs) {
		t.Errorf("nil Keep yielded %d of %d", all, len(runs))
	}
}

func TestMergeSource(t *testing.T) {
	runs, err := GenerateCorpus(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	half := len(runs) / 2
	src := MergeSource{SliceSource(runs[:half]), SliceSource(runs[half:])}
	var ids []string
	if err := src.Each(0, func(r *model.Run) error {
		ids = append(ids, r.ID)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(ids) != len(runs) {
		t.Fatalf("merged %d of %d runs", len(ids), len(runs))
	}
	// Concatenation order is deterministic: first source fully drained,
	// then the second.
	for i, r := range runs {
		if ids[i] != r.ID {
			t.Fatalf("order differs at %d: %s vs %s", i, ids[i], r.ID)
		}
	}
	if name := src.Name(); !strings.HasPrefix(name, "merge(") ||
		!strings.Contains(name, " + ") {
		t.Errorf("Name() = %q", name)
	}
	// A yield error stops the whole merged stream.
	stop := errors.New("stop")
	n := 0
	err = src.Each(0, func(*model.Run) error {
		n++
		if n == half+2 { // inside the second source
			return stop
		}
		return nil
	})
	if !errors.Is(err, stop) || n != half+2 {
		t.Fatalf("err=%v after %d yields, want stop after %d", err, n, half+2)
	}
	// The merged engine classifies the same dataset as one big slice.
	merged, err := New(WithSource(src)).Dataset()
	if err != nil {
		t.Fatal(err)
	}
	direct, err := New(WithSource(SliceSource(runs))).Dataset()
	if err != nil {
		t.Fatal(err)
	}
	if a, b := funnelKey(direct), funnelKey(merged); a != b {
		t.Errorf("funnel differs: direct %v vs merged %v", a, b)
	}
}

func TestParseFilter(t *testing.T) {
	run := func(vendor model.CPUVendor, osf model.OSFamily, year int) *model.Run {
		return &model.Run{CPUVendor: vendor, OSFamily: osf,
			HWAvail: model.YM(year, time.June)}
	}
	amd2022 := run(model.VendorAMD, model.OSLinux, 2022)
	intel2010 := run(model.VendorIntel, model.OSWindows, 2010)
	intel2020 := run(model.VendorIntel, model.OSLinux, 2020)

	cases := []struct {
		expr string
		want map[*model.Run]bool
	}{
		{"vendor=AMD", map[*model.Run]bool{amd2022: true, intel2010: false}},
		{"vendor=amd|INTEL", map[*model.Run]bool{amd2022: true, intel2010: true}},
		{"os=Linux", map[*model.Run]bool{amd2022: true, intel2010: false}},
		{"year=2010", map[*model.Run]bool{intel2010: true, intel2020: false}},
		{"year=2018-2022", map[*model.Run]bool{amd2022: true, intel2020: true, intel2010: false}},
		{"since=2020", map[*model.Run]bool{amd2022: true, intel2020: true, intel2010: false}},
		{"vendor=Intel, since=2015", map[*model.Run]bool{intel2020: true, intel2010: false, amd2022: false}},
	}
	for _, c := range cases {
		keep, err := ParseFilter(c.expr)
		if err != nil {
			t.Fatalf("ParseFilter(%q): %v", c.expr, err)
		}
		for r, want := range c.want {
			if got := keep(r); got != want {
				t.Errorf("filter %q on %s/%s/%d = %v, want %v",
					c.expr, r.CPUVendor, r.OSFamily, r.HWAvail.Year, got, want)
			}
		}
	}

	for _, bad := range []string{
		"", "   ", "vendor", "color=red", "year=abc", "year=2022-2018",
		"since=soon", "vendor=", "os=",
	} {
		if _, err := ParseFilter(bad); err == nil {
			t.Errorf("ParseFilter(%q) should fail", bad)
		}
	}
}

// TestFilterSourceEngineSlice: the canonical use — an engine over a
// per-vendor slice of a directory corpus.
func TestFilterSourceEngineSlice(t *testing.T) {
	runs, err := GenerateCorpus(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	keep, err := ParseFilter("vendor=AMD")
	if err != nil {
		t.Fatal(err)
	}
	ds, err := New(WithSource(FilterSource{
		Inner: SliceSource(runs), Keep: keep, Desc: "vendor=AMD",
	})).Dataset()
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Raw) == 0 {
		t.Fatal("AMD slice is empty")
	}
	for _, r := range ds.Raw {
		if r.CPUVendor != model.VendorAMD {
			t.Fatalf("run %s is %s, want AMD", r.ID, r.CPUVendor)
		}
	}
}
