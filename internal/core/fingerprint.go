package core

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
)

// A Fingerprinter is a Source that can identify its corpus contents:
// two sources with equal fingerprints deliver the same runs. Serving
// layers use the fingerprint to derive strong cache validators (HTTP
// ETags) without ingesting anything — a directory source, for example,
// fingerprints from file names, sizes, and mtimes, the same identity
// CachedSource invalidates its parse cache by.
type Fingerprinter interface {
	// Fingerprint returns a stable hex digest of the corpus identity.
	Fingerprint() (string, error)
}

// SourceFingerprint returns a stable identity for any Source: the
// source's own Fingerprint when it implements Fingerprinter, otherwise
// a digest of its Name(). The fallback is conservative: it never claims
// two different corpora are equal, it only misses some equalities (two
// differently-named wrappers of the same runs hash apart).
func SourceFingerprint(s Source) (string, error) {
	if fp, ok := s.(Fingerprinter); ok {
		return fp.Fingerprint()
	}
	return Digest("name", s.Name()), nil
}

// Digest hashes its parts into a stable hex digest, each part
// length-prefixed so concatenation ambiguities ("ab"+"c" vs "a"+"bc")
// cannot collide. It is the framing behind every Fingerprint in this
// package; derived validators (the HTTP server's ETags) build on it so
// the framing cannot drift between layers.
func Digest(parts ...string) string {
	h := sha256.New()
	var lenBuf [8]byte
	for _, p := range parts {
		binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(p)))
		h.Write(lenBuf[:])
		h.Write([]byte(p))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Fingerprint implements Fingerprinter: the generator options pin the
// corpus exactly (synthesis is deterministic per seed and plan).
func (s SynthSource) Fingerprint() (string, error) {
	return Digest("synth", fmt.Sprintf("%#v", s.Options)), nil
}

// Fingerprint implements Fingerprinter over the run IDs.
func (s SliceSource) Fingerprint() (string, error) {
	parts := make([]string, 0, len(s)+1)
	parts = append(parts, "slice")
	for _, r := range s {
		parts = append(parts, r.ID)
	}
	return Digest(parts...), nil
}

// Fingerprint implements Fingerprinter from the result-file listing:
// relative path, size, and mtime of every corpus file, the same
// identity CachedSource invalidates by. Parsing nothing keeps it cheap
// enough to compute per serving scope.
func (s DirSource) Fingerprint() (string, error) {
	return dirFingerprint(s.Dir)
}

// Fingerprint implements Fingerprinter. A cached directory fingerprints
// identically to the plain DirSource over the same files: the cache
// changes how runs are loaded, never which runs are delivered.
func (s CachedSource) Fingerprint() (string, error) {
	return dirFingerprint(s.Dir)
}

func dirFingerprint(dir string) (string, error) {
	paths, err := ListResultFiles(dir)
	if err != nil {
		return "", err
	}
	parts := make([]string, 0, 2*len(paths)+1)
	parts = append(parts, "dir")
	for _, p := range paths {
		rel, err := filepath.Rel(dir, p)
		if err != nil {
			rel = p
		}
		info, err := os.Stat(p)
		if err != nil {
			return "", fmt.Errorf("core: fingerprint %s: %w", p, err)
		}
		parts = append(parts, rel,
			fmt.Sprintf("%d:%d", info.Size(), info.ModTime().UnixNano()))
	}
	return Digest(parts...), nil
}

// Fingerprint implements Fingerprinter from the inner fingerprint and
// the predicate description. Desc is the predicate's identity — two
// filters with the same Desc over the same corpus are assumed
// equivalent, which holds for every core.ParseFilter expression.
func (s FilterSource) Fingerprint() (string, error) {
	inner, err := SourceFingerprint(s.Inner)
	if err != nil {
		return "", err
	}
	return Digest("filter", s.Desc, inner), nil
}

// Fingerprint implements Fingerprinter over the child fingerprints, in
// stream order.
func (s MergeSource) Fingerprint() (string, error) {
	parts := make([]string, 0, len(s)+1)
	parts = append(parts, "merge")
	for _, src := range s {
		fp, err := SourceFingerprint(src)
		if err != nil {
			return "", err
		}
		parts = append(parts, fp)
	}
	return Digest(parts...), nil
}
