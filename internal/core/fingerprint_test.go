package core

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/synth"
)

func TestSynthSourceFingerprint(t *testing.T) {
	a := SynthSource{Options: synth.DefaultOptions()}
	fp1, err := SourceFingerprint(a)
	if err != nil {
		t.Fatal(err)
	}
	fp2, err := SourceFingerprint(SynthSource{Options: synth.DefaultOptions()})
	if err != nil {
		t.Fatal(err)
	}
	if fp1 != fp2 {
		t.Error("equal synth options fingerprint differently")
	}
	opt := synth.DefaultOptions()
	opt.Seed++
	fp3, err := SourceFingerprint(SynthSource{Options: opt})
	if err != nil {
		t.Fatal(err)
	}
	if fp3 == fp1 {
		t.Error("different seeds share a fingerprint")
	}
}

func TestSliceSourceFingerprint(t *testing.T) {
	runs, err := GenerateCorpus(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	fp1, _ := SourceFingerprint(SliceSource(runs))
	fp2, _ := SourceFingerprint(SliceSource(runs))
	if fp1 != fp2 {
		t.Error("same slice fingerprints differently")
	}
	fp3, _ := SourceFingerprint(SliceSource(runs[1:]))
	if fp3 == fp1 {
		t.Error("different slices share a fingerprint")
	}
}

func TestDirSourceFingerprintTracksFiles(t *testing.T) {
	runs, err := GenerateCorpus(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := WriteCorpus(dir, runs, 0); err != nil {
		t.Fatal(err)
	}
	fp1, err := SourceFingerprint(DirSource{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	fp2, err := SourceFingerprint(DirSource{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if fp1 != fp2 {
		t.Error("unchanged directory fingerprints differently")
	}
	// A cached source over the same files shares the identity: the
	// cache changes how runs load, not which runs exist.
	fpCached, err := SourceFingerprint(CachedSource{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if fpCached != fp1 {
		t.Error("CachedSource fingerprints differently from DirSource over the same files")
	}
	// Touching one file (newer mtime) changes the fingerprint.
	victim := filepath.Join(dir, runs[0].ID+".txt")
	future := time.Now().Add(time.Hour)
	if err := os.Chtimes(victim, future, future); err != nil {
		t.Fatal(err)
	}
	fp3, err := SourceFingerprint(DirSource{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if fp3 == fp1 {
		t.Error("touched file did not change the fingerprint")
	}
	// A missing directory is an error, not a silent empty identity.
	if _, err := SourceFingerprint(DirSource{Dir: filepath.Join(dir, "nope")}); err == nil {
		t.Error("missing directory should fail to fingerprint")
	}
}

func TestCombinatorFingerprints(t *testing.T) {
	runs, err := GenerateCorpus(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	inner := SliceSource(runs)
	innerFP, _ := SourceFingerprint(inner)
	f1, err := SourceFingerprint(FilterSource{Inner: inner, Desc: "vendor=amd"})
	if err != nil {
		t.Fatal(err)
	}
	f2, _ := SourceFingerprint(FilterSource{Inner: inner, Desc: "vendor=intel"})
	if f1 == f2 {
		t.Error("different filter descs share a fingerprint")
	}
	if f1 == innerFP {
		t.Error("filter shares its inner fingerprint")
	}
	m1, err := SourceFingerprint(MergeSource{inner, inner})
	if err != nil {
		t.Fatal(err)
	}
	m2, _ := SourceFingerprint(MergeSource{inner})
	if m1 == m2 || m1 == innerFP {
		t.Error("merge fingerprint does not reflect its children")
	}
}

// fallbackSource implements only Source, never Fingerprinter.
type fallbackSource struct{ name string }

func (f fallbackSource) Name() string                           { return f.name }
func (f fallbackSource) Each(int, func(*model.Run) error) error { return nil }

func TestSourceFingerprintFallsBackToName(t *testing.T) {
	fp1, err := SourceFingerprint(fallbackSource{name: "a"})
	if err != nil {
		t.Fatal(err)
	}
	fp2, _ := SourceFingerprint(fallbackSource{name: "b"})
	if fp1 == "" || fp1 == fp2 {
		t.Errorf("fallback fingerprints: %q vs %q", fp1, fp2)
	}
}
