// Package core is the public façade of the specpower-trends library. It
// ties the synthetic corpus generator, the result-file writer/parser,
// and the longitudinal analyses together behind one streaming Engine:
// a pluggable corpus Source feeds the classification funnel
// incrementally, and every named analysis from the registry is computed
// lazily, at most once per engine and parameterization.
//
// Typical use:
//
//	eng := core.New()                       // default synthetic corpus
//	ds, _ := eng.Dataset()                  // 1017 → 960 → 676 funnel
//	fig3, _ := core.AnalysisAs[analysis.TrendFigure](eng, "fig3")
//
// or, over a corpus directory, selecting analyses by name:
//
//	eng := core.New(core.WithSource(core.DirSource{Dir: dir}),
//		core.WithWorkers(8))
//	results, _ := eng.Run("fig3", "funnel") // lazy, memoized
//	_ = eng.WriteJSON(os.Stdout, "trends")  // machine-readable output
//
// DirSource streams: result files are parsed by a bounded worker pool
// and classified as they arrive, so corpora far larger than the
// paper's 1017 runs never need to fit in memory at once. CachedSource
// adds a gob parse cache next to the corpus so repeat ingestion skips
// the parser, and FilterSource/MergeSource compose sources into corpus
// scenarios (per-vendor slices, merged directories, …). Run, WriteJSON,
// and WriteReport fan independent analyses out across the same worker
// bound, so a full report costs max(analysis) rather than
// sum(analysis).
//
// Analyses that declare typed parameters (analysis.Schema) are selected
// with per-request values through core.Request, each distinct
// parameterization memoized independently:
//
//	reg, _ := analysis.Lookup("clusters")
//	params, _ := reg.Params.Resolve(map[string]string{"k": "5"})
//	results, _ := eng.RunRequests(core.Request{Name: "clusters", Params: params})
package core

import (
	"repro/internal/model"
	"repro/internal/synth"
)

// GenerateCorpus produces the paper-calibrated synthetic corpus.
func GenerateCorpus(opt synth.Options) ([]*model.Run, error) {
	return synth.Generate(opt)
}
