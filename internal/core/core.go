// Package core is the public façade of the specpower-trends library. It
// ties the synthetic corpus generator, the result-file writer/parser,
// and the longitudinal analyses together behind one streaming Engine:
// a pluggable corpus Source feeds the classification funnel
// incrementally, and every named analysis from the registry is computed
// lazily, at most once per engine.
//
// Typical use:
//
//	eng := core.New()                       // default synthetic corpus
//	ds, _ := eng.Dataset()                  // 1017 → 960 → 676 funnel
//	fig3, _ := core.AnalysisAs[analysis.TrendFigure](eng, "fig3")
//
// or, over a corpus directory, selecting analyses by name:
//
//	eng := core.New(core.WithSource(core.DirSource{Dir: dir}),
//		core.WithWorkers(8))
//	results, _ := eng.Run("fig3", "funnel") // lazy, memoized
//	_ = eng.WriteJSON(os.Stdout, "trends")  // machine-readable output
//
// DirSource streams: result files are parsed by a bounded worker pool
// and classified as they arrive, so corpora far larger than the
// paper's 1017 runs never need to fit in memory at once. CachedSource
// adds a gob parse cache next to the corpus so repeat ingestion skips
// the parser, and FilterSource/MergeSource compose sources into corpus
// scenarios (per-vendor slices, merged directories, …). Run, WriteJSON,
// and WriteReport fan independent analyses out across the same worker
// bound, so a full report costs max(analysis) rather than
// sum(analysis). The eager Study type and its constructors remain as
// deprecated shims over the Engine.
package core

import (
	"repro/internal/analysis"
	"repro/internal/model"
	"repro/internal/synth"
)

// Study wraps a classified dataset and memoizes derived analyses.
//
// Deprecated: build an Engine instead (core.New with a Source); Study
// remains as a thin shim over it.
type Study struct {
	// Dataset holds the corpus split into pipeline stages.
	Dataset *analysis.Dataset

	eng *Engine
}

// engine returns the Engine behind the shim. Old code paths only ever
// construct studies through it, but a hand-built Study{Dataset: ds} —
// or even a zero Study, which gets an empty corpus — still works.
func (s *Study) engine() *Engine {
	if s.eng == nil {
		var runs []*model.Run
		if s.Dataset != nil {
			runs = s.Dataset.Raw
		}
		s.eng = New(WithSource(SliceSource(runs)))
	}
	return s.eng
}

// studyOf wraps an engine as the deprecated façade.
func studyOf(eng *Engine) (*Study, error) {
	ds, err := eng.Dataset()
	if err != nil {
		return nil, err
	}
	return &Study{Dataset: ds, eng: eng}, nil
}

// NewStudy classifies runs and builds a study.
//
// Deprecated: use core.New(core.WithSource(core.SliceSource(runs))).
func NewStudy(runs []*model.Run) *Study {
	s, _ := studyOf(New(WithSource(SliceSource(runs)))) // slice sources cannot fail
	return s
}

// LoadStudy parses a corpus directory and classifies it.
//
// Deprecated: use core.New(core.WithSource(core.DirSource{Dir: dir}),
// core.WithWorkers(workers)).
func LoadStudy(dir string, workers int) (*Study, error) {
	return studyOf(New(WithSource(DirSource{Dir: dir}), WithWorkers(workers)))
}

// DefaultStudy generates the default corpus and builds its study.
//
// Deprecated: use core.New(); the zero-option engine studies the same
// corpus lazily.
func DefaultStudy() (*Study, error) {
	return studyOf(New())
}

// GenerateCorpus produces the paper-calibrated synthetic corpus.
func GenerateCorpus(opt synth.Options) ([]*model.Run, error) {
	return synth.Generate(opt)
}
