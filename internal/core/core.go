// Package core is the public façade of the specpower-trends library: it
// ties the synthetic corpus generator, the result-file writer/parser,
// and the longitudinal analyses into one Study type that the command
// line tools, examples and benchmarks drive.
//
// Typical use:
//
//	runs, _ := core.GenerateCorpus(synth.DefaultOptions())
//	study := core.NewStudy(runs)
//	fmt.Println(study.Dataset.Funnel)
//	fig3 := analysis.Fig3OverallEfficiency(study.Dataset.Comparable)
//
// or, going through the full closed loop (render → parse → analyse):
//
//	core.WriteCorpus(dir, runs, 0)
//	study, _ := core.LoadStudy(dir, 0)
package core

import (
	"repro/internal/analysis"
	"repro/internal/model"
	"repro/internal/synth"
)

// Study wraps a classified dataset and memoizes derived analyses.
type Study struct {
	// Dataset holds the corpus split into pipeline stages.
	Dataset *analysis.Dataset
}

// NewStudy classifies runs and builds a study.
func NewStudy(runs []*model.Run) *Study {
	return &Study{Dataset: analysis.BuildDataset(runs)}
}

// GenerateCorpus produces the paper-calibrated synthetic corpus.
func GenerateCorpus(opt synth.Options) ([]*model.Run, error) {
	return synth.Generate(opt)
}

// DefaultStudy generates the default corpus and builds its study.
func DefaultStudy() (*Study, error) {
	runs, err := GenerateCorpus(synth.DefaultOptions())
	if err != nil {
		return nil, err
	}
	return NewStudy(runs), nil
}
