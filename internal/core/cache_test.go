package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/model"
)

// cachedIDs streams the source and returns the IDs in delivery order.
func cachedIDs(t *testing.T, src Source, workers int) []string {
	t.Helper()
	var ids []string
	if err := src.Each(workers, func(r *model.Run) error {
		ids = append(ids, r.ID)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return ids
}

func TestCachedSourceRoundTrip(t *testing.T) {
	runs, err := GenerateCorpus(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := WriteCorpus(dir, runs, 0); err != nil {
		t.Fatal(err)
	}
	src := CachedSource{Dir: dir}

	// Cold: parses everything and writes the cache file.
	cold := cachedIDs(t, src, 4)
	if len(cold) != len(runs) {
		t.Fatalf("cold stream yielded %d of %d", len(cold), len(runs))
	}
	if _, err := os.Stat(filepath.Join(dir, cacheFileName)); err != nil {
		t.Fatalf("cache file missing after cold stream: %v", err)
	}

	// Warm: identical IDs in identical (sorted-path) order, and the same
	// dataset as an uncached DirSource.
	warm := cachedIDs(t, src, 4)
	if len(warm) != len(cold) {
		t.Fatalf("warm stream yielded %d, cold %d", len(warm), len(cold))
	}
	for i := range cold {
		if warm[i] != cold[i] {
			t.Fatalf("order differs at %d: %s vs %s", i, warm[i], cold[i])
		}
	}
	cachedDS, err := New(WithSource(src)).Dataset()
	if err != nil {
		t.Fatal(err)
	}
	plainDS, err := New(WithSource(DirSource{Dir: dir})).Dataset()
	if err != nil {
		t.Fatal(err)
	}
	if a, b := funnelKey(plainDS), funnelKey(cachedDS); a != b {
		t.Errorf("funnel differs: dir %v vs cached %v", a, b)
	}
}

// TestCachedSourceInvalidation: a modified file must be re-parsed, not
// served stale from the cache.
func TestCachedSourceInvalidation(t *testing.T) {
	runs, err := GenerateCorpus(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := WriteCorpus(dir, runs, 0); err != nil {
		t.Fatal(err)
	}
	src := CachedSource{Dir: dir}
	_ = cachedIDs(t, src, 0) // warm the cache

	// Corrupt one file. If the entry were served from the cache, the
	// stream would still succeed; invalidation forces a re-parse, which
	// fails and names the file.
	victim := filepath.Join(dir, runs[0].ID+".txt")
	if err := os.WriteFile(victim, []byte("no longer a report"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Ensure the mtime moves even on coarse-granularity filesystems.
	past := time.Now().Add(-time.Hour)
	if err := os.Chtimes(victim, past, past); err != nil {
		t.Fatal(err)
	}
	err = src.Each(0, func(*model.Run) error { return nil })
	if err == nil || !strings.Contains(err.Error(), runs[0].ID) {
		t.Fatalf("modified file served stale: err = %v", err)
	}
}

// TestCachedSourcePrunesDeleted: entries for deleted files disappear
// from both the stream and the rewritten cache.
func TestCachedSourcePrunesDeleted(t *testing.T) {
	runs, err := GenerateCorpus(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := WriteCorpus(dir, runs, 0); err != nil {
		t.Fatal(err)
	}
	src := CachedSource{Dir: dir}
	_ = cachedIDs(t, src, 0)
	if err := os.Remove(filepath.Join(dir, runs[0].ID+".txt")); err != nil {
		t.Fatal(err)
	}
	after := cachedIDs(t, src, 0)
	if len(after) != len(runs)-1 {
		t.Fatalf("stream yielded %d, want %d after deletion", len(after), len(runs)-1)
	}
	for _, id := range after {
		if id == runs[0].ID {
			t.Fatalf("deleted run %s still streamed", id)
		}
	}
	if m := loadParseCache(filepath.Join(dir, cacheFileName)); m[runs[0].ID+".txt"].Run != nil {
		t.Error("deleted file's entry survived the cache rewrite")
	}
}

// TestCachedSourceCorruptCache: a truncated or garbage cache file
// degrades to a full re-parse instead of failing.
func TestCachedSourceCorruptCache(t *testing.T) {
	runs, err := GenerateCorpus(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := WriteCorpus(dir, runs, 0); err != nil {
		t.Fatal(err)
	}
	cachePath := filepath.Join(dir, cacheFileName)
	if err := os.WriteFile(cachePath, []byte("gobbledygook"), 0o644); err != nil {
		t.Fatal(err)
	}
	src := CachedSource{Dir: dir}
	if got := cachedIDs(t, src, 4); len(got) != len(runs) {
		t.Fatalf("corrupt cache: streamed %d of %d", len(got), len(runs))
	}
	// The corrupt file was replaced by a valid cache.
	if m := loadParseCache(cachePath); len(m) != len(runs) {
		t.Errorf("rewritten cache holds %d entries, want %d", len(m), len(runs))
	}
}

// TestCachedSourceCustomPath: CachePath relocates the cache outside the
// corpus directory.
func TestCachedSourceCustomPath(t *testing.T) {
	runs, err := GenerateCorpus(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := WriteCorpus(dir, runs, 0); err != nil {
		t.Fatal(err)
	}
	cachePath := filepath.Join(t.TempDir(), "elsewhere.gob")
	src := CachedSource{Dir: dir, CachePath: cachePath}
	_ = cachedIDs(t, src, 0)
	if _, err := os.Stat(cachePath); err != nil {
		t.Fatalf("custom cache path not written: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, cacheFileName)); !os.IsNotExist(err) {
		t.Errorf("default cache file should not exist, stat err = %v", err)
	}
}

// TestCachedSourceAppendOneColdParse pins the cache's
// append-friendliness: a new result file joining the corpus directory
// costs exactly one cold parse on the next stream — the cached parses
// of every untouched file survive, so live ingestion never churns the
// whole cache.
func TestCachedSourceAppendOneColdParse(t *testing.T) {
	runs, err := GenerateCorpus(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	base, extra := runs[:len(runs)-1], runs[len(runs)-1:]
	if err := WriteCorpus(dir, base, 0); err != nil {
		t.Fatal(err)
	}
	src := CachedSource{Dir: dir}
	_ = cachedIDs(t, src, 0) // warm the cache over the base corpus

	if err := WriteCorpus(dir, extra, 0); err != nil {
		t.Fatal(err)
	}
	before := ParseCacheCounters()
	got := cachedIDs(t, src, 0)
	after := ParseCacheCounters()
	if len(got) != len(runs) {
		t.Fatalf("streamed %d of %d after append", len(got), len(runs))
	}
	if misses := after.Misses - before.Misses; misses != 1 {
		t.Errorf("appending one file cost %d cold parses, want 1", misses)
	}
	if hits := after.Hits - before.Hits; hits != int64(len(base)) {
		t.Errorf("append churned the cache: %d hits, want %d", hits, len(base))
	}
	if inv := after.Invalidations - before.Invalidations; inv != 0 {
		t.Errorf("append invalidated %d untouched entries", inv)
	}
}

// TestParseCacheCounters: the package-wide counters classify each load
// as hit, miss, invalidation, or prune. Counters are global, so the
// test asserts deltas across its own sequential streams.
func TestParseCacheCounters(t *testing.T) {
	runs, err := GenerateCorpus(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := WriteCorpus(dir, runs, 0); err != nil {
		t.Fatal(err)
	}
	src := CachedSource{Dir: dir}
	n := int64(len(runs))

	delta := func(f func()) ParseCacheStats {
		before := ParseCacheCounters()
		f()
		after := ParseCacheCounters()
		return ParseCacheStats{
			Hits:          after.Hits - before.Hits,
			Misses:        after.Misses - before.Misses,
			Invalidations: after.Invalidations - before.Invalidations,
			Prunes:        after.Prunes - before.Prunes,
		}
	}

	cold := delta(func() { _ = cachedIDs(t, src, 0) })
	if cold != (ParseCacheStats{Misses: n}) {
		t.Errorf("cold stream delta = %+v, want %d misses only", cold, n)
	}
	warm := delta(func() { _ = cachedIDs(t, src, 0) })
	if warm != (ParseCacheStats{Hits: n}) {
		t.Errorf("warm stream delta = %+v, want %d hits only", warm, n)
	}

	// Move one file's mtime: its entry is stale (invalidation) but the
	// unchanged content re-parses fine; the rest hit.
	victim := filepath.Join(dir, runs[0].ID+".txt")
	past := time.Now().Add(-time.Hour)
	if err := os.Chtimes(victim, past, past); err != nil {
		t.Fatal(err)
	}
	inv := delta(func() { _ = cachedIDs(t, src, 0) })
	if inv != (ParseCacheStats{Hits: n - 1, Invalidations: 1}) {
		t.Errorf("stale-mtime delta = %+v, want %d hits + 1 invalidation", inv, n-1)
	}

	// Delete one file: its key is pruned at the rewrite; the rest hit.
	if err := os.Remove(victim); err != nil {
		t.Fatal(err)
	}
	pruned := delta(func() { _ = cachedIDs(t, src, 0) })
	if pruned != (ParseCacheStats{Hits: n - 1, Prunes: 1}) {
		t.Errorf("deletion delta = %+v, want %d hits + 1 prune", pruned, n-1)
	}
}
