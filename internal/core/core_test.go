package core

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/analysis"
	"repro/internal/synth"
)

func smallOptions() synth.Options {
	return synth.Options{
		Seed: 7,
		Plan: []synth.YearPlan{
			{Year: 2009, Parsed: 12, AMDShare: 0.25, LinuxShare: 0.02, Multi: 3, TwoSocketShare: 0.7},
			{Year: 2019, Parsed: 12, AMDShare: 0.30, LinuxShare: 0.30, Multi: 2, TwoSocketShare: 0.7},
		},
		Defects: synth.DefectPlan{NotAccepted: 2, AmbiguousDate: 1},
	}
}

func TestGenerateWriteLoadRoundTrip(t *testing.T) {
	runs, err := GenerateCorpus(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := WriteCorpus(dir, runs, 4); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != len(runs) {
		t.Fatalf("wrote %d files for %d runs", len(files), len(runs))
	}
	loaded := New(WithSource(DirSource{Dir: dir}), WithWorkers(4))
	loadedDS, err := loaded.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	// The funnel must be identical whether built from in-memory runs or
	// from the rendered-and-reparsed corpus (the D1 closed loop).
	direct, err := New(WithSource(SliceSource(runs))).Dataset()
	if err != nil {
		t.Fatal(err)
	}
	if a, b := funnelKey(direct), funnelKey(loadedDS); a != b {
		t.Errorf("funnel changed across render/parse: %v vs %v", a, b)
	}
	if len(loadedDS.Raw) != len(runs) {
		t.Errorf("raw count %d vs %d", len(loadedDS.Raw), len(runs))
	}
}

// funnelKey flattens a funnel for comparison.
func funnelKey(ds *analysis.Dataset) [3]int {
	f := ds.Funnel
	return [3]int{f.Raw, f.Parsed, f.Comparable}
}

func TestLoadRunsErrors(t *testing.T) {
	if _, err := LoadRuns(filepath.Join(t.TempDir(), "nope"), 0); err == nil {
		t.Error("missing dir should error")
	}
	// A corrupt file fails the whole load with a path in the error.
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.txt")
	if err := os.WriteFile(bad, []byte("not a report"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := LoadRuns(dir, 2)
	if err == nil || !strings.Contains(err.Error(), "bad.txt") {
		t.Errorf("expected parse error naming file, got %v", err)
	}
}

func TestWriteCorpusSequentialAndParallelAgree(t *testing.T) {
	runs, err := GenerateCorpus(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	seq, par := t.TempDir(), t.TempDir()
	if err := WriteCorpus(seq, runs, 1); err != nil {
		t.Fatal(err)
	}
	if err := WriteCorpus(par, runs, 8); err != nil {
		t.Fatal(err)
	}
	for _, r := range runs {
		a, err := os.ReadFile(filepath.Join(seq, r.ID+".txt"))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(par, r.ID+".txt"))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("%s differs between sequential and parallel write", r.ID)
		}
	}
}

func TestForEachParallel(t *testing.T) {
	var count atomic.Int64
	if err := forEachParallel(100, 8, func(i int) error {
		count.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if count.Load() != 100 {
		t.Fatalf("visited %d of 100", count.Load())
	}
	// Error propagation.
	wantErr := errors.New("boom")
	err := forEachParallel(50, 4, func(i int) error {
		if i == 25 {
			return wantErr
		}
		return nil
	})
	if !errors.Is(err, wantErr) {
		t.Errorf("err = %v", err)
	}
	// Degenerate sizes.
	if err := forEachParallel(0, 4, func(int) error { return wantErr }); err != nil {
		t.Error("n=0 should be a no-op")
	}
}

// TestForEachParallelDeterministicError: when several indexes fail, the
// returned error must always be the lowest index's — not whichever
// worker reported first. The failing indexes are spread so that under
// racy first-error-wins semantics a later index usually won.
func TestForEachParallelDeterministicError(t *testing.T) {
	errAt := func(i int) error { return fmt.Errorf("fail@%d", i) }
	for round := 0; round < 50; round++ {
		err := forEachParallel(64, 8, func(i int) error {
			switch {
			case i == 7:
				// The lowest failure does a little work first, giving
				// higher failing indexes a head start.
				for j := 0; j < 1000; j++ {
					_ = j * j
				}
				return errAt(i)
			case i == 23 || i == 40 || i == 63:
				return errAt(i)
			}
			return nil
		})
		if err == nil || err.Error() != "fail@7" {
			t.Fatalf("round %d: err = %v, want fail@7", round, err)
		}
	}
}

func TestWriteReport(t *testing.T) {
	eng := New()
	var buf bytes.Buffer
	if err := eng.WriteReport(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Filter funnel", "1017", "960", "676",
		"Figure 2", "Figure 3", "Figure 4", "Figure 5", "Figure 6",
		"Table I", "top-100", "correlation matrix",
		"paper: 44.2", "×2.09",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

// TestDefaultEngineFunnel pins the zero-option engine to the paper's
// funnel (the contract DefaultStudy used to carry before the deprecated
// Study shims were removed).
func TestDefaultEngineFunnel(t *testing.T) {
	ds, err := New().Dataset()
	if err != nil {
		t.Fatal(err)
	}
	f := ds.Funnel
	if f.Raw != 1017 || f.Parsed != 960 || f.Comparable != 676 {
		t.Fatalf("funnel %v", f)
	}
}
