package core

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/plot"
	"repro/internal/speccpu"
	"repro/internal/stats"
)

// classOf maps a vendor name to a plot class (marker/colour).
func classOf(vendor string) int {
	switch vendor {
	case "AMD":
		return 0
	case "Intel":
		return 1
	default:
		return 2
	}
}

func scatterToPts(sc analysis.Scatter) []plot.Pt {
	pts := make([]plot.Pt, len(sc))
	for i, p := range sc {
		pts[i] = plot.Pt{X: p.Frac, Y: p.Value, Class: classOf(p.Vendor)}
	}
	return pts
}

// TrendASCII renders one trend figure (scatter plus yearly means) as
// text.
func TrendASCII(fig analysis.TrendFigure, yLabel string) string {
	var b strings.Builder
	b.WriteString(plot.ASCIIScatter(scatterToPts(fig.Points), plot.Axes{
		Title: fig.Name, XLabel: "hardware availability", YLabel: yLabel,
		Width: 76, Height: 18, ClassNames: []string{"AMD", "Intel", "Other"},
	}))
	b.WriteString("yearly means:\n")
	for _, ys := range fig.Yearly {
		fmt.Fprintf(&b, "  %d  n=%-3d mean=%-12.4g median=%.4g\n",
			ys.Year, ys.N, ys.Mean, ys.Median)
	}
	return b.String()
}

// WriteReport prints the full study — funnel, all six figures, Table I
// and the in-text statistics — as a terminal report.
func (s *Study) WriteReport(w io.Writer) error {
	ds := s.Dataset
	sectionHdr := func(title string) {
		fmt.Fprintf(w, "\n%s\n%s\n", title, strings.Repeat("=", len(title)))
	}

	sectionHdr("Filter funnel (Section II)")
	fmt.Fprint(w, ds.Funnel.String())

	sectionHdr("Submission trends (S2)")
	s2 := analysis.SubmissionTrends(ds.Parsed)
	fmt.Fprintf(w, "runs/year 2005–2023:  %5.1f   (paper: 44.2)\n", s2.RunsPerYear0523)
	fmt.Fprintf(w, "runs/year 2013–2017:  %5.1f   (paper: 15.2)\n", s2.RunsPerYear1317)
	fmt.Fprintf(w, "Linux share pre/post 2018:  %4.1f %% → %4.1f %%   (paper: 2.2 → 36.3)\n",
		100*s2.LinuxSharePre, 100*s2.LinuxSharePost)
	fmt.Fprintf(w, "AMD share pre/post 2018:    %4.1f %% → %4.1f %%   (paper: 13.0 → 31.3)\n",
		100*s2.AMDSharePre, 100*s2.AMDSharePost)

	sectionHdr("Figure 1: corpus composition by year")
	fig1 := analysis.Fig1Shares(ds.Parsed)
	for _, row := range fig1 {
		fmt.Fprintf(w, "%d  n=%-3d  Win %3.0f%% Lin %3.0f%% | Intel %3.0f%% AMD %3.0f%% | 2S %3.0f%% | multi-node %3.0f%%\n",
			row.Year, row.Count,
			100*row.OS["Windows"], 100*row.OS["Linux"],
			100*row.Vendor["Intel"], 100*row.Vendor["AMD"],
			100*row.Sockets["2"], 100*(row.Nodes["2"]+row.Nodes[">2"]))
	}
	var osRows, vendorRows []plot.StackedRow
	for _, row := range fig1 {
		label := fmt.Sprint(row.Year)
		osRows = append(osRows, plot.StackedRow{Label: label, Shares: row.OS})
		vendorRows = append(vendorRows, plot.StackedRow{Label: label, Shares: row.Vendor})
	}
	fmt.Fprintln(w)
	fmt.Fprint(w, plot.ASCIIStacked(osRows, []string{"Windows", "Linux", "macOS", "Other"},
		plot.Axes{Title: "OS share per year", Width: 60}))
	fmt.Fprintln(w)
	fmt.Fprint(w, plot.ASCIIStacked(vendorRows, []string{"Intel", "AMD", "Other"},
		plot.Axes{Title: "CPU vendor share per year", Width: 60}))

	sectionHdr("Figure 2: power per socket at full load")
	fmt.Fprint(w, TrendASCII(analysis.Fig2PowerPerSocket(ds.Comparable), "W/socket"))
	growth := analysis.PowerGrowth(ds.Comparable)
	for _, g := range growth {
		fmt.Fprintf(w, "S3 @%3d%%: early %.1f W → late %.1f W  (×%.2f)\n",
			g.Load, g.EarlyMean, g.LateMean, g.Factor)
	}

	sectionHdr("Figure 3: overall efficiency")
	fmt.Fprint(w, TrendASCII(analysis.Fig3OverallEfficiency(ds.Comparable), "ssj_ops/W"))
	top := analysis.TopEfficient(ds.Comparable, 100)
	fmt.Fprintf(w, "S4 top-100 most efficient: AMD %d, Intel %d   (paper: 98 / 2)\n",
		top.ByVendor["AMD"], top.ByVendor["Intel"])

	sectionHdr("Figure 4: relative efficiency at 60–90 % load")
	fmt.Fprint(w, Fig4ASCII(ds))

	sectionHdr("Figure 5: idle power fraction")
	fmt.Fprint(w, TrendASCII(analysis.Fig5IdleFraction(ds.Comparable), "idle/full"))
	s5 := analysis.IdleFractionHistory(ds.Comparable, 5)
	fmt.Fprintf(w, "S5: %d mean %.1f %% → min %d %.1f %% → %d mean %.1f %%   (paper: 70.1 → 15.7 (2017) → 25.7 (2024))\n",
		s5.FirstYear, 100*s5.FirstYearMean, s5.MinYear, 100*s5.MinYearMean,
		s5.LastYear, 100*s5.LastYearMean)

	if cf, err := analysis.IdleFractionChangepoint(ds.Comparable, 5, 0.05); err == nil {
		fmt.Fprintf(w, "Pettitt changepoint: idle-fraction regime break after %d (p=%.4f, significant=%v)\n",
			cf.Year, cf.P, cf.Significant)
	}

	sectionHdr("Figure 6: extrapolated idle quotient")
	fmt.Fprint(w, TrendASCII(analysis.Fig6IdleQuotient(ds.Comparable), "extrapolated/measured"))

	sectionHdr("S6: feature comparison since 2021")
	s6 := analysis.RecentFeatures(ds.Comparable, 2021)
	fmt.Fprintf(w, "mean cores: AMD %.1f vs Intel %.1f   (paper: 85.8 vs 39.5)\n",
		s6.AMD.MeanCores, s6.Intel.MeanCores)
	fmt.Fprintf(w, "nominal GHz: AMD %.2f ±%.2f vs Intel %.2f ±%.2f   (paper: ≈2.3 both, σ 0.3 vs 0.5)\n",
		s6.AMD.MeanGHz, s6.AMD.StdGHz, s6.Intel.MeanGHz, s6.Intel.StdGHz)
	fmt.Fprintf(w, "correlation matrix (%s):\n", strings.Join(s6.CorrNames, ", "))
	for i, row := range s6.Corr {
		fmt.Fprintf(w, "  %-12s", s6.CorrNames[i])
		for _, v := range row {
			fmt.Fprintf(w, " %6.2f", v)
		}
		fmt.Fprintln(w)
	}

	sectionHdr("Trend tests (Mann-Kendall + Theil–Sen, α = 0.10)")
	trends, err := analysis.PaperTrends(ds.Comparable, 0.10)
	if err != nil {
		return err
	}
	for _, ta := range trends {
		fmt.Fprintf(w, "%-44s %-11s p=%.4f  Sen slope %+.4g/yr  τ=%+.2f  (%d–%d)\n",
			ta.Metric, ta.MK.Direction, ta.MK.P, ta.SenSlopePerYear, ta.Tau,
			ta.FromYear, ta.ToYear)
	}

	sectionHdr("Energy proportionality score by year")
	for _, ys := range analysis.EPByYear(ds.Comparable) {
		fmt.Fprintf(w, "  %d  n=%-3d EP=%.3f\n", ys.Year, ys.N, ys.Mean)
	}

	sectionHdr("Correlation exploration since 2021 (vendor confounding)")
	fmt.Fprintf(w, "%-24s %8s %8s %8s  %s\n", "pair", "pooled", "AMD", "Intel", "verdict")
	for _, f := range analysis.ConfoundingScan(ds.Comparable, 2021) {
		verdict := ""
		if f.Confounded {
			verdict = "vendor-confounded"
		}
		fmt.Fprintf(w, "%-24s %8.2f %8.2f %8.2f  %s\n",
			f.FeatureX+"↔"+f.FeatureY, f.Pooled, f.WithinAMD, f.WithinIntel, verdict)
	}
	fmt.Fprintln(w, "(the paper: \"our correlation analysis … remains inconclusive\" — "+
		"pooled correlations collapse within vendor strata)")

	sectionHdr("Table I: SR650 V3 (Intel) vs SR645 V3 (AMD)")
	intelSys, amdSys, err := speccpu.DefaultDuel()
	if err != nil {
		return err
	}
	rows, err := speccpu.Table1(intelSys, amdSys)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-36s %10s %10s %8s\n", "Benchmark", "Intel", "AMD", "Factor")
	for _, r := range rows {
		fmt.Fprintf(w, "%-36s %10.0f %10.0f %8.2f\n", r.Benchmark, r.Intel, r.AMD, r.Factor)
	}
	fmt.Fprintf(w, "(paper factors: ssj ×2.09, fp ×1.53, int ×2.03)\n")
	return nil
}

// Fig4ASCII renders Figure 4 as stacked ASCII box plots per vendor and
// load level, one row per year.
func Fig4ASCII(ds *analysis.Dataset) string {
	cells := analysis.Fig4RelativeEfficiency(ds.Comparable)
	type key struct {
		vendor string
		load   int
	}
	grouped := map[key][]analysis.Fig4Cell{}
	for _, c := range cells {
		k := key{c.Vendor, c.Load}
		grouped[k] = append(grouped[k], c)
	}
	keys := make([]key, 0, len(grouped))
	for k := range grouped {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].vendor != keys[j].vendor {
			return keys[i].vendor < keys[j].vendor
		}
		return keys[i].load < keys[j].load
	})
	var b strings.Builder
	for _, k := range keys {
		if k.load != 70 && k.load != 90 {
			continue // keep the terminal report compact
		}
		group := grouped[k]
		labels := make([]string, len(group))
		boxes := make([]stats.BoxStats, len(group))
		for i, c := range group {
			labels[i] = fmt.Sprintf("%d", c.Year)
			boxes[i] = c.Box
		}
		fmt.Fprintf(&b, "%s @ %d%% load (1.0 = full-load efficiency):\n", k.vendor, k.load)
		b.WriteString(plot.ASCIIBoxes(labels, boxes, plot.Axes{Width: 56, YMin: 0.5, YMax: 1.5}))
		b.WriteString("\n")
	}
	return b.String()
}
