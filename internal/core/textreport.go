package core

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"unicode/utf8"

	"repro/internal/analysis"
	"repro/internal/cluster"
	"repro/internal/plot"
	"repro/internal/speccpu"
	"repro/internal/stats"
)

// classOf maps a vendor name to a plot class (marker/colour).
func classOf(vendor string) int {
	switch vendor {
	case "AMD":
		return 0
	case "Intel":
		return 1
	default:
		return 2
	}
}

func scatterToPts(sc analysis.Scatter) []plot.Pt {
	pts := make([]plot.Pt, len(sc))
	for i, p := range sc {
		pts[i] = plot.Pt{X: p.Frac, Y: p.Value, Class: classOf(p.Vendor)}
	}
	return pts
}

// TrendASCII renders one trend figure (scatter plus yearly means) as
// text.
func TrendASCII(fig analysis.TrendFigure, yLabel string) string {
	var b strings.Builder
	b.WriteString(plot.ASCIIScatter(scatterToPts(fig.Points), plot.Axes{
		Title: fig.Name, XLabel: "hardware availability", YLabel: yLabel,
		Width: 76, Height: 18, ClassNames: []string{"AMD", "Intel", "Other"},
	}))
	b.WriteString("yearly means:\n")
	for _, ys := range fig.Yearly {
		fmt.Fprintf(&b, "  %d  n=%-3d mean=%-12.4g median=%.4g\n",
			ys.Year, ys.N, ys.Mean, ys.Median)
	}
	return b.String()
}

// trendYLabels maps registered trend-figure analyses to their y-axis
// labels in the terminal report.
var trendYLabels = map[string]string{
	"fig2": "W/socket",
	"fig3": "ssj_ops/W",
	"fig5": "idle/full",
	"fig6": "extrapolated/measured",
}

// reportAnalyses lists every analysis the terminal report renders, in
// section order. WriteReport warms them all concurrently before the
// first byte is written.
var reportAnalyses = []string{
	"funnel", "submissions", "fig1", "fig2", "growth", "fig3", "top100",
	"fig4", "fig5", "idlehistory", "changepoint", "fig6", "features",
	"trends", "ep", "confound", "cluster-profiles", "table1",
}

// WriteReport prints the full study — funnel, all six figures, Table I
// and the in-text statistics — as a terminal report. Every section is
// pulled through the engine's memoized analysis cache, which WriteReport
// first populates concurrently across the worker pool: the sequential
// render pass below then only reads cached results, so a full report
// costs max(analysis) wall-clock, and a report after targeted Run calls
// only computes what is still missing.
func (e *Engine) WriteReport(w io.Writer) error {
	// Surface source errors before any section is printed.
	if _, err := e.Dataset(); err != nil {
		return err
	}
	// The changepoint section is best-effort (it needs enough yearly
	// bins), so its error must not fail the report — matching the
	// err == nil guard at its render site. Unregistered names are
	// dropped rather than failed: a stale warm-list entry only loses
	// pre-warming, it must not break a report no render site needs it
	// for (TestReportAnalysesRegistered guards the list against drift).
	var warm []Request
	for _, name := range reportAnalyses {
		if _, ok := analysis.Lookup(name); ok {
			warm = append(warm, Request{Name: name})
		}
	}
	if err := e.compute(warm, map[string]bool{"changepoint": true}); err != nil {
		return err
	}
	sectionHdr := func(title string) {
		fmt.Fprintf(w, "\n%s\n%s\n", title, strings.Repeat("=", len(title)))
	}

	funnel, err := AnalysisAs[analysis.Funnel](e, "funnel")
	if err != nil {
		return err
	}
	sectionHdr("Filter funnel (Section II)")
	fmt.Fprint(w, funnel.String())

	s2, err := AnalysisAs[analysis.SubmissionStats](e, "submissions")
	if err != nil {
		return err
	}
	sectionHdr("Submission trends (S2)")
	fmt.Fprintf(w, "runs/year 2005–2023:  %5.1f   (paper: 44.2)\n", s2.RunsPerYear0523)
	fmt.Fprintf(w, "runs/year 2013–2017:  %5.1f   (paper: 15.2)\n", s2.RunsPerYear1317)
	fmt.Fprintf(w, "Linux share pre/post 2018:  %4.1f %% → %4.1f %%   (paper: 2.2 → 36.3)\n",
		100*s2.LinuxSharePre, 100*s2.LinuxSharePost)
	fmt.Fprintf(w, "AMD share pre/post 2018:    %4.1f %% → %4.1f %%   (paper: 13.0 → 31.3)\n",
		100*s2.AMDSharePre, 100*s2.AMDSharePost)

	fig1, err := AnalysisAs[[]analysis.Fig1Row](e, "fig1")
	if err != nil {
		return err
	}
	sectionHdr("Figure 1: corpus composition by year")
	writeFig1(w, fig1)

	fig2, err := AnalysisAs[analysis.TrendFigure](e, "fig2")
	if err != nil {
		return err
	}
	sectionHdr("Figure 2: power per socket at full load")
	fmt.Fprint(w, TrendASCII(fig2, trendYLabels["fig2"]))
	growth, err := AnalysisAs[[]analysis.GrowthFactor](e, "growth")
	if err != nil {
		return err
	}
	writeGrowth(w, growth)

	fig3, err := AnalysisAs[analysis.TrendFigure](e, "fig3")
	if err != nil {
		return err
	}
	sectionHdr("Figure 3: overall efficiency")
	fmt.Fprint(w, TrendASCII(fig3, trendYLabels["fig3"]))
	top, err := AnalysisAs[analysis.TopEfficiency](e, "top100")
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "S4 top-100 most efficient: AMD %d, Intel %d   (paper: 98 / 2)\n",
		top.ByVendor["AMD"], top.ByVendor["Intel"])

	fig4, err := AnalysisAs[[]analysis.Fig4Cell](e, "fig4")
	if err != nil {
		return err
	}
	sectionHdr("Figure 4: relative efficiency at 60–90 % load")
	fmt.Fprint(w, Fig4ASCII(fig4))

	fig5, err := AnalysisAs[analysis.TrendFigure](e, "fig5")
	if err != nil {
		return err
	}
	sectionHdr("Figure 5: idle power fraction")
	fmt.Fprint(w, TrendASCII(fig5, trendYLabels["fig5"]))
	s5, err := AnalysisAs[analysis.IdleFractionStats](e, "idlehistory")
	if err != nil {
		return err
	}
	writeIdleHistory(w, s5)

	if cf, err := AnalysisAs[analysis.ChangepointFinding](e, "changepoint"); err == nil {
		fmt.Fprintf(w, "Pettitt changepoint: idle-fraction regime break after %d (p=%.4f, significant=%v)\n",
			cf.Year, cf.P, cf.Significant)
	}

	fig6, err := AnalysisAs[analysis.TrendFigure](e, "fig6")
	if err != nil {
		return err
	}
	sectionHdr("Figure 6: extrapolated idle quotient")
	fmt.Fprint(w, TrendASCII(fig6, trendYLabels["fig6"]))

	s6, err := AnalysisAs[analysis.RecentFeatureStats](e, "features")
	if err != nil {
		return err
	}
	sectionHdr("S6: feature comparison since 2021")
	writeFeatures(w, s6)

	trends, err := AnalysisAs[[]analysis.TrendAssessment](e, "trends")
	if err != nil {
		return err
	}
	sectionHdr("Trend tests (Mann-Kendall + Theil–Sen, α = 0.10)")
	writeTrends(w, trends)

	ep, err := AnalysisAs[[]analysis.YearlyStat](e, "ep")
	if err != nil {
		return err
	}
	sectionHdr("Energy proportionality score by year")
	for _, ys := range ep {
		fmt.Fprintf(w, "  %d  n=%-3d EP=%.3f\n", ys.Year, ys.N, ys.Mean)
	}

	findings, err := AnalysisAs[[]analysis.ConfoundFinding](e, "confound")
	if err != nil {
		return err
	}
	sectionHdr("Correlation exploration since 2021 (vendor confounding)")
	writeConfound(w, findings)

	phenos, err := AnalysisAs[cluster.ProfileSet](e, "cluster-profiles")
	if err != nil {
		return err
	}
	sectionHdr("Configuration clusters (phenotypes)")
	fmt.Fprint(w, phenos.String())

	rows, err := AnalysisAs[[]speccpu.DuelRow](e, "table1")
	if err != nil {
		return err
	}
	sectionHdr("Table I: SR650 V3 (Intel) vs SR645 V3 (AMD)")
	writeTable1(w, rows)
	return nil
}

// WriteAnalysisText renders one named analysis result as terminal text.
// Known result types get the same rendering the full report uses;
// anything else falls back to indented JSON, so externally registered
// analyses print usefully too.
func WriteAnalysisText(w io.Writer, res Result) error {
	title := res.Name
	if res.Params != "" {
		title += "?" + res.Params
	}
	fmt.Fprintf(w, "\n%s — %s\n%s\n", title, res.Description,
		strings.Repeat("=", utf8.RuneCountInString(title)+3+
			utf8.RuneCountInString(res.Description)))
	switch v := res.Value.(type) {
	case analysis.Funnel:
		fmt.Fprint(w, v.String())
	case analysis.TrendFigure:
		fmt.Fprint(w, TrendASCII(v, trendYLabels[res.Name]))
	case []analysis.Fig1Row:
		writeFig1(w, v)
	case []analysis.Fig4Cell:
		fmt.Fprint(w, Fig4ASCII(v))
	case analysis.SubmissionStats:
		fmt.Fprintf(w, "runs/year 2005–2023: %.1f   2013–2017: %.1f\n",
			v.RunsPerYear0523, v.RunsPerYear1317)
		fmt.Fprintf(w, "Linux share pre/post 2018: %.1f %% → %.1f %%\n",
			100*v.LinuxSharePre, 100*v.LinuxSharePost)
		fmt.Fprintf(w, "AMD share pre/post 2018:   %.1f %% → %.1f %%\n",
			100*v.AMDSharePre, 100*v.AMDSharePost)
	case []analysis.GrowthFactor:
		writeGrowth(w, v)
	case analysis.TopEfficiency:
		fmt.Fprintf(w, "top-%d most efficient: AMD %d, Intel %d\n",
			v.N, v.ByVendor["AMD"], v.ByVendor["Intel"])
	case analysis.IdleFractionStats:
		writeIdleHistory(w, v)
	case analysis.RecentFeatureStats:
		writeFeatures(w, v)
	case []analysis.TrendAssessment:
		writeTrends(w, v)
	case []analysis.YearlyStat:
		for _, ys := range v {
			fmt.Fprintf(w, "  %d  n=%-3d mean=%.4g median=%.4g\n",
				ys.Year, ys.N, ys.Mean, ys.Median)
		}
	case []analysis.ConfoundFinding:
		writeConfound(w, v)
	case analysis.ChangepointFinding:
		fmt.Fprintf(w, "%s regime break after %d (p=%.4f, significant=%v)\n",
			v.Metric, v.Year, v.P, v.Significant)
	case []speccpu.DuelRow:
		writeTable1(w, v)
	case cluster.Result:
		writeClusters(w, v)
	case cluster.ProfileSet:
		fmt.Fprint(w, v.String())
	case []cluster.SweepPoint:
		fmt.Fprint(w, cluster.SweepTable(v))
	default:
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res.Value); err != nil {
			return fmt.Errorf("core: render %s: %w", res.Name, err)
		}
	}
	return nil
}

func writeFig1(w io.Writer, fig1 []analysis.Fig1Row) {
	for _, row := range fig1 {
		fmt.Fprintf(w, "%d  n=%-3d  Win %3.0f%% Lin %3.0f%% | Intel %3.0f%% AMD %3.0f%% | 2S %3.0f%% | multi-node %3.0f%%\n",
			row.Year, row.Count,
			100*row.OS["Windows"], 100*row.OS["Linux"],
			100*row.Vendor["Intel"], 100*row.Vendor["AMD"],
			100*row.Sockets["2"], 100*(row.Nodes["2"]+row.Nodes[">2"]))
	}
	var osRows, vendorRows []plot.StackedRow
	for _, row := range fig1 {
		label := fmt.Sprint(row.Year)
		osRows = append(osRows, plot.StackedRow{Label: label, Shares: row.OS})
		vendorRows = append(vendorRows, plot.StackedRow{Label: label, Shares: row.Vendor})
	}
	fmt.Fprintln(w)
	fmt.Fprint(w, plot.ASCIIStacked(osRows, []string{"Windows", "Linux", "macOS", "Other"},
		plot.Axes{Title: "OS share per year", Width: 60}))
	fmt.Fprintln(w)
	fmt.Fprint(w, plot.ASCIIStacked(vendorRows, []string{"Intel", "AMD", "Other"},
		plot.Axes{Title: "CPU vendor share per year", Width: 60}))
}

func writeGrowth(w io.Writer, growth []analysis.GrowthFactor) {
	for _, g := range growth {
		fmt.Fprintf(w, "S3 @%3d%%: early %.1f W → late %.1f W  (×%.2f)\n",
			g.Load, g.EarlyMean, g.LateMean, g.Factor)
	}
}

func writeIdleHistory(w io.Writer, s5 analysis.IdleFractionStats) {
	fmt.Fprintf(w, "S5: %d mean %.1f %% → min %d %.1f %% → %d mean %.1f %%   (paper: 70.1 → 15.7 (2017) → 25.7 (2024))\n",
		s5.FirstYear, 100*s5.FirstYearMean, s5.MinYear, 100*s5.MinYearMean,
		s5.LastYear, 100*s5.LastYearMean)
}

func writeFeatures(w io.Writer, s6 analysis.RecentFeatureStats) {
	fmt.Fprintf(w, "mean cores: AMD %.1f vs Intel %.1f   (paper: 85.8 vs 39.5)\n",
		s6.AMD.MeanCores, s6.Intel.MeanCores)
	fmt.Fprintf(w, "nominal GHz: AMD %.2f ±%.2f vs Intel %.2f ±%.2f   (paper: ≈2.3 both, σ 0.3 vs 0.5)\n",
		s6.AMD.MeanGHz, s6.AMD.StdGHz, s6.Intel.MeanGHz, s6.Intel.StdGHz)
	fmt.Fprintf(w, "correlation matrix (%s):\n", strings.Join(s6.CorrNames, ", "))
	for i, row := range s6.Corr {
		fmt.Fprintf(w, "  %-12s", s6.CorrNames[i])
		for _, v := range row {
			fmt.Fprintf(w, " %6.2f", v)
		}
		fmt.Fprintln(w)
	}
}

func writeTrends(w io.Writer, trends []analysis.TrendAssessment) {
	for _, ta := range trends {
		fmt.Fprintf(w, "%-44s %-11s p=%.4f  Sen slope %+.4g/yr  τ=%+.2f  (%d–%d)\n",
			ta.Metric, ta.MK.Direction, ta.MK.P, ta.SenSlopePerYear, ta.Tau,
			ta.FromYear, ta.ToYear)
	}
}

func writeConfound(w io.Writer, findings []analysis.ConfoundFinding) {
	fmt.Fprintf(w, "%-24s %8s %8s %8s  %s\n", "pair", "pooled", "AMD", "Intel", "verdict")
	for _, f := range findings {
		verdict := ""
		if f.Confounded {
			verdict = "vendor-confounded"
		}
		fmt.Fprintf(w, "%-24s %8.2f %8.2f %8.2f  %s\n",
			f.FeatureX+"↔"+f.FeatureY, f.Pooled, f.WithinAMD, f.WithinIntel, verdict)
	}
	fmt.Fprintln(w, "(the paper: \"our correlation analysis … remains inconclusive\" — "+
		"pooled correlations collapse within vendor strata)")
}

func writeClusters(w io.Writer, res cluster.Result) {
	fmt.Fprintf(w, "%s over [%s]\n", res.Algo, strings.Join(res.Features, ", "))
	fmt.Fprintf(w, "k=%d  silhouette=%.3f  within-SSE=%.1f\n", res.K, res.Silhouette, res.SSE)
	for c, size := range res.Sizes {
		fmt.Fprintf(w, "  cluster %d: %4d runs\n", c, size)
	}
	if res.K == 0 {
		fmt.Fprintln(w, "(corpus too small to cluster)")
	}
}

func writeTable1(w io.Writer, rows []speccpu.DuelRow) {
	fmt.Fprintf(w, "%-36s %10s %10s %8s\n", "Benchmark", "Intel", "AMD", "Factor")
	for _, r := range rows {
		fmt.Fprintf(w, "%-36s %10.0f %10.0f %8.2f\n", r.Benchmark, r.Intel, r.AMD, r.Factor)
	}
	fmt.Fprintf(w, "(paper factors: ssj ×2.09, fp ×1.53, int ×2.03)\n")
}

// Fig4ASCII renders Figure 4 as stacked ASCII box plots per vendor and
// load level, one row per year.
func Fig4ASCII(cells []analysis.Fig4Cell) string {
	type key struct {
		vendor string
		load   int
	}
	grouped := map[key][]analysis.Fig4Cell{}
	for _, c := range cells {
		k := key{c.Vendor, c.Load}
		grouped[k] = append(grouped[k], c)
	}
	keys := make([]key, 0, len(grouped))
	for k := range grouped {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].vendor != keys[j].vendor {
			return keys[i].vendor < keys[j].vendor
		}
		return keys[i].load < keys[j].load
	})
	var b strings.Builder
	for _, k := range keys {
		if k.load != 70 && k.load != 90 {
			continue // keep the terminal report compact
		}
		group := grouped[k]
		labels := make([]string, len(group))
		boxes := make([]stats.BoxStats, len(group))
		for i, c := range group {
			labels[i] = fmt.Sprintf("%d", c.Year)
			boxes[i] = c.Box
		}
		fmt.Fprintf(&b, "%s @ %d%% load (1.0 = full-load efficiency):\n", k.vendor, k.load)
		b.WriteString(plot.ASCIIBoxes(labels, boxes, plot.Axes{Width: 56, YMin: 0.5, YMax: 1.5}))
		b.WriteString("\n")
	}
	return b.String()
}
