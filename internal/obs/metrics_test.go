package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramObserveSnapshot(t *testing.T) {
	var h Histogram
	for _, d := range []time.Duration{
		500 * time.Nanosecond, // first bucket (≤1µs)
		2 * time.Microsecond,  // ≤4µs
		3 * time.Microsecond,  // ≤4µs
		time.Millisecond,      // ≤~1ms bucket (1.024ms bound)
		10 * time.Second,      // overflow
	} {
		h.Observe(d)
	}
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	wantSum := int64(500 + 2000 + 3000 + 1_000_000 + 10_000_000_000)
	if s.SumNs != wantSum {
		t.Errorf("sum = %d, want %d", s.SumNs, wantSum)
	}
	// Cumulative counts: the ≤4µs bucket holds the first three.
	if s.Buckets[1].Cumulative != 3 {
		t.Errorf("≤4µs cumulative = %d, want 3", s.Buckets[1].Cumulative)
	}
	last := s.Buckets[len(s.Buckets)-1]
	if last.UpperNs != -1 || last.Cumulative != 5 {
		t.Errorf("overflow bucket = %+v, want upper -1 cumulative 5", last)
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	// 100 observations at ~2µs: p50 and p95 must land inside the
	// (1µs, 4µs] bucket.
	for i := 0; i < 100; i++ {
		h.Observe(2 * time.Microsecond)
	}
	s := h.Snapshot()
	for _, q := range []float64{0.5, 0.95} {
		got := s.QuantileNs(q)
		if got <= 1_000 || got > 4_000 {
			t.Errorf("q%.2f = %dns, want within (1µs, 4µs]", q, got)
		}
	}
	if (HistogramSnapshot{}).QuantileNs(0.5) != 0 {
		t.Error("empty histogram quantile != 0")
	}
	// All observations in the overflow bucket clamp to the largest
	// finite bound instead of inventing an infinite latency.
	var over Histogram
	over.Observe(time.Minute)
	if got := over.Snapshot().QuantileNs(0.5); got != bucketBounds[len(bucketBounds)-1] {
		t.Errorf("overflow quantile = %d, want clamp to %d", got, bucketBounds[len(bucketBounds)-1])
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Observe(-time.Second)
	s := h.Snapshot()
	if s.Count != 1 || s.SumNs != 0 {
		t.Errorf("negative observation: count=%d sum=%d, want 1/0", s.Count, s.SumNs)
	}
}

func TestCollectorSummarize(t *testing.T) {
	c := NewCollector()
	c.ObserveRequest(&RequestMetrics{
		Analysis: "fig3", Status: 200,
		QueueWaitNs: 1_000, SerializeNs: 2_000, TotalNs: 5_000_000,
	})
	c.ObserveRequest(&RequestMetrics{
		Analysis: "fig3", Status: 304,
		QueueWaitNs: 1_000, TotalNs: 2_000,
	})
	c.ObserveRequest(&RequestMetrics{Status: 400, TotalNs: 1_000})
	c.ObserveBuild(3_000_000)
	c.ObserveIngest(9_000_000)
	c.ObserveCompute("fig3", 4_000_000)

	sum := c.Summarize()
	byStage := map[string]StageSummary{}
	for _, st := range sum.Stages {
		byStage[st.Stage] = st
	}
	if byStage[StageQueueWait].Count != 2 {
		t.Errorf("queue_wait count = %d, want 2", byStage[StageQueueWait].Count)
	}
	if byStage[StageSerialize].Count != 1 {
		t.Errorf("serialize count = %d, want 1", byStage[StageSerialize].Count)
	}
	for _, stage := range []string{StageEngineBuild, StageIngest, StageCompute} {
		if byStage[stage].Count != 1 {
			t.Errorf("%s count = %d, want 1 (event-fed, not per-request)", stage, byStage[stage].Count)
		}
	}
	if len(sum.Analyses) != 1 || sum.Analyses[0].Analysis != "fig3" {
		t.Fatalf("analyses = %+v, want one fig3 row", sum.Analyses)
	}
	// Both the 200 and the 304 carried a total, so the per-analysis
	// latency histogram has two observations.
	if sum.Analyses[0].Count != 2 {
		t.Errorf("fig3 latency count = %d, want 2", sum.Analyses[0].Count)
	}
	if sum.Analyses[0].P95Ns < sum.Analyses[0].P50Ns {
		t.Errorf("p95 %d < p50 %d", sum.Analyses[0].P95Ns, sum.Analyses[0].P50Ns)
	}
	if c.requests.Load() != 3 || c.notModified.Load() != 1 || c.clientErrs.Load() != 1 {
		t.Errorf("counters = %d/%d/%d, want 3/1/1",
			c.requests.Load(), c.notModified.Load(), c.clientErrs.Load())
	}
}

func TestCollectorConcurrent(t *testing.T) {
	c := NewCollector()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				c.ObserveRequest(&RequestMetrics{
					Analysis: "fig3", Status: 200,
					QueueWaitNs: 100, SerializeNs: 100, TotalNs: 1_000,
				})
				c.ObserveCompute("fig3", 1_000)
			}
		}()
	}
	wg.Wait()
	if got := c.requests.Load(); got != 1600 {
		t.Errorf("requests = %d, want 1600", got)
	}
	sum := c.Summarize()
	if sum.Analyses[0].Count != 1600 {
		t.Errorf("latency count = %d, want 1600", sum.Analyses[0].Count)
	}
}

func TestWritePrometheus(t *testing.T) {
	c := NewCollector()
	c.ObserveRequest(&RequestMetrics{
		Analysis: "fig3", Status: 200,
		QueueWaitNs: 1_000, SerializeNs: 2_000, TotalNs: 5_000_000,
	})
	c.ObserveIngest(9_000_000)
	var b strings.Builder
	c.WritePrometheus(&b, ServerGauges{
		Requests: 1, PoolEngines: 1, EngineBuilds: 1,
		UptimeSeconds: 1.5, Analyses: 20,
		AuditEnabled: true, AuditRecords: 7,
	})
	out := b.String()
	for _, want := range []string{
		"# TYPE specserve_requests_total counter",
		"specserve_requests_total 1",
		"specserve_engine_builds_total 1",
		"specserve_ingests_total 1",
		"specserve_audit_records_total 7",
		"specserve_pool_engines 1",
		`specserve_stage_duration_seconds_bucket{stage="queue_wait",le="0.000001"} 1`,
		`specserve_stage_duration_seconds_bucket{stage="ingest",le="+Inf"} 1`,
		`specserve_stage_duration_seconds_sum{stage="ingest"} 0.009`,
		`specserve_request_duration_seconds_count{analysis="fig3"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	// Audit metrics disappear when the log is disabled.
	var off strings.Builder
	c.WritePrometheus(&off, ServerGauges{})
	if strings.Contains(off.String(), "audit_records") {
		t.Error("audit metric exposed with audit disabled")
	}
}
