package evlog

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// fixedClock returns a clock that starts at a known instant and
// advances only when the test says so.
func fixedClock(start time.Time) (now func() time.Time, advance func(time.Duration)) {
	cur := start
	var mu sync.Mutex
	return func() time.Time {
			mu.Lock()
			defer mu.Unlock()
			return cur
		}, func(d time.Duration) {
			mu.Lock()
			cur = cur.Add(d)
			mu.Unlock()
		}
}

var t0 = time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)

func TestLogfmtEncoding(t *testing.T) {
	var buf bytes.Buffer
	now, _ := fixedClock(t0)
	l := New(&buf, Options{Now: now})
	l.Info("pool_build",
		String("scope", "vendor=amd"),
		String("fingerprint", "abc123"),
		Int("joins", 3),
		Dur("dur", 1234567*time.Nanosecond),
		String("trace_id", ""),
	)
	want := `time=2026-08-07T12:00:00Z level=info event=pool_build ` +
		`scope="vendor=amd" fingerprint=abc123 joins=3 dur=1.235ms trace_id=""` + "\n"
	if got := buf.String(); got != want {
		t.Errorf("logfmt line:\n got %q\nwant %q", got, want)
	}
}

func TestLogfmtQuoting(t *testing.T) {
	var buf bytes.Buffer
	now, _ := fixedClock(t0)
	l := New(&buf, Options{Now: now})
	l.Warn("e", String("a", `has "quotes"`), String("b", "two words"), String("c", "plain"))
	line := buf.String()
	for _, want := range []string{
		`a="has \"quotes\""`, `b="two words"`, ` c=plain`,
	} {
		if !strings.Contains(line, want) {
			t.Errorf("line %q missing %q", line, want)
		}
	}
}

func TestJSONEncoding(t *testing.T) {
	var buf bytes.Buffer
	now, _ := fixedClock(t0)
	l := New(&buf, Options{Encoding: JSON, Now: now})
	l.Error("pool_evict", String("scope", "os=linux"), String("reason", "lru"))
	line := buf.String()
	if !strings.HasSuffix(line, "}\n") {
		t.Fatalf("line %q does not end in }\\n", line)
	}
	var m map[string]string
	if err := json.Unmarshal([]byte(line), &m); err != nil {
		t.Fatalf("unmarshal %q: %v", line, err)
	}
	for k, want := range map[string]string{
		"time": "2026-08-07T12:00:00Z", "level": "error", "event": "pool_evict",
		"scope": "os=linux", "reason": "lru",
	} {
		if m[k] != want {
			t.Errorf("%s = %q, want %q", k, m[k], want)
		}
	}
	// Keys keep emission order: preamble first, attrs after.
	idx := func(s string) int { return strings.Index(line, `"`+s+`"`) }
	if !(idx("time") < idx("level") && idx("level") < idx("event") &&
		idx("event") < idx("scope") && idx("scope") < idx("reason")) {
		t.Errorf("keys out of emission order: %q", line)
	}
}

func TestLevelFiltering(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, Options{MinLevel: Warn})
	l.Debug("drop_me")
	l.Info("drop_me_too")
	l.Warn("keep")
	l.Error("keep_too")
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2: %q", len(lines), buf.String())
	}
	if !strings.Contains(lines[0], "event=keep") || !strings.Contains(lines[1], "event=keep_too") {
		t.Errorf("wrong lines survived the level filter: %q", lines)
	}
}

func TestNilLoggerIsNoOp(t *testing.T) {
	var l *Logger
	// Every method must be callable on nil without panicking.
	l.Debug("e")
	l.Info("e", String("k", "v"))
	l.Warn("e")
	l.Error("e")
	l.Log(Info, "e")
	if l.Sample("e", 1, 1) != nil {
		t.Error("Sample on nil returned non-nil")
	}
	if l.SampledEvents() != nil {
		t.Error("SampledEvents on nil returned non-nil")
	}
}

// TestTokenBucketSampling: burst passes, excess drops, refill restores,
// and the first event after a dry spell carries dropped=N covering the
// gap.
func TestTokenBucketSampling(t *testing.T) {
	var buf bytes.Buffer
	now, advance := fixedClock(t0)
	l := New(&buf, Options{Now: now}).Sample("hit", 2, 1) // burst 2, 1/s refill
	for i := 0; i < 5; i++ {
		l.Info("hit", Int("i", i))
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("burst 2: emitted %d lines, want 2: %q", len(lines), lines)
	}
	// Three drops accumulated; one second refills one token, and the
	// next event both passes and accounts for the gap.
	advance(time.Second)
	l.Info("hit", Int("i", 5))
	lines = strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("after refill: %d lines, want 3: %q", len(lines), lines)
	}
	last := lines[2]
	if !strings.Contains(last, "i=5") || !strings.Contains(last, "dropped=3") {
		t.Errorf("refill line %q missing i=5 / dropped=3", last)
	}
	// Unsampled events are never throttled.
	for i := 0; i < 10; i++ {
		l.Info("other")
	}
	lines = strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 13 {
		t.Errorf("unsampled event throttled: %d lines, want 13", len(lines))
	}
	if got := l.SampledEvents(); len(got) != 1 || got[0] != "hit" {
		t.Errorf("SampledEvents = %v, want [hit]", got)
	}
}

func TestParseEncoding(t *testing.T) {
	if e, err := ParseEncoding("logfmt"); err != nil || e != Logfmt {
		t.Errorf("logfmt: %v/%v", e, err)
	}
	if e, err := ParseEncoding("json"); err != nil || e != JSON {
		t.Errorf("json: %v/%v", e, err)
	}
	for _, bad := range []string{"text", "", "yaml"} {
		if _, err := ParseEncoding(bad); err == nil {
			t.Errorf("ParseEncoding(%q) should fail", bad)
		}
	}
}

// TestConcurrentLogging: lines never interleave — each Write is one
// complete line (run under -race in CI).
func TestConcurrentLogging(t *testing.T) {
	var buf lockedBuffer
	l := New(&buf, Options{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				l.Info("evt", Int("g", g), Int("i", i))
			}
		}(g)
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 400 {
		t.Fatalf("got %d lines, want 400", len(lines))
	}
	for _, line := range lines {
		if !strings.HasPrefix(line, "time=") || !strings.Contains(line, "event=evt") {
			t.Fatalf("malformed line %q", line)
		}
	}
}

// lockedBuffer guards a bytes.Buffer for concurrent writers; the
// logger serializes writes itself, but the race detector needs the
// reader side locked too.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestDurRounding(t *testing.T) {
	if got := Dur("d", 1500*time.Nanosecond).Value; got != "2µs" {
		t.Errorf("Dur = %q, want 2µs", got)
	}
	if got := Bool("b", true).Value; got != "true" {
		t.Errorf("Bool = %q", got)
	}
	if got := Int64("n", -7).Value; got != "-7" {
		t.Errorf("Int64 = %q", got)
	}
}
