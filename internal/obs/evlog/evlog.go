package evlog

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Level is an event's severity. Events below a Logger's minimum level
// are dropped before encoding.
type Level int8

// Levels, in increasing severity.
const (
	Debug Level = iota
	Info
	Warn
	Error
)

// String returns the level's lowercase wire form.
func (l Level) String() string {
	switch l {
	case Debug:
		return "debug"
	case Info:
		return "info"
	case Warn:
		return "warn"
	case Error:
		return "error"
	default:
		return "level(" + strconv.Itoa(int(l)) + ")"
	}
}

// Attr is one ordered key/value pair attached to an event. Values are
// strings on the wire in both encodings; the typed constructors below
// render numbers and booleans canonically, so greps and parsers see one
// spelling per type.
type Attr struct {
	Key   string
	Value string
}

// String returns a string-valued attribute.
func String(key, value string) Attr { return Attr{Key: key, Value: value} }

// Int returns an integer-valued attribute.
func Int(key string, v int) Attr { return Attr{Key: key, Value: strconv.Itoa(v)} }

// Int64 returns an integer-valued attribute.
func Int64(key string, v int64) Attr {
	return Attr{Key: key, Value: strconv.FormatInt(v, 10)}
}

// Bool returns a boolean-valued attribute ("true"/"false").
func Bool(key string, v bool) Attr {
	return Attr{Key: key, Value: strconv.FormatBool(v)}
}

// Dur returns a duration-valued attribute, rendered as Go duration
// syntax rounded to microseconds ("1.234ms") — the same rounding the
// request log has always used.
func Dur(key string, d time.Duration) Attr {
	return Attr{Key: key, Value: d.Round(time.Microsecond).String()}
}

// Encoding selects the wire format of a Logger.
type Encoding int8

const (
	// Logfmt renders one space-separated key=value line per event,
	// quoting values that contain spaces, quotes, or '=' (and empty
	// values), so lines stay grep- and cut-friendly.
	Logfmt Encoding = iota
	// JSON renders one JSON object per line with keys in emission order
	// (time, level, event, then attrs), values all strings.
	JSON
)

// ParseEncoding maps the -log-format spellings to an Encoding.
// "text" is deliberately not an Encoding: it selects the legacy
// unstructured request line and never reaches this package.
func ParseEncoding(s string) (Encoding, error) {
	switch s {
	case "logfmt":
		return Logfmt, nil
	case "json":
		return JSON, nil
	default:
		return 0, fmt.Errorf("evlog: unknown encoding %q (logfmt or json)", s)
	}
}

// Options configure a Logger. The zero value is logfmt at Debug level
// with the real clock.
type Options struct {
	// Encoding selects the wire format (default Logfmt).
	Encoding Encoding
	// MinLevel drops events below this severity (default Debug: keep
	// everything).
	MinLevel Level
	// Now overrides the clock, for deterministic test output (default
	// time.Now).
	Now func() time.Time
}

// Logger is a structured, leveled event logger. Each event is one line:
// a timestamp, a level, an event name, and ordered key/value attributes
// — the lifecycle log behind specserve's pool, caches, and audit
// batcher, with trace_id attrs correlating lines to /v1/traces.
//
// A nil *Logger is a valid no-op receiver for every method, so call
// sites thread one pointer through unconditionally instead of branching
// on "is logging on".
//
// All methods are safe for concurrent use; lines are written atomically
// (one Write per event) under an internal lock.
type Logger struct {
	mu      sync.Mutex
	w       io.Writer
	enc     Encoding
	min     Level
	now     func() time.Time
	buckets map[string]*tokenBucket
}

// New returns a Logger writing to w.
func New(w io.Writer, opts Options) *Logger {
	if opts.Now == nil {
		opts.Now = time.Now
	}
	return &Logger{
		w:       w,
		enc:     opts.Encoding,
		min:     opts.MinLevel,
		now:     opts.Now,
		buckets: map[string]*tokenBucket{},
	}
}

// tokenBucket rate-limits one event name: burst tokens, refilled at
// rate per second. Events emitted without a token are counted, and the
// count is attached (dropped=N) to the next event that gets one, so a
// sampled log still accounts for every occurrence.
type tokenBucket struct {
	tokens  float64
	burst   float64
	rate    float64 // tokens per second
	last    time.Time
	dropped int64
}

// Sample installs token-bucket sampling for one event name: up to
// burst events pass immediately, refilled at perSec per second; excess
// events are dropped and counted, and the next emitted event of that
// name carries a dropped=N attribute covering the gap. Use for
// high-rate events (per-request cache hits) whose aggregate lives in
// /metrics anyway. Returns the logger for chaining. No-op on nil.
func (l *Logger) Sample(event string, burst int, perSec float64) *Logger {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	l.buckets[event] = &tokenBucket{
		tokens: float64(burst), burst: float64(burst), rate: perSec,
	}
	l.mu.Unlock()
	return l
}

// Log emits one event at the given level. Attrs render in argument
// order after the time/level/event preamble.
func (l *Logger) Log(level Level, event string, attrs ...Attr) {
	if l == nil || level < l.min {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	var dropped int64
	if b := l.buckets[event]; b != nil {
		if !b.take(now) {
			b.dropped++
			return
		}
		dropped, b.dropped = b.dropped, 0
	}
	line := l.encode(now, level, event, attrs, dropped)
	_, _ = l.w.Write(line)
}

// take refills and consumes one token; false means the event is
// sampled out.
func (b *tokenBucket) take(now time.Time) bool {
	if !b.last.IsZero() {
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// Debug emits a Debug-level event.
func (l *Logger) Debug(event string, attrs ...Attr) { l.Log(Debug, event, attrs...) }

// Info emits an Info-level event.
func (l *Logger) Info(event string, attrs ...Attr) { l.Log(Info, event, attrs...) }

// Warn emits a Warn-level event.
func (l *Logger) Warn(event string, attrs ...Attr) { l.Log(Warn, event, attrs...) }

// Error emits an Error-level event.
func (l *Logger) Error(event string, attrs ...Attr) { l.Log(Error, event, attrs...) }

func (l *Logger) encode(now time.Time, level Level, event string, attrs []Attr, dropped int64) []byte {
	ts := now.UTC().Format(time.RFC3339Nano)
	switch l.enc {
	case JSON:
		return encodeJSON(ts, level, event, attrs, dropped)
	default:
		return encodeLogfmt(ts, level, event, attrs, dropped)
	}
}

// needsQuote reports whether a logfmt value must be quoted: empty, or
// containing a space, quote, equals sign, or control character.
func needsQuote(v string) bool {
	if v == "" {
		return true
	}
	for i := 0; i < len(v); i++ {
		c := v[i]
		if c <= ' ' || c == '"' || c == '=' || c == 0x7f {
			return true
		}
	}
	return false
}

func appendLogfmtValue(b []byte, v string) []byte {
	if !needsQuote(v) {
		return append(b, v...)
	}
	return strconv.AppendQuote(b, v)
}

func encodeLogfmt(ts string, level Level, event string, attrs []Attr, dropped int64) []byte {
	b := make([]byte, 0, 96+24*len(attrs))
	b = append(b, "time="...)
	b = append(b, ts...)
	b = append(b, " level="...)
	b = append(b, level.String()...)
	b = append(b, " event="...)
	b = appendLogfmtValue(b, event)
	for _, a := range attrs {
		b = append(b, ' ')
		b = append(b, a.Key...)
		b = append(b, '=')
		b = appendLogfmtValue(b, a.Value)
	}
	if dropped > 0 {
		b = append(b, " dropped="...)
		b = strconv.AppendInt(b, dropped, 10)
	}
	return append(b, '\n')
}

func appendJSONString(b []byte, v string) []byte {
	// json.Marshal of a string cannot fail and gives exactly the quoted,
	// escaped form the exposition needs.
	enc, _ := json.Marshal(v)
	return append(b, enc...)
}

func encodeJSON(ts string, level Level, event string, attrs []Attr, dropped int64) []byte {
	b := make([]byte, 0, 128+32*len(attrs))
	b = append(b, `{"time":`...)
	b = appendJSONString(b, ts)
	b = append(b, `,"level":`...)
	b = appendJSONString(b, level.String())
	b = append(b, `,"event":`...)
	b = appendJSONString(b, event)
	for _, a := range attrs {
		b = append(b, ',')
		b = appendJSONString(b, a.Key)
		b = append(b, ':')
		b = appendJSONString(b, a.Value)
	}
	if dropped > 0 {
		b = append(b, `,"dropped":`...)
		b = appendJSONString(b, strconv.FormatInt(dropped, 10))
	}
	return append(b, "}\n"...)
}

// SampledEvents reports the event names with sampling installed, sorted
// — introspection for tests and the spectop footer. Nil-safe.
func (l *Logger) SampledEvents() []string {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	names := make([]string, 0, len(l.buckets))
	for name := range l.buckets {
		names = append(names, name)
	}
	l.mu.Unlock()
	sort.Strings(names)
	return names
}
