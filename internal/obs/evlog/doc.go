// Package evlog is a small structured, leveled event logger — the
// state-plane log behind specserve. Where the request log answers "what
// did clients ask", evlog answers "what did the stateful machinery do":
// pool builds and evictions, cache hits and invalidations, audit
// batcher flushes, each as one line of timestamp + level + event name +
// ordered key/value attributes.
//
// Two encodings share one call site: Logfmt (key=value, quoted only
// when needed — grep-friendly) and JSON (one object per line, keys in
// emission order — machine-friendly). Events carry a trace_id attribute
// when the triggering request was traced, correlating state-plane lines
// with /v1/traces span trees and audit records.
//
// High-rate events (per-request pool hits, say) can be sampled with a
// per-event token bucket (Logger.Sample): burst events pass, excess is
// dropped and counted, and the next emitted event carries dropped=N so
// the log never silently under-reports. Aggregate truth stays in
// /metrics; the event log is for sequence and attribution.
//
// A nil *Logger is a no-op receiver for every method, so the serving
// layer threads one pointer through unconditionally — logging off means
// nil, not branches.
package evlog
