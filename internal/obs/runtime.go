package obs

import (
	"runtime"
	"sync"
	"time"
)

// RuntimeStats is one point-in-time reading of the Go runtime, the
// source of the specserve_runtime_* exposition section and the
// /v1/stats runtime block.
type RuntimeStats struct {
	// Goroutines is the live goroutine count.
	Goroutines int `json:"goroutines"`
	// HeapInuseBytes is the heap memory in active spans.
	HeapInuseBytes uint64 `json:"heap_inuse_bytes"`
	// HeapAllocBytes is the live heap allocation.
	HeapAllocBytes uint64 `json:"heap_alloc_bytes"`
	// GCCycles is the completed GC cycle count.
	GCCycles uint32 `json:"gc_cycles"`
	// GCPauses aggregates stop-the-world pause durations over the
	// sampler's lifetime.
	GCPauses HistogramSnapshot `json:"gc_pauses"`
}

// RuntimeSampler reads runtime memory statistics and accumulates the
// GC pause history into a histogram. runtime.MemStats only retains the
// last 256 pauses in a circular buffer, so the sampler folds in the
// pauses that are new since its previous read — sampled at least once
// per 256 GC cycles (every /metrics or /v1/stats hit easily clears
// that), the histogram covers every pause of the process lifetime.
// Safe for concurrent use.
type RuntimeSampler struct {
	mu      sync.Mutex
	pauses  Histogram
	lastNum uint32
}

// Sample reads the runtime and returns the current stats, folding any
// GC pauses completed since the previous Sample into the histogram.
func (s *RuntimeSampler) Sample() RuntimeStats {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.mu.Lock()
	fresh := ms.NumGC - s.lastNum
	if n := uint32(len(ms.PauseNs)); fresh > n {
		// The circular buffer wrapped between samples: the overwritten
		// pauses are gone, count what survives.
		fresh = n
	}
	// Cycle g's pause lives at PauseNs[(g+255)%256] (see runtime.MemStats);
	// fold in cycles (lastNum, NumGC], newest-fresh of them.
	for g := ms.NumGC - fresh + 1; g <= ms.NumGC && g > 0; g++ {
		s.pauses.Observe(time.Duration(ms.PauseNs[(g-1)%uint32(len(ms.PauseNs))]))
	}
	s.lastNum = ms.NumGC
	s.mu.Unlock()
	return RuntimeStats{
		Goroutines:     runtime.NumGoroutine(),
		HeapInuseBytes: ms.HeapInuse,
		HeapAllocBytes: ms.HeapAlloc,
		GCCycles:       ms.NumGC,
		GCPauses:       s.pauses.Snapshot(),
	}
}
