package trace

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestParseTraceparent(t *testing.T) {
	tid := "4bf92f3577b34da6a3ce929d0e0e4736"
	pid := "00f067aa0ba902b7"
	valid := "00-" + tid + "-" + pid + "-01"
	cases := []struct {
		in      string
		ok      bool
		why     string
		wantTID string
		wantPID string
	}{
		{valid, true, "canonical header", tid, pid},
		{"01-" + tid + "-" + pid + "-01-extra", true, "future version with trailing fields", tid, pid},
		{"", false, "absent", "", ""},
		{"00-" + tid + "-" + pid + "-01-extra", false, "version 00 admits no trailing fields", "", ""},
		{"ff-" + tid + "-" + pid + "-01", false, "version ff is forbidden", "", ""},
		{"00-" + strings.Repeat("0", 32) + "-" + pid + "-01", false, "all-zero trace id", "", ""},
		{"00-" + tid + "-" + strings.Repeat("0", 16) + "-01", false, "all-zero parent id", "", ""},
		{"00-" + strings.ToUpper(tid) + "-" + pid + "-01", false, "uppercase hex", "", ""},
		{"00-" + tid[:31] + "-" + pid + "-01x", false, "wrong field widths", "", ""},
		{"garbage", false, "not a header at all", "", ""},
	}
	for _, c := range cases {
		gotTID, gotPID, ok := ParseTraceparent(c.in)
		if ok != c.ok || gotTID != c.wantTID || gotPID != c.wantPID {
			t.Errorf("%s: ParseTraceparent(%q) = (%q, %q, %v), want (%q, %q, %v)",
				c.why, c.in, gotTID, gotPID, ok, c.wantTID, c.wantPID, c.ok)
		}
	}
}

// TestTraceparentRoundTrip pins propagation: an inbound header donates
// the trace id, the outbound header carries that id with a fresh local
// root span id, and the outbound header itself parses.
func TestTraceparentRoundTrip(t *testing.T) {
	in := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	tr := New("GET /x", in, time.Now())
	if tr.TraceID() != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("inbound trace id not adopted: %q", tr.TraceID())
	}
	if tr.ParentSpanID() != "00f067aa0ba902b7" {
		t.Fatalf("inbound parent span id not recorded: %q", tr.ParentSpanID())
	}
	out := tr.Traceparent()
	tid, pid, ok := ParseTraceparent(out)
	if !ok {
		t.Fatalf("outbound header %q does not parse", out)
	}
	if tid != tr.TraceID() {
		t.Fatalf("outbound trace id %q, want %q", tid, tr.TraceID())
	}
	if pid == tr.ParentSpanID() {
		t.Fatalf("outbound parent %q must be the local root span, not the inbound parent", pid)
	}

	// A minted trace: fresh nonzero id, no parent.
	minted := New("GET /y", "not-a-header", time.Now())
	if minted.ParentSpanID() != "" {
		t.Fatalf("minted trace has parent %q", minted.ParentSpanID())
	}
	if tid2, _, ok := ParseTraceparent(minted.Traceparent()); !ok || tid2 == tr.TraceID() {
		t.Fatalf("minted traceparent %q invalid or colliding", minted.Traceparent())
	}
}

func TestSnapshotTree(t *testing.T) {
	t0 := time.Unix(100, 0)
	tr := New("root-op", "", t0)
	root := tr.Root()
	root.SetAttr("status", "200")
	a := root.ChildAt("build", t0.Add(time.Millisecond))
	a.FinishAt(t0.Add(3 * time.Millisecond))
	b := root.ChildAt("compute", t0.Add(3*time.Millisecond))
	k := b.ChildAt("kmeans-iteration", t0.Add(4*time.Millisecond))
	k.SetAttr("moved", "17")
	k.FinishAt(t0.Add(5 * time.Millisecond))
	b.FinishAt(t0.Add(6 * time.Millisecond))
	leak := root.ChildAt("leaked", t0.Add(6*time.Millisecond))
	_ = leak // never finished: must render as duration -1, not 0
	root.FinishAt(t0.Add(7 * time.Millisecond))

	snap := tr.Snapshot()
	if snap.DurationNs != (7 * time.Millisecond).Nanoseconds() {
		t.Fatalf("root duration %d", snap.DurationNs)
	}
	if len(snap.Root.Children) != 3 {
		t.Fatalf("children %d, want 3", len(snap.Root.Children))
	}
	if c := snap.Root.Children[0]; c.Name != "build" || c.StartNs != time.Millisecond.Nanoseconds() ||
		c.DurationNs != (2*time.Millisecond).Nanoseconds() {
		t.Fatalf("build span %+v", c)
	}
	kc := snap.Root.Children[1].Children[0]
	if kc.Name != "kmeans-iteration" || kc.DurationNs != time.Millisecond.Nanoseconds() {
		t.Fatalf("kernel span %+v", kc)
	}
	if len(kc.Attrs) != 1 || kc.Attrs[0] != (Attr{Key: "moved", Value: "17"}) {
		t.Fatalf("kernel attrs %+v", kc.Attrs)
	}
	if snap.Root.Children[2].DurationNs != -1 {
		t.Fatalf("unfinished span duration %d, want -1", snap.Root.Children[2].DurationNs)
	}

	// The wire form is stable JSON: encode twice, byte-identical.
	j1, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	j2, _ := json.Marshal(tr.Snapshot())
	if string(j1) != string(j2) {
		t.Fatalf("snapshot JSON not stable:\n%s\n%s", j1, j2)
	}
}

// TestConcurrentSpans hammers one trace from many goroutines — child
// creation, attribute writes, double finishes, snapshots mid-flight —
// and relies on the race detector for the verdict.
func TestConcurrentSpans(t *testing.T) {
	tr := New("hammer", "", time.Now())
	root := tr.Root()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				sp := root.Child(fmt.Sprintf("g%d-%d", g, i))
				sp.SetAttr("i", fmt.Sprint(i))
				sp.Finish()
				sp.Finish() // double finish keeps the first end
			}
		}(g)
	}
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_ = tr.Snapshot()
			}
		}()
	}
	wg.Wait()
	root.Finish()
	snap := tr.Snapshot()
	if len(snap.Root.Children) != 800 {
		t.Fatalf("children %d, want 800", len(snap.Root.Children))
	}
	for _, c := range snap.Root.Children {
		if c.DurationNs < 0 {
			t.Fatalf("span %s never finished", c.Name)
		}
	}
}

func TestRingWraparound(t *testing.T) {
	r := NewRing(4)
	if r.Capacity() != 4 {
		t.Fatalf("capacity %d", r.Capacity())
	}
	mk := func(i int) *Trace {
		tr := New(fmt.Sprintf("t%d", i), "", time.Now())
		tr.Root().Finish()
		return tr
	}
	for i := 0; i < 10; i++ {
		r.Add(mk(i))
	}
	if r.Recorded() != 10 {
		t.Fatalf("recorded %d", r.Recorded())
	}
	snap := r.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("resident %d, want 4", len(snap))
	}
	// Newest first: seqs 10, 9, 8, 7 — the first six overwritten.
	for i, want := range []uint64{10, 9, 8, 7} {
		if snap[i].Seq() != want {
			t.Fatalf("snapshot[%d].Seq = %d, want %d", i, snap[i].Seq(), want)
		}
	}
	// A partially filled ring reports only occupied slots.
	r2 := NewRing(8)
	r2.Add(mk(0))
	r2.Add(mk(1))
	if got := r2.Snapshot(); len(got) != 2 || got[0].Seq() != 2 {
		t.Fatalf("partial ring snapshot %d traces, head seq %d", len(got), got[0].Seq())
	}
}

func TestRingConcurrentAdd(t *testing.T) {
	r := NewRing(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr := New("c", "", time.Now())
				tr.Root().Finish()
				r.Add(tr)
				_ = r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if r.Recorded() != 1600 {
		t.Fatalf("recorded %d", r.Recorded())
	}
	snap := r.Snapshot()
	if len(snap) != 16 {
		t.Fatalf("resident %d", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		if snap[i-1].Seq() <= snap[i].Seq() {
			t.Fatalf("snapshot not newest-first at %d", i)
		}
	}
}
