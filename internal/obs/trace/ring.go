package trace

import (
	"sort"
	"sync/atomic"
)

// Ring is a bounded lock-free buffer of the most recent traces. Add
// claims the next slot with one atomic counter bump and publishes the
// trace with one atomic pointer store; once the ring wraps, the oldest
// trace is overwritten. Snapshot reads every slot without blocking
// writers — a trace being overwritten mid-snapshot appears as either
// the old or the new occupant, never a torn value.
type Ring struct {
	slots []atomic.Pointer[Trace]
	seq   atomic.Uint64
}

// NewRing returns a ring holding up to capacity traces (minimum 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{slots: make([]atomic.Pointer[Trace], capacity)}
}

// Capacity reports the slot count.
func (r *Ring) Capacity() int { return len(r.slots) }

// Recorded reports the total traces ever added, including overwritten
// ones.
func (r *Ring) Recorded() uint64 { return r.seq.Load() }

// Add publishes a completed trace, assigning its ring sequence. The
// sequence write happens before the pointer store, so a reader that
// loads the trace sees its final seq.
func (r *Ring) Add(t *Trace) {
	seq := r.seq.Add(1)
	t.seq = seq
	r.slots[(seq-1)%uint64(len(r.slots))].Store(t)
}

// Snapshot returns the resident traces, newest first (descending ring
// sequence).
func (r *Ring) Snapshot() []*Trace {
	out := make([]*Trace, 0, len(r.slots))
	for i := range r.slots {
		if t := r.slots[i].Load(); t != nil {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq > out[j].seq })
	return out
}
