package trace

import (
	crand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one span attribute: an ordered key/value pair. Attributes
// render as an ordered list (not a map), so the JSON a trace serves is
// byte-stable for a given sequence of SetAttr calls.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one timed operation inside a trace. Children and attributes
// may be added from any goroutine until the span is finished; a span
// finished twice keeps its first end time.
//
// A nil *Span is a valid no-op receiver for Child, ChildAt, Finish,
// FinishAt, and SetAttr (Child/ChildAt return nil), so a serving layer
// with tracing disabled threads nil spans through the same call sites
// instead of branching at each one.
type Span struct {
	name  string
	start time.Time

	mu       sync.Mutex
	end      time.Time // zero until finished
	attrs    []Attr
	children []*Span
}

// Name returns the span's operation name.
func (s *Span) Name() string { return s.name }

// Start returns the span's start time.
func (s *Span) Start() time.Time { return s.start }

// Child starts a child span now.
func (s *Span) Child(name string) *Span {
	return s.ChildAt(name, time.Now())
}

// ChildAt starts a child span with an explicit start time — the hook
// for layers that already hold a timestamp (the engine's ingest
// callback, kernel event sinks) and must not read the clock twice.
func (s *Span) ChildAt(name string, start time.Time) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: start}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// Finish ends the span now.
func (s *Span) Finish() { s.FinishAt(time.Now()) }

// FinishAt ends the span at an explicit time. The first finish wins.
func (s *Span) FinishAt(t time.Time) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = t
	}
	s.mu.Unlock()
}

// SetAttr appends one attribute.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// Trace is one request's span tree plus its propagation identity.
type Trace struct {
	traceID  string // 32 lowercase hex
	rootID   string // 16 lowercase hex, minted locally
	parentID string // inbound parent span id ("" when minted locally)
	root     *Span

	// seq is the ring position, assigned by Ring.Add before the trace
	// is published; 0 until then.
	seq uint64
}

// New opens a trace whose root span covers name, starting at start.
// traceparent, when it parses as a W3C header, donates the trace id
// and the caller's span id; otherwise a fresh trace id is minted.
func New(name, traceparent string, start time.Time) *Trace {
	t := &Trace{
		rootID: newID(8),
		root:   &Span{name: name, start: start},
	}
	if tid, pid, ok := ParseTraceparent(traceparent); ok {
		t.traceID, t.parentID = tid, pid
	} else {
		t.traceID = newID(16)
	}
	return t
}

// TraceID returns the 32-hex-digit trace id.
func (t *Trace) TraceID() string { return t.traceID }

// ParentSpanID returns the inbound caller's span id, "" when the trace
// was minted locally.
func (t *Trace) ParentSpanID() string { return t.parentID }

// Root returns the root span.
func (t *Trace) Root() *Span { return t.root }

// Seq returns the ring sequence number (0 before the trace is added).
func (t *Trace) Seq() uint64 { return t.seq }

// Traceparent renders the outbound W3C header: this trace's id with
// the locally minted root span id as the parent for downstream hops.
func (t *Trace) Traceparent() string {
	return "00-" + t.traceID + "-" + t.rootID + "-01"
}

// ParseTraceparent parses a W3C traceparent header
// (version-traceid-parentid-flags, lowercase hex). It returns ok =
// false for a missing, malformed, all-zero, or version-ff header —
// the cases the spec says to ignore and restart the trace on.
func ParseTraceparent(h string) (traceID, parentID string, ok bool) {
	// Version 00 is exactly 55 chars; future versions may append
	// "-..." fields after the flags, which parsers must tolerate.
	if len(h) < 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return "", "", false
	}
	if len(h) > 55 && (h[:2] == "00" || h[55] != '-') {
		return "", "", false
	}
	version, tid, pid, flags := h[:2], h[3:35], h[36:52], h[53:55]
	if !isLowerHex(version) || version == "ff" ||
		!isLowerHex(tid) || allZero(tid) ||
		!isLowerHex(pid) || allZero(pid) ||
		!isLowerHex(flags) {
		return "", "", false
	}
	return tid, pid, true
}

func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func allZero(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}

// idFallback distinguishes ids minted when the system entropy source
// fails (vanishingly rare; a counter keeps them unique regardless).
var idFallback atomic.Uint64

// newID returns 2n lowercase hex digits of entropy, never all zero.
func newID(n int) string {
	b := make([]byte, n)
	if _, err := crand.Read(b); err != nil || allZeroBytes(b) {
		binary.BigEndian.PutUint64(b[n-8:], idFallback.Add(1)|1<<63)
	}
	return hex.EncodeToString(b)
}

func allZeroBytes(b []byte) bool {
	for _, c := range b {
		if c != 0 {
			return false
		}
	}
	return true
}

// SpanSnapshot is a span's wire form: offsets relative to the trace
// start, so the tree reads as a timeline without timestamp arithmetic.
// DurationNs is -1 for a span that never finished (a handler leak —
// visible rather than silently zero).
type SpanSnapshot struct {
	Name       string         `json:"name"`
	StartNs    int64          `json:"start_ns"`
	DurationNs int64          `json:"duration_ns"`
	Attrs      []Attr         `json:"attrs,omitempty"`
	Children   []SpanSnapshot `json:"children,omitempty"`
}

// Snapshot is a trace's wire form, the element type of /v1/traces.
type Snapshot struct {
	TraceID      string       `json:"trace_id"`
	ParentSpanID string       `json:"parent_span_id,omitempty"`
	Seq          uint64       `json:"seq"`
	Start        string       `json:"start"` // RFC3339Nano UTC
	DurationNs   int64        `json:"duration_ns"`
	Root         SpanSnapshot `json:"root"`
}

// Snapshot renders the trace. Safe to call concurrently with span
// mutation (each span is copied under its own lock), though the usual
// caller snapshots only traces already published to a Ring — finished.
func (t *Trace) Snapshot() Snapshot {
	root := t.root.snapshot(t.root.start)
	return Snapshot{
		TraceID:      t.traceID,
		ParentSpanID: t.parentID,
		Seq:          t.seq,
		Start:        t.root.start.UTC().Format(time.RFC3339Nano),
		DurationNs:   root.DurationNs,
		Root:         root,
	}
}

// DurationNs returns the root span's duration (-1 while unfinished).
func (t *Trace) DurationNs() int64 {
	t.root.mu.Lock()
	end := t.root.end
	t.root.mu.Unlock()
	if end.IsZero() {
		return -1
	}
	return end.Sub(t.root.start).Nanoseconds()
}

func (s *Span) snapshot(origin time.Time) SpanSnapshot {
	s.mu.Lock()
	end := s.end
	attrs := append([]Attr(nil), s.attrs...)
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	snap := SpanSnapshot{
		Name:       s.name,
		StartNs:    s.start.Sub(origin).Nanoseconds(),
		DurationNs: -1,
		Attrs:      attrs,
	}
	if !end.IsZero() {
		snap.DurationNs = end.Sub(s.start).Nanoseconds()
	}
	for _, c := range children {
		snap.Children = append(snap.Children, c.snapshot(origin))
	}
	return snap
}
