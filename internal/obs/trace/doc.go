// Package trace is the request-tracing layer behind specserve: where
// internal/obs answers "how long does each stage take in aggregate",
// this package answers "why was this one request slow".
//
// # Spans
//
// A Trace is one request's hierarchical timing record: a root Span
// covering the whole request, with child spans for each stage the
// request actually entered — queue wait, engine build, corpus
// ingestion (with per-source sub-spans for merged corpora), analysis
// compute (with kernel-level sub-spans: one per k-means Lloyd
// iteration, one per HAC merge batch), and serialization. Spans carry
// ordered string attributes (status, analysis, canonical params, ETag,
// audit digest, moved-point counts, …) so a trace links to the audit
// record and the metrics the same request produced. Span creation and
// finishing are safe for concurrent use; the snapshot a finished trace
// renders is deterministic given the recorded timings.
//
// # Propagation
//
// New honors an inbound W3C traceparent header
// (00-<trace-id>-<parent-id>-<flags>): the trace id is adopted and the
// caller's span id recorded as the root's parent, so a specserve span
// tree slots into a caller's distributed trace. An absent or malformed
// header mints a fresh trace id. Traceparent renders the outbound
// header for the response, carrying the locally minted root span id.
//
// # The ring
//
// Completed traces land in a Ring — a bounded lock-free buffer of the
// most recent N traces (Add is an atomic counter bump plus an atomic
// pointer store; no locks, no per-request allocation beyond the trace
// itself). GET /v1/traces snapshots the ring, newest first; once the
// ring wraps, the oldest trace is overwritten. The ring never blocks
// the request path and tolerates concurrent Add/Snapshot.
package trace
