// Package obs is the observability and provenance layer behind
// specserve: per-stage request timing aggregated into histograms and
// exposed in Prometheus text format, plus a hash-chained audit log that
// attributes every served result to the corpus state and parameters
// that produced it.
//
// # Timing
//
// A request's life is split into flat stages — queue wait at the
// concurrency gate, engine build, corpus ingestion, analysis compute,
// response serialization — each recorded as nanoseconds in a
// RequestMetrics and aggregated by a Collector into fixed-bucket
// histograms (per stage, and per analysis for end-to-end latency).
// The Collector serves two consumers: an enriched JSON snapshot for
// /v1/stats (bucketed p50/p95 estimates per analysis) and a
// Prometheus-text /metrics exposition (WritePrometheus), so existing
// scrape tooling works without a client library dependency.
//
// # Audit
//
// An AuditLog appends one Record per attributable 200 response:
// timestamp, corpus fingerprint, analysis name, canonical parameters,
// and a digest of the served bytes, chained through core.Digest — each
// record's hash covers the previous record's hash, so truncating,
// reordering, or mutating any byte of any record breaks the chain from
// that point on. VerifyChain detects the first broken record and
// reports its index. Appends go through a batching writer (bounded
// channel, background goroutine, flush on batch size, interval, or
// Close) so the serving hot path never blocks on file I/O, and Close
// drains every queued record before returning — a graceful shutdown
// loses nothing.
//
// Each record also carries the trace id of the request that served the
// bytes (empty when tracing is off). The id is folded into the record
// hash only when present, so logs written before tracing existed — or
// with tracing disabled — verify byte-for-byte under the current
// verifier, and anchors captured from them stay valid.
//
// # Event log
//
// The obs/evlog subpackage is the structured event stream the serving
// layer logs through: leveled, logfmt- or JSON-encoded events with
// ordered key/value attributes and a trace_id field correlating each
// event with /v1/traces. A nil *evlog.Logger is a no-op, so state
// holders instrument unconditionally and the caller decides at wiring
// time whether events flow. The AuditLog emits audit_flush events
// (reason, record count, queue depth) through AuditOptions.Events, and
// its FlushStats/QueueDepth accessors feed the
// specserve_audit_queue_* exposition families.
//
// # Tracing
//
// The histograms above answer "how slow are requests like this"; the
// obs/trace subpackage answers "where did this request spend its
// time". Each request gets a Trace — a tree of timed Spans with
// ordered attributes, carrying W3C trace-context identity — built by
// the serving layer as the request crosses the same stages the
// Collector aggregates, plus kernel-level child spans (one per k-means
// iteration or HAC merge batch) fed by count-only observer callbacks
// so the analyses themselves stay clock-free. Completed traces are
// published to a bounded lock-free Ring and served by /v1/traces.
//
// RuntimeSampler rounds out the picture: sampled at /metrics scrape
// time, it renders goroutine count, heap gauges, GC cycle count, and a
// cumulative GC pause histogram (WriteRuntimePrometheus) so a latency
// spike in the stage histograms can be checked against GC pressure
// without attaching a profiler.
package obs
