package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// nsDuration converts observer nanoseconds to a time.Duration.
func nsDuration(ns int64) time.Duration { return time.Duration(ns) }

// Stage names for per-stage timing. They are the `stage` label of the
// Prometheus exposition and the keys of the /v1/stats stage breakdown,
// so they are part of the wire contract.
const (
	StageQueueWait   = "queue_wait"   // blocked at the concurrency gate
	StageEngineBuild = "engine_build" // pool miss: fingerprint + engine construction
	StageIngest      = "ingest"       // corpus streamed through the classification funnel
	StageCompute     = "compute"      // analysis function execution (memo misses only)
	StageSerialize   = "serialize"    // response encoding
)

// Stages lists every stage name in exposition order.
var Stages = []string{
	StageQueueWait, StageEngineBuild, StageIngest, StageCompute, StageSerialize,
}

// RequestMetrics is one request's flat per-stage timing, nanoseconds
// per stage as the request experienced them. Stages the request never
// entered stay zero: a warm hit has no build/ingest/compute time, a 304
// has no serialize time. EngineBuildNs, IngestNs, and ComputeNs are
// wall-clock from the request's perspective — under single-flight
// construction, concurrent requests for one cold scope each observe the
// shared build they waited on. The true once-per-event costs are
// aggregated separately from the engine's own observer callbacks.
type RequestMetrics struct {
	// Analysis is the registry name served ("" for non-analysis
	// endpoints); Params its canonical parameter string.
	Analysis string
	Params   string
	// Status is the final HTTP status.
	Status int

	QueueWaitNs   int64
	EngineBuildNs int64
	IngestNs      int64
	ComputeNs     int64
	SerializeNs   int64
	// TotalNs covers the whole request, gate entry to response end.
	TotalNs int64
}

// Collector aggregates request metrics: one histogram per stage, one
// end-to-end latency histogram per analysis, and the event counters the
// exposition reports. All methods are safe for concurrent use.
type Collector struct {
	mu         sync.Mutex
	stages     map[string]*Histogram
	byAnalysis map[string]*Histogram

	// Event counters fed by the serving layer and engine observers.
	// Engine builds are deliberately absent: the pool that performs
	// them owns that count, and the exposition takes it as a gauge
	// input so the two surfaces cannot drift.
	requests    atomic.Int64
	notModified atomic.Int64
	clientErrs  atomic.Int64 // 4xx responses
	serverErrs  atomic.Int64 // 5xx responses
	ingests     atomic.Int64
	computes    atomic.Int64
	memoHits    atomic.Int64
}

// NewCollector returns an empty Collector.
func NewCollector() *Collector {
	return &Collector{
		stages:     make(map[string]*Histogram, len(Stages)),
		byAnalysis: make(map[string]*Histogram),
	}
}

func (c *Collector) stageHist(stage string) *Histogram {
	c.mu.Lock()
	defer c.mu.Unlock()
	h := c.stages[stage]
	if h == nil {
		h = &Histogram{}
		c.stages[stage] = h
	}
	return h
}

func (c *Collector) analysisHist(name string) *Histogram {
	c.mu.Lock()
	defer c.mu.Unlock()
	h := c.byAnalysis[name]
	if h == nil {
		h = &Histogram{}
		c.byAnalysis[name] = h
	}
	return h
}

// ObserveRequest folds one finished request into the aggregates: the
// request-owned stages (queue wait, serialize) into their stage
// histograms, the total into the analysis's latency histogram (when
// the request named one), and the status into the request/304/error
// counters. Build, ingest, and compute stages are deliberately NOT
// folded in here — those histograms aggregate the true once-per-event
// costs via ObserveBuild/ObserveIngest/ObserveCompute, while the
// RequestMetrics fields record the wall-clock this request spent
// waiting on them (possibly shared under single-flight), which would
// double count.
func (c *Collector) ObserveRequest(m *RequestMetrics) {
	if m == nil {
		return
	}
	c.requests.Add(1)
	switch {
	case m.Status == 304:
		c.notModified.Add(1)
	case m.Status >= 500:
		c.serverErrs.Add(1)
	case m.Status >= 400:
		c.clientErrs.Add(1)
	}
	if m.QueueWaitNs > 0 {
		c.stageHist(StageQueueWait).Observe(nsDuration(m.QueueWaitNs))
	}
	if m.SerializeNs > 0 {
		c.stageHist(StageSerialize).Observe(nsDuration(m.SerializeNs))
	}
	if m.Analysis != "" && m.TotalNs > 0 {
		c.analysisHist(m.Analysis).Observe(nsDuration(m.TotalNs))
	}
}

// ObserveBuild records one engine construction (pool miss) into the
// stage histogram; the build count itself is owned by the pool.
func (c *Collector) ObserveBuild(ns int64) {
	c.stageHist(StageEngineBuild).Observe(nsDuration(ns))
}

// ObserveIngest records one corpus ingestion, as reported by the
// engine's observer — the once-per-engine cost, counted exactly once no
// matter how many requests waited on it.
func (c *Collector) ObserveIngest(ns int64) {
	c.ingests.Add(1)
	c.stageHist(StageIngest).Observe(nsDuration(ns))
}

// ObserveCompute records one analysis computation (memo miss). The
// per-analysis histograms aggregate request latency, not compute time —
// compute feeds only the stage histogram, so a memoized analysis's
// request latency distribution stays comparable across hit and miss.
func (c *Collector) ObserveCompute(name string, ns int64) {
	_ = name // labels the stage in a future per-analysis compute split
	c.computes.Add(1)
	c.stageHist(StageCompute).Observe(nsDuration(ns))
}

// ObserveMemoHit records one engine memo-cache hit, as reported by the
// engine's Observer.Hit. With ObserveCompute counting the misses, the
// pair yields the fleet-wide memo hit ratio — and, unlike per-engine
// counters, survives engine eviction.
func (c *Collector) ObserveMemoHit(name, params string) {
	_ = name // labels a future per-analysis hit split
	_ = params
	c.memoHits.Add(1)
}

// Requests reports completed requests observed.
func (c *Collector) Requests() int64 { return c.requests.Load() }

// NotModified reports 304 responses observed.
func (c *Collector) NotModified() int64 { return c.notModified.Load() }

// ClientErrors reports 4xx responses observed.
func (c *Collector) ClientErrors() int64 { return c.clientErrs.Load() }

// ServerErrors reports 5xx responses observed.
func (c *Collector) ServerErrors() int64 { return c.serverErrs.Load() }

// Ingests reports corpus ingestions observed.
func (c *Collector) Ingests() int64 { return c.ingests.Load() }

// Computes reports analysis computations observed.
func (c *Collector) Computes() int64 { return c.computes.Load() }

// MemoHits reports engine memo-cache hits observed.
func (c *Collector) MemoHits() int64 { return c.memoHits.Load() }

// StageSummary is one stage's aggregate for the JSON stats snapshot.
type StageSummary struct {
	Stage  string `json:"stage"`
	Count  uint64 `json:"count"`
	SumNs  int64  `json:"sum_ns"`
	P50Ns  int64  `json:"p50_ns"`
	P95Ns  int64  `json:"p95_ns"`
	P99Ns  int64  `json:"p99_ns"`
	MeanNs int64  `json:"mean_ns"`
}

// AnalysisSummary is one analysis's latency aggregate for /v1/stats.
type AnalysisSummary struct {
	Analysis string `json:"analysis"`
	Count    uint64 `json:"count"`
	SumNs    int64  `json:"sum_ns"`
	P50Ns    int64  `json:"p50_ns"`
	P95Ns    int64  `json:"p95_ns"`
	P99Ns    int64  `json:"p99_ns"`
	MeanNs   int64  `json:"mean_ns"`
}

// Summary is the Collector's JSON form, embedded in /v1/stats.
type Summary struct {
	Stages   []StageSummary    `json:"stages,omitempty"`
	Analyses []AnalysisSummary `json:"analyses,omitempty"`
}

func summarize(s HistogramSnapshot) (p50, p95, p99, mean int64) {
	if s.Count == 0 {
		return 0, 0, 0, 0
	}
	return s.QuantileNs(0.50), s.QuantileNs(0.95), s.QuantileNs(0.99),
		s.SumNs / int64(s.Count)
}

// Summarize returns the bucketed percentile summaries for every stage
// (in canonical order) and analysis (sorted by name) with at least one
// observation.
func (c *Collector) Summarize() Summary {
	c.mu.Lock()
	stages := make(map[string]*Histogram, len(c.stages))
	for k, v := range c.stages {
		stages[k] = v
	}
	analyses := make(map[string]*Histogram, len(c.byAnalysis))
	for k, v := range c.byAnalysis {
		analyses[k] = v
	}
	c.mu.Unlock()

	var out Summary
	for _, stage := range Stages {
		h := stages[stage]
		if h == nil {
			continue
		}
		snap := h.Snapshot()
		if snap.Count == 0 {
			continue
		}
		p50, p95, p99, mean := summarize(snap)
		out.Stages = append(out.Stages, StageSummary{
			Stage: stage, Count: snap.Count, SumNs: snap.SumNs,
			P50Ns: p50, P95Ns: p95, P99Ns: p99, MeanNs: mean,
		})
	}
	names := make([]string, 0, len(analyses))
	for name := range analyses {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		snap := analyses[name].Snapshot()
		if snap.Count == 0 {
			continue
		}
		p50, p95, p99, mean := summarize(snap)
		out.Analyses = append(out.Analyses, AnalysisSummary{
			Analysis: name, Count: snap.Count, SumNs: snap.SumNs,
			P50Ns: p50, P95Ns: p95, P99Ns: p99, MeanNs: mean,
		})
	}
	return out
}
