package obs

import (
	"sync"
	"time"
)

// bucketBounds are the histogram upper bounds in nanoseconds: powers of
// four from 1µs to ~4.3s. The serving stack spans six decades — a warm
// memo read is ~1µs, a cold ingest tens of milliseconds, a pathological
// cold cluster sweep can reach seconds — so exponential buckets keep
// the resolution roughly constant in relative error (±2×) across the
// whole range with only a dozen counters per histogram.
var bucketBounds = [12]int64{
	1_000,         // 1µs
	4_000,         // 4µs
	16_000,        // 16µs
	64_000,        // 64µs
	256_000,       // 256µs
	1_024_000,     // ~1ms
	4_096_000,     // ~4ms
	16_384_000,    // ~16ms
	65_536_000,    // ~66ms
	262_144_000,   // ~262ms
	1_048_576_000, // ~1.05s
	4_294_967_296, // ~4.3s
}

// Histogram is a fixed-bucket latency histogram: counts per bucket plus
// total count and sum, the exact state a Prometheus histogram
// exposition needs. The zero value is ready to use.
type Histogram struct {
	mu     sync.Mutex
	counts [len(bucketBounds) + 1]uint64 // last bucket = +Inf overflow
	count  uint64
	sumNs  int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	i := 0
	for i < len(bucketBounds) && ns > bucketBounds[i] {
		i++
	}
	h.mu.Lock()
	h.counts[i]++
	h.count++
	h.sumNs += ns
	h.mu.Unlock()
}

// Bucket is one cumulative histogram bucket: the count of observations
// at or below the upper bound (Prometheus `le` semantics;
// UpperNs < 0 marks the +Inf overflow bucket).
type Bucket struct {
	UpperNs    int64  `json:"upper_ns"`
	Cumulative uint64 `json:"cumulative"`
}

// HistogramSnapshot is one point-in-time reading of a Histogram.
type HistogramSnapshot struct {
	Count   uint64   `json:"count"`
	SumNs   int64    `json:"sum_ns"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot returns a consistent copy of the histogram state with
// cumulative bucket counts.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	counts := h.counts
	snap := HistogramSnapshot{Count: h.count, SumNs: h.sumNs}
	h.mu.Unlock()
	buckets := make([]Bucket, 0, len(counts))
	var cum uint64
	for i, c := range counts {
		cum += c
		upper := int64(-1)
		if i < len(bucketBounds) {
			upper = bucketBounds[i]
		}
		buckets = append(buckets, Bucket{UpperNs: upper, Cumulative: cum})
	}
	snap.Buckets = buckets
	return snap
}

// QuantileNs estimates the q-quantile (0 < q <= 1) in nanoseconds from
// the cumulative buckets, by linear interpolation inside the bucket the
// quantile falls in — the same estimate Prometheus's histogram_quantile
// computes server-side. The +Inf bucket clamps to the largest finite
// bound, and an empty histogram reports 0.
func (s HistogramSnapshot) QuantileNs(q float64) int64 {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	for i, b := range s.Buckets {
		if float64(b.Cumulative) < rank {
			continue
		}
		if b.UpperNs < 0 {
			// Overflow bucket: no finite upper bound to interpolate to.
			return bucketBounds[len(bucketBounds)-1]
		}
		var lower int64
		var below uint64
		if i > 0 {
			lower = s.Buckets[i-1].UpperNs
			below = s.Buckets[i-1].Cumulative
		}
		inBucket := b.Cumulative - below
		if inBucket == 0 {
			return b.UpperNs
		}
		frac := (rank - float64(below)) / float64(inBucket)
		return lower + int64(frac*float64(b.UpperNs-lower))
	}
	return s.Buckets[len(s.Buckets)-1].UpperNs
}
