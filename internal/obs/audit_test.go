package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs/evlog"
)

func testEntry(i int) Entry {
	return Entry{
		Time:         time.Date(2026, 8, 7, 12, 0, i%60, i, time.UTC),
		Fingerprint:  "fp-corpus",
		Analysis:     "fig3",
		Params:       fmt.Sprintf("k=%d", i),
		Filter:       "vendor=amd",
		ResultDigest: ResultDigest([]byte(fmt.Sprintf("body-%d", i))),
	}
}

func openTestLog(t *testing.T, path string, opts AuditOptions) *AuditLog {
	t.Helper()
	l, err := OpenAuditLog(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func verifyFile(t *testing.T, path string) (VerifyResult, error) {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	return VerifyChain(f)
}

func TestAuditAppendVerify(t *testing.T) {
	path := filepath.Join(t.TempDir(), "audit.log")
	l := openTestLog(t, path, AuditOptions{})
	for i := 0; i < 10; i++ {
		l.Append(testEntry(i))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if got := l.Records(); got != 10 {
		t.Errorf("Records() = %d, want 10", got)
	}
	res, err := verifyFile(t, path)
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 10 || res.HeadHash == "" {
		t.Errorf("verify = %+v, want 10 records with a head hash", res)
	}
}

// TestAuditConcurrentHammer drives the batcher from many goroutines at
// once, then closes (the graceful-shutdown drain): the chain must
// verify and hold every appended record — batching may reorder relative
// wall-clock, but never lose or fork.
func TestAuditConcurrentHammer(t *testing.T) {
	path := filepath.Join(t.TempDir(), "audit.log")
	// Tiny flush threshold exercises many batch boundaries.
	l := openTestLog(t, path, AuditOptions{FlushRecords: 7, FlushInterval: 5 * time.Millisecond})
	const goroutines, per = 16, 250
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				l.Append(testEntry(g*per + i))
			}
		}(g)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := verifyFile(t, path)
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != goroutines*per {
		t.Errorf("chain holds %d records, want %d — records lost in the drain",
			res.Records, goroutines*per)
	}
}

// TestAuditAppendAfterCloseDropped: a shutdown race appends nothing and
// does not panic.
func TestAuditAppendAfterCloseDropped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "audit.log")
	l := openTestLog(t, path, AuditOptions{})
	l.Append(testEntry(0))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l.Append(testEntry(1)) // must not panic
	if err := l.Close(); err != nil {
		t.Fatal(err) // idempotent
	}
	res, err := verifyFile(t, path)
	if err != nil || res.Records != 1 {
		t.Errorf("verify = %+v, %v; want exactly the pre-close record", res, err)
	}
}

// TestAuditCorruptionDetected flips a single byte in a middle record's
// result digest: verification must fail and name that record's index.
func TestAuditCorruptionDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "audit.log")
	l := openTestLog(t, path, AuditOptions{})
	for i := 0; i < 9; i++ {
		l.Append(testEntry(i))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSuffix(raw, []byte("\n")), []byte("\n"))
	if len(lines) != 9 {
		t.Fatalf("log has %d lines, want 9", len(lines))
	}
	const victim = 4
	var rec Record
	if err := json.Unmarshal(lines[victim], &rec); err != nil {
		t.Fatal(err)
	}
	// Flip one hex digit of the stored digest (valid JSON, wrong hash).
	d := []byte(rec.ResultDigest)
	if d[0] == 'a' {
		d[0] = 'b'
	} else {
		d[0] = 'a'
	}
	rec.ResultDigest = string(d)
	mutated, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	lines[victim] = mutated
	out := append(bytes.Join(lines, []byte("\n")), '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}

	_, verr := verifyFile(t, path)
	var ce *ChainError
	if !errors.As(verr, &ce) {
		t.Fatalf("verify error = %v, want *ChainError", verr)
	}
	if ce.Index != victim {
		t.Errorf("broken at index %d, want %d", ce.Index, victim)
	}

	// A tampered log refuses to reopen for appending.
	if _, err := OpenAuditLog(path, AuditOptions{}); err == nil {
		t.Error("OpenAuditLog accepted a tampered log")
	}
}

// TestAuditSingleByteMutationsAllDetected walks every byte of a short
// log, flips it, and asserts the chain never verifies — the acceptance
// criterion stated literally.
func TestAuditSingleByteMutationsAllDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "audit.log")
	l := openTestLog(t, path, AuditOptions{})
	for i := 0; i < 3; i++ {
		l.Append(testEntry(i))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := range raw {
		mutated := bytes.Clone(raw)
		mutated[i] ^= 0x01
		if _, err := VerifyChain(bytes.NewReader(mutated)); err == nil {
			t.Fatalf("flipping byte %d (%q -> %q) went undetected",
				i, raw[i], mutated[i])
		}
	}
}

// TestAuditRecordRemovalDetected: dropping a middle record breaks the
// prev linkage at the splice point.
func TestAuditRecordRemovalDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "audit.log")
	l := openTestLog(t, path, AuditOptions{})
	for i := 0; i < 5; i++ {
		l.Append(testEntry(i))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	raw, _ := os.ReadFile(path)
	lines := bytes.SplitAfter(raw, []byte("\n"))
	spliced := append(append([]byte{}, bytes.Join(lines[:2], nil)...),
		bytes.Join(lines[3:], nil)...)
	_, err := VerifyChain(bytes.NewReader(spliced))
	var ce *ChainError
	if !errors.As(err, &ce) || ce.Index != 2 {
		t.Errorf("removal: err = %v, want ChainError at index 2", err)
	}
}

// TestAuditTornTailDetected: a final line cut mid-record (a crash
// without flush completing the write) fails verification at its index.
func TestAuditTornTailDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "audit.log")
	l := openTestLog(t, path, AuditOptions{})
	for i := 0; i < 3; i++ {
		l.Append(testEntry(i))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	raw, _ := os.ReadFile(path)
	torn := raw[:len(raw)-10]
	_, err := VerifyChain(bytes.NewReader(torn))
	var ce *ChainError
	if !errors.As(err, &ce) || ce.Index != 2 {
		t.Errorf("torn tail: err = %v, want ChainError at index 2", err)
	}
}

// TestAuditReopenContinuesChain: a restarted server resumes the chain
// where it left off, and the whole file still verifies as one chain.
func TestAuditReopenContinuesChain(t *testing.T) {
	path := filepath.Join(t.TempDir(), "audit.log")
	l := openTestLog(t, path, AuditOptions{})
	for i := 0; i < 4; i++ {
		l.Append(testEntry(i))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2 := openTestLog(t, path, AuditOptions{})
	for i := 4; i < 7; i++ {
		l2.Append(testEntry(i))
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := verifyFile(t, path)
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 7 {
		t.Errorf("reopened chain holds %d records, want 7", res.Records)
	}
}

func TestVerifyChainEmpty(t *testing.T) {
	res, err := VerifyChain(strings.NewReader(""))
	if err != nil || res.Records != 0 || res.HeadHash != "" {
		t.Errorf("empty log: %+v, %v", res, err)
	}
}

// BenchmarkAuditAppend measures the hot-path cost of one audit append:
// an entry handed to the batching writer (channel send), no file I/O on
// the caller.
func BenchmarkAuditAppend(b *testing.B) {
	path := filepath.Join(b.TempDir(), "audit.log")
	l, err := OpenAuditLog(path, AuditOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	e := testEntry(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Append(e)
	}
	b.StopTimer()
	if err := l.Close(); err != nil {
		b.Fatal(err)
	}
}

// TestAuditFlushStats: flushes are counted by trigger, flushed records
// sum to the appends, queue depth drains to zero, and the Events logger
// sees one audit_flush line per counted flush.
func TestAuditFlushStats(t *testing.T) {
	var events bytes.Buffer
	path := filepath.Join(t.TempDir(), "audit.log")
	l := openTestLog(t, path, AuditOptions{
		FlushRecords:  4,
		FlushInterval: time.Hour, // never fires: triggers under test are batch and close
		Events:        evlog.New(&events, evlog.Options{}),
	})
	for i := 0; i < 10; i++ {
		l.Append(testEntry(i))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	st := l.FlushStats()
	// 10 appends at batch size 4: two batch flushes, one close flush for
	// the remaining 2.
	if st.Batch != 2 || st.Interval != 0 || st.Close != 1 {
		t.Errorf("FlushStats = %+v, want 2 batch + 1 close", st)
	}
	if st.FlushedRecords != 10 {
		t.Errorf("FlushedRecords = %d, want 10", st.FlushedRecords)
	}
	if d := l.QueueDepth(); d != 0 {
		t.Errorf("QueueDepth after Close = %d, want 0", d)
	}
	lines := strings.Count(events.String(), "event=audit_flush")
	if lines != 3 {
		t.Errorf("%d audit_flush events, want 3:\n%s", lines, events.String())
	}
	for _, want := range []string{`reason=batch`, `reason=close`, `records=4`, `records=2`} {
		if !strings.Contains(events.String(), want) {
			t.Errorf("events missing %q:\n%s", want, events.String())
		}
	}
}
