package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs/evlog"
)

// Record is one appended audit entry: the provenance of one served
// response, chained to its predecessor. Hash covers every other field
// including Prev, so mutating any byte of any record — or reordering,
// inserting, or removing one — breaks verification from that record on.
type Record struct {
	// Seq is the zero-based chain position.
	Seq uint64 `json:"seq"`
	// Time is the append timestamp, RFC3339Nano UTC.
	Time string `json:"time"`
	// Fingerprint is the corpus identity the response was computed
	// from: the served scope's core.SourceFingerprint, which already
	// folds the base corpus identity and the canonical filter together.
	Fingerprint string `json:"fingerprint"`
	// Analysis is the registry name served ("report" for the full text
	// report endpoint).
	Analysis string `json:"analysis"`
	// Params is the canonical non-default parameter string ("" for a
	// default request), the same identity that keys memos and ETags.
	Params string `json:"params,omitempty"`
	// Filter is the canonical scope expression, redundant with
	// Fingerprint but kept human-readable.
	Filter string `json:"filter,omitempty"`
	// ResultDigest is core.Digest over the exact served body bytes.
	ResultDigest string `json:"result_digest"`
	// TraceID is the request trace that produced the response (32 hex
	// digits), "" when the server ran without tracing. Absent from the
	// JSON — and from the record hash — when empty, so logs written
	// before tracing existed keep verifying byte-for-byte.
	TraceID string `json:"trace_id,omitempty"`
	// Prev is the previous record's Hash (ChainGenesis for Seq 0).
	Prev string `json:"prev"`
	// Hash chains this record: core.Digest over every field above.
	Hash string `json:"hash"`
}

// ChainGenesis anchors the first record's Prev so every link in the
// chain, including the first, has a non-empty predecessor hash.
var ChainGenesis = core.Digest("specserve-audit-genesis")

// recordHash computes the chain hash of r from its content fields and
// Prev, reusing core.Digest's length-prefixed framing so field
// boundaries cannot be forged by shifting bytes between fields. A
// non-empty TraceID joins the hash under its own domain label;
// an empty one contributes nothing, which keeps every record written
// before the field existed verifying under today's code. That
// conditional is safe because chain integrity rests on anchoring the
// head hash externally, not on guessing-resistance of individual
// fields — and the framing makes "trace:" + id unforgeable by
// shifting bytes from neighboring fields.
func recordHash(r Record) string {
	fields := []string{
		"audit-record", strconv.FormatUint(r.Seq, 10), r.Time, r.Fingerprint,
		r.Analysis, r.Params, r.Filter, r.ResultDigest,
	}
	if r.TraceID != "" {
		fields = append(fields, "trace:"+r.TraceID)
	}
	fields = append(fields, r.Prev)
	return core.Digest(fields...)
}

// ResultDigest digests the exact bytes a response served, the value
// recorded in Record.ResultDigest.
func ResultDigest(body []byte) string {
	return core.Digest("result", string(body))
}

// Entry is the caller-supplied part of a record; the log assigns Seq,
// Prev, and Hash when the entry is chained.
type Entry struct {
	Time         time.Time
	Fingerprint  string
	Analysis     string
	Params       string
	Filter       string
	ResultDigest string
	// TraceID links the record to the request trace that served the
	// bytes ("" when tracing is off).
	TraceID string
}

// AuditOptions tune the batching writer. Zero values select defaults.
type AuditOptions struct {
	// FlushRecords flushes the buffered file writer once this many
	// records accumulate since the last flush (default 64).
	FlushRecords int
	// FlushInterval flushes on this cadence regardless of volume, so a
	// quiet server still persists its tail promptly (default 500ms).
	FlushInterval time.Duration
	// QueueSize bounds the append channel (default 4096). Append blocks
	// only if the writer goroutine falls this far behind — memory
	// backpressure, never file I/O on the caller.
	QueueSize int
	// Events, when non-nil, receives an audit_flush lifecycle event per
	// file flush (Debug level: records flushed, reason, queue depth at
	// flush time). Nil — the default — logs nothing.
	Events *evlog.Logger
}

func (o AuditOptions) withDefaults() AuditOptions {
	if o.FlushRecords <= 0 {
		o.FlushRecords = 64
	}
	if o.FlushInterval <= 0 {
		o.FlushInterval = 500 * time.Millisecond
	}
	if o.QueueSize <= 0 {
		o.QueueSize = 4096
	}
	return o
}

// AuditLog is a hash-chained append-only log with a batching writer:
// Append enqueues onto a bounded channel and returns; a single writer
// goroutine assigns chain positions, encodes, and flushes the file on
// batch size, interval, and Close. Close drains everything already
// enqueued before returning, so a graceful shutdown loses no records.
type AuditLog struct {
	path string
	opts AuditOptions

	ch   chan Entry
	done chan struct{}

	mu     sync.RWMutex // guards closed against concurrent Append/Close
	closed bool

	records   atomic.Int64 // chained records over the process lifetime
	writeErrs atomic.Int64

	// flush accounting, split by what triggered the flush
	flushBatch     atomic.Int64
	flushInterval  atomic.Int64
	flushClose     atomic.Int64
	flushedRecords atomic.Int64

	// writer-goroutine state
	f       *os.File
	w       *bufio.Writer
	seq     uint64
	prev    string
	pending int
}

// OpenAuditLog opens (or creates) the chained log at path and verifies
// any existing contents before appending: the chain resumes from the
// verified head, and a log that fails verification refuses to open —
// appending to a tampered or truncated-mid-record log would bury the
// evidence under fresh valid records.
func OpenAuditLog(path string, opts AuditOptions) (*AuditLog, error) {
	opts = opts.withDefaults()
	seq, prev := uint64(0), ChainGenesis
	if rf, err := os.Open(path); err == nil {
		res, verr := VerifyChain(rf)
		rf.Close()
		if verr != nil {
			return nil, fmt.Errorf("obs: audit log %s: %w", path, verr)
		}
		seq, prev = uint64(res.Records), ChainGenesis
		if res.Records > 0 {
			prev = res.HeadHash
		}
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("obs: audit log %s: %w", path, err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("obs: audit log %s: %w", path, err)
	}
	l := &AuditLog{
		path: path,
		opts: opts,
		ch:   make(chan Entry, opts.QueueSize),
		done: make(chan struct{}),
		f:    f,
		w:    bufio.NewWriterSize(f, 64<<10),
		seq:  seq,
		prev: prev,
	}
	l.records.Store(int64(seq)) // resume the chain-length count too
	go l.run()
	return l, nil
}

// Append enqueues one entry for chaining. It never touches the file:
// the only way it blocks is a full in-memory queue (the writer
// goroutine QueueSize records behind). Appending to a closed log is a
// silent no-op — shutdown races drop the entry rather than panic.
func (l *AuditLog) Append(e Entry) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if l.closed {
		return
	}
	l.ch <- e
}

// Records reports the chain length: records verified at open plus
// records chained (assigned a seq and encoded toward the file) since.
func (l *AuditLog) Records() int64 { return l.records.Load() }

// Path returns the log's file path.
func (l *AuditLog) Path() string { return l.path }

// Close drains every enqueued entry, flushes, and closes the file.
func (l *AuditLog) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	close(l.ch)
	l.mu.Unlock()
	<-l.done
	var err error
	if l.writeErrs.Load() > 0 {
		err = fmt.Errorf("obs: audit log %s: %d write errors", l.path, l.writeErrs.Load())
	}
	if ferr := l.f.Close(); err == nil && ferr != nil {
		err = fmt.Errorf("obs: audit log %s: %w", l.path, ferr)
	}
	return err
}

// run is the writer goroutine: chain, encode, batch, flush.
func (l *AuditLog) run() {
	defer close(l.done)
	ticker := time.NewTicker(l.opts.FlushInterval)
	defer ticker.Stop()
	for {
		select {
		case e, ok := <-l.ch:
			if !ok {
				l.flush("close")
				return
			}
			l.chain(e)
			if l.pending >= l.opts.FlushRecords {
				l.flush("batch")
			}
		case <-ticker.C:
			l.flush("interval")
		}
	}
}

func (l *AuditLog) chain(e Entry) {
	r := Record{
		Seq:          l.seq,
		Time:         e.Time.UTC().Format(time.RFC3339Nano),
		Fingerprint:  e.Fingerprint,
		Analysis:     e.Analysis,
		Params:       e.Params,
		Filter:       e.Filter,
		ResultDigest: e.ResultDigest,
		TraceID:      e.TraceID,
		Prev:         l.prev,
	}
	r.Hash = recordHash(r)
	line, err := json.Marshal(r)
	if err != nil {
		// A Record is all strings and ints; Marshal cannot fail short of
		// memory corruption. Count it rather than silently advance the
		// chain past a hole.
		l.writeErrs.Add(1)
		return
	}
	line = append(line, '\n')
	if _, err := l.w.Write(line); err != nil {
		l.writeErrs.Add(1)
		return
	}
	l.seq++
	l.prev = r.Hash
	l.pending++
	l.records.Add(1)
}

func (l *AuditLog) flush(reason string) {
	if l.pending == 0 {
		return
	}
	if err := l.w.Flush(); err != nil {
		l.writeErrs.Add(1)
		return
	}
	n := l.pending
	l.pending = 0
	switch reason {
	case "batch":
		l.flushBatch.Add(1)
	case "interval":
		l.flushInterval.Add(1)
	case "close":
		l.flushClose.Add(1)
	}
	l.flushedRecords.Add(int64(n))
	l.opts.Events.Debug("audit_flush",
		evlog.String("reason", reason),
		evlog.Int("records", n),
		evlog.Int("queue_depth", len(l.ch)))
}

// QueueDepth reports the entries currently enqueued and not yet
// chained — how far the writer goroutine is behind its callers.
func (l *AuditLog) QueueDepth() int { return len(l.ch) }

// FlushStats is a point-in-time snapshot of the batching writer's
// flush accounting: flushes split by trigger, plus the total records
// those flushes pushed to the file.
type FlushStats struct {
	Batch          int64 // flushes triggered by FlushRecords accumulating
	Interval       int64 // flushes triggered by the FlushInterval ticker
	Close          int64 // the final drain flush (0 or 1)
	FlushedRecords int64 // records covered by all flushes together
}

// FlushStats reports the log's flush counters. Ticker fires with
// nothing pending are not counted — every counted flush moved bytes.
func (l *AuditLog) FlushStats() FlushStats {
	return FlushStats{
		Batch:          l.flushBatch.Load(),
		Interval:       l.flushInterval.Load(),
		Close:          l.flushClose.Load(),
		FlushedRecords: l.flushedRecords.Load(),
	}
}

// ChainError reports the first record that fails verification.
type ChainError struct {
	// Index is the zero-based position (line number) of the failing
	// record in the log.
	Index  int
	Reason string
}

func (e *ChainError) Error() string {
	return fmt.Sprintf("obs: audit chain broken at record %d: %s", e.Index, e.Reason)
}

// VerifyResult summarizes a successful chain verification. HeadHash is
// the last record's hash — the anchor to store externally: a log
// truncated at a record boundary still verifies internally, but its
// head no longer matches the anchored value.
type VerifyResult struct {
	Records  int
	HeadHash string
	// HeadTraceID is the last record's trace id ("" for logs written
	// without tracing) — specaudit head surfaces it so an operator can
	// jump from the chain head to the trace that produced it.
	HeadTraceID string
}

// VerifyChain reads a chained log and checks every link: sequential
// seq, prev equal to the predecessor's hash (ChainGenesis first), and
// each record's hash matching its recomputed content hash. Any
// single-byte mutation — in a field, in a hash, or one that breaks the
// JSON — fails with the index of the first bad record; so do inserted,
// removed, or reordered records, and a partial (torn) final line.
func VerifyChain(r io.Reader) (VerifyResult, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	prev := ChainGenesis
	headTrace := ""
	n := 0
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec Record
		// DisallowUnknownFields matters for integrity: a mutated byte
		// inside a key (say "seq" -> "sep") would otherwise be silently
		// ignored, and for a record whose real value is the field's zero
		// value the recomputed hash would still match.
		dec := json.NewDecoder(bytes.NewReader(line))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&rec); err != nil {
			return VerifyResult{}, &ChainError{Index: n, Reason: fmt.Sprintf("unparsable record: %v", err)}
		}
		if dec.More() {
			return VerifyResult{}, &ChainError{Index: n, Reason: "trailing data after record"}
		}
		if rec.Seq != uint64(n) {
			return VerifyResult{}, &ChainError{Index: n, Reason: fmt.Sprintf("seq %d, want %d", rec.Seq, n)}
		}
		if rec.Prev != prev {
			return VerifyResult{}, &ChainError{Index: n, Reason: "prev hash does not match predecessor"}
		}
		if got := recordHash(rec); got != rec.Hash {
			return VerifyResult{}, &ChainError{Index: n, Reason: "record hash does not match contents"}
		}
		prev = rec.Hash
		headTrace = rec.TraceID
		n++
	}
	if err := sc.Err(); err != nil {
		return VerifyResult{}, fmt.Errorf("obs: audit chain read: %w", err)
	}
	head := ""
	if n > 0 {
		head = prev
	}
	return VerifyResult{Records: n, HeadHash: head, HeadTraceID: headTrace}, nil
}
