package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// ServerGauges carries the serving-layer counters and gauges whose
// source of truth lives outside the Collector (the HTTP server's gate
// and engine pool, the audit log), so the exposition can render one
// consistent page without the Collector duplicating that state.
type ServerGauges struct {
	Requests      int64
	NotModified   int64
	ClientErrors  int64
	ServerErrors  int64
	RejectedBusy  int64
	InFlight      int64
	PoolEngines   int
	PoolCapacity  int
	EngineBuilds  int64
	PoolEvictions int64
	UptimeSeconds float64
	Analyses      int

	// TraceCapacity gates the trace metrics (0 = tracing disabled);
	// TracesRecorded counts traces pushed into the ring over the
	// process lifetime, including ones since overwritten.
	TraceCapacity  int
	TracesRecorded int64

	// AuditEnabled gates the audit metrics; AuditRecords counts chained
	// records appended over the process lifetime.
	AuditEnabled bool
	AuditRecords int64
}

// seconds renders nanoseconds as a decimal seconds literal, the unit
// Prometheus conventions mandate for duration metrics.
func seconds(ns int64) string {
	return strconv.FormatFloat(float64(ns)/1e9, 'f', -1, 64)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func writeHeader(w io.Writer, name, typ, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// writeHistogram renders one histogram series in exposition format,
// seconds-valued, under a single label.
func writeHistogram(w io.Writer, name, label, labelValue string, s HistogramSnapshot) {
	lv := escapeLabel(labelValue)
	for _, b := range s.Buckets {
		le := "+Inf"
		if b.UpperNs >= 0 {
			le = seconds(b.UpperNs)
		}
		fmt.Fprintf(w, "%s_bucket{%s=%q,le=%q} %d\n", name, label, lv, le, b.Cumulative)
	}
	fmt.Fprintf(w, "%s_sum{%s=%q} %s\n", name, label, lv, seconds(s.SumNs))
	fmt.Fprintf(w, "%s_count{%s=%q} %d\n", name, label, lv, s.Count)
}

// WritePrometheus renders the full metrics page in Prometheus text
// exposition format (version 0.0.4): the serving counters and gauges
// from g, the per-stage duration histograms, and the per-analysis
// request latency histograms.
func (c *Collector) WritePrometheus(w io.Writer, g ServerGauges) {
	counter := func(name, help string, v int64) {
		writeHeader(w, name, "counter", help)
		fmt.Fprintf(w, "%s %d\n", name, v)
	}
	gauge := func(name, help string, v string) {
		writeHeader(w, name, "gauge", help)
		fmt.Fprintf(w, "%s %s\n", name, v)
	}
	counter("specserve_requests_total", "Requests served (all endpoints, all statuses).", g.Requests)
	counter("specserve_not_modified_total", "304 responses served with zero recomputation.", g.NotModified)
	counter("specserve_client_errors_total", "4xx responses (bad filters, unknown analyses, bad parameters).", g.ClientErrors)
	counter("specserve_server_errors_total", "5xx responses (including gate rejections).", g.ServerErrors)
	counter("specserve_rejected_busy_total", "Requests whose client gave up waiting at the concurrency gate.", g.RejectedBusy)
	counter("specserve_engine_builds_total", "Scope engines built over the server lifetime.", g.EngineBuilds)
	counter("specserve_ingests_total", "Corpus ingestions completed (one per engine that streamed its source).", c.ingests.Load())
	counter("specserve_computes_total", "Analysis computations executed (memo misses only).", c.computes.Load())
	counter("specserve_pool_evictions_total", "Scope engines evicted past the LRU bound.", g.PoolEvictions)
	gauge("specserve_in_flight_requests", "Requests currently inside the concurrency gate.", strconv.FormatInt(g.InFlight, 10))
	gauge("specserve_pool_engines", "Resident scope engines.", strconv.Itoa(g.PoolEngines))
	gauge("specserve_pool_capacity", "Scope engine pool bound (resident engines never exceed this).", strconv.Itoa(g.PoolCapacity))
	gauge("specserve_registered_analyses", "Registered analyses, read live from the registry.", strconv.Itoa(g.Analyses))
	gauge("specserve_uptime_seconds", "Seconds since the server was constructed.",
		strconv.FormatFloat(g.UptimeSeconds, 'f', 3, 64))
	if g.AuditEnabled {
		counter("specserve_audit_records_total", "Hash-chained audit records appended.", g.AuditRecords)
	}
	if g.TraceCapacity > 0 {
		counter("specserve_traces_recorded_total", "Request traces recorded (including ones overwritten in the ring).", g.TracesRecorded)
		gauge("specserve_trace_ring_capacity", "Bound on resident completed traces served by /v1/traces.", strconv.Itoa(g.TraceCapacity))
	}

	c.mu.Lock()
	stages := make(map[string]*Histogram, len(c.stages))
	for k, v := range c.stages {
		stages[k] = v
	}
	analyses := make(map[string]*Histogram, len(c.byAnalysis))
	for k, v := range c.byAnalysis {
		analyses[k] = v
	}
	c.mu.Unlock()

	writeHeader(w, "specserve_stage_duration_seconds", "histogram",
		"Time spent per request lifecycle stage (queue_wait and serialize per request; engine_build, ingest, and compute once per actual event).")
	for _, stage := range Stages {
		if h := stages[stage]; h != nil {
			writeHistogram(w, "specserve_stage_duration_seconds", "stage", stage, h.Snapshot())
		}
	}

	names := make([]string, 0, len(analyses))
	for name := range analyses {
		names = append(names, name)
	}
	sort.Strings(names)
	writeHeader(w, "specserve_request_duration_seconds", "histogram",
		"End-to-end request latency per served analysis.")
	for _, name := range names {
		writeHistogram(w, "specserve_request_duration_seconds", "analysis", name, analyses[name].Snapshot())
	}
}

// WriteRuntimePrometheus renders the specserve_runtime_* section: Go
// runtime introspection (goroutines, heap, GC pause histogram) from one
// RuntimeSampler reading, appended after the serving metrics so the
// whole /metrics page is one exposition document.
func WriteRuntimePrometheus(w io.Writer, rs RuntimeStats) {
	writeHeader(w, "specserve_runtime_goroutines", "gauge", "Live goroutines.")
	fmt.Fprintf(w, "specserve_runtime_goroutines %d\n", rs.Goroutines)
	writeHeader(w, "specserve_runtime_heap_inuse_bytes", "gauge", "Heap bytes in active spans.")
	fmt.Fprintf(w, "specserve_runtime_heap_inuse_bytes %d\n", rs.HeapInuseBytes)
	writeHeader(w, "specserve_runtime_heap_alloc_bytes", "gauge", "Live heap allocation in bytes.")
	fmt.Fprintf(w, "specserve_runtime_heap_alloc_bytes %d\n", rs.HeapAllocBytes)
	writeHeader(w, "specserve_runtime_gc_cycles_total", "counter", "Completed GC cycles.")
	fmt.Fprintf(w, "specserve_runtime_gc_cycles_total %d\n", rs.GCCycles)
	writeHeader(w, "specserve_runtime_gc_pause_seconds", "histogram",
		"Stop-the-world GC pause durations over the process lifetime.")
	s := rs.GCPauses
	for _, b := range s.Buckets {
		le := "+Inf"
		if b.UpperNs >= 0 {
			le = seconds(b.UpperNs)
		}
		fmt.Fprintf(w, "specserve_runtime_gc_pause_seconds_bucket{le=%q} %d\n", le, b.Cumulative)
	}
	fmt.Fprintf(w, "specserve_runtime_gc_pause_seconds_sum %s\n", seconds(s.SumNs))
	fmt.Fprintf(w, "specserve_runtime_gc_pause_seconds_count %d\n", s.Count)
}
