package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// ServerGauges carries the serving-layer counters and gauges whose
// source of truth lives outside the Collector (the HTTP server's gate
// and engine pool, the audit log), so the exposition can render one
// consistent page without the Collector duplicating that state.
type ServerGauges struct {
	Requests      int64
	NotModified   int64
	ClientErrors  int64
	ServerErrors  int64
	RejectedBusy  int64
	InFlight      int64
	PoolEngines   int
	PoolCapacity  int
	EngineBuilds  int64
	PoolEvictions int64
	UptimeSeconds float64
	Analyses      int

	// TraceCapacity gates the trace metrics (0 = tracing disabled);
	// TracesRecorded counts traces pushed into the ring over the
	// process lifetime, including ones since overwritten.
	TraceCapacity  int
	TracesRecorded int64

	// AuditEnabled gates the audit metrics; AuditRecords counts chained
	// records appended over the process lifetime.
	AuditEnabled bool
	AuditRecords int64

	// Pool state-plane counters: requests that found a resident engine
	// (hits) vs. ones that inserted a fresh entry (misses), single-flight
	// joiners that waited on another request's build, and evictions split
	// by reason. PoolEvictions above remains the LRU-only count /v1/stats
	// has always reported; the labeled exposition below adds the failure
	// drops.
	PoolHits                  int64
	PoolMisses                int64
	PoolJoins                 int64
	PoolEvictionsBuildFailed  int64
	PoolEvictionsIngestFailed int64

	// MemoRings carries the cluster package's bounded memo-ring counters,
	// one row per ring, in the order the caller wants them exposed.
	MemoRings []MemoRingGauge

	// Gob parse-cache counters (process-wide, all CachedSource streams).
	ParseCacheHits          int64
	ParseCacheMisses        int64
	ParseCacheInvalidations int64
	ParseCachePrunes        int64

	// Audit batching-writer introspection, gated by AuditEnabled.
	AuditQueueDepth      int64
	AuditFlushesBatch    int64
	AuditFlushesInterval int64
	AuditFlushesClose    int64
	AuditFlushedRecords  int64

	// Live-ingestion counters, gated by LiveEnabled: the corpus
	// generation (bumped once per absorbed append), appends absorbed,
	// and runs those appends carried.
	LiveEnabled       bool
	Generation        uint64
	AppendsTotal      int64
	AppendedRunsTotal int64
}

// MemoRingGauge is one memo ring's counters for the exposition, labeled
// by ring name.
type MemoRingGauge struct {
	Ring      string
	Hits      int64
	Misses    int64
	Evictions int64
}

// seconds renders nanoseconds as a decimal seconds literal, the unit
// Prometheus conventions mandate for duration metrics.
func seconds(ns int64) string {
	return strconv.FormatFloat(float64(ns)/1e9, 'f', -1, 64)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func writeHeader(w io.Writer, name, typ, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// writeHistogram renders one histogram series in exposition format,
// seconds-valued, under a single label.
func writeHistogram(w io.Writer, name, label, labelValue string, s HistogramSnapshot) {
	lv := escapeLabel(labelValue)
	for _, b := range s.Buckets {
		le := "+Inf"
		if b.UpperNs >= 0 {
			le = seconds(b.UpperNs)
		}
		fmt.Fprintf(w, "%s_bucket{%s=%q,le=%q} %d\n", name, label, lv, le, b.Cumulative)
	}
	fmt.Fprintf(w, "%s_sum{%s=%q} %s\n", name, label, lv, seconds(s.SumNs))
	fmt.Fprintf(w, "%s_count{%s=%q} %d\n", name, label, lv, s.Count)
}

// WritePrometheus renders the full metrics page in Prometheus text
// exposition format (version 0.0.4): the serving counters and gauges
// from g, the per-stage duration histograms, and the per-analysis
// request latency histograms.
func (c *Collector) WritePrometheus(w io.Writer, g ServerGauges) {
	counter := func(name, help string, v int64) {
		writeHeader(w, name, "counter", help)
		fmt.Fprintf(w, "%s %d\n", name, v)
	}
	gauge := func(name, help string, v string) {
		writeHeader(w, name, "gauge", help)
		fmt.Fprintf(w, "%s %s\n", name, v)
	}
	counter("specserve_requests_total", "Requests served (all endpoints, all statuses).", g.Requests)
	counter("specserve_not_modified_total", "304 responses served with zero recomputation.", g.NotModified)
	counter("specserve_client_errors_total", "4xx responses (bad filters, unknown analyses, bad parameters).", g.ClientErrors)
	counter("specserve_server_errors_total", "5xx responses (including gate rejections).", g.ServerErrors)
	counter("specserve_rejected_busy_total", "Requests whose client gave up waiting at the concurrency gate.", g.RejectedBusy)
	counter("specserve_engine_builds_total", "Scope engines built over the server lifetime.", g.EngineBuilds)
	counter("specserve_ingests_total", "Corpus ingestions completed (one per engine that streamed its source).", c.ingests.Load())
	counter("specserve_computes_total", "Analysis computations executed (memo misses only).", c.computes.Load())
	writeHeader(w, "specserve_pool_evictions_total", "counter", "Scope engines evicted, by reason.")
	fmt.Fprintf(w, "specserve_pool_evictions_total{reason=\"lru\"} %d\n", g.PoolEvictions)
	fmt.Fprintf(w, "specserve_pool_evictions_total{reason=\"build_failed\"} %d\n", g.PoolEvictionsBuildFailed)
	fmt.Fprintf(w, "specserve_pool_evictions_total{reason=\"ingestion_failed\"} %d\n", g.PoolEvictionsIngestFailed)
	counter("specserve_pool_hits_total", "Requests that found their scope engine resident.", g.PoolHits)
	counter("specserve_pool_misses_total", "Requests that inserted a fresh pool entry.", g.PoolMisses)
	counter("specserve_pool_joins_total", "Requests that waited on another request's single-flight engine build.", g.PoolJoins)
	counter("specserve_memo_hits_total", "Engine memo-cache hits (analysis requests that found an existing entry).", c.memoHits.Load())
	counter("specserve_memo_misses_total", "Engine memo-cache misses; each miss is one analysis computation, so this equals specserve_computes_total.", c.computes.Load())
	if len(g.MemoRings) > 0 {
		writeHeader(w, "specserve_memo_ring_hits_total", "counter", "Bounded cluster memo-ring hits, by ring.")
		for _, r := range g.MemoRings {
			fmt.Fprintf(w, "specserve_memo_ring_hits_total{ring=%q} %d\n", escapeLabel(r.Ring), r.Hits)
		}
		writeHeader(w, "specserve_memo_ring_misses_total", "counter", "Bounded cluster memo-ring misses, by ring.")
		for _, r := range g.MemoRings {
			fmt.Fprintf(w, "specserve_memo_ring_misses_total{ring=%q} %d\n", escapeLabel(r.Ring), r.Misses)
		}
		writeHeader(w, "specserve_memo_ring_evictions_total", "counter", "Bounded cluster memo-ring slot evictions, by ring.")
		for _, r := range g.MemoRings {
			fmt.Fprintf(w, "specserve_memo_ring_evictions_total{ring=%q} %d\n", escapeLabel(r.Ring), r.Evictions)
		}
	}
	counter("specserve_parse_cache_hits_total", "Gob parse-cache hits (size+mtime matched, parser skipped).", g.ParseCacheHits)
	counter("specserve_parse_cache_misses_total", "Gob parse-cache misses (file absent from the cache).", g.ParseCacheMisses)
	counter("specserve_parse_cache_invalidations_total", "Gob parse-cache entries invalidated by size or mtime change.", g.ParseCacheInvalidations)
	counter("specserve_parse_cache_prunes_total", "Gob parse-cache entries pruned for deleted files.", g.ParseCachePrunes)
	gauge("specserve_in_flight_requests", "Requests currently inside the concurrency gate.", strconv.FormatInt(g.InFlight, 10))
	gauge("specserve_pool_engines", "Resident scope engines.", strconv.Itoa(g.PoolEngines))
	gauge("specserve_pool_capacity", "Scope engine pool bound (resident engines never exceed this).", strconv.Itoa(g.PoolCapacity))
	gauge("specserve_registered_analyses", "Registered analyses, read live from the registry.", strconv.Itoa(g.Analyses))
	gauge("specserve_uptime_seconds", "Seconds since the server was constructed.",
		strconv.FormatFloat(g.UptimeSeconds, 'f', 3, 64))
	if g.AuditEnabled {
		counter("specserve_audit_records_total", "Hash-chained audit records appended.", g.AuditRecords)
		gauge("specserve_audit_queue_depth", "Audit entries enqueued and not yet chained by the writer goroutine.", strconv.FormatInt(g.AuditQueueDepth, 10))
		writeHeader(w, "specserve_audit_queue_flushes_total", "counter", "Audit file flushes, by trigger.")
		fmt.Fprintf(w, "specserve_audit_queue_flushes_total{reason=\"batch\"} %d\n", g.AuditFlushesBatch)
		fmt.Fprintf(w, "specserve_audit_queue_flushes_total{reason=\"interval\"} %d\n", g.AuditFlushesInterval)
		fmt.Fprintf(w, "specserve_audit_queue_flushes_total{reason=\"close\"} %d\n", g.AuditFlushesClose)
		counter("specserve_audit_queue_flushed_records_total", "Audit records pushed to the file across all flushes.", g.AuditFlushedRecords)
	}
	if g.TraceCapacity > 0 {
		counter("specserve_traces_recorded_total", "Request traces recorded (including ones overwritten in the ring).", g.TracesRecorded)
		gauge("specserve_trace_ring_capacity", "Bound on resident completed traces served by /v1/traces.", strconv.Itoa(g.TraceCapacity))
	}
	if g.LiveEnabled {
		gauge("specserve_generation", "Live corpus generation (bumped once per absorbed append).", strconv.FormatUint(g.Generation, 10))
		counter("specserve_appends_total", "Live appends absorbed into the corpus (POST /v1/runs and watcher deltas).", g.AppendsTotal)
		counter("specserve_appended_runs_total", "Runs folded into the live corpus across all appends.", g.AppendedRunsTotal)
	}

	c.mu.Lock()
	stages := make(map[string]*Histogram, len(c.stages))
	for k, v := range c.stages {
		stages[k] = v
	}
	analyses := make(map[string]*Histogram, len(c.byAnalysis))
	for k, v := range c.byAnalysis {
		analyses[k] = v
	}
	c.mu.Unlock()

	writeHeader(w, "specserve_stage_duration_seconds", "histogram",
		"Time spent per request lifecycle stage (queue_wait and serialize per request; engine_build, ingest, and compute once per actual event).")
	for _, stage := range Stages {
		if h := stages[stage]; h != nil {
			writeHistogram(w, "specserve_stage_duration_seconds", "stage", stage, h.Snapshot())
		}
	}

	names := make([]string, 0, len(analyses))
	for name := range analyses {
		names = append(names, name)
	}
	sort.Strings(names)
	writeHeader(w, "specserve_request_duration_seconds", "histogram",
		"End-to-end request latency per served analysis.")
	for _, name := range names {
		writeHistogram(w, "specserve_request_duration_seconds", "analysis", name, analyses[name].Snapshot())
	}
}

// WriteRuntimePrometheus renders the specserve_runtime_* section: Go
// runtime introspection (goroutines, heap, GC pause histogram) from one
// RuntimeSampler reading, appended after the serving metrics so the
// whole /metrics page is one exposition document.
func WriteRuntimePrometheus(w io.Writer, rs RuntimeStats) {
	writeHeader(w, "specserve_runtime_goroutines", "gauge", "Live goroutines.")
	fmt.Fprintf(w, "specserve_runtime_goroutines %d\n", rs.Goroutines)
	writeHeader(w, "specserve_runtime_heap_inuse_bytes", "gauge", "Heap bytes in active spans.")
	fmt.Fprintf(w, "specserve_runtime_heap_inuse_bytes %d\n", rs.HeapInuseBytes)
	writeHeader(w, "specserve_runtime_heap_alloc_bytes", "gauge", "Live heap allocation in bytes.")
	fmt.Fprintf(w, "specserve_runtime_heap_alloc_bytes %d\n", rs.HeapAllocBytes)
	writeHeader(w, "specserve_runtime_gc_cycles_total", "counter", "Completed GC cycles.")
	fmt.Fprintf(w, "specserve_runtime_gc_cycles_total %d\n", rs.GCCycles)
	writeHeader(w, "specserve_runtime_gc_pause_seconds", "histogram",
		"Stop-the-world GC pause durations over the process lifetime.")
	s := rs.GCPauses
	for _, b := range s.Buckets {
		le := "+Inf"
		if b.UpperNs >= 0 {
			le = seconds(b.UpperNs)
		}
		fmt.Fprintf(w, "specserve_runtime_gc_pause_seconds_bucket{le=%q} %d\n", le, b.Cumulative)
	}
	fmt.Fprintf(w, "specserve_runtime_gc_pause_seconds_sum %s\n", seconds(s.SumNs))
	fmt.Fprintf(w, "specserve_runtime_gc_pause_seconds_count %d\n", s.Count)
}
