// Package speccpu models SPEC CPU 2017 Integer and Floating Point Rate
// Base scores for the catalog's processors. The paper uses SPEC CPU
// results (Table I) to test whether the SPEC Power efficiency findings
// generalize to floating-point workloads: the integer-rate ratio between
// two systems tracks the ssj ratio, while the FP ratio is compressed by
// Intel's wider vector units.
//
// The model is deliberately simple — throughput = core·GHz × a
// per-generation rate factor, with FP scaled by the part's FPRatio —
// because Table I's finding is about ratio structure, not absolute
// scores.
package speccpu

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/model"
)

// Result is a pair of SPEC CPU 2017 Rate Base scores.
type Result struct {
	IntRate float64
	FPRate  float64
}

// rateAnchor interpolates the per-core-GHz integer rate factor over
// hardware availability time, per vendor. Values are calibrated so the
// Table I systems land on the published scores (Xeon Platinum 8490H:
// 902 int / 926 fp; EPYC 9754: 1830 int / 1420 fp).
type rateAnchor struct {
	Year float64
	K    float64
}

var intelRate = []rateAnchor{
	{2006, 0.9}, {2012, 1.8}, {2017, 2.9}, {2019, 3.2}, {2021, 3.5},
	{2023, 3.96}, {2025, 4.1},
}

var amdRate = []rateAnchor{
	{2006, 0.8}, {2012, 1.3}, {2017, 2.5}, {2019, 2.9}, {2021, 3.3},
	{2023, 3.5}, {2025, 3.7},
}

// densePenalty discounts very high core-count parts whose per-core
// resources (cache, bandwidth) are thinner: Zen4c/Sierra-Forest class.
func densePenalty(spec catalog.CPUSpec) float64 {
	if spec.Cores >= 128 {
		return 0.91
	}
	return 1.0
}

func rateFactor(spec catalog.CPUSpec) float64 {
	table := amdRate
	if spec.Vendor == model.VendorIntel {
		table = intelRate
	}
	y := spec.Avail.Frac()
	if y <= table[0].Year {
		return table[0].K
	}
	last := table[len(table)-1]
	if y >= last.Year {
		return last.K
	}
	for i := 1; i < len(table); i++ {
		if y > table[i].Year {
			continue
		}
		a, b := table[i-1], table[i]
		t := (y - a.Year) / (b.Year - a.Year)
		return a.K + (b.K-a.K)*t
	}
	return last.K
}

// Rate estimates the SPEC CPU 2017 Rate Base scores of a system built
// from sockets copies of spec.
func Rate(spec catalog.CPUSpec, sockets int) (Result, error) {
	if sockets < 1 || sockets > spec.MaxSockets {
		return Result{}, fmt.Errorf("speccpu: %d sockets invalid for %s (max %d)",
			sockets, spec.Name, spec.MaxSockets)
	}
	coreGHz := float64(sockets*spec.Cores) * spec.NominalGHz
	intRate := coreGHz * rateFactor(spec) * densePenalty(spec)
	return Result{
		IntRate: intRate,
		FPRate:  intRate * spec.FPRatio,
	}, nil
}
