package speccpu

import (
	"math"
	"testing"

	"repro/internal/catalog"
	"repro/internal/model"
)

func TestRateValidation(t *testing.T) {
	spec, err := catalog.Find("EPYC 9754")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Rate(spec, 0); err == nil {
		t.Error("0 sockets should error")
	}
	if _, err := Rate(spec, 5); err == nil {
		t.Error("sockets above max should error")
	}
}

func TestRateScalesWithSockets(t *testing.T) {
	spec, err := catalog.Find("EPYC 9554")
	if err != nil {
		t.Fatal(err)
	}
	one, err := Rate(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	two, err := Rate(spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(two.IntRate-2*one.IntRate) > 1e-9 {
		t.Errorf("rate should double with sockets: %v vs %v", one.IntRate, two.IntRate)
	}
}

func TestRateProgression(t *testing.T) {
	// Per-core rate factors rise over time for both vendors.
	early, err := catalog.Find("X5570")
	if err != nil {
		t.Fatal(err)
	}
	late, err := catalog.Find("Platinum 8490H")
	if err != nil {
		t.Fatal(err)
	}
	if rateFactor(late) < 2*rateFactor(early) {
		t.Errorf("rate factor barely grew: %v → %v", rateFactor(early), rateFactor(late))
	}
}

func TestTable1Factors(t *testing.T) {
	intelSys, amdSys, err := DefaultDuel()
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Table1(intelSys, amdSys)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]DuelRow{}
	for _, r := range rows {
		byName[r.Benchmark] = r
	}
	ssj := byName["power_ssj 2008 (overall ssj_ops/W)"]
	fp := byName["CPU 2017 FP Rate Base"]
	integer := byName["CPU 2017 Int Rate Base"]

	// Paper factors: ×2.09 ssj, ×1.53 fp, ×2.03 int.
	if math.Abs(ssj.Factor-2.09) > 0.25 {
		t.Errorf("ssj factor = %.2f, paper 2.09", ssj.Factor)
	}
	if math.Abs(integer.Factor-2.03) > 0.2 {
		t.Errorf("int factor = %.2f, paper 2.03", integer.Factor)
	}
	if math.Abs(fp.Factor-1.53) > 0.2 {
		t.Errorf("fp factor = %.2f, paper 1.53", fp.Factor)
	}
	// The structural finding: fp advantage < int advantage ≈ ssj advantage.
	if !(fp.Factor < integer.Factor) {
		t.Error("fp factor should be compressed below int factor")
	}
	if math.Abs(integer.Factor-ssj.Factor) > 0.3 {
		t.Errorf("int (%.2f) and ssj (%.2f) factors should be similar",
			integer.Factor, ssj.Factor)
	}
	// Absolute ballparks (model is calibrated near published numbers).
	if ssj.Intel < 10000 || ssj.Intel > 22000 {
		t.Errorf("Intel ssj overall = %.0f, paper 15112", ssj.Intel)
	}
	if ssj.AMD < 25000 || ssj.AMD > 42000 {
		t.Errorf("AMD ssj overall = %.0f, paper 31634", ssj.AMD)
	}
	if integer.Intel < 700 || integer.Intel > 1100 {
		t.Errorf("Intel int rate = %.0f, paper 902", integer.Intel)
	}
	if integer.AMD < 1500 || integer.AMD > 2200 {
		t.Errorf("AMD int rate = %.0f, paper 1830", integer.AMD)
	}
}

func TestSSJOverallValidation(t *testing.T) {
	spec, err := catalog.Find("EPYC 9754")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SSJOverall(spec, 9, 64); err == nil {
		t.Error("invalid sockets should error")
	}
	v, err := SSJOverall(spec, 2, 384)
	if err != nil {
		t.Fatal(err)
	}
	if v <= 0 {
		t.Errorf("overall = %v", v)
	}
}

func TestRateVendorTables(t *testing.T) {
	// The factor function covers all vendors without panicking, clamped
	// outside anchors.
	for _, spec := range catalog.All() {
		f := rateFactor(spec)
		if f <= 0 || f > 10 {
			t.Errorf("%s: rate factor %v", spec.Name, f)
		}
	}
	_ = model.VendorOther
}
