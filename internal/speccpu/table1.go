package speccpu

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/model"
	"repro/internal/power"
)

// DuelSystem describes one side of the Table I comparison.
type DuelSystem struct {
	Label   string
	CPU     catalog.CPUSpec
	Sockets int
	MemGB   int
}

// DuelRow is one benchmark line of Table I: the two systems' results and
// the AMD/Intel factor.
type DuelRow struct {
	Benchmark string
	Intel     float64
	AMD       float64
	Factor    float64 // AMD / Intel
}

// SSJOverall evaluates the analytic SPEC Power model (catalog throughput
// × power trend curve) for one system and returns the overall
// ssj_ops/W score a noise-free run would publish.
func SSJOverall(spec catalog.CPUSpec, sockets, memGB int) (float64, error) {
	cfg := power.SystemConfig{Sockets: sockets, MemGB: memGB}
	if err := cfg.Validate(spec); err != nil {
		return 0, err
	}
	prof := power.TrendProfile(spec.Vendor, spec.Avail.Frac())
	full := power.FullLoadWatts(spec, cfg)
	opsMax := spec.OpsPerCoreGHz * float64(sockets*spec.Cores) * spec.NominalGHz
	var ops, watts float64
	for _, load := range model.StandardLoads() {
		u := float64(load) / 100
		ops += opsMax * u
		watts += full * prof.Rel(u)
	}
	return ops / watts, nil
}

// DefaultDuel returns the paper's Table I pairing: a Lenovo ThinkSystem
// SR650 V3 (2× Xeon Platinum 8490H) against an SR645 V3 (2× EPYC 9754),
// both with 1100 W PSUs.
func DefaultDuel() (intel, amd DuelSystem, err error) {
	xeon, err := catalog.Find("Platinum 8490H")
	if err != nil {
		return intel, amd, err
	}
	epyc, err := catalog.Find("EPYC 9754")
	if err != nil {
		return intel, amd, err
	}
	intel = DuelSystem{Label: "SR650 V3 (Intel Xeon Platinum 8490H)",
		CPU: xeon, Sockets: 2, MemGB: 256}
	amd = DuelSystem{Label: "SR645 V3 (AMD EPYC 9754)",
		CPU: epyc, Sockets: 2, MemGB: 384}
	return intel, amd, nil
}

// Table1 reproduces the paper's Table I: SPEC Power overall score and
// SPEC CPU 2017 FP/Int Rate Base for the two systems, with AMD/Intel
// factors (paper: ×2.09 ssj, ×1.53 fp, ×2.03 int).
func Table1(intelSys, amdSys DuelSystem) ([]DuelRow, error) {
	ssjI, err := SSJOverall(intelSys.CPU, intelSys.Sockets, intelSys.MemGB)
	if err != nil {
		return nil, fmt.Errorf("speccpu: table1 intel ssj: %w", err)
	}
	ssjA, err := SSJOverall(amdSys.CPU, amdSys.Sockets, amdSys.MemGB)
	if err != nil {
		return nil, fmt.Errorf("speccpu: table1 amd ssj: %w", err)
	}
	cpuI, err := Rate(intelSys.CPU, intelSys.Sockets)
	if err != nil {
		return nil, err
	}
	cpuA, err := Rate(amdSys.CPU, amdSys.Sockets)
	if err != nil {
		return nil, err
	}
	rows := []DuelRow{
		{Benchmark: "power_ssj 2008 (overall ssj_ops/W)", Intel: ssjI, AMD: ssjA},
		{Benchmark: "CPU 2017 FP Rate Base", Intel: cpuI.FPRate, AMD: cpuA.FPRate},
		{Benchmark: "CPU 2017 Int Rate Base", Intel: cpuI.IntRate, AMD: cpuA.IntRate},
	}
	for i := range rows {
		rows[i].Factor = rows[i].AMD / rows[i].Intel
	}
	return rows, nil
}
