package analysis

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/stats"
)

// ChangepointFinding locates the structural break in a metric's yearly
// history. Applied to the idle fraction it answers, statistically, the
// paper's Section IV observation that idle-specific optimization
// progress ended around 2017.
type ChangepointFinding struct {
	Metric string
	// Year is the last year of the first regime.
	Year        int
	K           float64
	P           float64
	Significant bool
}

// IdleFractionChangepoint runs the Pettitt test over the yearly mean
// idle fractions (years with at least minRuns runs).
func IdleFractionChangepoint(comparable []*model.Run, minRuns int, alpha float64) (ChangepointFinding, error) {
	return MetricChangepoint(comparable, "idle fraction",
		(*model.Run).IdleFraction, minRuns, alpha)
}

// MetricChangepoint runs the Pettitt test over any metric's yearly
// means.
func MetricChangepoint(comparable []*model.Run, name string, metric Metric, minRuns int, alpha float64) (ChangepointFinding, error) {
	yearly := YearlyMeans(comparable, metric)
	var years []int
	var means []float64
	for _, ys := range yearly {
		if ys.N >= minRuns {
			years = append(years, ys.Year)
			means = append(means, ys.Mean)
		}
	}
	res, err := stats.Pettitt(means, alpha)
	if err != nil {
		return ChangepointFinding{}, fmt.Errorf("analysis: changepoint %q: %w", name, err)
	}
	return ChangepointFinding{
		Metric:      name,
		Year:        years[res.Index],
		K:           res.K,
		P:           res.P,
		Significant: res.Significant,
	}, nil
}

// YearlyMeansByVendor bins a metric by year within one vendor, the
// per-series view behind the figures' vendor colouring.
func YearlyMeansByVendor(runs []*model.Run, v model.CPUVendor, metric Metric) []YearlyStat {
	var sub []*model.Run
	for _, r := range runs {
		if r.CPUVendor == v {
			sub = append(sub, r)
		}
	}
	return YearlyMeans(sub, metric)
}
